package containerhpc

import (
	"strings"
	"testing"
)

func TestClustersPresets(t *testing.T) {
	cls := Clusters()
	if len(cls) != 4 {
		t.Fatalf("%d clusters", len(cls))
	}
	names := map[string]bool{}
	for _, c := range cls {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		names[c.Name] = true
	}
	for _, want := range []string{"Lenox", "MareNostrum4", "CTE-POWER", "ThunderX"} {
		if !names[want] {
			t.Errorf("missing cluster %s", want)
		}
		if _, err := ClusterByName(want); err != nil {
			t.Errorf("ClusterByName(%s): %v", want, err)
		}
	}
}

func TestPublicRunCell(t *testing.T) {
	cl := Lenox()
	rt := NewSingularity()
	img, err := BuildImage(rt, cl, SystemSpecific)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCell(Cell{
		Cluster: cl, Runtime: rt, Image: img,
		Case:  QuickCFD(3),
		Nodes: 2, Ranks: 8, Threads: 1,
		Mode: ModeReal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.TimePerStep <= 0 {
		t.Fatalf("time/step %v", res.Exec.TimePerStep)
	}
	if res.Exec.AvgCGIters <= 1 {
		t.Fatalf("CG iterations %v", res.Exec.AvgCGIters)
	}
}

func TestPublicRuntimes(t *testing.T) {
	if len(Runtimes()) != 4 {
		t.Fatal("expected four runtimes")
	}
	for _, name := range []string{"Bare-metal", "Docker", "Singularity", "Shifter"} {
		rt, err := RuntimeByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Name() != name {
			t.Fatalf("runtime %q", rt.Name())
		}
	}
}

func TestPublicCases(t *testing.T) {
	for _, cs := range []Case{
		ArteryCFDLenox(), ArteryCFDCTEPower(), ArteryFSIMareNostrum4(),
		QuickCFD(2), QuickFSI(2),
	} {
		if err := cs.Validate(); err != nil {
			t.Errorf("%s: %v", cs.Name, err)
		}
	}
}

func TestPublicPortability(t *testing.T) {
	res, err := Portability(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "exec format error") {
		t.Fatal("portability matrix incomplete")
	}
}

func TestPublicSolutions(t *testing.T) {
	res, err := Solutions(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d solution rows", len(res.Rows))
	}
}
