package containerhpc

import (
	"errors"
	"strings"
	"testing"
)

func TestClustersPresets(t *testing.T) {
	cls := Clusters()
	if len(cls) != 4 {
		t.Fatalf("%d clusters", len(cls))
	}
	names := map[string]bool{}
	for _, c := range cls {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		names[c.Name] = true
	}
	for _, want := range []string{"Lenox", "MareNostrum4", "CTE-POWER", "ThunderX"} {
		if !names[want] {
			t.Errorf("missing cluster %s", want)
		}
		if _, err := ClusterByName(want); err != nil {
			t.Errorf("ClusterByName(%s): %v", want, err)
		}
	}
}

func TestPublicRunCell(t *testing.T) {
	cl := Lenox()
	rt := NewSingularity()
	img, err := BuildImage(rt, cl, SystemSpecific)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCell(Cell{
		Cluster: cl, Runtime: rt, Image: img,
		Case:  QuickCFD(3),
		Nodes: 2, Ranks: 8, Threads: 1,
		Mode: ModeReal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.TimePerStep <= 0 {
		t.Fatalf("time/step %v", res.Exec.TimePerStep)
	}
	if res.Exec.AvgCGIters <= 1 {
		t.Fatalf("CG iterations %v", res.Exec.AvgCGIters)
	}
}

func TestPublicRuntimes(t *testing.T) {
	if len(Runtimes()) != 4 {
		t.Fatal("expected four runtimes")
	}
	for _, name := range []string{"Bare-metal", "Docker", "Singularity", "Shifter"} {
		rt, err := RuntimeByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Name() != name {
			t.Fatalf("runtime %q", rt.Name())
		}
	}
}

func TestPublicCases(t *testing.T) {
	for _, cs := range []Case{
		ArteryCFDLenox(), ArteryCFDCTEPower(), ArteryFSIMareNostrum4(),
		QuickCFD(2), QuickFSI(2),
	} {
		if err := cs.Validate(); err != nil {
			t.Errorf("%s: %v", cs.Name, err)
		}
	}
}

func TestPublicPortability(t *testing.T) {
	res, err := Portability(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "exec format error") {
		t.Fatal("portability matrix incomplete")
	}
}

func TestPublicSolutions(t *testing.T) {
	res, err := Solutions(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d solution rows", len(res.Rows))
	}
}

// TestPublicScenario drives a custom declarative study through the
// facade alone: parse a spec, run it with the standard Options, and
// read the rendered output — the external user's whole workflow.
func TestPublicScenario(t *testing.T) {
	spec := `{
	  "name": "demo",
	  "cluster": "Lenox",
	  "case": {"name": "quick-cfd"},
	  "configs": [
	    {"runtime": "Bare-metal"},
	    {"runtime": "Singularity"}
	  ],
	  "grid": {"nodes": [1, 2], "ranks_per_node": 4},
	  "report": {"columns": [{"kind": "time"}, {"kind": "speedup", "baseline": "Bare-metal"}]}
	}`
	st, err := ParseScenario(strings.NewReader(spec), "demo.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cells()) != 4 {
		t.Fatalf("%d cells", len(st.Cells()))
	}
	res, err := st.Run(Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	for _, want := range []string{"demo", "Bare-metal [s]", "Singularity speedup"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q:\n%s", want, sb.String())
		}
	}

	// Validation errors are typed and name the field.
	_, err = ParseScenario(strings.NewReader(`{"name":"x","cluster":"nope","case":{"name":"quick-cfd"},"configs":[{"runtime":"Bare-metal"}],"grid":{"nodes":[1]}}`), "bad.json")
	var fe *ScenarioFieldError
	if !errors.As(err, &fe) || fe.Path != "cluster" {
		t.Fatalf("want *ScenarioFieldError at cluster, got %v", err)
	}
}
