// Package experiments regenerates every table and figure of the
// paper's evaluation:
//
//	Fig1        — container solutions on Lenox (hybrid sweep)
//	Fig2        — portability on CTE-POWER (2–16 nodes)
//	Fig3        — scalability on MareNostrum4 (4–256 nodes, FSI)
//	Solutions   — §B.1 deployment overhead and image sizes (table)
//	Portability — §B.2 build-technique × architecture matrix
//
// Every experiment takes an Options value whose zero value reproduces
// the paper-scale configuration; tests shrink the sweep to keep
// runtimes reasonable while asserting the same curve shapes.
//
// Sweeps execute through the shared Sweep engine: cells are enumerated
// up front, run on a bounded worker pool (Options.Parallelism), and
// reassembled in input order, so parallel output is byte-identical to
// the serial path.
package experiments

import (
	"repro/internal/alya"
)

// Options tunes an experiment's sweep without changing its structure.
type Options struct {
	// NodePoints overrides the swept node counts (Fig2, Fig3,
	// Solutions). Nil means the paper's points.
	NodePoints []int
	// Case overrides the Alya case. Zero-name means the paper's case.
	Case alya.Case
	// Mode selects the execution mode (default ModeModel).
	Mode alya.Mode
	// Parallelism bounds the number of concurrently executing cells
	// (0 or negative means runtime.NumCPU()). Results do not depend
	// on it — cells are independent simulations and the engine keeps
	// deterministic order.
	Parallelism int
}

func (o Options) caseOr(def alya.Case) alya.Case {
	if o.Case.Name == "" {
		return def
	}
	return o.Case
}

func (o Options) nodesOr(def []int) []int {
	if len(o.NodePoints) == 0 {
		return def
	}
	return o.NodePoints
}
