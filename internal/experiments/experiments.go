// Package experiments regenerates every table and figure of the
// paper's evaluation:
//
//	Fig1        — container solutions on Lenox (hybrid sweep)
//	Fig2        — portability on CTE-POWER (2–16 nodes)
//	Fig3        — scalability on MareNostrum4 (4–256 nodes, FSI)
//	Solutions   — §B.1 deployment overhead and image sizes (table)
//	Portability — §B.2 build-technique × architecture matrix
//
// Every experiment takes an Options value whose zero value reproduces
// the paper-scale configuration; tests shrink the sweep to keep
// runtimes reasonable while asserting the same curve shapes.
package experiments

import (
	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// Options tunes an experiment's sweep without changing its structure.
type Options struct {
	// NodePoints overrides the swept node counts (Fig2, Fig3,
	// Solutions). Nil means the paper's points.
	NodePoints []int
	// Case overrides the Alya case. Zero-name means the paper's case.
	Case alya.Case
	// Mode selects the execution mode (default ModeModel).
	Mode alya.Mode
}

func (o Options) caseOr(def alya.Case) alya.Case {
	if o.Case.Name == "" {
		return def
	}
	return o.Case
}

func (o Options) nodesOr(def []int) []int {
	if len(o.NodePoints) == 0 {
		return def
	}
	return o.NodePoints
}

// runCell is the shared cell executor: build the image for the runtime
// and technique, then run the configuration.
func runCell(cl *cluster.Cluster, rt container.Runtime, kind container.BuildKind,
	cs alya.Case, nodes, ranks, threads int, mode alya.Mode, algo mpi.AllreduceAlgo) (core.Result, error) {

	img, err := core.BuildImageFor(rt, cl, kind)
	if err != nil {
		return core.Result{}, err
	}
	return core.RunCell(core.Cell{
		Cluster:   cl,
		Runtime:   rt,
		Image:     img,
		Case:      cs,
		Nodes:     nodes,
		Ranks:     ranks,
		Threads:   threads,
		Placement: sched.PlaceBlock,
		Mode:      mode,
		Allreduce: algo,
	})
}
