// Package experiments regenerates every table and figure of the
// paper's evaluation:
//
//	Fig1        — container solutions on Lenox (hybrid sweep)
//	Fig2        — portability on CTE-POWER (2–16 nodes)
//	Fig3        — scalability on MareNostrum4 (4–256 nodes, FSI)
//	Solutions   — §B.1 deployment overhead and image sizes (table)
//	Portability — §B.2 build-technique × architecture matrix
//
// Every experiment takes an Options value whose zero value reproduces
// the paper-scale configuration; tests shrink the sweep to keep
// runtimes reasonable while asserting the same curve shapes.
//
// Sweeps execute through the shared Sweep engine: cells are enumerated
// up front, run on a bounded worker pool (Options.Parallelism), and
// reassembled in input order, so parallel output is byte-identical to
// the serial path.
package experiments

import (
	"repro/internal/alya"
	"repro/internal/resultdb"
)

// Options tunes an experiment's sweep without changing its structure.
type Options struct {
	// NodePoints overrides the swept node counts (Fig2, Fig3,
	// Solutions). Nil means the paper's points.
	NodePoints []int
	// Case overrides the Alya case. Zero-name means the paper's case.
	Case alya.Case
	// Mode selects the execution mode (default ModeModel).
	Mode alya.Mode
	// Parallelism bounds the number of concurrently executing cells
	// (0 or negative means runtime.NumCPU()). Results do not depend
	// on it — cells are independent simulations and the engine keeps
	// deterministic order.
	Parallelism int
	// Store, when non-nil, caches cell results persistently: the sweep
	// consults it before simulating and commits after. Results do not
	// depend on it either — restored cells land in the same
	// input-order slots a cold run fills. Any resultdb.Store works: a
	// local directory, a network registry client, or a tiered
	// combination.
	Store resultdb.Store
	// Shard restricts the sweep to a deterministic 1-of-N slice of the
	// enumerated cells, so N processes or machines populate one shared
	// Store without coordination. Requires Store; cells outside the
	// slice that are not already cached surface as *MissingCellsError
	// after the owned cells commit.
	Shard resultdb.Shard
	// FromStore forbids simulating: every simulation cell must come
	// from Store (the CLI's merge verb). Missing cells surface as
	// *MissingCellsError listing their keys. Studies with no
	// simulation cells (Solutions, IOStudy — pure deployment/storage
	// arithmetic) compute directly and are unaffected by FromStore,
	// Shard, and Store.
	FromStore bool
	// Stats, when non-nil, receives the sweep's hit/computed counters;
	// useful to assert a warm run simulated nothing or to report cache
	// effectiveness.
	Stats *SweepStats
	// TraceDir, when non-empty, makes the sweep record every simulated
	// cell's execution (kernel scheduling, point-to-point messages,
	// collective phases — all in virtual time) and export one Chrome
	// Trace Event JSON file per cell, named by the cell's store key.
	// Tracing is a passive tap: results and figures are byte-identical
	// with or without it, and the trace itself is deterministic (the
	// same cell produces the same bytes on every run). Restored cells
	// write no trace — only simulations have a schedule to record.
	TraceDir string
	// TraceEvents bounds each cell's trace ring (values < 1 mean
	// telemetry.DefaultTraceEvents). The ring keeps the newest events.
	TraceEvents int
	// Progress, when non-nil, receives one event per produced cell —
	// restored or simulated — as the sweep runs. Called from concurrent
	// workers; the callback must be safe for that (telemetry.Progress
	// is). Completion order is nondeterministic, which is why progress
	// is an event stream and never part of result output.
	Progress func(ProgressEvent)
}

// ProgressEvent reports one produced cell during a sweep.
type ProgressEvent struct {
	// Done counts cells produced so far (this one included); Total is
	// the sweep's cell count.
	Done, Total int
	// Label names the cell just produced.
	Label string
	// Cached reports a store restore rather than a simulation.
	Cached bool
}

func (o Options) caseOr(def alya.Case) alya.Case {
	if o.Case.Name == "" {
		return def
	}
	return o.Case
}

func (o Options) nodesOr(def []int) []int {
	if len(o.NodePoints) == 0 {
		return def
	}
	return o.NodePoints
}
