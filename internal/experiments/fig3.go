package experiments

import (
	"fmt"
	"io"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/report"
)

// Fig3Result holds the reproduced Fig. 3: strong-scaling speedup of the
// artery FSI case on MareNostrum4, 4–256 nodes, each variant normalized
// to its own 4-node run (the paper's normalization).
type Fig3Result struct {
	// Nodes are the x-axis points.
	Nodes []int
	// Series holds elapsed times per variant.
	Series []metrics.Series
	// Fabrics records which network path each variant used.
	Fabrics []string
}

// Fig3 reproduces the paper's Figure 3 on MareNostrum4. The big FSI
// runs use the hierarchical (shared-memory-aware) allreduce that any
// production MPI applies at this scale; the ablation bench compares the
// flat algorithms.
func Fig3(opt Options) (*Fig3Result, error) {
	mn4 := cluster.MareNostrum4()
	cs := opt.caseOr(alya.ArteryFSIMareNostrum4())
	nodes := opt.nodesOr([]int{4, 8, 16, 32, 64, 128, 256})
	variants := Fig2Variants() // same three variants as Fig. 2

	specs := make([]CellSpec, 0, len(variants)*len(nodes))
	for _, v := range variants {
		for _, n := range nodes {
			specs = append(specs, CellSpec{
				Label:   fmt.Sprintf("fig3 %s %d nodes", v.Label, n),
				Cluster: mn4, Runtime: v.Runtime, Kind: v.Kind,
				Case:  cs,
				Nodes: n, Ranks: n * mn4.CoresPerNode(), Threads: 1,
				Mode: opt.Mode, Allreduce: mpi.AllreduceHierarchical,
			})
		}
	}
	results, err := NewSweep(opt).Run(specs)
	if err != nil {
		return nil, err
	}

	out := &Fig3Result{Nodes: nodes}
	for vi, v := range variants {
		s := metrics.Series{Label: v.Label}
		fabricPath := ""
		for ni, n := range nodes {
			res := results[vi*len(nodes)+ni]
			s.Points = append(s.Points, metrics.Point{X: n, T: res.Exec.Elapsed})
			fabricPath = res.Exec.FabricPath
		}
		out.Series = append(out.Series, s)
		out.Fabrics = append(out.Fabrics, fabricPath)
	}
	return out, nil
}

// SeriesByLabel finds a curve by variant name.
func (f *Fig3Result) SeriesByLabel(label string) (*metrics.Series, error) {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: fig3 has no series %q", label)
}

// Render writes the figure as a table of speedups plus the ideal line.
func (f *Fig3Result) Render(w io.Writer) {
	headers := []string{"Nodes", "Ideal"}
	for i, s := range f.Series {
		headers = append(headers, fmt.Sprintf("%s (%s)", s.Label, f.Fabrics[i]))
	}
	t := report.NewTable("Fig 3: scalability (speedup vs own 4-node run) of Alya artery FSI in MareNostrum4", headers...)
	speedups := make([][]float64, len(f.Series))
	for i := range f.Series {
		speedups[i] = f.Series[i].Speedup()
	}
	base := float64(f.Nodes[0])
	for i, n := range f.Nodes {
		row := []interface{}{n, fmt.Sprintf("%.1f", float64(n)/base)}
		for si := range f.Series {
			row = append(row, fmt.Sprintf("%.2f", speedups[si][i]))
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// CSV writes elapsed times and speedups as CSV.
func (f *Fig3Result) CSV(w io.Writer) {
	headers := []string{"nodes"}
	for _, s := range f.Series {
		headers = append(headers, s.Label+"_seconds", s.Label+"_speedup")
	}
	t := report.NewTable("", headers...)
	speedups := make([][]float64, len(f.Series))
	for i := range f.Series {
		speedups[i] = f.Series[i].Speedup()
	}
	for i, n := range f.Nodes {
		row := []interface{}{n}
		for si, s := range f.Series {
			row = append(row, float64(s.Points[i].T), speedups[si][i])
		}
		t.AddRow(row...)
	}
	t.CSV(w)
}

// RenderChart writes the speedup curves as an ASCII chart, the closest
// textual analogue of the paper's plot.
func (f *Fig3Result) RenderChart(w io.Writer) {
	speedups := make([][]float64, len(f.Series))
	for i := range f.Series {
		speedups[i] = f.Series[i].Speedup()
	}
	c := report.Chart{
		Title:  "Fig 3: FSI speedup vs nodes (each variant normalized to its 4-node run)",
		YLabel: "speedup",
		Series: f.Series,
		Values: speedups,
	}
	c.Render(w)
}
