package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
)

// tinyCase shrinks a paper case to a few CG iterations: enough solver
// structure to exercise every sweep path while keeping the determinism
// matrix (each figure × two parallelism levels) cheap.
func tinyCase(c alya.Case) alya.Case {
	c.SimSteps = 1
	c.ModelCGIters = 5
	return c
}

// TestSweepDeterminism is the engine's core guarantee: every figure is
// deep-equal between a serial sweep and a heavily parallel one. The
// cells are independent virtual-time simulations and the engine
// reassembles results in input order, so parallelism must not change a
// single number.
func TestSweepDeterminism(t *testing.T) {
	opts := func(parallelism int, cs alya.Case, nodes []int) Options {
		return Options{Parallelism: parallelism, Case: cs, NodePoints: nodes}
	}
	figures := []struct {
		name  string
		cs    alya.Case
		nodes []int
		run   func(Options) (interface{}, error)
	}{
		{"fig1", tinyCase(alya.ArteryCFDLenox()), nil,
			func(o Options) (interface{}, error) { return Fig1(o) }},
		{"fig2", tinyCase(alya.ArteryCFDCTEPower()), []int{2, 4},
			func(o Options) (interface{}, error) { return Fig2(o) }},
		{"fig3", tinyCase(alya.ArteryFSIMareNostrum4()), []int{4, 8},
			func(o Options) (interface{}, error) { return Fig3(o) }},
	}
	for _, fig := range figures {
		t.Run(fig.name, func(t *testing.T) {
			serial, err := fig.run(opts(1, fig.cs, fig.nodes))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := fig.run(opts(8, fig.cs, fig.nodes))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s differs between parallelism 1 and 8:\n%+v\n%+v",
					fig.name, serial, parallel)
			}
		})
	}
}

// TestSweepImageMemoization asserts the engine builds each distinct
// (runtime, cluster, technique) image exactly once, however many cells
// and goroutines request it.
func TestSweepImageMemoization(t *testing.T) {
	sw := NewSweep(Options{Parallelism: 8})
	lenox := cluster.Lenox()
	sing := container.Singularity{Version: "2.5.1"}

	var first *container.Image
	var mu sync.Mutex
	err := sw.Each(16, func(i int) error {
		img, err := sw.ImageFor(sing, lenox, container.SystemSpecific)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if first == nil {
			first = img
		} else if first != img {
			return errors.New("memoized image rebuilt")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("no image built")
	}

	// A different technique, cluster, or runtime version is a distinct
	// key and must not collide.
	other, err := sw.ImageFor(sing, lenox, container.SelfContained)
	if err != nil {
		t.Fatal(err)
	}
	if other == first {
		t.Fatal("self-contained build collided with system-specific")
	}
	older, err := sw.ImageFor(container.Singularity{Version: "2.4.5"}, lenox, container.SystemSpecific)
	if err != nil {
		t.Fatal(err)
	}
	if older == first {
		t.Fatal("different runtime version collided")
	}

	// Bare metal memoizes its nil image without error.
	bare, err := sw.ImageFor(container.BareMetal{}, lenox, container.SystemSpecific)
	if err != nil {
		t.Fatal(err)
	}
	if bare != nil {
		t.Fatalf("bare metal image %v", bare)
	}
}

// TestSweepEachOrderAndErrors covers the pool's contracts: every index
// runs exactly once, output slots are disjoint, and the lowest-index
// error wins regardless of completion order.
func TestSweepEachOrderAndErrors(t *testing.T) {
	sw := NewSweep(Options{Parallelism: 4})

	const n = 64
	var ran [n]atomic.Int32
	out := make([]int, n)
	if err := sw.Each(n, func(i int) error {
		ran[i].Add(1)
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
		if out[i] != i*i {
			t.Fatalf("slot %d = %d", i, out[i])
		}
	}

	// Errors at several indices: the lowest one is reported.
	err := sw.Each(n, func(i int) error {
		if i == 7 || i == 3 || i == 40 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 3 failed" {
		t.Fatalf("lowest-index error not reported: %v", err)
	}

	if err := sw.Each(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("empty sweep errored: %v", err)
	}
}

// TestSweepRunWrapsErrors asserts a failing cell surfaces its label and
// the underlying cause through errors.Is.
func TestSweepRunWrapsErrors(t *testing.T) {
	mn4 := cluster.MareNostrum4()
	specs := []CellSpec{{
		Label:   "docker on mn4",
		Cluster: mn4, Runtime: container.Docker{}, Kind: container.SystemSpecific,
		Case:  reducedLenox(),
		Nodes: 2, Ranks: 2 * mn4.CoresPerNode(), Threads: 1,
	}}
	_, err := NewSweep(Options{}).Run(specs)
	if err == nil {
		t.Fatal("docker on MN4 should fail (needs root)")
	}
	if !errors.Is(err, container.ErrNeedsRoot) {
		t.Fatalf("cause not preserved: %v", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Label != "docker on mn4" {
		t.Fatalf("label not preserved: %v", err)
	}
}

// TestAdmissionTracking covers the rank-budget observability: the
// stats record how many workers a compute phase requested vs how many
// RankBudget admitted, the tightest observation wins, and an
// unclamped sweep reports full admission.
func TestAdmissionTracking(t *testing.T) {
	var st SweepStats
	if req, adm := st.Admission(); req != 0 || adm != 0 {
		t.Fatalf("zero stats report admission %d/%d", adm, req)
	}
	st.NoteAdmission(16, 16)
	st.NoteAdmission(16, 2) // tighter: wins
	st.NoteAdmission(16, 8) // looser: ignored
	if req, adm := st.Admission(); req != 16 || adm != 2 {
		t.Fatalf("admission = %d/%d, want 2/16", adm, req)
	}
	// Reset opens a fresh window, so a later phase clamped to the very
	// same values still reports its own observation (the CLI resets
	// per study).
	st.ResetAdmission()
	if req, adm := st.Admission(); req != 0 || adm != 0 {
		t.Fatalf("admission after reset = %d/%d, want 0/0", adm, req)
	}
	st.NoteAdmission(16, 2)
	if req, adm := st.Admission(); req != 16 || adm != 2 {
		t.Fatalf("re-recorded admission = %d/%d, want 2/16", adm, req)
	}

	// An oversized cell clamps the pool before any simulation: 16384
	// ranks fit only twice in the budget, so 64 requested workers
	// admit 2. The cell itself fails fast (it exceeds Lenox), which is
	// all this test needs — admission is recorded before execution.
	stats := &SweepStats{}
	specs := []CellSpec{{
		Label:   "oversized",
		Cluster: cluster.Lenox(), Runtime: container.BareMetal{},
		Case:  reducedLenox(),
		Nodes: 4, Ranks: RankBudget / 2, Threads: 1,
	}}
	if _, err := NewSweep(Options{Parallelism: 64, Stats: stats}).Run(specs); err == nil {
		t.Fatal("oversized cell ran")
	}
	if req, adm := stats.Admission(); req != 64 || adm != 2 {
		t.Fatalf("clamped admission = %d/%d, want 2/64", adm, req)
	}

	// A small sweep at small parallelism is not clamped.
	stats = &SweepStats{}
	opt := Options{Parallelism: 2, Stats: stats, Case: tinyCase(alya.ArteryFSIMareNostrum4()), NodePoints: []int{4}}
	if _, err := Fig3(opt); err != nil {
		t.Fatal(err)
	}
	if req, adm := stats.Admission(); req != 2 || adm != 2 {
		t.Fatalf("unclamped admission = %d/%d, want 2/2", adm, req)
	}
}
