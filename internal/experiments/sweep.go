package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/resultdb"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// CellSpec is one unit of work in a sweep: where a measurement runs,
// how its image is built, and the cell configuration. The engine
// builds (and memoizes) the image, so specs stay cheap to enumerate.
type CellSpec struct {
	// Label names the cell in error messages ("fig1 Docker 8x14").
	Label string
	// Cluster is the target machine.
	Cluster *cluster.Cluster
	// Runtime executes the cell; Kind is the image-build technique
	// (ignored for bare metal).
	Runtime container.Runtime
	Kind    container.BuildKind
	// ImageFrom, when non-nil, builds the image for that cluster
	// instead of Cluster — the portability study's cross-cluster runs.
	ImageFrom *cluster.Cluster
	// Case and the hybrid configuration mirror core.Cell.
	Case                  alya.Case
	Nodes, Ranks, Threads int
	Mode                  alya.Mode
	Allreduce             mpi.AllreduceAlgo
}

// id is the spec's content identity — everything that can change its
// simulated output, and nothing presentation-only (the Label).
func (sp CellSpec) id() core.CellID {
	return core.CellID{
		Cluster:   sp.Cluster,
		Runtime:   sp.Runtime,
		Kind:      sp.Kind,
		ImageFrom: sp.ImageFrom,
		Case:      sp.Case,
		Nodes:     sp.Nodes,
		Ranks:     sp.Ranks,
		Threads:   sp.Threads,
		Placement: sched.PlaceBlock,
		Mode:      sp.Mode,
		Allreduce: sp.Allreduce,
	}
}

// Key returns the spec's content address in the result store.
func (sp CellSpec) Key() (string, error) { return sp.id().Fingerprint() }

// DeployGroup fingerprints the cell's deployment: runtime, image-source
// cluster, and build technique — the same triple the engine memoizes
// image builds under. A coordinator that batches cells by group keeps
// each worker's builds warm instead of scattering one image's cells
// across the fleet.
func (sp CellSpec) DeployGroup() string {
	src := sp.Cluster
	if sp.ImageFrom != nil {
		src = sp.ImageFrom
	}
	name := ""
	if src != nil {
		name = src.Name
	}
	rt := "baremetal"
	if sp.Runtime != nil {
		rt = sp.Runtime.Name()
	}
	return fmt.Sprintf("%s|%s|%d", rt, name, sp.Kind)
}

// Sweep executes study cells on a bounded worker pool. Each cell is an
// independent virtual-time simulation, so cells run concurrently while
// results keep deterministic input order — parallel sweeps are
// byte-identical to serial ones. Image builds are memoized per
// (runtime, cluster, technique), so a sweep builds each image once
// instead of once per cell.
//
// With a result store attached (Options.Store), the engine consults it
// before simulating and commits after: a hit restores the stored
// outcome into its input-order slot, so cached sweeps stay
// byte-identical to cold ones while executing zero simulations. A
// shard restriction (Options.Shard) makes the engine compute only its
// deterministic slice of the enumerated cells, and Options.FromStore
// forbids computing at all — both report cells they could not produce
// through *MissingCellsError.
type Sweep struct {
	workers   int
	store     resultdb.Store
	shard     resultdb.Shard
	fromStore bool
	stats     *SweepStats

	// Telemetry taps (see Options.TraceDir / Options.Progress). Both
	// are passive: results are identical with or without them.
	traceDir    string
	traceEvents int
	progress    func(ProgressEvent)

	mu     sync.Mutex
	images map[imageKey]*imageEntry
}

// SweepStats counts how a sweep's cells were produced and aggregates
// the vtime kernel's scheduling counters over the simulated ones. The
// counters are atomic so one value can be shared across concurrent
// sweeps (the CLI threads one through a whole study run).
type SweepStats struct {
	// Hits counts cells restored from the result store.
	Hits atomic.Int64
	// Computed counts cells actually simulated.
	Computed atomic.Int64
	// NegHits counts cells whose recorded failure was replayed from
	// the store instead of re-simulating a known-bad configuration.
	NegHits atomic.Int64
	// Misses counts store lookups that found nothing — the cells a
	// populate sweep went on to simulate (or leave to other shards).
	Misses atomic.Int64
	// Puts counts results committed to the store; PutErrs failure
	// records committed. These are the sweep's own view — the CLI's
	// -v store line prints Store.Stats() instead, which can differ
	// (a tiered store also counts read-through populates).
	Puts, PutErrs atomic.Int64

	// Kernel scheduling counters, summed across simulated cells (see
	// vtime.Counters for field meanings).
	Switches    atomic.Int64
	SyncFast    atomic.Int64
	PingPong    atomic.Int64
	Wakes       atomic.Int64
	WakeBatches atomic.Int64
	HeapOps     atomic.Int64

	// admission packs the tightest worker admission any compute phase
	// observed (requested<<32 | admitted), so an oversized grid can
	// report that the rank budget — not the cell count or the CPU
	// count — bounded its concurrency. Zero until a compute phase runs.
	admission atomic.Uint64
}

// NoteAdmission records one compute phase's worker admission: how many
// workers the configuration requested and how many RankBudget let in.
// The tightest observation (smallest admitted) wins, so a study that
// runs several sweeps reports the one that actually throttled.
func (st *SweepStats) NoteAdmission(requested, admitted int) {
	packed := uint64(uint32(requested))<<32 | uint64(uint32(admitted))
	for {
		cur := st.admission.Load()
		if cur != 0 && uint32(cur) <= uint32(packed) {
			return
		}
		if st.admission.CompareAndSwap(cur, packed) {
			return
		}
	}
}

// Admission returns the tightest worker admission recorded since the
// last ResetAdmission; (0, 0) means no compute phase has run.
func (st *SweepStats) Admission() (requested, admitted int) {
	p := st.admission.Load()
	return int(p >> 32), int(uint32(p))
}

// ResetAdmission clears the gauge, opening a fresh observation
// window. A min-gauge cannot be delta-snapshotted like the counters,
// so a caller attributing clamps to phases (the CLI's per-study -v
// lines) resets it at each phase boundary.
func (st *SweepStats) ResetAdmission() { st.admission.Store(0) }

// AddKernel folds one execution's kernel counters into the totals.
func (st *SweepStats) AddKernel(c vtime.Counters) {
	st.Switches.Add(c.Switches)
	st.SyncFast.Add(c.SyncFast)
	st.PingPong.Add(c.PingPong)
	st.Wakes.Add(c.Wakes)
	st.WakeBatches.Add(c.WakeBatches)
	st.HeapOps.Add(c.HeapOps)
}

// Kernel returns the aggregated kernel counters as one value.
func (st *SweepStats) Kernel() vtime.Counters {
	return vtime.Counters{
		Switches:    st.Switches.Load(),
		SyncFast:    st.SyncFast.Load(),
		PingPong:    st.PingPong.Load(),
		Wakes:       st.Wakes.Load(),
		WakeBatches: st.WakeBatches.Load(),
		HeapOps:     st.HeapOps.Load(),
	}
}

// MissingCell names one cell a sweep could not produce.
type MissingCell struct {
	// Label is the cell's display name; Key its store address.
	Label, Key string
}

// MissingCellsError reports the cells a sharded or store-only sweep
// did not produce: cells owned by other shards that have not reached
// the store yet, or — under FromStore — cells never computed.
type MissingCellsError struct {
	Cells []MissingCell
}

// Error lists every missing cell with its key, so an operator can see
// exactly which shards still owe results.
func (e *MissingCellsError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "experiments: %d cells not in the result store:", len(e.Cells))
	for _, c := range e.Cells {
		fmt.Fprintf(&sb, "\n  %s (%s)", c.Label, c.Key)
	}
	return sb.String()
}

// imageKey identifies one memoized build. Runtime implementations are
// comparable value types, so the interface value itself (which carries
// the version) is part of the key.
type imageKey struct {
	rt      container.Runtime
	cluster string
	kind    container.BuildKind
}

// imageEntry coalesces concurrent builds of the same image.
type imageEntry struct {
	once sync.Once
	img  *container.Image
	err  error
}

// NewSweep creates an engine honouring opt.Parallelism (default:
// runtime.NumCPU()) and the store/shard configuration.
func NewSweep(opt Options) *Sweep {
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	stats := opt.Stats
	if stats == nil {
		stats = &SweepStats{}
	}
	return &Sweep{
		workers:     workers,
		store:       opt.Store,
		shard:       opt.Shard,
		fromStore:   opt.FromStore,
		stats:       stats,
		traceDir:    opt.TraceDir,
		traceEvents: opt.TraceEvents,
		progress:    opt.Progress,
		images:      make(map[imageKey]*imageEntry),
	}
}

// Stats returns the sweep's cache counters.
func (s *Sweep) Stats() *SweepStats { return s.stats }

// ImageFor returns the memoized image for (runtime, cluster,
// technique), building it on first use. Concurrent callers share one
// build. Bare metal returns nil, as core.BuildImageFor does.
func (s *Sweep) ImageFor(rt container.Runtime, cl *cluster.Cluster, kind container.BuildKind) (*container.Image, error) {
	key := imageKey{rt: rt, cluster: cl.Name, kind: kind}
	s.mu.Lock()
	e, ok := s.images[key]
	if !ok {
		e = &imageEntry{}
		s.images[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.img, e.err = core.BuildImageFor(rt, cl, kind) })
	return e.img, e.err
}

// Each runs fn(i) for every i in [0, n) on the worker pool and blocks
// until all calls return. Work is claimed in index order and stops
// being claimed after the first failure (cells already running finish,
// so expensive sweeps fail fast); when several calls fail, the
// lowest-index error is returned. Claim order makes that error
// deterministic: every index below a failing one was claimed before
// the failure could stop the pool, so the serial and parallel paths
// report the same cell. fn writes its own output slot — slots are
// disjoint, so no locking is needed.
func (s *Sweep) Each(n int, fn func(i int) error) error {
	return s.each(n, s.workers, fn)
}

func (s *Sweep) each(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(i); errs[i] != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					// Check the flag before claiming: a claimed index
					// must always execute, or an error at a higher
					// index could mask one below it.
					if failed.Load() {
						return
					}
					i := int(next.Add(1))
					if i >= n {
						return
					}
					if errs[i] = fn(i); errs[i] != nil {
						failed.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RankBudget bounds the total simulated ranks in flight: every rank
// is a goroutine (stack plus solver state), so a pool of NumCPU
// paper-scale cells — fig3's largest simulates 12,288 ranks — would
// multiply peak memory by the core count. Cells above the budget
// still run, one at a time. The admission clamp is observable:
// SweepStats.Admission reports workers admitted vs requested, and the
// CLI's -v surfaces it so an oversized scenario grid explains its own
// throughput.
const RankBudget = 32768

// workersFor bounds the pool so concurrent cells stay within
// RankBudget simulated ranks, using the sweep's largest cell as the
// weight, and records the admission in the stats.
func (s *Sweep) workersFor(specs []CellSpec) int {
	maxRanks := 1
	for _, sp := range specs {
		if sp.Ranks > maxRanks {
			maxRanks = sp.Ranks
		}
	}
	workers := s.workers
	if fit := RankBudget / maxRanks; fit < workers {
		workers = fit
	}
	if workers < 1 {
		workers = 1
	}
	if len(specs) > 0 {
		s.stats.NoteAdmission(s.workers, workers)
	}
	return workers
}

// Run executes every spec and returns the results in spec order. A
// failing cell's error is wrapped with its Label.
//
// With a store attached, cached cells are restored instead of
// simulated and fresh results are committed; restores land in the
// same input-order slots, so a warm sweep's results are deep-equal to
// a cold sweep's. Under an active shard, only cells the shard owns
// (plus cache hits) are produced; under FromStore nothing is
// simulated. In both cases, any cell left unproduced makes Run return
// a *MissingCellsError after the owned cells have been computed and
// committed — a sharded populate run does all its work before
// reporting what it left to the other shards.
func (s *Sweep) Run(specs []CellSpec) ([]core.Result, error) {
	results := make([]core.Result, len(specs))
	var done atomic.Int64
	if s.store == nil {
		if s.fromStore || s.shard.Active() {
			return nil, fmt.Errorf("experiments: sharded or store-only sweeps need a result store")
		}
		err := s.each(len(specs), s.workersFor(specs), func(i int) error {
			res, err := s.runSpec(specs[i])
			if err != nil {
				return &CellError{Label: specs[i].Label, Err: err}
			}
			results[i] = res
			s.note(&done, len(specs), specs[i].Label, false)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return results, nil
	}

	if err := s.shard.Validate(); err != nil {
		return nil, err
	}
	keys := make([]string, len(specs))
	for i := range specs {
		k, err := specs[i].Key()
		if err != nil {
			return nil, &CellError{Label: specs[i].Label, Err: err}
		}
		keys[i] = k
	}
	// Pin the whole working set for the duration of the run, so an
	// in-process GC never evicts a cell between its lookup and its
	// use. Pins don't cross the wire: a remote registry's server-side
	// GC relies on access recency instead (see resultdb.Pinner).
	if p, ok := s.store.(resultdb.Pinner); ok {
		defer p.Pin(keys)()
	}

	// Announce the working set before the lookup fan-out: a network
	// store answers with one manifest fetch and resolves lookups of
	// keys the registry lacks locally — on a sharded populate sweep
	// that replaces a round trip per other-shard cell with one per
	// sweep. StoreStats.PrefetchSkips counts the avoided trips.
	if pf, ok := s.store.(resultdb.Prefetcher); ok && len(keys) > 1 {
		pf.Prefetch(keys)
	}

	// Consult the store first; hits restore into their input-order
	// slots, and a recorded failure replays without re-simulating the
	// known-bad cell — distinctly from missing cells, which surface as
	// *MissingCellsError. A lookup error is neither: the store itself
	// (a registry that is down, a schema conflict) failed, and the
	// sweep fails with it rather than recomputing the world. Lookups
	// fan out over the worker pool — against a registry each one is a
	// network round trip, and a warm merge is nothing but this loop —
	// while the error reported stays the lowest-index one, exactly as
	// in a serial consultation. What remains is split into cells this
	// invocation computes and cells it must leave to other shards (or,
	// under FromStore, to nobody).
	hit := make([]bool, len(specs))
	err := s.each(len(specs), s.workers, func(i int) error {
		ent, ok, err := s.store.Lookup(keys[i])
		if err != nil {
			return &CellError{Label: specs[i].Label, Err: err}
		}
		if !ok {
			s.stats.Misses.Add(1)
			return nil
		}
		if ent.Err != "" {
			s.stats.NegHits.Add(1)
			return &CellError{Label: specs[i].Label, Err: &resultdb.RecordedError{Key: keys[i], Msg: ent.Err}}
		}
		cell, err := s.cellFor(specs[i])
		if err != nil {
			return &CellError{Label: specs[i].Label, Err: err}
		}
		results[i] = ent.Result.Restore(cell)
		s.stats.Hits.Add(1)
		hit[i] = true
		s.note(&done, len(specs), specs[i].Label, true)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var torun, missing []int
	for i := range specs {
		switch {
		case hit[i]:
		case s.fromStore, !s.shard.Owns(keys[i]):
			missing = append(missing, i)
		default:
			torun = append(torun, i)
		}
	}

	sub := make([]CellSpec, len(torun))
	for j, i := range torun {
		sub[j] = specs[i]
	}
	err = s.each(len(torun), s.workersFor(sub), func(j int) error {
		i := torun[j]
		res, err := s.runSpec(specs[i])
		if err != nil {
			// Cell outcomes are pure functions of the spec, so the
			// failure is deterministic: record it so repeated sweeps
			// skip the known-bad cell. A store error must not mask the
			// cell failure, which still surfaces either way.
			if s.store.PutError(keys[i], err.Error()) == nil {
				s.stats.PutErrs.Add(1)
			}
			return &CellError{Label: specs[i].Label, Err: err}
		}
		if err := s.store.Put(keys[i], res.Saved()); err != nil {
			return &CellError{Label: specs[i].Label, Err: err}
		}
		s.stats.Puts.Add(1)
		results[i] = res
		s.note(&done, len(specs), specs[i].Label, false)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(missing) > 0 {
		e := &MissingCellsError{}
		for _, i := range missing {
			e.Cells = append(e.Cells, MissingCell{Label: specs[i].Label, Key: keys[i]})
		}
		return nil, e
	}
	return results, nil
}

// RunOne produces a single cell through the same store discipline as
// Run: a hit restores; a miss simulates and commits; FromStore, or an
// active shard that does not own the key, turns a miss into a
// *MissingCellsError. Callers running many RunOne cells (portability)
// collect those and report the full missing set, so N shards stay
// disjoint on single cells exactly as they are on sweeps.
func (s *Sweep) RunOne(sp CellSpec) (core.Result, error) {
	if s.store == nil {
		if s.fromStore || s.shard.Active() {
			return core.Result{}, fmt.Errorf("experiments: sharded or store-only sweeps need a result store")
		}
		return s.runSpec(sp)
	}
	if err := s.shard.Validate(); err != nil {
		return core.Result{}, err
	}
	key, err := sp.Key()
	if err != nil {
		return core.Result{}, err
	}
	if p, ok := s.store.(resultdb.Pinner); ok {
		defer p.Pin([]string{key})()
	}
	ent, ok, err := s.store.Lookup(key)
	if err != nil {
		return core.Result{}, &CellError{Label: sp.Label, Err: err}
	}
	if ok {
		if ent.Err != "" {
			s.stats.NegHits.Add(1)
			return core.Result{}, &CellError{Label: sp.Label, Err: &resultdb.RecordedError{Key: key, Msg: ent.Err}}
		}
		cell, err := s.cellFor(sp)
		if err != nil {
			return core.Result{}, err
		}
		s.stats.Hits.Add(1)
		return ent.Result.Restore(cell), nil
	}
	s.stats.Misses.Add(1)
	if s.fromStore || !s.shard.Owns(key) {
		return core.Result{}, &MissingCellsError{Cells: []MissingCell{{Label: sp.Label, Key: key}}}
	}
	res, err := s.runSpec(sp)
	if err != nil {
		if s.store.PutError(key, err.Error()) == nil {
			s.stats.PutErrs.Add(1)
		}
		return core.Result{}, err
	}
	if err := s.store.Put(key, res.Saved()); err != nil {
		return core.Result{}, err
	}
	s.stats.Puts.Add(1)
	return res, nil
}

// cellFor assembles the core.Cell a spec describes, building (or
// fetching the memoized) image. It is shared by the compute path and
// the cache-hit restore path, so restored results echo exactly the
// cell a cold run would have.
func (s *Sweep) cellFor(sp CellSpec) (core.Cell, error) {
	src := sp.Cluster
	if sp.ImageFrom != nil {
		src = sp.ImageFrom
	}
	img, err := s.ImageFor(sp.Runtime, src, sp.Kind)
	if err != nil {
		return core.Cell{}, err
	}
	return core.Cell{
		Cluster:   sp.Cluster,
		Runtime:   sp.Runtime,
		Image:     img,
		Case:      sp.Case,
		Nodes:     sp.Nodes,
		Ranks:     sp.Ranks,
		Threads:   sp.Threads,
		Placement: sched.PlaceBlock,
		Mode:      sp.Mode,
		Allreduce: sp.Allreduce,
	}, nil
}

// runSpec executes one cell: memoized image build, then the
// measurement. With tracing enabled, a CellTrace taps the execution
// and is exported keyed by the cell's fingerprint, together with the
// cell's time-attribution profile (<key>.profile.json, consumed by
// `hpcstudy analyze`); an artifact that cannot be written fails the
// cell loudly rather than silently losing what the operator asked for.
func (s *Sweep) runSpec(sp CellSpec) (core.Result, error) {
	cell, err := s.cellFor(sp)
	if err != nil {
		return core.Result{}, err
	}
	var tr *telemetry.CellTrace
	var rec *profile.Recorder
	if s.traceDir != "" {
		tr = telemetry.NewCellTrace(sp.Label, s.traceEvents)
		// The recorder consumes the unbounded forwarded stream, so
		// attribution stays exact even when the trace ring drops old
		// events.
		rec = profile.NewRecorder()
		tr.Forward(rec)
		cell.Observer = tr
		cell.KernelTracer = tr
	}
	res, err := core.RunCell(cell)
	if err != nil {
		return core.Result{}, err
	}
	s.stats.Computed.Add(1)
	if tr != nil {
		tr.SetKernel(res.Exec.MPI.Kernel)
		key, err := sp.Key()
		if err != nil {
			return core.Result{}, err
		}
		if err := tr.WriteFile(s.traceDir, key); err != nil {
			return core.Result{}, err
		}
		prof, err := rec.Profile(sp.Label, key, res.Exec.MPI.RankEnd)
		if err != nil {
			return core.Result{}, err
		}
		if err := prof.WriteFile(s.traceDir); err != nil {
			return core.Result{}, err
		}
	}
	// Kernel counters and telemetry taps are wall-cost observability,
	// not simulation output: aggregate the counters into the sweep
	// stats and strip both from the result, so warm (restored) and
	// cold results stay deep-equal.
	s.stats.AddKernel(res.Exec.MPI.Kernel)
	res.Exec.MPI.Kernel = vtime.Counters{}
	res.Cell.Observer = nil
	res.Cell.KernelTracer = nil
	return res, nil
}

// note emits one progress event; done must be this sweep call's own
// counter so concurrent studies sharing an engine never interleave
// counts.
func (s *Sweep) note(done *atomic.Int64, total int, label string, cached bool) {
	if s.progress == nil {
		return
	}
	s.progress(ProgressEvent{Done: int(done.Add(1)), Total: total, Label: label, Cached: cached})
}

// CellError annotates a cell failure with the cell's label.
type CellError struct {
	Label string
	Err   error
}

// Error implements error.
func (e *CellError) Error() string { return e.Label + ": " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }
