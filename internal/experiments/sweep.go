package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// CellSpec is one unit of work in a sweep: where a measurement runs,
// how its image is built, and the cell configuration. The engine
// builds (and memoizes) the image, so specs stay cheap to enumerate.
type CellSpec struct {
	// Label names the cell in error messages ("fig1 Docker 8x14").
	Label string
	// Cluster is the target machine.
	Cluster *cluster.Cluster
	// Runtime executes the cell; Kind is the image-build technique
	// (ignored for bare metal).
	Runtime container.Runtime
	Kind    container.BuildKind
	// Case and the hybrid configuration mirror core.Cell.
	Case                  alya.Case
	Nodes, Ranks, Threads int
	Mode                  alya.Mode
	Allreduce             mpi.AllreduceAlgo
}

// Sweep executes study cells on a bounded worker pool. Each cell is an
// independent virtual-time simulation, so cells run concurrently while
// results keep deterministic input order — parallel sweeps are
// byte-identical to serial ones. Image builds are memoized per
// (runtime, cluster, technique), so a sweep builds each image once
// instead of once per cell.
type Sweep struct {
	workers int

	mu     sync.Mutex
	images map[imageKey]*imageEntry
}

// imageKey identifies one memoized build. Runtime implementations are
// comparable value types, so the interface value itself (which carries
// the version) is part of the key.
type imageKey struct {
	rt      container.Runtime
	cluster string
	kind    container.BuildKind
}

// imageEntry coalesces concurrent builds of the same image.
type imageEntry struct {
	once sync.Once
	img  *container.Image
	err  error
}

// NewSweep creates an engine honouring opt.Parallelism (default:
// runtime.NumCPU()).
func NewSweep(opt Options) *Sweep {
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Sweep{workers: workers, images: make(map[imageKey]*imageEntry)}
}

// ImageFor returns the memoized image for (runtime, cluster,
// technique), building it on first use. Concurrent callers share one
// build. Bare metal returns nil, as core.BuildImageFor does.
func (s *Sweep) ImageFor(rt container.Runtime, cl *cluster.Cluster, kind container.BuildKind) (*container.Image, error) {
	key := imageKey{rt: rt, cluster: cl.Name, kind: kind}
	s.mu.Lock()
	e, ok := s.images[key]
	if !ok {
		e = &imageEntry{}
		s.images[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.img, e.err = core.BuildImageFor(rt, cl, kind) })
	return e.img, e.err
}

// Each runs fn(i) for every i in [0, n) on the worker pool and blocks
// until all calls return. Work is claimed in index order and stops
// being claimed after the first failure (cells already running finish,
// so expensive sweeps fail fast); when several calls fail, the
// lowest-index error is returned. Claim order makes that error
// deterministic: every index below a failing one was claimed before
// the failure could stop the pool, so the serial and parallel paths
// report the same cell. fn writes its own output slot — slots are
// disjoint, so no locking is needed.
func (s *Sweep) Each(n int, fn func(i int) error) error {
	return s.each(n, s.workers, fn)
}

func (s *Sweep) each(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(i); errs[i] != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					// Check the flag before claiming: a claimed index
					// must always execute, or an error at a higher
					// index could mask one below it.
					if failed.Load() {
						return
					}
					i := int(next.Add(1))
					if i >= n {
						return
					}
					if errs[i] = fn(i); errs[i] != nil {
						failed.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rankBudget bounds the total simulated ranks in flight: every rank
// is a goroutine (stack plus solver state), so a pool of NumCPU
// paper-scale cells — fig3's largest simulates 12,288 ranks — would
// multiply peak memory by the core count. Cells above the budget
// still run, one at a time.
const rankBudget = 32768

// workersFor bounds the pool so concurrent cells stay within
// rankBudget simulated ranks, using the sweep's largest cell as the
// weight.
func (s *Sweep) workersFor(specs []CellSpec) int {
	maxRanks := 1
	for _, sp := range specs {
		if sp.Ranks > maxRanks {
			maxRanks = sp.Ranks
		}
	}
	workers := s.workers
	if fit := rankBudget / maxRanks; fit < workers {
		workers = fit
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes every spec and returns the results in spec order. A
// failing cell's error is wrapped with its Label.
func (s *Sweep) Run(specs []CellSpec) ([]core.Result, error) {
	results := make([]core.Result, len(specs))
	err := s.each(len(specs), s.workersFor(specs), func(i int) error {
		res, err := s.runSpec(specs[i])
		if err != nil {
			return &CellError{Label: specs[i].Label, Err: err}
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runSpec executes one cell: memoized image build, then the
// measurement.
func (s *Sweep) runSpec(sp CellSpec) (core.Result, error) {
	img, err := s.ImageFor(sp.Runtime, sp.Cluster, sp.Kind)
	if err != nil {
		return core.Result{}, err
	}
	return core.RunCell(core.Cell{
		Cluster:   sp.Cluster,
		Runtime:   sp.Runtime,
		Image:     img,
		Case:      sp.Case,
		Nodes:     sp.Nodes,
		Ranks:     sp.Ranks,
		Threads:   sp.Threads,
		Placement: sched.PlaceBlock,
		Mode:      sp.Mode,
		Allreduce: sp.Allreduce,
	})
}

// CellError annotates a cell failure with the cell's label.
type CellError struct {
	Label string
	Err   error
}

// Error implements error.
func (e *CellError) Error() string { return e.Label + ": " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }
