package experiments

import (
	"fmt"
	"io"

	"repro/internal/appio"
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/units"
)

// IORow is one (runtime/path, node count) measurement of the I/O study.
type IORow struct {
	// Runtime labels the configuration ("Docker (overlay)", ...).
	Runtime string
	// Path is the storage route.
	Path appio.Path
	// Nodes is the job size.
	Nodes int
	// Report is the checkpoint cost breakdown.
	Report appio.Report
}

// IOStudyResult extends the paper with its named future work: the cost
// of writing application checkpoints through each container storage
// path on Lenox.
type IOStudyResult struct {
	// Checkpoint is the workload written.
	Checkpoint appio.Checkpoint
	// Rows hold one entry per (configuration, node count).
	Rows []IORow
}

// IOStudy computes the checkpoint-write comparison on Lenox for the
// bind-mount path (bare metal, Singularity, Shifter), Docker's overlay
// filesystem, and Docker volumes.
func IOStudy(opt Options) (*IOStudyResult, error) {
	lenox := cluster.Lenox()
	nodes := opt.nodesOr([]int{1, 2, 4})
	ck := appio.Checkpoint{
		Cells:         alyaLenoxCells,
		Fields:        4, // u, v, w, p
		BytesPerValue: 8,
		FilesPerRank:  4,
	}
	model := appio.DefaultModel()
	configs := []struct {
		label string
		path  appio.Path
	}{
		{"Bare-metal / Singularity / Shifter (bind)", appio.PathBindMount},
		{"Docker (overlay fs)", appio.PathOverlay},
		{"Docker (volume)", appio.PathVolume},
	}
	type ioCell struct {
		label string
		path  appio.Path
		nodes int
	}
	var cells []ioCell
	for _, cfg := range configs {
		for _, n := range nodes {
			cells = append(cells, ioCell{label: cfg.label, path: cfg.path, nodes: n})
		}
	}

	out := &IOStudyResult{Checkpoint: ck, Rows: make([]IORow, len(cells))}
	sw := NewSweep(opt)
	err := sw.Each(len(cells), func(i int) error {
		c := cells[i]
		ranks := c.nodes * lenox.CoresPerNode()
		rep, err := model.CheckpointTime(lenox, c.nodes, ranks, ck, c.path)
		if err != nil {
			return fmt.Errorf("iostudy %s %d nodes: %w", c.label, c.nodes, err)
		}
		out.Rows[i] = IORow{Runtime: c.label, Path: c.path, Nodes: c.nodes, Report: rep}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// alyaLenoxCells matches the Fig. 1 case mesh (288×288×240).
const alyaLenoxCells = 288 * 288 * 240

// Find returns the row for a path and node count.
func (r *IOStudyResult) Find(p appio.Path, nodes int) (*IORow, error) {
	for i := range r.Rows {
		if r.Rows[i].Path == p && r.Rows[i].Nodes == nodes {
			return &r.Rows[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: no iostudy row %v/%d", p, nodes)
}

// Render writes the study as a table.
func (r *IOStudyResult) Render(w io.Writer) {
	t := report.NewTable(
		fmt.Sprintf("I/O extension: one %v checkpoint through each container storage path (Lenox)",
			r.Checkpoint.Size()),
		"Configuration", "Nodes", "Write [s]", "Metadata [s]", "Stage-out [s]", "Total [s]")
	for _, row := range r.Rows {
		t.AddRow(row.Runtime, row.Nodes,
			report.Seconds(row.Report.WriteTime),
			report.Seconds(row.Report.MetadataTime),
			report.Seconds(row.Report.StageOutTime),
			report.Seconds(row.Report.Total()))
	}
	t.Render(w)
}

// StepShare reports the fraction of solver step time one checkpoint
// adds when dumped every `everySteps` steps of duration stepTime.
func (r *IORow) StepShare(stepTime units.Seconds, everySteps int) float64 {
	if stepTime <= 0 || everySteps <= 0 {
		return 0
	}
	return float64(r.Report.Total()) / (float64(stepTime) * float64(everySteps))
}
