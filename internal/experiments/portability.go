package experiments

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/topology"
)

// PortabilityCell is one (image build, target cluster) attempt.
type PortabilityCell struct {
	// ImageArch and Kind identify the build; BuiltFor names the host
	// ABI a system-specific image binds.
	ImageArch topology.ISA
	Kind      container.BuildKind
	BuiltFor  string
	// Cluster is the target machine.
	Cluster string
	// Runs reports whether the image executes there.
	Runs bool
	// Why explains a failure ("wrong architecture", "host ABI
	// mismatch") or names the fabric path used on success.
	Why string
	// SlowdownVsBare is elapsed time relative to bare metal on the
	// same cluster and configuration (successful runs only).
	SlowdownVsBare float64
}

// PortabilityResult holds the §B.2 matrix: the same containerized
// application built with two techniques, attempted on all three
// architectures.
type PortabilityResult struct {
	// Cells has one entry per (build, cluster) attempt.
	Cells []PortabilityCell
}

// portabilityClusters are the three study architectures plus Lenox;
// Lenox and MareNostrum4 share the amd64 ISA but different host MPI
// stacks, which is the pair that exposes the system-specific
// technique's ABI coupling (not just its ISA coupling).
func portabilityClusters() []*cluster.Cluster {
	return []*cluster.Cluster{cluster.MareNostrum4(), cluster.CTEPower(), cluster.ThunderX(), cluster.Lenox()}
}

// Portability reproduces the build-technique × architecture study:
// every image is built once (for its source cluster and technique) and
// executed everywhere. The (build, target) attempts are enumerated up
// front and run concurrently on the sweep engine; builds are memoized,
// so the engine performs one build per (source, technique).
func Portability(opt Options) (*PortabilityResult, error) {
	targets := portabilityClusters()
	sing := container.Singularity{Version: "2.5.x"}
	cs := opt.caseOr(alya.QuickCFD(4))
	cs.SimSteps = 1
	cs.Steps = 1

	type attempt struct {
		source *cluster.Cluster
		kind   container.BuildKind
		target *cluster.Cluster
	}
	var attempts []attempt
	for _, source := range targets {
		for _, kind := range []container.BuildKind{container.SystemSpecific, container.SelfContained} {
			for _, target := range targets {
				attempts = append(attempts, attempt{source: source, kind: kind, target: target})
			}
		}
	}

	out := &PortabilityResult{Cells: make([]PortabilityCell, len(attempts))}
	sw := NewSweep(opt)
	err := sw.Each(len(attempts), func(i int) error {
		a := attempts[i]
		img, err := sw.ImageFor(sing, a.source, a.kind)
		if err != nil {
			return fmt.Errorf("portability build %s/%v: %w", a.source.Name, a.kind, err)
		}
		cell := PortabilityCell{
			ImageArch: img.Arch,
			Kind:      a.kind,
			BuiltFor:  a.source.Name,
			Cluster:   a.target.Name,
		}
		profile, err := sing.ExecProfile(a.target, img)
		switch {
		case errors.Is(err, container.ErrWrongArch):
			cell.Why = "wrong architecture (exec format error)"
		case errors.Is(err, container.ErrHostABI):
			cell.Why = "host MPI/fabric ABI mismatch"
		case err != nil:
			cell.Why = err.Error()
		default:
			cell.Runs = true
			cell.Why = "runs via " + profile.FabricPath
			slow, err := portabilitySlowdown(a.target, sing, img, cs, opt.Mode)
			if err != nil {
				return fmt.Errorf("portability run %s on %s: %w", img.Kind, a.target.Name, err)
			}
			cell.SlowdownVsBare = slow
		}
		out.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// portabilitySlowdown measures elapsed time vs bare metal on a small
// 2-node configuration.
func portabilitySlowdown(cl *cluster.Cluster, rt container.Runtime, img *container.Image,
	cs alya.Case, mode alya.Mode) (float64, error) {

	nodes := 2
	ranks := nodes * cl.CoresPerNode()
	run := func(rt container.Runtime, img *container.Image) (float64, error) {
		res, err := core.RunCell(core.Cell{
			Cluster: cl, Runtime: rt, Image: img, Case: cs,
			Nodes: nodes, Ranks: ranks, Threads: 1,
			Placement: sched.PlaceBlock, Mode: mode,
			Allreduce: mpi.AllreduceRecursiveDoubling,
		})
		if err != nil {
			return 0, err
		}
		return float64(res.Exec.Elapsed), nil
	}
	bare, err := run(container.BareMetal{}, nil)
	if err != nil {
		return 0, err
	}
	cont, err := run(rt, img)
	if err != nil {
		return 0, err
	}
	if bare <= 0 {
		return 0, fmt.Errorf("portability: zero bare-metal time")
	}
	return cont / bare, nil
}

// Find returns the cell for a build (by source cluster and kind) on a
// target cluster.
func (p *PortabilityResult) Find(builtFor string, kind container.BuildKind, target string) (*PortabilityCell, error) {
	for i := range p.Cells {
		c := &p.Cells[i]
		if c.BuiltFor == builtFor && c.Kind == kind && c.Cluster == target {
			return c, nil
		}
	}
	return nil, fmt.Errorf("experiments: no portability cell %s/%v on %s", builtFor, kind, target)
}

// Render writes the matrix.
func (p *PortabilityResult) Render(w io.Writer) {
	t := report.NewTable("Portability: image builds × target architectures (Singularity)",
		"Image (built for)", "Technique", "Arch", "Target", "Outcome", "Slowdown vs bare")
	for _, c := range p.Cells {
		slow := "-"
		if c.Runs {
			slow = fmt.Sprintf("%.2fx", c.SlowdownVsBare)
		}
		t.AddRow(c.BuiltFor, c.Kind.String(), string(c.ImageArch), c.Cluster, c.Why, slow)
	}
	t.Render(w)
}
