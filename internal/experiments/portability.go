package experiments

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/mpi"
	"repro/internal/report"
	"repro/internal/topology"
)

// PortabilityCell is one (image build, target cluster) attempt.
type PortabilityCell struct {
	// ImageArch and Kind identify the build; BuiltFor names the host
	// ABI a system-specific image binds.
	ImageArch topology.ISA
	Kind      container.BuildKind
	BuiltFor  string
	// Cluster is the target machine.
	Cluster string
	// Runs reports whether the image executes there.
	Runs bool
	// Why explains a failure ("wrong architecture", "host ABI
	// mismatch") or names the fabric path used on success.
	Why string
	// SlowdownVsBare is elapsed time relative to bare metal on the
	// same cluster and configuration (successful runs only).
	SlowdownVsBare float64
}

// PortabilityResult holds the §B.2 matrix: the same containerized
// application built with two techniques, attempted on all three
// architectures.
type PortabilityResult struct {
	// Cells has one entry per (build, cluster) attempt.
	Cells []PortabilityCell
}

// portabilityClusters are the three study architectures plus Lenox;
// Lenox and MareNostrum4 share the amd64 ISA but different host MPI
// stacks, which is the pair that exposes the system-specific
// technique's ABI coupling (not just its ISA coupling).
func portabilityClusters() []*cluster.Cluster {
	return []*cluster.Cluster{cluster.MareNostrum4(), cluster.CTEPower(), cluster.ThunderX(), cluster.Lenox()}
}

// Portability reproduces the build-technique × architecture study:
// every image is built once (for its source cluster and technique) and
// executed everywhere. The (build, target) attempts are enumerated up
// front and run concurrently on the sweep engine; builds are memoized,
// so the engine performs one build per (source, technique).
func Portability(opt Options) (*PortabilityResult, error) {
	targets := portabilityClusters()
	sing := container.Singularity{Version: "2.5.x"}
	cs := opt.caseOr(alya.QuickCFD(4))
	cs.SimSteps = 1
	cs.Steps = 1

	type attempt struct {
		source *cluster.Cluster
		kind   container.BuildKind
		target *cluster.Cluster
	}
	var attempts []attempt
	for _, source := range targets {
		for _, kind := range []container.BuildKind{container.SystemSpecific, container.SelfContained} {
			for _, target := range targets {
				attempts = append(attempts, attempt{source: source, kind: kind, target: target})
			}
		}
	}

	out := &PortabilityResult{Cells: make([]PortabilityCell, len(attempts))}
	// missing collects, per attempt slot, the slowdown cells a
	// FromStore or sharded sweep could not produce; deferring them
	// lets every attempt run, so the failure lists the complete set
	// instead of aborting at the first absent cell.
	missing := make([][]MissingCell, len(attempts))
	sw := NewSweep(opt)
	err := sw.Each(len(attempts), func(i int) error {
		a := attempts[i]
		img, err := sw.ImageFor(sing, a.source, a.kind)
		if err != nil {
			return fmt.Errorf("portability build %s/%v: %w", a.source.Name, a.kind, err)
		}
		cell := PortabilityCell{
			ImageArch: img.Arch,
			Kind:      a.kind,
			BuiltFor:  a.source.Name,
			Cluster:   a.target.Name,
		}
		profile, err := sing.ExecProfile(a.target, img)
		switch {
		case errors.Is(err, container.ErrWrongArch):
			cell.Why = "wrong architecture (exec format error)"
		case errors.Is(err, container.ErrHostABI):
			cell.Why = "host MPI/fabric ABI mismatch"
		case err != nil:
			cell.Why = err.Error()
		default:
			cell.Runs = true
			cell.Why = "runs via " + profile.FabricPath
			slow, miss, err := portabilitySlowdown(sw, sing, a.target, a.source, a.kind, cs, opt.Mode)
			if err != nil {
				return fmt.Errorf("portability run %s on %s: %w", img.Kind, a.target.Name, err)
			}
			if len(miss) > 0 {
				missing[i] = miss
				break
			}
			cell.SlowdownVsBare = slow
		}
		out.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Aggregate deferred misses in attempt order, deduplicating the
	// bare-metal baselines shared across attempts on one target.
	seen := make(map[string]bool)
	var all []MissingCell
	for _, miss := range missing {
		for _, c := range miss {
			if !seen[c.Key] {
				seen[c.Key] = true
				all = append(all, c)
			}
		}
	}
	if len(all) > 0 {
		return nil, &MissingCellsError{Cells: all}
	}
	return out, nil
}

// portabilitySlowdown measures elapsed time vs bare metal on a small
// 2-node configuration. Both cells run through the sweep engine, so a
// result store caches them like any figure cell; the bare-metal
// baseline is shared by every successful attempt on the same target.
// Under FromStore — or an active shard that owns neither cell —
// absent cells are returned as missing (both of them when both are
// absent) rather than as an error, so the caller can report the
// sweep's complete missing set; a later merge computes the ratio once
// every shard has committed its slice.
func portabilitySlowdown(sw *Sweep, sing container.Singularity, target, source *cluster.Cluster,
	kind container.BuildKind, cs alya.Case, mode alya.Mode) (float64, []MissingCell, error) {

	nodes := 2
	ranks := nodes * target.CoresPerNode()
	var missing []MissingCell
	run := func(label string, rt container.Runtime, imageFrom *cluster.Cluster, kind container.BuildKind) (float64, error) {
		res, err := sw.RunOne(CellSpec{
			Label:   label,
			Cluster: target, Runtime: rt, Kind: kind, ImageFrom: imageFrom,
			Case:  cs,
			Nodes: nodes, Ranks: ranks, Threads: 1,
			Mode: mode, Allreduce: mpi.AllreduceRecursiveDoubling,
		})
		var miss *MissingCellsError
		if errors.As(err, &miss) {
			missing = append(missing, miss.Cells...)
			return 0, nil
		}
		if err != nil {
			return 0, err
		}
		return float64(res.Exec.Elapsed), nil
	}
	bare, err := run(fmt.Sprintf("portability bare-metal on %s", target.Name),
		container.BareMetal{}, nil, container.SystemSpecific)
	if err != nil {
		return 0, nil, err
	}
	cont, err := run(fmt.Sprintf("portability %s/%v on %s", source.Name, kind, target.Name),
		sing, source, kind)
	if err != nil {
		return 0, nil, err
	}
	if len(missing) > 0 {
		return 0, missing, nil
	}
	if bare <= 0 {
		return 0, nil, fmt.Errorf("portability: zero bare-metal time")
	}
	return cont / bare, nil, nil
}

// Find returns the cell for a build (by source cluster and kind) on a
// target cluster.
func (p *PortabilityResult) Find(builtFor string, kind container.BuildKind, target string) (*PortabilityCell, error) {
	for i := range p.Cells {
		c := &p.Cells[i]
		if c.BuiltFor == builtFor && c.Kind == kind && c.Cluster == target {
			return c, nil
		}
	}
	return nil, fmt.Errorf("experiments: no portability cell %s/%v on %s", builtFor, kind, target)
}

// Render writes the matrix.
func (p *PortabilityResult) Render(w io.Writer) {
	t := report.NewTable("Portability: image builds × target architectures (Singularity)",
		"Image (built for)", "Technique", "Arch", "Target", "Outcome", "Slowdown vs bare")
	for _, c := range p.Cells {
		slow := "-"
		if c.Runs {
			slow = fmt.Sprintf("%.2fx", c.SlowdownVsBare)
		}
		t.AddRow(c.BuiltFor, c.Kind.String(), string(c.ImageArch), c.Cluster, c.Why, slow)
	}
	t.Render(w)
}
