package experiments

import (
	"strings"
	"testing"

	"repro/internal/alya"
	"repro/internal/appio"
	"repro/internal/container"
	"repro/internal/metrics"
)

// reducedLenox returns the Fig. 1 case with a shorter simulated solve;
// relative behaviour between runtimes is preserved (all per-iteration
// costs scale together).
func reducedLenox() alya.Case {
	c := alya.ArteryCFDLenox()
	c.SimSteps = 1
	c.ModelCGIters = 30
	return c
}

func reducedCTEPower() alya.Case {
	c := alya.ArteryCFDCTEPower()
	c.SimSteps = 1
	c.ModelCGIters = 30
	return c
}

func reducedFSI() alya.Case {
	c := alya.ArteryFSIMareNostrum4()
	c.ModelCGIters = 60
	return c
}

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 sweep skipped in -short")
	}
	res, err := Fig1(Options{Case: reducedLenox()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("%d series", len(res.Series))
	}
	bare, err := res.SeriesByLabel("Bare-metal")
	if err != nil {
		t.Fatal(err)
	}
	docker, err := res.SeriesByLabel("Docker")
	if err != nil {
		t.Fatal(err)
	}

	// Claim 1: the HPC runtimes track bare metal within a few percent
	// at every configuration.
	for _, name := range []string{"Singularity", "Shifter"} {
		s, err := res.SeriesByLabel(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s.Points {
			over := metrics.RelDiff(s.Points[i].T, bare.Points[i].T)
			if over > 0.05 || over < -0.02 {
				t.Errorf("%s at %v: %.1f%% off bare metal", name, res.Configs[i], over*100)
			}
		}
	}

	// Claim 2: Docker's overhead grows monotonically with MPI ranks
	// and is severe at 112×1.
	overheads := make([]float64, len(res.Configs))
	for i := range res.Configs {
		overheads[i] = metrics.RelDiff(docker.Points[i].T, bare.Points[i].T)
	}
	if !metrics.Monotone(overheads, 1, 0.02) {
		t.Errorf("docker overhead not increasing with ranks: %v", overheads)
	}
	if overheads[len(overheads)-1] < 0.8 {
		t.Errorf("docker at 112×1 only %.0f%% over bare metal, paper shows ≫2×",
			overheads[len(overheads)-1]*100)
	}
	if overheads[0] > 0.6 {
		t.Errorf("docker at 8×14 already %.0f%% over bare metal — degradation should come with rank count",
			overheads[0]*100)
	}

	// Claim 3: bare metal itself is roughly flat across the hybrid
	// sweep (the study's configurations are all reasonable).
	sum := metrics.Summarize(seriesSeconds(bare))
	if sum.Max > 1.5*sum.Min {
		t.Errorf("bare-metal sweep swings too much: min %v max %v", sum.Min, sum.Max)
	}
}

func seriesSeconds(s *metrics.Series) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = float64(p.T)
	}
	return out
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 sweep skipped in -short")
	}
	res, err := Fig2(Options{Case: reducedCTEPower(), NodePoints: []int{2, 8, 16}})
	if err != nil {
		t.Fatal(err)
	}
	bare, _ := res.SeriesByLabel("Bare-metal")
	sys, _ := res.SeriesByLabel("Singularity system-specific")
	self, _ := res.SeriesByLabel("Singularity self-contained")

	// Claim 1: the system-specific container equals bare metal.
	for i := range bare.Points {
		if d := metrics.RelDiff(sys.Points[i].T, bare.Points[i].T); d > 0.03 || d < -0.01 {
			t.Errorf("system-specific at %d nodes %.1f%% off bare metal", bare.Points[i].X, d*100)
		}
	}
	// Claim 2: all three strong-scale (monotonically decreasing).
	for _, s := range []*metrics.Series{bare, sys, self} {
		if !metrics.Monotone(seriesSeconds(s), -1, 0.02) {
			t.Errorf("%s not strong-scaling: %v", s.Label, seriesSeconds(s))
		}
	}
	// Claim 3: self-contained is slower everywhere and the gap widens
	// with node count (it cannot use the EDR fabric).
	gaps := make([]float64, len(bare.Points))
	for i := range bare.Points {
		gaps[i] = metrics.RelDiff(self.Points[i].T, bare.Points[i].T)
		if gaps[i] <= 0 {
			t.Errorf("self-contained not slower at %d nodes", bare.Points[i].X)
		}
	}
	if !metrics.Monotone(gaps, 1, 0.05) {
		t.Errorf("self-contained gap not widening: %v", gaps)
	}
	// Claim 4: the fabric paths are the ones the paper names.
	if res.Fabrics[0] != "edr-verbs" || res.Fabrics[1] != "edr-verbs" || res.Fabrics[2] != "ipoib-tcp" {
		t.Errorf("fabric paths %v", res.Fabrics)
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 sweep skipped in -short")
	}
	res, err := Fig3(Options{Case: reducedFSI(), NodePoints: []int{4, 8, 32}})
	if err != nil {
		t.Fatal(err)
	}
	bare, _ := res.SeriesByLabel("Bare-metal")
	sys, _ := res.SeriesByLabel("Singularity system-specific")
	self, _ := res.SeriesByLabel("Singularity self-contained")

	bareSp, sysSp, selfSp := bare.Speedup(), sys.Speedup(), self.Speedup()

	// Claim 1: system-specific scales like bare metal.
	for i := range bareSp {
		if d := (sysSp[i] - bareSp[i]) / bareSp[i]; d < -0.05 || d > 0.05 {
			t.Errorf("system-specific speedup %v differs from bare %v at %d nodes",
				sysSp[i], bareSp[i], res.Nodes[i])
		}
	}
	// Claim 2: bare metal keeps scaling well to 32 nodes.
	if bareSp[len(bareSp)-1] < 6.5 {
		t.Errorf("bare-metal speedup at 32 nodes only %.2f (ideal 8)", bareSp[len(bareSp)-1])
	}
	// Claim 3: self-contained falls well behind by 32 nodes.
	if selfSp[len(selfSp)-1] > 0.75*bareSp[len(bareSp)-1] {
		t.Errorf("self-contained speedup %.2f too close to bare %.2f at 32 nodes",
			selfSp[len(selfSp)-1], bareSp[len(bareSp)-1])
	}
	// Claim 4: fabric paths.
	if res.Fabrics[2] != "ipoopa-tcp" {
		t.Errorf("self-contained path %q", res.Fabrics[2])
	}
}

func TestSolutionsShape(t *testing.T) {
	res, err := Solutions(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	docker, _ := res.RowByRuntime("Docker")
	sing, _ := res.RowByRuntime("Singularity")
	shifter, _ := res.RowByRuntime("Shifter")
	if docker == nil || sing == nil || shifter == nil {
		t.Fatal("missing runtimes")
	}
	// Image sizes: Docker's layered store is the largest footprint;
	// Singularity's SIF beats Shifter's squashfs.
	if docker.ImageSize <= shifter.ImageSize {
		t.Errorf("docker image %v not above shifter %v", docker.ImageSize, shifter.ImageSize)
	}
	if sing.ImageSize >= shifter.ImageSize {
		t.Errorf("sif %v not below squashfs %v", sing.ImageSize, shifter.ImageSize)
	}
	// Registry traffic: Docker re-pulls per node.
	if docker.WireSize <= 3*sing.WireSize {
		t.Errorf("docker wire %v should be ≈4× singularity's %v", docker.WireSize, sing.WireSize)
	}
	// Deployment overhead at full allocation: Docker worst.
	last := res.Nodes[len(res.Nodes)-1]
	if docker.DeployByNodes[last] <= sing.DeployByNodes[last] {
		t.Errorf("docker deploy %v not above singularity %v at %d nodes",
			docker.DeployByNodes[last], sing.DeployByNodes[last], last)
	}
	// Docker deployment grows with nodes; Singularity's stays flat.
	if docker.DeployByNodes[res.Nodes[0]] >= docker.DeployByNodes[last] {
		t.Error("docker deployment does not grow with nodes")
	}
	growth := float64(sing.DeployByNodes[last]-sing.DeployByNodes[res.Nodes[0]]) /
		float64(sing.DeployByNodes[res.Nodes[0]])
	if growth > 0.05 {
		t.Errorf("singularity deployment grew %.0f%% with nodes", growth*100)
	}
}

func TestPortabilityMatrix(t *testing.T) {
	res, err := Portability(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 source clusters × 2 techniques × 4 targets.
	if len(res.Cells) != 32 {
		t.Fatalf("%d cells, want 32", len(res.Cells))
	}

	// Self-contained runs wherever the ISA matches, including foreign
	// hosts (MN4-built on Lenox), always via a TCP path.
	c, err := res.Find("MareNostrum4", container.SelfContained, "Lenox")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Runs {
		t.Errorf("self-contained amd64 image should run on Lenox: %s", c.Why)
	}
	// System-specific on a same-ISA foreign host fails on the ABI.
	c, err = res.Find("MareNostrum4", container.SystemSpecific, "Lenox")
	if err != nil {
		t.Fatal(err)
	}
	if c.Runs || !strings.Contains(c.Why, "ABI") {
		t.Errorf("system-specific on foreign host: runs=%v why=%q", c.Runs, c.Why)
	}
	// Cross-ISA always fails with the exec-format error.
	c, _ = res.Find("CTE-POWER", container.SelfContained, "MareNostrum4")
	if c.Runs || !strings.Contains(c.Why, "architecture") {
		t.Errorf("ppc64le on amd64: runs=%v why=%q", c.Runs, c.Why)
	}
	// On home clusters both techniques run; system-specific uses the
	// native fabric, self-contained pays a slowdown on fast fabrics.
	sys, _ := res.Find("CTE-POWER", container.SystemSpecific, "CTE-POWER")
	self, _ := res.Find("CTE-POWER", container.SelfContained, "CTE-POWER")
	if !sys.Runs || !self.Runs {
		t.Fatal("home-cluster runs failed")
	}
	if !strings.Contains(sys.Why, "edr-verbs") {
		t.Errorf("system-specific path: %q", sys.Why)
	}
	if !strings.Contains(self.Why, "ipoib") {
		t.Errorf("self-contained path: %q", self.Why)
	}
	if sys.SlowdownVsBare > 1.02 {
		t.Errorf("system-specific slowdown %v", sys.SlowdownVsBare)
	}
	if self.SlowdownVsBare < 1.2 {
		t.Errorf("self-contained slowdown only %vx on EDR", self.SlowdownVsBare)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	// Smoke-test every renderer against a tiny sweep.
	sol, err := Solutions(Options{NodePoints: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sol.Render(&sb)
	if !strings.Contains(sb.String(), "Docker") {
		t.Fatal("solutions render empty")
	}

	port, err := Portability(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	port.Render(&sb)
	if !strings.Contains(sb.String(), "exec format error") {
		t.Fatal("portability render missing failures")
	}
}

func TestIOStudyShape(t *testing.T) {
	res, err := IOStudy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, nodes := range []int{1, 2, 4} {
		bind, err := res.Find(appio.PathBindMount, nodes)
		if err != nil {
			t.Fatal(err)
		}
		overlay, err := res.Find(appio.PathOverlay, nodes)
		if err != nil {
			t.Fatal(err)
		}
		volume, err := res.Find(appio.PathVolume, nodes)
		if err != nil {
			t.Fatal(err)
		}
		// The bind path never stages out; both Docker paths do, and
		// their end-to-end cost is higher at every node count.
		if bind.Report.StageOutTime != 0 {
			t.Errorf("%d nodes: bind path stages out", nodes)
		}
		if overlay.Report.Total() <= bind.Report.Total() {
			t.Errorf("%d nodes: overlay total %v not above bind %v",
				nodes, overlay.Report.Total(), bind.Report.Total())
		}
		if volume.Report.Total() <= bind.Report.Total() {
			t.Errorf("%d nodes: volume total %v not above bind %v",
				nodes, volume.Report.Total(), bind.Report.Total())
		}
		// Overlay's in-run write is slower than the volume's.
		if overlay.Report.WriteTime <= volume.Report.WriteTime {
			t.Errorf("%d nodes: overlay write %v not above volume %v",
				nodes, overlay.Report.WriteTime, volume.Report.WriteTime)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "overlay") {
		t.Fatal("iostudy render incomplete")
	}
}
