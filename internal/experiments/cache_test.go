package experiments

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/resultdb"
)

// fig3Opt builds a small fig3 configuration against a store.
func fig3Opt(store resultdb.Store, stats *SweepStats) Options {
	return Options{
		Parallelism: 4,
		Case:        tinyCase(alya.ArteryFSIMareNostrum4()),
		NodePoints:  []int{4, 8},
		Store:       store,
		Stats:       stats,
	}
}

// TestWarmCacheByteIdentical is the store's core guarantee: a warm
// rerun of a figure renders byte-identically to the cold run while
// executing zero simulations.
func TestWarmCacheByteIdentical(t *testing.T) {
	dir := t.TempDir()

	cold, err := resultdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	coldStats := &SweepStats{}
	coldRes, err := Fig3(fig3Opt(cold, coldStats))
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Computed.Load() == 0 || coldStats.Hits.Load() != 0 {
		t.Fatalf("cold run: %d computed, %d hits", coldStats.Computed.Load(), coldStats.Hits.Load())
	}

	// A separate Open stands in for a later process reusing the dir.
	warm, err := resultdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warmStats := &SweepStats{}
	warmRes, err := Fig3(fig3Opt(warm, warmStats))
	if err != nil {
		t.Fatal(err)
	}
	if got := warmStats.Computed.Load(); got != 0 {
		t.Fatalf("warm run simulated %d cells, want 0", got)
	}
	if got := warmStats.Hits.Load(); got != 6 { // 3 variants × 2 node points
		t.Fatalf("warm run replayed %d cells, want 6", got)
	}

	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatalf("warm results differ from cold:\n%+v\n%+v", coldRes, warmRes)
	}
	var a, b bytes.Buffer
	coldRes.Render(&a)
	coldRes.RenderChart(&a)
	warmRes.Render(&b)
	warmRes.RenderChart(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("warm rendering differs from cold:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestShardedSweepMerge is the distributed contract: every 2-way
// shard split computes a disjoint slice, and a merge over the
// populated store reproduces the unsharded figure exactly without
// simulating anything.
func TestShardedSweepMerge(t *testing.T) {
	full, err := Fig3(fig3Opt(nil, nil))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	totalComputed := int64(0)
	for k := 1; k <= 2; k++ {
		store, err := resultdb.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		stats := &SweepStats{}
		opt := fig3Opt(store, stats)
		opt.Shard = resultdb.Shard{Index: k, Count: 2}
		_, err = Fig3(opt)
		var miss *MissingCellsError
		switch {
		case err == nil:
			// This shard owned every cell (possible on small sweeps).
		case errors.As(err, &miss):
			if len(miss.Cells) == 0 {
				t.Fatalf("shard %d: empty missing list", k)
			}
			for _, c := range miss.Cells {
				if c.Key == "" || c.Label == "" {
					t.Fatalf("shard %d: missing cell without key/label: %+v", k, c)
				}
			}
		default:
			t.Fatalf("shard %d: %v", k, err)
		}
		totalComputed += stats.Computed.Load()
		store.Close()
	}
	// Disjoint and exhaustive: the two shards together computed each
	// of the 6 cells exactly once.
	if totalComputed != 6 {
		t.Fatalf("shards computed %d cells in total, want 6", totalComputed)
	}

	store, err := resultdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	stats := &SweepStats{}
	opt := fig3Opt(store, stats)
	opt.FromStore = true
	merged, err := Fig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Computed.Load(); got != 0 {
		t.Fatalf("merge simulated %d cells, want 0", got)
	}

	var a, b bytes.Buffer
	full.Render(&a)
	full.RenderChart(&a)
	merged.Render(&b)
	merged.RenderChart(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged rendering differs from unsharded:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestFromStoreMissing asserts a merge over an unpopulated store
// fails with the full list of missing cell keys.
func TestFromStoreMissing(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	opt := fig3Opt(store, nil)
	opt.FromStore = true
	_, err = Fig3(opt)
	var miss *MissingCellsError
	if !errors.As(err, &miss) {
		t.Fatalf("want MissingCellsError, got %v", err)
	}
	if len(miss.Cells) != 6 {
		t.Fatalf("missing %d cells, want all 6", len(miss.Cells))
	}
	seen := map[string]bool{}
	for _, c := range miss.Cells {
		if len(c.Key) != 64 {
			t.Fatalf("missing cell %q has malformed key %q", c.Label, c.Key)
		}
		if seen[c.Key] {
			t.Fatalf("duplicate key %s", c.Key)
		}
		seen[c.Key] = true
	}
}

// TestShardWithoutStore asserts the engine rejects shard or
// store-only sweeps with no store to meet in.
func TestShardWithoutStore(t *testing.T) {
	opt := fig3Opt(nil, nil)
	opt.Shard = resultdb.Shard{Index: 1, Count: 2}
	if _, err := Fig3(opt); err == nil {
		t.Error("sharded sweep without a store accepted")
	}
	opt = fig3Opt(nil, nil)
	opt.FromStore = true
	if _, err := Fig3(opt); err == nil {
		t.Error("store-only sweep without a store accepted")
	}
	// The RunOne path (portability) enforces the same contract.
	if _, err := Portability(Options{FromStore: true}); err == nil {
		t.Error("store-only portability without a store accepted")
	}
}

// TestPortabilityMergeMissingLists asserts a FromStore portability
// run over an empty store reports every absent slowdown cell at once
// — one failing merge names the full outstanding set, not just the
// first cell hit.
func TestPortabilityMergeMissingLists(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	_, err = Portability(Options{Parallelism: 4, Store: store, FromStore: true})
	var miss *MissingCellsError
	if !errors.As(err, &miss) {
		t.Fatalf("want MissingCellsError, got %v", err)
	}
	// 4 bare-metal baselines (one per target) plus one cell per
	// runnable (source, kind, target) attempt — far more than the
	// single cell a fail-fast walk would report.
	if len(miss.Cells) < 5 {
		t.Fatalf("missing list has %d cells; fail-fast suspected:\n%v", len(miss.Cells), err)
	}
	seen := map[string]bool{}
	for _, c := range miss.Cells {
		if seen[c.Key] {
			t.Fatalf("duplicate key %s in missing list", c.Key)
		}
		seen[c.Key] = true
	}
}

// TestPortabilityShardedDisjoint asserts sharding covers RunOne cells
// too: two sequential shard runs simulate each slowdown cell exactly
// once between them, and the merge reproduces the unsharded matrix.
func TestPortabilityShardedDisjoint(t *testing.T) {
	plainStats := &SweepStats{}
	plain, err := Portability(Options{Parallelism: 4, Stats: plainStats})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var computed int64
	for k := 1; k <= 2; k++ {
		store, err := resultdb.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		stats := &SweepStats{}
		_, err = Portability(Options{
			Parallelism: 4, Store: store, Stats: stats,
			Shard: resultdb.Shard{Index: k, Count: 2},
		})
		var miss *MissingCellsError
		if err != nil && !errors.As(err, &miss) {
			t.Fatalf("shard %d: %v", k, err)
		}
		computed += stats.Computed.Load()
		store.Close()
	}
	// Disjoint: across both shards every cell simulated exactly once —
	// the same total an unsharded run pays (the plain run may compute
	// shared baselines more than once concurrently, so compare ≤).
	if computed > plainStats.Computed.Load() {
		t.Fatalf("shards computed %d cells, unsharded run computed %d — duplicated work",
			computed, plainStats.Computed.Load())
	}

	store, err := resultdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	stats := &SweepStats{}
	merged, err := Portability(Options{Parallelism: 4, Store: store, Stats: stats, FromStore: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Computed.Load(); got != 0 {
		t.Fatalf("merge simulated %d cells, want 0", got)
	}
	var a, b bytes.Buffer
	plain.Render(&a)
	merged.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged portability differs from unsharded:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestPortabilityCached asserts the portability study's slowdown
// cells flow through the store too: a warm rerun simulates nothing
// and reproduces the matrix.
func TestPortabilityCached(t *testing.T) {
	dir := t.TempDir()
	run := func() (*PortabilityResult, *SweepStats) {
		store, err := resultdb.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		stats := &SweepStats{}
		res, err := Portability(Options{Parallelism: 4, Store: store, Stats: stats})
		if err != nil {
			t.Fatal(err)
		}
		return res, stats
	}
	cold, coldStats := run()
	if coldStats.Computed.Load() == 0 {
		t.Fatal("cold portability run simulated nothing")
	}
	warm, warmStats := run()
	if got := warmStats.Computed.Load(); got != 0 {
		t.Fatalf("warm portability run simulated %d cells, want 0", got)
	}
	var a, b bytes.Buffer
	cold.Render(&a)
	warm.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("warm portability differs:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestNegativeCacheReplaysFailures covers failure records end to end:
// a deterministically failing cell is recorded on the cold run, and
// warm sweeps replay the failure — with the exact same message —
// without simulating, distinctly from missing cells under FromStore.
func TestNegativeCacheReplaysFailures(t *testing.T) {
	mn4 := cluster.MareNostrum4()
	specs := []CellSpec{{
		Label:   "docker on mn4",
		Cluster: mn4, Runtime: container.Docker{}, Kind: container.SystemSpecific,
		Case:  reducedLenox(),
		Nodes: 2, Ranks: 2 * mn4.CoresPerNode(), Threads: 1,
	}}
	dir := t.TempDir()

	run := func(fromStore bool) (error, *SweepStats) {
		store, err := resultdb.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		stats := &SweepStats{}
		_, err = NewSweep(Options{Store: store, Stats: stats, FromStore: fromStore}).Run(specs)
		return err, stats
	}

	coldErr, coldStats := run(false)
	if coldErr == nil {
		t.Fatal("docker on MN4 should fail (needs root)")
	}
	if !errors.Is(coldErr, container.ErrNeedsRoot) {
		t.Fatalf("cold failure lost its cause: %v", coldErr)
	}
	if got := coldStats.NegHits.Load(); got != 0 {
		t.Fatalf("cold run replayed %d failures", got)
	}

	warmErr, warmStats := run(false)
	if warmErr == nil {
		t.Fatal("replayed failure missing")
	}
	if warmStats.Computed.Load() != 0 || warmStats.NegHits.Load() != 1 {
		t.Fatalf("warm run computed %d, neg-hit %d; want 0 and 1",
			warmStats.Computed.Load(), warmStats.NegHits.Load())
	}
	if warmErr.Error() != coldErr.Error() {
		t.Fatalf("replayed failure differs from original:\ncold %v\nwarm %v", coldErr, warmErr)
	}
	var rec *resultdb.RecordedError
	if !errors.As(warmErr, &rec) || rec.Msg == "" {
		t.Fatalf("warm failure is not a RecordedError: %v", warmErr)
	}
	if errors.As(coldErr, &rec) {
		t.Fatal("cold failure mislabelled as replayed")
	}

	// Merge (FromStore) reports the known-bad cell as its recorded
	// failure, not as a missing cell.
	mergeErr, mergeStats := run(true)
	var miss *MissingCellsError
	if errors.As(mergeErr, &miss) {
		t.Fatalf("merge reported a recorded failure as missing: %v", mergeErr)
	}
	if !errors.As(mergeErr, &rec) {
		t.Fatalf("merge did not replay the recorded failure: %v", mergeErr)
	}
	if got := mergeStats.NegHits.Load(); got != 1 {
		t.Fatalf("merge neg-hit %d, want 1", got)
	}

	// The RunOne path (portability's cells) replays too.
	store, err := resultdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	stats := &SweepStats{}
	_, oneErr := NewSweep(Options{Store: store, Stats: stats}).RunOne(specs[0])
	if !errors.As(oneErr, &rec) {
		t.Fatalf("RunOne did not replay the recorded failure: %v", oneErr)
	}
	if stats.Computed.Load() != 0 || stats.NegHits.Load() != 1 {
		t.Fatalf("RunOne computed %d, neg-hit %d; want 0 and 1",
			stats.Computed.Load(), stats.NegHits.Load())
	}
}
