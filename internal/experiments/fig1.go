package experiments

import (
	"fmt"
	"io"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/report"
	"repro/internal/units"
)

// HybridConfig is one x-axis point of Fig. 1: an MPI ranks × OpenMP
// threads decomposition of Lenox's 112 cores.
type HybridConfig struct {
	Ranks, Threads int
}

// String renders the paper's "R×T" axis label.
func (h HybridConfig) String() string { return fmt.Sprintf("%dx%d", h.Ranks, h.Threads) }

// Fig1Configs are the paper's five hybrid configurations.
func Fig1Configs() []HybridConfig {
	return []HybridConfig{{8, 14}, {16, 7}, {28, 4}, {56, 2}, {112, 1}}
}

// Fig1Result holds the reproduced Fig. 1: average elapsed time of the
// artery CFD case on Lenox for bare-metal, Singularity, Shifter, and
// Docker across hybrid configurations.
type Fig1Result struct {
	// Configs are the x-axis points.
	Configs []HybridConfig
	// Series holds one curve per runtime, in study order (Bare-metal,
	// Docker, Singularity, Shifter); Point.X is the rank count.
	Series []metrics.Series
}

// SeriesByLabel finds a curve by runtime name.
func (f *Fig1Result) SeriesByLabel(label string) (*metrics.Series, error) {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: fig1 has no series %q", label)
}

// Fig1Specs enumerates Fig. 1's cells in sweep order (runtimes outer,
// hybrid configurations inner). Exported so the scenario compiler's
// re-expression of the study can be tested cell-for-cell against the
// hand-coded enumeration.
func Fig1Specs(opt Options) []CellSpec {
	lenox := cluster.Lenox()
	cs := opt.caseOr(alya.ArteryCFDLenox())
	configs := Fig1Configs()
	runtimes := container.Runtimes()

	specs := make([]CellSpec, 0, len(runtimes)*len(configs))
	for _, rt := range runtimes {
		for _, hc := range configs {
			specs = append(specs, CellSpec{
				Label:   fmt.Sprintf("fig1 %s %v", rt.Name(), hc),
				Cluster: lenox, Runtime: rt, Kind: container.SystemSpecific,
				Case:  cs,
				Nodes: lenox.TotalNodes, Ranks: hc.Ranks, Threads: hc.Threads,
				Mode: opt.Mode, Allreduce: mpi.AllreduceRecursiveDoubling,
			})
		}
	}
	return specs
}

// Fig1 reproduces the paper's Figure 1 on the Lenox cluster.
func Fig1(opt Options) (*Fig1Result, error) {
	configs := Fig1Configs()
	runtimes := container.Runtimes()
	results, err := NewSweep(opt).Run(Fig1Specs(opt))
	if err != nil {
		return nil, err
	}

	out := &Fig1Result{Configs: configs}
	for ri, rt := range runtimes {
		s := metrics.Series{Label: rt.Name()}
		for ci := range configs {
			res := results[ri*len(configs)+ci]
			s.Points = append(s.Points, metrics.Point{X: configs[ci].Ranks, T: res.Exec.Elapsed})
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// Render writes the figure as a table (rows = configurations).
func (f *Fig1Result) Render(w io.Writer) {
	headers := []string{"MPI x threads"}
	for _, s := range f.Series {
		headers = append(headers, s.Label+" [s]")
	}
	t := report.NewTable("Fig 1: average elapsed time of the artery CFD case in Lenox", headers...)
	for i, hc := range f.Configs {
		row := []interface{}{hc.String()}
		for _, s := range f.Series {
			row = append(row, report.Seconds(s.Points[i].T))
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// CSV writes the figure data as CSV.
func (f *Fig1Result) CSV(w io.Writer) {
	headers := []string{"config"}
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	t := report.NewTable("", headers...)
	for i, hc := range f.Configs {
		row := []interface{}{hc.String()}
		for _, s := range f.Series {
			row = append(row, float64(s.Points[i].T))
		}
		t.AddRow(row...)
	}
	t.CSV(w)
}

// BestConfig returns the configuration with the lowest bare-metal time
// (the sweet spot of the hybrid sweep).
func (f *Fig1Result) BestConfig() HybridConfig {
	best, bestT := f.Configs[0], units.Seconds(0)
	for i, hc := range f.Configs {
		t := f.Series[0].Points[i].T
		if i == 0 || t < bestT {
			best, bestT = hc, t
		}
	}
	return best
}
