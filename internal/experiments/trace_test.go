package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/alya"
	"repro/internal/resultdb"
)

// fig2TraceOpt is a small fig2 sweep with tracing into dir.
func fig2TraceOpt(dir string) Options {
	return Options{
		Parallelism: 4,
		Case:        tinyCase(alya.ArteryCFDCTEPower()),
		NodePoints:  []int{2, 4},
		TraceDir:    dir,
	}
}

// readTraces returns the trace files in dir keyed by name.
func readTraces(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestTraceDirPerCellDeterministic is the tracer's contract: one valid
// Chrome Trace JSON plus one attribution profile per simulated cell,
// byte-identical across runs, with the figure itself unchanged by
// tracing.
func TestTraceDirPerCellDeterministic(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	res1, err := Fig2(fig2TraceOpt(dir1))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Fig2(fig2TraceOpt(dir2))
	if err != nil {
		t.Fatal(err)
	}

	plainOpt := fig2TraceOpt("")
	plain, err := Fig2(plainOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, plain) {
		t.Fatalf("tracing changed the figure:\n%+v\n%+v", res1, plain)
	}
	var a, b bytes.Buffer
	res1.Render(&a)
	plain.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("tracing changed rendered output:\n%s\n---\n%s", a.String(), b.String())
	}

	t1, t2 := readTraces(t, dir1), readTraces(t, dir2)
	// Fig2 at 2 node points: 3 build-technique variants × 2 points,
	// each writing a trace and an attribution profile.
	if len(t1) != 12 {
		names := make([]string, 0, len(t1))
		for n := range t1 { //lint:allow maporder -- sorted below for the error message
			names = append(names, n)
		}
		sort.Strings(names)
		t.Fatalf("run 1 wrote %d artifacts, want 12: %v", len(t1), names)
	}
	if len(t2) != len(t1) {
		t.Fatalf("runs wrote different artifact counts: %d vs %d", len(t1), len(t2))
	}
	traces, profiles := 0, 0
	for name, data := range t1 { //lint:allow maporder -- only compares per-name, no ordered output
		if !bytes.Equal(data, t2[name]) {
			t.Fatalf("artifact %s differs between runs", name)
		}
		switch {
		case strings.HasSuffix(name, ".trace.json"):
			traces++
			if !resultdb.ValidKey(strings.TrimSuffix(name, ".trace.json")) {
				t.Fatalf("trace name %q is not <fingerprint>.trace.json", name)
			}
			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Fatalf("trace %s is not valid JSON: %v", name, err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatalf("trace %s is empty", name)
			}
		case strings.HasSuffix(name, ".profile.json"):
			profiles++
			if !resultdb.ValidKey(strings.TrimSuffix(name, ".profile.json")) {
				t.Fatalf("profile name %q is not <fingerprint>.profile.json", name)
			}
		default:
			t.Fatalf("unexpected artifact %q", name)
		}
	}
	if traces != 6 || profiles != 6 {
		t.Fatalf("wrote %d traces and %d profiles, want 6 each", traces, profiles)
	}
	_ = res2
}

// TestTraceDirSkipsRestoredCells: a warm sweep replays from the store
// and simulates nothing, so it writes no traces.
func TestTraceDirSkipsRestoredCells(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	opt := fig2TraceOpt(t.TempDir())
	opt.Store = store
	if _, err := Fig2(opt); err != nil {
		t.Fatal(err)
	}
	warmDir := t.TempDir()
	warm := fig2TraceOpt(warmDir)
	warm.Store = store
	warmStats := &SweepStats{}
	warm.Stats = warmStats
	if _, err := Fig2(warm); err != nil {
		t.Fatal(err)
	}
	if n := warmStats.Computed.Load(); n != 0 {
		t.Fatalf("warm run simulated %d cells", n)
	}
	if traces := readTraces(t, warmDir); len(traces) != 0 {
		t.Fatalf("warm run wrote %d traces, want 0", len(traces))
	}
}

// TestTraceArtifactsIndependentOfStore: the traces and profiles a cold
// traced run writes are byte-identical whether or not a store is
// attached — attribution is a pure function of the simulation, so
// analyze output cannot depend on cache state.
func TestTraceArtifactsIndependentOfStore(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	storedDir, plainDir := t.TempDir(), t.TempDir()
	stored := fig2TraceOpt(storedDir)
	stored.Store = store
	if _, err := Fig2(stored); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig2(fig2TraceOpt(plainDir)); err != nil {
		t.Fatal(err)
	}
	a, b := readTraces(t, storedDir), readTraces(t, plainDir)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("artifact counts differ: %d with store, %d without", len(a), len(b))
	}
	for name, data := range a { //lint:allow maporder -- per-name comparison, no ordered output
		if !bytes.Equal(data, b[name]) {
			t.Fatalf("artifact %s depends on store state", name)
		}
	}
}

// TestProgressEvents: every produced cell reports exactly one event,
// cached cells flagged as such, with Done covering 1..Total.
func TestProgressEvents(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	var mu sync.Mutex
	var events []ProgressEvent
	opt := Options{
		Parallelism: 4,
		Case:        tinyCase(alya.ArteryCFDCTEPower()),
		NodePoints:  []int{2, 4},
		Store:       store,
		Progress: func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	check := func(run string, wantCached bool) {
		mu.Lock()
		got := events
		events = nil
		mu.Unlock()
		if len(got) != 6 {
			t.Fatalf("%s run: %d events, want 6", run, len(got))
		}
		seen := make([]bool, len(got)+1)
		for _, ev := range got {
			if ev.Total != 6 || ev.Done < 1 || ev.Done > 6 || seen[ev.Done] {
				t.Fatalf("%s run: bad event %+v", run, ev)
			}
			seen[ev.Done] = true
			if ev.Cached != wantCached {
				t.Fatalf("%s run: event %+v, want cached=%v", run, ev, wantCached)
			}
			if ev.Label == "" {
				t.Fatalf("%s run: event with empty label", run)
			}
		}
	}
	if _, err := Fig2(opt); err != nil {
		t.Fatal(err)
	}
	check("cold", false)
	if _, err := Fig2(opt); err != nil {
		t.Fatal(err)
	}
	check("warm", true)
}
