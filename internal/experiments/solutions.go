package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/report"
	"repro/internal/units"
)

// SolutionRow is one runtime's deployment metrics on Lenox.
type SolutionRow struct {
	// Runtime is the technology name.
	Runtime string
	// Format is the executable image format.
	Format string
	// ImageSize is the staged image footprint.
	ImageSize units.ByteSize
	// WireSize is the registry traffic for a 4-node deployment.
	WireSize units.ByteSize
	// DeployByNodes maps node count → total deployment overhead.
	DeployByNodes map[int]units.Seconds
	// LaunchPerRank is the per-rank container start cost.
	LaunchPerRank units.Seconds
}

// SolutionsResult holds the §B.1 containerization-solutions comparison:
// deployment overhead and image size per runtime (execution time is
// Fig. 1).
type SolutionsResult struct {
	// Nodes are the deployment sizes compared.
	Nodes []int
	// Rows hold one entry per runtime, in study order.
	Rows []SolutionRow
}

// Solutions reproduces the deployment-overhead and image-size
// comparison of Docker, Singularity, and Shifter on Lenox. Runtimes
// are measured concurrently on the sweep engine's worker pool; row
// order stays the study order.
func Solutions(opt Options) (*SolutionsResult, error) {
	lenox := cluster.Lenox()
	nodes := opt.nodesOr([]int{1, 2, 4})
	var runtimes []container.Runtime
	for _, rt := range container.Runtimes() {
		if _, bare := rt.(container.BareMetal); !bare {
			runtimes = append(runtimes, rt)
		}
	}

	out := &SolutionsResult{Nodes: nodes, Rows: make([]SolutionRow, len(runtimes))}
	sw := NewSweep(opt)
	err := sw.Each(len(runtimes), func(i int) error {
		rt := runtimes[i]
		img, err := sw.ImageFor(rt, lenox, container.SystemSpecific)
		if err != nil {
			return fmt.Errorf("solutions %s: %w", rt.Name(), err)
		}
		profile, err := rt.ExecProfile(lenox, img)
		if err != nil {
			return fmt.Errorf("solutions %s: %w", rt.Name(), err)
		}
		row := SolutionRow{
			Runtime:       rt.Name(),
			Format:        img.Format.String(),
			DeployByNodes: make(map[int]units.Seconds),
			LaunchPerRank: profile.LaunchPerRank,
		}
		for _, n := range nodes {
			rep, err := rt.Deploy(lenox, img, n)
			if err != nil {
				return fmt.Errorf("solutions %s %d nodes: %w", rt.Name(), n, err)
			}
			row.DeployByNodes[n] = rep.Total()
			if n == nodes[len(nodes)-1] {
				row.ImageSize = rep.StoredSize / units.ByteSize(n) // per-node footprint
				if rt.Name() != "Docker" {
					row.ImageSize = rep.StoredSize // single shared file
				}
				row.WireSize = rep.WireSize
			}
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RowByRuntime finds a runtime's row.
func (s *SolutionsResult) RowByRuntime(name string) (*SolutionRow, error) {
	for i := range s.Rows {
		if s.Rows[i].Runtime == name {
			return &s.Rows[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: solutions has no runtime %q", name)
}

// Render writes the comparison table.
func (s *SolutionsResult) Render(w io.Writer) {
	headers := []string{"Runtime", "Format", "Image size", "Registry traffic"}
	for _, n := range s.Nodes {
		headers = append(headers, fmt.Sprintf("Deploy %dn [s]", n))
	}
	headers = append(headers, "Start/rank [ms]")
	t := report.NewTable("Containerization solutions on Lenox: image size and deployment overhead", headers...)
	for _, row := range s.Rows {
		cells := []interface{}{row.Runtime, row.Format, row.ImageSize.String(), row.WireSize.String()}
		for _, n := range s.Nodes {
			cells = append(cells, report.Seconds(row.DeployByNodes[n]))
		}
		cells = append(cells, fmt.Sprintf("%.0f", float64(row.LaunchPerRank)*1e3))
		t.AddRow(cells...)
	}
	t.Render(w)
}
