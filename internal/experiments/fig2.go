package experiments

import (
	"fmt"
	"io"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/report"
)

// Fig2Variant is one curve of Fig. 2.
type Fig2Variant struct {
	// Label is the curve name.
	Label string
	// Runtime executes the variant (BareMetal or Singularity).
	Runtime container.Runtime
	// Kind is the image-building technique (ignored for bare metal).
	Kind container.BuildKind
}

// Fig2Variants returns the paper's three variants.
func Fig2Variants() []Fig2Variant {
	return []Fig2Variant{
		{Label: "Bare-metal", Runtime: container.BareMetal{}},
		{Label: "Singularity system-specific", Runtime: container.Singularity{Version: "2.5.1"}, Kind: container.SystemSpecific},
		{Label: "Singularity self-contained", Runtime: container.Singularity{Version: "2.5.1"}, Kind: container.SelfContained},
	}
}

// Fig2Result holds the reproduced Fig. 2: average elapsed time of the
// artery CFD case on CTE-POWER, 2–16 nodes.
type Fig2Result struct {
	// Nodes are the x-axis points.
	Nodes []int
	// Series holds the three curves; Point.X is the node count.
	Series []metrics.Series
	// Fabrics records which network path each variant used.
	Fabrics []string
}

// SeriesByLabel finds a curve by variant name.
func (f *Fig2Result) SeriesByLabel(label string) (*metrics.Series, error) {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: fig2 has no series %q", label)
}

// fig2DefaultNodes is the paper's Fig. 2 x-axis — the single source
// both the spec enumeration and the result reshaping read, so they
// can never disagree on the sweep's shape.
func fig2DefaultNodes() []int { return []int{2, 4, 6, 8, 10, 12, 14, 16} }

// Fig2Specs enumerates Fig. 2's cells in sweep order (variants outer,
// node counts inner). Exported so the scenario compiler's
// re-expression of the study can be tested cell-for-cell against the
// hand-coded enumeration.
func Fig2Specs(opt Options) []CellSpec {
	cte := cluster.CTEPower()
	cs := opt.caseOr(alya.ArteryCFDCTEPower())
	nodes := opt.nodesOr(fig2DefaultNodes())
	variants := Fig2Variants()

	specs := make([]CellSpec, 0, len(variants)*len(nodes))
	for _, v := range variants {
		for _, n := range nodes {
			specs = append(specs, CellSpec{
				Label:   fmt.Sprintf("fig2 %s %d nodes", v.Label, n),
				Cluster: cte, Runtime: v.Runtime, Kind: v.Kind,
				Case:  cs,
				Nodes: n, Ranks: n * cte.CoresPerNode(), Threads: 1,
				Mode: opt.Mode, Allreduce: mpi.AllreduceRecursiveDoubling,
			})
		}
	}
	return specs
}

// Fig2 reproduces the paper's Figure 2 on CTE-POWER.
func Fig2(opt Options) (*Fig2Result, error) {
	nodes := opt.nodesOr(fig2DefaultNodes())
	variants := Fig2Variants()
	results, err := NewSweep(opt).Run(Fig2Specs(opt))
	if err != nil {
		return nil, err
	}

	out := &Fig2Result{Nodes: nodes}
	for vi, v := range variants {
		s := metrics.Series{Label: v.Label}
		fabricPath := ""
		for ni, n := range nodes {
			res := results[vi*len(nodes)+ni]
			s.Points = append(s.Points, metrics.Point{X: n, T: res.Exec.Elapsed})
			fabricPath = res.Exec.FabricPath
		}
		out.Series = append(out.Series, s)
		out.Fabrics = append(out.Fabrics, fabricPath)
	}
	return out, nil
}

// Render writes the figure as a table (rows = node counts).
func (f *Fig2Result) Render(w io.Writer) {
	headers := []string{"Nodes"}
	for i, s := range f.Series {
		headers = append(headers, fmt.Sprintf("%s [s] (%s)", s.Label, f.Fabrics[i]))
	}
	t := report.NewTable("Fig 2: average elapsed time of artery CFD case in CTE-POWER", headers...)
	for i, n := range f.Nodes {
		row := []interface{}{n}
		for _, s := range f.Series {
			row = append(row, report.Seconds(s.Points[i].T))
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// CSV writes the figure data as CSV.
func (f *Fig2Result) CSV(w io.Writer) {
	headers := []string{"nodes"}
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	t := report.NewTable("", headers...)
	for i, n := range f.Nodes {
		row := []interface{}{n}
		for _, s := range f.Series {
			row = append(row, float64(s.Points[i].T))
		}
		t.AddRow(row...)
	}
	t.CSV(w)
}
