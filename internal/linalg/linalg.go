// Package linalg provides the dense-vector kernels and the CSR sparse
// matrix used by the solvers: exactly the BLAS-1 plus SpMV working set
// of a Krylov-based FE code.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot lengths %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: axpy lengths %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Aypx computes y = x + alpha*y (the CG direction update).
func Aypx(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: aypx lengths %d != %d", len(x), len(y)))
	}
	for i := range y {
		y[i] = x[i] + alpha*y[i]
	}
}

// Scale computes x *= alpha.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: copy lengths %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Norm2 returns the Euclidean norm.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// NormInf returns the max-abs norm.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// RowPtr has Rows+1 entries; row i's nonzeros live in
	// ColIdx/Vals[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int
	// ColIdx holds column indices, sorted within each row.
	ColIdx []int
	// Vals holds the nonzero values.
	Vals []float64
}

// Triplet is one (row, col, value) matrix entry.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a CSR matrix from triplets, summing duplicates.
// Triplets may arrive in any order.
func NewCSR(rows, cols int, trips []Triplet) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("linalg: matrix dimensions %d×%d", rows, cols)
	}
	// Count entries per row after dedup: first bucket by row.
	perRow := make([][]Triplet, rows)
	for _, t := range trips {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("linalg: triplet (%d,%d) outside %d×%d", t.Row, t.Col, rows, cols)
		}
		perRow[t.Row] = append(perRow[t.Row], t)
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for r := 0; r < rows; r++ {
		row := perRow[r]
		// Insertion-sort by column (rows are short in FE stencils),
		// summing duplicates.
		cols := make([]int, 0, len(row))
		vals := make([]float64, 0, len(row))
		for _, t := range row {
			pos := len(cols)
			dup := false
			for i, c := range cols {
				if c == t.Col {
					vals[i] += t.Val
					dup = true
					break
				}
				if c > t.Col {
					pos = i
					break
				}
			}
			if dup {
				continue
			}
			cols = append(cols, 0)
			vals = append(vals, 0)
			copy(cols[pos+1:], cols[pos:])
			copy(vals[pos+1:], vals[pos:])
			cols[pos] = t.Col
			vals[pos] = t.Val
		}
		m.ColIdx = append(m.ColIdx, cols...)
		m.Vals = append(m.Vals, vals...)
		m.RowPtr[r+1] = len(m.ColIdx)
	}
	return m, nil
}

// NNZ returns the stored nonzero count.
func (m *CSR) NNZ() int { return len(m.Vals) }

// MulVec computes dst = M·src.
func (m *CSR) MulVec(dst, src []float64) {
	if len(src) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: spmv dims: matrix %d×%d, src %d, dst %d",
			m.Rows, m.Cols, len(src), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for idx := m.RowPtr[r]; idx < m.RowPtr[r+1]; idx++ {
			s += m.Vals[idx] * src[m.ColIdx[idx]]
		}
		dst[r] = s
	}
}

// Diag extracts the matrix diagonal (zero where absent).
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for idx := m.RowPtr[r]; idx < m.RowPtr[r+1]; idx++ {
			if m.ColIdx[idx] == r {
				d[r] = m.Vals[idx]
				break
			}
		}
	}
	return d
}

// At returns element (r, c); zero if not stored.
func (m *CSR) At(r, c int) float64 {
	for idx := m.RowPtr[r]; idx < m.RowPtr[r+1]; idx++ {
		if m.ColIdx[idx] == c {
			return m.Vals[idx]
		}
	}
	return 0
}

// IsSymmetric checks structural and numerical symmetry to tolerance.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for idx := m.RowPtr[r]; idx < m.RowPtr[r+1]; idx++ {
			c := m.ColIdx[idx]
			if math.Abs(m.Vals[idx]-m.At(c, r)) > tol {
				return false
			}
		}
	}
	return true
}
