package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("dot = %v", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("empty dot = %v", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyAypxScale(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("axpy: %v", y)
	}
	y = []float64{1, 2}
	Aypx(3, []float64{10, 20}, y) // y = x + 3y
	if y[0] != 13 || y[1] != 26 {
		t.Fatalf("aypx: %v", y)
	}
	Scale(0.5, y)
	if y[0] != 6.5 || y[1] != 13 {
		t.Fatalf("scale: %v", y)
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if Norm2(v) != 5 {
		t.Fatalf("norm2 = %v", Norm2(v))
	}
	if NormInf(v) != 4 {
		t.Fatalf("norminf = %v", NormInf(v))
	}
	if NormInf(nil) != 0 {
		t.Fatal("norminf of empty should be 0")
	}
}

func TestFillCopy(t *testing.T) {
	v := make([]float64, 3)
	Fill(v, 2.5)
	for _, x := range v {
		if x != 2.5 {
			t.Fatalf("fill: %v", v)
		}
	}
	dst := make([]float64, 3)
	Copy(dst, v)
	if dst[1] != 2.5 {
		t.Fatalf("copy: %v", dst)
	}
}

// tridiag builds the 1D Laplacian [-1 2 -1] as triplets.
func tridiag(n int) []Triplet {
	var tr []Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, Triplet{i, i, 2})
		if i > 0 {
			tr = append(tr, Triplet{i, i - 1, -1})
		}
		if i < n-1 {
			tr = append(tr, Triplet{i, i + 1, -1})
		}
	}
	return tr
}

func TestCSRBasics(t *testing.T) {
	m, err := NewCSR(4, 4, tridiag(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 10 {
		t.Fatalf("nnz = %d, want 10", m.NNZ())
	}
	if m.At(0, 0) != 2 || m.At(0, 1) != -1 || m.At(0, 2) != 0 {
		t.Fatal("At wrong")
	}
	if !m.IsSymmetric(0) {
		t.Fatal("tridiagonal Laplacian should be symmetric")
	}
	d := m.Diag()
	for i, v := range d {
		if v != 2 {
			t.Fatalf("diag[%d] = %v", i, v)
		}
	}
}

func TestCSRDuplicatesSummed(t *testing.T) {
	m, err := NewCSR(2, 2, []Triplet{{0, 0, 1}, {0, 0, 2}, {1, 0, 5}, {0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3 {
		t.Fatalf("duplicate sum: %v", m.At(0, 0))
	}
	if m.IsSymmetric(0) {
		t.Fatal("this matrix is not symmetric")
	}
}

func TestCSRRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSR(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("row out of range accepted")
	}
	if _, err := NewCSR(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Fatal("negative col accepted")
	}
	if _, err := NewCSR(-1, 2, nil); err == nil {
		t.Fatal("negative dims accepted")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewCSR(3, 3, tridiag(3))
	dst := make([]float64, 3)
	m.MulVec(dst, []float64{1, 1, 1})
	want := []float64{1, 0, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("mulvec = %v, want %v", dst, want)
		}
	}
}

func TestMulVecDimsPanics(t *testing.T) {
	m, _ := NewCSR(3, 3, tridiag(3))
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 3))
}

func TestCSRColumnsSorted(t *testing.T) {
	// Assembly from shuffled triplets must still give sorted rows.
	m, err := NewCSR(1, 5, []Triplet{{0, 4, 1}, {0, 0, 1}, {0, 2, 1}, {0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := m.RowPtr[0] + 1; i < m.RowPtr[1]; i++ {
		if m.ColIdx[i-1] >= m.ColIdx[i] {
			t.Fatalf("columns not sorted: %v", m.ColIdx)
		}
	}
}

func TestDotBilinearQuick(t *testing.T) {
	f := func(a, b, c []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if len(c) < n {
			n = len(c)
		}
		a, b, c = a[:n], b[:n], c[:n]
		for _, v := range append(append(append([]float64{}, a...), b...), c...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true
			}
		}
		// dot(a, b+c) == dot(a,b) + dot(a,c)
		bc := make([]float64, n)
		for i := range bc {
			bc[i] = b[i] + c[i]
		}
		lhs := Dot(a, bc)
		rhs := Dot(a, b) + Dot(a, c)
		return math.Abs(lhs-rhs) <= 1e-6*(math.Abs(lhs)+math.Abs(rhs)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
