package sched

import (
	"testing"

	"repro/internal/cluster"
)

func TestPlanValidates(t *testing.T) {
	lenox := cluster.Lenox()
	// The paper's five Fig. 1 configurations must all plan cleanly.
	for _, c := range []struct{ ranks, threads int }{
		{8, 14}, {16, 7}, {28, 4}, {56, 2}, {112, 1},
	} {
		job, err := Plan(lenox, 4, c.ranks, c.threads, PlaceBlock)
		if err != nil {
			t.Fatalf("%dx%d: %v", c.ranks, c.threads, err)
		}
		if job.TotalCores() != 112 {
			t.Fatalf("%dx%d occupies %d cores, want 112", c.ranks, c.threads, job.TotalCores())
		}
	}
}

func TestPlanRejects(t *testing.T) {
	lenox := cluster.Lenox()
	cases := []struct {
		nodes, ranks, threads int
	}{
		{5, 10, 1},  // too many nodes
		{4, 0, 1},   // no ranks
		{4, 8, 0},   // no threads
		{4, 10, 1},  // ranks don't divide nodes
		{4, 116, 1}, // oversubscription
		{4, 56, 3},  // oversubscription via threads
		{0, 8, 1},   // no nodes
	}
	for _, c := range cases {
		if _, err := Plan(lenox, c.nodes, c.ranks, c.threads, PlaceBlock); err == nil {
			t.Errorf("Plan(%d nodes, %d ranks, %d threads) should fail", c.nodes, c.ranks, c.threads)
		}
	}
}

func TestBlockPlacement(t *testing.T) {
	job, err := Plan(cluster.Lenox(), 4, 8, 1, PlaceBlock)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for r, n := range want {
		if job.NodeOf(r) != n {
			t.Fatalf("block: rank %d on node %d, want %d", r, job.NodeOf(r), n)
		}
	}
	if !job.SameNode(0, 1) || job.SameNode(1, 2) {
		t.Fatal("SameNode wrong for block placement")
	}
}

func TestCyclicPlacement(t *testing.T) {
	job, err := Plan(cluster.Lenox(), 4, 8, 1, PlaceCyclic)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for r, n := range want {
		if job.NodeOf(r) != n {
			t.Fatalf("cyclic: rank %d on node %d, want %d", r, job.NodeOf(r), n)
		}
	}
}

func TestNodeOfBounds(t *testing.T) {
	job, _ := Plan(cluster.Lenox(), 2, 4, 1, PlaceBlock)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank should panic")
		}
	}()
	job.NodeOf(4)
}

func TestLaunchLatencyGrowsWithNodes(t *testing.T) {
	mn4 := cluster.MareNostrum4()
	j4, _ := Plan(mn4, 4, 4*48, 1, PlaceBlock)
	j256, _ := Plan(mn4, 256, 256*48, 1, PlaceBlock)
	if j256.LaunchLatency() <= j4.LaunchLatency() {
		t.Fatalf("launch latency should grow with allocation: %v vs %v",
			j4.LaunchLatency(), j256.LaunchLatency())
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceBlock.String() != "block" || PlaceCyclic.String() != "cyclic" {
		t.Fatal("placement names wrong")
	}
}
