// Package sched is the SLURM-ish layer: it turns "run R ranks with T
// threads each on N nodes" into a validated placement the MPI config
// consumes, and charges job-launch costs.
package sched

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/units"
)

// Placement is the rank→node distribution policy.
type Placement int

// Placement policies.
const (
	// PlaceBlock fills each node before moving to the next (SLURM
	// --distribution=block), maximizing intra-node neighbours.
	PlaceBlock Placement = iota
	// PlaceCyclic deals ranks round-robin across nodes.
	PlaceCyclic
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case PlaceBlock:
		return "block"
	case PlaceCyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Job is a validated launch plan.
type Job struct {
	// Cluster is the target machine.
	Cluster *cluster.Cluster
	// Nodes is the allocation size.
	Nodes int
	// Ranks is the MPI world size.
	Ranks int
	// ThreadsPerRank is the OpenMP team width per rank.
	ThreadsPerRank int
	// Placement is the distribution policy.
	Placement Placement
	// RanksPerNode is Ranks/Nodes (validated to divide evenly).
	RanksPerNode int
}

// Plan validates a hybrid configuration against the cluster: the ranks
// must divide evenly over the nodes and ranks×threads must not
// oversubscribe cores.
func Plan(c *cluster.Cluster, nodes, ranks, threads int, place Placement) (*Job, error) {
	if _, err := c.Allocate(nodes); err != nil {
		return nil, err
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("sched: %d ranks", ranks)
	}
	if threads <= 0 {
		return nil, fmt.Errorf("sched: %d threads per rank", threads)
	}
	if ranks%nodes != 0 {
		return nil, fmt.Errorf("sched: %d ranks do not divide over %d nodes", ranks, nodes)
	}
	rpn := ranks / nodes
	if rpn*threads > c.CoresPerNode() {
		return nil, fmt.Errorf("sched: %d ranks/node × %d threads oversubscribes %d cores on %s",
			rpn, threads, c.CoresPerNode(), c.Name)
	}
	return &Job{
		Cluster:        c,
		Nodes:          nodes,
		Ranks:          ranks,
		ThreadsPerRank: threads,
		Placement:      place,
		RanksPerNode:   rpn,
	}, nil
}

// NodeOf maps a rank to its node under the job's placement.
func (j *Job) NodeOf(rank int) int {
	if rank < 0 || rank >= j.Ranks {
		panic(fmt.Sprintf("sched: rank %d outside world of %d", rank, j.Ranks))
	}
	switch j.Placement {
	case PlaceBlock:
		return rank / j.RanksPerNode
	case PlaceCyclic:
		return rank % j.Nodes
	default:
		panic(fmt.Sprintf("sched: unknown placement %d", int(j.Placement)))
	}
}

// SameNode reports whether two ranks share a node.
func (j *Job) SameNode(a, b int) bool { return j.NodeOf(a) == j.NodeOf(b) }

// TotalCores returns the cores the job occupies.
func (j *Job) TotalCores() int { return j.Ranks * j.ThreadsPerRank }

// LaunchLatency models srun's fan-out: a tree broadcast of the task
// launch over the allocation plus a constant per-node task spawn.
func (j *Job) LaunchLatency() units.Seconds {
	depth := 0
	for n := 1; n < j.Nodes; n <<= 1 {
		depth++
	}
	return 120*units.Millisecond + units.Seconds(depth)*18*units.Millisecond
}
