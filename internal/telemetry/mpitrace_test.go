// The cross-package determinism test: a CellTrace attached to a real
// MPI execution must be byte-identical across runs. Lives in the
// external test package so it can import mpi (the production
// dependency points the other way — mpi knows only the interfaces).
package telemetry_test

import (
	"bytes"
	"testing"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func traceConfig(p, rpn int, tr *telemetry.CellTrace) mpi.Config {
	nodes := (p + rpn - 1) / rpn
	shm := fabric.SharedMemory(8*units.GBps, 0.5*units.Microsecond)
	inter := fabric.GigabitEthernet.Native
	return mpi.Config{
		Ranks:  p,
		Nodes:  nodes,
		NodeOf: func(r int) int { return r / rpn },
		Path: func(src, dst int) *fabric.Transport {
			if src/rpn == dst/rpn {
				return &shm
			}
			return &inter
		},
		ComputeDilation: 1.0,
		Observer:        tr,
		KernelTracer:    tr,
	}
}

// traceRun executes a small program exercising point-to-point,
// collectives, and blocking (parks and wakes) under a fresh trace.
func traceRun(t *testing.T) []byte {
	t.Helper()
	tr := telemetry.NewCellTrace("mpi-4x2", 0)
	st, err := mpi.Run(traceConfig(4, 2, tr), func(r *mpi.Rank) {
		buf := []float64{float64(r.ID())}
		r.World().Allreduce(buf, mpi.OpSum)
		if r.ID() == 0 {
			r.Send(1, 3, []float64{1, 2, 3})
		}
		if r.ID() == 1 {
			r.Recv(0, 3, make([]float64, 3))
		}
		r.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetKernel(st.Kernel)
	data, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestMPITraceDeterministic(t *testing.T) {
	a, b := traceRun(t), traceRun(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("two runs of the same cell exported different traces:\n%s\n---\n%s", a, b)
	}
}

func TestMPITraceRecordsAllSeams(t *testing.T) {
	data := traceRun(t)
	for _, want := range []string{
		`"name":"switch"`,    // kernel handoffs
		`"name":"park"`,      // blocking
		`"name":"wake"`,      // wakes
		`"name":"msg"`,       // point-to-point completion
		`"name":"allreduce"`, // collective phase spans
		`"name":"barrier"`,
		`"ph":"B"`,
		`"ph":"E"`,
		`"kernel":{`, // final scheduler counters
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Fatalf("trace lacks %s:\n%s", want, data)
		}
	}
}
