package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/units"
	"repro/internal/vtime"
)

// The Chrome Trace Event Format wire types (the JSON Object Format
// variant: a traceEvents array plus metadata). Timestamps are
// microseconds of *virtual* time, so the timeline a viewer renders is
// the simulated schedule, not wall time. chromeTrace is registered in
// the repolint WireRoots, so every exported field stays json-tagged.
type chromeTrace struct {
	TraceEvents     []chromeEvent   `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	OtherData       chromeOtherData `json:"otherData"`
}

// chromeOtherData carries the cell identity and recording summary.
type chromeOtherData struct {
	Label string `json:"label"`
	// Clock names the timestamp domain; always "virtual".
	Clock string `json:"clock"`
	// TotalEvents counts events offered to the ring; DroppedEvents the
	// oldest ones the bounded ring overwrote.
	TotalEvents   int64 `json:"totalEvents"`
	DroppedEvents int64 `json:"droppedEvents"`
	// Kernel reports the execution's final scheduler counters, when
	// attached via SetKernel.
	Kernel *chromeKernel `json:"kernel,omitempty"`
}

// chromeKernel mirrors vtime.Counters with wire tags.
type chromeKernel struct {
	Switches    int64 `json:"switches"`
	SyncFast    int64 `json:"syncFast"`
	PingPong    int64 `json:"pingPong"`
	Wakes       int64 `json:"wakes"`
	WakeBatches int64 `json:"wakeBatches"`
	HeapOps     int64 `json:"heapOps"`
}

// chromeEvent is one trace record. Ph selects the event type: "X"
// complete (Ts..Ts+Dur), "B"/"E" nested span begin/end, "i" instant,
// "M" metadata.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// Per-kind argument payloads. Concrete types rather than maps so the
// field order (and therefore the exported bytes) is fixed by
// declaration, not by map-key sorting.
type (
	nameArgs struct {
		Name string `json:"name"`
	}
	switchArgs struct {
		From int `json:"from"`
	}
	parkArgs struct {
		Tag string `json:"tag"`
	}
	wakeArgs struct {
		Woken int     `json:"woken"`
		AtSrc float64 `json:"atSrc"` // waker's clock (µs) at the wake
	}
	idleArgs struct {
		Tag string `json:"tag"`
	}
	flushArgs struct {
		Batch int `json:"batch"`
	}
	msgArgs struct {
		Src       int     `json:"src"`
		Dst       int     `json:"dst"`
		Tag       int     `json:"tag"`
		Bytes     float64 `json:"bytes"`
		Transport string  `json:"transport"`
	}
)

// kernelTid is the synthetic thread carrying scheduler-global events
// (batched wake flushes) that belong to no single rank.
const kernelTid = -1

// usec converts virtual seconds to the trace's microsecond timestamps.
func usec(s units.Seconds) float64 { return float64(s) * 1e6 }

// chrome renders one recorded event.
func (e event) chrome() chromeEvent {
	switch e.kind {
	case evSwitch:
		return chromeEvent{Name: "switch", Cat: "kernel", Ph: "i", Ts: usec(e.t0), Tid: e.b,
			Args: switchArgs{From: e.a}}
	case evPark:
		return chromeEvent{Name: "park", Cat: "kernel", Ph: "i", Ts: usec(e.t0), Tid: e.a,
			Args: parkArgs{Tag: e.name}}
	case evWake:
		return chromeEvent{Name: "wake", Cat: "kernel", Ph: "i", Ts: usec(e.t0), Tid: e.a,
			Args: wakeArgs{Woken: e.b, AtSrc: usec(e.t1)}}
	case evIdle:
		return chromeEvent{Name: "idle", Cat: "wait", Ph: "X", Ts: usec(e.t0), Dur: usec(e.t1 - e.t0), Tid: e.a,
			Args: idleArgs{Tag: e.name}}
	case evFlush:
		return chromeEvent{Name: "flush-wakes", Cat: "kernel", Ph: "i", Ts: usec(e.t0), Tid: kernelTid,
			Args: flushArgs{Batch: e.a}}
	case evMessage:
		return chromeEvent{Name: "msg", Cat: "mpi", Ph: "X", Ts: usec(e.t0), Dur: usec(e.t1 - e.t0), Tid: e.b,
			Args: msgArgs{Src: e.a, Dst: e.b, Tag: e.c, Bytes: e.size.Bytes(), Transport: e.name}}
	case evPhaseBegin:
		return chromeEvent{Name: e.name, Cat: "collective", Ph: "B", Ts: usec(e.t0), Tid: e.a}
	case evPhaseEnd:
		return chromeEvent{Name: e.name, Cat: "collective", Ph: "E", Ts: usec(e.t0), Tid: e.a}
	default:
		panic(fmt.Sprintf("telemetry: unknown event kind %d", e.kind))
	}
}

// Export renders the trace as Chrome Trace Event Format JSON. The
// output is a pure function of the recorded events: the same cell
// produces byte-identical bytes on every run.
func (t *CellTrace) Export() ([]byte, error) {
	events := t.ordered()
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)+1),
		DisplayTimeUnit: "ms",
		OtherData: chromeOtherData{
			Label:         t.label,
			Clock:         "virtual",
			TotalEvents:   t.total,
			DroppedEvents: t.total - int64(len(events)),
		},
	}
	if t.hasKernel {
		k := t.kernel
		out.OtherData.Kernel = &chromeKernel{
			Switches:    k.Switches,
			SyncFast:    k.SyncFast,
			PingPong:    k.PingPong,
			Wakes:       k.Wakes,
			WakeBatches: k.WakeBatches,
			HeapOps:     k.HeapOps,
		}
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Args: nameArgs{Name: t.label},
	})
	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, e.chrome())
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteFile exports the trace into dir as <name>.trace.json, creating
// dir if needed.
func (t *CellTrace) WriteFile(dir, name string) error {
	data, err := t.Export()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	path := filepath.Join(dir, name+".trace.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// compile-time interface check against the kernel seam (the mpi seams
// are structural; experiments wires them).
var _ vtime.Tracer = (*CellTrace)(nil)
