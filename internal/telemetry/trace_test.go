package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vtime"
)

func TestRingKeepsNewestEvents(t *testing.T) {
	tr := NewCellTrace("ring", 4)
	for i := 0; i < 6; i++ {
		tr.Switch(i, i+1, 0)
	}
	if tr.Len() != 4 || tr.Total() != 6 {
		t.Fatalf("len %d total %d, want 4 and 6", tr.Len(), tr.Total())
	}
	got := tr.ordered()
	for i, e := range got {
		if want := i + 2; e.a != want {
			t.Fatalf("ordered[%d].a = %d, want %d (oldest-first after drop)", i, e.a, want)
		}
	}
}

func TestExportGolden(t *testing.T) {
	tr := NewCellTrace("tiny", 8)
	tr.Switch(-1, 0, 0)
	tr.PhaseBegin(0, "barrier", 1e-6)
	tr.Park(0, "recv", 2e-6)
	tr.Wake(1, 0, 3e-6, 2.5e-6)
	tr.Message(1, 0, 7, 4096, "shm", 2e-6, 3.5e-6)
	tr.Idle(0, "resource:nic-0", 2e-6, 4e-6)
	tr.PhaseEnd(0, "barrier", 4e-6)
	tr.FlushWakes(2, 5e-6)
	tr.SetKernel(vtime.Counters{Switches: 3, Wakes: 1})
	data, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"tiny"}},` +
		`{"name":"switch","cat":"kernel","ph":"i","ts":0,"pid":0,"tid":0,"args":{"from":-1}},` +
		`{"name":"barrier","cat":"collective","ph":"B","ts":1,"pid":0,"tid":0},` +
		`{"name":"park","cat":"kernel","ph":"i","ts":2,"pid":0,"tid":0,"args":{"tag":"recv"}},` +
		`{"name":"wake","cat":"kernel","ph":"i","ts":3,"pid":0,"tid":1,"args":{"woken":0,"atSrc":2.5}},` +
		`{"name":"msg","cat":"mpi","ph":"X","ts":2,"dur":1.5,"pid":0,"tid":0,"args":{"src":1,"dst":0,"tag":7,"bytes":4096,"transport":"shm"}},` +
		`{"name":"idle","cat":"wait","ph":"X","ts":2,"dur":2,"pid":0,"tid":0,"args":{"tag":"resource:nic-0"}},` +
		`{"name":"barrier","cat":"collective","ph":"E","ts":4,"pid":0,"tid":0},` +
		`{"name":"flush-wakes","cat":"kernel","ph":"i","ts":5,"pid":0,"tid":-1,"args":{"batch":2}}],` +
		`"displayTimeUnit":"ms",` +
		`"otherData":{"label":"tiny","clock":"virtual","totalEvents":8,"droppedEvents":0,` +
		`"kernel":{"switches":3,"syncFast":0,"pingPong":0,"wakes":1,"wakeBatches":0,"heapOps":0}}}` + "\n"
	if string(data) != want {
		t.Fatalf("export:\n%s\nwant:\n%s", data, want)
	}
}

func TestExportValidJSONAndWriteFile(t *testing.T) {
	tr := NewCellTrace("cell", 0)
	tr.Switch(-1, 0, 0)
	tr.Message(0, 1, 0, 8, "tcp", 0, 1e-6)
	dir := filepath.Join(t.TempDir(), "traces")
	if err := tr.WriteFile(dir, "deadbeef"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "deadbeef.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 { // metadata + 2 events
		t.Fatalf("traceEvents = %d, want 3", len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event %d lacks %q: %v", i, k, ev)
			}
		}
	}
	if doc.OtherData["clock"] != "virtual" {
		t.Fatalf("otherData.clock = %v, want virtual", doc.OtherData["clock"])
	}
}
