package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a zero-dependency metrics registry: counters, gauges,
// and histograms, each optionally labelled. It is the one model behind
// every stats surface in the repository — study sweeps, the content
// store, the vtime kernel, and the registry service all fold into it —
// and it renders deterministically as Prometheus text exposition
// (families and series in sorted order, shortest-round-trip floats).
//
// All operations are safe for concurrent use; recording is a mutex
// plus a float add, cheap enough for per-request paths but not meant
// for kernel-hot loops (those use vtime.Counters and fold in after the
// run).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// metric kinds, named as Prometheus TYPE values.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

type family struct {
	name    string
	help    string
	kind    string
	buckets []float64 // histogram upper bounds, ascending
	series  map[string]*Series
}

// Label is one name=value metric dimension.
type Label struct {
	Name  string
	Value string
}

// L builds a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Series is one labelled time series within a family. Values are
// updated under the registry's lock via the typed handles below.
type Series struct {
	reg    *Registry
	fam    *family
	labels []Label // sorted by name
	value  float64 // counter/gauge value, or histogram sum
	count  uint64  // histogram observation count
	counts []uint64
}

// Counter is a monotonically increasing series handle.
type Counter struct{ s *Series }

// Gauge is a set-or-adjust series handle.
type Gauge struct{ s *Series }

// Histogram accumulates observations into fixed buckets.
type Histogram struct{ s *Series }

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it with the given kind, or
// panics if it exists with a different kind (a programming error).
func (r *Registry) family(name, help, kind string, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*Series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// sig returns the canonical key for a sorted label set.
func sig(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

// series returns the labelled series in f, creating it on first use.
func (r *Registry) series(f *family, labels []Label) *Series {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	key := sig(ls)
	s, ok := f.series[key]
	if !ok {
		s = &Series{reg: r, fam: f, labels: ls}
		if f.kind == kindHistogram {
			s.counts = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Counter{r.series(r.family(name, help, kindCounter, nil), labels)}
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Gauge{r.series(r.family(name, help, kindGauge, nil), labels)}
}

// Histogram registers (or finds) a histogram series with the given
// ascending upper bounds (an implicit +Inf bucket is always added).
// Bounds are fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Histogram{r.series(r.family(name, help, kindHistogram, buckets), labels)}
}

// Add increments the counter by v (v must be ≥ 0).
func (c Counter) Add(v float64) {
	if v < 0 {
		panic("telemetry: counter decremented")
	}
	c.s.reg.mu.Lock()
	c.s.value += v
	c.s.reg.mu.Unlock()
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Set replaces the gauge value.
func (g Gauge) Set(v float64) {
	g.s.reg.mu.Lock()
	g.s.value = v
	g.s.reg.mu.Unlock()
}

// Add adjusts the gauge by v (which may be negative).
func (g Gauge) Add(v float64) {
	g.s.reg.mu.Lock()
	g.s.value += v
	g.s.reg.mu.Unlock()
}

// Observe records one sample.
func (h Histogram) Observe(v float64) {
	h.s.reg.mu.Lock()
	h.s.value += v
	h.s.count++
	for i, ub := range h.s.fam.buckets {
		if v <= ub {
			h.s.counts[i]++ // per-bucket; WriteProm accumulates into le= cumulative form
			break
		}
	}
	h.s.reg.mu.Unlock()
}

// Value returns the current value of the counter or gauge series with
// exactly these labels, and whether such a series exists. For
// histograms it returns the sum of observations.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0, false
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	s, ok := f.series[sig(ls)]
	if !ok {
		return 0, false
	}
	return s.value, true
}

// promFloat renders a value the way Prometheus clients do: shortest
// representation that round-trips.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promLabels renders a sorted label set as {a="x",b="y"}, with extra
// appended last (used for histogram le). Empty sets render as "".
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies Prometheus label-value escaping.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteProm renders the registry in Prometheus text exposition format
// (version 0.0.4). Families and series are emitted in sorted order, so
// the same metric state always produces the same bytes. The map
// iterations below feed sort.Slice before anything is written.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families { //lint:allow maporder -- collected then sorted by name before output
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		series := make([]*Series, 0, len(f.series))
		for _, s := range f.series { //lint:allow maporder -- collected then sorted by label signature before output
			series = append(series, s)
		}
		sort.Slice(series, func(i, j int) bool { return sig(series[i].labels) < sig(series[j].labels) })

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			switch f.kind {
			case kindHistogram:
				var cum uint64
				for i, ub := range f.buckets {
					cum += s.counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						promLabels(s.labels, L("le", promFloat(ub))), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, promLabels(s.labels, L("le", "+Inf")), s.count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, promLabels(s.labels), promFloat(s.value))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, promLabels(s.labels), s.count)
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, promLabels(s.labels), promFloat(s.value))
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}
