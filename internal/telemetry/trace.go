// Package telemetry is the unified observability layer: virtual-time
// execution traces, a zero-dependency metrics registry with Prometheus
// text exposition, and study/sweep progress reporting.
//
// The package splits along the repository's determinism boundary:
//
//   - CellTrace records kernel and MPI events timestamped in *virtual*
//     time only — it is wallclock-clean and safe to hook into
//     determinism-critical code (the same cell produces a byte-identical
//     trace on every run).
//   - Registry and Progress live on the host side (CLI, registry
//     service). Progress samples the wall clock — explicitly allowed,
//     since nothing it measures feeds simulated results.
//
// CellTrace implements vtime.Tracer, mpi.Observer, and
// mpi.PhaseObserver structurally, so one value taps all three seams.
package telemetry

import (
	"repro/internal/units"
	"repro/internal/vtime"
)

// DefaultTraceEvents is the per-cell event ring capacity: enough for a
// quick cell's full schedule while bounding a paper-scale cell's trace
// to tens of megabytes. The ring keeps the most recent events.
const DefaultTraceEvents = 1 << 16

// event kinds, in the order they are named by kindNames.
const (
	evSwitch uint8 = iota
	evPark
	evWake
	evFlush
	evMessage
	evPhaseBegin
	evPhaseEnd
	evIdle
)

// event is one recorded occurrence, kept compact so the ring is a flat
// allocation-free array. Field use varies by kind:
//
//	switch:   a=from b=to            t0=now
//	park:     a=id   name=tag        t0=now
//	wake:     a=waker b=woken        t0=now t1=wakerNow
//	flush:    a=batch                t0=now
//	message:  a=src b=dst c=tag      t0=sent t1=arrived size name=transport
//	phase:    a=rank name=collective t0=at
//	idle:     a=id   name=tag        t0=from t1=to
type event struct {
	kind    uint8
	a, b, c int
	t0, t1  units.Seconds
	size    units.ByteSize
	name    string
}

// CellTrace is a ring-buffered sink for one cell's execution events.
// It records in O(1) per event with no allocation and no locking —
// every producer (the vtime scheduler, the MPI point-to-point layer,
// the collectives) runs under the single-running-process invariant.
// Export renders the ring as Chrome Trace Event Format JSON
// (chrome://tracing, Perfetto).
//
// Recording is bounded: once the ring is full the oldest events are
// overwritten, and Export reports how many were dropped — the tail of
// a schedule is where a regression usually lives, so recency wins.
type CellTrace struct {
	label string
	ring  []event
	next  int   // next write position once the ring has wrapped
	full  bool  // the ring has wrapped at least once
	total int64 // events ever offered
	// maxTid tracks the largest proc/rank id seen, for thread metadata.
	maxTid int
	// kernel holds the execution's final scheduler counters, attached
	// after the run (they are not themselves events).
	kernel    vtime.Counters
	hasKernel bool
	// fwd, when non-nil, receives every event unbounded (see Forward).
	fwd Handler
}

// NewCellTrace creates a trace for one cell. maxEvents bounds the ring
// (values < 1 mean DefaultTraceEvents).
func NewCellTrace(label string, maxEvents int) *CellTrace {
	if maxEvents < 1 {
		maxEvents = DefaultTraceEvents
	}
	return &CellTrace{label: label, ring: make([]event, 0, maxEvents)}
}

// Label returns the cell label the trace was created with.
func (t *CellTrace) Label() string { return t.label }

// Len returns the number of events currently held (≤ the ring bound).
func (t *CellTrace) Len() int { return len(t.ring) }

// Total returns the number of events ever recorded, dropped included.
func (t *CellTrace) Total() int64 { return t.total }

// record appends one event, overwriting the oldest past the bound.
func (t *CellTrace) record(e event) {
	t.total++
	if e.a > t.maxTid {
		t.maxTid = e.a
	}
	if e.b > t.maxTid {
		t.maxTid = e.b
	}
	if !t.full {
		t.ring = append(t.ring, e)
		if len(t.ring) == cap(t.ring) {
			t.full = true
		}
		return
	}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
}

// ordered returns the held events oldest-first.
func (t *CellTrace) ordered() []event {
	if !t.full || t.next == 0 {
		return t.ring
	}
	out := make([]event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// SetKernel attaches the execution's final scheduler counters, exported
// in the trace's otherData block.
func (t *CellTrace) SetKernel(c vtime.Counters) {
	t.kernel = c
	t.hasKernel = true
}

// Handler consumes the full event stream a CellTrace taps: the vtime
// kernel seam plus the MPI message and collective-phase seams. Unlike
// the bounded ring, a forwarded Handler sees every event — the seam the
// profiler's attribution engine (internal/profile) hangs off, whose
// sums must account for all of a rank's virtual time, not just the
// most recent ring-full. Handlers run under the same contract as
// vtime.Tracer: deterministic callback order, no locking needed, no
// yielding or kernel mutation.
type Handler interface {
	vtime.Tracer
	// Message mirrors mpi.Observer.
	Message(src, dst, tag int, size units.ByteSize, transport string, sent, arrived units.Seconds)
	// PhaseBegin and PhaseEnd mirror mpi.PhaseObserver.
	PhaseBegin(rank int, name string, start units.Seconds)
	PhaseEnd(rank int, name string, end units.Seconds)
}

// Forward attaches a Handler receiving every event offered to the
// trace, before ring bounding. Call it before the run; nil detaches.
func (t *CellTrace) Forward(h Handler) { t.fwd = h }

// Switch implements vtime.Tracer.
func (t *CellTrace) Switch(from, to int, now units.Seconds) {
	t.record(event{kind: evSwitch, a: from, b: to, t0: now})
	if t.fwd != nil {
		t.fwd.Switch(from, to, now)
	}
}

// Park implements vtime.Tracer.
func (t *CellTrace) Park(id int, tag string, now units.Seconds) {
	t.record(event{kind: evPark, a: id, t0: now, name: tag})
	if t.fwd != nil {
		t.fwd.Park(id, tag, now)
	}
}

// Wake implements vtime.Tracer.
func (t *CellTrace) Wake(waker, woken int, now, wakerNow units.Seconds) {
	t.record(event{kind: evWake, a: waker, b: woken, t0: now, t1: wakerNow})
	if t.fwd != nil {
		t.fwd.Wake(waker, woken, now, wakerNow)
	}
}

// Idle implements vtime.Tracer.
func (t *CellTrace) Idle(id int, tag string, from, to units.Seconds) {
	t.record(event{kind: evIdle, a: id, t0: from, t1: to, name: tag})
	if t.fwd != nil {
		t.fwd.Idle(id, tag, from, to)
	}
}

// FlushWakes implements vtime.Tracer.
func (t *CellTrace) FlushWakes(k int, now units.Seconds) {
	t.record(event{kind: evFlush, a: k, t0: now})
	if t.fwd != nil {
		t.fwd.FlushWakes(k, now)
	}
}

// Message implements mpi.Observer: one completed point-to-point
// message becomes a complete-event span on the destination rank's
// timeline, from send entry to payload arrival.
func (t *CellTrace) Message(src, dst, tag int, size units.ByteSize,
	transport string, sent, arrived units.Seconds) {
	t.record(event{kind: evMessage, a: src, b: dst, c: tag, t0: sent, t1: arrived, size: size, name: transport})
	if t.fwd != nil {
		t.fwd.Message(src, dst, tag, size, transport, sent, arrived)
	}
}

// PhaseBegin implements mpi.PhaseObserver.
func (t *CellTrace) PhaseBegin(rank int, name string, start units.Seconds) {
	t.record(event{kind: evPhaseBegin, a: rank, t0: start, name: name})
	if t.fwd != nil {
		t.fwd.PhaseBegin(rank, name, start)
	}
}

// PhaseEnd implements mpi.PhaseObserver.
func (t *CellTrace) PhaseEnd(rank int, name string, end units.Seconds) {
	t.record(event{kind: evPhaseEnd, a: rank, t0: end, name: name})
	if t.fwd != nil {
		t.fwd.PhaseEnd(rank, name, end)
	}
}
