package telemetry

import (
	"fmt"
	"io"

	"repro/internal/resultdb"
	"repro/internal/vtime"
)

// CellsSample is one study's observability delta — the change in sweep,
// store, and kernel counters over a single study run. The CLI snapshots
// its three stats surfaces (SweepStats, resultdb.StoreStats,
// vtime.Counters) around each study and folds the difference into the
// metrics registry through RecordStudy; RenderStudy then prints the
// classic -v lines from the registry, so there is exactly one model
// behind both the human and the scrapeable output.
type CellsSample struct {
	// Cell outcomes from the sweep.
	Simulated        int64
	Replayed         int64
	FailuresReplayed int64
	// Admission-controller window: workers requested vs admitted. A
	// clamp (Admitted != 0 && Admitted < Requested) means the rank
	// budget, not the CPU count, bounded concurrency.
	AdmissionRequested int
	AdmissionAdmitted  int
	// Store is the content store's own traffic delta; nil when no store
	// was attached.
	Store *resultdb.StoreStats
	// Kernel is the vtime scheduler counter delta.
	Kernel vtime.Counters
}

// Metric family names produced by RecordStudy.
const (
	MetricStudyCells     = "study_cells_total"
	MetricStudyAdmission = "study_admission_workers"
	MetricStudyStoreOps  = "study_store_ops_total"
	MetricStudyKernelOps = "study_kernel_ops_total"
)

// RecordStudy folds one study's sample into the registry, labelled by
// study name. Store metrics are only created when a store was attached,
// which is how RenderStudy knows whether to print the store line.
func RecordStudy(reg *Registry, study string, s CellsSample) {
	cell := func(outcome string, v int64) {
		reg.Counter(MetricStudyCells, "Sweep cells by outcome.",
			L("study", study), L("outcome", outcome)).Add(float64(v))
	}
	cell("simulated", s.Simulated)
	cell("replayed", s.Replayed)
	cell("failures_replayed", s.FailuresReplayed)

	adm := func(kind string, v int) {
		reg.Gauge(MetricStudyAdmission, "Admission-controller window: sweep workers requested and admitted.",
			L("study", study), L("kind", kind)).Set(float64(v))
	}
	adm("requested", s.AdmissionRequested)
	adm("admitted", s.AdmissionAdmitted)

	if st := s.Store; st != nil {
		op := func(op string, v int64) {
			reg.Counter(MetricStudyStoreOps, "Content-store operations by kind.",
				L("study", study), L("op", op)).Add(float64(v))
		}
		op("hit", st.Hits)
		op("miss", st.Misses())
		op("prefetch_skip", st.PrefetchSkips)
		op("put", st.Puts)
		op("put_error", st.PutErrors)
		op("neg_hit", st.NegHits)
		op("retry", st.Retries)
	}

	kop := func(op string, v int64) {
		reg.Counter(MetricStudyKernelOps, "vtime scheduler operations by kind.",
			L("study", study), L("op", op)).Add(float64(v))
	}
	kop("switch", s.Kernel.Switches)
	kop("ping_pong", s.Kernel.PingPong)
	kop("sync_fast", s.Kernel.SyncFast)
	kop("heap", s.Kernel.HeapOps)
	kop("wake", s.Kernel.Wakes)
	kop("wake_batch", s.Kernel.WakeBatches)
}

// val reads a registry value as an integer (metrics recorded by
// RecordStudy are integral by construction).
func val(reg *Registry, name string, labels ...Label) int64 {
	v, _ := reg.Value(name, labels...)
	return int64(v)
}

// RenderStudy prints the -v summary for one recorded study —
// byte-identical to the lines the CLI historically assembled from the
// three separate stats structs. rankBudget is quoted in the admission
// line (the line appears only when the window was clamped); the store
// line appears only when RecordStudy saw an attached store.
func RenderStudy(w io.Writer, reg *Registry, study string, rankBudget int) {
	sl := L("study", study)
	cells := func(outcome string) int64 { return val(reg, MetricStudyCells, sl, L("outcome", outcome)) }
	fmt.Fprintf(w, "  %s cells: %d simulated, %d replayed, %d failures replayed\n",
		study, cells("simulated"), cells("replayed"), cells("failures_replayed"))

	req := val(reg, MetricStudyAdmission, sl, L("kind", "requested"))
	adm := val(reg, MetricStudyAdmission, sl, L("kind", "admitted"))
	if adm != 0 && adm < req {
		fmt.Fprintf(w, "  %s admission: %d of %d workers admitted (rank budget %d simulated ranks)\n",
			study, adm, req, rankBudget)
	}

	if _, hasStore := reg.Value(MetricStudyStoreOps, sl, L("op", "hit")); hasStore {
		op := func(op string) int64 { return val(reg, MetricStudyStoreOps, sl, L("op", op)) }
		fmt.Fprintf(w, "  %s store: %d hits, %d misses (%d answered by prefetch), %d puts, %d failure records, %d negative hits, %d retries\n",
			study, op("hit"), op("miss"), op("prefetch_skip"),
			op("put"), op("put_error"), op("neg_hit"), op("retry"))
	}

	kop := func(op string) int64 { return val(reg, MetricStudyKernelOps, sl, L("op", op)) }
	fmt.Fprintf(w, "  %s kernel: %d switches (%d ping-pong), %d sync fast-path, %d heap ops, %d wakes (%d batched flushes)\n",
		study, kop("switch"), kop("ping_pong"), kop("sync_fast"), kop("heap"), kop("wake"), kop("wake_batch"))
}
