package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/resultdb"
	"repro/internal/vtime"
)

func TestRenderStudyLines(t *testing.T) {
	reg := NewRegistry()
	RecordStudy(reg, "fig3", CellsSample{
		Simulated:          5,
		Replayed:           2,
		FailuresReplayed:   1,
		AdmissionRequested: 8,
		AdmissionAdmitted:  2,
		Store: &resultdb.StoreStats{
			Lookups: 10, Hits: 2, NegHits: 1, Puts: 5, PutErrors: 1,
			Retries: 3, PrefetchSkips: 4,
		},
		Kernel: vtime.Counters{
			Switches: 100, PingPong: 40, SyncFast: 10,
			HeapOps: 20, Wakes: 60, WakeBatches: 5,
		},
	})
	var b bytes.Buffer
	RenderStudy(&b, reg, "fig3", 32768)
	want := "" +
		"  fig3 cells: 5 simulated, 2 replayed, 1 failures replayed\n" +
		"  fig3 admission: 2 of 8 workers admitted (rank budget 32768 simulated ranks)\n" +
		"  fig3 store: 2 hits, 7 misses (4 answered by prefetch), 5 puts, 1 failure records, 1 negative hits, 3 retries\n" +
		"  fig3 kernel: 100 switches (40 ping-pong), 10 sync fast-path, 20 heap ops, 60 wakes (5 batched flushes)\n"
	if b.String() != want {
		t.Fatalf("render:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestRenderStudyOmitsConditionalLines(t *testing.T) {
	reg := NewRegistry()
	// No store, and admission unclamped (admitted == requested): only
	// the cells and kernel lines appear.
	RecordStudy(reg, "fig1", CellsSample{
		Simulated:          3,
		AdmissionRequested: 4,
		AdmissionAdmitted:  4,
	})
	var b bytes.Buffer
	RenderStudy(&b, reg, "fig1", 32768)
	out := b.String()
	if strings.Contains(out, "store:") || strings.Contains(out, "admission:") {
		t.Fatalf("unexpected conditional lines:\n%s", out)
	}
	if !strings.Contains(out, "fig1 cells: 3 simulated, 0 replayed, 0 failures replayed") ||
		!strings.Contains(out, "fig1 kernel: 0 switches") {
		t.Fatalf("missing unconditional lines:\n%s", out)
	}
}

func TestRecordStudyMetricsScrapeable(t *testing.T) {
	reg := NewRegistry()
	RecordStudy(reg, "s", CellsSample{Simulated: 2, Replayed: 1})
	var b bytes.Buffer
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`study_cells_total{outcome="simulated",study="s"} 2`,
		`study_cells_total{outcome="replayed",study="s"} 1`,
	} {
		if !strings.Contains(b.String(), line) {
			t.Fatalf("scrape lacks %q:\n%s", line, b.String())
		}
	}
}
