package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readJournalFile reads the single *.fleetlog.jsonl under dir.
func readJournalFile(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.fleetlog.jsonl"))
	if err != nil {
		return "", err
	}
	if len(paths) != 1 {
		return "", fmt.Errorf("want exactly one journal, got %v", paths)
	}
	data, err := os.ReadFile(paths[0])
	return string(data), err
}

// tickClock is a deterministic journal clock: starts at base and
// advances by step on every read.
func tickClock(base, step int64) func() int64 {
	now := base - step
	return func() int64 {
		now += step
		return now
	}
}

// TestFleetJournalGoldenJSONL pins the journal's wire bytes: field
// order, omitempty behaviour, and sequence numbering. A diff here is a
// schema change — deliberate ones must update the golden lines AND the
// README's schema table.
func TestFleetJournalGoldenJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewFleetJournal(&buf, "w-a", tickClock(1_000, 10))
	start := j.Now()
	j.Emit(FleetEvent{
		Kind: FleetSpan, Name: "claim", Span: j.NewSpan(),
		StartNs: start, EndNs: j.Now(), Outcome: "ok",
		Label: "claim", Detail: "POST /v1/work/claim: 200",
	})
	j.Emit(FleetEvent{
		Kind: FleetPoint, Name: "requeue", Parent: "w-a#1", Trace: "w-a",
		StartNs: j.Now(), Outcome: "requeued", Label: "L1",
	})
	want := `{"proc":"w-a","seq":1,"kind":"span","name":"claim","span":"w-a#1","start_ns":1000,"end_ns":1010,"outcome":"ok","label":"claim","detail":"POST /v1/work/claim: 200"}
{"proc":"w-a","seq":2,"kind":"point","name":"requeue","parent":"w-a#1","trace":"w-a","start_ns":1020,"outcome":"requeued","label":"L1"}
`
	if buf.String() != want {
		t.Fatalf("journal bytes drifted from the golden schema:\ngot:\n%swant:\n%s", buf.String(), want)
	}
	if j.Drops() != 0 {
		t.Fatalf("drops = %d on a healthy writer", j.Drops())
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestFleetJournalCountsDrops: a failing writer loses events without
// failing the operation, and the loss is visible both on Drops() and on
// the mirrored metrics counter.
func TestFleetJournalCountsDrops(t *testing.T) {
	j := NewFleetJournal(&errWriter{n: 1}, "w-a", tickClock(0, 1))
	reg := NewRegistry()
	j.CountDropsIn(reg)
	j.Emit(FleetEvent{Kind: FleetPoint, Name: "a", StartNs: j.Now()})
	j.Emit(FleetEvent{Kind: FleetPoint, Name: "b", StartNs: j.Now()})
	j.Emit(FleetEvent{Kind: FleetPoint, Name: "c", StartNs: j.Now()})
	if j.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", j.Drops())
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fleet_journal_dropped_events_total 2") {
		t.Fatalf("drop counter not scrapeable:\n%s", sb.String())
	}
}

// TestFleetJournalNilSafety: every method is a no-op on nil, so call
// sites journal unconditionally.
func TestFleetJournalNilSafety(t *testing.T) {
	var j *FleetJournal
	if j.Proc() != "" || j.Now() != 0 || j.NewSpan() != "" || j.Drops() != 0 {
		t.Fatal("nil journal returned non-zero values")
	}
	j.Emit(FleetEvent{Kind: FleetPoint, Name: "x"})
	j.CountDropsIn(NewRegistry())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenFleetJournalAppendsAndSanitizes: reopening extends the same
// file, and hostile process names cannot escape the journal directory.
func TestOpenFleetJournalAppendsAndSanitizes(t *testing.T) {
	dir := t.TempDir()
	j1, err := OpenFleetJournal(dir, "host:1/bad name")
	if err != nil {
		t.Fatal(err)
	}
	j1.Emit(FleetEvent{Kind: FleetPoint, Name: "a", StartNs: j1.Now()})
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenFleetJournal(dir, "host:1/bad name")
	if err != nil {
		t.Fatal(err)
	}
	j2.Emit(FleetEvent{Kind: FleetPoint, Name: "b", StartNs: j2.Now()})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := readJournalFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(data, "\n"); got != 2 {
		t.Fatalf("reopened journal holds %d lines, want 2 (append, not truncate):\n%s", got, data)
	}
	// Both events carry the original (unsanitized) process identity.
	if strings.Count(data, `"proc":"host:1/bad name"`) != 2 {
		t.Fatalf("proc identity mangled:\n%s", data)
	}
}
