package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeValue(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "ops", L("op", "put"))
	c.Inc()
	c.Add(2)
	if v, ok := reg.Value("ops_total", L("op", "put")); !ok || v != 3 {
		t.Fatalf("counter = %v, %v; want 3, true", v, ok)
	}
	// Label order must not matter for identity.
	reg.Counter("ops_total", "ops", L("op", "get"), L("tier", "local")).Inc()
	if v, ok := reg.Value("ops_total", L("tier", "local"), L("op", "get")); !ok || v != 1 {
		t.Fatalf("reordered labels = %v, %v; want 1, true", v, ok)
	}
	g := reg.Gauge("inflight", "gauge")
	g.Set(5)
	g.Add(-2)
	if v, _ := reg.Value("inflight"); v != 3 {
		t.Fatalf("gauge = %v, want 3", v)
	}
	if _, ok := reg.Value("missing"); ok {
		t.Fatal("missing family reported present")
	}
	if _, ok := reg.Value("ops_total", L("op", "nope")); ok {
		t.Fatal("missing series reported present")
	}
}

func TestCounterPanicsOnDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c", "c").Add(-1)
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.01"} 1
lat_seconds_bucket{le="0.1"} 3
lat_seconds_bucket{le="1"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 5.605
lat_seconds_count 5
`
	if b.String() != want {
		t.Fatalf("prom output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWritePromDeterministicAndSorted(t *testing.T) {
	build := func(reverse bool) string {
		reg := NewRegistry()
		names := []string{"b_total", "a_total"}
		if reverse {
			names = []string{"a_total", "b_total"}
		}
		for _, n := range names {
			reg.Counter(n, "help "+n, L("z", "1")).Inc()
			reg.Counter(n, "help "+n, L("a", "1")).Inc()
		}
		var b bytes.Buffer
		if err := reg.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first, second := build(false), build(true)
	if first != second {
		t.Fatalf("registration order leaked into output:\n%s\nvs:\n%s", first, second)
	}
	want := `# HELP a_total help a_total
# TYPE a_total counter
a_total{a="1"} 1
a_total{z="1"} 1
# HELP b_total help b_total
# TYPE b_total counter
b_total{a="1"} 1
b_total{z="1"} 1
`
	if first != want {
		t.Fatalf("prom output:\n%s\nwant:\n%s", first, want)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c", L("path", "a\\b\"c\nd")).Inc()
	var b bytes.Buffer
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{path="a\\b\"c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as gauge did not panic")
		}
	}()
	reg.Gauge("m", "m")
}
