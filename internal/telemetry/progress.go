package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a structured sweep progress reporter: cells done,
// simulated vs cache-hit split, completion rate, and ETA. It lives on
// the host side of the determinism boundary — rate and ETA are wall
// time, which is why its output goes to a side channel (stderr in the
// CLI) and never into result or figure bytes.
//
// Event is safe to call from concurrent sweep workers.
type Progress struct {
	w io.Writer

	mu        sync.Mutex
	start     time.Time
	lastPrint time.Time
	simulated int
	cached    int
}

// progressInterval throttles printing so a cache-warm sweep replaying
// thousands of cells does not flood the terminal. The final event
// (done == total) always prints.
const progressInterval = 500 * time.Millisecond

// NewProgress creates a reporter writing to w.
func NewProgress(w io.Writer) *Progress {
	//lint:allow wallclock -- progress rate/ETA measure the host, not the simulation
	return &Progress{w: w, start: time.Now()}
}

// Event records one completed cell (cached reports a store replay
// rather than a simulation) and prints a progress line, throttled to
// one per interval plus the final event.
func (p *Progress) Event(done, total int, cached bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cached {
		p.cached++
	} else {
		p.simulated++
	}
	//lint:allow wallclock -- progress rate/ETA measure the host, not the simulation
	now := time.Now()
	final := done >= total
	if !final && now.Sub(p.lastPrint) < progressInterval {
		return
	}
	p.lastPrint = now

	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	line := fmt.Sprintf("progress: %d/%d cells (%d simulated, %d cached)", done, total, p.simulated, p.cached)
	if rate > 0 {
		line += fmt.Sprintf(", %.1f cells/s", rate)
		if !final {
			eta := time.Duration(float64(total-done)/rate*1e9) * time.Nanosecond
			line += fmt.Sprintf(", ETA %s", eta.Round(100*time.Millisecond))
		}
	}
	fmt.Fprintln(p.w, line)
}
