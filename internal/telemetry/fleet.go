package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Fleet tracing: the wall-clock span/event layer for the
// coordinator–worker–registry plane. Where CellTrace records *virtual*
// time inside one simulated cell, a FleetJournal records *wall* time
// around it — claims, leases, heartbeats, store GETs/PUTs, batch
// simulation — as structured JSONL that `hpcstudy fleetlog` merges
// across processes into one timeline (see internal/fleettrace).
//
// Timestamps are wall-clock nanoseconds read through the journal's
// clock, which is monotonic within the process (a wall step never
// reorders a journal). They are operational telemetry only: no
// simulated quantity, record, or figure ever depends on them, which is
// why every clock read below sits behind an explicit wallclock waiver.

// Fleet event kinds.
const (
	// FleetSpan is an interval [StartNs, EndNs] on one process.
	FleetSpan = "span"
	// FleetPoint is an instant (EndNs unused).
	FleetPoint = "point"
)

// FleetEvent is one journal record. The struct is registered in the
// repolint WireRoots, so every exported field stays json-tagged and
// the JSONL schema cannot drift silently. Field order is the wire
// order: encoding/json emits struct fields by declaration, which is
// what makes journals (and the golden test over them) byte-stable.
type FleetEvent struct {
	// Proc identifies the writing process ("coordinator", a worker
	// name); Seq is its per-journal monotonic sequence number, the
	// deterministic tie-break when merged timelines collide on a
	// timestamp.
	Proc string `json:"proc"`
	Seq  int64  `json:"seq"`
	// Kind is FleetSpan or FleetPoint; Name the operation ("claim",
	// "store-put", "simulate", "lease", "serve", ...).
	Kind string `json:"kind"`
	Name string `json:"name"`
	// Span is this event's id ("<proc>#<n>", or a lease id); Parent
	// links to the enclosing or causing span — a cell's lease, a serve
	// span's originating client request. Trace carries the propagated
	// X-Hpc-Trace value on server-side events (the originating
	// process), so one request is findable in both journals.
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	Trace  string `json:"trace,omitempty"`
	// StartNs/EndNs bound the span in this process's clock (wall
	// nanoseconds); points carry only StartNs.
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns,omitempty"`
	// Outcome is the typed result: "ok", "retry", "lease-gone",
	// "reset", "error", "miss", "expired", "completed", "failed",
	// "lost", "requeued".
	Outcome string `json:"outcome,omitempty"`
	// Label and Detail are display strings (worker name, cell label,
	// request path, cell counts) — never parsed, only rendered.
	Label  string `json:"label,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// FleetJournal appends FleetEvents as JSONL, one line per event,
// unbuffered — a SIGKILLed worker loses at most the line being
// written, and the reader side tolerates that torn tail. All methods
// are safe on a nil receiver (no-ops returning zero values), so call
// sites wire tracing unconditionally and a run without -fleetlog costs
// a nil check per event.
type FleetJournal struct {
	mu      sync.Mutex
	w       io.Writer
	closer  io.Closer
	proc    string
	clock   func() int64
	seq     int64
	spanSeq atomic.Int64
	drops   atomic.Int64
	dropped Counter
	hasCtr  bool
}

// wallNanos builds the default journal clock: wall-anchored but
// monotonic within the process, so a clock step (NTP, a VM migration)
// can never reorder a journal.
func wallNanos() func() int64 {
	//lint:allow wallclock -- fleet journal timestamps are operator observability; no simulated result, record, or figure reads them
	base := time.Now()
	return func() int64 {
		//lint:allow wallclock -- monotonic delta off the journal's base; same observability-only contract as the base read
		return base.Add(time.Since(base)).UnixNano()
	}
}

// NewFleetJournal builds a journal writing to w. A nil clock uses the
// monotonic wall clock; tests inject a fake for golden output.
func NewFleetJournal(w io.Writer, proc string, clock func() int64) *FleetJournal {
	if clock == nil {
		clock = wallNanos()
	}
	return &FleetJournal{w: w, proc: proc, clock: clock}
}

// sanitizeProc maps a process name to a safe journal file stem.
func sanitizeProc(proc string) string {
	out := []byte(proc)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// OpenFleetJournal creates (if needed) dir and opens the journal file
// <proc>.fleetlog.jsonl inside it, appending — a restarted coordinator
// extends its journal rather than erasing the run's history.
func OpenFleetJournal(dir, proc string) (*FleetJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: fleet journal: %w", err)
	}
	path := filepath.Join(dir, sanitizeProc(proc)+".fleetlog.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: fleet journal: %w", err)
	}
	j := NewFleetJournal(f, proc, nil)
	j.closer = f
	return j, nil
}

// Proc returns the journal's process identity ("" on nil).
func (j *FleetJournal) Proc() string {
	if j == nil {
		return ""
	}
	return j.proc
}

// Now reads the journal's clock (0 on nil): wall nanoseconds,
// monotonic within the process.
func (j *FleetJournal) Now() int64 {
	if j == nil {
		return 0
	}
	return j.clock()
}

// NewSpan allocates a process-unique span id ("" on nil). Ids embed
// the process name, so merged journals never collide.
func (j *FleetJournal) NewSpan() string {
	if j == nil {
		return ""
	}
	return fmt.Sprintf("%s#%d", j.proc, j.spanSeq.Add(1))
}

// CountDropsIn mirrors the journal's drop counter into a metrics
// registry, so a journal silently losing events is visible on the
// scrape surface.
func (j *FleetJournal) CountDropsIn(r *Registry) {
	if j == nil || r == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dropped = r.Counter("fleet_journal_dropped_events_total",
		"Fleet journal events lost to encode or write failures.")
	j.hasCtr = true
}

// Emit appends one event, filling Proc and Seq. A failed encode or
// write drops the event and counts the drop — observability must never
// fail the operation it observes.
func (j *FleetJournal) Emit(ev FleetEvent) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	ev.Proc = j.proc
	ev.Seq = j.seq
	data, err := json.Marshal(ev)
	if err == nil {
		_, err = j.w.Write(append(data, '\n'))
	}
	if err != nil {
		j.drops.Add(1)
		if j.hasCtr {
			j.dropped.Inc()
		}
	}
}

// Drops reports how many events were lost (0 on nil).
func (j *FleetJournal) Drops() int64 {
	if j == nil {
		return 0
	}
	return j.drops.Load()
}

// Close releases the journal file, if the journal owns one.
func (j *FleetJournal) Close() error {
	if j == nil || j.closer == nil {
		return nil
	}
	return j.closer.Close()
}
