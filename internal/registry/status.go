package registry

import (
	"html/template"
	"net/http"

	"repro/internal/resultdb"
	"repro/internal/telemetry"
)

// Fleet status: GET /v1/status serves a JSON snapshot of the whole
// deployment — schema, sweep progress, and every worker's last
// heartbeat-reported progress/attribution summary — and GET / renders
// the same snapshot as a zero-dependency HTML page (stdlib templates,
// inline CSS, meta-refresh; nothing fetched from anywhere). Both work
// on a plain cache server too, just without the sweep sections.

// FleetStatus is the body of GET /v1/status.
type FleetStatus struct {
	// Schema is the server's record-schema stamp.
	Schema string `json:"schema"`
	// StoreKeys counts records in the backing store.
	StoreKeys int `json:"store_keys"`
	// Work is the sweep snapshot; nil when the server is a plain cache
	// rather than a coordinator.
	Work *WorkStatus `json:"work,omitempty"`
	// Workers lists every worker the coordinator has heard from,
	// sorted by name.
	Workers []WorkerStatus `json:"workers,omitempty"`
	// Totals sums the workers' progress summaries.
	Totals WorkerProgress `json:"totals"`
}

// fleetStatus assembles the snapshot (and folds lazy-expiry fallout
// into metrics when a queue is attached).
func (s *Server) fleetStatus() FleetStatus {
	fs := FleetStatus{
		Schema:    resultdb.SchemaVersion(),
		StoreKeys: len(s.store.Keys()),
	}
	if s.opt.Work != nil {
		st, workers, ev := s.opt.Work.Fleet()
		s.noteWorkEvents(ev)
		fs.Work = &st
		fs.Workers = workers
		for _, w := range workers {
			fs.Totals.add(w.Progress)
		}
	}
	return fs
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleetStatus())
}

// noteWorkerProgress mirrors a worker's heartbeat summary into the
// scrapeable metrics families, labelled by worker.
func (s *Server) noteWorkerProgress(worker string, p WorkerProgress) {
	lw := telemetry.L("worker", worker)
	s.metrics.Gauge("registry_worker_cells", "Cells run to completion, by worker and provenance.",
		lw, telemetry.L("kind", "simulated")).Set(float64(p.Simulated))
	s.metrics.Gauge("registry_worker_cells", "Cells run to completion, by worker and provenance.",
		lw, telemetry.L("kind", "replayed")).Set(float64(p.Replayed))
	s.metrics.Gauge("registry_worker_failures", "Cells whose run errored, by worker.", lw).
		Set(float64(p.Failures))
	s.metrics.Gauge("registry_worker_virtual_seconds", "Simulated virtual time over all ranks, by worker.", lw).
		Set(p.VirtualSeconds)
	s.metrics.Gauge("registry_worker_comm_seconds", "Virtual time the MPI engine accounted to communication, by worker.", lw).
		Set(p.CommSeconds)
}

// statusPage is the status page: one HTML document, styles inline, no
// scripts, no external fetches; a meta refresh keeps it live.
var statusPage = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>hpcstudy registry</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #1a1a1a; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.5rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
.bar { background: #eee; width: 16rem; height: 1rem; border-radius: 2px; }
.bar div { background: #2a7; height: 100%; border-radius: 2px; }
.muted { color: #777; }
.stale td { background: #fce8e6; }
.stale td:first-child::after { content: " ⚠"; }
</style>
</head>
<body>
<h1>hpcstudy registry</h1>
<p class="muted">schema {{.Schema}} &middot; {{.StoreKeys}} records in store</p>
{{if .Work}}
<h2>sweep {{.Work.Study}} <span class="muted">(stamp {{.Work.Stamp}})</span></h2>
<div class="bar"><div style="width: {{.DonePercent}}%"></div></div>
<p>{{.Work.DoneCells}} / {{.Work.TotalCells}} cells done
({{.Work.LeasedCells}} leased, {{.Work.PendingCells}} pending) &middot;
{{.Work.ActiveLeases}} active leases, {{.Work.ExpiredLeases}} expired,
{{.Work.Requeues}} requeues{{if .Work.Done}} &middot; <strong>done</strong>{{end}}</p>
<h2>workers</h2>
{{if .Workers}}
<table>
<tr><th>worker</th><th>lease</th><th>batches</th><th>cells</th><th>simulated</th><th>replayed</th><th>failures</th><th>virtual s</th><th>comm s</th><th>last seen</th></tr>
{{range .Workers}}
<tr{{if .Stale}} class="stale"{{end}}><td>{{.Name}}</td><td>{{if .Lease}}{{.Lease}} ({{.LeaseCells}} cells){{else}}&mdash;{{end}}</td>
<td>{{.Batches}}</td><td>{{.Progress.Cells}}</td><td>{{.Progress.Simulated}}</td>
<td>{{.Progress.Replayed}}</td><td>{{.Progress.Failures}}</td>
<td>{{printf "%.3f" .Progress.VirtualSeconds}}</td><td>{{printf "%.3f" .Progress.CommSeconds}}</td>
<td>{{.LastSeenMillis}} ms ago{{if .Stale}} <strong>stalled?</strong>{{end}}</td></tr>
{{end}}
</table>
{{else}}<p class="muted">no workers have contacted this coordinator yet</p>{{end}}
{{else}}
<p class="muted">not coordinating a sweep (plain result cache)</p>
{{end}}
<p class="muted">JSON: <a href="/v1/status">/v1/status</a> &middot; metrics: <a href="/v1/metrics">/v1/metrics</a></p>
</body>
</html>
`))

// statusView wraps FleetStatus with the bits templates cannot compute.
type statusView struct {
	FleetStatus
	DonePercent int
}

func (s *Server) handleStatusPage(w http.ResponseWriter, r *http.Request) {
	v := statusView{FleetStatus: s.fleetStatus()}
	if v.Work != nil && v.Work.TotalCells > 0 {
		v.DonePercent = 100 * v.Work.DoneCells / v.Work.TotalCells
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statusPage.Execute(w, v); err != nil {
		s.logf("registry: status page render failed: %v", err)
	}
}
