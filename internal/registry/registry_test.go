package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/alya"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/resultdb"
	"repro/internal/units"
)

// sample builds a distinctive SavedResult without running a
// simulation; i differentiates records.
func sample(i int) core.SavedResult {
	return core.SavedResult{
		Deploy: container.DeployReport{
			Runtime: "Singularity", Image: "bsc/alya:v2.0", Nodes: i,
			WireSize: units.ByteSize(700+i) * units.MiB, PullTime: units.Seconds(i) * 1.25,
		},
		Exec: alya.Result{
			Case: "quick-cfd", Runtime: "Singularity", FabricPath: "omni-path",
			Nodes: i, Ranks: 48 * i, Threads: 1,
			TimePerStep: 0.375 * units.Seconds(i+1), Elapsed: 16.875 * units.Seconds(i+1),
		},
	}
}

func key(i int) string { return fmt.Sprintf("%064x", i) }

// newRegistry stands up a directory store, its HTTP server, and a
// dialled client with fast retries.
func newRegistry(t *testing.T) (*resultdb.DirStore, *httptest.Server, *Client) {
	t.Helper()
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(NewServer(store, ServerOptions{}))
	t.Cleanup(ts.Close)
	c, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return store, ts, c
}

// TestRoundTrip is the wire contract: a record survives
// client→server→disk→server→client bit-identically, failure records
// included, and the manifest lists it.
func TestRoundTrip(t *testing.T) {
	store, _, c := newRegistry(t)

	if _, ok, err := c.Lookup(key(1)); ok || err != nil {
		t.Fatalf("empty registry answered: ok=%v err=%v", ok, err)
	}
	want := sample(1)
	if err := c.Put(key(1), want); err != nil {
		t.Fatal(err)
	}
	ent, ok, err := c.Lookup(key(1))
	if err != nil || !ok {
		t.Fatalf("lookup after put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(ent.Result, want) {
		t.Fatalf("round trip changed the record:\n%+v\n%+v", ent.Result, want)
	}
	// The server persisted through the same DirStore commit path.
	if got, ok := store.Get(key(1)); !ok || !reflect.DeepEqual(got, want) {
		t.Fatal("server-side store does not hold the record")
	}

	if err := c.PutError(key(2), "docker needs admin rights"); err != nil {
		t.Fatal(err)
	}
	if ent, ok, err := c.Lookup(key(2)); err != nil || !ok || ent.Err != "docker needs admin rights" {
		t.Fatalf("failure record: ok=%v err=%v ent=%+v", ok, err, ent)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("failure record answered a success-only Get")
	}
	if err := c.PutError(key(3), ""); err == nil {
		t.Fatal("empty failure message accepted")
	}

	keys := c.Keys()
	if len(keys) != 2 || keys[0] != key(1) || keys[1] != key(2) {
		t.Fatalf("manifest keys %v", keys)
	}

	// 4 lookups: the cold miss, the hit, and two negative hits (Get is
	// a Lookup underneath).
	st := c.Stats()
	if st.Lookups != 4 || st.Hits != 1 || st.NegHits != 2 || st.Puts != 1 || st.PutErrors != 1 || st.Misses() != 1 {
		t.Fatalf("client stats %+v", st)
	}
}

// TestDialRejectsMismatchedSchema is the handshake: a registry built
// from a different model refuses typed, before any record moves.
func TestDialRejectsMismatchedSchema(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wireSchema{Schema: "99-deadbeef"})
	}))
	defer ts.Close()

	_, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond})
	var sme *SchemaMismatchError
	if !errors.As(err, &sme) {
		t.Fatalf("want *SchemaMismatchError, got %v", err)
	}
	if sme.Server != "99-deadbeef" || sme.Client != resultdb.SchemaVersion() {
		t.Fatalf("mismatch error carries %+v", sme)
	}
}

// TestServerRejectsMismatchedClients covers the server side of the
// handshake: stamped requests under a different schema get 409 with
// the typed body, and the client surfaces it as *SchemaMismatchError
// — a server restarted under a new model stops old clients mid-sweep.
func TestServerRejectsMismatchedClients(t *testing.T) {
	_, ts, _ := newRegistry(t)

	// Raw request wearing a stale stamp.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/cells/"+key(1), nil)
	req.Header.Set(headerSchema, "1-0000000000000000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale stamp got HTTP %d, want 409", resp.StatusCode)
	}
	var we wireError
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
		t.Fatal(err)
	}
	if we.Code != codeSchemaMismatch || we.ServerSchema != resultdb.SchemaVersion() {
		t.Fatalf("wire error %+v", we)
	}

	// A PUT whose record is stamped with a different schema is refused
	// even if the request header is current.
	body, _ := json.Marshal(wireRecord{Schema: "1-0000000000000000", Key: key(1), Result: sample(1)})
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/cells/"+key(1), strings.NewReader(string(body)))
	req.Header.Set(headerSchema, resultdb.SchemaVersion())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale record got HTTP %d, want 409", resp.StatusCode)
	}

	// Client-side: a mid-session schema change surfaces typed through
	// Lookup, not as a silent miss.
	mismatch := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(wireError{Code: codeSchemaMismatch, ServerSchema: "99-deadbeef"})
	}))
	defer mismatch.Close()
	c2 := &Client{base: mismatch.URL, hc: http.DefaultClient, backoff: time.Millisecond}
	var sme *SchemaMismatchError
	if _, _, err := c2.Lookup(key(1)); !errors.As(err, &sme) {
		t.Fatalf("want *SchemaMismatchError from Lookup, got %v", err)
	}
	if err := c2.Put(key(1), sample(1)); !errors.As(err, &sme) {
		t.Fatalf("want *SchemaMismatchError from Put, got %v", err)
	}
}

// TestConcurrentPutSameFingerprint hammers one key from many
// goroutines: commits are idempotent (content is a pure function of
// the key), so every writer succeeds and one valid record remains.
func TestConcurrentPutSameFingerprint(t *testing.T) {
	store, _, c := newRegistry(t)

	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = c.Put(key(5), sample(5))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if got, ok := c.Get(key(5)); !ok || !reflect.DeepEqual(got, sample(5)) {
		t.Fatal("record damaged by concurrent writers")
	}
	if store.Len() != 1 {
		t.Fatalf("store knows %d keys, want 1", store.Len())
	}
}

// TestCorruptRecordReadsAsMiss covers damage at both layers: a
// corrupted record file on the server reads as a registry miss (one
// recomputation, never a failed sweep), and an undecodable wire body
// does the same on the client.
func TestCorruptRecordReadsAsMiss(t *testing.T) {
	store, _, c := newRegistry(t)
	if err := c.Put(key(6), sample(6)); err != nil {
		t.Fatal(err)
	}

	// Truncate the record file under the server.
	path := filepath.Join(store.Dir(), key(6)[:2], key(6)+".json")
	if err := os.WriteFile(path, []byte(`{"schema":"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Lookup(key(6)); ok || err != nil {
		t.Fatalf("corrupt server record: ok=%v err=%v", ok, err)
	}
	// A re-Put repairs it.
	if err := c.Put(key(6), sample(6)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Lookup(key(6)); !ok || err != nil {
		t.Fatalf("repaired record: ok=%v err=%v", ok, err)
	}

	// An undecodable 200 body is a client-side miss, not an error.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "not json")
	}))
	defer garbage.Close()
	c2 := &Client{base: garbage.URL, hc: http.DefaultClient, backoff: time.Millisecond}
	if _, ok, err := c2.Lookup(key(6)); ok || err != nil {
		t.Fatalf("garbage wire body: ok=%v err=%v", ok, err)
	}
}

// TestRetryBackoff asserts transient failures are retried and
// counted, and that exhausting retries surfaces an error.
func TestRetryBackoff(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	real := NewServer(store, ServerOptions{})
	var mu sync.Mutex
	failures := 2
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fail := failures > 0
		if fail {
			failures--
		}
		mu.Unlock()
		if fail {
			http.Error(w, "wobble", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	c, err := Dial(flaky.URL, ClientOptions{Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err) // the two failures burn into the dial handshake's retries
	}
	if got := c.Stats().Retries; got != 2 {
		t.Fatalf("handshake retried %d times, want 2", got)
	}

	mu.Lock()
	failures = 10 // beyond the retry budget
	mu.Unlock()
	if err := c.Put(key(1), sample(1)); err == nil {
		t.Fatal("exhausted retries reported success")
	} else if !strings.Contains(err.Error(), "HTTP 503") {
		t.Fatalf("error hides the cause: %v", err)
	}
}

// TestGracefulShutdown cancels the serve context while a PUT is in
// flight: the listener stops accepting, the in-flight commit
// completes and lands durably, and Serve returns nil.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	store, err := resultdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := NewServer(store, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Stream a PUT body slowly so the request is mid-flight when the
	// context dies.
	pr, pw := io.Pipe()
	body, _ := json.Marshal(wireRecord{Schema: resultdb.SchemaVersion(), Key: key(9), Result: sample(9)})
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/cells/"+key(9), pr)
	req.Header.Set(headerSchema, resultdb.SchemaVersion())
	respErr := make(chan error, 1)
	var status int
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			status = resp.StatusCode
			resp.Body.Close()
		}
		respErr <- err
	}()

	if _, err := pw.Write(body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}
	cancel() // shutdown begins with the PUT half-sent
	time.Sleep(20 * time.Millisecond)
	if _, err := pw.Write(body[len(body)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	if err := <-respErr; err != nil {
		t.Fatalf("in-flight PUT dropped during shutdown: %v", err)
	}
	if status != http.StatusNoContent {
		t.Fatalf("in-flight PUT got HTTP %d", status)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	// The commit is durable: a fresh open sees it.
	s2, err := resultdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(key(9)); !ok {
		t.Fatal("record committed during shutdown is not durable")
	}
}

// TestTieredReadThroughAndWrites covers the two-flag configuration:
// remote hits populate the local directory, repeat lookups stay
// local, and commits land in both tiers.
func TestTieredReadThroughAndWrites(t *testing.T) {
	central, _, c := newRegistry(t)
	local, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(local, c)
	defer tiered.Close()

	// Seed the registry behind the tiered store's back.
	if err := central.Put(key(1), sample(1)); err != nil {
		t.Fatal(err)
	}
	ent, ok, err := tiered.Lookup(key(1))
	if err != nil || !ok || !reflect.DeepEqual(ent.Result, sample(1)) {
		t.Fatalf("remote hit through tiers: ok=%v err=%v", ok, err)
	}
	// Read-through populated the local tier atomically.
	if _, ok := local.Get(key(1)); !ok {
		t.Fatal("remote hit did not populate the local tier")
	}
	before := c.Stats().Lookups
	if _, ok, _ := tiered.Lookup(key(1)); !ok {
		t.Fatal("second lookup missed")
	}
	if got := c.Stats().Lookups; got != before {
		t.Fatalf("warm lookup went to the network (%d -> %d)", before, got)
	}

	// Writes land in both tiers.
	if err := tiered.Put(key(2), sample(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := local.Get(key(2)); !ok {
		t.Fatal("put skipped the local tier")
	}
	if _, ok := central.Get(key(2)); !ok {
		t.Fatal("put skipped the registry")
	}
	if keys := tiered.Keys(); len(keys) != 2 {
		t.Fatalf("union keys %v", keys)
	}
}

// TestRejectsNonFingerprintKeys closes the path-traversal hole: a
// percent-encoded "../" key must be refused at the wire with a typed
// 400 and must never reach a filesystem join.
func TestRejectsNonFingerprintKeys(t *testing.T) {
	store, ts, _ := newRegistry(t)

	evil := "%2e%2e%2f%2e%2e%2fevil"
	rec, _ := json.Marshal(wireRecord{Schema: resultdb.SchemaVersion(), Key: "../../evil", Error: "pwn"})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/cells/"+evil, strings.NewReader(string(rec)))
	req.Header.Set(headerSchema, resultdb.SchemaVersion())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal PUT got HTTP %d, want 400", resp.StatusCode)
	}
	var we wireError
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Code != codeBadRecord {
		t.Fatalf("traversal PUT body: %+v (%v)", we, err)
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), "..", "evil.json")); !os.IsNotExist(err) {
		t.Fatal("traversal PUT escaped the store directory")
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), "..", "..", "evil.json")); !os.IsNotExist(err) {
		t.Fatal("traversal PUT escaped two levels up")
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/cells/"+evil, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal GET got HTTP %d, want 400", resp.StatusCode)
	}

	// The client refuses malformed keys before they reach the wire,
	// and the store itself is the last line of defence.
	c, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("../../evil", sample(1)); err == nil || !strings.Contains(err.Error(), "invalid key") {
		t.Fatalf("client accepted a traversal key: %v", err)
	}
	if err := store.PutError("../../evil", "pwn"); err == nil {
		t.Fatal("store accepted a traversal key")
	}
	if _, ok, err := store.Lookup("../../evil"); ok || err != nil {
		t.Fatalf("store lookup on traversal key: ok=%v err=%v", ok, err)
	}
}

// TestServeTearsDownGCOnFatalError asserts a fatal listener failure
// unwinds Serve even with periodic GC configured — the GC loop must
// follow the server's lifetime, not only the signal context.
func TestServeTearsDownGCOnFatalError(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := NewServer(store, ServerOptions{GCInterval: time.Hour, GC: resultdb.GCPolicy{MaxAge: time.Hour}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(context.Background(), ln) }()
	time.Sleep(10 * time.Millisecond)
	ln.Close() // the accept loop dies without any context cancellation

	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("fatal listener failure reported as clean shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve wedged after a fatal listener failure")
	}
}

// TestPrefetchSkipsAbsentLookups is the shard-prefetch contract: one
// manifest fetch lets the client answer lookups of keys the registry
// lacks without a per-cell GET, counting the avoided round trips; the
// mark is one-shot, so the next lookup of the same key returns to the
// wire, and a key the client itself commits is unmarked immediately.
func TestPrefetchSkipsAbsentLookups(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := NewServer(store, ServerOptions{})
	var cellGets int64
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/cells/") {
			mu.Lock()
			cellGets++
			mu.Unlock()
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()
	gets := func() int64 { mu.Lock(); defer mu.Unlock(); return cellGets }

	c, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(key(1), sample(1)); err != nil {
		t.Fatal(err)
	}

	c.Prefetch([]string{key(1), key(2)})

	// Absent key: answered locally, zero wire traffic, one skip.
	if _, ok, err := c.Lookup(key(2)); err != nil || ok {
		t.Fatalf("prefetched-absent lookup: ok=%v err=%v", ok, err)
	}
	if gets() != 0 {
		t.Fatalf("prefetched-absent lookup hit the wire (%d GETs)", gets())
	}
	if got := c.Stats().PrefetchSkips; got != 1 {
		t.Fatalf("PrefetchSkips = %d, want 1", got)
	}

	// One-shot: the second lookup of the same key asks the registry.
	if _, ok, err := c.Lookup(key(2)); err != nil || ok {
		t.Fatalf("second lookup: ok=%v err=%v", ok, err)
	}
	if gets() != 1 {
		t.Fatalf("second lookup did not hit the wire (%d GETs)", gets())
	}

	// Present key: the prefetch never marked it, the GET hits.
	ent, ok, err := c.Lookup(key(1))
	if err != nil || !ok || ent.Err != "" {
		t.Fatalf("present lookup: ok=%v err=%v", ok, err)
	}
	if gets() != 2 {
		t.Fatalf("present lookup skipped the wire (%d GETs)", gets())
	}

	// A key this client commits is unmarked: the next lookup must see
	// the committed record, not a stale absence.
	c.Prefetch([]string{key(3)})
	if err := c.Put(key(3), sample(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Lookup(key(3)); !ok {
		t.Fatal("lookup after own Put answered from a stale prefetch mark")
	}
	if got := c.Stats().PrefetchSkips; got != 1 {
		t.Fatalf("PrefetchSkips = %d after Put-cleared mark, want 1", got)
	}

	// A re-prefetch prunes marks the fresh manifest disproves: mark a
	// key absent, let "another shard" commit it, prefetch again — the
	// next lookup must see the record, not the stale mark.
	c.Prefetch([]string{key(5)})
	other, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Put(key(5), sample(5)); err != nil {
		t.Fatal(err)
	}
	other.Close()
	c.Prefetch([]string{key(5)})
	if _, ok, _ := c.Lookup(key(5)); !ok {
		t.Fatal("stale absence mark survived a fresh manifest prefetch")
	}

	// A failed manifest fetch marks nothing: lookups keep working.
	ts.Close()
	c.Prefetch([]string{key(4)})
	if got := c.Stats().PrefetchSkips; got != 1 {
		t.Fatalf("PrefetchSkips = %d after failed prefetch, want 1", got)
	}
}
