package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resultdb"
	"repro/internal/telemetry"
)

// decodeJournal parses a journal buffer back into events.
func decodeJournal(t *testing.T, buf *bytes.Buffer) []telemetry.FleetEvent {
	t.Helper()
	var out []telemetry.FleetEvent
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var ev telemetry.FleetEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("journal line undecodable: %v\n%s", err, line)
		}
		out = append(out, ev)
	}
	return out
}

// findEvent returns the first event matching pred, failing if none.
func findEvent(t *testing.T, events []telemetry.FleetEvent, what string, pred func(telemetry.FleetEvent) bool) telemetry.FleetEvent {
	t.Helper()
	for _, ev := range events {
		if pred(ev) {
			return ev
		}
	}
	t.Fatalf("no %s event in journal: %+v", what, events)
	return telemetry.FleetEvent{}
}

// TestTraceIDPropagation drives one claim→complete lease over the real
// wire and follows the trace/span ids end to end: the client journals
// the claim attempt under a span id, the server's serve span parents on
// that id and carries the client's trace identity, the access log shows
// both, and the coordinator's lease span parents on the claiming
// request — the linkage fleetlog reconstruction relies on.
func TestTraceIDPropagation(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var srvBuf, cliBuf bytes.Buffer
	srvJournal := telemetry.NewFleetJournal(&srvBuf, "coordinator", nil)
	cliJournal := telemetry.NewFleetJournal(&cliBuf, "w1", nil)
	clock := newFakeClock()
	q := NewWorkQueue(cellsNamed("g", "k1", "k2"), QueueOptions{
		Study: "t", BatchSize: 2, Clock: clock.Now, Journal: srvJournal,
	})
	var logMu sync.Mutex
	var logs []string
	ts := httptest.NewServer(NewServer(store, ServerOptions{
		Work: q, Journal: srvJournal,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			logs = append(logs, fmt.Sprintf(format, args...))
		},
	}))
	defer ts.Close()
	c, err := Dial(ts.URL, ClientOptions{Journal: cliJournal})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wc, err := c.ClaimWork("w1")
	if err != nil || wc.Lease == nil {
		t.Fatalf("claim: %+v err=%v", wc, err)
	}
	if ok, err := c.CompleteWork(wc.Lease.ID, false, "", nil); !ok || err != nil {
		t.Fatalf("complete: ok=%v err=%v", ok, err)
	}

	cli := decodeJournal(t, &cliBuf)
	srv := decodeJournal(t, &srvBuf)

	// The client journaled the claim attempt under a w1-scoped span id.
	claim := findEvent(t, cli, "claim", func(ev telemetry.FleetEvent) bool {
		return ev.Name == "claim" && ev.Outcome == "ok"
	})
	if !strings.HasPrefix(claim.Span, "w1#") {
		t.Fatalf("claim span id %q does not carry the process identity", claim.Span)
	}

	// The server's serve span parents on that exact span and records the
	// propagated trace identity.
	serve := findEvent(t, srv, "serve for the claim", func(ev telemetry.FleetEvent) bool {
		return ev.Name == "serve" && ev.Parent == claim.Span
	})
	if serve.Trace != "w1" {
		t.Fatalf("serve trace = %q, want w1 (propagated X-Hpc-Trace)", serve.Trace)
	}

	// The access log shows the propagated pair for the claim request.
	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	if !strings.Contains(joined, "[w1/"+claim.Span+"]") {
		t.Fatalf("access log lacks the trace/span pair [w1/%s]:\n%s", claim.Span, joined)
	}

	// The coordinator's lease span covers grant→completion, parents on
	// the claiming request's span, and carries the worker identity.
	lease := findEvent(t, srv, "lease", func(ev telemetry.FleetEvent) bool {
		return ev.Name == "lease"
	})
	if lease.Span != wc.Lease.ID || lease.Parent != claim.Span {
		t.Fatalf("lease span %q parent %q, want span %q parent %q",
			lease.Span, lease.Parent, wc.Lease.ID, claim.Span)
	}
	if lease.Outcome != "completed" || lease.Label != "w1" {
		t.Fatalf("lease settled as %q for %q, want completed for w1", lease.Outcome, lease.Label)
	}

	// The complete attempt, too, crossed the wire under its own span.
	complete := findEvent(t, cli, "complete", func(ev telemetry.FleetEvent) bool {
		return ev.Name == "complete" && ev.Outcome == "ok"
	})
	findEvent(t, srv, "serve for the complete", func(ev telemetry.FleetEvent) bool {
		return ev.Name == "serve" && ev.Parent == complete.Span
	})
}

// TestLeaseExpiryJournalsOrphanAndRequeue: a SIGKILLed worker's lease
// expires during a later request's lazy sweep; the journal must link
// the orphaned lease span to the triggering request (the successor),
// which is exactly how fleetlog reconstruction attributes a requeue.
func TestLeaseExpiryJournalsOrphanAndRequeue(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var srvBuf bytes.Buffer
	srvJournal := telemetry.NewFleetJournal(&srvBuf, "coordinator", nil)
	clock := newFakeClock()
	q := NewWorkQueue(cellsNamed("g", "k1", "k2"), QueueOptions{
		Study: "t", BatchSize: 2, LeaseTTL: time.Minute, Clock: clock.Now, Journal: srvJournal,
	})
	ts := httptest.NewServer(NewServer(store, ServerOptions{Work: q, Journal: srvJournal}))
	defer ts.Close()
	var cliBuf bytes.Buffer
	c, err := Dial(ts.URL, ClientOptions{Journal: telemetry.NewFleetJournal(&cliBuf, "doomed", nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wc, err := c.ClaimWork("doomed")
	if err != nil || wc.Lease == nil {
		t.Fatalf("claim: %+v err=%v", wc, err)
	}
	// The worker dies silently; a successor's claim two TTLs later
	// sweeps the lease.
	clock.Advance(2 * time.Minute)
	var succBuf bytes.Buffer
	c2, err := Dial(ts.URL, ClientOptions{Journal: telemetry.NewFleetJournal(&succBuf, "succ", nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	wc2, err := c2.ClaimWork("succ")
	if err != nil || wc2.Lease == nil {
		t.Fatalf("successor claim: %+v err=%v", wc2, err)
	}

	srv := decodeJournal(t, &srvBuf)
	succ := decodeJournal(t, &succBuf)
	succClaim := findEvent(t, succ, "successor claim", func(ev telemetry.FleetEvent) bool {
		return ev.Name == "claim" && ev.Outcome == "ok"
	})
	orphan := findEvent(t, srv, "expired lease", func(ev telemetry.FleetEvent) bool {
		return ev.Name == "lease" && ev.Outcome == "expired"
	})
	if orphan.Span != wc.Lease.ID || orphan.Label != "doomed" {
		t.Fatalf("orphaned lease span = %+v, want lease %s for doomed", orphan, wc.Lease.ID)
	}
	requeue := findEvent(t, srv, "requeue", func(ev telemetry.FleetEvent) bool {
		return ev.Kind == telemetry.FleetPoint && ev.Name == "requeue"
	})
	if requeue.Label != wc.Lease.ID {
		t.Fatalf("requeue names lease %q, want %s", requeue.Label, wc.Lease.ID)
	}
	if requeue.Parent != succClaim.Span {
		t.Fatalf("requeue parent = %q, want the triggering claim %q (orphan → successor link)",
			requeue.Parent, succClaim.Span)
	}
}
