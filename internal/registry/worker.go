package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// WorkerOptions tunes one coordinated-sweep worker.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs and lease
	// attribution.
	Name string
	// Stamp is this worker's own enumeration fingerprint (WorkStamp
	// over the study it was invoked with). A lease stamped differently
	// means coordinator and worker were started with different studies
	// or flags; the worker refuses rather than simulate cells it would
	// misattribute.
	Stamp string
	// Run computes and commits one cell. It must be idempotent (the
	// store is content-addressed) and should commit failures as
	// negative records before returning the error.
	Run func(WorkCell) error
	// Parallel bounds concurrent cells within a batch. Default 1.
	Parallel int
	// Logf, when non-nil, receives one line per lease event.
	Logf func(format string, args ...any)
	// Progress, when non-nil, is polled at every heartbeat; the
	// snapshot rides to the coordinator, which serves it on
	// GET /v1/status. Must be safe to call concurrently with Run.
	Progress func() WorkerProgress
	// Journal, when non-nil, records this worker's view of each lease
	// as a wall-clock span (claim success to settle) and each cell as a
	// nested "simulate" span, so fleetlog can attribute the worker's
	// wall time between simulation, wire waits, and idling.
	Journal *telemetry.FleetJournal
}

// WorkerReport summarises one worker's run.
type WorkerReport struct {
	// Batches counts leases settled (completed or failed); Cells the
	// cells this worker ran to completion; Failures the cells whose
	// Run returned an error.
	Batches  int
	Cells    int
	Failures int
	// LeasesLost counts leases revoked under this worker (missed
	// heartbeats — a coordinator outage, a long stall). Lost leases
	// abandon their remaining cells; whatever this worker had already
	// committed stays durable, and another worker finishes the rest.
	LeasesLost int
}

// RunWorker drains a coordinator's work queue: claim a lease, heartbeat
// it in the background, run its cells, settle it, repeat until the
// coordinator reports the sweep done. Failure semantics:
//
//   - A cell error does not abort the batch — remaining cells still
//     run, then the lease completes as failed and the coordinator
//     requeues exactly the cells that never committed.
//   - A lost lease (heartbeat answered 410, or heartbeats failing on
//     transport errors past the client's retry budget) abandons the
//     batch's remaining cells without completing it; the coordinator
//     re-issues them. Already-committed cells are never recomputed.
//   - A claim or completion that fails even after retries ends the run
//     with an error whose message notes that committed work is durable
//     and the same invocation resumes the sweep.
func RunWorker(c *Client, opt WorkerOptions) (WorkerReport, error) {
	if opt.Run == nil {
		return WorkerReport{}, fmt.Errorf("registry: worker needs a Run callback")
	}
	if opt.Parallel <= 0 {
		opt.Parallel = 1
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var rep WorkerReport
	for {
		claim, err := c.ClaimWork(opt.Name)
		if err != nil {
			return rep, resumable(fmt.Errorf("claiming work: %w", err))
		}
		switch {
		case claim.Done:
			logf("worker %s: sweep complete (%d batches, %d cells, %d failures, %d leases lost)",
				opt.Name, rep.Batches, rep.Cells, rep.Failures, rep.LeasesLost)
			return rep, nil
		case claim.Lease == nil:
			wait := claim.Wait
			if wait <= 0 {
				wait = 250 * time.Millisecond
			}
			logf("worker %s: all work leased out; retrying in %v", opt.Name, wait)
			//lint:allow wallclock -- claim pacing while peers hold every lease; no simulated quantity depends on it
			time.Sleep(wait)
			continue
		}
		lease := claim.Lease
		if opt.Stamp != "" && lease.Stamp != opt.Stamp {
			return rep, fmt.Errorf("registry: coordinator is sweeping %s (stamp %s) but this worker enumerated stamp %s — start both with the same study and flags",
				lease.Study, lease.Stamp, opt.Stamp)
		}
		logf("worker %s: lease %s: %d cells", opt.Name, lease.ID, len(lease.Cells))
		leaseSpan, leaseStart := opt.Journal.NewSpan(), opt.Journal.Now()
		settleLease := func(outcome string) {
			opt.Journal.Emit(telemetry.FleetEvent{
				Kind: telemetry.FleetSpan, Name: "lease", Span: leaseSpan,
				StartNs: leaseStart, EndNs: opt.Journal.Now(),
				Outcome: outcome, Label: lease.ID,
				Detail: fmt.Sprintf("%d cells", len(lease.Cells)),
			})
		}
		cells, failures, lost := runLease(c, lease, opt, logf, leaseSpan)
		rep.Cells += cells
		rep.Failures += failures
		if lost {
			rep.LeasesLost++
			settleLease("lost")
			logf("worker %s: lease %s lost; abandoning its remaining cells (committed work is kept)", opt.Name, lease.ID)
			continue
		}
		var progress *WorkerProgress
		if opt.Progress != nil {
			p := opt.Progress()
			progress = &p
		}
		ok, err := c.CompleteWork(lease.ID, failures > 0, completionNote(failures), progress)
		if err != nil {
			settleLease("lost")
			return rep, resumable(fmt.Errorf("completing lease %s: %w", lease.ID, err))
		}
		if !ok {
			// Expired between the last heartbeat and completion: the
			// coordinator already requeued whatever we had not committed.
			rep.LeasesLost++
			settleLease("lost")
			logf("worker %s: lease %s expired before completion", opt.Name, lease.ID)
			continue
		}
		rep.Batches++
		if failures > 0 {
			settleLease("failed")
		} else {
			settleLease("ok")
		}
	}
}

// resumable annotates a fatal worker error with the recovery story.
func resumable(err error) error {
	return fmt.Errorf("registry: worker stopping: %w (committed cells are durable; rerun the same command to resume the sweep)", err)
}

func completionNote(failures int) string {
	if failures == 0 {
		return ""
	}
	return fmt.Sprintf("%d cells failed (negative records committed)", failures)
}

// runLease heartbeats one lease in the background while its cells run
// on a bounded pool. Returns the number of cells run, how many failed,
// and whether the lease was lost mid-batch.
func runLease(c *Client, lease *WorkLease, opt WorkerOptions, logf func(string, ...any), leaseSpan string) (cells, failures int, lost bool) {
	var gone atomic.Bool
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		interval := lease.Heartbeat
		if interval <= 0 {
			interval = time.Second
		}
		//lint:allow wallclock -- heartbeat cadence is lease renewal on the real clock, invisible to simulated results
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var progress *WorkerProgress
				if opt.Progress != nil {
					p := opt.Progress()
					progress = &p
				}
				alive, err := c.HeartbeatWork(lease.ID, progress)
				if err != nil {
					// Transport dead past the retry budget: assume revoked.
					logf("worker %s: lease %s heartbeat failed: %v", opt.Name, lease.ID, err)
					gone.Store(true)
					return
				}
				if !alive {
					gone.Store(true)
					return
				}
			}
		}
	}()

	var mu sync.Mutex
	sem := make(chan struct{}, opt.Parallel)
	var run sync.WaitGroup
	for _, cell := range lease.Cells {
		if gone.Load() {
			break
		}
		sem <- struct{}{}
		run.Add(1)
		go func(cell WorkCell) {
			defer run.Done()
			defer func() { <-sem }()
			cellSpan, cellStart := opt.Journal.NewSpan(), opt.Journal.Now()
			err := opt.Run(cell)
			outcome := "ok"
			if err != nil {
				outcome = "error"
			}
			opt.Journal.Emit(telemetry.FleetEvent{
				Kind: telemetry.FleetSpan, Name: "simulate", Span: cellSpan, Parent: leaseSpan,
				StartNs: cellStart, EndNs: opt.Journal.Now(),
				Outcome: outcome, Label: cell.Label, Detail: cell.Key,
			})
			mu.Lock()
			cells++
			if err != nil {
				failures++
				logf("worker %s: cell %s failed: %v", opt.Name, cell.Label, err)
			}
			mu.Unlock()
		}(cell)
	}
	run.Wait()
	close(stop)
	hb.Wait()
	return cells, failures, gone.Load()
}
