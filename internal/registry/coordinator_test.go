package registry

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alya"
	"repro/internal/experiments"
	"repro/internal/registry/chaostest"
	"repro/internal/resultdb"
)

// fig2TestOpt is a test-sized Fig2 configuration: 3 runtime variants ×
// 2 node points = 6 cells, one simulated step each.
func fig2TestOpt(store resultdb.Store, stats *experiments.SweepStats) experiments.Options {
	c := alya.ArteryCFDCTEPower()
	c.SimSteps = 1
	return experiments.Options{
		Parallelism: 4,
		Case:        c,
		NodePoints:  []int{4, 8},
		Store:       store,
		Stats:       stats,
	}
}

// renderFig2 flattens the figure to the bytes the CLI would emit.
func renderFig2(t *testing.T, res *experiments.Fig2Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	res.Render(&buf)
	return buf.Bytes()
}

// enumerateFig2 converts the test study into coordinator work units.
func enumerateFig2(t *testing.T) (cells []WorkCell, byKey map[string]experiments.CellSpec, stamp string) {
	t.Helper()
	specs := experiments.Fig2Specs(fig2TestOpt(nil, nil))
	byKey = make(map[string]experiments.CellSpec, len(specs))
	keys := make([]string, 0, len(specs))
	for _, sp := range specs {
		key, err := sp.Key()
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, WorkCell{Key: key, Label: sp.Label, Group: sp.DeployGroup()})
		byKey[key] = sp
		keys = append(keys, key)
	}
	stamp = WorkStamp("fig2", keys)
	return cells, byKey, stamp
}

// committedIn answers the queue's store consultation.
func committedIn(store *resultdb.DirStore) func(string) bool {
	return func(key string) bool {
		_, ok, err := store.Lookup(key)
		return err == nil && ok
	}
}

// coldFig2 computes the reference bytes without any store, once — the
// four integration tests compare against the same cold run.
var coldFig2Once struct {
	sync.Once
	bytes []byte
	err   error
}

func coldFig2(t *testing.T) []byte {
	t.Helper()
	c := &coldFig2Once
	c.Do(func() {
		res, err := experiments.Fig2(fig2TestOpt(nil, nil))
		if err != nil {
			c.err = err
			return
		}
		var buf bytes.Buffer
		res.Render(&buf)
		c.bytes = buf.Bytes()
	})
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.bytes
}

// mergeFig2 assembles the figure purely from the registry.
func mergeFig2(t *testing.T, url string) []byte {
	t.Helper()
	c, err := Dial(url, ClientOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats := &experiments.SweepStats{}
	opt := fig2TestOpt(c, stats)
	opt.FromStore = true
	res, err := experiments.Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Computed.Load(); got != 0 {
		t.Fatalf("merge simulated %d cells, want 0", got)
	}
	return renderFig2(t, res)
}

// runCellWorker wires a sweep engine into the worker's Run callback.
func runCellWorker(eng *experiments.Sweep, byKey map[string]experiments.CellSpec) func(WorkCell) error {
	return func(wc WorkCell) error {
		sp, ok := byKey[wc.Key]
		if !ok {
			return fmt.Errorf("lease names unknown cell %s", wc.Key)
		}
		_, err := eng.RunOne(sp)
		return err
	}
}

// TestCoordinatedSweepWorkerKilledMidLease is the tentpole's
// acceptance story: worker 1 claims a batch, commits one cell, and
// dies silently; after the lease TTL its remaining cell returns to
// the queue and worker 2 finishes the sweep without re-simulating the
// committed cell — and the merged figure is byte-identical to a cold
// unsharded run.
func TestCoordinatedSweepWorkerKilledMidLease(t *testing.T) {
	want := coldFig2(t)
	central, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	cells, byKey, stamp := enumerateFig2(t)
	clock := newFakeClock()
	q := NewWorkQueue(cells, QueueOptions{
		Study: "fig2", BatchSize: 2, LeaseTTL: time.Minute,
		Clock: clock.Now, Committed: committedIn(central),
		Logf: t.Logf,
	})
	ts := httptest.NewServer(NewServer(central, ServerOptions{Work: q}))
	defer ts.Close()

	// Worker 1: claim a batch, commit exactly one cell, die silently —
	// no heartbeat, no completion, no graceful anything.
	w1, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	claim, err := w1.ClaimWork("w1")
	if err != nil {
		t.Fatal(err)
	}
	if claim.Lease == nil || len(claim.Lease.Cells) != 2 {
		t.Fatalf("w1 claim: %+v, want a 2-cell lease", claim)
	}
	if claim.Lease.Stamp != stamp {
		t.Fatalf("lease stamp %s, worker enumerated %s", claim.Lease.Stamp, stamp)
	}
	stats1 := &experiments.SweepStats{}
	eng1 := experiments.NewSweep(fig2TestOpt(w1, stats1))
	if _, err := eng1.RunOne(byKey[claim.Lease.Cells[0].Key]); err != nil {
		t.Fatal(err)
	}
	w1.Close()

	// Silence past the TTL. Expiry is lazy: nothing happens until the
	// next wire activity.
	clock.Advance(61 * time.Second)

	// Worker 2 drains the rest, the revoked remainder included.
	w2, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond, JitterKey: "w2"})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	stats2 := &experiments.SweepStats{}
	eng2 := experiments.NewSweep(fig2TestOpt(w2, stats2))
	rep, err := RunWorker(w2, WorkerOptions{
		Name: "w2", Stamp: stamp, Parallel: 2,
		Run:  runCellWorker(eng2, byKey),
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 5 || rep.Failures != 0 || rep.LeasesLost != 0 {
		t.Fatalf("w2 report %+v, want 5 cells (1 was already committed by the victim)", rep)
	}
	if got := stats2.Computed.Load(); got != 5 {
		t.Fatalf("w2 simulated %d cells, want exactly the 5 uncommitted ones", got)
	}
	st, err := w2.FetchWorkStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.ExpiredLeases != 1 || st.Requeues != 1 || st.DoneCells != 6 {
		t.Fatalf("final status %+v", st)
	}
	if central.Len() != 6 {
		t.Fatalf("registry holds %d cells, want 6", central.Len())
	}

	// The lease lifecycle is on /v1/metrics for operators.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, line := range []string{
		`registry_work_leases_total{event="expired"} 1`,
		`registry_work_requeued_cells_total 1`,
		`registry_work_leases_total{event="granted"} 4`,
	} {
		if !strings.Contains(prom.String(), line) {
			t.Errorf("metrics missing %q:\n%s", line, prom.String())
		}
	}

	if got := mergeFig2(t, ts.URL); !bytes.Equal(got, want) {
		t.Fatalf("merged figure differs from the cold run:\n%s\n---\n%s", got, want)
	}
}

// TestCoordinatorRestartRecovery: the coordinator dies mid-sweep and a
// new one over the same store resumes with exactly the un-committed
// remainder — committed cells are never re-issued.
func TestCoordinatorRestartRecovery(t *testing.T) {
	want := coldFig2(t)
	central, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	cells, byKey, stamp := enumerateFig2(t)

	// First life: a worker claims a batch and commits one cell, then
	// the coordinator process dies (server torn down; queue state —
	// leases, pending batches — all lost).
	clock1 := newFakeClock()
	q1 := NewWorkQueue(cells, QueueOptions{
		Study: "fig2", BatchSize: 2, LeaseTTL: time.Minute,
		Clock: clock1.Now, Committed: committedIn(central),
	})
	ts1 := httptest.NewServer(NewServer(central, ServerOptions{Work: q1}))
	w1, err := Dial(ts1.URL, ClientOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	claim, err := w1.ClaimWork("w1")
	if err != nil {
		t.Fatal(err)
	}
	stats1 := &experiments.SweepStats{}
	eng1 := experiments.NewSweep(fig2TestOpt(w1, stats1))
	if _, err := eng1.RunOne(byKey[claim.Lease.Cells[0].Key]); err != nil {
		t.Fatal(err)
	}
	w1.Close()
	ts1.Close() // the crash

	// Second life: a fresh queue rebuilt from nothing but the store.
	clock2 := newFakeClock()
	q2 := NewWorkQueue(cells, QueueOptions{
		Study: "fig2", BatchSize: 2, LeaseTTL: time.Minute,
		Clock: clock2.Now, Committed: committedIn(central),
	})
	st, _ := q2.Status()
	if st.DoneCells != 1 || st.PendingCells != 5 {
		t.Fatalf("recovered queue %+v, want 1 done / 5 pending", st)
	}
	if st.Stamp != stamp {
		t.Fatal("restart changed the enumeration stamp")
	}
	ts2 := httptest.NewServer(NewServer(central, ServerOptions{Work: q2}))
	defer ts2.Close()
	w2, err := Dial(ts2.URL, ClientOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	stats2 := &experiments.SweepStats{}
	eng2 := experiments.NewSweep(fig2TestOpt(w2, stats2))
	rep, err := RunWorker(w2, WorkerOptions{
		Name: "w2", Stamp: stamp, Parallel: 2, Run: runCellWorker(eng2, byKey),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 5 || stats2.Computed.Load() != 5 {
		t.Fatalf("after restart: report %+v, %d simulated; want the 5 uncommitted cells", rep, stats2.Computed.Load())
	}
	if got := mergeFig2(t, ts2.URL); !bytes.Equal(got, want) {
		t.Fatal("merged figure differs from the cold run after coordinator restart")
	}

	// Third life over the complete store: born done, issues nothing.
	q3 := NewWorkQueue(cells, QueueOptions{
		Study: "fig2", Clock: newFakeClock().Now, Committed: committedIn(central),
	})
	if _, _, done, _ := q3.Claim("w"); !done {
		t.Fatal("restart over a complete sweep must answer done immediately")
	}
}

// TestWorkerUnderChaosTransport drives a full coordinated sweep
// through a faulty wire: the first claim is dropped, a completion is
// reset after the server processed it (the worker must treat the
// resulting lease-gone as settled, not re-run cells), and cell GETs
// are delayed. The sweep still completes byte-identical.
func TestWorkerUnderChaosTransport(t *testing.T) {
	want := coldFig2(t)
	central, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	cells, byKey, stamp := enumerateFig2(t)
	clock := newFakeClock()
	q := NewWorkQueue(cells, QueueOptions{
		Study: "fig2", BatchSize: 2, LeaseTTL: time.Minute,
		Clock: clock.Now, Committed: committedIn(central),
	})
	ts := httptest.NewServer(NewServer(central, ServerOptions{Work: q}))
	defer ts.Close()

	rt := chaostest.Wrap(nil,
		chaostest.Fault{Method: "POST", PathPrefix: "/v1/work/claim", Mode: chaostest.Drop, Count: 1},
		chaostest.Fault{Method: "POST", PathPrefix: "/v1/work/complete", Mode: chaostest.Reset, Count: 1},
		chaostest.Fault{Method: "GET", PathPrefix: "/v1/cells/", Mode: chaostest.Delay, Count: 2, Delay: 2 * time.Millisecond},
	)
	w, err := Dial(ts.URL, ClientOptions{
		HTTPClient: &http.Client{Transport: rt},
		Backoff:    time.Millisecond,
		JitterKey:  "chaos-worker",
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	stats := &experiments.SweepStats{}
	eng := experiments.NewSweep(fig2TestOpt(w, stats))
	rep, err := RunWorker(w, WorkerOptions{
		Name: "chaos-worker", Stamp: stamp, Parallel: 2,
		Run:  runCellWorker(eng, byKey),
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The reset completion was processed server-side; the client saw a
	// connection error, retried, and got lease-gone — which RunWorker
	// must count as a lost lease, never as license to re-run cells.
	if rep.LeasesLost != 1 {
		t.Fatalf("report %+v, want exactly the reset completion counted as a lost lease", rep)
	}
	if got := stats.Computed.Load(); got != 6 {
		t.Fatalf("worker simulated %d cells, want 6 exactly (idempotent commits, no re-runs)", got)
	}
	dropped, reset, delayed := rt.Fired()
	if dropped != 1 || reset != 1 || delayed != 2 {
		t.Fatalf("faults fired: %d dropped, %d reset, %d delayed", dropped, reset, delayed)
	}
	st, err := w.FetchWorkStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("sweep not done under chaos: %+v", st)
	}
	if got := mergeFig2(t, ts.URL); !bytes.Equal(got, want) {
		t.Fatal("merged figure differs from the cold run under chaos transport")
	}
}

// TestWorkerAbandonsOnLeaseLoss: a worker whose heartbeat fails (one
// dropped request, no retry budget) must assume revocation, abandon
// the batch's remaining cells, and carry on claiming — and the sweep
// still converges to byte-identical output once the revoked batch
// expires back into the queue.
func TestWorkerAbandonsOnLeaseLoss(t *testing.T) {
	want := coldFig2(t)
	central, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	cells, byKey, stamp := enumerateFig2(t)
	clock := newFakeClock()
	q := NewWorkQueue(cells, QueueOptions{
		Study: "fig2", BatchSize: 2, LeaseTTL: time.Minute,
		Heartbeat: time.Millisecond, // worker-side ticker: fires during the first cell
		Clock:     clock.Now, Committed: committedIn(central),
		Logf: t.Logf,
	})
	ts := httptest.NewServer(NewServer(central, ServerOptions{Work: q}))
	defer ts.Close()

	// Advance the queue's clock steadily from the background so the
	// abandoned batch's lease expires while the worker keeps claiming.
	// Live leases heartbeat every 1ms of real time, so their deadlines
	// outrun the 30s-per-10ms advance; only silent ones fall behind.
	stopAdv := make(chan struct{})
	var adv sync.WaitGroup
	adv.Add(1)
	go func() {
		defer adv.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopAdv:
				return
			case <-tick.C:
				clock.Advance(30 * time.Second)
			}
		}
	}()
	defer func() { close(stopAdv); adv.Wait() }()

	rt := chaostest.Wrap(nil,
		chaostest.Fault{Method: "POST", PathPrefix: "/v1/work/heartbeat", Mode: chaostest.Drop, Count: 1},
	)
	w, err := Dial(ts.URL, ClientOptions{
		HTTPClient: &http.Client{Transport: rt},
		Retries:    -1, // one dropped heartbeat = assume revoked
		JitterKey:  "flaky-worker",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	stats := &experiments.SweepStats{}
	eng := experiments.NewSweep(fig2TestOpt(w, stats))
	var first atomic.Bool
	first.Store(true)
	rep, err := RunWorker(w, WorkerOptions{
		Name: "flaky-worker", Stamp: stamp, Parallel: 1,
		Run: func(wc WorkCell) error {
			if first.CompareAndSwap(true, false) {
				// Hold the first cell long enough for the 1ms heartbeat
				// ticker to fire into the dropped request.
				time.Sleep(25 * time.Millisecond)
			}
			return runCellWorker(eng, byKey)(wc)
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeasesLost < 1 {
		t.Fatalf("report %+v, want at least one lost lease", rep)
	}
	st, err := w.FetchWorkStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.ExpiredLeases < 1 {
		t.Fatalf("final status %+v", st)
	}
	if central.Len() != 6 {
		t.Fatalf("registry holds %d cells, want 6", central.Len())
	}
	if got := mergeFig2(t, ts.URL); !bytes.Equal(got, want) {
		t.Fatal("merged figure differs from the cold run after lease loss")
	}
}
