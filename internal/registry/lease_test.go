package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the queue's lazy expiry deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// cellsNamed builds n work cells with synthetic keys and one group.
func cellsNamed(group string, names ...string) []WorkCell {
	var out []WorkCell
	for _, n := range names {
		out = append(out, WorkCell{Key: n, Label: group + "/" + n, Group: group})
	}
	return out
}

func keysOf(cells []WorkCell) []string {
	var out []string
	for _, c := range cells {
		out = append(out, c.Key)
	}
	return out
}

func TestWorkStampDiscriminates(t *testing.T) {
	a := WorkStamp("fig2", []string{"k1", "k2"})
	if b := WorkStamp("fig2", []string{"k1", "k2"}); b != a {
		t.Fatalf("same enumeration, different stamps: %s vs %s", a, b)
	}
	if b := WorkStamp("fig1", []string{"k1", "k2"}); b == a {
		t.Fatal("different study, same stamp")
	}
	if b := WorkStamp("fig2", []string{"k2", "k1"}); b == a {
		t.Fatal("different order, same stamp")
	}
	if b := WorkStamp("fig2", []string{"k1"}); b == a {
		t.Fatal("different cells, same stamp")
	}
}

// TestWorkQueueAffinityBatching: cells are grouped by deployment
// affinity in first-appearance order and chunked, so no batch mixes
// image builds.
func TestWorkQueueAffinityBatching(t *testing.T) {
	cells := append(cellsNamed("imgA", "a1", "a2", "a3"), cellsNamed("imgB", "b1", "b2")...)
	// Interleave one more A after the Bs: grouping must pull it back.
	cells = append(cells, WorkCell{Key: "a4", Label: "imgA/a4", Group: "imgA"})
	clock := newFakeClock()
	q := NewWorkQueue(cells, QueueOptions{Study: "t", BatchSize: 2, LeaseTTL: time.Minute, Clock: clock.Now})

	var batches [][]string
	for {
		lease, _, done, _ := q.Claim("w")
		if done {
			t.Fatal("done before any batch completed")
		}
		if lease == nil {
			break // all leased out
		}
		batches = append(batches, keysOf(lease.Cells))
		if len(batches) > 10 {
			t.Fatal("runaway claim loop")
		}
	}
	want := [][]string{{"a1", "a2"}, {"a3", "a4"}, {"b1", "b2"}}
	if fmt.Sprint(batches) != fmt.Sprint(want) {
		t.Fatalf("batches %v, want %v", batches, want)
	}
}

// TestWorkQueueRecovery: committed cells are marked done at
// construction and never issued, but still count in the stamp — a
// restarted coordinator resumes the same sweep, smaller.
func TestWorkQueueRecovery(t *testing.T) {
	cells := cellsNamed("g", "c1", "c2", "c3", "c4")
	committed := map[string]bool{"c1": true, "c3": true}
	clock := newFakeClock()
	opt := QueueOptions{
		Study: "t", BatchSize: 10, LeaseTTL: time.Minute, Clock: clock.Now,
		Committed: func(k string) bool { return committed[k] },
	}
	q := NewWorkQueue(cells, opt)
	if q.Stamp() != WorkStamp("t", keysOf(cells)) {
		t.Fatal("stamp must cover the full enumeration, not the filtered remainder")
	}
	st, _ := q.Status()
	if st.TotalCells != 4 || st.DoneCells != 2 || st.PendingCells != 2 {
		t.Fatalf("recovered status %+v", st)
	}
	lease, _, _, _ := q.Claim("w")
	if got := keysOf(lease.Cells); fmt.Sprint(got) != fmt.Sprint([]string{"c2", "c4"}) {
		t.Fatalf("claimed %v, want the uncommitted remainder", got)
	}
	committed["c2"], committed["c4"] = true, true
	if _, ok, _ := q.Complete(lease.ID, false, nil); !ok {
		t.Fatal("completion refused")
	}
	if st, _ := q.Status(); !st.Done {
		t.Fatalf("sweep not done after remainder completed: %+v", st)
	}
	// A fresh coordinator over the fully-committed store is born done.
	q2 := NewWorkQueue(cells, opt)
	if _, _, done, _ := q2.Claim("w"); !done {
		t.Fatal("restart over a complete store must answer done")
	}
}

// TestWorkQueueExpiryRequeues: silence past the TTL revokes the lease;
// cells the dead worker committed stay done, the rest return to the
// front of the queue.
func TestWorkQueueExpiryRequeues(t *testing.T) {
	cells := cellsNamed("g", "c1", "c2", "c3")
	committed := map[string]bool{}
	clock := newFakeClock()
	q := NewWorkQueue(cells, QueueOptions{
		Study: "t", BatchSize: 2, LeaseTTL: time.Minute, Clock: clock.Now,
		Committed: func(k string) bool { return committed[k] },
	})
	lease, _, _, _ := q.Claim("w1") // c1, c2
	// Heartbeats within the TTL keep it alive across any span.
	for i := 0; i < 5; i++ {
		clock.Advance(50 * time.Second)
		if _, ok, _ := q.Heartbeat(lease.ID, nil); !ok {
			t.Fatalf("heartbeat %d refused while renewing in time", i)
		}
	}
	// The worker commits c1, then dies silently.
	committed["c1"] = true
	clock.Advance(61 * time.Second)
	// Expiry is lazy: the next operation notices. ev carries the
	// fallout for metrics.
	lease2, _, _, ev := q.Claim("w2")
	if ev.expired != 1 || ev.requeuedCells != 1 {
		t.Fatalf("events %+v, want 1 expiry requeueing 1 cell", ev)
	}
	if got := keysOf(lease2.Cells); fmt.Sprint(got) != fmt.Sprint([]string{"c2"}) {
		t.Fatalf("w2 claimed %v, want the dead worker's uncommitted remainder first", got)
	}
	if _, ok, _ := q.Heartbeat(lease.ID, nil); ok {
		t.Fatal("revoked lease still heartbeats")
	}
	if _, ok, _ := q.Complete(lease.ID, false, nil); ok {
		t.Fatal("revoked lease still completes")
	}
	st, _ := q.Status()
	if st.ExpiredLeases != 1 || st.Requeues != 1 || st.DoneCells != 1 {
		t.Fatalf("status %+v", st)
	}
}

// TestWorkQueueFailedCompletion: a failed batch requeues only what
// never committed — and since deterministic failures commit negative
// records, a poisoned cell cannot loop.
func TestWorkQueueFailedCompletion(t *testing.T) {
	cells := cellsNamed("g", "c1", "c2")
	committed := map[string]bool{}
	clock := newFakeClock()
	q := NewWorkQueue(cells, QueueOptions{
		Study: "t", BatchSize: 2, LeaseTTL: time.Minute, Clock: clock.Now,
		Committed: func(k string) bool { return committed[k] },
	})
	lease, _, _, _ := q.Claim("w")
	committed["c1"] = true // success; c2's simulation blew up pre-commit
	_, ok, ev := q.Complete(lease.ID, true, nil)
	if !ok || ev.requeuedCells != 1 {
		t.Fatalf("failed completion: ok=%v ev=%+v", ok, ev)
	}
	lease2, _, _, _ := q.Claim("w")
	if got := keysOf(lease2.Cells); fmt.Sprint(got) != fmt.Sprint([]string{"c2"}) {
		t.Fatalf("requeued %v, want just the uncommitted cell", got)
	}
	// This time the failure committed a negative record: the batch is
	// done even though the worker reports failed=true.
	committed["c2"] = true
	if _, ok, _ := q.Complete(lease2.ID, true, nil); !ok {
		t.Fatal("completion refused")
	}
	if st, _ := q.Status(); !st.Done {
		t.Fatalf("negative records must count as done: %+v", st)
	}
}

// TestWorkQueueWaitThenDone: with everything leased out a claim says
// wait (an active lease may yet expire); with everything committed it
// says done.
func TestWorkQueueWaitThenDone(t *testing.T) {
	clock := newFakeClock()
	q := NewWorkQueue(cellsNamed("g", "c1"), QueueOptions{
		Study: "t", BatchSize: 1, LeaseTTL: time.Minute, Heartbeat: 10 * time.Second, Clock: clock.Now,
	})
	lease, _, _, _ := q.Claim("w1")
	_, wait, done, _ := q.Claim("w2")
	if done || wait != 10*time.Second {
		t.Fatalf("second claim: wait=%v done=%v, want the heartbeat interval", wait, done)
	}
	if _, ok, _ := q.Complete(lease.ID, false, nil); !ok {
		t.Fatal("completion refused")
	}
	if _, _, done, _ := q.Claim("w2"); !done {
		t.Fatal("claim after the last completion must answer done")
	}
}

// TestJitteredBackoff: deterministic for a given (key, path, attempt),
// bounded to [delay/2, delay), and disabled for an empty key.
func TestJitteredBackoff(t *testing.T) {
	const delay = 100 * time.Millisecond
	if got := jittered("", "/v1/work/claim", 0, delay); got != delay {
		t.Fatalf("empty key must not jitter: %v", got)
	}
	a := jittered("w1", "/v1/work/claim", 0, delay)
	if b := jittered("w1", "/v1/work/claim", 0, delay); b != a {
		t.Fatalf("jitter not deterministic: %v vs %v", a, b)
	}
	if a < delay/2 || a >= delay {
		t.Fatalf("jitter %v outside [%v, %v)", a, delay/2, delay)
	}
	// Different workers (and attempts) should usually land apart — the
	// anti-thundering-herd property. With 16 samples in a 50ms window,
	// all-equal is astronomically unlikely unless the hash is broken.
	seen := map[time.Duration]bool{}
	for i := 0; i < 8; i++ {
		seen[jittered(fmt.Sprintf("w%d", i), "/v1/work/claim", 0, delay)] = true
		seen[jittered("w1", "/v1/work/claim", i, delay)] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter collapses every worker onto one delay")
	}
}
