package registry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/resultdb"
)

// getBody fetches a path from the test server.
func getBody(t *testing.T, base, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(data)
}

// TestFleetStatusAggregatesWorkers drives a coordinator through two
// workers' claims, heartbeats, and completions, and asserts the fleet
// view on GET /v1/status: per-worker progress as last reported, totals
// folding every worker, and the per-worker metric families on
// /v1/metrics.
func TestFleetStatusAggregatesWorkers(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	clock := newFakeClock()
	q := NewWorkQueue(cellsNamed("g", "k1", "k2", "k3", "k4"), QueueOptions{
		Study: "fig2", BatchSize: 2, Clock: clock.Now,
	})
	ts := httptest.NewServer(NewServer(store, ServerOptions{Work: q}))
	defer ts.Close()

	// w1 claims a batch and heartbeats progress mid-lease; w2 claims the
	// other batch and reports its summary only at completion (the
	// fast-batch path).
	l1, _, _, _ := q.Claim("w1")
	l2, _, _, _ := q.Claim("w2")
	if l1 == nil || l2 == nil {
		t.Fatal("claims not granted")
	}
	c, err := Dial(ts.URL, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hb := WorkerProgress{Cells: 1, Simulated: 1, VirtualSeconds: 100.5, CommSeconds: 25.25}
	if worker, ok, _ := q.Heartbeat(l1.ID, &hb); !ok || worker != "w1" {
		t.Fatalf("heartbeat: worker=%q ok=%v", worker, ok)
	}
	fin := WorkerProgress{Cells: 2, Failures: 1, Simulated: 1, Replayed: 1, VirtualSeconds: 50, CommSeconds: 10}
	if ok, err := c.CompleteWork(l2.ID, true, "one cell failed", &fin); !ok || err != nil {
		t.Fatalf("complete: ok=%v err=%v", ok, err)
	}

	code, ct, body := getBody(t, ts.URL, "/v1/status")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("GET /v1/status: HTTP %d, Content-Type %q", code, ct)
	}
	var fs FleetStatus
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatalf("undecodable status: %v\n%s", err, body)
	}
	if fs.Schema != resultdb.SchemaVersion() {
		t.Errorf("schema = %q, want %q", fs.Schema, resultdb.SchemaVersion())
	}
	if fs.Work == nil || fs.Work.Study != "fig2" || fs.Work.TotalCells != 4 {
		t.Fatalf("work = %+v", fs.Work)
	}
	if len(fs.Workers) != 2 || fs.Workers[0].Name != "w1" || fs.Workers[1].Name != "w2" {
		t.Fatalf("workers = %+v", fs.Workers)
	}
	if w1 := fs.Workers[0]; w1.Progress != hb || w1.Lease != l1.ID || w1.LeaseCells != 2 || w1.Batches != 1 {
		t.Errorf("w1 = %+v, want progress %+v on lease %s", w1, hb, l1.ID)
	}
	if w2 := fs.Workers[1]; w2.Progress != fin || w2.Lease != "" {
		t.Errorf("w2 = %+v, want settled lease with progress %+v", w2, fin)
	}
	wantTotals := WorkerProgress{Cells: 3, Failures: 1, Simulated: 2, Replayed: 1, VirtualSeconds: 150.5, CommSeconds: 35.25}
	if fs.Totals != wantTotals {
		t.Errorf("totals = %+v, want %+v", fs.Totals, wantTotals)
	}

	// The HTML page renders both workers without any scripts.
	code, ct, page := getBody(t, ts.URL, "/")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("GET /: HTTP %d, Content-Type %q", code, ct)
	}
	for _, want := range []string{"w1", "w2", "fig2"} {
		if !strings.Contains(page, want) {
			t.Errorf("status page lacks %q", want)
		}
	}
	if strings.Contains(page, "<script") {
		t.Error("status page embeds a script; it must stay zero-dependency static HTML")
	}

	// Per-worker gauges follow the last snapshot reported over the wire
	// (the direct q.Heartbeat above never reached the server, so w1's
	// gauges appear only after this wire heartbeat).
	l3, err := c.ClaimWork("w1")
	if err != nil || l3.Lease == nil {
		t.Fatalf("claim: lease=%+v err=%v", l3, err)
	}
	hb2 := WorkerProgress{Cells: 2, Simulated: 2, VirtualSeconds: 200, CommSeconds: 50}
	if alive, err := c.HeartbeatWork(l3.Lease.ID, &hb2); !alive || err != nil {
		t.Fatalf("heartbeat: alive=%v err=%v", alive, err)
	}
	text := scrape(t, ts.URL)
	for _, want := range []string{
		`registry_worker_cells{kind="simulated",worker="w1"} 2`,
		`registry_worker_failures{worker="w1"} 0`,
		`registry_worker_virtual_seconds{worker="w1"} 200`,
		`registry_worker_comm_seconds{worker="w1"} 50`,
		`registry_worker_cells{kind="replayed",worker="w2"} 1`,
		`registry_worker_failures{worker="w2"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape lacks %q:\n%s", want, text)
		}
	}
}

// TestStatusStaleWorkerHighlight: a worker silent for over three
// heartbeat intervals while the sweep is still running is flagged
// stale in the JSON snapshot and highlighted on the HTML page; once
// the sweep is done, silence is legitimate and nothing is flagged.
func TestStatusStaleWorkerHighlight(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	clock := newFakeClock()
	q := NewWorkQueue(cellsNamed("g", "k1", "k2"), QueueOptions{
		Study: "fig2", BatchSize: 1, LeaseTTL: 30 * time.Minute, Heartbeat: time.Minute, Clock: clock.Now,
	})
	ts := httptest.NewServer(NewServer(store, ServerOptions{Work: q}))
	defer ts.Close()

	// "stalled" finishes its batch, then goes silent for five heartbeat
	// intervals while "fresh" is still working.
	l1, _, _, _ := q.Claim("stalled")
	if l1 == nil {
		t.Fatal("claim not granted")
	}
	if _, ok, _ := q.Complete(l1.ID, false, nil); !ok {
		t.Fatal("complete rejected")
	}
	clock.Advance(5 * time.Minute)
	if l2, _, _, _ := q.Claim("fresh"); l2 == nil {
		t.Fatal("second claim not granted")
	}
	var fs FleetStatus
	_, _, body := getBody(t, ts.URL, "/v1/status")
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatal(err)
	}
	byName := map[string]WorkerStatus{}
	for _, w := range fs.Workers {
		byName[w.Name] = w
	}
	if !byName["stalled"].Stale || byName["fresh"].Stale {
		t.Fatalf("staleness misattributed: %+v", fs.Workers)
	}
	_, _, page := getBody(t, ts.URL, "/")
	if !strings.Contains(page, `class="stale"`) || !strings.Contains(page, "stalled?") {
		t.Fatalf("status page does not highlight the stale worker:\n%s", page)
	}

	// "fresh" drains the sweep; the old silence no longer means stall.
	st, workers, _ := q.Fleet()
	lease := ""
	for _, w := range workers {
		if w.Name == "fresh" {
			lease = w.Lease
		}
	}
	if _, ok, _ := q.Complete(lease, false, nil); !ok {
		t.Fatal("final complete rejected")
	}
	if st, _, _ = q.Fleet(); !st.Done {
		t.Fatalf("sweep not done: %+v", st)
	}
	_, _, body = getBody(t, ts.URL, "/v1/status")
	if strings.Contains(body, `"stale":true`) {
		t.Fatalf("worker flagged stale after the sweep finished:\n%s", body)
	}
	_, _, page = getBody(t, ts.URL, "/")
	if strings.Contains(page, "stalled?") {
		t.Fatalf("stale highlight survives a finished sweep:\n%s", page)
	}
}

// TestStatusWithoutQueue: a plain cache serves /v1/status with no work
// section and an HTML page that says so.
func TestStatusWithoutQueue(t *testing.T) {
	_, ts, _ := newRegistry(t)
	code, _, body := getBody(t, ts.URL, "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/status: HTTP %d", code)
	}
	var fs FleetStatus
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Work != nil || len(fs.Workers) != 0 {
		t.Fatalf("cache-only status claims sweep state: %+v", fs)
	}
	code, _, page := getBody(t, ts.URL, "/")
	if code != http.StatusOK || !strings.Contains(page, "not coordinating a sweep") {
		t.Fatalf("GET /: HTTP %d\n%s", code, page)
	}
}
