// Package registry turns the result store into a network service: an
// HTTP server exposing a resultdb.DirStore by content address, an HTTP
// client implementing resultdb.Store, and a tiered store layering a
// local directory cache in front of a remote registry. Together they
// let N sweep workers on machines with no shared filesystem populate
// one result cache and let a merge consumer assemble figures from it,
// byte-identical to a local run.
//
// # Wire protocol
//
// The registry speaks content-addressed GET/PUT by fingerprint, the
// same shape OCI-style registries use for blobs:
//
//	GET  /v1/schema          → 200 {"schema": "<stamp>"}
//	GET  /v1/manifest        → 200 {"schema": "<stamp>", "keys": ["<fp>", ...]}
//	GET  /v1/cells/<fp>      → 200 <record> | 404 | 409
//	PUT  /v1/cells/<fp>      → 204 | 400 | 409
//
// A record is the store's schema-stamped cell JSON:
//
//	{"schema": "<stamp>", "key": "<fp>", "result": {...}}         a success
//	{"schema": "<stamp>", "key": "<fp>", "result": {}, "error": "msg"}  a recorded failure
//
// Error responses carry a typed JSON body:
//
//	{"code": "schema-mismatch", "error": "...", "server_schema": "<stamp>"}
//	{"code": "not-found",       "error": "..."}
//	{"code": "bad-record",      "error": "..."}
//
// # Schema handshake
//
// Records are meaningful only under one schema stamp
// (resultdb.SchemaVersion: record-format generation + model-constant
// checksum). The client fetches GET /v1/schema at dial time and
// refuses to talk to a server built from a different model — a typed
// *SchemaMismatchError, not silently stale records. Every subsequent
// request repeats the client's stamp in the Registry-Schema header, so
// a server restarted under a new model rejects in-flight old clients
// with 409 instead of serving records they would misread.
package registry

import (
	"fmt"

	"repro/internal/core"
)

// headerSchema carries the client's schema stamp on every request.
const headerSchema = "Registry-Schema"

// Fleet-trace propagation headers. The client stamps every request with
// its journal's process identity (trace) and a per-attempt span id; the
// server echoes both into its access log and journal, and the lease
// manager records the claiming span as a lease's origin. Merged
// journals (hpcstudy fleetlog) join on these ids to reconstruct one
// cross-process timeline.
const (
	headerTrace = "X-Hpc-Trace"
	headerSpan  = "X-Hpc-Span"
)

// Typed error codes in wire error bodies.
const (
	codeSchemaMismatch = "schema-mismatch"
	codeNotFound       = "not-found"
	codeBadRecord      = "bad-record"
	codeTooLarge       = "record-too-large"
	codeNoWork         = "no-coordinator"
	codeLeaseGone      = "lease-gone"
)

// wireRecord is one cell on the wire — the same schema-stamped shape
// the directory store persists, so a registry round-trip is
// bit-faithful to a local commit.
type wireRecord struct {
	Schema string           `json:"schema"`
	Key    string           `json:"key"`
	Result core.SavedResult `json:"result"`
	Error  string           `json:"error,omitempty"`
}

// wireError is the typed JSON body of every non-2xx response.
type wireError struct {
	Code         string `json:"code"`
	Error        string `json:"error"`
	ServerSchema string `json:"server_schema,omitempty"`
}

// wireSchema answers GET /v1/schema.
type wireSchema struct {
	Schema string `json:"schema"`
}

// wireManifest answers GET /v1/manifest.
type wireManifest struct {
	Schema string   `json:"schema"`
	Keys   []string `json:"keys"`
}

// SchemaMismatchError reports a registry whose schema stamp differs
// from this binary's: the two were built from different model
// constants (or record formats), so exchanging records would replay
// numbers from the wrong model. The fix is rebuilding both sides from
// the same source, never ignoring the error.
type SchemaMismatchError struct {
	// Client is this binary's stamp; Server the registry's.
	Client, Server string
}

// Error names both stamps so an operator can see which side is stale.
func (e *SchemaMismatchError) Error() string {
	return fmt.Sprintf("registry: schema mismatch: client %s, server %s (rebuild both sides from the same model)",
		e.Client, e.Server)
}
