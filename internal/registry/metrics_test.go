package registry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resultdb"
)

// scrape fetches /v1/metrics and returns the exposition text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMetricsEndpoint drives the full request surface and asserts the
// scrape reflects it: request counters by route/status, store op
// counters, and latency histograms.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, c := newRegistry(t)

	if err := c.Put(key(1), sample(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Lookup(key(1)); !ok || err != nil {
		t.Fatalf("lookup after put: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.Lookup(key(2)); ok || err != nil {
		t.Fatalf("lookup of absent key: ok=%v err=%v", ok, err)
	}
	if err := c.PutError(key(3), "boom"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Lookup(key(3)); !ok || err != nil {
		t.Fatalf("lookup of failure record: ok=%v err=%v", ok, err)
	}

	text := scrape(t, ts.URL)
	for _, want := range []string{
		`registry_store_ops_total{op="hit"} 1`,
		`registry_store_ops_total{op="miss"} 1`,
		`registry_store_ops_total{op="neg_hit"} 1`,
		`registry_store_ops_total{op="put"} 1`,
		`registry_store_ops_total{op="put_error"} 1`,
		`registry_requests_total{method="GET",route="cells",status="200"} 2`,
		`registry_requests_total{method="GET",route="cells",status="404"} 1`,
		`registry_requests_total{method="PUT",route="cells",status="204"} 2`,
		`registry_requests_total{method="GET",route="schema",status="200"} 1`,
		`# TYPE registry_request_seconds histogram`,
		`registry_request_seconds_bucket{route="cells",le="+Inf"} 5`,
		`registry_inflight_puts 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape lacks %q:\n%s", want, text)
		}
	}

	// The scrape counts itself only after serving: a second scrape sees
	// exactly one prior metrics request.
	text = scrape(t, ts.URL)
	if want := `registry_requests_total{method="GET",route="metrics",status="200"} 1`; !strings.Contains(text, want) {
		t.Fatalf("scrape lacks %q:\n%s", want, text)
	}
}

// TestAccessLog: every request produces one log line carrying a
// request ID, method, path, and status.
func TestAccessLog(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var mu sync.Mutex
	var lines []string
	srv := NewServer(store, ServerOptions{Logf: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok, err := c.Lookup(key(9)); ok || err != nil {
		t.Fatalf("lookup: ok=%v err=%v", ok, err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 { // schema handshake + lookup
		t.Fatalf("access log has %d lines, want 2: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "req 1: GET /v1/schema") || !strings.Contains(lines[0], ": 200") {
		t.Fatalf("first access line %q", lines[0])
	}
	if !strings.Contains(lines[1], "req 2: GET /v1/cells/"+key(9)) || !strings.Contains(lines[1], ": 404") {
		t.Fatalf("second access line %q", lines[1])
	}
}

// TestClientRetryLog: a transient failure that a retry absorbs still
// surfaces through ClientOptions.Logf (and the Retries counter).
func TestClientRetryLog(t *testing.T) {
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	real := NewServer(store, ServerOptions{})
	var mu sync.Mutex
	failures := 1
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fail := failures > 0
		if fail {
			failures--
		}
		mu.Unlock()
		if fail {
			http.Error(w, "wobble", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	var logMu sync.Mutex
	var logged []string
	c, err := Dial(flaky.URL, ClientOptions{
		Retries: 3,
		Backoff: time.Millisecond,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err) // the failure burns into the handshake's retries
	}
	defer c.Close()
	if got := c.Stats().Retries; got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if len(logged) != 1 {
		t.Fatalf("retry log has %d lines, want 1: %v", len(logged), logged)
	}
	line := logged[0]
	if !strings.Contains(line, "GET") || !strings.Contains(line, "/v1/schema") ||
		!strings.Contains(line, "HTTP 503") || !strings.Contains(line, "retry 1 of 3") {
		t.Fatalf("retry line %q lacks method/path/cause/attempt", line)
	}
}
