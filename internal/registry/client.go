package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/resultdb"
	"repro/internal/telemetry"
)

// ClientOptions tunes a registry client.
type ClientOptions struct {
	// HTTPClient overrides the transport (httptest servers, custom
	// timeouts). Default: a client with a 30s request timeout.
	HTTPClient *http.Client
	// Retries is the number of extra attempts after the first on
	// transient failures (connection errors, 5xx, 429, 408).
	// Default 3; negative disables retrying.
	Retries int
	// Backoff is the delay before the first retry, doubling each
	// attempt. Default 100ms.
	Backoff time.Duration
	// Logf, when non-nil, receives one line per retried request —
	// transient errors are otherwise invisible when the retry
	// eventually succeeds, leaving a flaky link undiagnosed. The
	// retry count is also always available in Stats().Retries.
	Logf func(format string, args ...any)
	// JitterKey, when non-empty, decorrelates this client's retry
	// schedule from its peers': each delay is scaled into
	// [delay/2, delay) by a hash of (key, path, attempt). A fleet of
	// workers knocked loose by one coordinator restart then returns
	// spread out instead of as a thundering herd — deterministically,
	// so a given worker's schedule is reproducible. Empty keeps the
	// exact exponential schedule.
	JitterKey string
	// Journal, when non-nil, receives one wall-clock span per request
	// attempt (and per backoff wait), and every request carries the
	// journal's process identity and the attempt's span id in the
	// X-Hpc-Trace/X-Hpc-Span headers — the correlation key that lets
	// hpcstudy fleetlog join this client's journal with the server's.
	Journal *telemetry.FleetJournal
}

// Client speaks the wire protocol and implements resultdb.Store, so a
// sweep or merge pointed at a registry URL behaves exactly as one
// pointed at a local directory — including the damage semantics: an
// undecodable record costs one recomputation, never a failed sweep.
// Transport failures, by contrast, surface as errors after retries;
// a merge must distinguish "the registry is down" from "the cell was
// never computed".
type Client struct {
	base      string
	hc        *http.Client
	retries   int
	backoff   time.Duration
	jitterKey string
	logf      func(format string, args ...any)
	journal   *telemetry.FleetJournal

	lookups, hits, negHits, puts, putErrors, retried, prefetchSkips atomic.Int64

	// absentMu guards absent: keys a manifest prefetch showed the
	// registry lacked. Lookup consumes a mark (answers one miss
	// locally, then returns to the wire), so a stale hint costs at
	// most one recomputation — the same race window a direct GET has.
	absentMu sync.Mutex
	absent   map[string]bool
}

var _ resultdb.Store = (*Client)(nil)
var _ resultdb.Prefetcher = (*Client)(nil)

// Dial validates the base URL and performs the schema handshake:
// one GET /v1/schema, retried like any transient failure. A server
// built from different model constants (or record format) fails with
// *SchemaMismatchError before any record is exchanged.
func Dial(baseURL string, opt ClientOptions) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("registry: url %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("registry: url %q: need http(s)://host[:port]", baseURL)
	}
	hc := opt.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	retries := opt.Retries
	if retries == 0 {
		retries = 3
	} else if retries < 0 {
		retries = 0
	}
	backoff := opt.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	c := &Client{
		base:      strings.TrimRight(u.String(), "/"),
		hc:        hc,
		retries:   retries,
		backoff:   backoff,
		jitterKey: opt.JitterKey,
		logf:      opt.Logf,
		journal:   opt.Journal,
	}
	status, data, err := c.do(http.MethodGet, "/v1/schema", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("registry: %s is not a registry (GET /v1/schema: HTTP %d)", c.base, status)
	}
	var ws wireSchema
	if err := json.Unmarshal(data, &ws); err != nil {
		return nil, fmt.Errorf("registry: %s is not a registry (GET /v1/schema: %v)", c.base, err)
	}
	if ws.Schema != resultdb.SchemaVersion() {
		return nil, &SchemaMismatchError{Client: resultdb.SchemaVersion(), Server: ws.Schema}
	}
	return c, nil
}

// transientStatus reports statuses worth retrying: the server (or a
// proxy) may recover; 4xx contract errors will not.
func transientStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests || status == http.StatusRequestTimeout
}

// do performs one request with retry-with-backoff on transport errors
// and transient statuses, returning the final status and fully-read
// body. The request body is rebuilt from bytes each attempt, so PUTs
// retry safely (commits are idempotent: content is a pure function of
// the key).
func (c *Client) do(method, path string, body []byte) (int, []byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return 0, nil, fmt.Errorf("registry: %w", err)
		}
		req.Header.Set(headerSchema, resultdb.SchemaVersion())
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		span := c.journal.NewSpan()
		if span != "" {
			req.Header.Set(headerTrace, c.journal.Proc())
			req.Header.Set(headerSpan, span)
		}
		spanStart := c.journal.Now()
		resp, err := c.hc.Do(req)
		if err == nil {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRecordBytes+1))
			resp.Body.Close()
			if rerr == nil && !transientStatus(resp.StatusCode) {
				c.journalAttempt(method, path, span, spanStart, wireOutcome(resp.StatusCode, data), "")
				return resp.StatusCode, data, nil
			}
			if rerr != nil {
				lastErr = fmt.Errorf("reading response: %w", rerr)
			} else {
				lastErr = statusError(resp.StatusCode, data)
			}
		} else {
			lastErr = err
		}
		c.journalAttempt(method, path, span, spanStart, "retry", lastErr.Error())
		if attempt >= c.retries {
			return 0, nil, fmt.Errorf("registry: %s %s%s: %w (%d attempts)",
				method, c.base, path, lastErr, attempt+1)
		}
		c.retried.Add(1)
		delay := c.backoff << attempt
		if delay > maxBackoff || delay <= 0 { // <= 0: shifted past overflow
			delay = maxBackoff
		}
		delay = jittered(c.jitterKey, path, attempt, delay)
		if c.logf != nil {
			c.logf("registry: %s %s%s: %v; retry %d of %d in %v",
				method, c.base, path, lastErr, attempt+1, c.retries, delay)
		}
		backoffStart := c.journal.Now()
		//lint:allow wallclock -- retry backoff is transport pacing; cell contents are unaffected by when a request lands
		time.Sleep(delay)
		c.journal.Emit(telemetry.FleetEvent{
			Kind: telemetry.FleetSpan, Name: "backoff", Parent: span,
			StartNs: backoffStart, EndNs: c.journal.Now(),
			Outcome: "ok", Label: wireOpName(method, path),
		})
	}
}

// journalAttempt records one request attempt as a wire span.
func (c *Client) journalAttempt(method, path, span string, start int64, outcome, detail string) {
	if span == "" {
		return
	}
	c.journal.Emit(telemetry.FleetEvent{
		Kind: telemetry.FleetSpan, Name: wireOpName(method, path), Span: span,
		StartNs: start, EndNs: c.journal.Now(),
		Outcome: outcome, Label: method + " " + path, Detail: detail,
	})
}

// wireOpName names a request for journals: the operation, not the URL,
// so fleetlog attribution buckets GETs of different cells together.
func wireOpName(method, path string) string {
	switch {
	case path == "/v1/schema":
		return "schema"
	case path == "/v1/manifest":
		return "manifest"
	case path == "/v1/work/claim":
		return "claim"
	case path == "/v1/work/heartbeat":
		return "heartbeat"
	case path == "/v1/work/complete":
		return "complete"
	case path == "/v1/work":
		return "work-status"
	case strings.HasPrefix(path, "/v1/cells/") && method == http.MethodPut:
		return "store-put"
	case strings.HasPrefix(path, "/v1/cells/"):
		return "store-get"
	}
	return method + " " + path
}

// wireOutcome types a settled (non-retried) response for journals: the
// wire error code when the server sent one, else ok/miss/error by
// status class.
func wireOutcome(status int, data []byte) string {
	if status >= 200 && status < 300 {
		return "ok"
	}
	var we wireError
	if json.Unmarshal(data, &we) == nil && we.Code != "" && we.Code != codeNotFound {
		return we.Code
	}
	if status == http.StatusNotFound {
		return "miss"
	}
	return "error"
}

// statusError describes a failed response for retry logs and final
// errors. When the body carries a typed wire error, its code rides
// along ("HTTP 503 (lease-gone)"), so an operator reading a retry line
// sees what the server actually objected to, not just the status.
func statusError(status int, body []byte) error {
	var we wireError
	if json.Unmarshal(body, &we) == nil && we.Code != "" {
		return fmt.Errorf("HTTP %d (%s)", status, we.Code)
	}
	return fmt.Errorf("HTTP %d", status)
}

// jittered scales a backoff delay into [delay/2, delay) by a hash of
// (key, path, attempt): deterministic per worker, decorrelated across
// workers, so simultaneous retries fan out instead of herding. An
// empty key returns delay unchanged.
func jittered(key, path string, attempt int, delay time.Duration) time.Duration {
	if key == "" || delay <= 0 {
		return delay
	}
	// fnv64a, inlined: the same spread-by-hash trick resultdb uses for
	// shard ownership.
	h := uint64(14695981039346656037)
	for _, s := range []string{key, path} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	h ^= uint64(attempt)
	h *= 1099511628211
	// Top 53 bits → uniform fraction in [0, 1).
	frac := float64(h>>11) / float64(1<<53)
	return delay/2 + time.Duration(frac*float64(delay/2))
}

// maxBackoff caps the doubling retry delay so a generous retry budget
// waits steadily instead of minutes (or, past an int64 overflow, not
// at all).
const maxBackoff = 5 * time.Second

// mismatchFrom decodes a 409 body into the typed error.
func mismatchFrom(data []byte) error {
	var we wireError
	_ = json.Unmarshal(data, &we)
	return &SchemaMismatchError{Client: resultdb.SchemaVersion(), Server: we.ServerSchema}
}

// Get returns the saved result for a key, success records only; any
// failure to produce one — including transport errors — reads as a
// miss.
func (c *Client) Get(key string) (core.SavedResult, bool) {
	return resultdb.GetFrom(c, key)
}

// Prefetch fetches the registry manifest once and marks every
// requested key the manifest lacks, so the next Lookup of each one is
// answered as a miss without a per-cell round trip. One GET replaces
// up to len(keys) GETs — the win for a sharded populate sweep, where
// most keys belong to shards that have not committed yet. Best-effort:
// a failed manifest fetch marks nothing and every lookup stays on the
// wire path.
func (c *Client) Prefetch(keys []string) {
	have := c.Keys()
	if have == nil {
		return
	}
	set := make(map[string]bool, len(have))
	for _, k := range have {
		set[k] = true
	}
	c.absentMu.Lock()
	defer c.absentMu.Unlock()
	if c.absent == nil {
		c.absent = make(map[string]bool)
	}
	for _, k := range keys {
		if set[k] {
			// The fresh manifest has it: drop any stale mark left by an
			// earlier prefetch (another shard committed the cell since),
			// so a long-lived client never answers a present cell as a
			// miss from old news.
			delete(c.absent, k)
		} else {
			c.absent[k] = true
		}
	}
}

// skipAbsent consumes a prefetch mark for key, reporting whether the
// lookup can be answered as a miss without touching the wire.
func (c *Client) skipAbsent(key string) bool {
	c.absentMu.Lock()
	defer c.absentMu.Unlock()
	if !c.absent[key] {
		return false
	}
	delete(c.absent, key)
	c.prefetchSkips.Add(1)
	return true
}

// clearAbsent drops a prefetch mark once key is known to exist (this
// client just committed it).
func (c *Client) clearAbsent(key string) {
	c.absentMu.Lock()
	delete(c.absent, key)
	c.absentMu.Unlock()
}

// Lookup fetches a record by fingerprint. Misses and damaged records
// return ok=false with a nil error (one recomputation); transport
// failures and schema conflicts return the error.
func (c *Client) Lookup(key string) (resultdb.Entry, bool, error) {
	c.lookups.Add(1)
	if c.skipAbsent(key) {
		return resultdb.Entry{}, false, nil
	}
	status, data, err := c.do(http.MethodGet, "/v1/cells/"+url.PathEscape(key), nil)
	if err != nil {
		return resultdb.Entry{}, false, err
	}
	switch status {
	case http.StatusOK:
		var rec wireRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return resultdb.Entry{}, false, nil // damaged on the wire: a miss, like a corrupt file
		}
		if rec.Key != key || rec.Schema != resultdb.SchemaVersion() {
			return resultdb.Entry{}, false, nil
		}
		if rec.Error != "" {
			c.negHits.Add(1)
		} else {
			c.hits.Add(1)
		}
		return resultdb.Entry{Result: rec.Result, Err: rec.Error}, true, nil
	case http.StatusNotFound:
		return resultdb.Entry{}, false, nil
	case http.StatusConflict:
		return resultdb.Entry{}, false, mismatchFrom(data)
	default:
		return resultdb.Entry{}, false, fmt.Errorf("registry: GET %s: HTTP %d", key, status)
	}
}

// Put commits a result to the registry.
func (c *Client) Put(key string, res core.SavedResult) error {
	if err := c.send(key, wireRecord{Schema: resultdb.SchemaVersion(), Key: key, Result: res}); err != nil {
		return err
	}
	c.clearAbsent(key)
	c.puts.Add(1)
	return nil
}

// PutError commits a failure record; msg must be non-empty, exactly
// as on the directory store.
func (c *Client) PutError(key, msg string) error {
	if msg == "" {
		return fmt.Errorf("registry: empty failure message for key %s", key)
	}
	if err := c.send(key, wireRecord{Schema: resultdb.SchemaVersion(), Key: key, Error: msg}); err != nil {
		return err
	}
	c.clearAbsent(key)
	c.putErrors.Add(1)
	return nil
}

func (c *Client) send(key string, rec wireRecord) error {
	if !resultdb.ValidKey(key) {
		return fmt.Errorf("registry: invalid key %q (want a 64-hex fingerprint)", key)
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	status, data, err := c.do(http.MethodPut, "/v1/cells/"+url.PathEscape(key), body)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusNoContent, http.StatusOK, http.StatusCreated:
		return nil
	case http.StatusConflict:
		return mismatchFrom(data)
	default:
		var we wireError
		if json.Unmarshal(data, &we) == nil && we.Error != "" {
			return fmt.Errorf("registry: PUT %s: HTTP %d: %s", key, status, we.Error)
		}
		return fmt.Errorf("registry: PUT %s: HTTP %d", key, status)
	}
}

// Keys fetches the registry manifest. Advisory, like every Keys: on
// transport failure it returns nil rather than guessing.
func (c *Client) Keys() []string {
	status, data, err := c.do(http.MethodGet, "/v1/manifest", nil)
	if err != nil || status != http.StatusOK {
		return nil
	}
	var m wireManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil
	}
	sort.Strings(m.Keys)
	return m.Keys
}

// Stats snapshots the client's traffic counters, retries and
// prefetch-avoided round trips included.
func (c *Client) Stats() resultdb.StoreStats {
	return resultdb.StoreStats{
		Lookups:       c.lookups.Load(),
		Hits:          c.hits.Load(),
		NegHits:       c.negHits.Load(),
		Puts:          c.puts.Load(),
		PutErrors:     c.putErrors.Load(),
		Retries:       c.retried.Load(),
		PrefetchSkips: c.prefetchSkips.Load(),
	}
}

// Close releases idle connections. The registry itself keeps running.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// URL returns the registry base URL.
func (c *Client) URL() string { return c.base }
