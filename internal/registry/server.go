package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/resultdb"
	"repro/internal/telemetry"
)

// maxRecordBytes bounds a PUT body (and, client-side, a response) at
// 32 MiB — generous headroom over the largest paper cell (fig3's
// 256-node FSI point serialises to well under a megabyte), while
// still capping what one request can make the server buffer.
const maxRecordBytes = 32 << 20

// ServerOptions tunes a registry server.
type ServerOptions struct {
	// GCInterval, when positive, runs a GC pass over the backing store
	// every interval with the GC policy.
	GCInterval time.Duration
	// GC is the eviction policy for periodic passes. The zero policy
	// makes them no-ops.
	GC resultdb.GCPolicy
	// Logf, when non-nil, receives one line per lifecycle event
	// (startup, GC passes, shutdown).
	Logf func(format string, args ...any)
	// ShutdownGrace bounds how long Serve waits for in-flight requests
	// after its context is cancelled. Default 30s. In-flight PUTs
	// commit within the grace window; the listener closes immediately,
	// so no new work is admitted.
	ShutdownGrace time.Duration
	// Work, when non-nil, turns the server into a sweep coordinator:
	// the /v1/work lease API hands out this queue's batches. Nil
	// servers answer work requests with a typed 404.
	Work *WorkQueue
	// Journal, when non-nil, records one wall-clock "serve" span per
	// request, linked to the client attempt that caused it via the
	// propagated X-Hpc-Trace/X-Hpc-Span headers. Lease lifecycle events
	// are journaled by the WorkQueue's own Journal option.
	Journal *telemetry.FleetJournal
	// ReadTimeout/WriteTimeout/IdleTimeout bound each connection so a
	// stalled peer cannot pin server resources forever. Defaults: 2m
	// read, 2m write, 5m idle. The read/write bounds comfortably cover
	// the largest permitted record at LAN throughput; heartbeats are
	// tiny and re-establish connections freely.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
}

// Server exposes one resultdb.DirStore over the wire protocol. It is
// an http.Handler, so tests mount it on httptest and production wraps
// it in Serve for lifecycle management.
//
// Every request is observed: counted by route/method/status, timed
// into a latency histogram, and access-logged with a request ID
// through Logf. GET /v1/metrics exposes the whole registry in
// Prometheus text format.
type Server struct {
	store   *resultdb.DirStore
	opt     ServerOptions
	mux     *http.ServeMux
	metrics *telemetry.Registry
	reqID   atomic.Int64
}

// requestBuckets are the latency histogram bounds (seconds): local
// stores answer in microseconds, a loaded registry with a slow disk in
// tens of milliseconds.
var requestBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// NewServer wraps a directory store in the wire protocol.
func NewServer(store *resultdb.DirStore, opt ServerOptions) *Server {
	if opt.ShutdownGrace <= 0 {
		opt.ShutdownGrace = 30 * time.Second
	}
	if opt.ReadTimeout <= 0 {
		opt.ReadTimeout = 2 * time.Minute
	}
	if opt.WriteTimeout <= 0 {
		opt.WriteTimeout = 2 * time.Minute
	}
	if opt.IdleTimeout <= 0 {
		opt.IdleTimeout = 5 * time.Minute
	}
	s := &Server{store: store, opt: opt, mux: http.NewServeMux(), metrics: telemetry.NewRegistry()}
	opt.Journal.CountDropsIn(s.metrics)
	s.mux.HandleFunc("GET /v1/schema", s.handleSchema)
	s.mux.HandleFunc("GET /v1/manifest", s.handleManifest)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /{$}", s.handleStatusPage)
	s.mux.HandleFunc("GET /v1/cells/{key}", s.handleGet)
	s.mux.HandleFunc("PUT /v1/cells/{key}", s.handlePut)
	s.mux.HandleFunc("GET /v1/work", s.handleWorkStatus)
	s.mux.HandleFunc("POST /v1/work/claim", s.handleWorkClaim)
	s.mux.HandleFunc("POST /v1/work/heartbeat", s.handleWorkHeartbeat)
	s.mux.HandleFunc("POST /v1/work/complete", s.handleWorkComplete)
	return s
}

// Metrics returns the server's metrics registry (tests and embedders
// can read or extend it).
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// routeOf maps a request path to its metric label, so cell keys never
// explode the label space.
func routeOf(path string) string {
	switch {
	case path == "/v1/schema":
		return "schema"
	case path == "/v1/manifest":
		return "manifest"
	case path == "/v1/metrics":
		return "metrics"
	case path == "/v1/status" || path == "/":
		return "status"
	case strings.HasPrefix(path, "/v1/cells/"):
		return "cells"
	case path == "/v1/work" || strings.HasPrefix(path, "/v1/work/"):
		return "work"
	default:
		return "other"
	}
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// ServeHTTP implements http.Handler: the observability middleware
// around the route mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := s.reqID.Add(1)
	route := routeOf(r.URL.Path)
	if r.Method == http.MethodPut && route == "cells" {
		inflight := s.metrics.Gauge("registry_inflight_puts", "PUT requests currently being processed.")
		inflight.Add(1)
		defer inflight.Add(-1)
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	trace, parent := r.Header.Get(headerTrace), r.Header.Get(headerSpan)
	spanStart := s.opt.Journal.Now()
	//lint:allow wallclock -- request latency is operator telemetry; it never reaches records or figures
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	//lint:allow wallclock -- request latency is operator telemetry; it never reaches records or figures
	elapsed := time.Since(start)
	s.metrics.Counter("registry_requests_total", "Requests by route, method, and status.",
		telemetry.L("route", route), telemetry.L("method", r.Method),
		telemetry.L("status", strconv.Itoa(sw.status))).Inc()
	s.metrics.Histogram("registry_request_seconds", "Request latency by route.",
		requestBuckets, telemetry.L("route", route)).Observe(elapsed.Seconds())
	outcome := "ok"
	if sw.status >= 400 {
		outcome = "error"
	}
	s.opt.Journal.Emit(telemetry.FleetEvent{
		Kind: telemetry.FleetSpan, Name: "serve", Span: s.opt.Journal.NewSpan(),
		Parent: parent, Trace: trace,
		StartNs: spanStart, EndNs: s.opt.Journal.Now(),
		Outcome: outcome, Label: route,
		Detail: fmt.Sprintf("%s %s: %d", r.Method, r.URL.Path, sw.status),
	})
	if trace != "" || parent != "" {
		s.logf("registry: req %d: %s %s from %s: %d (%v) [%s/%s]",
			id, r.Method, r.URL.Path, r.RemoteAddr, sw.status, elapsed.Round(time.Microsecond), trace, parent)
		return
	}
	s.logf("registry: req %d: %s %s from %s: %d (%v)",
		id, r.Method, r.URL.Path, r.RemoteAddr, sw.status, elapsed.Round(time.Microsecond))
}

// storeOp counts one backing-store operation on the request path.
func (s *Server) storeOp(op string) {
	s.metrics.Counter("registry_store_ops_total", "Backing-store operations by kind.",
		telemetry.L("op", op)).Inc()
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// writeJSON sends one JSON body with a status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// rejectSchema enforces the handshake on stamped requests: a client
// that advertises a different schema gets a typed 409 instead of
// records it would misread. Requests without the header (curl, health
// checks) pass — the handshake protects clients, the stamped records
// protect the store.
func (s *Server) rejectSchema(w http.ResponseWriter, r *http.Request) bool {
	got := r.Header.Get(headerSchema)
	if got == "" || got == resultdb.SchemaVersion() {
		return false
	}
	writeJSON(w, http.StatusConflict, wireError{
		Code:         codeSchemaMismatch,
		Error:        fmt.Sprintf("client schema %s does not match server", got),
		ServerSchema: resultdb.SchemaVersion(),
	})
	return true
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wireSchema{Schema: resultdb.SchemaVersion()})
}

// handleMetrics renders the metrics registry in Prometheus text
// exposition format. The scrape itself is counted by the middleware
// after it is served, so the numbers a scrape reports never include
// that scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WriteProm(w); err != nil {
		s.logf("registry: metrics write failed: %v", err)
	}
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	if s.rejectSchema(w, r) {
		return
	}
	keys := s.store.Keys()
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, wireManifest{Schema: resultdb.SchemaVersion(), Keys: keys})
}

// rejectKey refuses any cell path that is not a well-formed
// fingerprint. The store layer re-checks, but rejecting here keeps a
// percent-encoded "../" from ever reaching a filesystem join and
// gives the caller a typed 400 instead of a silent miss.
func rejectKey(w http.ResponseWriter, key string) bool {
	if resultdb.ValidKey(key) {
		return false
	}
	writeJSON(w, http.StatusBadRequest, wireError{
		Code:  codeBadRecord,
		Error: fmt.Sprintf("invalid cell key %q (want a 64-hex fingerprint)", key),
	})
	return true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if s.rejectSchema(w, r) {
		return
	}
	key := r.PathValue("key")
	if rejectKey(w, key) {
		return
	}
	ent, ok, err := s.store.Lookup(key)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, wireError{Code: "internal", Error: err.Error()})
		return
	}
	if !ok {
		s.storeOp("miss")
		writeJSON(w, http.StatusNotFound, wireError{Code: codeNotFound, Error: "no record for " + key})
		return
	}
	if ent.Err != "" {
		s.storeOp("neg_hit")
	} else {
		s.storeOp("hit")
	}
	writeJSON(w, http.StatusOK, wireRecord{
		Schema: resultdb.SchemaVersion(),
		Key:    key,
		Result: ent.Result,
		Error:  ent.Err,
	})
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	if s.rejectSchema(w, r) {
		return
	}
	key := r.PathValue("key")
	if rejectKey(w, key) {
		return
	}
	// MaxBytesReader, unlike a bare LimitReader, also stops the
	// connection from absorbing the rest of an oversized body and asks
	// the peer to close — one malicious or misbuilt record cannot make
	// the server buffer without bound.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRecordBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, wireError{
				Code:  codeTooLarge,
				Error: fmt.Sprintf("record exceeds the %d-byte limit", maxRecordBytes),
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, wireError{Code: codeBadRecord, Error: err.Error()})
		return
	}
	var rec wireRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Code: codeBadRecord, Error: "undecodable record: " + err.Error()})
		return
	}
	if rec.Key != key {
		writeJSON(w, http.StatusBadRequest, wireError{
			Code:  codeBadRecord,
			Error: fmt.Sprintf("record key %s does not match path %s", rec.Key, key),
		})
		return
	}
	if rec.Schema != resultdb.SchemaVersion() {
		writeJSON(w, http.StatusConflict, wireError{
			Code:         codeSchemaMismatch,
			Error:        fmt.Sprintf("record schema %s does not match server", rec.Schema),
			ServerSchema: resultdb.SchemaVersion(),
		})
		return
	}
	if rec.Error != "" {
		err = s.store.PutError(key, rec.Error)
	} else {
		err = s.store.Put(key, rec.Result)
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, wireError{Code: "internal", Error: err.Error()})
		return
	}
	if rec.Error != "" {
		s.storeOp("put_error")
	} else {
		s.storeOp("put")
	}
	w.WriteHeader(http.StatusNoContent)
}

// httpServer builds the production http.Server around the handler:
// connection deadlines keep a stalled or malicious peer from pinning
// resources forever. Factored out so tests can assert the policy
// without binding a socket.
func (s *Server) httpServer() *http.Server {
	return &http.Server{
		Handler:           s,
		ReadTimeout:       s.opt.ReadTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      s.opt.WriteTimeout,
		IdleTimeout:       s.opt.IdleTimeout,
	}
}

// Serve runs the registry on ln until ctx is cancelled, then shuts
// down gracefully: the listener closes, in-flight requests — PUT
// commits included — get ShutdownGrace to finish, and only then do
// stragglers get cut. Periodic GC, when configured, runs on the same
// lifecycle. Returns nil on a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Every helper goroutine hangs off this derived context, which is
	// also cancelled when srv.Serve fails on its own (fd exhaustion, a
	// closed listener) — a fatal serve error must tear the GC loop
	// down too, not wedge waiting for a signal that already happened.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	srv := s.httpServer()

	gcDone := make(chan struct{})
	if s.opt.GCInterval > 0 && s.opt.GC.Bounded() {
		go func() {
			defer close(gcDone)
			//lint:allow wallclock -- GC cadence is server lifecycle, outside any simulated result
			t := time.NewTicker(s.opt.GCInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case now := <-t.C:
					rep, err := s.store.GC(now, s.opt.GC)
					if err != nil {
						s.metrics.Counter("registry_gc_runs_total", "GC passes by outcome.",
							telemetry.L("outcome", "error")).Inc()
						s.logf("registry: gc failed: %v", err)
						continue
					}
					s.metrics.Counter("registry_gc_runs_total", "GC passes by outcome.",
						telemetry.L("outcome", "ok")).Inc()
					s.metrics.Counter("registry_gc_evicted_total", "Records evicted by GC.").Add(float64(rep.Evicted))
					s.metrics.Counter("registry_gc_evicted_bytes_total", "Bytes evicted by GC.").Add(float64(rep.EvictedBytes))
					if rep.Evicted > 0 {
						s.logf("registry: %s", rep)
					}
				}
			}
		}()
	} else {
		close(gcDone)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.logf("registry: shutting down (committing in-flight requests)")
		grace, cancel := context.WithTimeout(context.Background(), s.opt.ShutdownGrace)
		defer cancel()
		shutdownErr <- srv.Shutdown(grace)
	}()

	err := srv.Serve(ln)
	graceful := errors.Is(err, http.ErrServerClosed)
	cancel() // release the helpers before waiting on them
	if graceful {
		err = <-shutdownErr // graceful path: report Shutdown's verdict instead
	}
	<-gcDone
	return err
}

// ListenAndServe binds addr and calls Serve. The bound address is
// reported through Logf before serving, so operators (and the CI
// smoke test) can wait for readiness.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	s.logf("registry: listening on %s (schema %s, store %s)", ln.Addr(), resultdb.SchemaVersion(), s.store.Dir())
	return s.Serve(ctx, ln)
}
