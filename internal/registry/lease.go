package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// This file is the sweep coordinator's control plane: a WorkQueue of
// leased cell batches behind the /v1/work endpoints. The design goal
// is fault tolerance with no correctness dependence on timing:
//
//   - Work is handed out as leases with a deadline. A worker that goes
//     silent past the deadline loses the lease and its unfinished
//     cells return to the queue for the next claimant.
//   - Every cell commit is content-addressed and idempotent, so a
//     revoked worker's in-flight commits are never corruption — at
//     worst a cell is computed twice, and the second commit is a
//     no-op.
//   - Requeueing consults the store first: cells the dead worker
//     already committed (successes and recorded failures alike) are
//     marked done, never re-issued. The same check seeds the queue at
//     construction, so a restarted coordinator recovers exactly the
//     un-committed remainder of the sweep from the manifest + store.
//
// Expiry is lazy: deadlines are checked against the queue's clock at
// every claim/heartbeat/complete/status call rather than by a timer
// goroutine, so tests drive every failure mode deterministically with
// an injected clock and an idle coordinator spends nothing.

// WorkCell is one unit of leased work on the wire: the cell's store
// key, its display label, and its deployment-affinity group (cells
// sharing a group share a memoized image build, so the queue keeps
// them in the same batch where possible).
type WorkCell struct {
	Key   string `json:"key"`
	Label string `json:"label"`
	Group string `json:"group,omitempty"`
}

// WorkStatus is the coordinator's public state, served on
// GET /v1/work. All cell counts partition TotalCells.
type WorkStatus struct {
	// Study names the enumerated study; Stamp fingerprints its full
	// cell set, so workers can refuse a coordinator sweeping a
	// different study (or the same study at different flags).
	Study string `json:"study"`
	Stamp string `json:"stamp"`
	// TotalCells counts the full enumeration; DoneCells the cells
	// committed (or found committed at recovery); PendingCells the
	// cells in unleased batches; LeasedCells the cells out on active
	// leases.
	TotalCells   int `json:"total_cells"`
	DoneCells    int `json:"done_cells"`
	PendingCells int `json:"pending_cells"`
	LeasedCells  int `json:"leased_cells"`
	// ActiveLeases counts live leases; ExpiredLeases the leases ever
	// revoked for silence; Requeues the batches ever returned to the
	// queue (expiry and failure both count).
	ActiveLeases  int   `json:"active_leases"`
	ExpiredLeases int64 `json:"expired_leases"`
	Requeues      int64 `json:"requeues"`
	// Done reports sweep completion: every cell committed.
	Done bool `json:"done"`
	// HeartbeatMillis is the advertised heartbeat interval.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// WorkerProgress is a worker's self-reported progress and attribution
// summary, carried on heartbeats. All counters are cumulative over the
// worker's run (a lease carries only its latest snapshot), so the
// coordinator's fleet view never double-counts across batches.
type WorkerProgress struct {
	// Cells counts cells this worker ran to completion; Failures the
	// ones whose run errored (negative records committed).
	Cells    int `json:"cells"`
	Failures int `json:"failures,omitempty"`
	// Simulated and Replayed split the produced cells by provenance:
	// simulated fresh vs restored from the store.
	Simulated int64 `json:"simulated"`
	Replayed  int64 `json:"replayed,omitempty"`
	// VirtualSeconds totals the simulated cells' virtual time over all
	// ranks; CommSeconds the part the MPI engine accounted to
	// communication — the same split the profiler refines per rank.
	VirtualSeconds float64 `json:"virtual_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
}

// add folds another worker's progress in (fleet totals).
func (p *WorkerProgress) add(o WorkerProgress) {
	p.Cells += o.Cells
	p.Failures += o.Failures
	p.Simulated += o.Simulated
	p.Replayed += o.Replayed
	p.VirtualSeconds += o.VirtualSeconds
	p.CommSeconds += o.CommSeconds
}

// WorkerStatus is the coordinator's last knowledge of one worker, as
// served on GET /v1/status.
type WorkerStatus struct {
	Name string `json:"name"`
	// Lease is the worker's active lease id ("" between batches);
	// LeaseCells its batch size.
	Lease      string `json:"lease,omitempty"`
	LeaseCells int    `json:"lease_cells,omitempty"`
	// Batches counts leases ever granted to this worker.
	Batches int `json:"batches"`
	// LastSeenMillis is how long ago the worker last contacted the
	// coordinator (claim, heartbeat, or completion).
	LastSeenMillis int64 `json:"last_seen_ms"`
	// Stale marks a worker silent for over three heartbeat intervals
	// while the sweep is still running — enough missed renewals that a
	// healthy worker is all but ruled out, yet early enough to flag the
	// stall before its lease expires. Never set once the sweep is done
	// (every worker goes quiet then, legitimately).
	Stale bool `json:"stale,omitempty"`
	// Progress is the worker's latest heartbeat-reported summary.
	Progress WorkerProgress `json:"progress"`
}

// WorkLease is one granted lease: the batch of cells the worker now
// owns, and the renewal contract (heartbeat within TTL or lose it).
type WorkLease struct {
	ID        string
	Study     string
	Stamp     string
	Cells     []WorkCell
	TTL       time.Duration
	Heartbeat time.Duration
}

// workEvents reports what a queue operation's lazy expiry sweep did,
// so the server can fold it into metrics.
type workEvents struct {
	// expired counts leases revoked for silence; requeuedCells the
	// cells returned to the queue by those revocations.
	expired       int
	requeuedCells int
}

// QueueOptions tunes a WorkQueue.
type QueueOptions struct {
	// Study names the sweep (display and stamp verification).
	Study string
	// BatchSize caps cells per lease. Default 4.
	BatchSize int
	// LeaseTTL is how long a lease survives without a heartbeat.
	// Default 30s.
	LeaseTTL time.Duration
	// Heartbeat is the renewal interval advertised to workers.
	// Default LeaseTTL/4.
	Heartbeat time.Duration
	// Clock supplies the queue's notion of now. Default time.Now —
	// lease bookkeeping is operational wall time and never reaches
	// simulated results (cell outcomes are pure functions of the
	// spec, committed content-addressed).
	Clock func() time.Time
	// Committed reports whether a cell key is already durably
	// committed (success or recorded failure). Consulted at
	// construction (coordinator restart recovery) and at every
	// requeue, so committed cells are never re-issued. Nil means
	// nothing is committed.
	Committed func(key string) bool
	// Logf, when non-nil, receives one line per lease lifecycle event.
	Logf func(format string, args ...any)
	// Journal, when non-nil, records each lease's full lifetime as a
	// wall-clock span when it settles (completed, failed, or expired),
	// parented on the claiming request's propagated span id, plus one
	// "requeue" point per batch returned to the queue. Timestamps come
	// from Clock, so fake-clock tests journal deterministically.
	Journal *telemetry.FleetJournal
}

// workLease is the server-side lease record.
type workLease struct {
	id       string
	worker   string
	cells    []WorkCell
	deadline time.Time
	// granted anchors the lease's journal span; origin is the claiming
	// request's propagated span id (the cross-process parent link).
	granted time.Time
	origin  string
}

// WorkQueue coordinates one sweep across a fleet of workers: it hands
// out deterministic, deployment-affine cell batches as leases,
// revokes leases whose workers go silent, and never re-issues a cell
// the store already holds. Safe for concurrent use.
type WorkQueue struct {
	opt   QueueOptions
	stamp string
	total int

	mu      sync.Mutex
	pending [][]WorkCell
	leases  map[string]*workLease
	workers map[string]*workerRec
	seq     int64
	done    int
	expired int64
	requeue int64
}

// workerRec is the coordinator's memory of one worker: liveness,
// active lease, and its latest self-reported progress. Records persist
// after a worker's lease ends so the fleet view keeps showing what
// each worker contributed.
type workerRec struct {
	lastSeen time.Time
	lease    string // active lease id, "" between batches
	batches  int
	progress WorkerProgress
}

// touch updates (creating if needed) a worker's liveness record.
// Callers hold q.mu.
func (q *WorkQueue) touch(worker string, now time.Time) *workerRec {
	rec, ok := q.workers[worker]
	if !ok {
		rec = &workerRec{}
		q.workers[worker] = rec
	}
	rec.lastSeen = now
	return rec
}

// WorkStamp fingerprints a study enumeration: the study name plus
// every cell key in sweep order. Coordinator and workers each compute
// it from their own enumeration; a mismatch means they were invoked
// with different studies or flags and must not exchange work.
func WorkStamp(study string, keys []string) string {
	h := sha256.New()
	h.Write([]byte(study))
	h.Write([]byte{0})
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// NewWorkQueue builds the coordinator state for one sweep. The stamp
// covers the full enumeration; cells already committed (per
// opt.Committed) are marked done immediately and never issued — a
// coordinator restarted mid-sweep resumes with exactly the
// un-committed remainder. Remaining cells are grouped by deployment
// affinity in first-appearance order and chunked into batches, so the
// assignment is deterministic for a given enumeration and store
// state.
func NewWorkQueue(cells []WorkCell, opt QueueOptions) *WorkQueue {
	if opt.BatchSize <= 0 {
		opt.BatchSize = 4
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 30 * time.Second
	}
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = opt.LeaseTTL / 4
	}
	if opt.Clock == nil {
		//lint:allow wallclock -- lease deadlines are coordinator infrastructure; cell results are content-addressed and never carry wall time
		opt.Clock = time.Now
	}
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.Key
	}
	q := &WorkQueue{
		opt:     opt,
		stamp:   WorkStamp(opt.Study, keys),
		total:   len(cells),
		leases:  make(map[string]*workLease),
		workers: make(map[string]*workerRec),
	}
	// Recovery: drop committed cells before batching. Group the rest
	// by deployment affinity, preserving first-appearance order.
	var todo []WorkCell
	for _, c := range cells {
		if opt.Committed != nil && opt.Committed(c.Key) {
			q.done++
			continue
		}
		todo = append(todo, c)
	}
	var order []string
	groups := make(map[string][]WorkCell)
	for _, c := range todo {
		if _, ok := groups[c.Group]; !ok {
			order = append(order, c.Group)
		}
		groups[c.Group] = append(groups[c.Group], c)
	}
	for _, g := range order {
		batch := groups[g]
		for len(batch) > 0 {
			n := opt.BatchSize
			if n > len(batch) {
				n = len(batch)
			}
			q.pending = append(q.pending, batch[:n])
			batch = batch[n:]
		}
	}
	q.logf("coordinator: %s: %d cells (%d already committed), %d batches of ≤%d, lease ttl %v",
		opt.Study, q.total, q.done, len(q.pending), opt.BatchSize, opt.LeaseTTL)
	return q
}

// Stamp returns the queue's enumeration fingerprint.
func (q *WorkQueue) Stamp() string { return q.stamp }

func (q *WorkQueue) logf(format string, args ...any) {
	if q.opt.Logf != nil {
		q.opt.Logf(format, args...)
	}
}

// expire revokes every lease whose deadline has passed, requeueing the
// cells its worker did not commit. Called under q.mu by every public
// operation, so silence is detected at the next wire activity — no
// timer goroutine, and tests drive it with the injected clock. The
// trigger is the propagated span id of the request whose activity
// surfaced the expiry (a successor's claim, a status poll), journaled
// as the requeue's parent — a SIGKILLed worker's orphaned lease span
// thereby links to whoever inherited its work.
func (q *WorkQueue) expire(now time.Time, trigger string) workEvents {
	var ev workEvents
	var overdue []string
	for id, l := range q.leases {
		// Order-insensitive collection; processed in sorted order below
		// so requeue order is deterministic.
		if l.deadline.Before(now) {
			overdue = append(overdue, id)
		}
	}
	sort.Strings(overdue)
	for _, id := range overdue {
		l := q.leases[id]
		delete(q.leases, id)
		if rec, ok := q.workers[l.worker]; ok && rec.lease == id {
			rec.lease = ""
		}
		remaining := q.dropCommitted(l.cells)
		ev.expired++
		q.expired++
		ev.requeuedCells += len(remaining)
		if len(remaining) > 0 {
			// Front of the queue: revoked work is the oldest owed.
			q.pending = append([][]WorkCell{remaining}, q.pending...)
			q.requeue++
		}
		q.journalLease(l, now, "expired", len(remaining))
		q.journalRequeue(l, now, trigger, len(remaining))
		q.logf("coordinator: lease %s (%s) expired: %d cells committed, %d requeued",
			l.id, l.worker, len(l.cells)-len(remaining), len(remaining))
	}
	return ev
}

// journalLease records a settled lease's full lifetime as a span on
// the coordinator's journal: Span is the lease id, Parent the claiming
// request's span — the one journal entry that survives a worker which
// could not write its own (SIGKILL).
func (q *WorkQueue) journalLease(l *workLease, now time.Time, outcome string, requeued int) {
	q.opt.Journal.Emit(telemetry.FleetEvent{
		Kind: telemetry.FleetSpan, Name: "lease", Span: l.id, Parent: l.origin,
		StartNs: l.granted.UnixNano(), EndNs: now.UnixNano(),
		Outcome: outcome, Label: l.worker,
		Detail: fmt.Sprintf("%d cells, %d requeued", len(l.cells), requeued),
	})
}

// journalRequeue records cells returning to the queue, parented on the
// request whose activity caused it (the failing completion, or the
// successor call that surfaced an expiry).
func (q *WorkQueue) journalRequeue(l *workLease, now time.Time, trigger string, requeued int) {
	if requeued == 0 {
		return
	}
	q.opt.Journal.Emit(telemetry.FleetEvent{
		Kind: telemetry.FleetPoint, Name: "requeue", Parent: trigger,
		StartNs: now.UnixNano(),
		Outcome: "requeued", Label: l.id,
		Detail: fmt.Sprintf("%d cells from %s", requeued, l.worker),
	})
}

// dropCommitted partitions a revoked or failed batch: committed cells
// are counted done, the rest are returned for requeueing.
func (q *WorkQueue) dropCommitted(cells []WorkCell) []WorkCell {
	var remaining []WorkCell
	for _, c := range cells {
		if q.opt.Committed != nil && q.opt.Committed(c.Key) {
			q.done++
		} else {
			remaining = append(remaining, c)
		}
	}
	return remaining
}

// Claim hands the next batch to a worker as a lease. When no batch is
// free it returns a nil lease: done=true if every cell is committed
// (the worker should exit), otherwise wait (retry after the returned
// interval — an active lease may yet expire and requeue its cells).
func (q *WorkQueue) Claim(worker string) (lease *WorkLease, wait time.Duration, done bool, ev workEvents) {
	return q.ClaimFrom(worker, "")
}

// ClaimFrom is Claim carrying the claiming request's propagated span
// id, recorded as the lease's journal origin.
func (q *WorkQueue) ClaimFrom(worker, origin string) (lease *WorkLease, wait time.Duration, done bool, ev workEvents) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opt.Clock()
	ev = q.expire(now, origin)
	q.touch(worker, now)
	if len(q.pending) == 0 {
		if len(q.leases) == 0 && q.done == q.total {
			return nil, 0, true, ev
		}
		return nil, q.opt.Heartbeat, false, ev
	}
	cells := q.pending[0]
	q.pending = q.pending[1:]
	q.seq++
	l := &workLease{
		id:       fmt.Sprintf("lease-%d", q.seq),
		worker:   worker,
		cells:    cells,
		deadline: now.Add(q.opt.LeaseTTL),
		granted:  now,
		origin:   origin,
	}
	q.leases[l.id] = l
	rec := q.workers[worker]
	rec.lease = l.id
	rec.batches++
	q.logf("coordinator: lease %s: %d cells to %s (%s)", l.id, len(cells), worker, cells[0].Label)
	return &WorkLease{
		ID:        l.id,
		Study:     q.opt.Study,
		Stamp:     q.stamp,
		Cells:     cells,
		TTL:       q.opt.LeaseTTL,
		Heartbeat: q.opt.Heartbeat,
	}, 0, false, ev
}

// Heartbeat renews a lease's deadline, folding the worker's
// self-reported progress (nil is a plain renewal) into its fleet
// record. ok=false means the lease is gone — expired and requeued, or
// already completed — and the worker must abandon the batch's
// remaining cells (its finished commits are durable and harmless
// either way). The worker name comes back so the server can label
// per-worker metrics without a second lookup.
func (q *WorkQueue) Heartbeat(id string, p *WorkerProgress) (worker string, ok bool, ev workEvents) {
	return q.HeartbeatFrom(id, p, "")
}

// HeartbeatFrom is Heartbeat carrying the renewing request's propagated
// span id (the parent of any requeue its expiry sweep causes).
func (q *WorkQueue) HeartbeatFrom(id string, p *WorkerProgress, origin string) (worker string, ok bool, ev workEvents) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opt.Clock()
	ev = q.expire(now, origin)
	l, live := q.leases[id]
	if !live {
		return "", false, ev
	}
	l.deadline = now.Add(q.opt.LeaseTTL)
	rec := q.touch(l.worker, now)
	if p != nil {
		rec.progress = *p
	}
	return l.worker, true, ev
}

// Complete settles a lease, folding the worker's final progress
// snapshot (nil: none reported) into its fleet record — batches often
// finish before their first heartbeat fires, and the fleet view must
// still see the work. With failed=false every cell in the batch was
// committed by the worker and is counted done. With failed=true (some
// cell errored mid-batch) the batch is re-checked against the store:
// committed cells — including the failing cell's recorded failure —
// count done, the rest requeue immediately. Since every deterministic
// failure commits a negative record before the worker reports it,
// each failed requeue is strictly smaller: poisoned cells cannot
// loop. ok=false means the lease had already been revoked.
func (q *WorkQueue) Complete(id string, failed bool, p *WorkerProgress) (worker string, ok bool, ev workEvents) {
	return q.CompleteFrom(id, failed, p, "")
}

// CompleteFrom is Complete carrying the settling request's propagated
// span id (the parent of a failed batch's requeue).
func (q *WorkQueue) CompleteFrom(id string, failed bool, p *WorkerProgress, origin string) (worker string, ok bool, ev workEvents) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opt.Clock()
	ev = q.expire(now, origin)
	l, live := q.leases[id]
	if !live {
		return "", false, ev
	}
	delete(q.leases, id)
	worker = l.worker
	rec := q.touch(l.worker, now)
	if rec.lease == id {
		rec.lease = ""
	}
	if p != nil {
		rec.progress = *p
	}
	if !failed {
		q.done += len(l.cells)
		q.journalLease(l, now, "completed", 0)
		q.logf("coordinator: lease %s (%s) complete: %d cells (%d/%d done)",
			l.id, l.worker, len(l.cells), q.done, q.total)
		return worker, true, ev
	}
	remaining := q.dropCommitted(l.cells)
	ev.requeuedCells += len(remaining)
	if len(remaining) > 0 {
		q.pending = append([][]WorkCell{remaining}, q.pending...)
		q.requeue++
	}
	q.journalLease(l, now, "failed", len(remaining))
	q.journalRequeue(l, now, origin, len(remaining))
	q.logf("coordinator: lease %s (%s) failed: %d cells committed, %d requeued (%d/%d done)",
		l.id, l.worker, len(l.cells)-len(remaining), len(remaining), q.done, q.total)
	return worker, true, ev
}

// Status snapshots the queue (expiring overdue leases first, so an
// idle coordinator's status is still truthful).
func (q *WorkQueue) Status() (WorkStatus, workEvents) {
	st, _, ev := q.Fleet()
	return st, ev
}

// Fleet snapshots the queue and every worker the coordinator has
// heard from, workers sorted by name for deterministic rendering.
func (q *WorkQueue) Fleet() (WorkStatus, []WorkerStatus, workEvents) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opt.Clock()
	ev := q.expire(now, "")
	pending, leased := 0, 0
	for _, b := range q.pending {
		pending += len(b)
	}
	for _, l := range q.leases {
		leased += len(l.cells) // counter accumulation: order-insensitive
	}
	st := WorkStatus{
		Study:           q.opt.Study,
		Stamp:           q.stamp,
		TotalCells:      q.total,
		DoneCells:       q.done,
		PendingCells:    pending,
		LeasedCells:     leased,
		ActiveLeases:    len(q.leases),
		ExpiredLeases:   q.expired,
		Requeues:        q.requeue,
		Done:            q.done == q.total && len(q.leases) == 0 && len(q.pending) == 0,
		HeartbeatMillis: q.opt.Heartbeat.Milliseconds(),
	}
	names := make([]string, 0, len(q.workers))
	for name := range q.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	workers := make([]WorkerStatus, 0, len(names))
	for _, name := range names {
		rec := q.workers[name]
		ws := WorkerStatus{
			Name:           name,
			Lease:          rec.lease,
			Batches:        rec.batches,
			LastSeenMillis: now.Sub(rec.lastSeen).Milliseconds(),
			Stale:          !st.Done && now.Sub(rec.lastSeen) > 3*q.opt.Heartbeat,
			Progress:       rec.progress,
		}
		if l, ok := q.leases[rec.lease]; ok {
			ws.LeaseCells = len(l.cells)
		}
		workers = append(workers, ws)
	}
	return st, workers, ev
}
