// Package chaostest injects programmable faults into registry traffic
// so every failure mode of the coordinated-sweep protocol — dropped
// claims, delayed heartbeats, reset uploads, a coordinator that
// vanishes mid-conversation — can be exercised deterministically
// in-process.
//
// Two layers are provided. RoundTripper wraps an http.RoundTripper
// with an ordered fault program, for in-process tests against
// httptest servers. Proxy relays real TCP connections with optional
// delay and periodic resets, for smoke tests that need faults between
// separate OS processes (see cmd/chaosproxy).
package chaostest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what a matching fault does to a request.
type Mode int

const (
	// Drop fails the request before it is sent: the peer never sees
	// it. Models a dead link or a coordinator that is down.
	Drop Mode = iota
	// Reset sends the request but discards the response and returns a
	// connection error: the peer acted, the caller cannot know.
	// Distinguishes idempotent protocols from ones that double-apply.
	Reset
	// Delay sleeps before forwarding, then behaves normally. Models a
	// congested link or a GC-paused server.
	Delay
)

func (m Mode) String() string {
	switch m {
	case Drop:
		return "drop"
	case Reset:
		return "reset"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Fault is one entry in a RoundTripper's program: requests matching
// Method (empty: any) and PathPrefix (empty: any) suffer Mode, Count
// times (0 means unlimited).
type Fault struct {
	Method     string
	PathPrefix string
	Mode       Mode
	// Count bounds how many requests this fault fires on; 0 is
	// unlimited. Decremented as requests match.
	Count int
	// Delay is the added latency for Mode == Delay.
	Delay time.Duration
}

// ErrInjected is the error injected requests fail with (wrapped), so
// tests can assert the failure came from the harness.
var ErrInjected = errors.New("chaostest: injected fault")

// RoundTripper wraps a base transport with a fault program. Faults are
// matched in order; the first live match fires. Safe for concurrent
// use.
type RoundTripper struct {
	base http.RoundTripper

	mu     sync.Mutex
	faults []*Fault

	// Injected counts faults fired, by mode.
	dropped, reset, delayed atomic.Int64
}

// Wrap builds a RoundTripper over base (nil: http.DefaultTransport)
// with a fault program.
func Wrap(base http.RoundTripper, faults ...Fault) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	rt := &RoundTripper{base: base}
	for i := range faults {
		f := faults[i]
		rt.faults = append(rt.faults, &f)
	}
	return rt
}

// Add appends a fault to the program at runtime.
func (rt *RoundTripper) Add(f Fault) {
	rt.mu.Lock()
	rt.faults = append(rt.faults, &f)
	rt.mu.Unlock()
}

// Fired reports how many faults have fired, by mode.
func (rt *RoundTripper) Fired() (dropped, reset, delayed int64) {
	return rt.dropped.Load(), rt.reset.Load(), rt.delayed.Load()
}

// match consumes the first live fault matching the request, if any.
func (rt *RoundTripper) match(req *http.Request) *Fault {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, f := range rt.faults {
		if f.Count < 0 {
			continue // exhausted
		}
		if f.Method != "" && f.Method != req.Method {
			continue
		}
		if f.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, f.PathPrefix) {
			continue
		}
		if f.Count > 0 {
			f.Count--
			if f.Count == 0 {
				f.Count = -1 // last firing; retire
			}
		}
		return f
	}
	return nil
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	f := rt.match(req)
	if f == nil {
		return rt.base.RoundTrip(req)
	}
	switch f.Mode {
	case Drop:
		rt.dropped.Add(1)
		return nil, fmt.Errorf("%w: dropped %s %s", ErrInjected, req.Method, req.URL.Path)
	case Reset:
		resp, err := rt.base.RoundTrip(req)
		if err == nil {
			// The peer processed the request; the caller must not know.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		rt.reset.Add(1)
		return nil, fmt.Errorf("%w: reset after %s %s", ErrInjected, req.Method, req.URL.Path)
	case Delay:
		rt.delayed.Add(1)
		time.Sleep(f.Delay)
		return rt.base.RoundTrip(req)
	default:
		return nil, fmt.Errorf("%w: unknown mode %v", ErrInjected, f.Mode)
	}
}

// ProxyOptions tunes a TCP fault proxy.
type ProxyOptions struct {
	// Delay is added once per connection, before any bytes flow.
	Delay time.Duration
	// ResetEvery, when positive, abruptly closes every Nth connection
	// as soon as it is accepted.
	ResetEvery int
	// Logf, when non-nil, receives one line per connection event.
	Logf func(format string, args ...any)
}

// Proxy relays TCP connections to a target with injected faults — the
// between-processes counterpart of RoundTripper.
type Proxy struct {
	ln     net.Listener
	target string
	opt    ProxyOptions
	conns  atomic.Int64
}

// NewProxy listens on addr (e.g. "127.0.0.1:0") relaying to target.
func NewProxy(addr, target string, opt ProxyOptions) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("chaostest: %w", err)
	}
	return &Proxy{ln: ln, target: target, opt: opt}, nil
}

// Addr returns the proxy's bound address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) logf(format string, args ...any) {
	if p.opt.Logf != nil {
		p.opt.Logf(format, args...)
	}
}

// Serve accepts and relays until ctx is cancelled.
func (p *Proxy) Serve(ctx context.Context) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		p.ln.Close()
	}()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		n := p.conns.Add(1)
		if p.opt.ResetEvery > 0 && n%int64(p.opt.ResetEvery) == 0 {
			p.logf("chaosproxy: conn %d: reset", n)
			conn.Close()
			continue
		}
		go p.relay(ctx, n, conn)
	}
}

// relay pipes one connection both ways, with the configured delay.
func (p *Proxy) relay(ctx context.Context, id int64, client net.Conn) {
	defer client.Close()
	if p.opt.Delay > 0 {
		p.logf("chaosproxy: conn %d: delaying %v", id, p.opt.Delay)
		select {
		case <-ctx.Done():
			return
		case <-time.After(p.opt.Delay):
		}
	}
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		p.logf("chaosproxy: conn %d: dial %s: %v", id, p.target, err)
		return
	}
	defer server.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	halfClose := func(dst, src net.Conn) {
		defer wg.Done()
		io.Copy(dst, src)
		// Propagate EOF without killing the reverse direction.
		if t, ok := dst.(*net.TCPConn); ok {
			t.CloseWrite()
		}
	}
	go halfClose(server, client)
	go halfClose(client, server)
	wg.Wait()
	p.logf("chaosproxy: conn %d: closed", id)
}
