package chaostest

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRoundTripperProgram: the three modes behave as documented and
// the program matches in order, by method and path, with counts.
func TestRoundTripperProgram(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	rt := Wrap(nil,
		Fault{Method: "POST", PathPrefix: "/claim", Mode: Drop, Count: 1},
		Fault{Method: "POST", PathPrefix: "/complete", Mode: Reset, Count: 1},
		Fault{PathPrefix: "/slow", Mode: Delay, Count: 0, Delay: 5 * time.Millisecond},
	)
	client := &http.Client{Transport: rt}

	// Drop: the server never sees the request; the error is typed.
	before := served.Load()
	_, err := client.Post(ts.URL+"/claim", "text/plain", strings.NewReader("x"))
	if err == nil || !strings.Contains(err.Error(), ErrInjected.Error()) {
		t.Fatalf("dropped request error: %v", err)
	}
	if served.Load() != before {
		t.Fatal("dropped request reached the server")
	}
	// Count exhausted: the next claim goes through.
	if _, err := client.Post(ts.URL+"/claim", "text/plain", strings.NewReader("x")); err != nil {
		t.Fatalf("second claim should pass: %v", err)
	}

	// Reset: the server processes it, the caller still errors.
	before = served.Load()
	if _, err := client.Post(ts.URL+"/complete", "text/plain", strings.NewReader("x")); err == nil {
		t.Fatal("reset request returned success")
	}
	if served.Load() != before+1 {
		t.Fatal("reset request must still reach the server")
	}

	// Delay: slower, but successful — and unlimited (Count 0).
	for i := 0; i < 2; i++ {
		start := time.Now()
		resp, err := client.Get(ts.URL + "/slow")
		if err != nil {
			t.Fatalf("delayed request failed: %v", err)
		}
		resp.Body.Close()
		if time.Since(start) < 5*time.Millisecond {
			t.Fatal("delay fault did not delay")
		}
	}

	// Unmatched traffic is untouched.
	resp, err := client.Get(ts.URL + "/other")
	if err != nil {
		t.Fatalf("unmatched request failed: %v", err)
	}
	resp.Body.Close()

	dropped, reset, delayed := rt.Fired()
	if dropped != 1 || reset != 1 || delayed != 2 {
		t.Fatalf("fired %d/%d/%d, want 1 drop, 1 reset, 2 delays", dropped, reset, delayed)
	}
}

// TestRoundTripperAdd: faults appended at runtime take effect.
func TestRoundTripperAdd(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	rt := Wrap(nil)
	client := &http.Client{Transport: rt}
	if _, err := client.Get(ts.URL + "/x"); err != nil {
		t.Fatalf("clean program must pass traffic: %v", err)
	}
	rt.Add(Fault{Mode: Drop})
	if _, err := client.Get(ts.URL + "/x"); err == nil {
		t.Fatal("added fault did not fire")
	}
}

// TestProxyRelayAndReset: the TCP proxy relays HTTP end-to-end, adds
// its per-connection delay, and kills every Nth connection.
func TestProxyRelayAndReset(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	defer ts.Close()
	p, err := NewProxy("127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"), ProxyOptions{
		Delay:      2 * time.Millisecond,
		ResetEvery: 2, // every second connection dies on accept
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- p.Serve(ctx) }()

	// Force one TCP connection per request so the reset cadence is
	// deterministic: conn 1 relays, conn 2 resets, conn 3 relays...
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	var ok, reset int
	for i := 0; i < 4; i++ {
		start := time.Now()
		resp, err := client.Get("http://" + p.Addr() + "/ping")
		if err != nil {
			reset++
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "pong" {
			t.Fatalf("relayed body %q", body)
		}
		if time.Since(start) < 2*time.Millisecond {
			t.Fatal("proxy did not add its delay")
		}
		ok++
	}
	if ok != 2 || reset != 2 {
		t.Fatalf("4 single-connection requests through reset-every-2: %d ok, %d reset", ok, reset)
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
