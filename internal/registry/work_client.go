package registry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Client side of the /v1/work lease API. These methods speak to a
// coordinator through the same do() path as record traffic, so they
// inherit the schema header, retry-with-backoff, and jitter — a
// coordinator restart looks like any transient outage until the
// retries run out.

// WorkClaim is the decoded answer to a claim: exactly one of Done, a
// Lease, or a Wait interval.
type WorkClaim struct {
	// Done reports sweep completion: every cell committed, the worker
	// should exit.
	Done bool
	// Lease is the granted batch, nil when Done or waiting.
	Lease *WorkLease
	// Wait is how long to pause before re-claiming when all work is
	// leased out (a lease may yet expire and requeue).
	Wait time.Duration
}

// errNotCoordinator decodes a work-API 404 into a friendly error.
func errNotCoordinator(base string, data []byte) error {
	var we wireError
	if json.Unmarshal(data, &we) == nil && we.Code == codeNoWork {
		return fmt.Errorf("registry: %s is not coordinating a sweep (start the server with -sweep)", base)
	}
	return fmt.Errorf("registry: %s does not speak the work API (HTTP 404)", base)
}

// ClaimWork asks the coordinator for the next batch.
func (c *Client) ClaimWork(worker string) (WorkClaim, error) {
	body, err := json.Marshal(wireClaimRequest{Worker: worker})
	if err != nil {
		return WorkClaim{}, fmt.Errorf("registry: %w", err)
	}
	status, data, err := c.do(http.MethodPost, "/v1/work/claim", body)
	if err != nil {
		return WorkClaim{}, err
	}
	switch status {
	case http.StatusOK:
	case http.StatusNotFound:
		return WorkClaim{}, errNotCoordinator(c.base, data)
	case http.StatusConflict:
		return WorkClaim{}, mismatchFrom(data)
	default:
		return WorkClaim{}, fmt.Errorf("registry: POST /v1/work/claim: HTTP %d", status)
	}
	var wc wireClaim
	if err := json.Unmarshal(data, &wc); err != nil {
		return WorkClaim{}, fmt.Errorf("registry: undecodable claim response: %w", err)
	}
	switch wc.Status {
	case "done":
		return WorkClaim{Done: true}, nil
	case "wait":
		return WorkClaim{Wait: time.Duration(wc.RetryMillis) * time.Millisecond}, nil
	case "lease":
		if wc.Lease == nil {
			return WorkClaim{}, fmt.Errorf("registry: claim granted a lease without a body")
		}
		return WorkClaim{Lease: &WorkLease{
			ID:        wc.Lease.ID,
			Study:     wc.Lease.Study,
			Stamp:     wc.Lease.Stamp,
			Cells:     wc.Lease.Cells,
			TTL:       time.Duration(wc.Lease.TTLMillis) * time.Millisecond,
			Heartbeat: time.Duration(wc.Lease.HeartbeatMillis) * time.Millisecond,
		}}, nil
	default:
		return WorkClaim{}, fmt.Errorf("registry: claim status %q", wc.Status)
	}
}

// leasePost sends one heartbeat/complete request. alive=false means
// the lease is gone (410): the worker must abandon the batch's
// remaining cells — its committed ones are durable either way.
func (c *Client) leasePost(path string, req wireLeaseRequest) (alive bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return false, fmt.Errorf("registry: %w", err)
	}
	status, data, err := c.do(http.MethodPost, path, body)
	if err != nil {
		return false, err
	}
	switch status {
	case http.StatusOK:
		return true, nil
	case http.StatusGone:
		return false, nil
	case http.StatusNotFound:
		return false, errNotCoordinator(c.base, data)
	case http.StatusConflict:
		return false, mismatchFrom(data)
	default:
		return false, fmt.Errorf("registry: POST %s: HTTP %d", path, status)
	}
}

// HeartbeatWork renews a lease, optionally reporting the worker's
// cumulative progress summary (nil sends a plain renewal).
// alive=false: the lease was revoked.
func (c *Client) HeartbeatWork(leaseID string, progress *WorkerProgress) (alive bool, err error) {
	return c.leasePost("/v1/work/heartbeat", wireLeaseRequest{Lease: leaseID, Progress: progress})
}

// CompleteWork settles a lease; failed marks a batch where some cell
// errored (the coordinator requeues only what never committed), and
// progress, when non-nil, delivers the worker's final summary for the
// batch — fast batches settle before their first heartbeat, and the
// fleet view must still see the work. ok=false: the lease had already
// been revoked.
func (c *Client) CompleteWork(leaseID string, failed bool, errMsg string, progress *WorkerProgress) (ok bool, err error) {
	return c.leasePost("/v1/work/complete", wireLeaseRequest{Lease: leaseID, Failed: failed, Error: errMsg, Progress: progress})
}

// FetchWorkStatus reads the coordinator's progress snapshot.
func (c *Client) FetchWorkStatus() (WorkStatus, error) {
	status, data, err := c.do(http.MethodGet, "/v1/work", nil)
	if err != nil {
		return WorkStatus{}, err
	}
	if status == http.StatusNotFound {
		return WorkStatus{}, errNotCoordinator(c.base, data)
	}
	if status != http.StatusOK {
		return WorkStatus{}, fmt.Errorf("registry: GET /v1/work: HTTP %d", status)
	}
	var st WorkStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return WorkStatus{}, fmt.Errorf("registry: undecodable work status: %w", err)
	}
	return st, nil
}
