package registry

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/telemetry"
)

// Wire shapes for the /v1/work lease API:
//
//	GET  /v1/work            → 200 WorkStatus | 404
//	POST /v1/work/claim      → 200 wireClaim  | 404 | 409
//	POST /v1/work/heartbeat  → 200 | 404 | 410
//	POST /v1/work/complete   → 200 | 404 | 410
//
// 404 with code "no-coordinator" means the server has no work queue
// (it was started as a plain cache, not a sweep coordinator). 410 with
// code "lease-gone" means the named lease was revoked or already
// settled; the worker must abandon the batch's remaining cells.

// wireClaimRequest is the body of POST /v1/work/claim.
type wireClaimRequest struct {
	// Worker is a display name for logs and lease attribution.
	Worker string `json:"worker"`
}

// wireClaim answers a claim: a granted lease, an instruction to retry
// after RetryMillis (work is all leased out but may yet requeue), or
// status "done" (every cell committed; the worker should exit).
type wireClaim struct {
	Status      string     `json:"status"` // "lease" | "wait" | "done"
	RetryMillis int64      `json:"retry_ms,omitempty"`
	Lease       *wireLease `json:"lease,omitempty"`
}

// wireLease is one granted lease on the wire.
type wireLease struct {
	ID              string     `json:"id"`
	Study           string     `json:"study"`
	Stamp           string     `json:"stamp"`
	Cells           []WorkCell `json:"cells"`
	TTLMillis       int64      `json:"ttl_ms"`
	HeartbeatMillis int64      `json:"heartbeat_ms"`
}

// wireLeaseRequest is the body of POST /v1/work/heartbeat and
// /v1/work/complete.
type wireLeaseRequest struct {
	Lease string `json:"lease"`
	// Failed marks a completion where some cell errored mid-batch; the
	// coordinator re-checks the batch against the store and requeues
	// only what never committed.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
	// Progress, on heartbeats, is the worker's cumulative progress and
	// attribution summary; the coordinator folds it into the fleet view
	// served on GET /v1/status.
	Progress *WorkerProgress `json:"progress,omitempty"`
}

// requireWork rejects work-API requests on a server with no queue.
func (s *Server) requireWork(w http.ResponseWriter) bool {
	if s.opt.Work != nil {
		return false
	}
	writeJSON(w, http.StatusNotFound, wireError{
		Code:  codeNoWork,
		Error: "this registry is not coordinating a sweep (start it with a work queue)",
	})
	return true
}

// noteWorkEvents folds one operation's lazy-expiry fallout into the
// metrics registry.
func (s *Server) noteWorkEvents(ev workEvents) {
	if ev.expired > 0 {
		s.metrics.Counter("registry_work_leases_total", "Lease lifecycle events.",
			telemetry.L("event", "expired")).Add(float64(ev.expired))
	}
	if ev.requeuedCells > 0 {
		s.metrics.Counter("registry_work_requeued_cells_total", "Cells returned to the queue by lease expiry or failure.").
			Add(float64(ev.requeuedCells))
	}
}

// noteLease counts one lease lifecycle event.
func (s *Server) noteLease(event string) {
	s.metrics.Counter("registry_work_leases_total", "Lease lifecycle events.",
		telemetry.L("event", event)).Inc()
}

// refreshWorkGauges snapshots the queue into the progress gauges.
func (s *Server) refreshWorkGauges() {
	st, ev := s.opt.Work.Status()
	s.noteWorkEvents(ev)
	s.metrics.Gauge("registry_work_pending_cells", "Cells waiting in unleased batches.").Set(float64(st.PendingCells))
	s.metrics.Gauge("registry_work_active_leases", "Leases currently live.").Set(float64(st.ActiveLeases))
	s.metrics.Gauge("registry_work_done_cells", "Cells committed so far.").Set(float64(st.DoneCells))
}

func (s *Server) handleWorkStatus(w http.ResponseWriter, r *http.Request) {
	if s.requireWork(w) {
		return
	}
	st, ev := s.opt.Work.Status()
	s.noteWorkEvents(ev)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleWorkClaim(w http.ResponseWriter, r *http.Request) {
	if s.requireWork(w) || s.rejectSchema(w, r) {
		return
	}
	var req wireClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Code: codeBadRecord, Error: "undecodable claim: " + err.Error()})
		return
	}
	if req.Worker == "" {
		req.Worker = r.RemoteAddr
	}
	lease, wait, done, ev := s.opt.Work.ClaimFrom(req.Worker, r.Header.Get(headerSpan))
	s.noteWorkEvents(ev)
	defer s.refreshWorkGauges()
	switch {
	case done:
		writeJSON(w, http.StatusOK, wireClaim{Status: "done"})
	case lease == nil:
		writeJSON(w, http.StatusOK, wireClaim{Status: "wait", RetryMillis: wait.Milliseconds()})
	default:
		s.noteLease("granted")
		writeJSON(w, http.StatusOK, wireClaim{Status: "lease", Lease: &wireLease{
			ID:              lease.ID,
			Study:           lease.Study,
			Stamp:           lease.Stamp,
			Cells:           lease.Cells,
			TTLMillis:       lease.TTL.Milliseconds(),
			HeartbeatMillis: lease.Heartbeat.Milliseconds(),
		}})
	}
}

// decodeLeaseRequest reads a heartbeat/complete body, rejecting blanks.
func decodeLeaseRequest(w http.ResponseWriter, r *http.Request) (wireLeaseRequest, bool) {
	var req wireLeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Code: codeBadRecord, Error: "undecodable lease request: " + err.Error()})
		return req, false
	}
	if req.Lease == "" {
		writeJSON(w, http.StatusBadRequest, wireError{Code: codeBadRecord, Error: "missing lease id"})
		return req, false
	}
	return req, true
}

func (s *Server) handleWorkHeartbeat(w http.ResponseWriter, r *http.Request) {
	if s.requireWork(w) || s.rejectSchema(w, r) {
		return
	}
	req, ok := decodeLeaseRequest(w, r)
	if !ok {
		return
	}
	worker, alive, ev := s.opt.Work.HeartbeatFrom(req.Lease, req.Progress, r.Header.Get(headerSpan))
	s.noteWorkEvents(ev)
	result := "ok"
	if !alive {
		result = "gone"
	}
	s.metrics.Counter("registry_work_heartbeats_total", "Heartbeats by outcome.",
		telemetry.L("result", result)).Inc()
	if alive && req.Progress != nil {
		s.noteWorkerProgress(worker, *req.Progress)
	}
	if !alive {
		writeJSON(w, http.StatusGone, wireError{
			Code:  codeLeaseGone,
			Error: fmt.Sprintf("lease %s expired or already settled; abandon its remaining cells", req.Lease),
		})
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleWorkComplete(w http.ResponseWriter, r *http.Request) {
	if s.requireWork(w) || s.rejectSchema(w, r) {
		return
	}
	req, ok := decodeLeaseRequest(w, r)
	if !ok {
		return
	}
	worker, settled, ev := s.opt.Work.CompleteFrom(req.Lease, req.Failed, req.Progress, r.Header.Get(headerSpan))
	s.noteWorkEvents(ev)
	defer s.refreshWorkGauges()
	if settled && req.Progress != nil {
		s.noteWorkerProgress(worker, *req.Progress)
	}
	if !settled {
		s.noteLease("lost")
		writeJSON(w, http.StatusGone, wireError{
			Code:  codeLeaseGone,
			Error: fmt.Sprintf("lease %s expired before completion; its committed cells are kept", req.Lease),
		})
		return
	}
	if req.Failed {
		s.noteLease("failed")
		if req.Error != "" {
			s.logf("registry: lease %s reported failure: %s", req.Lease, req.Error)
		}
	} else {
		s.noteLease("completed")
	}
	writeJSON(w, http.StatusOK, struct{}{})
}
