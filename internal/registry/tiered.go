package registry

import (
	"errors"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/resultdb"
)

// Tiered layers a fast local store (usually a resultdb.DirStore) in
// front of a remote one (usually a registry Client): lookups try the
// local tier first and read remote hits through into it — the local
// commit is the directory store's atomic rename, so a crash mid
// read-through never leaves a torn record — while commits write the
// remote tier first (shared progress survives a local disk failure)
// and then the local one. A warm local tier answers every repeat
// lookup without a network round trip.
type Tiered struct {
	local, remote resultdb.Store

	lookups, hits, negHits, puts, putErrors atomic.Int64
}

var _ resultdb.Store = (*Tiered)(nil)
var _ resultdb.Pinner = (*Tiered)(nil)
var _ resultdb.Prefetcher = (*Tiered)(nil)

// NewTiered combines a local and a remote store. Both are owned by
// the result: Close closes them.
func NewTiered(local, remote resultdb.Store) *Tiered {
	return &Tiered{local: local, remote: remote}
}

// Get returns the saved result for a key, success records only,
// misses tolerant of every failure mode.
func (t *Tiered) Get(key string) (core.SavedResult, bool) {
	return resultdb.GetFrom(t, key)
}

// Lookup consults local then remote, populating the local tier on a
// remote hit. A local transport error (impossible for a DirStore) is
// not fatal — the remote tier still answers; a remote error surfaces
// only when the local tier missed.
func (t *Tiered) Lookup(key string) (resultdb.Entry, bool, error) {
	t.lookups.Add(1)
	if ent, ok, err := t.local.Lookup(key); err == nil && ok {
		t.count(ent)
		return ent, true, nil
	}
	ent, ok, err := t.remote.Lookup(key)
	if err != nil || !ok {
		return resultdb.Entry{}, false, err
	}
	// Read-through: best-effort local commit. A failed populate costs
	// a repeat round trip, never the entry.
	if ent.Err != "" {
		_ = t.local.PutError(key, ent.Err)
	} else {
		_ = t.local.Put(key, ent.Result)
	}
	t.count(ent)
	return ent, true, nil
}

func (t *Tiered) count(ent resultdb.Entry) {
	if ent.Err != "" {
		t.negHits.Add(1)
	} else {
		t.hits.Add(1)
	}
}

// Put commits to the remote tier first, then the local one; either
// failure is an error, since the caller asked for both.
func (t *Tiered) Put(key string, res core.SavedResult) error {
	if err := t.remote.Put(key, res); err != nil {
		return err
	}
	if err := t.local.Put(key, res); err != nil {
		return err
	}
	t.puts.Add(1)
	return nil
}

// PutError commits a failure record to both tiers, remote first.
func (t *Tiered) PutError(key, msg string) error {
	if err := t.remote.PutError(key, msg); err != nil {
		return err
	}
	if err := t.local.PutError(key, msg); err != nil {
		return err
	}
	t.putErrors.Add(1)
	return nil
}

// Keys returns the sorted union of both tiers' advisory key sets.
func (t *Tiered) Keys() []string {
	seen := make(map[string]bool)
	for _, k := range t.local.Keys() {
		seen[k] = true
	}
	for _, k := range t.remote.Keys() {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the tiered store's own traffic. Per-tier counters
// remain available on the tiers themselves; retries and prefetch
// skips only happen in the tiers, so they are summed through.
func (t *Tiered) Stats() resultdb.StoreStats {
	ls, rs := t.local.Stats(), t.remote.Stats()
	return resultdb.StoreStats{
		Lookups:       t.lookups.Load(),
		Hits:          t.hits.Load(),
		NegHits:       t.negHits.Load(),
		Puts:          t.puts.Load(),
		PutErrors:     t.putErrors.Load(),
		Retries:       ls.Retries + rs.Retries,
		PrefetchSkips: ls.PrefetchSkips + rs.PrefetchSkips,
	}
}

// Close closes both tiers, reporting every failure.
func (t *Tiered) Close() error {
	return errors.Join(t.local.Close(), t.remote.Close())
}

// Prefetch forwards the working-set hint to each tier that supports
// it — in practice the remote registry client, which answers the hint
// with one manifest fetch. Keys the local tier already holds never
// consult the remote tier at all (Lookup returns the local hit), so
// forwarding the full set costs nothing beyond the single round trip.
func (t *Tiered) Prefetch(keys []string) {
	for _, tier := range []resultdb.Store{t.local, t.remote} {
		if p, ok := tier.(resultdb.Prefetcher); ok {
			p.Prefetch(keys)
		}
	}
}

// Pin forwards to each tier that supports pinning, so the local
// directory tier keeps a sweep's cells across a concurrent GC.
func (t *Tiered) Pin(keys []string) (release func()) {
	var releases []func()
	for _, tier := range []resultdb.Store{t.local, t.remote} {
		if p, ok := tier.(resultdb.Pinner); ok {
			releases = append(releases, p.Pin(keys))
		}
	}
	return func() {
		for _, r := range releases {
			r()
		}
	}
}
