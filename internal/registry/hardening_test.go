package registry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPutBodyTooLarge: an oversized PUT is cut off with a typed 413 —
// the server never buffers past maxRecordBytes.
func TestPutBodyTooLarge(t *testing.T) {
	_, ts, _ := newRegistry(t)
	// One byte past the limit; the reader streams zeros so the test
	// does not allocate 32 MiB itself.
	body := io.LimitReader(zeroReader{}, maxRecordBytes+1)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/cells/"+key(1), body)
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = maxRecordBytes + 1
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var we wireError
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
		t.Fatal(err)
	}
	if we.Code != codeTooLarge {
		t.Fatalf("error code %q, want %q", we.Code, codeTooLarge)
	}
	if !strings.Contains(we.Error, fmt.Sprint(maxRecordBytes)) {
		t.Fatalf("413 body should name the limit: %q", we.Error)
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = '0'
	}
	return len(p), nil
}

// TestHTTPServerTimeouts: the production server carries connection
// deadlines — defaulted when unset, honoured when set — so a stalled
// peer cannot pin a connection forever.
func TestHTTPServerTimeouts(t *testing.T) {
	s := NewServer(nil, ServerOptions{})
	hs := s.httpServer()
	if hs.ReadTimeout != 2*time.Minute || hs.WriteTimeout != 2*time.Minute || hs.IdleTimeout != 5*time.Minute {
		t.Fatalf("default deadlines: read %v write %v idle %v", hs.ReadTimeout, hs.WriteTimeout, hs.IdleTimeout)
	}
	if hs.ReadHeaderTimeout == 0 {
		t.Fatal("header read deadline must be set")
	}
	s = NewServer(nil, ServerOptions{
		ReadTimeout:  3 * time.Second,
		WriteTimeout: 4 * time.Second,
		IdleTimeout:  5 * time.Second,
	})
	hs = s.httpServer()
	if hs.ReadTimeout != 3*time.Second || hs.WriteTimeout != 4*time.Second || hs.IdleTimeout != 5*time.Second {
		t.Fatalf("explicit deadlines not honoured: read %v write %v idle %v", hs.ReadTimeout, hs.WriteTimeout, hs.IdleTimeout)
	}
}

// TestWorkAPIWithoutQueue: a plain cache server is not a coordinator;
// the work endpoints answer a typed 404 and the client surfaces it as
// a distinct error, not a retry loop.
func TestWorkAPIWithoutQueue(t *testing.T) {
	_, _, c := newRegistry(t)
	if _, err := c.ClaimWork("w"); err == nil || !strings.Contains(err.Error(), "not coordinating") {
		t.Fatalf("claim against a non-coordinator: %v", err)
	}
	if _, err := c.FetchWorkStatus(); err == nil || !strings.Contains(err.Error(), "not coordinating") {
		t.Fatalf("status against a non-coordinator: %v", err)
	}
	if _, err := c.HeartbeatWork("lease-1", nil); err == nil || !strings.Contains(err.Error(), "not coordinating") {
		t.Fatalf("heartbeat against a non-coordinator: %v", err)
	}
}
