package registry

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/alya"
	"repro/internal/experiments"
	"repro/internal/resultdb"
)

// fig3Opt is a test-sized Fig3 configuration: 3 runtime variants × 2
// node points = 6 cells, a few CG iterations each.
func fig3Opt(store resultdb.Store, stats *experiments.SweepStats) experiments.Options {
	c := alya.ArteryFSIMareNostrum4()
	c.SimSteps = 1
	c.ModelCGIters = 5
	return experiments.Options{
		Parallelism: 4,
		Case:        c,
		NodePoints:  []int{4, 8},
		Store:       store,
		Stats:       stats,
	}
}

// render flattens a figure to the bytes the CLI would emit.
func render(t *testing.T, res *experiments.Fig3Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	res.Render(&buf)
	res.RenderChart(&buf)
	return buf.Bytes()
}

// TestDistributedShardsMergeByteIdentical is the subsystem's
// acceptance story: two shard "processes" with separate scratch
// directories, sharing nothing but a registry URL, populate the
// central store through tiered clients; a merge consumer that has
// only the URL then assembles output byte-identical to a cold
// unsharded local run, and a warm rerun simulates zero cells.
func TestDistributedShardsMergeByteIdentical(t *testing.T) {
	cold, err := experiments.Fig3(fig3Opt(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, cold)

	central, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	ts := httptest.NewServer(NewServer(central, ServerOptions{}))
	defer ts.Close()

	totalComputed := int64(0)
	for k := 1; k <= 2; k++ {
		remote, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := resultdb.Open(t.TempDir()) // per-machine disk, never shared
		if err != nil {
			t.Fatal(err)
		}
		stats := &experiments.SweepStats{}
		opt := fig3Opt(NewTiered(scratch, remote), stats)
		opt.Shard = resultdb.Shard{Index: k, Count: 2}
		_, err = experiments.Fig3(opt)
		var miss *experiments.MissingCellsError
		switch {
		case err == nil:
			// This shard owned every cell (possible on small sweeps).
		case errors.As(err, &miss):
			if len(miss.Cells) == 0 {
				t.Fatalf("shard %d: empty missing list", k)
			}
		default:
			t.Fatalf("shard %d: %v", k, err)
		}
		totalComputed += stats.Computed.Load()
		if stats.Puts.Load() != stats.Computed.Load() {
			t.Fatalf("shard %d: %d computed but %d committed", k, stats.Computed.Load(), stats.Puts.Load())
		}
		if k == 1 {
			// The registry was empty, so the manifest prefetch must have
			// answered every lookup locally — zero per-cell GETs.
			if got := remote.Stats().PrefetchSkips; got != 6 {
				t.Fatalf("first shard: %d lookups answered by prefetch, want 6", got)
			}
		}
		scratch.Close()
		remote.Close()
	}
	if totalComputed != 6 {
		t.Fatalf("shards computed %d cells in total, want 6 (disjoint and exhaustive)", totalComputed)
	}
	if central.Len() != 6 {
		t.Fatalf("registry holds %d cells, want 6", central.Len())
	}

	// The merge consumer has no local state at all: URL only.
	merge := func() (*experiments.Fig3Result, *experiments.SweepStats, error) {
		c, err := Dial(ts.URL, ClientOptions{Backoff: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		stats := &experiments.SweepStats{}
		opt := fig3Opt(c, stats)
		opt.FromStore = true
		res, err := experiments.Fig3(opt)
		return res, stats, err
	}
	merged, stats, err := merge()
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Computed.Load(); got != 0 {
		t.Fatalf("merge simulated %d cells, want 0", got)
	}
	if got := render(t, merged); !bytes.Equal(got, want) {
		t.Fatalf("merged figure differs from the cold local run:\n%s\n---\n%s", got, want)
	}

	// Warm rerun: still zero simulations, still identical bytes.
	warm, stats, err := merge()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Computed.Load() != 0 || stats.Hits.Load() != 6 {
		t.Fatalf("warm merge: %d computed, %d hits", stats.Computed.Load(), stats.Hits.Load())
	}
	if got := render(t, warm); !bytes.Equal(got, want) {
		t.Fatal("warm merge output drifted")
	}

	// GC within bounds evicts nothing and later merges still work.
	rep, err := central.GC(time.Now(), resultdb.GCPolicy{MaxAge: 24 * time.Hour, MaxBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 0 {
		t.Fatalf("in-bounds GC evicted %d records", rep.Evicted)
	}
	after, _, err := merge()
	if err != nil {
		t.Fatal(err)
	}
	if got := render(t, after); !bytes.Equal(got, want) {
		t.Fatal("merge output drifted after in-bounds GC")
	}

	// An aggressive GC empties the registry; the merge then reports
	// exactly which cells are missing instead of inventing numbers.
	if _, err := central.GC(time.Now().Add(48*time.Hour), resultdb.GCPolicy{MaxAge: time.Hour}); err != nil {
		t.Fatal(err)
	}
	_, _, err = merge()
	var miss *experiments.MissingCellsError
	if !errors.As(err, &miss) || len(miss.Cells) != 6 {
		t.Fatalf("merge after full eviction: %v", err)
	}
}
