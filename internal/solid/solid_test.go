package solid

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/mesh"
)

func solver(t *testing.T, nx, ny, nz int, p Params) *Solver {
	t.Helper()
	m, err := mesh.NewMesh(nx, ny, nz, 1e-3, 1e-3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mesh.Decompose(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g.Part(0), p, field.SeqComm{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLameParameters(t *testing.T) {
	p := Params{E: 1e5, NuP: 0.25}
	lambda, mu := p.Lame()
	// For ν=0.25: μ = E/2.5 = 4e4, λ = E·0.25/(1.25·0.5) = 4e4.
	if math.Abs(mu-4e4) > 1 || math.Abs(lambda-4e4) > 1 {
		t.Fatalf("λ=%v μ=%v", lambda, mu)
	}
}

func TestWaveSpeedPositive(t *testing.T) {
	p := DefaultParams()
	if c := p.WaveSpeed(); c <= 0 || math.IsNaN(c) {
		t.Fatalf("wave speed %v", c)
	}
}

func TestCFLGuard(t *testing.T) {
	m, _ := mesh.NewMesh(6, 6, 6, 1e-3, 1e-3, 1e-3)
	g, _ := mesh.Decompose(m, 1)
	p := DefaultParams()
	p.Dt = 1.0 // wildly unstable
	if _, err := NewSolver(g.Part(0), p, field.SeqComm{}); err == nil {
		t.Fatal("unstable dt accepted")
	}
}

func TestValidation(t *testing.T) {
	m, _ := mesh.NewMesh(6, 6, 6, 1e-3, 1e-3, 1e-3)
	g, _ := mesh.Decompose(m, 1)
	for _, mutate := range []func(*Params){
		func(p *Params) { p.Dt = 0 },
		func(p *Params) { p.Rho = 0 },
		func(p *Params) { p.E = 0 },
	} {
		p := DefaultParams()
		mutate(&p)
		if _, err := NewSolver(g.Part(0), p, field.SeqComm{}); err == nil {
			t.Fatal("bad params accepted")
		}
	}
}

func TestRestStaysAtRest(t *testing.T) {
	// No load, zero initial displacement: the wall must not move.
	s := solver(t, 6, 6, 8, DefaultParams())
	for i := 0; i < 10; i++ {
		st, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxDisplacement != 0 {
			t.Fatalf("step %d: spontaneous displacement %v", i, st.MaxDisplacement)
		}
	}
}

func TestTractionDeformsWall(t *testing.T) {
	s := solver(t, 6, 6, 8, DefaultParams())
	s.SetTraction(1000) // 1 kPa pulse
	var disp float64
	for i := 0; i < 20; i++ {
		st, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		disp = st.MaxDisplacement
		if math.IsNaN(disp) {
			t.Fatalf("step %d: NaN displacement", i)
		}
	}
	if disp <= 0 {
		t.Fatal("traction produced no displacement")
	}
}

func TestStiffnessResists(t *testing.T) {
	// A stiffer wall deflects less under the same load.
	soft := DefaultParams()
	stiff := DefaultParams()
	stiff.E *= 4
	stiff.Dt /= 2 // keep CFL margin
	run := func(p Params) float64 {
		s := solver(t, 6, 6, 8, p)
		s.SetTraction(1000)
		last := 0.0
		for i := 0; i < 40; i++ {
			st, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			last = st.MaxDisplacement
		}
		return last
	}
	dSoft, dStiff := run(soft), run(stiff)
	if dStiff >= dSoft {
		t.Fatalf("stiff wall deflects more: soft %v, stiff %v", dSoft, dStiff)
	}
}

func TestDampingBoundsMotion(t *testing.T) {
	// With damping, oscillation under a constant load must stay
	// bounded over many steps (no numerical blow-up).
	s := solver(t, 6, 6, 8, DefaultParams())
	s.SetTraction(500)
	var maxSeen float64
	for i := 0; i < 200; i++ {
		st, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxDisplacement > maxSeen {
			maxSeen = st.MaxDisplacement
		}
		if math.IsNaN(st.MaxDisplacement) || st.MaxDisplacement > 1 {
			t.Fatalf("step %d: blow-up, displacement %v", i, st.MaxDisplacement)
		}
	}
	if maxSeen <= 0 {
		t.Fatal("no motion at all")
	}
}

func TestMeanRadialVelocityReported(t *testing.T) {
	s := solver(t, 6, 6, 8, DefaultParams())
	s.SetTraction(1000)
	moved := false
	for i := 0; i < 20; i++ {
		st, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.MeanRadialVelocity != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("radial velocity never reported under load")
	}
}

func TestStepDeterministic(t *testing.T) {
	run := func() float64 {
		s := solver(t, 6, 6, 8, DefaultParams())
		s.SetTraction(750)
		var last StepStats
		for i := 0; i < 15; i++ {
			st, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			last = st
		}
		return last.MaxDisplacement
	}
	if run() != run() {
		t.Fatal("solid solver nondeterministic")
	}
}
