// Package solid implements the structural half of the FSI case: dynamic
// linear elasticity of the artery wall, advanced with an explicit
// central-difference scheme (lumped mass), over the same partitioned
// grid machinery as the fluid code. In the paper's FSI runs this is the
// "second code instance" coupled to the fluid.
package solid

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/mesh"
)

// Per-cell work of one explicit structural step (Navier–Cauchy stencil
// with the mixed divergence derivatives), feeding Comm.Charge and the
// model-mode workload generator.
const (
	// StepFlopsPerCell covers the three-component elasticity update.
	StepFlopsPerCell = 220
	// StepBytesPerCell is the matching memory traffic.
	StepBytesPerCell = 310
)

// Params are the material and numerical parameters of the wall model.
type Params struct {
	// E is Young's modulus (Pa). Arterial wall ≈ 1e5–1e6.
	E float64 `json:"E"`
	// NuP is Poisson's ratio.
	NuP float64 `json:"NuP"`
	// Rho is the density (kg/m³).
	Rho float64 `json:"Rho"`
	// Dt is the time step (s); explicit stability requires
	// dt < h/c with c = sqrt(E/ρ) the dilatational wave speed.
	Dt float64 `json:"Dt"`
	// Damping is a mass-proportional (Rayleigh) damping coefficient.
	Damping float64 `json:"Damping"`
}

// DefaultParams returns a stable arterial-wall configuration.
func DefaultParams() Params {
	return Params{E: 5e5, NuP: 0.45, Rho: 1100, Dt: 5e-6, Damping: 10}
}

// Lame returns the Lamé parameters (λ, μ) of the material.
func (p Params) Lame() (lambda, mu float64) {
	mu = p.E / (2 * (1 + p.NuP))
	lambda = p.E * p.NuP / ((1 + p.NuP) * (1 - 2*p.NuP))
	return
}

// WaveSpeed returns the dilatational wave speed, for stability checks.
func (p Params) WaveSpeed() float64 {
	lambda, mu := p.Lame()
	return math.Sqrt((lambda + 2*mu) / p.Rho)
}

// Solver advances one subdomain of the wall displacement field.
type Solver struct {
	// Part is the owned subdomain (of the wall mesh).
	Part mesh.Partition
	// P holds the parameters.
	P Params
	// Comm provides halos and reductions.
	Comm field.Comm

	// UX, UY, UZ are displacement components; prev* the previous step.
	UX, UY, UZ          *field.Field
	prevX, prevY, prevZ *field.Field

	// traction is the pressure load the fluid applies on the inner
	// wall surface, per unit area (FSI coupling input).
	traction float64

	hx, hy, hz float64
}

// StepStats reports one structural step.
type StepStats struct {
	// MaxDisplacement is the global max displacement magnitude.
	MaxDisplacement float64
	// MeanRadialVelocity is the global mean wall radial velocity —
	// the quantity fed back to the fluid.
	MeanRadialVelocity float64
}

// NewSolver builds a wall solver for one partition.
func NewSolver(part mesh.Partition, p Params, comm field.Comm) (*Solver, error) {
	if p.Dt <= 0 || p.Rho <= 0 || p.E <= 0 {
		return nil, fmt.Errorf("solid: bad parameters %+v", p)
	}
	h := math.Min(part.Grid.Mesh.HX, math.Min(part.Grid.Mesh.HY, part.Grid.Mesh.HZ))
	if p.Dt > 0.5*h/p.WaveSpeed() {
		return nil, fmt.Errorf("solid: dt %g unstable, need < %g (CFL for wave speed %g m/s)",
			p.Dt, 0.5*h/p.WaveSpeed(), p.WaveSpeed())
	}
	return &Solver{
		Part: part, P: p, Comm: comm,
		UX: field.New(part), UY: field.New(part), UZ: field.New(part),
		prevX: field.New(part), prevY: field.New(part), prevZ: field.New(part),
		hx: part.Grid.Mesh.HX, hy: part.Grid.Mesh.HY, hz: part.Grid.Mesh.HZ,
	}, nil
}

// SetTraction installs the fluid pressure load (FSI coupling input).
func (s *Solver) SetTraction(p float64) { s.traction = p }

// fillGhosts applies the structural BCs: clamped at both tube ends
// (Dirichlet 0 at global z extremes), traction-free laterally (mirror).
func (s *Solver) fillGhosts(f *field.Field) {
	p := s.Part
	nx, ny, nz := f.NX, f.NY, f.NZ
	if p.I0 == 0 {
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				f.Set(-1, j, k, f.At(0, j, k))
			}
		}
	}
	if p.I1 == p.Grid.Mesh.NX {
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				f.Set(nx, j, k, f.At(nx-1, j, k))
			}
		}
	}
	if p.J0 == 0 {
		for k := 0; k < nz; k++ {
			for i := 0; i < nx; i++ {
				f.Set(i, -1, k, f.At(i, 0, k))
			}
		}
	}
	if p.J1 == p.Grid.Mesh.NY {
		for k := 0; k < nz; k++ {
			for i := 0; i < nx; i++ {
				f.Set(i, ny, k, f.At(i, ny-1, k))
			}
		}
	}
	if p.OnInlet() {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				f.Set(i, j, -1, -f.At(i, j, 0)) // clamped end
			}
		}
	}
	if p.OnOutlet() {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				f.Set(i, j, nz, -f.At(i, j, nz-1)) // clamped end
			}
		}
	}
}

// Step advances the displacement field by one explicit step:
// ρ·ü = μ∇²u + (λ+μ)∇(∇·u) + f − ρ·c·u̇.
func (s *Solver) Step() (StepStats, error) {
	lambda, mu := s.P.Lame()
	dt, rho := s.P.Dt, s.P.Rho
	nx, ny, nz := s.UX.NX, s.UX.NY, s.UX.NZ

	for _, f := range []*field.Field{s.UX, s.UY, s.UZ} {
		s.fillGhosts(f)
	}
	s.Comm.Exchange(s.UX, s.UY, s.UZ)

	nextX := field.New(s.Part)
	nextY := field.New(s.Part)
	nextZ := field.New(s.Part)

	// The fluid pressure pushes the wall outward: a radial body force
	// on the wall cells adjacent to the lumen (here: the lateral
	// boundary layer, directed outward per face).
	loadScale := s.traction / (rho * s.hx) // pressure → acceleration over one cell layer

	maxDisp, sumRadVel, radCount := 0.0, 0.0, 0
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				ax := s.navierCauchyX(i, j, k, lambda, mu) / rho
				ay := s.navierCauchyY(i, j, k, lambda, mu) / rho
				az := s.navierCauchyZ(i, j, k, lambda, mu) / rho

				// FSI load on the inner-wall cells.
				if s.Part.I0+i == 0 {
					ax -= loadScale
				}
				if s.Part.I0+i == s.Part.Grid.Mesh.NX-1 {
					ax += loadScale
				}
				if s.Part.J0+j == 0 {
					ay -= loadScale
				}
				if s.Part.J0+j == s.Part.Grid.Mesh.NY-1 {
					ay += loadScale
				}

				for c, f := range [3]*field.Field{s.UX, s.UY, s.UZ} {
					var acc float64
					var prev *field.Field
					switch c {
					case 0:
						acc, prev = ax, s.prevX
					case 1:
						acc, prev = ay, s.prevY
					default:
						acc, prev = az, s.prevZ
					}
					cur := f.At(i, j, k)
					old := prev.At(i, j, k)
					vel := (cur - old) / dt
					next := 2*cur - old + dt*dt*(acc-s.P.Damping*vel)
					switch c {
					case 0:
						nextX.Set(i, j, k, next)
					case 1:
						nextY.Set(i, j, k, next)
					default:
						nextZ.Set(i, j, k, next)
					}
				}

				dx, dy, dz := s.UX.At(i, j, k), s.UY.At(i, j, k), s.UZ.At(i, j, k)
				if d := math.Sqrt(dx*dx + dy*dy + dz*dz); d > maxDisp {
					maxDisp = d
				}
				// Outward radial velocity on wall-adjacent cells
				// (x faces as proxy): outward is −x on the low wall
				// and +x on the high wall, so the signs align and a
				// uniform inflation reads as a positive mean.
				if s.Part.I0+i == 0 {
					sumRadVel -= (nextX.At(i, j, k) - s.prevX.At(i, j, k)) / (2 * dt)
					radCount++
				}
				if s.Part.I0+i == s.Part.Grid.Mesh.NX-1 {
					sumRadVel += (nextX.At(i, j, k) - s.prevX.At(i, j, k)) / (2 * dt)
					radCount++
				}
			}
		}
	}

	s.prevX, s.UX = s.UX, nextX
	s.prevY, s.UY = s.UY, nextY
	s.prevZ, s.UZ = s.UZ, nextZ

	cells := float64(s.UX.Interior())
	s.Comm.Charge(cells*StepFlopsPerCell, cells*StepBytesPerCell)

	globalCount := s.Comm.AllSum(float64(radCount))
	meanRad := 0.0
	if globalCount > 0 {
		meanRad = s.Comm.AllSum(sumRadVel) / globalCount
	}
	return StepStats{
		MaxDisplacement:    s.Comm.AllMax(maxDisp),
		MeanRadialVelocity: meanRad,
	}, nil
}

// navierCauchy[XYZ] evaluate μ∇²u_c + (λ+μ)·∂(∇·u)/∂c at (i, j, k).
func (s *Solver) navierCauchyX(i, j, k int, lambda, mu float64) float64 {
	lap := s.laplace(s.UX, i, j, k)
	// ∂/∂x (∇·u) via mixed central differences.
	ddiv := (s.div(i+1, j, k) - s.div(i-1, j, k)) / (2 * s.hx)
	return mu*lap + (lambda+mu)*ddiv
}

func (s *Solver) navierCauchyY(i, j, k int, lambda, mu float64) float64 {
	lap := s.laplace(s.UY, i, j, k)
	ddiv := (s.div(i, j+1, k) - s.div(i, j-1, k)) / (2 * s.hy)
	return mu*lap + (lambda+mu)*ddiv
}

func (s *Solver) navierCauchyZ(i, j, k int, lambda, mu float64) float64 {
	lap := s.laplace(s.UZ, i, j, k)
	ddiv := (s.div(i, j, k+1) - s.div(i, j, k-1)) / (2 * s.hz)
	return mu*lap + (lambda+mu)*ddiv
}

// div computes ∇·u at (i, j, k) with one-sided fallbacks at ghost
// distance (the divergence stencil may be asked one cell into the
// ghost layer by the mixed derivative).
func (s *Solver) div(i, j, k int) float64 {
	at := func(f *field.Field, i, j, k int) float64 {
		i = clamp(i, -1, f.NX)
		j = clamp(j, -1, f.NY)
		k = clamp(k, -1, f.NZ)
		return f.At(i, j, k)
	}
	return (at(s.UX, i+1, j, k)-at(s.UX, i-1, j, k))/(2*s.hx) +
		(at(s.UY, i, j+1, k)-at(s.UY, i, j-1, k))/(2*s.hy) +
		(at(s.UZ, i, j, k+1)-at(s.UZ, i, j, k-1))/(2*s.hz)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// laplace is the 7-point Laplacian at (i, j, k).
func (s *Solver) laplace(f *field.Field, i, j, k int) float64 {
	c := f.At(i, j, k)
	return (f.At(i-1, j, k)-2*c+f.At(i+1, j, k))/(s.hx*s.hx) +
		(f.At(i, j-1, k)-2*c+f.At(i, j+1, k))/(s.hy*s.hy) +
		(f.At(i, j, k-1)-2*c+f.At(i, j, k+1))/(s.hz*s.hz)
}
