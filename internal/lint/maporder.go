package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// newMapOrder flags map iteration whose effects depend on Go's
// randomized map order, inside the packages that feed serialization,
// fingerprinting, report rendering, or manifest/JSON encoding. The
// analyzer accepts the two honest idioms:
//
//   - order-insensitive bodies: writing into another map, delete,
//     integer counters, and fresh per-iteration locals;
//   - collect-then-sort: appending keys/values to a slice that is
//     passed to a sort/slices call later in the same function.
//
// Everything else — emitting output, float accumulation (rounding
// depends on order), last-writer-wins assignments, early returns —
// is a finding.
func newMapOrder(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "flag order-dependent map iteration in packages that feed serialized or rendered output",
	}
	a.Run = func(p *Pass) error {
		if !matchPkg(cfg.MapOrder, p.PkgPath) {
			return nil
		}
		for _, f := range p.Files {
			if p.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body != nil {
					checkFuncMapRanges(p, body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkFuncMapRanges examines every map range lexically inside one
// function body (nested function literals are visited separately by
// the caller's Inspect).
func checkFuncMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapExpr(p, rs.X) {
			return true
		}
		c := classifier{p: p, needSort: map[types.Object]token.Pos{}}
		c.stmts(rs.Body.List)
		if c.badPos.IsValid() {
			p.Reportf(rs.For, "iteration over map %s has order-dependent effects (%s at %s); sort the keys first, or //lint:allow maporder -- reason if the effect is provably order-free",
				exprString(rs.X), c.badWhat, p.Fset.Position(c.badPos))
			return true
		}
		for obj, pos := range c.needSort {
			if !sortedAfter(p, body, rs.End(), obj) {
				p.Reportf(rs.For, "slice %s collected from map %s is never sorted in this function; map order leaks into its element order (append at %s)",
					obj.Name(), exprString(rs.X), p.Fset.Position(pos))
			}
		}
		return true
	})
}

// classifier walks a map-range body deciding whether its effects are
// independent of iteration order.
type classifier struct {
	p *Pass
	// needSort maps slice variables appended to inside the loop to the
	// position of the first append.
	needSort map[types.Object]token.Pos
	badPos   token.Pos
	badWhat  string
}

func (c *classifier) bad(pos token.Pos, what string) {
	if !c.badPos.IsValid() {
		c.badPos, c.badWhat = pos, what
	}
}

func (c *classifier) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *classifier) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		// counters commute
	case *ast.DeclStmt:
		// fresh per-iteration locals
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			c.bad(s.Pos(), "goto out of the loop")
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isBuiltinDelete(c.p, call) {
			return
		}
		c.bad(s.Pos(), "a call with unknown effects")
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.stmts(s.Body.List)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			c.stmts(cc.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			c.stmts(cc.(*ast.CaseClause).Body)
		}
	case *ast.ForStmt:
		c.stmts(s.Body.List)
	case *ast.RangeStmt:
		if isMapExpr(c.p, s.X) {
			// A nested map range is classified (and reported) on its
			// own visit; for the outer loop it adds no new effects.
			return
		}
		c.stmts(s.Body.List)
	case *ast.ReturnStmt:
		c.bad(s.Pos(), "a return that exposes one arbitrary element")
	default:
		c.bad(s.Pos(), fmt.Sprintf("a %T statement", s))
	}
}

func (c *classifier) assign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		return // fresh per-iteration locals
	}
	if s.Tok != token.ASSIGN {
		// Compound assignment: integer accumulation commutes exactly;
		// float accumulation rounds differently per order, and string
		// concatenation is ordered by construction.
		for _, lhs := range s.Lhs {
			t := c.p.Info.TypeOf(lhs)
			if t == nil {
				c.bad(s.Pos(), "a compound assignment of unknown type")
				return
			}
			b, ok := t.Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsInteger == 0 {
				c.bad(s.Pos(), fmt.Sprintf("a %s accumulation whose result depends on iteration order", t))
				return
			}
		}
		return
	}
	// Plain assignment: writing into another map commutes (distinct
	// keys), and the collect-for-sorting append is deferred to the
	// post-loop sort check. Anything else is last-writer-wins.
	for i, lhs := range s.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok && isMapExpr(c.p, ix.X) {
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok && len(s.Lhs) == len(s.Rhs) {
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isAppendTo(c.p, call, id) {
				if obj := c.p.Info.Uses[id]; obj != nil {
					if _, seen := c.needSort[obj]; !seen {
						c.needSort[obj] = s.Pos()
					}
					continue
				}
			}
		}
		c.bad(s.Pos(), "a last-writer-wins assignment")
		return
	}
}

// isMapExpr reports whether e has map type.
func isMapExpr(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isBuiltinDelete reports whether call is the delete builtin.
func isBuiltinDelete(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "delete"
}

// isAppendTo reports whether call is append(id, ...).
func isAppendTo(p *Pass, call *ast.CallExpr, id *ast.Ident) bool {
	fid, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := p.Info.Uses[fid].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	return ok && p.Info.Uses[first] == p.Info.Uses[id] && p.Info.Uses[id] != nil
}

// sortedAfter reports whether, lexically after pos inside body, obj
// is passed into a call of the sort or slices package.
func sortedAfter(p *Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// exprString renders a short source form of e for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "value"
	}
}
