package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// newWireTag protects the schema-stamp contract: a struct that
// crosses the wire or the store must name its JSON encoding
// explicitly, so renaming a Go field (or adding one without a tag) is
// a reviewed schema change rather than a silent cache invalidation.
// Two rules:
//
//   - mixed tags (everywhere in the module): a struct that json-tags
//     some exported fields must tag them all — an untagged addition to
//     a tagged struct is the classic way a schema drifts;
//   - wire roots (configured): the named types, and every struct
//     reachable through their fields, must tag every exported field.
//     Reachability crosses package boundaries through the type
//     information of imported packages, and findings about foreign
//     structs are anchored at the root declaration so the //lint:allow
//     escape hatch stays local.
func newWireTag(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "wiretag",
		Doc:  "require explicit json tags on all exported fields of structs that cross the wire or the store",
	}
	a.Run = func(p *Pass) error {
		if matchPkg(cfg.WireMixed, p.PkgPath) {
			checkMixedTags(p)
		}
		checkWireRoots(cfg, p)
		return nil
	}
	return a
}

// checkMixedTags applies the mixed-tag rule to every struct declared
// in the package.
func checkMixedTags(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			var tagged, untagged []*ast.Field
			for _, fld := range st.Fields.List {
				if len(fld.Names) == 0 {
					continue // embedded: promoted encoding is its own contract
				}
				exported := false
				for _, name := range fld.Names {
					if name.IsExported() {
						exported = true
					}
				}
				if !exported {
					continue
				}
				if fieldHasJSONTag(fld) {
					tagged = append(tagged, fld)
				} else {
					untagged = append(untagged, fld)
				}
			}
			if len(tagged) > 0 {
				for _, fld := range untagged {
					p.Reportf(fld.Pos(), "field %s of %s has no json tag while sibling fields are tagged; tag every exported field so the wire schema is explicit",
						fld.Names[0].Name, ts.Name.Name)
				}
			}
			return true
		})
	}
}

// checkWireRoots walks the configured wire roots declared in this
// package and their reachable struct fields.
func checkWireRoots(cfg *Config, p *Pass) {
	prefix := p.PkgPath + "."
	var roots []string
	for _, r := range cfg.WireRoots {
		if name, ok := strings.CutPrefix(r, prefix); ok && !strings.Contains(name, ".") {
			roots = append(roots, name)
		}
	}
	if len(roots) == 0 {
		return
	}
	modCfg := &Config{Module: cfg.Module}
	for _, name := range roots {
		obj := p.Pkg.Scope().Lookup(name)
		if obj == nil {
			p.Reportf(p.Files[0].Pos(), "configured wire root %s%s does not exist in this package", prefix, name)
			continue
		}
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		seen := map[*types.Named]bool{}
		walkWireType(p, modCfg, tn.Type(), tn.Name(), obj.Pos(), seen)
	}
}

// walkWireType recursively checks one type reachable from a wire
// root. rootPos anchors findings about structs declared in other
// packages, so the suppression comment can live next to the root.
func walkWireType(p *Pass, mod *Config, t types.Type, rootName string, rootPos token.Pos, seen map[*types.Named]bool) {
	switch t := types.Unalias(t).(type) {
	case *types.Pointer:
		walkWireType(p, mod, t.Elem(), rootName, rootPos, seen)
	case *types.Slice:
		walkWireType(p, mod, t.Elem(), rootName, rootPos, seen)
	case *types.Array:
		walkWireType(p, mod, t.Elem(), rootName, rootPos, seen)
	case *types.Map:
		walkWireType(p, mod, t.Elem(), rootName, rootPos, seen)
	case *types.Struct:
		checkWireStruct(p, mod, t, "anonymous struct", nil, rootName, rootPos, seen)
	case *types.Named:
		if seen[t] {
			return
		}
		seen[t] = true
		pkg := t.Obj().Pkg()
		if pkg == nil || !mod.inModule(StripVariant(pkg.Path())) {
			return // types outside the module own their own encoding
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			checkWireStruct(p, mod, st, t.Obj().Name(), pkg, rootName, rootPos, seen)
		}
	}
}

// checkWireStruct checks one struct's fields and recurses into their
// types. declPkg is nil for anonymous structs.
func checkWireStruct(p *Pass, mod *Config, st *types.Struct, name string, declPkg *types.Package, rootName string, rootPos token.Pos, seen map[*types.Named]bool) {
	local := declPkg == nil || StripVariant(declPkg.Path()) == p.PkgPath
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		tag, hasTag := reflect.StructTag(st.Tag(i)).Lookup("json")
		if fld.Exported() && !fld.Embedded() && !hasTag {
			if local {
				p.Reportf(fld.Pos(), "exported field %s of %s has no json tag, but %s crosses the wire or the store (reached from wire root %s); name the encoding explicitly",
					fld.Name(), name, name, rootName)
			} else {
				p.Reportf(rootPos, "wire root %s reaches %s.%s whose exported field %s has no json tag (%s); name the encoding explicitly",
					rootName, declPkg.Name(), name, fld.Name(), p.Fset.Position(fld.Pos()))
			}
		}
		if hasTag && tagName(tag) == "-" {
			continue // explicitly off the wire; its type is not schema
		}
		walkWireType(p, mod, fld.Type(), rootName, rootPos, seen)
	}
}

// tagName extracts the name part of a json tag.
func tagName(tag string) string {
	if i := strings.IndexByte(tag, ','); i >= 0 {
		return tag[:i]
	}
	return tag
}

// fieldHasJSONTag reports whether an AST field carries a json tag.
func fieldHasJSONTag(fld *ast.Field) bool {
	if fld.Tag == nil {
		return false
	}
	// Tag literal includes the quotes.
	raw := strings.Trim(fld.Tag.Value, "`")
	_, ok := reflect.StructTag(raw).Lookup("json")
	return ok
}
