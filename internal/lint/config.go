package lint

// Config names the packages each invariant governs. Paths are import
// paths; a trailing "/..." matches the package and everything under
// it. The zero config checks nothing; DefaultConfig knows this
// repository's layout, and tests construct fixture-relative configs.
type Config struct {
	// Module is the module path; packages outside it are never
	// analyzed (their behaviour is visible only through the hardwired
	// knowledge in the analyzers, e.g. that sync.Mutex.Lock blocks).
	Module string

	// Wallclock lists the determinism-critical packages where real
	// time (time.Now, time.Sleep, timers) is forbidden: anything whose
	// output feeds figures, fingerprints, or the virtual clock.
	Wallclock []string

	// MapOrder lists the packages whose results feed serialization,
	// fingerprinting, report rendering, or manifest/JSON encoding:
	// map iteration there must be order-insensitive or sorted.
	MapOrder []string

	// RandSource lists the packages (tests included) where the global
	// math/rand source is forbidden in favour of explicitly seeded
	// *rand.Rand values.
	RandSource []string

	// KernelPure lists the packages whose code runs on simulated-rank
	// context and therefore may never touch raw goroutines, channels,
	// select, or blocking sync primitives — only vtime primitives.
	// The vtime kernel itself is deliberately absent: it is the one
	// place that implements those primitives with real ones.
	KernelPure []string

	// KernelEntries name the functions that accept a rank body and
	// hand it to the kernel ("pkg/path.Func" or "pkg/path.Type.Method").
	// Function-typed arguments at their call sites must be free of
	// raw-concurrency taint.
	KernelEntries []string

	// KernelImpl lists the packages that implement the kernel's
	// primitives: calls into them are the sanctioned way to block, so
	// they carry no taint, and their own bodies are not inspected —
	// the kernel is built out of the very primitives it forbids its
	// clients.
	KernelImpl []string

	// WireRoots name struct types ("pkg/path.Type") that cross the
	// wire or the store; they and every struct reachable from their
	// fields must json-tag all exported fields.
	WireRoots []string

	// WireMixed lists the packages where the mixed-tag rule applies:
	// a struct with at least one json-tagged exported field must tag
	// all of them (an untagged addition is a silent schema change).
	WireMixed []string
}

// DefaultConfig is the repository's own policy.
func DefaultConfig() *Config {
	// The determinism-critical core: the kernel and its clients, the
	// physics, and everything between a cell's identity and its bytes
	// on disk.
	critical := []string{
		"repro/internal/vtime",
		"repro/internal/mpi",
		"repro/internal/omp",
		"repro/internal/fabric",
		"repro/internal/experiments",
		"repro/internal/scenario",
		"repro/internal/core",
		"repro/internal/alya",
		"repro/internal/krylov",
		"repro/internal/navier",
		"repro/internal/solid",
		"repro/internal/mesh",
		"repro/internal/field",
		"repro/internal/linalg",
		"repro/internal/resultdb",
		// telemetry's trace sink runs inside the kernel's callbacks; its
		// host-side Progress reporter samples the wall clock only under
		// explicit //lint:allow wallclock escapes.
		"repro/internal/telemetry",
		// registry carries lease deadlines, heartbeat cadence, and retry
		// backoff — operational wall time that must stay behind explicit
		// //lint:allow wallclock escapes so it can never leak into
		// simulated results. The chaostest subpackage (exact match only)
		// stays out: fault injection is wall time by design.
		"repro/internal/registry",
		// profile attributes virtual time from kernel trace events; any
		// wall-clock read there would corrupt the attribution.
		"repro/internal/profile",
		// fleettrace reconstructs timelines purely from journal bytes;
		// reading the wall clock there would break byte-determinism.
		"repro/internal/fleettrace",
	}
	return &Config{
		Module:    "repro",
		Wallclock: critical,
		MapOrder: []string{
			"repro",
			"repro/internal/core",
			"repro/internal/resultdb",
			"repro/internal/report",
			"repro/internal/scenario",
			"repro/internal/registry",
			"repro/internal/experiments",
			"repro/internal/metrics",
			"repro/internal/telemetry",
			"repro/internal/trace",
			"repro/internal/profile",
			"repro/internal/fleettrace",
			"repro/cmd/...",
		},
		RandSource: []string{"repro/..."},
		KernelPure: []string{
			"repro/internal/mpi",
			"repro/internal/alya",
		},
		KernelEntries: []string{
			"repro/internal/mpi.Run",
			"repro/internal/vtime.Scheduler.Run",
		},
		KernelImpl: []string{"repro/internal/vtime"},
		WireRoots: []string{
			"repro/internal/core.SavedResult",
			"repro/internal/core.canonCell",
			"repro/internal/resultdb.record",
			"repro/internal/registry.wireRecord",
			"repro/internal/registry.wireError",
			"repro/internal/registry.wireSchema",
			"repro/internal/registry.wireManifest",
			"repro/internal/registry.wireClaimRequest",
			"repro/internal/registry.wireClaim",
			"repro/internal/registry.wireLeaseRequest",
			"repro/internal/registry.WorkStatus",
			"repro/internal/registry.FleetStatus",
			"repro/internal/profile.CellProfile",
			"repro/internal/profile.DiffReport",
			"repro/internal/scenario.Spec",
			"repro/internal/telemetry.chromeTrace",
			"repro/internal/telemetry.FleetEvent",
			"repro/internal/fleettrace.Run",
			"repro/internal/fleettrace.chromeFleetTrace",
			"repro/internal/fleettrace.WorkerAttribution",
			"repro/internal/fleettrace.AttribDiff",
		},
		WireMixed: []string{"repro/..."},
	}
}

// matchPkg reports whether path matches any pattern: exact, or a
// "prefix/..." subtree (which also matches the prefix itself).
func matchPkg(patterns []string, path string) bool {
	for _, pat := range patterns {
		if pat == path {
			return true
		}
		if prefix, ok := cutSuffix(pat, "/..."); ok {
			if path == prefix || (len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/') {
				return true
			}
		}
	}
	return false
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

// inModule reports whether a (variant-stripped) package path belongs
// to the configured module.
func (c *Config) inModule(path string) bool {
	return path == c.Module || (len(path) > len(c.Module) && path[:len(c.Module)] == c.Module && path[len(c.Module)] == '/')
}
