package lint

// This file is the driver: it speaks cmd/go's vet tool protocol, so
// the suite runs as `go vet -vettool=$(which repolint) ./...`, and it
// implements the standalone `repolint ./...` mode by re-execing go
// vet against itself. The protocol (reconstructed from cmd/go's
// internal/work and internal/vet sources) has three entry shapes:
//
//	tool -V=full        print "<name> version devel ... buildID=<id>"
//	tool -flags         print a JSON array of supported flags
//	tool <flags> x.cfg  analyze one compilation unit
//
// The .cfg file is JSON describing one package: its files, the export
// data of its dependencies (PackageFile, via ImportMap), and the fact
// files (.vetx) of already-vetted dependencies. Dependencies are
// vetted first with VetxOnly=true so their facts exist before their
// importers run; the tool must always write VetxOutput, even for
// packages it has nothing to say about.

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// unitConfig mirrors the JSON vet.cfg written by cmd/go for each
// compilation unit. Field names are the protocol; do not rename.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// Main runs the repolint command line and exits.
func Main() {
	os.Exit(Run(os.Args[1:]))
}

// Run executes one repolint invocation and returns its exit code:
// 0 clean, 1 operational failure, 2 findings.
func Run(args []string) int {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return 0
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		printFlags()
		return 0
	}

	cfg := DefaultConfig()
	all := Analyzers(cfg)

	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: repolint [-<analyzer>]... [packages]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(command -v repolint) [packages]\n\nanalyzers:\n")
		for _, a := range all {
			if a.Name != allowName {
				fmt.Fprintf(fs.Output(), "  -%-12s %s\n", a.Name, a.Doc)
			}
		}
	}
	selected := map[string]*bool{}
	for _, a := range all {
		if a.Name == allowName {
			continue // directive hygiene is not optional
		}
		selected[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 1
	}
	rest := fs.Args()

	enabled := all
	if anySelected(selected) {
		enabled = enabled[:0]
		for _, a := range all {
			if a.Name == allowName || *selected[a.Name] {
				enabled = append(enabled, a)
			}
		}
	}

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(cfg, enabled, rest[0])
	}
	return runStandalone(selected, rest)
}

func anySelected(sel map[string]*bool) bool {
	for _, b := range sel {
		if *b {
			return true
		}
	}
	return false
}

// printVersion answers cmd/go's -V=full probe. The buildID is a hash
// of the tool binary itself, so editing an analyzer invalidates
// cmd/go's vet result cache.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = hex.EncodeToString(h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Printf("repolint version devel comments-go-here buildID=%s\n", id)
}

// printFlags answers cmd/go's -flags probe with the flags the tool
// accepts, in the JSON shape cmd/vet/internal expects.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range Analyzers(DefaultConfig()) {
		if a.Name == allowName {
			continue
		}
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	sort.Slice(flags, func(i, j int) bool { return flags[i].Name < flags[j].Name })
	data, _ := json.Marshal(flags)
	fmt.Println(string(data))
}

// runStandalone re-execs go vet with this binary as the vettool, so
// the standalone and vet-driven paths cannot drift apart.
func runStandalone(selected map[string]*bool, patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: cannot locate own binary: %v\n", err)
		return 1
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	var names []string
	for name, b := range selected {
		if *b {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		vetArgs = append(vetArgs, "-"+name)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "repolint: running go vet: %v\n", err)
		return 1
	}
	return 0
}

// runUnit analyzes one compilation unit described by a vet.cfg file.
func runUnit(cfg *Config, analyzers []*Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	var u unitConfig
	if err := json.Unmarshal(data, &u); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	pkgPath := StripVariant(u.ImportPath)
	// Packages outside the module (the standard library and, in
	// fixtures, any third-party code) and the synthesized ".test" main
	// packages are never analyzed: what the suite needs to know about
	// std behaviour (that sync.Mutex.Lock blocks, that time.Now is
	// wall time) is knowledge hardwired in the analyzers, not derived
	// facts. The driver still owes cmd/go a facts file.
	if !cfg.inModule(pkgPath) || strings.HasSuffix(pkgPath, ".test") {
		if err := writeVetx(u.VetxOutput, PkgFacts{}); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range u.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(u.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if u.SucceedOnTypecheckFailure {
				writeVetx(u.VetxOutput, PkgFacts{})
				return 0
			}
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := u.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := u.ImportMap[path]; ok {
			path = canon
		}
		file, ok := u.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("repolint: no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: u.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tconf.Check(u.ImportPath, fset, files, info)
	if err != nil {
		if u.SucceedOnTypecheckFailure {
			writeVetx(u.VetxOutput, PkgFacts{})
			return 0
		}
		fmt.Fprintf(os.Stderr, "repolint: typechecking %s: %v\n", u.ImportPath, err)
		return 1
	}

	facts := NewFactStore(nil)
	for path, vetxFile := range u.PackageVetx {
		pf, err := readVetx(vetxFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: reading facts of %s: %v\n", path, err)
			return 1
		}
		facts.AddImported(StripVariant(path), pf)
	}

	pass := Pass{
		Fset:    fset,
		Files:   files,
		PkgPath: pkgPath,
		Pkg:     pkg,
		Info:    info,
		Cfg:     cfg,
		Facts:   facts,
	}
	diags, err := RunAnalyzers(analyzers, pass)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	if err := writeVetx(u.VetxOutput, facts.Out()); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	if u.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Check)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeVetx serializes one package's exported facts.
func writeVetx(path string, facts PkgFacts) error {
	if path == "" {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(facts); err != nil {
		return fmt.Errorf("encoding facts: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}

// readVetx loads a dependency's facts file. An empty file means the
// dependency exported nothing.
func readVetx(path string) (PkgFacts, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return PkgFacts{}, nil
	}
	var facts PkgFacts
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&facts); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return facts, nil
}
