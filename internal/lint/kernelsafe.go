package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// kernelsafeName is referenced by fact import/export.
const kernelsafeName = "kernelsafe"

// A taintOp is one reason a function is unsafe on rank context: a raw
// concurrency operation it performs or (transitively) reaches. The
// fields are exported for gob.
type taintOp struct {
	// What names the operation ("go statement", "sync.Mutex.Lock").
	What string
	// Pos is the operation's position, rendered to a string so it
	// survives fact serialization across compilation units.
	Pos string
	// Via is the call chain from the function to the operation.
	Via []string
}

// syncBlockers are the sync package methods that park the calling
// goroutine for real: on rank context they deadlock the virtual clock
// (every runnable rank is one goroutine the scheduler hands off to
// exactly once) or corrupt it by waiting in wall time.
var syncBlockers = map[string]string{
	"Mutex.Lock":     "sync.Mutex.Lock",
	"RWMutex.Lock":   "sync.RWMutex.Lock",
	"RWMutex.RLock":  "sync.RWMutex.RLock",
	"WaitGroup.Wait": "sync.WaitGroup.Wait",
	"Cond.Wait":      "sync.Cond.Wait",
}

// newKernelSafe enforces the kernel's execution contract: code that
// runs on a simulated rank (a function passed to a kernel entry
// point, and everything it statically reaches) must synchronize only
// through vtime primitives — raw go statements, channel operations,
// select, and blocking sync calls either deadlock the single-threaded
// virtual-time scheduler or introduce real-time ordering into
// simulated results. Taint is computed bottom-up over the static call
// graph and carried across package boundaries as facts.
func newKernelSafe(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: kernelsafeName,
		Doc:  "forbid raw go/channels/select/blocking sync in rank bodies and everything they reach; only vtime primitives may block",
	}
	a.Run = func(p *Pass) error { return runKernelSafe(cfg, p) }
	return a
}

// funcEntry is the per-function analysis state.
type funcEntry struct {
	name  string      // for Via chains
	obj   *types.Func // nil for literals
	ops   []directOp  // raw operations performed by this body
	calls []callEdge
	taint []taintOp // after propagation
}

// directOp pairs a taint op with its in-package position, which stays
// a token.Pos until the op crosses a package boundary as a fact.
type directOp struct {
	op taintOp
	at token.Pos
}

type callEdge struct {
	local   *funcEntry // same-package callee
	pkgPath string     // cross-package callee
	key     string
	name    string // display name for Via
	pos     token.Pos
}

const maxTaintOps = 3

func runKernelSafe(cfg *Config, p *Pass) error {
	if matchPkg(cfg.KernelImpl, p.PkgPath) {
		return nil // the kernel implements the primitives; exempt
	}

	// Pass 1: collect one entry per function declaration and literal.
	entries := map[ast.Node]*funcEntry{}
	byObj := map[*types.Func]*funcEntry{}
	var order []*funcEntry
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				e := &funcEntry{name: fn.Name.Name}
				if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
					e.obj = obj
					e.name = FuncKey(obj)
					byObj[obj] = e
				}
				entries[n] = e
				order = append(order, e)
			case *ast.FuncLit:
				e := &funcEntry{name: "func literal at " + p.Fset.Position(fn.Pos()).String()}
				entries[n] = e
				order = append(order, e)
			}
			return true
		})
	}

	// Pass 2: direct operations and call edges, literals excluded
	// from their enclosing function's walk.
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			e, owns := entries[n]
			if !owns {
				return true
			}
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				collectOps(cfg, p, e, body, entries, byObj)
			}
			return true
		})
	}

	// Pass 3: propagate taint to a fixpoint over the package call
	// graph; cross-package edges resolve through imported facts.
	for _, e := range order {
		for _, d := range e.ops {
			e.taint = append(e.taint, d.op)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range order {
			for _, edge := range e.calls {
				var inherited []taintOp
				if edge.local != nil {
					inherited = edge.local.taint
				} else {
					var ops []taintOp
					if p.Facts.Import(kernelsafeName, edge.pkgPath, edge.key, &ops) {
						inherited = ops
					}
				}
				for _, op := range inherited {
					if addTaint(e, op, edge.name) {
						changed = true
					}
				}
			}
		}
	}

	// Export facts for named functions so importers inherit.
	for _, e := range order {
		if e.obj != nil && len(e.taint) > 0 {
			if err := p.Facts.Export(kernelsafeName, FuncKey(e.obj), e.taint); err != nil {
				return err
			}
		}
	}

	// Report 1: kernel-proc packages may not contain raw operations at
	// all — every line of them can run on rank context.
	if matchPkg(cfg.KernelPure, p.PkgPath) {
		for _, e := range order {
			for _, d := range e.ops {
				p.Reportf(d.at, "%s in kernel-proc package %s; code here runs on simulated ranks and may only block through vtime primitives",
					d.op.What, p.PkgPath)
			}
		}
	}

	// Report 2: function values handed to kernel entry points must be
	// taint-free wherever the call appears.
	entrySet := map[string]bool{}
	for _, e := range cfg.KernelEntries {
		entrySet[e] = true
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(p, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if !entrySet[callee.Pkg().Path()+"."+FuncKey(callee)] {
				return true
			}
			for _, arg := range call.Args {
				t := p.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if _, isFunc := t.Underlying().(*types.Signature); !isFunc {
					continue
				}
				taint := argTaint(p, arg, entries, byObj)
				if len(taint) == 0 {
					continue
				}
				op := taint[0]
				p.Reportf(arg.Pos(), "rank body passed to %s.%s reaches %s at %s%s; rank bodies may only block through vtime primitives",
					callee.Pkg().Name(), FuncKey(callee), op.What, op.Pos, viaString(op.Via))
			}
			return true
		})
	}
	return nil
}

// collectOps walks one function body recording raw operations and
// resolvable call edges; nested function literals are skipped (they
// have entries of their own).
func collectOps(cfg *Config, p *Pass, e *funcEntry, body *ast.BlockStmt, entries map[ast.Node]*funcEntry, byObj map[*types.Func]*funcEntry) {
	add := func(n ast.Node, what string) {
		e.ops = append(e.ops, directOp{op: taintOp{What: what, Pos: p.Fset.Position(n.Pos()).String()}, at: n.Pos()})
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			add(n, "go statement")
		case *ast.SendStmt:
			add(n, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(n, "channel receive")
			}
		case *ast.SelectStmt:
			add(n, "select statement")
			// The comm clauses' channel operations are implied by the
			// select; only the case bodies can add new operations.
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, walk)
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					add(n, "range over channel")
				}
			}
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately invoked literal: its body runs here.
				if callee := entries[lit]; callee != nil {
					e.calls = append(e.calls, callEdge{local: callee, name: callee.name, pos: n.Pos()})
				}
				return true
			}
			fn := calleeFunc(p, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			key := FuncKey(fn)
			switch path := fn.Pkg().Path(); {
			case path == "sync":
				if what, bad := syncBlockers[key]; bad {
					add(n, what)
				}
			case path == "time" && key == "Sleep":
				add(n, "time.Sleep")
			case path == StripVariant(p.Pkg.Path()) || path == p.Pkg.Path():
				if callee := byObj[fn]; callee != nil {
					e.calls = append(e.calls, callEdge{local: callee, name: key, pos: n.Pos()})
				}
			case matchPkg(cfg.KernelImpl, path):
				// vtime primitives: the sanctioned way to block.
			case (&Config{Module: cfg.Module}).inModule(path):
				e.calls = append(e.calls, callEdge{pkgPath: path, key: key, name: path + "." + key, pos: n.Pos()})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// addTaint merges one inherited op into e, reporting whether it was
// new. The op count is capped: three witnesses are plenty.
func addTaint(e *funcEntry, op taintOp, via string) bool {
	if len(e.taint) >= maxTaintOps {
		return false
	}
	chained := taintOp{What: op.What, Pos: op.Pos, Via: append([]string{via}, op.Via...)}
	if len(chained.Via) > 4 {
		chained.Via = append(chained.Via[:4], "…")
	}
	for _, have := range e.taint {
		if have.What == chained.What && have.Pos == chained.Pos {
			return false
		}
	}
	e.taint = append(e.taint, chained)
	return true
}

// calleeFunc resolves a call's static callee, if it is a named
// function or method.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// argTaint resolves the taint of a function-valued argument.
func argTaint(p *Pass, arg ast.Expr, entries map[ast.Node]*funcEntry, byObj map[*types.Func]*funcEntry) []taintOp {
	switch arg := arg.(type) {
	case *ast.FuncLit:
		if e := entries[arg]; e != nil {
			return e.taint
		}
	case *ast.Ident, *ast.SelectorExpr:
		var fn *types.Func
		if id, ok := arg.(*ast.Ident); ok {
			fn, _ = p.Info.Uses[id].(*types.Func)
		} else {
			fn, _ = p.Info.Uses[arg.(*ast.SelectorExpr).Sel].(*types.Func)
		}
		if fn == nil || fn.Pkg() == nil {
			return nil
		}
		if e := byObj[fn]; e != nil {
			return e.taint
		}
		var ops []taintOp
		if p.Facts.Import(kernelsafeName, fn.Pkg().Path(), FuncKey(fn), &ops) {
			return ops
		}
	}
	return nil
}

// viaString renders a call chain suffix.
func viaString(via []string) string {
	if len(via) == 0 {
		return ""
	}
	return " (via " + strings.Join(via, " → ") + ")"
}
