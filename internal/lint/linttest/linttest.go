// Package linttest runs the lint suite over small fixture packages
// and checks findings against // want annotations, in the spirit of
// golang.org/x/tools' analysistest but built purely on the standard
// library (this module vendors nothing).
//
// Fixtures live in a GOPATH-style tree: dir/src/<import path>/*.go.
// An expectation is written at the end of the offending line as
//
//	x := time.Now() // want `time\.Now reads the wall clock`
//
// with one back-quoted regexp per expected finding. Every finding in
// the target package must match a want on its line, and every want
// must be matched — both directions are errors.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// A Result is one analyzed fixture package.
type Result struct {
	Fset  *token.FileSet
	Files []*ast.File
	Diags []lint.Diagnostic
	// Dir is the package's source directory.
	Dir string
}

// loader resolves fixture imports from the testdata tree, falling
// back to compiling the standard library from source (the importer
// works offline against GOROOT, which gc export-data lookup does
// not).
type loader struct {
	t        *testing.T
	testdata string
	cfg      *lint.Config
	fset     *token.FileSet
	std      types.ImporterFrom
	pkgs     map[string]*types.Package
	results  map[string]*Result
	facts    map[string]lint.PkgFacts
}

// Run loads the fixture package at import path target (and,
// recursively, its fixture dependencies, whose analyzer facts flow
// into the target) and returns the target's findings.
func Run(t *testing.T, testdata string, cfg *lint.Config, target string) *Result {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		t:        t,
		testdata: testdata,
		cfg:      cfg,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:     map[string]*types.Package{},
		results:  map[string]*Result{},
		facts:    map[string]lint.PkgFacts{},
	}
	ld.load(target)
	return ld.results[target]
}

// Check compares the result's findings against its // want
// annotations.
func Check(t *testing.T, res *Result) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range res.Files {
		name := res.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for i, text := range strings.Split(string(data), "\n") {
			_, spec, ok := strings.Cut(text, "// want ")
			if !ok {
				continue
			}
			k := key{name, i + 1}
			for _, m := range regexp.MustCompile("`([^`]*)`").FindAllStringSubmatch(spec, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
				}
				wants[k] = append(wants[k], re)
			}
			if len(wants[k]) == 0 {
				t.Errorf("%s:%d: // want with no back-quoted regexps", name, i+1)
			}
		}
	}
	for _, d := range res.Diags {
		pos := res.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected finding [%s]: %s", pos, d.Check, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	var keys []key
	for k, res := range wants {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i].file < keys[j].file || (keys[i].file == keys[j].file && keys[i].line < keys[j].line)
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
		}
	}
}

// RunAndCheck is the common case.
func RunAndCheck(t *testing.T, testdata string, cfg *lint.Config, target string) {
	t.Helper()
	Check(t, Run(t, testdata, cfg, target))
}

func (ld *loader) load(path string) *types.Package {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg
	}
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("linttest: reading fixture %s: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.t.Fatalf("linttest: fixture %s has no Go files", path)
	}
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if fi, err := os.Stat(filepath.Join(ld.testdata, "src", filepath.FromSlash(p))); err == nil && fi.IsDir() {
				return ld.load(p), nil
			}
			return ld.std.ImportFrom(p, "", 0)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("linttest: typechecking %s: %v", path, err)
	}
	ld.pkgs[path] = pkg

	store := lint.NewFactStore(nil)
	for depPath, facts := range ld.facts {
		store.AddImported(depPath, facts)
	}
	diags, err := lint.RunAnalyzers(lint.Analyzers(ld.cfg), lint.Pass{
		Fset:    ld.fset,
		Files:   files,
		PkgPath: path,
		Pkg:     pkg,
		Info:    info,
		Cfg:     ld.cfg,
		Facts:   store,
	})
	if err != nil {
		ld.t.Fatalf("linttest: analyzing %s: %v", path, err)
	}
	ld.facts[path] = store.Out()
	ld.results[path] = &Result{Fset: ld.fset, Files: files, Diags: diags, Dir: dir}
	return pkg
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
