package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// fixCfg maps the fixture tree under testdata/src onto the suite's
// configuration knobs, mirroring how DefaultConfig maps the real
// repository.
func fixCfg() *lint.Config {
	return &lint.Config{
		Module:        "fix",
		Wallclock:     []string{"fix/wall", "fix/allowck"},
		MapOrder:      []string{"fix/maps"},
		RandSource:    []string{"fix/rnd"},
		KernelPure:    []string{"fix/pure"},
		KernelEntries: []string{"fix/kern.Run"},
		KernelImpl:    []string{"fix/vt"},
		WireRoots:     []string{"fix/wire.Root", "fix/wire.Quiet"},
		WireMixed:     []string{"fix/..."},
	}
}

func TestWallclock(t *testing.T) {
	linttest.RunAndCheck(t, "testdata", fixCfg(), "fix/wall")
}

func TestMapOrder(t *testing.T) {
	linttest.RunAndCheck(t, "testdata", fixCfg(), "fix/maps")
}

func TestRandSource(t *testing.T) {
	linttest.RunAndCheck(t, "testdata", fixCfg(), "fix/rnd")
}

func TestKernelSafePurePackage(t *testing.T) {
	linttest.RunAndCheck(t, "testdata", fixCfg(), "fix/pure")
}

func TestKernelSafeEntryCallSites(t *testing.T) {
	linttest.RunAndCheck(t, "testdata", fixCfg(), "fix/body")
}

func TestWireTag(t *testing.T) {
	linttest.RunAndCheck(t, "testdata", fixCfg(), "fix/wire")
}

// TestLintAllowHygiene asserts directly on the findings: the expected
// diagnostics land on the directive lines themselves, where a
// trailing // want comment cannot syntactically follow.
func TestLintAllowHygiene(t *testing.T) {
	res := linttest.Run(t, "testdata", fixCfg(), "fix/allowck")
	want := []string{
		"lint:allow suppression needs a justification",
		"time.Now reads the wall clock", // the reasonless allow suppressed nothing
		`lint:allow names unknown analyzer "wallhack"`,
		"lint:allow names no analyzer",
	}
	for _, w := range want {
		found := false
		for _, d := range res.Diags {
			if strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected a finding containing %q; got %d findings:", w, len(res.Diags))
			for _, d := range res.Diags {
				t.Logf("  %s: %s [%s]", res.Fset.Position(d.Pos), d.Message, d.Check)
			}
		}
	}
	if len(res.Diags) != len(want) {
		t.Errorf("got %d findings, want %d", len(res.Diags), len(want))
		for _, d := range res.Diags {
			t.Logf("  %s: %s [%s]", res.Fset.Position(d.Pos), d.Message, d.Check)
		}
	}
}
