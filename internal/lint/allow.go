package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowName is the meta-analyzer validating //lint:allow directives.
const allowName = "lintallow"

const allowPrefix = "lint:allow"

// An allowIndex records which analyzers are suppressed on which lines
// of which files: file name → line → analyzer name set.
type allowIndex map[string]map[int]map[string]bool

// covers reports whether the diagnostic position carries an allow for
// the named check.
func (idx allowIndex) covers(fset *token.FileSet, pos token.Pos, check string) bool {
	p := fset.Position(pos)
	return idx[p.Filename][p.Line][check]
}

// parseAllows scans every comment for //lint:allow directives,
// building the suppression index. A directive covers its own line
// (trailing comments) and the line below it (standalone comments
// above the code they excuse). Malformed directives — no analyzer
// name, an unknown analyzer name, or a missing "-- reason" — are
// reported through report when it is non-nil; known may be nil to
// skip name validation.
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(pos token.Pos, msg string)) allowIndex {
	idx := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are not directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ',' {
					continue // e.g. lint:allowance — not this directive
				}
				names, reason, hasReason := cutReason(rest)
				if len(names) == 0 {
					if report != nil {
						report(c.Pos(), "lint:allow names no analyzer; write //lint:allow <analyzer> -- <reason>")
					}
					continue
				}
				bad := false
				for _, n := range names {
					if known != nil && !known[n] {
						if report != nil {
							report(c.Pos(), "lint:allow names unknown analyzer \""+n+"\"")
						}
						bad = true
					}
				}
				if !hasReason || reason == "" {
					if report != nil {
						report(c.Pos(), "lint:allow suppression needs a justification; write //lint:allow "+strings.Join(names, ",")+" -- <reason>")
					}
					continue
				}
				if bad {
					continue
				}
				file := fset.Position(c.Pos()).Filename
				line := fset.Position(c.End()).Line
				if idx[file] == nil {
					idx[file] = map[int]map[string]bool{}
				}
				for _, l := range []int{line, line + 1} {
					if idx[file][l] == nil {
						idx[file][l] = map[string]bool{}
					}
					for _, n := range names {
						idx[file][l][n] = true
					}
				}
			}
		}
	}
	return idx
}

// cutReason splits a directive body into analyzer names and the
// justification after the first " -- " separator.
func cutReason(rest string) (names []string, reason string, hasReason bool) {
	namePart := rest
	if i := strings.Index(rest, "--"); i >= 0 {
		namePart, reason, hasReason = rest[:i], strings.TrimSpace(rest[i+2:]), true
	}
	names = strings.FieldsFunc(namePart, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	return names, reason, hasReason
}

// newAllowAnalyzer validates the suppression syntax itself, so a
// directive that silently fails to suppress (typo'd analyzer name,
// missing reason) is a finding rather than a mystery.
func newAllowAnalyzer(known map[string]bool) *Analyzer {
	a := &Analyzer{
		Name: allowName,
		Doc:  "check //lint:allow directives: known analyzer names and a mandatory -- reason",
	}
	a.Run = func(p *Pass) error {
		parseAllows(p.Fset, p.Files, known, func(pos token.Pos, msg string) {
			p.Reportf(pos, "%s", msg)
		})
		return nil
	}
	return a
}
