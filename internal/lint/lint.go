// Package lint is a static-analysis suite that mechanically enforces
// the simulator's determinism and kernel invariants: simulated time
// flows only through internal/vtime (wallclock), map iteration never
// feeds ordered output unsorted (maporder), randomness is always
// explicitly seeded (randsource), rank bodies never touch real
// synchronization (kernelsafe), and every struct that crosses the
// wire or the store carries explicit json tags (wiretag).
//
// The suite is built directly on go/ast and go/types — no external
// analysis framework — and is driven either standalone or as a
// `go vet -vettool` via the unit-checker protocol in unit.go. A
// finding that is a deliberate exception is silenced in place with
//
//	//lint:allow <analyzer> -- reason
//
// where the reason is mandatory; an allow without one is itself a
// diagnostic (see allow.go).
package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the check's identifier: its CLI flag, the name used in
	// //lint:allow directives, and the tag printed after findings.
	Name string
	// Doc is the one-line description shown in -flags and usage.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Check names the analyzer that produced it.
	Check string
	// Message states the violation and the remedy.
	Message string
}

// A Pass holds everything an analyzer sees of one package: its parsed
// files, type information, the suite configuration, and the fact
// store carrying results across package boundaries.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// PkgPath is the import path with any " [test]" variant suffix
	// stripped, so configuration globs match both variants.
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info
	Cfg     *Config
	Facts   *FactStore

	report func(Diagnostic)
}

// Reportf records one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Check: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether f is a _test.go file. Most checks skip
// test files — tests legitimately instrument the kernel and measure
// wall time — but randsource holds tests to the same bar as the
// simulator, since an unseeded test is as irreproducible as an
// unseeded model.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Analyzers returns the full suite configured by cfg, in the order
// they run. Fact-producing analyzers appear before their consumers.
func Analyzers(cfg *Config) []*Analyzer {
	all := []*Analyzer{
		newWallclock(cfg),
		newMapOrder(cfg),
		newRandSource(cfg),
		newKernelSafe(cfg),
		newWireTag(cfg),
	}
	names := make(map[string]bool, len(all)+1)
	for _, a := range all {
		names[a.Name] = true
	}
	names[allowName] = true
	return append(all, newAllowAnalyzer(names))
}

// RunAnalyzers applies the given analyzers to one package pass
// template and returns the surviving diagnostics: findings on lines
// carrying a well-formed //lint:allow for the reporting analyzer are
// filtered out here, so suppression behaves identically under every
// driver (vet protocol, standalone, linttest).
func RunAnalyzers(analyzers []*Analyzer, tmpl Pass) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := tmpl
		pass.Analyzer = a
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(&pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, tmpl.PkgPath, err)
		}
	}
	allows := parseAllows(tmpl.Fset, tmpl.Files, nil, nil)
	kept := diags[:0]
	for _, d := range diags {
		if d.Check != allowName && allows.covers(tmpl.Fset, d.Pos, d.Check) {
			continue
		}
		kept = append(kept, d)
	}
	return kept, nil
}

// A FactStore carries analyzer facts across package boundaries. Facts
// are keyed by (package path, analyzer, object key) and gob-encoded,
// so they serialize into the vet driver's .vetx files unchanged.
type FactStore struct {
	imported map[string]PkgFacts
	out      PkgFacts
}

// PkgFacts is one package's exported facts: analyzer → object key →
// gob payload.
type PkgFacts map[string]map[string][]byte

// NewFactStore returns a store over the given imported facts (may be
// nil).
func NewFactStore(imported map[string]PkgFacts) *FactStore {
	return &FactStore{imported: imported, out: PkgFacts{}}
}

// Out returns the facts exported by the current package.
func (fs *FactStore) Out() PkgFacts { return fs.out }

// AddImported registers the facts of a dependency package.
func (fs *FactStore) AddImported(pkgPath string, facts PkgFacts) {
	if fs.imported == nil {
		fs.imported = map[string]PkgFacts{}
	}
	dst := fs.imported[pkgPath]
	if dst == nil {
		fs.imported[pkgPath] = facts
		return
	}
	// Plain and test-variant packages can both contribute; union them.
	for an, objs := range facts {
		if dst[an] == nil {
			dst[an] = objs
			continue
		}
		for k, v := range objs {
			dst[an][k] = v
		}
	}
}

// Export records a fact about an object of the current package.
func (fs *FactStore) Export(analyzer, objKey string, value any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(value); err != nil {
		return fmt.Errorf("lint: encoding %s fact for %s: %w", analyzer, objKey, err)
	}
	if fs.out[analyzer] == nil {
		fs.out[analyzer] = map[string][]byte{}
	}
	fs.out[analyzer][objKey] = buf.Bytes()
	return nil
}

// Import decodes a fact exported by a dependency package into out,
// reporting whether one was found. pkgPath may carry a test-variant
// suffix; imported facts are registered under the plain path.
func (fs *FactStore) Import(analyzer, pkgPath, objKey string, out any) bool {
	payload, ok := fs.imported[StripVariant(pkgPath)][analyzer][objKey]
	if !ok {
		return false
	}
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(out) == nil
}

// FuncKey returns the fact key of a package-level function or method:
// "Name" for functions, "Type.Name" for methods (pointer receivers
// are not distinguished). It is stable across the exporting and
// importing sides because both derive it from go/types objects.
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name()
	}
	recv := sig.Recv()
	if recv == nil {
		return fn.Name()
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return "?." + fn.Name()
}

// StripVariant removes cmd/go's " [foo.test]" suffix from a package
// path, so the plain and test-variant compilations of a package match
// the same configuration entries and fact keys.
func StripVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
