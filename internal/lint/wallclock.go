package lint

import (
	"go/ast"
	"go/types"
)

// wallclockForbidden are the package time identifiers that read or
// wait on the host's clock. Determinism-critical code may still pass
// time.Time/Duration values around (a GC deadline computed by the
// caller, say) — what it may never do is *sample* real time, because
// figures, fingerprints, and cache bytes must be identical across
// runs, machines, and schedulers.
var wallclockForbidden = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on real time",
	"Tick":      "creates a wall-clock ticker",
	"After":     "creates a wall-clock timer",
	"AfterFunc": "creates a wall-clock timer",
	"NewTimer":  "creates a wall-clock timer",
	"NewTicker": "creates a wall-clock ticker",
	"Timer":     "is a wall-clock timer",
	"Ticker":    "is a wall-clock ticker",
}

// newWallclock forbids sampling real time inside determinism-critical
// packages: simulated time flows only through internal/vtime.
func newWallclock(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "forbid time.Now/Sleep/timers in determinism-critical packages; simulated time flows through internal/vtime",
	}
	a.Run = func(p *Pass) error {
		if !matchPkg(cfg.Wallclock, p.PkgPath) {
			return nil
		}
		for _, f := range p.Files {
			if p.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				// Methods are value manipulation, not clock access:
				// t.After(u) compares two stored instants and is fine;
				// the package function time.After samples the clock.
				if fn, ok := obj.(*types.Func); ok {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						return true
					}
				}
				what, bad := wallclockForbidden[obj.Name()]
				if !bad {
					return true
				}
				p.Reportf(id.Pos(), "time.%s %s in determinism-critical package %s; simulated time must come from the vtime kernel (//lint:allow wallclock -- reason for infra that never affects results)",
					obj.Name(), what, p.PkgPath)
				return true
			})
		}
		return nil
	}
	return a
}
