// Package allowck exercises directive hygiene: malformed suppressions
// are findings themselves and suppress nothing. Expectations live in
// the test, not in want comments — the findings land on the directive
// lines, where a trailing comment cannot follow a line comment.
package allowck

import "time"

//lint:allow wallclock
func MissingReason() int64 { return time.Now().Unix() }

//lint:allow wallhack -- no analyzer has that name
func UnknownName() {}

//lint:allow -- a reason with no analyzer names
func NoName() {}
