// Package vt stands in for the vtime kernel: the one place allowed
// to block for real, because it implements the simulated clock.
package vt

func Wait(ch chan struct{}) {
	<-ch
}
