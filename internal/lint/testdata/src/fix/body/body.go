// Package body hands rank bodies to the kernel entry point; taint is
// checked at the call site, including taint inherited across package
// boundaries through facts.
package body

import (
	"fix/helper"
	"fix/kern"
	"fix/vt"
)

func Direct(ch chan int) {
	kern.Run(func() { // want `rank body passed to kern\.Run reaches channel send`
		ch <- 1
	})
}

func Indirect() {
	kern.Run(helper.Locky) // want `rank body passed to kern\.Run reaches sync\.Mutex\.Lock`
}

func wrapper() { helper.Locky() }

func Wrapped() {
	kern.Run(wrapper) // want `rank body passed to kern\.Run reaches sync\.Mutex\.Lock at .*helper\.go.* \(via fix/helper\.Locky\)`
}

// Fine: blocking through the kernel's own primitives is sanctioned.
func Fine(ch chan struct{}) {
	kern.Run(func() {
		vt.Wait(ch)
	})
}
