package maps

import "sort"

func noop(int) {}

// Bad: a call whose effects the checker cannot prove order-free.
func Calls(m map[string]int) {
	for _, v := range m { // want `order-dependent effects \(a call with unknown effects`
		noop(v)
	}
}

// Bad: float addition rounds differently per iteration order.
func FloatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `a float64 accumulation whose result depends on iteration order`
		s += v
	}
	return s
}

// Bad: whichever entry ranges last wins.
func Last(m map[string]int) int {
	var last int
	for _, v := range m { // want `a last-writer-wins assignment`
		last = v
	}
	return last
}

// Bad: the collected slice leaks map order to the caller.
func Unsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `slice keys collected from map m is never sorted`
		keys = append(keys, k)
	}
	return keys
}

// Good: integer counters commute.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Good: writing distinct keys into another map commutes.
func Copy(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Good: collect then sort.
func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Good: pruning entries commutes.
func Prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Allowed: the suppression names the analyzer and carries a reason.
func Excused(m map[string]float64) float64 {
	var s float64
	//lint:allow maporder -- fixture: values are whole numbers, addition is exact and commutes
	for _, v := range m {
		s += v
	}
	return s
}
