// Package wiredep declares an untagged struct that fix/wire's roots
// reach; findings about it are anchored at the roots.
package wiredep

type Payload struct {
	Value int
	Label string
}
