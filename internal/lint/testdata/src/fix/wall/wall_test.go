package wall

import "time"

// Test files are exempt from wallclock: tests legitimately measure
// wall time. No findings expected in this file.
func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}
