package wall

import "time"

func Bad() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks on real time`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

func Timer() {
	_ = time.NewTimer(time.Second) // want `time\.NewTimer creates a wall-clock timer`
}

// Methods manipulate stored instants; only sampling the clock is
// forbidden.
func Compare(a, b time.Time) bool { return a.After(b) }

//lint:allow wallclock -- fixture: journal timestamp for cache bookkeeping, never reaches results
func Journal() int64 { return time.Now().Unix() }
