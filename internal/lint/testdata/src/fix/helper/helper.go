// Package helper blocks on real sync primitives; importers learn
// that through kernelsafe facts, not by reading this source.
package helper

import "sync"

func Locky() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
}
