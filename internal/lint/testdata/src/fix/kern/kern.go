// Package kern stands in for the kernel entry point: body runs on a
// simulated rank and must be free of raw concurrency.
package kern

func Run(body func()) {
	body()
}
