package rnd

import "math/rand"

// Tests are held to the same bar: an unseeded test cannot be re-run
// on its failure seed.
func perturb() int {
	return rand.Intn(10) // want `rand\.Intn draws from the shared global source`
}
