package rnd

import "math/rand"

func Jitter() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the shared global source`
}

// Good: an isolated, explicitly seeded generator.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

//lint:allow randsource -- fixture: demonstrating an accepted, justified exception
func Excused() int { return rand.Int() }
