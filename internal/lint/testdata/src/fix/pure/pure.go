// Package pure is configured kernel-proc: every line of it can run
// on a simulated rank, so raw operations are flagged where they sit.
package pure

func Spawn(f func()) {
	go f() // want `go statement in kernel-proc package fix/pure`
}

func Send(ch chan int) {
	ch <- 1 // want `channel send in kernel-proc package fix/pure`
}

func Pick(a, b chan int) int {
	select { // want `select statement in kernel-proc package fix/pure`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func Excused(ch chan int) {
	//lint:allow kernelsafe -- fixture: audited hand-off that runs before the kernel starts
	ch <- 2
}
