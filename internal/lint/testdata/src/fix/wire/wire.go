package wire

import "fix/wiredep"

// secret is reachable only through a json:"-" field, which takes its
// type off the wire; no findings may surface for it.
type secret struct {
	X int
}

// Root is a configured wire root: findings about foreign structs it
// reaches land here, where a suppression could be reviewed.
type Root struct { // want `wire root Root reaches wiredep\.Payload whose exported field Value` `wire root Root reaches wiredep\.Payload whose exported field Label`
	ID     string          `json:"id"`
	Data   wiredep.Payload `json:"data"`
	Hidden secret          `json:"-"`
	Bare   int             // want `exported field Bare of Root has no json tag` `field Bare of Root has no json tag while sibling fields are tagged`
}

// Mixed demonstrates the module-wide mixed-tag rule away from any
// wire root: tagging one exported field commits you to all of them.
type Mixed struct {
	A int `json:"a"`
	B int // want `field B of Mixed has no json tag while sibling fields are tagged`
}

// AllOrNothing carries no tags at all, which the mixed rule accepts:
// such a struct opted out of explicit schemas entirely.
type AllOrNothing struct {
	C int
	D int
}

//lint:allow wiretag -- fixture: payload schema is owned and versioned by wiredep, audited by hand
type Quiet struct {
	Payload wiredep.Payload `json:"payload"`
}
