package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package-level functions that do
// NOT draw from the shared global source: they build isolated,
// explicitly seeded generators, which is exactly what simulator code
// must thread through its parameters.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// newRandSource forbids the global math/rand source. Every draw from
// rand.Intn & co. consumes hidden process-wide state, so results
// depend on what else ran first — the exact property the seeded
// replicate grids of future stochastic scenarios must never have.
// Tests are held to the same bar: a test that perturbs inputs with
// the global source cannot be re-run on a failure seed.
func newRandSource(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "randsource",
		Doc:  "forbid the global math/rand source; thread an explicitly seeded *rand.Rand instead",
	}
	a.Run = func(p *Pass) error {
		if !matchPkg(cfg.RandSource, p.PkgPath) {
			return nil
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if path := obj.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok || fn.Type().(*types.Signature).Recv() != nil {
					return true // methods on *rand.Rand are the endorsed API
				}
				if randConstructors[fn.Name()] {
					return true
				}
				p.Reportf(id.Pos(), "rand.%s draws from the shared global source; seed an explicit generator (rand.New(rand.NewSource(seed))) and thread it through parameters",
					fn.Name())
				return true
			})
		}
		return nil
	}
	return a
}
