// Package fabric models cluster interconnects and the message-transport
// paths MPI traffic can take through them.
//
// A Transport is a LogGP-flavoured cost model for one path (shared
// memory, native Omni-Path, TCP over 1 GbE, the Docker bridge, ...). A
// Fabric bundles the paths one physical network offers: the native
// host-integrated path and the degraded TCP path that a self-contained
// container falls back to when it cannot load the host's verbs/PSM
// stack — the mechanism behind the paper's Fig. 2 and Fig. 3 gaps.
package fabric

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Transport is the cost model for one message path.
type Transport struct {
	// Name identifies the path in reports, e.g. "omni-path", "ipoib-tcp".
	Name string `json:"Name"`
	// Latency is the zero-byte end-to-end latency (LogGP L).
	Latency units.Seconds `json:"Latency"`
	// Overhead is the per-message CPU time burned at the sending and at
	// the receiving endpoint (LogGP o). It both delays the message and
	// steals core time from computation.
	Overhead units.Seconds `json:"Overhead"`
	// Bandwidth is the per-stream saturation bandwidth (1/G).
	Bandwidth units.Rate `json:"Bandwidth"`
	// EagerThreshold is the message size at or below which the eager
	// protocol applies: the sender fires and forgets. Larger messages
	// use rendezvous: an extra half round-trip handshake and the
	// transfer cannot start before the receiver arrives.
	EagerThreshold units.ByteSize `json:"EagerThreshold"`
	// PerPacketCPU is extra CPU time per MTU-sized packet. Zero for
	// offloaded fabrics; significant for the Docker bridge, where every
	// packet traverses veth, the bridge, and iptables NAT in software.
	PerPacketCPU units.Seconds `json:"PerPacketCPU"`
	// MTU is the packet size used with PerPacketCPU.
	MTU units.ByteSize `json:"MTU"`
	// SharesNIC marks paths that serialize on the node's injection
	// port, so concurrent senders on one node contend.
	SharesNIC bool `json:"SharesNIC"`
}

// Validate reports an unusable transport configuration.
func (t *Transport) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("fabric: transport without a name")
	}
	if t.Bandwidth <= 0 {
		return fmt.Errorf("fabric: transport %q has no bandwidth", t.Name)
	}
	if t.Latency < 0 || t.Overhead < 0 || t.PerPacketCPU < 0 {
		return fmt.Errorf("fabric: transport %q has negative cost parameters", t.Name)
	}
	if t.PerPacketCPU > 0 && t.MTU <= 0 {
		return fmt.Errorf("fabric: transport %q has per-packet cost but no MTU", t.Name)
	}
	return nil
}

// Eager reports whether a message of the given size uses the eager
// protocol on this transport.
func (t *Transport) Eager(size units.ByteSize) bool {
	return size <= t.EagerThreshold
}

// SerialTime is the wire time of one message absent any contention:
// latency plus size over bandwidth. CPU overheads are charged
// separately by the MPI layer because they land on specific endpoints.
func (t *Transport) SerialTime(size units.ByteSize) units.Seconds {
	return t.Latency + t.Bandwidth.TimeFor(size)
}

// CPUCost is the endpoint CPU time for one message of the given size:
// the per-message overhead plus any per-packet software processing.
func (t *Transport) CPUCost(size units.ByteSize) units.Seconds {
	c := t.Overhead
	if t.PerPacketCPU > 0 && t.MTU > 0 {
		packets := math.Ceil(float64(size) / float64(t.MTU))
		if packets < 1 {
			packets = 1
		}
		c += units.Seconds(packets) * t.PerPacketCPU
	}
	return c
}

// WireTime is the occupancy a message imposes on the node injection
// port: size over bandwidth (latency is in flight, not occupancy).
func (t *Transport) WireTime(size units.ByteSize) units.Seconds {
	return t.Bandwidth.TimeFor(size)
}

// Fabric is one physical interconnect with its available paths.
type Fabric struct {
	// Name identifies the interconnect, e.g. "100Gb/s Omni-Path".
	Name string `json:"Name"`
	// Native is the host-integrated path (verbs, PSM2, kernel TCP for
	// Ethernet-only clusters). Bare-metal runs and system-specific
	// containers use it.
	Native Transport `json:"Native"`
	// TCPFallback is the path a self-contained container's bundled MPI
	// reaches without the host fabric libraries: TCP over whatever IP
	// interface the fabric exposes (IPoIB, IPoOPA, or plain Ethernet).
	TCPFallback Transport `json:"TCPFallback"`
	// InjectionRate caps a node's aggregate injection bandwidth; all
	// inter-node transfers from one node serialize against it.
	InjectionRate units.Rate `json:"InjectionRate"`
}

// Validate checks both paths and the injection rate.
func (f *Fabric) Validate() error {
	if err := f.Native.Validate(); err != nil {
		return err
	}
	if err := f.TCPFallback.Validate(); err != nil {
		return err
	}
	if f.InjectionRate <= 0 {
		return fmt.Errorf("fabric: %q has no injection rate", f.Name)
	}
	return nil
}

// Interconnect presets for the four clusters. Latency/bandwidth values
// are representative published microbenchmark figures for each
// technology generation; TCP fallbacks reflect IP-over-fabric
// performance with a bundled, unspecialized MPI.
var (
	// GigabitEthernet is Lenox's 1 GbE TCP network.
	GigabitEthernet = Fabric{
		Name: "1GbE TCP",
		Native: Transport{
			Name:           "tcp-1gbe",
			Latency:        50 * units.Microsecond,
			Overhead:       14 * units.Microsecond,
			Bandwidth:      118 * units.MBps,
			EagerThreshold: 32 * units.KiB,
			SharesNIC:      true,
		},
		// On a plain Ethernet cluster the self-contained container's
		// TCP is nearly as good as the host's: same protocol, slightly
		// more overhead from the container's generic build.
		TCPFallback: Transport{
			Name:           "tcp-1gbe-generic",
			Latency:        55 * units.Microsecond,
			Overhead:       16 * units.Microsecond,
			Bandwidth:      112 * units.MBps,
			EagerThreshold: 32 * units.KiB,
			SharesNIC:      true,
		},
		InjectionRate: 118 * units.MBps,
	}

	// OmniPath100 is MareNostrum4's 100 Gb/s Intel Omni-Path.
	OmniPath100 = Fabric{
		Name: "100Gb/s Omni-Path",
		Native: Transport{
			Name:           "opa-psm2",
			Latency:        1.1 * units.Microsecond,
			Overhead:       0.6 * units.Microsecond,
			Bandwidth:      11.2 * units.GBps,
			EagerThreshold: 64 * units.KiB,
		},
		// IP-over-OPA with a bundled ethernet-only MPI: two orders of
		// magnitude worse latency, an order of magnitude less bandwidth.
		TCPFallback: Transport{
			Name:           "ipoopa-tcp",
			Latency:        38 * units.Microsecond,
			Overhead:       10 * units.Microsecond,
			Bandwidth:      3.2 * units.GBps,
			EagerThreshold: 32 * units.KiB,
			SharesNIC:      true,
		},
		InjectionRate: 11.2 * units.GBps,
	}

	// InfiniBandEDR is CTE-POWER's Mellanox EDR network.
	InfiniBandEDR = Fabric{
		Name: "InfiniBand EDR",
		Native: Transport{
			Name:           "edr-verbs",
			Latency:        1.0 * units.Microsecond,
			Overhead:       0.5 * units.Microsecond,
			Bandwidth:      11.8 * units.GBps,
			EagerThreshold: 64 * units.KiB,
		},
		TCPFallback: Transport{
			Name:           "ipoib-tcp",
			Latency:        30 * units.Microsecond,
			Overhead:       9 * units.Microsecond,
			Bandwidth:      1.8 * units.GBps,
			EagerThreshold: 32 * units.KiB,
			SharesNIC:      true,
		},
		InjectionRate: 11.8 * units.GBps,
	}

	// FortyGigEthernet is the ThunderX mini-cluster's 40 GbE network.
	FortyGigEthernet = Fabric{
		Name: "40GbE TCP",
		Native: Transport{
			Name:           "tcp-40gbe",
			Latency:        25 * units.Microsecond,
			Overhead:       6 * units.Microsecond,
			Bandwidth:      4.4 * units.GBps,
			EagerThreshold: 32 * units.KiB,
			SharesNIC:      true,
		},
		TCPFallback: Transport{
			Name:           "tcp-40gbe-generic",
			Latency:        28 * units.Microsecond,
			Overhead:       7 * units.Microsecond,
			Bandwidth:      4.0 * units.GBps,
			EagerThreshold: 32 * units.KiB,
			SharesNIC:      true,
		},
		InjectionRate: 4.4 * units.GBps,
	}
)

// SharedMemory builds the intra-node transport from a node's copy
// bandwidth and latency. Both bare-metal and HPC container runtimes use
// it; Docker's per-rank network namespaces forbid it (see DockerBridge).
func SharedMemory(rate units.Rate, latency units.Seconds) Transport {
	return Transport{
		Name:           "shm",
		Latency:        latency,
		Overhead:       0.2 * units.Microsecond,
		Bandwidth:      rate,
		EagerThreshold: 4 * units.KiB, // shm copies once either way; threshold barely matters
	}
}

// DockerBridge is the intra-node path between MPI ranks in separate
// Docker containers: loopback TCP through veth pairs, the docker0
// bridge, and iptables NAT. Every packet is touched by the kernel
// networking stack, which is what sinks Docker in the paper's Fig. 1 as
// rank count grows.
func DockerBridge() Transport {
	return Transport{
		Name:           "docker-bridge",
		Latency:        30 * units.Microsecond,
		Overhead:       8 * units.Microsecond,
		Bandwidth:      0.095 * units.GBps,
		EagerThreshold: 32 * units.KiB,
		PerPacketCPU:   10 * units.Microsecond,
		MTU:            1500 * units.Byte,
		// The docker0 bridge and its iptables chains run in softirq
		// context: one serialized per-node queue that every
		// container-to-container byte crosses, shared with the NIC.
		SharesNIC: true,
	}
}

// DockerNAT derives the inter-node path for Docker from the underlying
// fabric's native transport: same wire, plus NAT translation latency
// and per-packet masquerade cost on both endpoints.
func DockerNAT(native Transport) Transport {
	t := native
	t.Name = native.Name + "+nat"
	t.Latency += 20 * units.Microsecond
	t.Overhead += 5 * units.Microsecond
	t.Bandwidth = units.Rate(float64(native.Bandwidth) * 0.85)
	t.PerPacketCPU = 2 * units.Microsecond
	t.MTU = 1500 * units.Byte
	t.SharesNIC = true
	return t
}
