package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestPresetFabricsValid(t *testing.T) {
	for _, f := range []Fabric{GigabitEthernet, OmniPath100, InfiniBandEDR, FortyGigEthernet} {
		if err := f.Validate(); err != nil {
			t.Errorf("fabric %s invalid: %v", f.Name, err)
		}
	}
}

func TestFallbackSlowerThanNative(t *testing.T) {
	// On every fabric the self-contained TCP fallback must be at least
	// as slow as the native path, in both latency and bandwidth.
	for _, f := range []Fabric{GigabitEthernet, OmniPath100, InfiniBandEDR, FortyGigEthernet} {
		if f.TCPFallback.Latency < f.Native.Latency {
			t.Errorf("%s: fallback latency %v < native %v", f.Name, f.TCPFallback.Latency, f.Native.Latency)
		}
		if f.TCPFallback.Bandwidth > f.Native.Bandwidth {
			t.Errorf("%s: fallback bandwidth %v > native %v", f.Name, f.TCPFallback.Bandwidth, f.Native.Bandwidth)
		}
	}
}

func TestFastFabricsBeatEthernet(t *testing.T) {
	// OPA and EDR natives must dominate both Ethernet natives.
	for _, fast := range []Transport{OmniPath100.Native, InfiniBandEDR.Native} {
		for _, slow := range []Transport{GigabitEthernet.Native, FortyGigEthernet.Native} {
			if fast.Latency >= slow.Latency {
				t.Errorf("%s latency %v not below %s %v", fast.Name, fast.Latency, slow.Name, slow.Latency)
			}
			if fast.Bandwidth <= slow.Bandwidth {
				t.Errorf("%s bandwidth %v not above %s %v", fast.Name, fast.Bandwidth, slow.Name, slow.Bandwidth)
			}
		}
	}
}

func TestEagerThreshold(t *testing.T) {
	tr := GigabitEthernet.Native
	if !tr.Eager(1 * units.KiB) {
		t.Error("1 KiB should be eager")
	}
	if !tr.Eager(tr.EagerThreshold) {
		t.Error("threshold itself should be eager")
	}
	if tr.Eager(tr.EagerThreshold + 1) {
		t.Error("threshold+1 should be rendezvous")
	}
}

func TestSerialTimeComposition(t *testing.T) {
	tr := Transport{Name: "x", Latency: 10 * units.Microsecond, Bandwidth: 1 * units.GBps}
	got := tr.SerialTime(1 * units.MB)
	want := 10*units.Microsecond + units.Millisecond
	if diff := float64(got - want); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("SerialTime = %v, want %v", got, want)
	}
}

func TestCPUCostPerPacket(t *testing.T) {
	tr := Transport{
		Name: "bridge", Bandwidth: 1 * units.GBps,
		Overhead: 5 * units.Microsecond, PerPacketCPU: 10 * units.Microsecond,
		MTU: 1500 * units.Byte,
	}
	// 1500 bytes: 1 packet; 1501: 2 packets; zero-byte: still 1 packet.
	if got := tr.CPUCost(1500); got != 15*units.Microsecond {
		t.Errorf("1500B cpu = %v", got)
	}
	if got := tr.CPUCost(1501); got != 25*units.Microsecond {
		t.Errorf("1501B cpu = %v", got)
	}
	if got := tr.CPUCost(0); got != 15*units.Microsecond {
		t.Errorf("0B cpu = %v", got)
	}
	// No per-packet cost configured: just the overhead.
	plain := Transport{Name: "p", Bandwidth: 1, Overhead: 7 * units.Microsecond}
	if got := plain.CPUCost(1 << 20); got != 7*units.Microsecond {
		t.Errorf("plain cpu = %v", got)
	}
}

func TestDockerPathsWorseThanHost(t *testing.T) {
	shm := SharedMemory(8*units.GBps, 0.5*units.Microsecond)
	bridge := DockerBridge()
	if bridge.Latency <= shm.Latency {
		t.Error("bridge latency should exceed shared memory")
	}
	if bridge.Bandwidth >= shm.Bandwidth {
		t.Error("bridge bandwidth should be below shared memory")
	}
	if bridge.PerPacketCPU <= 0 {
		t.Error("bridge must pay per-packet software cost")
	}
	nat := DockerNAT(GigabitEthernet.Native)
	if nat.Latency <= GigabitEthernet.Native.Latency {
		t.Error("NAT latency should exceed native")
	}
	if nat.Bandwidth >= GigabitEthernet.Native.Bandwidth {
		t.Error("NAT bandwidth should be below native")
	}
	if nat.Name == GigabitEthernet.Native.Name {
		t.Error("NAT path should be renamed")
	}
}

func TestValidateCatchesBadTransports(t *testing.T) {
	bad := []Transport{
		{},
		{Name: "x"},
		{Name: "x", Bandwidth: 1, Latency: -1},
		{Name: "x", Bandwidth: 1, PerPacketCPU: 1 * units.Microsecond}, // no MTU
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad transport %d not caught", i)
		}
	}
}

func TestTransferMonotoneInSize(t *testing.T) {
	tr := OmniPath100.Native
	f := func(a, b uint32) bool {
		x, y := units.ByteSize(a), units.ByteSize(b)
		if x > y {
			x, y = y, x
		}
		return tr.SerialTime(x) <= tr.SerialTime(y) && tr.CPUCost(x) <= tr.CPUCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
