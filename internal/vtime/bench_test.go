package vtime

// Microbenchmarks for the scheduling hot path. Every simulated MPI
// message funnels through Sync/Block/Wake, so ns-per-scheduling-point
// here multiplies into wall time of every figure sweep. The suite
// covers the dominant shapes:
//
//	PingPongBlockWake  — two procs alternating Block/Wake (rendezvous p2p)
//	PingPongSync       — two procs alternating through Sync yields
//	SyncFastPath       — Sync that never yields (earliest proc re-syncing)
//	BarrierWakeAll     — one proc releasing N-1 blocked procs at once
//	ResourceContention — N procs serializing on one Resource
//	SkewedClocks       — N procs with uneven advances (heap churn)
//
// Each benchmark reports ns/switch: wall time divided by the number of
// context switches the iteration performs.

import (
	"testing"

	"repro/internal/units"
)

// reportPerSwitch reports the benchmark's elapsed time divided over
// the context switches its iterations performed.
func reportPerSwitch(b *testing.B, switches int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(switches), "ns/switch")
}

// BenchmarkPingPongBlockWake is the rendezvous point-to-point pattern:
// exactly two procs handing control back and forth, each Wake followed
// by a Block. Two switches per iteration.
func BenchmarkPingPongBlockWake(b *testing.B) {
	s := NewScheduler(2)
	procs := s.Procs()
	s.Run(func(p *Proc) {
		peer := procs[1-p.ID]
		if p.ID == 1 {
			p.Block("start")
		} else {
			// Yield once so proc 1 reaches its Block before the first Wake.
			p.Advance(units.Microsecond)
			p.Sync()
		}
		for i := 0; i < b.N; i++ {
			p.Wake(peer, p.Now())
			p.Block("pingpong")
		}
		if p.ID == 0 {
			p.Wake(peer, p.Now())
		}
	})
	reportPerSwitch(b, 2*b.N)
}

// BenchmarkPingPongSync is the two-proc Sync alternation: each proc
// advances past the other and yields, so every Sync is a full context
// switch through the run queue.
func BenchmarkPingPongSync(b *testing.B) {
	s := NewScheduler(2)
	s.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(units.Microsecond)
			p.Sync()
		}
	})
	reportPerSwitch(b, 2*b.N)
}

// BenchmarkSyncFastPath measures a Sync that never yields: with a
// single proc the heap stays empty and the call must return without
// touching the scheduler.
func BenchmarkSyncFastPath(b *testing.B) {
	s := NewScheduler(1)
	s.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sync()
		}
	})
}

// barrier synchronizes n procs through Block/Wake: every proc but the
// last arriver parks, and the last arriver releases them all — the
// shape of a centralized barrier and of a collective's fan-out wake.
type barrier struct {
	waiting []*Proc
	n       int
}

func (bar *barrier) arrive(p *Proc) {
	if len(bar.waiting) < bar.n-1 {
		bar.waiting = append(bar.waiting, p)
		p.Block("barrier")
		return
	}
	p.WakeAll(bar.waiting, p.Now())
	bar.waiting = bar.waiting[:0]
}

// BenchmarkBarrierWakeAll is the batched-wake path: 15 procs parked,
// the 16th releases them in one WakeAll. 16 switches per round.
func BenchmarkBarrierWakeAll(b *testing.B) {
	const procs = 16
	s := NewScheduler(procs)
	bar := &barrier{n: procs}
	s.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(units.Microsecond)
			bar.arrive(p)
		}
	})
	reportPerSwitch(b, procs*b.N)
}

// BenchmarkResourceContention is the I/O-reservation pattern: N procs
// all Sync then serialize on one Resource.
func BenchmarkResourceContention(b *testing.B) {
	const procs = 8
	s := NewScheduler(procs)
	res := NewResource("nic")
	s.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sync()
			res.Acquire(p, units.Microsecond)
		}
	})
	reportPerSwitch(b, procs*b.N)
}

// BenchmarkSkewedClocks drives a 16-proc heap with uneven advances, so
// the run queue reorders constantly — the worst case for heap traffic.
func BenchmarkSkewedClocks(b *testing.B) {
	const procs = 16
	s := NewScheduler(procs)
	s.Run(func(p *Proc) {
		step := units.Seconds(p.ID%7+1) * units.Microsecond
		for i := 0; i < b.N; i++ {
			p.Advance(step)
			p.Sync()
		}
	})
	reportPerSwitch(b, procs*b.N)
}
