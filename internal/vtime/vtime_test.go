package vtime

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestSingleProcAdvance(t *testing.T) {
	s := NewScheduler(1)
	end := s.Run(func(p *Proc) {
		p.Advance(2 * units.Second)
		p.Advance(500 * units.Millisecond)
	})
	if end != 2.5*units.Second {
		t.Fatalf("end = %v, want 2.5s", end)
	}
}

func TestSchedulerOrdersByVirtualTime(t *testing.T) {
	// Three procs advance by different amounts and record the global
	// order in which they pass Sync points; it must follow virtual
	// time, not goroutine creation order.
	s := NewScheduler(3)
	var order []int
	s.Run(func(p *Proc) {
		// proc 0 -> t=30, proc 1 -> t=10, proc 2 -> t=20
		p.Advance(units.Seconds(30-10*p.ID) * units.Millisecond)
		p.Sync()
		order = append(order, p.ID)
	})
	want := []int{2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sync order = %v, want %v", order, want)
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	s := NewScheduler(4)
	var order []int
	s.Run(func(p *Proc) {
		p.Advance(units.Second) // identical clocks
		p.Sync()
		order = append(order, p.ID)
	})
	for i, id := range order {
		if id != i {
			t.Fatalf("tie-break order = %v, want ascending ids", order)
		}
	}
}

func TestBlockWake(t *testing.T) {
	s := NewScheduler(2)
	procs := s.Procs()
	var wokenAt units.Seconds
	s.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Block("test-wait")
			wokenAt = p.Now()
			return
		}
		p.Advance(3 * units.Second)
		p.Sync()
		p.Wake(procs[0], p.Now())
	})
	if wokenAt != 3*units.Second {
		t.Fatalf("woken at %v, want 3s", wokenAt)
	}
}

func TestWakeDoesNotRewindClock(t *testing.T) {
	s := NewScheduler(2)
	procs := s.Procs()
	var after units.Seconds
	s.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Advance(10 * units.Second)
			p.Block("wait")
			after = p.Now()
			return
		}
		p.Advance(1 * units.Second)
		p.Sync()
		p.Wake(procs[0], 2*units.Second) // earlier than blocked proc's clock
	})
	if after != 10*units.Second {
		t.Fatalf("clock rewound to %v", after)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "stuck-forever") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	s := NewScheduler(2)
	s.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Block("stuck-forever")
		}
	})
}

func TestNegativeAdvancePanics(t *testing.T) {
	// The panic fires on the proc goroutine; Run must capture it and
	// re-raise it on the caller's goroutine with the proc id attached.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on negative advance")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "proc 0 panicked") {
			t.Fatalf("panic lacks proc context: %v", r)
		}
	}()
	s := NewScheduler(1)
	s.Run(func(p *Proc) {
		p.Advance(-1)
	})
}

func TestAdvanceTo(t *testing.T) {
	s := NewScheduler(1)
	end := s.Run(func(p *Proc) {
		p.Advance(5 * units.Second)
		p.AdvanceTo(3 * units.Second) // no-op: earlier
		if p.Now() != 5*units.Second {
			t.Errorf("AdvanceTo rewound the clock to %v", p.Now())
		}
		p.AdvanceTo(8 * units.Second)
	})
	if end != 8*units.Second {
		t.Fatalf("end = %v, want 8s", end)
	}
}

func TestResourceSerializes(t *testing.T) {
	// Four procs all want the resource at t=0 for 1s each: completions
	// must be 1, 2, 3, 4 seconds in id order.
	s := NewScheduler(4)
	res := NewResource("disk")
	done := make([]units.Seconds, 4)
	s.Run(func(p *Proc) {
		p.Sync()
		res.Acquire(p, units.Second)
		done[p.ID] = p.Now()
	})
	for i, d := range done {
		want := units.Seconds(i+1) * units.Second
		if d != want {
			t.Fatalf("proc %d done at %v, want %v", i, d, want)
		}
	}
	if res.BusyTime() != 4*units.Second {
		t.Fatalf("busy time %v, want 4s", res.BusyTime())
	}
}

func TestResourceReserveAt(t *testing.T) {
	res := NewResource("nic")
	end1 := res.ReserveAt(0, units.Second)
	end2 := res.ReserveAt(0, units.Second) // queued behind first
	end3 := res.ReserveAt(5*units.Second, units.Second)
	if end1 != units.Second || end2 != 2*units.Second || end3 != 6*units.Second {
		t.Fatalf("reservations at %v %v %v", end1, end2, end3)
	}
	if res.FreeAt() != 6*units.Second {
		t.Fatalf("free at %v", res.FreeAt())
	}
}

func TestResourceNegativeHoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative hold")
		}
	}()
	res := NewResource("x")
	res.ReserveAt(0, -1)
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() units.Seconds {
		s := NewScheduler(64)
		res := NewResource("shared")
		return s.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Advance(units.Seconds(p.ID%7) * units.Millisecond)
				p.Sync()
				res.Acquire(p, units.Millisecond)
			}
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

// TestPanicWithLivePeers covers panic propagation when the panicking
// proc is not alone: one peer is parked in Block, another is runnable
// in the heap. Run must abandon the simulation and re-raise the
// original panic annotated with the proc id, not deadlock or hang.
func TestPanicWithLivePeers(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "proc 1 panicked") || !strings.Contains(msg, "model bug") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	s := NewScheduler(3)
	s.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Block("waiting-on-dead-peer")
		case 1:
			p.Advance(units.Second)
			p.Sync()
			panic("model bug")
		case 2:
			p.Advance(10 * units.Second) // runnable, scheduled after the panic
			p.Sync()
		}
	})
}

// TestDeadlockTruncation asserts the deadlock diagnostic lists the
// first 16 blocked procs and summarizes the rest, so a 12k-rank
// deadlock stays readable.
func TestDeadlockTruncation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "deadlock") {
			t.Fatalf("unexpected panic %v", r)
		}
		if !strings.Contains(msg, "proc 15 ") {
			t.Fatalf("diagnostic lost proc 15: %v", msg)
		}
		if strings.Contains(msg, "proc 16 ") {
			t.Fatalf("diagnostic not truncated at 16 procs: %v", msg)
		}
		if !strings.Contains(msg, "... and 4 more") {
			t.Fatalf("diagnostic does not summarize the tail: %v", msg)
		}
	}()
	s := NewScheduler(20)
	s.Run(func(p *Proc) {
		p.Block("stuck")
	})
}

// TestWakeNonBlockedPanics asserts waking a runnable peer is reported
// as the caller's bug, through the usual proc-panic propagation.
func TestWakeNonBlockedPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "proc 0 panicked") || !strings.Contains(msg, "not blocked") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	s := NewScheduler(2)
	procs := s.Procs()
	s.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Wake(procs[1], 0) // proc 1 is runnable, never blocked
		}
	})
}

// TestDeferredWakeVisibleToSync pins the deferred-wake contract: a
// peer woken to an earlier virtual time must run before the waker's
// next Sync returns, even though the wake only joins the heap at that
// yield point.
func TestDeferredWakeVisibleToSync(t *testing.T) {
	s := NewScheduler(2)
	procs := s.Procs()
	var order []int
	s.Run(func(p *Proc) {
		if p.ID == 1 {
			p.Block("early-sleeper")
			order = append(order, 1)
			return
		}
		p.Advance(10 * units.Second)
		p.Sync()
		p.Wake(procs[1], 5*units.Second) // earlier than proc 0's clock
		p.Sync()
		order = append(order, 0)
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("woken-earlier proc did not run before Sync returned: order %v", order)
	}
}

// TestWakeAllOrderAndBatching wakes several peers in one WakeAll and
// asserts they resume in (time, ID) order through one batched flush.
func TestWakeAllOrderAndBatching(t *testing.T) {
	const n = 6
	s := NewScheduler(n)
	procs := s.Procs()
	var order []int
	s.Run(func(p *Proc) {
		if p.ID > 0 {
			p.Block("barrier")
			order = append(order, p.ID)
			if p.ID == n-1 {
				p.Wake(procs[0], p.Now()) // last released peer frees the releaser
			}
			return
		}
		p.Advance(units.Second)
		p.Sync() // let every peer park first
		p.WakeAll(procs[1:], 2*units.Second)
		p.Block("after-release") // peers run now
	})
	// All peers woke at the same time, so they must resume in ID order.
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
	c := s.Counters()
	if c.Wakes != n {
		t.Fatalf("counted %d wakes, want %d", c.Wakes, n)
	}
	if c.WakeBatches == 0 {
		t.Fatal("WakeAll did not flush as a batch")
	}
}

// TestPingPongBypassesHeap asserts the two-proc alternation runs
// through the fast slot: heap traffic must stay constant while the
// iteration count grows.
func TestPingPongBypassesHeap(t *testing.T) {
	run := func(iters int) Counters {
		s := NewScheduler(2)
		procs := s.Procs()
		s.Run(func(p *Proc) {
			peer := procs[1-p.ID]
			if p.ID == 1 {
				p.Block("start")
			} else {
				p.Advance(units.Microsecond)
				p.Sync()
			}
			for i := 0; i < iters; i++ {
				p.Wake(peer, p.Now())
				p.Block("pingpong")
			}
			if p.ID == 0 {
				p.Wake(peer, p.Now())
			}
		})
		return s.Counters()
	}
	small, large := run(10), run(1000)
	if large.PingPong <= small.PingPong {
		t.Fatalf("ping-pong slot not engaged: %d vs %d hits", small.PingPong, large.PingPong)
	}
	if large.HeapOps != small.HeapOps {
		t.Fatalf("heap traffic grew with ping-pong iterations: %d vs %d ops", small.HeapOps, large.HeapOps)
	}
	if large.Switches < 2000 {
		t.Fatalf("switch counter undercounts: %d", large.Switches)
	}
}
