// Package vtime implements the deterministic virtual-time execution
// kernel underneath the simulator.
//
// Simulated processes (MPI ranks, deployment agents, ...) are ordinary
// goroutines, but they never run concurrently: exactly one process is
// running at a time, always the runnable process with the smallest
// virtual clock (ties broken by process id). Processes advance their
// own clocks with model costs and interact only at explicit scheduling
// points, so every shared model structure (message queues, NIC
// reservations, filesystem bandwidth) is accessed in a single,
// reproducible virtual-time order without any locking.
//
// This is the classic conservative sequential discrete-event design,
// expressed with coroutines so that rank programs read as straight-line
// imperative code.
//
// # Direct handoff
//
// Control passes directly from the yielding process to its successor:
// the yielding goroutine picks the next runnable process off the run
// queue and unparks it in a single synchronization hop, instead of
// bouncing through a central run loop (two hops per scheduling point).
// The Run goroutine participates only at startup, completion, panic
// unwinding, and deadlock detection. Two structural levers ride on
// that shape:
//
//   - Wakes are deferred: Wake parks the woken process on a pending
//     list (no heap traffic) and the kernel folds the whole list into
//     the run queue in one batched insert at the next yield point — a
//     collective fan-out that wakes k waiters costs one bulk operation
//     instead of k pushes. Sync stays exact because its fast-path test
//     consults the pending minimum alongside the heap minimum.
//   - A ping-pong fast slot: when exactly two processes alternate (the
//     dominant rendezvous point-to-point pattern) the handoff swaps
//     them through the single pending slot and never touches the heap.
//
// The happens-before chain of park/unpark channel operations makes the
// single-running-process invariant a memory-ordering guarantee too:
// every scheduler and model mutation a process performs is ordered
// before the next process observes it.
package vtime

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// procState tracks where a process is in its lifecycle.
type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Counters exposes the kernel's scheduling-path counters, so perf
// regressions on the hot path are observable from sweeps and the CLI.
type Counters struct {
	// Switches counts direct handoffs between processes.
	Switches int64
	// SyncFast counts Sync calls resolved without yielding.
	SyncFast int64
	// PingPong counts switches through the two-process fast slot,
	// which bypass the heap entirely.
	PingPong int64
	// Wakes counts processes made runnable by Wake/WakeAll.
	Wakes int64
	// WakeBatches counts bulk flushes that folded more than one
	// pending waiter into the run queue in a single operation.
	WakeBatches int64
	// HeapOps counts run-queue heap operations (pushes and pops;
	// fast-slot switches perform none).
	HeapOps int64
}

// Sub returns the counters accumulated between snapshot o and c.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Switches:    c.Switches - o.Switches,
		SyncFast:    c.SyncFast - o.SyncFast,
		PingPong:    c.PingPong - o.PingPong,
		Wakes:       c.Wakes - o.Wakes,
		WakeBatches: c.WakeBatches - o.WakeBatches,
		HeapOps:     c.HeapOps - o.HeapOps,
	}
}

// Tracer receives the kernel's scheduling events, timestamped in
// virtual time. Every callback runs under the single-running-process
// invariant (the event source is the scheduler itself), so
// implementations need no locking — but they must not yield, block, or
// touch kernel state: a tracer is a passive tap on the schedule, and
// anything it does is charged to no process.
type Tracer interface {
	// Switch reports a direct handoff: control passed from proc `from`
	// to proc `to`, whose clock reads now. from is -1 for the initial
	// handoff out of the Run goroutine.
	Switch(from, to int, now units.Seconds)
	// Park reports proc id blocking on tag at time now.
	Park(id int, tag string, now units.Seconds)
	// Wake reports proc waker making proc woken runnable; now is the
	// woken process's (possibly advanced) clock and wakerNow the
	// waker's clock at the instant of the wake — the causal source
	// time a profiler follows when walking the happens-before graph
	// backwards.
	Wake(waker, woken int, now, wakerNow units.Seconds)
	// Idle reports proc id's clock jumping from `from` to `to` while
	// waiting rather than computing — resource contention
	// (tag "resource:<name>") or an already-completed request whose
	// completion time lies ahead of the proc's clock (tag "wait:<kind>",
	// emitted by the MPI layer). Only emitted when to > from.
	Idle(id int, tag string, from, to units.Seconds)
	// FlushWakes reports a batched fold of k > 1 pending waiters into
	// the run queue, observed at virtual time now.
	FlushWakes(k int, now units.Seconds)
}

// Proc is one simulated process. All methods must be called from the
// process's own goroutine while it is the running process, except Wake
// and WakeAll, which a running process calls on blocked peers.
type Proc struct {
	ID    int
	sched *Scheduler

	now      units.Seconds
	state    procState
	resume   chan struct{} // buffered(1): unpark semaphore
	heapIdx  int
	blockTag string // diagnostic: what the proc is blocked on
}

// Now returns the process's virtual clock.
func (p *Proc) Now() units.Seconds { return p.now }

// Advance adds a model cost to the process's clock without yielding.
// Negative durations are a programming error.
func (p *Proc) Advance(d units.Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: proc %d advanced by negative duration %v", p.ID, d))
	}
	p.now += d
}

// AdvanceTo moves the clock forward to t if t is later than now.
func (p *Proc) AdvanceTo(t units.Seconds) {
	if t > p.now {
		p.now = t
	}
}

// Sync yields so that every process with an earlier virtual clock runs
// first. Call it before touching shared model state; afterwards the
// process is guaranteed to be the earliest actor.
func (p *Proc) Sync() {
	p.checkRunning("Sync")
	s := p.sched
	// Fast path: when no runnable process — heaped or pending wake —
	// precedes this one in (time, ID) order, the handoff would come
	// straight back, so the switch can be skipped. Blocked processes
	// cannot become runnable here (only a running process wakes them),
	// so heap minimum plus pending minimum is the full picture.
	if (len(s.heap) == 0 || s.less(p, s.heap[0])) &&
		(s.pendingMin == nil || s.less(p, s.pendingMin)) {
		s.counters.SyncFast++
		return
	}
	p.state = stateRunnable
	var next *Proc
	if len(s.heap) == 0 && len(s.pending) == 1 {
		// Ping-pong fast slot: swap through the pending slot, no heap.
		next = s.pending[0]
		s.pending[0] = p
		s.pendingMin = p
		s.counters.PingPong++
	} else {
		s.flushWakes()
		next = s.replaceTop(p)
	}
	s.handoff(next)
	<-p.resume
}

// Block suspends the process until a peer calls Wake on it. The tag is
// reported in deadlock diagnostics.
func (p *Proc) Block(tag string) {
	p.checkRunning("Block")
	p.state = stateBlocked
	p.blockTag = tag
	if t := p.sched.trace; t != nil {
		t.Park(p.ID, tag, p.now)
	}
	p.sched.scheduleNext()
	<-p.resume
}

// Wake makes a blocked peer runnable with its clock advanced to at (if
// later). It must be called by the currently running process. The wake
// is deferred: the peer joins the run queue in a batched insert at the
// caller's next yield point, which Sync's fast-path test accounts for
// exactly.
func (p *Proc) Wake(q *Proc, at units.Seconds) {
	p.checkRunning("Wake")
	if q.state != stateBlocked {
		panic(fmt.Sprintf("vtime: proc %d woke proc %d which is not blocked (state %d)", p.ID, q.ID, q.state))
	}
	q.AdvanceTo(at)
	q.state = stateRunnable
	q.blockTag = ""
	s := p.sched
	s.pending = append(s.pending, q)
	if s.pendingMin == nil || s.less(q, s.pendingMin) {
		s.pendingMin = q
	}
	s.counters.Wakes++
	if s.trace != nil {
		s.trace.Wake(p.ID, q.ID, q.now, p.now)
	}
}

// WakeAll wakes every blocked proc in peers at time at. The peers are
// folded into the run queue in one batched operation at the caller's
// next yield point instead of one push each — the collective fan-out
// path.
func (p *Proc) WakeAll(peers []*Proc, at units.Seconds) {
	for _, q := range peers {
		p.Wake(q, at)
	}
}

func (p *Proc) checkRunning(op string) {
	if p.state != stateRunning {
		panic(fmt.Sprintf("vtime: %s called on proc %d which is not running", op, p.ID))
	}
}

// Scheduler owns the set of processes, the runnable heap, and the
// pending-wake batch.
type Scheduler struct {
	procs []*Proc
	heap  []*Proc // min-heap on (now, ID)
	// pending holds procs woken since the last yield point; they join
	// the heap in one batched insert. pendingMin tracks their minimum
	// so Sync's fast-path test stays O(1).
	pending    []*Proc
	pendingMin *Proc
	alive      int
	// done wakes the Run goroutine: simulation complete, deadlock, or
	// a captured proc panic (see failure).
	done chan struct{}
	// failure records the first process panic, re-raised from Run.
	failure  string
	counters Counters
	// running is the proc currently holding control, tracked so the
	// tracer can attribute handoffs to their source. Maintained only
	// when a tracer is attached — the hot path stays untouched without
	// one.
	running *Proc
	trace   Tracer
}

// NewScheduler creates a scheduler for n processes starting at time 0.
func NewScheduler(n int) *Scheduler {
	s := &Scheduler{
		procs: make([]*Proc, n),
		heap:  make([]*Proc, 0, n),
		done:  make(chan struct{}, 1),
	}
	for i := range s.procs {
		s.procs[i] = &Proc{
			ID:      i,
			sched:   s,
			resume:  make(chan struct{}, 1),
			heapIdx: -1,
			state:   stateRunnable,
		}
	}
	return s
}

// Procs returns the scheduler's processes, indexed by id.
func (s *Scheduler) Procs() []*Proc { return s.procs }

// Counters returns the kernel counters accumulated so far. Call it
// after Run returns.
func (s *Scheduler) Counters() Counters { return s.counters }

// SetTracer attaches a scheduling-event tap. Call it before Run; nil
// detaches. Tracing does not perturb the schedule — the same cell
// produces the same execution, traced or not.
func (s *Scheduler) SetTracer(t Tracer) { s.trace = t }

// handoff transfers control to next: the caller stops being the
// running process (it parks, finishes, or is the Run goroutine at
// startup) and next starts. One synchronization hop.
func (s *Scheduler) handoff(next *Proc) {
	next.state = stateRunning
	s.counters.Switches++
	if s.trace != nil {
		from := -1
		if s.running != nil {
			from = s.running.ID
		}
		s.trace.Switch(from, next.ID, next.now)
		s.running = next
	}
	next.resume <- struct{}{}
}

// scheduleNext passes control from a process leaving the running state
// (blocked or finished) to the next runnable process, or wakes the Run
// goroutine when nothing is runnable (completion or deadlock).
func (s *Scheduler) scheduleNext() {
	if len(s.heap) == 0 && len(s.pending) == 1 {
		// Ping-pong fast slot: the one pending waiter runs next.
		next := s.pending[0]
		s.pending = s.pending[:0]
		s.pendingMin = nil
		s.counters.PingPong++
		s.handoff(next)
		return
	}
	s.flushWakes()
	next := s.pop()
	if next == nil {
		s.done <- struct{}{}
		return
	}
	s.handoff(next)
}

// Run starts body(i, proc) for every process and drives the simulation
// until all processes finish. It returns the maximum final virtual time.
// A deadlock (blocked processes with nothing runnable) panics with a
// diagnostic listing every blocked process and its tag; a panic inside
// a process body is captured and re-raised from Run on the caller's
// goroutine, annotated with the process id.
func (s *Scheduler) Run(body func(p *Proc)) units.Seconds {
	s.alive = len(s.procs)
	// Initial fill: every proc starts at time zero, so appending in
	// ascending-ID order is already a valid heap.
	for i, p := range s.procs {
		p.heapIdx = i
	}
	s.heap = append(s.heap, s.procs...)
	for _, p := range s.procs {
		proc := p
		go func() {
			<-proc.resume
			defer func() {
				if r := recover(); r != nil {
					s.failure = fmt.Sprintf("vtime: proc %d panicked: %v", proc.ID, r)
				}
				proc.state = stateDone
				s.alive--
				if s.failure != "" || s.alive == 0 {
					// A panic abandons the simulation (peers may be
					// stranded; Run surfaces the original failure);
					// otherwise the last proc finished and the
					// simulation is complete.
					s.done <- struct{}{}
					return
				}
				s.scheduleNext()
			}()
			body(proc)
		}()
	}
	if first := s.pop(); first != nil {
		s.handoff(first)
		<-s.done
	}
	if s.failure != "" {
		panic(s.failure)
	}
	if s.alive > 0 {
		s.deadlock()
	}
	var end units.Seconds
	for _, p := range s.procs {
		if p.now > end {
			end = p.now
		}
	}
	return end
}

func (s *Scheduler) deadlock() {
	type stuck struct {
		id  int
		now units.Seconds
		tag string
	}
	var list []stuck
	for _, p := range s.procs {
		if p.state == stateBlocked {
			list = append(list, stuck{p.ID, p.now, p.blockTag})
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	msg := "vtime: deadlock —"
	limit := len(list)
	if limit > 16 {
		limit = 16
	}
	for _, st := range list[:limit] {
		msg += fmt.Sprintf(" proc %d @%v [%s];", st.id, st.now, st.tag)
	}
	if len(list) > limit {
		msg += fmt.Sprintf(" ... and %d more", len(list)-limit)
	}
	panic(msg)
}

// heap operations: min-heap ordered by (now, ID).

func (s *Scheduler) less(a, b *Proc) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	return a.ID < b.ID
}

// flushWakes folds the pending-wake batch into the heap. A single
// waiter is pushed; a batch is appended and restored to heap order in
// one operation — sift-ups for batches small against the heap, one
// O(n + k) heapify when the batch rivals it.
func (s *Scheduler) flushWakes() {
	k := len(s.pending)
	if k == 0 {
		return
	}
	if k == 1 {
		s.push(s.pending[0])
	} else {
		s.counters.WakeBatches++
		if s.trace != nil {
			var at units.Seconds
			if s.running != nil {
				at = s.running.now
			}
			s.trace.FlushWakes(k, at)
		}
		s.counters.HeapOps += int64(k)
		n := len(s.heap)
		s.heap = append(s.heap, s.pending...)
		for i := n; i < len(s.heap); i++ {
			s.heap[i].heapIdx = i
		}
		if k > n/4 {
			for i := len(s.heap)/2 - 1; i >= 0; i-- {
				s.down(i)
			}
		} else {
			for i := n; i < len(s.heap); i++ {
				s.up(i)
			}
		}
	}
	s.pending = s.pending[:0]
	s.pendingMin = nil
}

func (s *Scheduler) push(p *Proc) {
	if p.heapIdx != -1 {
		panic(fmt.Sprintf("vtime: proc %d pushed twice", p.ID))
	}
	s.counters.HeapOps++
	s.heap = append(s.heap, p)
	p.heapIdx = len(s.heap) - 1
	s.up(p.heapIdx)
}

func (s *Scheduler) pop() *Proc {
	if len(s.heap) == 0 {
		return nil
	}
	s.counters.HeapOps++
	top := s.heap[0]
	last := len(s.heap) - 1
	s.swap(0, last)
	s.heap = s.heap[:last]
	top.heapIdx = -1
	if last > 0 {
		s.down(0)
	}
	return top
}

// replaceTop pops the heap minimum and inserts p in its place with a
// single sift-down — the combined pop+push a Sync yield performs.
func (s *Scheduler) replaceTop(p *Proc) *Proc {
	s.counters.HeapOps += 2
	top := s.heap[0]
	top.heapIdx = -1
	s.heap[0] = p
	p.heapIdx = 0
	s.down(0)
	return top
}

func (s *Scheduler) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].heapIdx = i
	s.heap[j].heapIdx = j
}

func (s *Scheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Scheduler) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.less(s.heap[l], s.heap[small]) {
			small = l
		}
		if r < n && s.less(s.heap[r], s.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		s.swap(i, small)
		i = small
	}
}

// Resource is a serially reusable device (a NIC, a filesystem server, a
// container gateway) in virtual time. Acquire must be called by the
// currently running process after Sync, which guarantees requests are
// served in global virtual-time order.
type Resource struct {
	Name   string
	freeAt units.Seconds
	busy   units.Seconds // accumulated busy time, for utilization reports
}

// NewResource names a resource; the zero value is also usable.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Acquire makes p wait until the resource is free, then holds it for
// hold. On return p's clock includes both the wait and the hold.
func (r *Resource) Acquire(p *Proc, hold units.Seconds) {
	if hold < 0 {
		panic(fmt.Sprintf("vtime: resource %s acquired by proc %d at %v for negative duration %v",
			r.Name, p.ID, p.now, hold))
	}
	if t := p.sched.trace; t != nil && r.freeAt > p.now {
		t.Idle(p.ID, "resource:"+r.Name, p.now, r.freeAt)
	}
	p.AdvanceTo(r.freeAt)
	r.freeAt = p.now + hold
	r.busy += hold
	p.Advance(hold)
}

// ReserveAt books the resource for a transfer that starts no earlier
// than start and takes hold; it returns the completion time without
// touching any process clock. Used for offloaded transfers (e.g. NIC
// DMA) whose completion the caller folds into a message arrival time.
func (r *Resource) ReserveAt(start units.Seconds, hold units.Seconds) units.Seconds {
	if hold < 0 {
		panic(fmt.Sprintf("vtime: resource %s reserved at %v for negative duration %v",
			r.Name, start, hold))
	}
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + hold
	r.busy += hold
	return r.freeAt
}

// BusyTime reports the total time the resource spent occupied.
func (r *Resource) BusyTime() units.Seconds { return r.busy }

// FreeAt reports when the resource next becomes free.
func (r *Resource) FreeAt() units.Seconds { return r.freeAt }
