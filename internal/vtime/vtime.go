// Package vtime implements the deterministic virtual-time execution
// kernel underneath the simulator.
//
// Simulated processes (MPI ranks, deployment agents, ...) are ordinary
// goroutines, but they never run concurrently: a scheduler resumes
// exactly one process at a time, always the runnable process with the
// smallest virtual clock (ties broken by process id). Processes advance
// their own clocks with model costs and interact only at explicit
// scheduling points, so every shared model structure (message queues,
// NIC reservations, filesystem bandwidth) is accessed in a single,
// reproducible virtual-time order without any locking.
//
// This is the classic conservative sequential discrete-event design,
// expressed with coroutines so that rank programs read as straight-line
// imperative code.
package vtime

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// procState tracks where a process is in its lifecycle.
type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Proc is one simulated process. All methods must be called from the
// process's own goroutine while it is the running process, except Wake,
// which a running process calls on a peer.
type Proc struct {
	ID    int
	sched *Scheduler

	now      units.Seconds
	state    procState
	resume   chan struct{}
	heapIdx  int
	blockTag string // diagnostic: what the proc is blocked on
}

// Now returns the process's virtual clock.
func (p *Proc) Now() units.Seconds { return p.now }

// Advance adds a model cost to the process's clock without yielding.
// Negative durations are a programming error.
func (p *Proc) Advance(d units.Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: proc %d advanced by negative duration %v", p.ID, d))
	}
	p.now += d
}

// AdvanceTo moves the clock forward to t if t is later than now.
func (p *Proc) AdvanceTo(t units.Seconds) {
	if t > p.now {
		p.now = t
	}
}

// Sync yields to the scheduler so that every process with an earlier
// virtual clock runs first. Call it before touching shared model state;
// afterwards the process is guaranteed to be the earliest actor.
func (p *Proc) Sync() {
	p.checkRunning("Sync")
	// Fast path: when no runnable process precedes this one in
	// (time, ID) order the scheduler would resume it immediately, so
	// the coroutine round trip through the run loop can be skipped.
	// Blocked processes cannot become runnable here — only a running
	// process wakes them — so the heap minimum is the full picture.
	if len(p.sched.heap) == 0 || p.sched.less(p, p.sched.heap[0]) {
		return
	}
	p.state = stateRunnable
	p.sched.push(p)
	p.sched.events <- p
	<-p.resume
}

// Block suspends the process until a peer calls Wake on it. The tag is
// reported in deadlock diagnostics.
func (p *Proc) Block(tag string) {
	p.checkRunning("Block")
	p.state = stateBlocked
	p.blockTag = tag
	p.sched.events <- p
	<-p.resume
}

// Wake makes a blocked peer runnable with its clock advanced to at
// (if later). It must be called by the currently running process.
func (p *Proc) Wake(q *Proc, at units.Seconds) {
	p.checkRunning("Wake")
	if q.state != stateBlocked {
		panic(fmt.Sprintf("vtime: proc %d woke proc %d which is not blocked (state %d)", p.ID, q.ID, q.state))
	}
	q.AdvanceTo(at)
	q.state = stateRunnable
	q.blockTag = ""
	p.sched.push(q)
}

func (p *Proc) checkRunning(op string) {
	if p.state != stateRunning {
		panic(fmt.Sprintf("vtime: %s called on proc %d which is not running", op, p.ID))
	}
}

// Scheduler owns the set of processes and the runnable heap.
type Scheduler struct {
	procs  []*Proc
	heap   []*Proc // min-heap on (now, ID)
	events chan *Proc
	alive  int
	// failure records the first process panic, re-raised from Run.
	failure string
}

// NewScheduler creates a scheduler for n processes starting at time 0.
func NewScheduler(n int) *Scheduler {
	s := &Scheduler{
		procs:  make([]*Proc, n),
		heap:   make([]*Proc, 0, n),
		events: make(chan *Proc),
	}
	for i := range s.procs {
		s.procs[i] = &Proc{
			ID:      i,
			sched:   s,
			resume:  make(chan struct{}),
			heapIdx: -1,
			state:   stateRunnable,
		}
	}
	return s
}

// Procs returns the scheduler's processes, indexed by id.
func (s *Scheduler) Procs() []*Proc { return s.procs }

// Run starts body(i, proc) for every process and drives the simulation
// until all processes finish. It returns the maximum final virtual time.
// A deadlock (blocked processes with nothing runnable) panics with a
// diagnostic listing every blocked process and its tag; a panic inside
// a process body is captured and re-raised from Run on the caller's
// goroutine, annotated with the process id.
func (s *Scheduler) Run(body func(p *Proc)) units.Seconds {
	s.alive = len(s.procs)
	for _, p := range s.procs {
		s.push(p)
		proc := p
		go func() {
			<-proc.resume
			defer func() {
				if r := recover(); r != nil {
					s.failure = fmt.Sprintf("vtime: proc %d panicked: %v", proc.ID, r)
				}
				proc.state = stateDone
				s.events <- proc
			}()
			body(proc)
		}()
	}
	for s.alive > 0 {
		p := s.pop()
		if p == nil {
			s.deadlock()
		}
		p.state = stateRunning
		p.resume <- struct{}{}
		ev := <-s.events
		if ev.state == stateDone {
			s.alive--
			if s.failure != "" {
				// A proc died; its peers may now be stranded. Abandon
				// the simulation and surface the original failure.
				panic(s.failure)
			}
		}
	}
	var end units.Seconds
	for _, p := range s.procs {
		if p.now > end {
			end = p.now
		}
	}
	return end
}

func (s *Scheduler) deadlock() {
	type stuck struct {
		id  int
		now units.Seconds
		tag string
	}
	var list []stuck
	for _, p := range s.procs {
		if p.state == stateBlocked {
			list = append(list, stuck{p.ID, p.now, p.blockTag})
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	msg := "vtime: deadlock —"
	limit := len(list)
	if limit > 16 {
		limit = 16
	}
	for _, st := range list[:limit] {
		msg += fmt.Sprintf(" proc %d @%v [%s];", st.id, st.now, st.tag)
	}
	if len(list) > limit {
		msg += fmt.Sprintf(" ... and %d more", len(list)-limit)
	}
	panic(msg)
}

// heap operations: min-heap ordered by (now, ID).

func (s *Scheduler) less(a, b *Proc) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	return a.ID < b.ID
}

func (s *Scheduler) push(p *Proc) {
	if p.heapIdx != -1 {
		panic(fmt.Sprintf("vtime: proc %d pushed twice", p.ID))
	}
	s.heap = append(s.heap, p)
	p.heapIdx = len(s.heap) - 1
	s.up(p.heapIdx)
}

func (s *Scheduler) pop() *Proc {
	if len(s.heap) == 0 {
		return nil
	}
	top := s.heap[0]
	last := len(s.heap) - 1
	s.swap(0, last)
	s.heap = s.heap[:last]
	top.heapIdx = -1
	if last > 0 {
		s.down(0)
	}
	return top
}

func (s *Scheduler) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].heapIdx = i
	s.heap[j].heapIdx = j
}

func (s *Scheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Scheduler) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.less(s.heap[l], s.heap[small]) {
			small = l
		}
		if r < n && s.less(s.heap[r], s.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		s.swap(i, small)
		i = small
	}
}

// Resource is a serially reusable device (a NIC, a filesystem server, a
// container gateway) in virtual time. Acquire must be called by the
// currently running process after Sync, which guarantees requests are
// served in global virtual-time order.
type Resource struct {
	Name   string
	freeAt units.Seconds
	busy   units.Seconds // accumulated busy time, for utilization reports
}

// NewResource names a resource; the zero value is also usable.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Acquire makes p wait until the resource is free, then holds it for
// hold. On return p's clock includes both the wait and the hold.
func (r *Resource) Acquire(p *Proc, hold units.Seconds) {
	if hold < 0 {
		panic(fmt.Sprintf("vtime: resource %s acquired for negative duration %v", r.Name, hold))
	}
	p.AdvanceTo(r.freeAt)
	r.freeAt = p.now + hold
	r.busy += hold
	p.Advance(hold)
}

// ReserveAt books the resource for a transfer that starts no earlier
// than start and takes hold; it returns the completion time without
// touching any process clock. Used for offloaded transfers (e.g. NIC
// DMA) whose completion the caller folds into a message arrival time.
func (r *Resource) ReserveAt(start units.Seconds, hold units.Seconds) units.Seconds {
	if hold < 0 {
		panic(fmt.Sprintf("vtime: resource %s reserved for negative duration %v", r.Name, hold))
	}
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + hold
	r.busy += hold
	return r.freeAt
}

// BusyTime reports the total time the resource spent occupied.
func (r *Resource) BusyTime() units.Seconds { return r.busy }

// FreeAt reports when the resource next becomes free.
func (r *Resource) FreeAt() units.Seconds { return r.freeAt }
