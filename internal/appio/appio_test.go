package appio

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/units"
)

func spec() Checkpoint {
	return Checkpoint{Cells: 1 << 20, Fields: 4, BytesPerValue: 8, FilesPerRank: 4}
}

func TestCheckpointSize(t *testing.T) {
	ck := spec()
	if ck.Size() != 32*units.MiB {
		t.Fatalf("size %v", ck.Size())
	}
}

func TestValidate(t *testing.T) {
	bad := []Checkpoint{
		{},
		{Cells: 1, Fields: 0, BytesPerValue: 8, FilesPerRank: 1},
		{Cells: 1, Fields: 1, BytesPerValue: 0, FilesPerRank: 1},
	}
	for i, ck := range bad {
		if ck.Validate() == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	m := DefaultModel()
	if _, err := m.CheckpointTime(cluster.Lenox(), 0, 0, spec(), PathBindMount); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := m.CheckpointTime(cluster.Lenox(), 2, 56, spec(), Path(99)); err == nil {
		t.Error("unknown path accepted")
	}
}

func TestPathForRuntime(t *testing.T) {
	if PathForRuntime("Docker") != PathOverlay {
		t.Error("docker should default to overlay")
	}
	for _, rt := range []string{"Bare-metal", "Singularity", "Shifter"} {
		if PathForRuntime(rt) != PathBindMount {
			t.Errorf("%s should bind-mount", rt)
		}
	}
}

func TestOverlaySlowerThanVolumeSlowerThanNothing(t *testing.T) {
	m := DefaultModel()
	lenox := cluster.Lenox()
	ck := spec()
	overlay, err := m.CheckpointTime(lenox, 2, 56, ck, PathOverlay)
	if err != nil {
		t.Fatal(err)
	}
	volume, err := m.CheckpointTime(lenox, 2, 56, ck, PathVolume)
	if err != nil {
		t.Fatal(err)
	}
	bind, err := m.CheckpointTime(lenox, 2, 56, ck, PathBindMount)
	if err != nil {
		t.Fatal(err)
	}
	// In-run write cost: overlay pays the copy-up penalty over volume.
	if overlay.WriteTime <= volume.WriteTime {
		t.Errorf("overlay write %v not above volume %v", overlay.WriteTime, volume.WriteTime)
	}
	// Docker paths pay the stage-out; the bind path does not.
	if bind.StageOutTime != 0 {
		t.Errorf("bind path stages out: %v", bind.StageOutTime)
	}
	if overlay.StageOutTime <= 0 || volume.StageOutTime <= 0 {
		t.Error("docker paths must stage out")
	}
	// Total cost ordering: both Docker paths above bind-mount.
	if overlay.Total() <= bind.Total() || volume.Total() <= bind.Total() {
		t.Errorf("docker I/O (%v / %v) not above bind mount (%v)",
			overlay.Total(), volume.Total(), bind.Total())
	}
}

func TestMoreNodesSpreadWrites(t *testing.T) {
	// On a machine whose aggregate FS bandwidth exceeds one client's,
	// more nodes cut the per-checkpoint wall time.
	m := DefaultModel()
	mn4 := cluster.MareNostrum4()
	ck := Checkpoint{Cells: 1 << 26, Fields: 4, BytesPerValue: 8, FilesPerRank: 4}
	one, err := m.CheckpointTime(mn4, 1, 48, ck, PathBindMount)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := m.CheckpointTime(mn4, 8, 8*48, ck, PathBindMount)
	if err != nil {
		t.Fatal(err)
	}
	if eight.WriteTime >= one.WriteTime {
		t.Fatalf("8 nodes (%v) not faster than 1 (%v)", eight.WriteTime, one.WriteTime)
	}
}

func TestPathStrings(t *testing.T) {
	if PathBindMount.String() != "bind-mount" || PathOverlay.String() != "overlay" ||
		PathVolume.String() != "volume" {
		t.Fatal("path names wrong")
	}
}
