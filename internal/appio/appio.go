// Package appio models application I/O through container storage
// paths — the paper's explicitly named future work ("a deeper
// evaluation of I/O and distributed storage performance using
// containers").
//
// The workload is Alya's checkpoint/result output: every rank
// periodically writes its subdomain fields. What differs per runtime is
// the path those bytes take:
//
//   - Bare metal, Singularity, Shifter: the parallel filesystem is
//     bind-mounted into the (or no) container; writes go straight to
//     GPFS/NFS at native speed, contending only for the filesystem's
//     aggregate bandwidth.
//   - Docker (container filesystem): writes land in the overlay storage
//     driver's upper layer on node-local disk — every first write to a
//     lower-layer file pays a copy-up, every write goes through the
//     overlay — and results must then be staged out to the shared
//     filesystem after the run to survive container removal.
//   - Docker (volume): a host directory is mounted as a volume; writes
//     bypass the overlay at near-native local speed but still need the
//     stage-out copy to the shared filesystem.
package appio

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/units"
)

// Path is the storage route application writes take.
type Path int

// Available paths.
const (
	// PathBindMount writes straight to the shared parallel filesystem
	// (bare metal, Singularity and Shifter bind mounts).
	PathBindMount Path = iota
	// PathOverlay writes into Docker's overlay upper layer on local
	// disk and stages results out afterwards.
	PathOverlay
	// PathVolume writes to a Docker volume on local disk and stages
	// results out afterwards.
	PathVolume
)

// String names the path.
func (p Path) String() string {
	switch p {
	case PathBindMount:
		return "bind-mount"
	case PathOverlay:
		return "overlay"
	case PathVolume:
		return "volume"
	default:
		return fmt.Sprintf("path(%d)", int(p))
	}
}

// PathForRuntime maps a runtime name to its default storage path.
func PathForRuntime(runtime string) Path {
	if runtime == "Docker" {
		return PathOverlay
	}
	return PathBindMount
}

// Checkpoint describes one output dump of the application.
type Checkpoint struct {
	// Cells is the global mesh size.
	Cells int
	// Fields is the number of scalar fields written (u,v,w,p = 4 for
	// the CFD case; 7 with the wall displacement for FSI).
	Fields int
	// BytesPerValue is the storage width (8 for raw doubles).
	BytesPerValue int
	// FilesPerRank is how many files each rank creates per dump
	// (Alya writes one per field by default).
	FilesPerRank int
}

// Size returns the global checkpoint size.
func (c Checkpoint) Size() units.ByteSize {
	return units.ByteSize(c.Cells * c.Fields * c.BytesPerValue)
}

// Validate reports an inconsistent spec.
func (c Checkpoint) Validate() error {
	if c.Cells <= 0 || c.Fields <= 0 || c.BytesPerValue <= 0 || c.FilesPerRank <= 0 {
		return fmt.Errorf("appio: bad checkpoint spec %+v", c)
	}
	return nil
}

// Model holds the path-specific cost constants.
type Model struct {
	// OverlayCopyUpPenalty multiplies write bandwidth for overlay
	// writes (copy-up + d_type bookkeeping on 2016-era overlay).
	OverlayCopyUpPenalty float64
	// OverlayMetadataPerFile is the overlay per-file open cost.
	OverlayMetadataPerFile units.Seconds
	// VolumePenalty multiplies write bandwidth for volume writes
	// (near-native; the bind path through the mount namespace).
	VolumePenalty float64
}

// DefaultModel returns calibrated constants.
func DefaultModel() Model {
	return Model{
		OverlayCopyUpPenalty:   0.55,
		OverlayMetadataPerFile: 3 * units.Millisecond,
		VolumePenalty:          0.97,
	}
}

// Report breaks one checkpoint's write time down.
type Report struct {
	// Path is the storage route.
	Path Path
	// Size is the global checkpoint size.
	Size units.ByteSize
	// WriteTime is the in-run write cost (what the solver waits for).
	WriteTime units.Seconds
	// StageOutTime is the post-run copy to the shared filesystem
	// (zero on the bind-mount path).
	StageOutTime units.Seconds
	// MetadataTime is file-creation overhead across ranks.
	MetadataTime units.Seconds
}

// Total is the full cost attributable to one checkpoint.
func (r Report) Total() units.Seconds {
	return r.WriteTime + r.StageOutTime + r.MetadataTime
}

// CheckpointTime computes the cost of one checkpoint written by a job
// of the given nodes and ranks on cluster cl through path p.
func (m Model) CheckpointTime(cl *cluster.Cluster, nodes, ranks int, ck Checkpoint, p Path) (Report, error) {
	if err := ck.Validate(); err != nil {
		return Report{}, err
	}
	if nodes < 1 || ranks < nodes {
		return Report{}, fmt.Errorf("appio: %d nodes / %d ranks", nodes, ranks)
	}
	size := ck.Size()
	perNode := size / units.ByteSize(nodes)
	rep := Report{Path: p, Size: size}
	switch p {
	case PathBindMount:
		// All nodes write concurrently to the shared filesystem.
		rep.WriteTime = cl.SharedFS.WriteTime(perNode, nodes)
		rep.MetadataTime = cl.SharedFS.MetadataLatency * units.Seconds(ck.FilesPerRank*ranks/nodes)
	case PathOverlay:
		bw := units.Rate(float64(cl.LocalDisk.WriteBW) * m.OverlayCopyUpPenalty)
		rep.WriteTime = bw.TimeFor(perNode)
		rep.MetadataTime = m.OverlayMetadataPerFile * units.Seconds(ck.FilesPerRank*ranks/nodes)
		// Stage-out: read back from local disk and write to the shared
		// filesystem, all nodes concurrently.
		rep.StageOutTime = cl.LocalDisk.ReadTime(perNode) + cl.SharedFS.WriteTime(perNode, nodes)
	case PathVolume:
		bw := units.Rate(float64(cl.LocalDisk.WriteBW) * m.VolumePenalty)
		rep.WriteTime = bw.TimeFor(perNode)
		rep.MetadataTime = cl.SharedFS.MetadataLatency * units.Seconds(ck.FilesPerRank*ranks/nodes)
		rep.StageOutTime = cl.LocalDisk.ReadTime(perNode) + cl.SharedFS.WriteTime(perNode, nodes)
	default:
		return Report{}, fmt.Errorf("appio: unknown path %d", int(p))
	}
	return rep, nil
}
