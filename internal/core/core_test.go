package core

import (
	"errors"
	"testing"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/sched"
)

func TestRunCellBareMetal(t *testing.T) {
	res, err := RunCell(Cell{
		Cluster: cluster.Lenox(),
		Runtime: container.BareMetal{},
		Case:    alya.QuickCFD(2),
		Nodes:   2, Ranks: 8, Threads: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.TimePerStep <= 0 {
		t.Fatalf("time/step %v", res.Exec.TimePerStep)
	}
	if res.Deploy.Runtime != "Bare-metal" {
		t.Fatalf("deploy runtime %q", res.Deploy.Runtime)
	}
}

func TestRunCellAllRuntimesOnLenox(t *testing.T) {
	lenox := cluster.Lenox()
	for _, rt := range container.Runtimes() {
		img, err := BuildImageFor(rt, lenox, container.SystemSpecific)
		if err != nil {
			t.Fatalf("%s: %v", rt.Name(), err)
		}
		res, err := RunCell(Cell{
			Cluster: lenox, Runtime: rt, Image: img,
			Case:  alya.QuickCFD(2),
			Nodes: 2, Ranks: 8, Threads: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", rt.Name(), err)
		}
		if res.Exec.Runtime != rt.Name() {
			t.Fatalf("%s: result labelled %q", rt.Name(), res.Exec.Runtime)
		}
	}
}

func TestRunCellDockerNeedsRoot(t *testing.T) {
	mn4 := cluster.MareNostrum4()
	d := container.Docker{}
	img, err := BuildImageFor(d, mn4, container.SystemSpecific)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunCell(Cell{
		Cluster: mn4, Runtime: d, Image: img,
		Case:  alya.QuickCFD(2),
		Nodes: 2, Ranks: 8, Threads: 1,
	})
	if !errors.Is(err, container.ErrNeedsRoot) {
		t.Fatalf("docker on MN4: %v", err)
	}
}

func TestRunCellValidatesPlan(t *testing.T) {
	_, err := RunCell(Cell{
		Cluster: cluster.Lenox(),
		Runtime: container.BareMetal{},
		Case:    alya.QuickCFD(2),
		Nodes:   4, Ranks: 7, Threads: 1, // 7 ranks over 4 nodes
	})
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
	_, err = RunCell(Cell{})
	if err == nil {
		t.Fatal("empty cell accepted")
	}
}

func TestBuildImageForFormats(t *testing.T) {
	lenox := cluster.Lenox()
	img, err := BuildImageFor(container.Singularity{}, lenox, container.SelfContained)
	if err != nil {
		t.Fatal(err)
	}
	if img.Format != container.FormatSIF {
		t.Fatalf("singularity image format %v", img.Format)
	}
	img, err = BuildImageFor(container.Shifter{}, lenox, container.SystemSpecific)
	if err != nil {
		t.Fatal(err)
	}
	if img.Format != container.FormatSquashFS {
		t.Fatalf("shifter image format %v", img.Format)
	}
	img, err = BuildImageFor(container.BareMetal{}, lenox, container.SystemSpecific)
	if err != nil || img != nil {
		t.Fatalf("bare metal image: %v, %v", img, err)
	}
}

func TestSelfContainedSlowerInterNode(t *testing.T) {
	// The central claim of Fig. 2/3 at cell granularity: on a
	// fast-fabric machine, the self-contained image must run slower
	// than the system-specific one for a multi-node job.
	cte := cluster.CTEPower()
	s := container.Singularity{}
	cs := alya.QuickCFD(2)
	run := func(kind container.BuildKind) Result {
		img, err := BuildImageFor(s, cte, kind)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCell(Cell{
			Cluster: cte, Runtime: s, Image: img, Case: cs,
			Nodes: 2, Ranks: 16, Threads: 1, Placement: sched.PlaceBlock,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sys := run(container.SystemSpecific)
	self := run(container.SelfContained)
	if self.Exec.TimePerStep <= sys.Exec.TimePerStep {
		t.Fatalf("self-contained (%v) not slower than system-specific (%v)",
			self.Exec.TimePerStep, sys.Exec.TimePerStep)
	}
}
