package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/mpi"
	"repro/internal/sched"
)

func baseID() CellID {
	return CellID{
		Cluster: cluster.MareNostrum4(),
		Runtime: container.Singularity{Version: "2.5.1"},
		Kind:    container.SystemSpecific,
		Case:    alya.QuickCFD(4),
		Nodes:   2, Ranks: 96, Threads: 1,
		Placement: sched.PlaceBlock,
		Mode:      alya.ModeModel,
		Allreduce: mpi.AllreduceRecursiveDoubling,
	}
}

func fp(t *testing.T, id CellID) string {
	t.Helper()
	s, err := id.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFingerprintStable asserts the content address is a pure
// function of the identity: same inputs, same hash, across fresh
// preset constructions.
func TestFingerprintStable(t *testing.T) {
	a, b := fp(t, baseID()), fp(t, baseID())
	if a != b {
		t.Fatalf("same identity, different fingerprints: %s vs %s", a, b)
	}
	if len(a) != 64 || strings.Trim(a, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint is not sha256 hex: %q", a)
	}
}

// TestFingerprintSensitivity asserts every simulation-relevant input
// perturbs the hash — the property that makes cache replay safe.
func TestFingerprintSensitivity(t *testing.T) {
	base := fp(t, baseID())
	perturb := map[string]func(*CellID){
		"cluster":         func(id *CellID) { id.Cluster = cluster.CTEPower() },
		"cluster field":   func(id *CellID) { c := cluster.MareNostrum4(); c.RegistryRTT *= 2; id.Cluster = c },
		"runtime":         func(id *CellID) { id.Runtime = container.Shifter{Version: "16.08.3"} },
		"runtime version": func(id *CellID) { id.Runtime = container.Singularity{Version: "2.4.5"} },
		"build kind":      func(id *CellID) { id.Kind = container.SelfContained },
		"image source":    func(id *CellID) { id.ImageFrom = cluster.Lenox() },
		"case steps":      func(id *CellID) { id.Case.SimSteps = 2 },
		"case cg iters":   func(id *CellID) { id.Case.ModelCGIters++ },
		"case mesh":       func(id *CellID) { id.Case.FluidMesh.NZ++ },
		"nodes":           func(id *CellID) { id.Nodes = 4 },
		"ranks":           func(id *CellID) { id.Ranks = 48 },
		"threads":         func(id *CellID) { id.Threads = 2 },
		"placement":       func(id *CellID) { id.Placement = sched.PlaceCyclic },
		"mode":            func(id *CellID) { id.Mode = alya.ModeReal },
		"allreduce":       func(id *CellID) { id.Allreduce = mpi.AllreduceRing },
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range perturb {
		id := baseID()
		mutate(&id)
		got := fp(t, id)
		if prev, dup := seen[got]; dup {
			t.Errorf("perturbing %q collides with %q", name, prev)
		}
		seen[got] = name
	}
}

// TestFingerprintIgnoresRuntimeInstance asserts two equal runtime
// values hash alike even when constructed separately — the identity
// depends on content, not instances.
func TestFingerprintIgnoresRuntimeInstance(t *testing.T) {
	a := baseID()
	b := baseID()
	b.Runtime = container.Singularity{Version: "2.5.1"}
	if fp(t, a) != fp(t, b) {
		t.Fatal("equal runtimes fingerprint differently")
	}
}

// TestFingerprintRejectsIncomplete asserts an identity without a
// cluster or runtime errors instead of hashing a nil.
func TestFingerprintRejectsIncomplete(t *testing.T) {
	id := baseID()
	id.Cluster = nil
	if _, err := id.Fingerprint(); err == nil {
		t.Error("nil cluster accepted")
	}
	id = baseID()
	id.Runtime = nil
	if _, err := id.Fingerprint(); err == nil {
		t.Error("nil runtime accepted")
	}
}

// TestSavedRestoreRoundTrip asserts Saved/Restore reattach a cell
// without touching the outcome.
func TestSavedRestoreRoundTrip(t *testing.T) {
	cl := cluster.Lenox()
	rt := container.Singularity{Version: "2.4.5"}
	img, err := BuildImageFor(rt, cl, container.SystemSpecific)
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{
		Cluster: cl, Runtime: rt, Image: img,
		Case:  alya.QuickCFD(2),
		Nodes: 2, Ranks: 8, Threads: 1,
		Placement: sched.PlaceBlock, Mode: alya.ModeModel,
	}
	res, err := RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	restored := res.Saved().Restore(cell)
	if !reflect.DeepEqual(restored, res) {
		t.Fatal("Saved/Restore changed the result")
	}
}
