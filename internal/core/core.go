// Package core is the study engine — the paper's primary contribution
// expressed as code. A Cell is one measurement: a container runtime
// (or bare metal) executing an Alya case on a cluster in a given hybrid
// configuration; RunCell deploys the image, derives the execution
// profile, runs the case over the simulated MPI, and returns both the
// deployment and the execution metrics that the paper's evaluation
// sections compare.
package core

import (
	"fmt"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/vtime"
)

// Cell is one measurement of the study.
type Cell struct {
	// Cluster is the target machine.
	Cluster *cluster.Cluster
	// Runtime is the container technology (BareMetal for reference).
	Runtime container.Runtime
	// Image is the runtime-format image; nil for bare metal.
	Image *container.Image
	// Case is the Alya configuration.
	Case alya.Case
	// Nodes, Ranks, Threads define the hybrid configuration.
	Nodes, Ranks, Threads int
	// Placement is the rank distribution (default block).
	Placement sched.Placement
	// Mode selects real numerics or the workload model.
	Mode alya.Mode
	// Allreduce picks the collective algorithm.
	Allreduce mpi.AllreduceAlgo
	// Observer and KernelTracer are passive telemetry taps threaded
	// through to the MPI layer. They never influence the measurement —
	// canonCell excludes them from the cell's fingerprint, and sweeps
	// strip them from results before persisting or comparing.
	Observer     mpi.Observer
	KernelTracer vtime.Tracer
}

// Result is one cell's full outcome.
type Result struct {
	// Cell echoes the configuration.
	Cell Cell
	// Deploy is the image-staging breakdown.
	Deploy container.DeployReport
	// Exec is the execution outcome.
	Exec alya.Result
}

// RunCell executes one measurement.
func RunCell(c Cell) (Result, error) {
	if c.Cluster == nil || c.Runtime == nil {
		return Result{}, fmt.Errorf("core: cell needs a cluster and a runtime")
	}
	if err := c.Runtime.Available(c.Cluster); err != nil {
		return Result{}, err
	}

	profile, err := c.Runtime.ExecProfile(c.Cluster, c.Image)
	if err != nil {
		return Result{}, err
	}
	deploy, err := c.Runtime.Deploy(c.Cluster, c.Image, c.Nodes)
	if err != nil {
		return Result{}, err
	}
	job, err := sched.Plan(c.Cluster, c.Nodes, c.Ranks, c.Threads, c.Placement)
	if err != nil {
		return Result{}, err
	}
	exec, err := alya.Run(alya.Spec{
		Job:          job,
		Profile:      profile,
		Case:         c.Case,
		Mode:         c.Mode,
		Allreduce:    c.Allreduce,
		Observer:     c.Observer,
		KernelTracer: c.KernelTracer,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Cell: c, Deploy: deploy, Exec: exec}, nil
}

// BuildImageFor builds the OCI image for a cluster with the given
// technique and converts it to the runtime's executable format. It
// returns nil for bare metal.
func BuildImageFor(rt container.Runtime, c *cluster.Cluster, kind container.BuildKind) (*container.Image, error) {
	if _, ok := rt.(container.BareMetal); ok {
		return nil, nil
	}
	spec := container.BuildSpec{
		Name: "bsc/alya",
		Tag:  "v2.0",
		Arch: c.ISA(),
		Kind: kind,
		App:  "alya",
	}
	if kind == container.SystemSpecific {
		spec.HostABI = c.HostABI
	}
	oci, err := container.BuildOCI(spec)
	if err != nil {
		return nil, err
	}
	return rt.ImageFor(oci)
}
