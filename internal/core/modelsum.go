package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/navier"
	"repro/internal/omp"
	"repro/internal/solid"
)

// ModelChecksum fingerprints the simulator's model constants: the
// cluster tables (which embed the fabric transports and storage
// models), the container runtimes' build/deploy/execution profiles,
// the paper's workload cases, the solver per-cell cost constants, and
// the OpenMP models. Any change to a number that can alter simulated
// output changes the checksum, so persisted results stamped with it
// self-invalidate instead of replaying outdated figures.
func ModelChecksum() string {
	modelChecksumOnce.Do(func() {
		sig, err := modelSignature(cluster.All())
		if err != nil {
			// The tables are static data assembled in code; failing to
			// marshal them is a programming error, not a runtime state.
			panic(fmt.Sprintf("core: model signature: %v", err))
		}
		modelChecksum = checksumOf(sig)
	})
	return modelChecksum
}

var (
	modelChecksumOnce sync.Once
	modelChecksum     string
)

// checksumOf hashes the canonical JSON encoding of a signature.
func checksumOf(sig []byte) string {
	sum := sha256.Sum256(sig)
	return hex.EncodeToString(sum[:])
}

// modelSignature assembles every model table reachable as data for the
// given clusters. Behaviour encoded as arithmetic (deploy breakdowns,
// execution profiles, image builds) is captured through representative
// evaluations per runtime × cluster × technique, so editing a cost
// constant inside any runtime model changes the signature even though
// the constant itself is not exported.
func modelSignature(clusters []*cluster.Cluster) ([]byte, error) {
	type runtimeCell struct {
		Cluster   string `json:"Cluster"`
		Technique string `json:"Technique"`
		// Available is the availability verdict ("" = runnable).
		Available string `json:"Available"`
		// Image, Deploy, Exec capture the runtime's cost tables as
		// evaluated data. Omitted where the runtime is unavailable.
		Image  *container.Image        `json:",omitempty"`
		Deploy *container.DeployReport `json:",omitempty"`
		Exec   *container.ExecProfile  `json:",omitempty"`
	}
	type runtimeSig struct {
		Name   string
		Config container.Runtime
		Cells  []runtimeCell
	}
	sig := struct {
		Clusters []*cluster.Cluster
		Runtimes []runtimeSig
		Cases    []alya.Case
		Solver   map[string]float64
		OMP      []omp.Model
	}{
		Clusters: clusters,
		Cases: []alya.Case{
			alya.ArteryCFDLenox(),
			alya.ArteryCFDCTEPower(),
			alya.ArteryFSIMareNostrum4(),
			alya.QuickCFD(1),
			alya.QuickFSI(1),
		},
		Solver: map[string]float64{
			"navier.AssemblyFlopsPerCell":   navier.AssemblyFlopsPerCell,
			"navier.AssemblyBytesPerCell":   navier.AssemblyBytesPerCell,
			"navier.CGIterFlopsPerCell":     navier.CGIterFlopsPerCell,
			"navier.CGIterBytesPerCell":     navier.CGIterBytesPerCell,
			"navier.ProjectionFlopsPerCell": navier.ProjectionFlopsPerCell,
			"navier.ProjectionBytesPerCell": navier.ProjectionBytesPerCell,
			"solid.StepFlopsPerCell":        solid.StepFlopsPerCell,
			"solid.StepBytesPerCell":        solid.StepBytesPerCell,
		},
	}
	for _, cl := range clusters {
		sig.OMP = append(sig.OMP, omp.DefaultModel(cl.Node))
	}
	for _, rt := range container.Runtimes() {
		rs := runtimeSig{Name: rt.Name(), Config: rt}
		for _, cl := range clusters {
			for _, kind := range []container.BuildKind{container.SystemSpecific, container.SelfContained} {
				cell := runtimeCell{Cluster: cl.Name, Technique: kind.String()}
				if err := rt.Available(cl); err != nil {
					cell.Available = err.Error()
					rs.Cells = append(rs.Cells, cell)
					continue
				}
				img, err := BuildImageFor(rt, cl, kind)
				if err != nil {
					return nil, err
				}
				dep, err := rt.Deploy(cl, img, 2)
				if err != nil {
					return nil, err
				}
				exec, err := rt.ExecProfile(cl, img)
				if err != nil {
					return nil, err
				}
				cell.Image, cell.Deploy, cell.Exec = img, &dep, &exec
				rs.Cells = append(rs.Cells, cell)
			}
		}
		sig.Runtimes = append(sig.Runtimes, rs)
	}
	return json.Marshal(sig)
}
