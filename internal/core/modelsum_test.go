package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/units"
)

func TestModelChecksumStable(t *testing.T) {
	a, b := ModelChecksum(), ModelChecksum()
	if a != b {
		t.Fatalf("checksum unstable: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("checksum %q is not a sha256 hex digest", a)
	}
	sig, err := modelSignature(cluster.All())
	if err != nil {
		t.Fatal(err)
	}
	if got := checksumOf(sig); got != a {
		t.Fatalf("memoized checksum %s diverges from a fresh signature %s", a, got)
	}
}

// TestModelChecksumFlipsOnConstantChange is the self-invalidation
// contract: mutating any simulator model constant must change the
// checksum, so result records stamped with it read as misses.
func TestModelChecksumFlipsOnConstantChange(t *testing.T) {
	base, err := modelSignature(cluster.All())
	if err != nil {
		t.Fatal(err)
	}
	baseSum := checksumOf(base)

	mutations := []struct {
		name   string
		mutate func(cs []*cluster.Cluster)
	}{
		{"fabric latency", func(cs []*cluster.Cluster) {
			cs[0].Interconnect.Native.Latency += units.Microsecond
		}},
		{"fabric bandwidth", func(cs []*cluster.Cluster) {
			cs[1].Interconnect.TCPFallback.Bandwidth *= 2
		}},
		{"cluster size", func(cs []*cluster.Cluster) {
			cs[2].TotalNodes++
		}},
		{"registry uplink", func(cs []*cluster.Cluster) {
			cs[3].RegistryRTT += units.Millisecond
		}},
		{"host ABI", func(cs []*cluster.Cluster) {
			cs[0].HostABI += "-patched"
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			// Constructors return fresh values, so mutating one set
			// cannot leak into other subtests or the memoized checksum.
			mutated := cluster.All()
			m.mutate(mutated)
			sig, err := modelSignature(mutated)
			if err != nil {
				t.Fatal(err)
			}
			if checksumOf(sig) == baseSum {
				t.Fatalf("checksum did not change after mutating %s", m.name)
			}
		})
	}
}
