package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// CellID is the simulation-relevant identity of a measurement: every
// input that can change a cell's simulated output, and nothing else.
// It deliberately names the image by its build inputs (runtime,
// source cluster, technique) rather than by the built artifact — the
// image is a pure function of those inputs, so the identity stays
// cheap to compute without building anything.
type CellID struct {
	// Cluster is the machine the cell runs on.
	Cluster *cluster.Cluster
	// Runtime executes the cell; its concrete value carries the
	// version, which is part of the identity.
	Runtime container.Runtime
	// Kind is the image-building technique.
	Kind container.BuildKind
	// ImageFrom is the cluster the image was built for when it differs
	// from Cluster (cross-cluster portability runs); nil means Cluster.
	ImageFrom *cluster.Cluster
	// Case and the hybrid configuration mirror Cell.
	Case                  alya.Case
	Nodes, Ranks, Threads int
	Placement             sched.Placement
	Mode                  alya.Mode
	Allreduce             mpi.AllreduceAlgo
}

// canonCell is the canonical wire form of a CellID. Enum fields are
// encoded by name, not ordinal, so reordering a Go const block does
// not silently alias old cache entries onto new meanings; the runtime
// interface is split into its display name (the concrete type) and
// its concrete value (the version fields).
type canonCell struct {
	Cluster       *cluster.Cluster `json:"Cluster"`
	Runtime       string           `json:"Runtime"`
	RuntimeConfig interface{}      `json:"RuntimeConfig"`
	Kind          string           `json:"Kind"`
	ImageFrom     *cluster.Cluster `json:",omitempty"`
	Case          alya.Case        `json:"Case"`
	Nodes         int              `json:"Nodes"`
	Ranks         int              `json:"Ranks"`
	Threads       int              `json:"Threads"`
	Placement     string           `json:"Placement"`
	Mode          string           `json:"Mode"`
	Allreduce     string           `json:"Allreduce"`
}

// Canon returns the canonical encoding of the identity: JSON with the
// fixed field order above. Two CellIDs produce the same bytes exactly
// when every simulation-relevant input matches.
func (id CellID) Canon() ([]byte, error) {
	if id.Cluster == nil || id.Runtime == nil {
		return nil, fmt.Errorf("core: cell identity needs a cluster and a runtime")
	}
	return json.Marshal(canonCell{
		Cluster:       id.Cluster,
		Runtime:       id.Runtime.Name(),
		RuntimeConfig: id.Runtime,
		Kind:          id.Kind.String(),
		ImageFrom:     id.ImageFrom,
		Case:          id.Case,
		Nodes:         id.Nodes,
		Ranks:         id.Ranks,
		Threads:       id.Threads,
		Placement:     id.Placement.String(),
		Mode:          id.Mode.String(),
		Allreduce:     id.Allreduce.String(),
	})
}

// Fingerprint returns the content address of the identity: the sha256
// of its canonical encoding, in hex.
func (id CellID) Fingerprint() (string, error) {
	b, err := id.Canon()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// SavedResult is the persistable portion of a Result: the deployment
// and execution outcomes. The Cell echo is excluded — it embeds the
// runtime interface and model pointers, which do not round-trip
// through JSON — and is reattached by the caller from the spec it ran.
// Every field inside is a plain value (strings, ints, float-backed
// units), and Go's JSON encoder emits floats in the shortest form
// that round-trips exactly, so a saved result restores bit-identical.
type SavedResult struct {
	Deploy container.DeployReport `json:"Deploy"`
	Exec   alya.Result            `json:"Exec"`
}

// Saved extracts the persistable portion of a result.
func (r Result) Saved() SavedResult { return SavedResult{Deploy: r.Deploy, Exec: r.Exec} }

// Restore reattaches a cell configuration to a saved result, yielding
// a Result indistinguishable from one RunCell computed for that cell.
func (s SavedResult) Restore(c Cell) Result { return Result{Cell: c, Deploy: s.Deploy, Exec: s.Exec} }
