// Package cluster assembles topology, fabric, and storage into the four
// machines of the study and handles node allocation.
package cluster

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/storage"
	"repro/internal/topology"
	"repro/internal/units"
)

// Cluster is one HPC machine.
type Cluster struct {
	// Name is the machine name, e.g. "MareNostrum4".
	Name string `json:"Name"`
	// Node describes every (homogeneous) compute node.
	Node topology.NodeSpec `json:"Node"`
	// TotalNodes is the machine size; allocations cannot exceed it.
	TotalNodes int `json:"TotalNodes"`
	// Interconnect is the inter-node network.
	Interconnect fabric.Fabric `json:"Interconnect"`
	// SharedFS is the parallel filesystem visible from all nodes.
	SharedFS storage.ParallelFS `json:"SharedFS"`
	// LocalDisk is the per-node drive (Docker image storage).
	LocalDisk storage.LocalDisk `json:"LocalDisk"`
	// RegistryBW and RegistryRTT describe the uplink to the external
	// image registry (Docker Hub class).
	RegistryBW  units.Rate    `json:"RegistryBW"`
	RegistryRTT units.Seconds `json:"RegistryRTT"`
	// HostABI names the host's MPI/fabric software stack. A
	// system-specific image binds the host stack at run time and
	// therefore only works where the ABI matches.
	HostABI string `json:"HostABI"`
	// AdminRights records whether the study had root on the machine —
	// Docker requires it, which is why only Lenox ran Docker.
	AdminRights bool `json:"AdminRights"`
}

// Validate checks the full configuration.
func (c *Cluster) Validate() error {
	if c.TotalNodes <= 0 {
		return fmt.Errorf("cluster %q has %d nodes", c.Name, c.TotalNodes)
	}
	if err := c.Node.Validate(); err != nil {
		return fmt.Errorf("cluster %q: %w", c.Name, err)
	}
	if err := c.Interconnect.Validate(); err != nil {
		return fmt.Errorf("cluster %q: %w", c.Name, err)
	}
	if err := c.SharedFS.Validate(); err != nil {
		return fmt.Errorf("cluster %q: %w", c.Name, err)
	}
	if err := c.LocalDisk.Validate(); err != nil {
		return fmt.Errorf("cluster %q: %w", c.Name, err)
	}
	if c.HostABI == "" {
		return fmt.Errorf("cluster %q has no host ABI", c.Name)
	}
	return nil
}

// ISA returns the cluster's processor architecture.
func (c *Cluster) ISA() topology.ISA { return c.Node.CPU.ISA }

// CoresPerNode returns physical cores per node.
func (c *Cluster) CoresPerNode() int { return c.Node.CoresPerNode() }

// MaxCores returns the machine's total core count.
func (c *Cluster) MaxCores() int { return c.TotalNodes * c.CoresPerNode() }

// Allocate checks that n nodes fit the machine and returns the node ids.
func (c *Cluster) Allocate(n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster %q: allocation of %d nodes", c.Name, n)
	}
	if n > c.TotalNodes {
		return nil, fmt.Errorf("cluster %q: allocation of %d nodes exceeds machine size %d",
			c.Name, n, c.TotalNodes)
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	return nodes, nil
}

// SharedMemTransport returns the intra-node MPI path for this machine.
func (c *Cluster) SharedMemTransport() fabric.Transport {
	return fabric.SharedMemory(c.Node.SharedMemRate, c.Node.SharedMemLatency)
}

// Presets for the four machines, as described in the paper's §A.

// Lenox is the 4-node Lenovo cluster with administrative rights, the
// only machine where Docker and Shifter could be installed.
func Lenox() *Cluster {
	return &Cluster{
		Name:         "Lenox",
		Node:         topology.LenoxNode,
		TotalNodes:   4,
		Interconnect: fabric.GigabitEthernet,
		SharedFS: storage.ParallelFS{
			Name:            "nfs",
			AggregateBW:     110 * units.MBps,
			PerClientBW:     110 * units.MBps,
			MetadataLatency: 2 * units.Millisecond,
		},
		LocalDisk: storage.LocalDisk{
			Name:    "sata-hdd",
			ReadBW:  160 * units.MBps,
			WriteBW: 140 * units.MBps,
		},
		RegistryBW:  85 * units.MBps,
		RegistryRTT: 40 * units.Millisecond,
		HostABI:     "lenox-openmpi1.10-tcp",
		AdminRights: true,
	}
}

// MareNostrum4 is BSC's Tier-0 Skylake machine (3456 nodes, Omni-Path).
func MareNostrum4() *Cluster {
	return &Cluster{
		Name:         "MareNostrum4",
		Node:         topology.MareNostrum4Node,
		TotalNodes:   3456,
		Interconnect: fabric.OmniPath100,
		SharedFS: storage.ParallelFS{
			Name:            "gpfs",
			AggregateBW:     80 * units.GBps,
			PerClientBW:     2 * units.GBps,
			MetadataLatency: 0.5 * units.Millisecond,
		},
		LocalDisk: storage.LocalDisk{
			Name:    "ssd",
			ReadBW:  500 * units.MBps,
			WriteBW: 450 * units.MBps,
		},
		RegistryBW:  500 * units.MBps,
		RegistryRTT: 25 * units.Millisecond,
		HostABI:     "mn4-impi2017-psm2",
		AdminRights: false,
	}
}

// CTEPower is BSC's Power9 cluster (52 nodes, InfiniBand EDR).
func CTEPower() *Cluster {
	return &Cluster{
		Name:         "CTE-POWER",
		Node:         topology.CTEPowerNode,
		TotalNodes:   52,
		Interconnect: fabric.InfiniBandEDR,
		SharedFS: storage.ParallelFS{
			Name:            "gpfs",
			AggregateBW:     20 * units.GBps,
			PerClientBW:     2 * units.GBps,
			MetadataLatency: 0.5 * units.Millisecond,
		},
		LocalDisk: storage.LocalDisk{
			Name:    "nvme",
			ReadBW:  2 * units.GBps,
			WriteBW: 1.2 * units.GBps,
		},
		RegistryBW:  500 * units.MBps,
		RegistryRTT: 25 * units.Millisecond,
		HostABI:     "ctepower-smpi10-verbs",
		AdminRights: false,
	}
}

// ThunderX is the Mont-Blanc Armv8 mini-cluster (4 nodes, 40 GbE).
func ThunderX() *Cluster {
	return &Cluster{
		Name:         "ThunderX",
		Node:         topology.ThunderXNode,
		TotalNodes:   4,
		Interconnect: fabric.FortyGigEthernet,
		SharedFS: storage.ParallelFS{
			Name:            "nfs",
			AggregateBW:     400 * units.MBps,
			PerClientBW:     400 * units.MBps,
			MetadataLatency: 2 * units.Millisecond,
		},
		LocalDisk: storage.LocalDisk{
			Name:    "sata-ssd",
			ReadBW:  350 * units.MBps,
			WriteBW: 300 * units.MBps,
		},
		RegistryBW:  85 * units.MBps,
		RegistryRTT: 40 * units.Millisecond,
		HostABI:     "thunderx-openmpi2-tcp",
		AdminRights: false,
	}
}

// All returns the four study machines in the paper's order.
func All() []*Cluster {
	return []*Cluster{Lenox(), MareNostrum4(), CTEPower(), ThunderX()}
}

// ByName finds a preset cluster, case-sensitively.
func ByName(name string) (*Cluster, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("cluster: unknown machine %q", name)
}
