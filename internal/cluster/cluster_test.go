package cluster

import (
	"testing"

	"repro/internal/topology"
)

func TestPresetsValid(t *testing.T) {
	for _, c := range All() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestPaperSpecs(t *testing.T) {
	cases := []struct {
		name       string
		nodes      int
		cores      int
		isa        topology.ISA
		fabricName string
		admin      bool
	}{
		{"Lenox", 4, 28, topology.AMD64, "1GbE TCP", true},
		{"MareNostrum4", 3456, 48, topology.AMD64, "100Gb/s Omni-Path", false},
		{"CTE-POWER", 52, 40, topology.PPC64LE, "InfiniBand EDR", false},
		{"ThunderX", 4, 96, topology.ARM64, "40GbE TCP", false},
	}
	for _, c := range cases {
		cl, err := ByName(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if cl.TotalNodes != c.nodes {
			t.Errorf("%s: %d nodes, paper says %d", c.name, cl.TotalNodes, c.nodes)
		}
		if cl.CoresPerNode() != c.cores {
			t.Errorf("%s: %d cores/node, paper says %d", c.name, cl.CoresPerNode(), c.cores)
		}
		if cl.ISA() != c.isa {
			t.Errorf("%s: ISA %s, want %s", c.name, cl.ISA(), c.isa)
		}
		if cl.Interconnect.Name != c.fabricName {
			t.Errorf("%s: fabric %q, want %q", c.name, cl.Interconnect.Name, c.fabricName)
		}
		if cl.AdminRights != c.admin {
			t.Errorf("%s: admin rights %v, want %v", c.name, cl.AdminRights, c.admin)
		}
	}
}

func TestMareNostrum4Scale(t *testing.T) {
	mn4 := MareNostrum4()
	// The paper's biggest run: 256 nodes = 12,288 cores.
	if got := 256 * mn4.CoresPerNode(); got != 12288 {
		t.Fatalf("256 nodes = %d cores, want 12288", got)
	}
	if mn4.MaxCores() < 12288 {
		t.Fatalf("machine smaller than the study's largest run")
	}
}

func TestAllocate(t *testing.T) {
	lenox := Lenox()
	nodes, err := lenox.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 || nodes[0] != 0 || nodes[3] != 3 {
		t.Fatalf("allocation %v", nodes)
	}
	if _, err := lenox.Allocate(5); err == nil {
		t.Fatal("allocating 5 of 4 nodes should fail")
	}
	if _, err := lenox.Allocate(0); err == nil {
		t.Fatal("allocating 0 nodes should fail")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Summit"); err == nil {
		t.Fatal("unknown machine should error")
	}
}

func TestHostABIsDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, c := range All() {
		if prev, dup := seen[c.HostABI]; dup {
			t.Errorf("clusters %s and %s share host ABI %q", prev, c.Name, c.HostABI)
		}
		seen[c.HostABI] = c.Name
	}
}

func TestSharedMemTransport(t *testing.T) {
	for _, c := range All() {
		tr := c.SharedMemTransport()
		if err := tr.Validate(); err != nil {
			t.Errorf("%s shm: %v", c.Name, err)
		}
		if tr.Latency >= c.Interconnect.Native.Latency && c.Name != "Lenox" && c.Name != "ThunderX" {
			// On the fast-fabric machines shm must beat the network.
			t.Errorf("%s: shm latency %v not below fabric %v", c.Name, tr.Latency, c.Interconnect.Native.Latency)
		}
	}
}
