package metrics

import (
	"math"
	"testing"

	"repro/internal/units"
)

func series() Series {
	return Series{
		Label: "test",
		Points: []Point{
			{X: 4, T: 16 * units.Second},
			{X: 8, T: 8 * units.Second},
			{X: 16, T: 5 * units.Second},
		},
	}
}

func TestSpeedup(t *testing.T) {
	s := series()
	sp := s.Speedup()
	want := []float64{1, 2, 3.2}
	for i := range want {
		if math.Abs(sp[i]-want[i]) > 1e-12 {
			t.Fatalf("speedup = %v, want %v", sp, want)
		}
	}
}

func TestEfficiency(t *testing.T) {
	s := series()
	eff := s.Efficiency()
	want := []float64{1, 1, 0.8}
	for i := range want {
		if math.Abs(eff[i]-want[i]) > 1e-12 {
			t.Fatalf("efficiency = %v, want %v", eff, want)
		}
	}
}

func TestTimeAt(t *testing.T) {
	s := series()
	v, err := s.TimeAt(8)
	if err != nil || v != 8*units.Second {
		t.Fatalf("TimeAt(8) = %v, %v", v, err)
	}
	if _, err := s.TimeAt(99); err == nil {
		t.Fatal("missing point found")
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if len(s.Speedup()) != 0 || len(s.Efficiency()) != 0 {
		t.Fatal("empty series should give empty stats")
	}
}

func TestRelDiff(t *testing.T) {
	if got := RelDiff(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelDiff = %v", got)
	}
	if !math.IsInf(RelDiff(1, 0), 1) {
		t.Fatal("RelDiff with zero base should be +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
}

func TestMonotone(t *testing.T) {
	inc := []float64{1, 2, 3, 3, 4}
	dec := []float64{4, 3, 2, 2, 1}
	if !Monotone(inc, 1, 0) {
		t.Fatal("increasing not recognized")
	}
	if Monotone(inc, -1, 0) {
		t.Fatal("increasing accepted as decreasing")
	}
	if !Monotone(dec, -1, 0) {
		t.Fatal("decreasing not recognized")
	}
	// Slack tolerates small violations.
	wiggle := []float64{1, 2, 1.99, 3}
	if Monotone(wiggle, 1, 0) {
		t.Fatal("wiggle accepted without slack")
	}
	if !Monotone(wiggle, 1, 0.01) {
		t.Fatal("wiggle rejected with slack")
	}
}
