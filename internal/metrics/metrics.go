// Package metrics provides the statistics the evaluation reports:
// speedups, parallel efficiencies, and series summaries.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Point is one (x, t) sample of a scaling series: x is the swept
// parameter (nodes, ranks), t the measured time.
type Point struct {
	X int
	T units.Seconds
}

// Series is one labelled curve of a figure.
type Series struct {
	// Label names the curve, e.g. "Singularity self-contained".
	Label string
	// Points are the samples in sweep order.
	Points []Point
}

// TimeAt returns the sample at x, or an error if absent.
func (s *Series) TimeAt(x int) (units.Seconds, error) {
	for _, p := range s.Points {
		if p.X == x {
			return p.T, nil
		}
	}
	return 0, fmt.Errorf("metrics: series %q has no sample at %d", s.Label, x)
}

// Speedup converts the series to speedups relative to its first point
// (the paper's Fig. 3 normalization: each variant against its own
// smallest-node run).
func (s *Series) Speedup() []float64 {
	out := make([]float64, len(s.Points))
	if len(s.Points) == 0 {
		return out
	}
	base := s.Points[0].T
	for i, p := range s.Points {
		if p.T > 0 {
			out[i] = float64(base) / float64(p.T)
		}
	}
	return out
}

// Efficiency returns parallel efficiency per point: speedup divided by
// the ideal ratio X/X₀.
func (s *Series) Efficiency() []float64 {
	sp := s.Speedup()
	out := make([]float64, len(sp))
	if len(s.Points) == 0 {
		return out
	}
	x0 := float64(s.Points[0].X)
	for i := range sp {
		ideal := float64(s.Points[i].X) / x0
		if ideal > 0 {
			out[i] = sp[i] / ideal
		}
	}
	return out
}

// RelDiff returns (a−b)/b: the relative overhead of a against b.
func RelDiff(a, b units.Seconds) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return float64(a-b) / float64(b)
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes descriptive statistics of vals.
func Summarize(vals []float64) Summary {
	s := Summary{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	varsum := 0.0
	for _, v := range vals {
		d := v - s.Mean
		varsum += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(varsum / float64(s.N-1))
	}
	return s
}

// Monotone reports whether vals never increase (dir < 0) or never
// decrease (dir > 0), within a relative slack tolerance.
func Monotone(vals []float64, dir int, slack float64) bool {
	for i := 1; i < len(vals); i++ {
		prev, cur := vals[i-1], vals[i]
		switch {
		case dir > 0:
			if cur < prev*(1-slack) {
				return false
			}
		case dir < 0:
			if cur > prev*(1+slack) {
				return false
			}
		}
	}
	return true
}
