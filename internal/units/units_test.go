package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{KiB, "1.00 KiB"},
		{1536, "1.50 KiB"},
		{MiB, "1.00 MiB"},
		{GiB, "1.00 GiB"},
		{2.5 * GiB, "2.50 GiB"},
		{TiB, "1.00 TiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestDecimalUnits(t *testing.T) {
	if KB != 1000 || MB != 1e6 || GB != 1e9 {
		t.Fatalf("decimal units wrong: KB=%v MB=%v GB=%v", float64(KB), float64(MB), float64(GB))
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   Rate
		want string
	}{
		{118 * MBps, "118.00 MB/s"},
		{11.2 * GBps, "11.20 GB/s"},
		{500, "500 B/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Rate.String() = %q, want %q", got, c.want)
		}
	}
}

func TestGbpsRate(t *testing.T) {
	// 100 Gb/s = 12.5 GB/s.
	if got := GbpsRate(100); math.Abs(float64(got)-12.5e9) > 1 {
		t.Fatalf("GbpsRate(100) = %v", float64(got))
	}
}

func TestRateTimeFor(t *testing.T) {
	r := 100 * MBps
	if got := r.TimeFor(100 * MB); math.Abs(float64(got)-1) > 1e-12 {
		t.Fatalf("100MB at 100MB/s = %v, want 1s", got)
	}
	if got := Rate(0).TimeFor(1); !math.IsInf(float64(got), 1) {
		t.Fatalf("zero rate should give +Inf, got %v", got)
	}
	if got := Rate(-5).TimeFor(1); !math.IsInf(float64(got), 1) {
		t.Fatalf("negative rate should give +Inf, got %v", got)
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{0, "0s"},
		{1.5, "1.500s"},
		{90, "1.50m"},
		{2 * Hour, "2.00h"},
		{5 * Millisecond, "5.000ms"},
		{3 * Microsecond, "3.000µs"},
		{50 * Nanosecond, "50.0ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Seconds(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestFlopRate(t *testing.T) {
	r := GFlopsRate(2)
	if got := r.TimeFor(4 * GFlop); math.Abs(float64(got)-2) > 1e-12 {
		t.Fatalf("4 GFlop at 2 GFLOP/s = %v, want 2s", got)
	}
	if !strings.Contains(r.String(), "2.00 GFLOP/s") {
		t.Fatalf("FlopRate.String() = %q", r.String())
	}
	if got := FlopRate(0).TimeFor(1); !math.IsInf(float64(got), 1) {
		t.Fatalf("zero flop rate should give +Inf, got %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Fatal("Max broken")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Min broken")
	}
}

func TestTimeForQuick(t *testing.T) {
	// Property: transfer time scales linearly in size and inversely in
	// rate.
	f := func(sz uint32, rate uint32) bool {
		if rate == 0 {
			return true
		}
		r := Rate(rate)
		s1 := r.TimeFor(ByteSize(sz))
		s2 := r.TimeFor(ByteSize(sz) * 2)
		return math.Abs(float64(s2-2*s1)) <= 1e-9*math.Abs(float64(s2))+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
