// Package units provides the physical quantities used throughout the
// simulator: byte sizes, data rates, and virtual durations.
//
// All model arithmetic is done in float64 seconds and float64 bytes to
// avoid the overflow and rounding traps of time.Duration at the scale of
// a 12,288-core simulation (hundreds of millions of sub-microsecond
// events). Conversion helpers to time.Duration exist only at reporting
// boundaries.
package units

import (
	"fmt"
	"math"
)

// ByteSize is a number of bytes. It is a float64 so that per-byte model
// costs (e.g. LogGP G values multiplied by fractional effective sizes)
// compose without conversions.
type ByteSize float64

// Common byte sizes.
const (
	Byte ByteSize = 1
	KiB           = 1024 * Byte
	MiB           = 1024 * KiB
	GiB           = 1024 * MiB
	TiB           = 1024 * GiB
)

// KB, MB, GB are decimal units, used by network rates and image sizes
// as vendors report them.
const (
	KB ByteSize = 1000 * Byte
	MB          = 1000 * KB
	GB          = 1000 * MB
)

// String renders the size with a binary-prefix unit chosen so the
// mantissa is in [1, 1024).
func (b ByteSize) String() string {
	abs := math.Abs(float64(b))
	switch {
	case abs >= float64(TiB):
		return fmt.Sprintf("%.2f TiB", float64(b/TiB))
	case abs >= float64(GiB):
		return fmt.Sprintf("%.2f GiB", float64(b/GiB))
	case abs >= float64(MiB):
		return fmt.Sprintf("%.2f MiB", float64(b/MiB))
	case abs >= float64(KiB):
		return fmt.Sprintf("%.2f KiB", float64(b/KiB))
	default:
		return fmt.Sprintf("%.0f B", float64(b))
	}
}

// Bytes returns the size as a float64 count of bytes.
func (b ByteSize) Bytes() float64 { return float64(b) }

// Rate is a data rate in bytes per second.
type Rate float64

// Common data rates. Network link rates are decimal (as marketed);
// memory bandwidths use the same decimal convention for consistency.
const (
	BytePerSecond Rate = 1
	KBps               = 1000 * BytePerSecond
	MBps               = 1000 * KBps
	GBps               = 1000 * MBps
)

// GbpsRate converts a link speed in gigabits per second into a Rate.
func GbpsRate(gbps float64) Rate { return Rate(gbps * 1e9 / 8) }

// String renders the rate with a decimal unit.
func (r Rate) String() string {
	abs := math.Abs(float64(r))
	switch {
	case abs >= float64(GBps):
		return fmt.Sprintf("%.2f GB/s", float64(r/GBps))
	case abs >= float64(MBps):
		return fmt.Sprintf("%.2f MB/s", float64(r/MBps))
	case abs >= float64(KBps):
		return fmt.Sprintf("%.2f KB/s", float64(r/KBps))
	default:
		return fmt.Sprintf("%.0f B/s", float64(r))
	}
}

// TimeFor returns the seconds needed to move size bytes at rate r.
// A non-positive rate yields +Inf, which propagates loudly through any
// model that forgot to configure a link.
func (r Rate) TimeFor(size ByteSize) Seconds {
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(size) / float64(r))
}

// Seconds is a virtual duration or instant measured in seconds.
type Seconds float64

// Common durations.
const (
	Second      Seconds = 1
	Millisecond         = 1e-3 * Second
	Microsecond         = 1e-6 * Second
	Nanosecond          = 1e-9 * Second
	Minute              = 60 * Second
	Hour                = 60 * Minute
)

// String renders the duration with a unit chosen by magnitude.
func (s Seconds) String() string {
	abs := math.Abs(float64(s))
	switch {
	case abs == 0:
		return "0s"
	case abs >= float64(Hour):
		return fmt.Sprintf("%.2fh", float64(s/Hour))
	case abs >= float64(Minute):
		return fmt.Sprintf("%.2fm", float64(s/Minute))
	case abs >= 1:
		return fmt.Sprintf("%.3fs", float64(s))
	case abs >= float64(Millisecond):
		return fmt.Sprintf("%.3fms", float64(s/Millisecond))
	case abs >= float64(Microsecond):
		return fmt.Sprintf("%.3fµs", float64(s/Microsecond))
	default:
		return fmt.Sprintf("%.1fns", float64(s/Nanosecond))
	}
}

// Flops counts floating-point operations.
type Flops float64

// Common op counts.
const (
	Flop  Flops = 1
	KFlop       = 1e3 * Flop
	MFlop       = 1e6 * Flop
	GFlop       = 1e9 * Flop
	TFlop       = 1e12 * Flop
)

// FlopRate is floating-point operations per second.
type FlopRate float64

// GFlopsRate converts GFLOP/s into a FlopRate.
func GFlopsRate(gf float64) FlopRate { return FlopRate(gf * 1e9) }

// String renders the rate in GFLOP/s.
func (f FlopRate) String() string { return fmt.Sprintf("%.2f GFLOP/s", float64(f)/1e9) }

// TimeFor returns the seconds needed to execute w flops at rate f.
func (f FlopRate) TimeFor(w Flops) Seconds {
	if f <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(w) / float64(f))
}

// Max returns the larger of two durations.
func Max(a, b Seconds) Seconds {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of two durations.
func Min(a, b Seconds) Seconds {
	if a < b {
		return a
	}
	return b
}
