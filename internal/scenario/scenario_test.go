package scenario

import (
	"strings"
	"testing"
)

// validSpec is a minimal spec every mutation test starts from.
func validSpec() Spec {
	return Spec{
		Name:    "demo",
		Cluster: "Lenox",
		Case:    CaseSpec{Name: "quick-cfd"},
		Configs: []ConfigSpec{
			{Runtime: "Bare-metal"},
			{Label: "Sing", Runtime: "Singularity"},
		},
		Grid: GridSpec{Nodes: []int{1, 2}, RanksPerNode: 4},
	}
}

func TestCompileValidSpecDefaults(t *testing.T) {
	st, err := validSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if st.Title() != "demo" {
		t.Fatalf("title default = %q, want the name", st.Title())
	}
	if got := st.configLabels(); got[0] != "Bare-metal" || got[1] != "Sing" {
		t.Fatalf("labels = %v (first should default to the runtime name)", got)
	}
	if len(st.Cells()) != 4 || len(st.Keys()) != 4 {
		t.Fatalf("%d cells, %d keys, want 4", len(st.Cells()), len(st.Keys()))
	}
	if got := st.Cells()[1].Label; got != "demo Bare-metal 2 nodes" {
		t.Fatalf("cell label = %q", got)
	}
	if st.axisHeader() != "Nodes" || st.csvAxisHeader() != "nodes" {
		t.Fatalf("axis headers = %q/%q", st.axisHeader(), st.csvAxisHeader())
	}
}

// TestCompileFieldErrors is the validation contract: every spec
// mistake is rejected with a *FieldError naming the offending field
// path — never a panic, never a generic message.
func TestCompileFieldErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		path   string
	}{
		{"missing name", func(s *Spec) { s.Name = "" }, "name"},
		{"missing cluster", func(s *Spec) { s.Cluster = "" }, "cluster"},
		{"unknown cluster", func(s *Spec) { s.Cluster = "Lennox" }, "cluster"},
		{"missing case", func(s *Spec) { s.Case.Name = "" }, "case.name"},
		{"unknown case", func(s *Spec) { s.Case.Name = "artery-cfd-lennox" }, "case.name"},
		{"negative sim steps", func(s *Spec) { s.Case.SimSteps = -1 }, "case.sim_steps"},
		{"inconsistent case", func(s *Spec) { s.Case.Steps = 2; s.Case.SimSteps = 9 }, "case"},
		{"no configs", func(s *Spec) { s.Configs = nil }, "configs"},
		{"missing runtime", func(s *Spec) { s.Configs[1].Runtime = "" }, "configs[1].runtime"},
		{"unknown runtime", func(s *Spec) { s.Configs[1].Runtime = "Podman" }, "configs[1].runtime"},
		{"bare-metal version", func(s *Spec) { s.Configs[0].Version = "2" }, "configs[0].version"},
		{"unknown technique", func(s *Spec) { s.Configs[1].Technique = "static" }, "configs[1].technique"},
		{"unknown image source", func(s *Spec) { s.Configs[1].ImageFrom = "Lennox" }, "configs[1].image_from"},
		{"duplicate labels", func(s *Spec) { s.Configs[1].Label = "Bare-metal" }, "configs[1].label"},
		{"duplicate cells", func(s *Spec) {
			// Two distinctly labelled but physically identical configs
			// enumerate the same fingerprints.
			s.Configs[1] = ConfigSpec{Label: "also bare", Runtime: "Bare-metal"}
		}, "configs[1] x grid.nodes[0]"},
		{"empty grid", func(s *Spec) { s.Grid = GridSpec{} }, "grid"},
		{"both grids", func(s *Spec) { s.Grid.Hybrid = []HybridSpec{{8, 14}} }, "grid"},
		{"zero nodes", func(s *Spec) { s.Grid.Nodes[0] = 0 }, "grid.nodes[0]"},
		{"oversized nodes", func(s *Spec) { s.Grid.Nodes[1] = 999 }, "grid.nodes[1]"},
		{"duplicate nodes", func(s *Spec) { s.Grid.Nodes = []int{2, 2} }, "grid.nodes[1]"},
		{"fixed_nodes on nodes grid", func(s *Spec) { s.Grid.FixedNodes = 4 }, "grid.fixed_nodes"},
		{"negative ranks per node", func(s *Spec) { s.Grid.RanksPerNode = -4 }, "grid.ranks_per_node"},
		{"oversubscribed ranks per node", func(s *Spec) { s.Grid.RanksPerNode = 4096 }, "grid.ranks_per_node"},
		{"oversubscribed threads", func(s *Spec) {
			// Default ranks/node = all cores, so any threads > 1 spills.
			s.Grid.RanksPerNode = 0
			s.Grid.Threads = 2
		}, "grid.threads"},
		{"hybrid ranks not dividing", func(s *Spec) {
			// Lenox has 4 nodes; 3 ranks cannot spread evenly.
			s.Grid = GridSpec{Hybrid: []HybridSpec{{Ranks: 3, Threads: 1}}}
		}, "grid.hybrid[0].ranks"},
		{"oversubscribed hybrid", func(s *Spec) {
			// 112 ranks / 4 nodes = 28/node × 4 threads > 28 cores.
			s.Grid = GridSpec{Hybrid: []HybridSpec{{Ranks: 112, Threads: 4}}}
		}, "grid.hybrid[0]"},
		{"hybrid zero threads", func(s *Spec) {
			s.Grid = GridSpec{Hybrid: []HybridSpec{{Ranks: 8}}}
		}, "grid.hybrid[0].threads"},
		{"hybrid zero ranks", func(s *Spec) {
			s.Grid = GridSpec{Hybrid: []HybridSpec{{Threads: 2}}}
		}, "grid.hybrid[0].ranks"},
		{"duplicate hybrid", func(s *Spec) {
			s.Grid = GridSpec{Hybrid: []HybridSpec{{8, 14}, {8, 14}}}
		}, "grid.hybrid[1]"},
		{"threads on hybrid grid", func(s *Spec) {
			s.Grid = GridSpec{Hybrid: []HybridSpec{{8, 14}}, Threads: 2}
		}, "grid.threads"},
		{"oversized fixed_nodes", func(s *Spec) {
			s.Grid = GridSpec{Hybrid: []HybridSpec{{8, 14}}, FixedNodes: 9}
		}, "grid.fixed_nodes"},
		{"unknown mode", func(s *Spec) { s.Mode = "fast" }, "mode"},
		{"unknown allreduce", func(s *Spec) { s.Allreduce = "butterfly" }, "allreduce"},
		{"unknown column kind", func(s *Spec) {
			s.Report.Columns = []ColumnSpec{{Kind: "latency"}}
		}, "report.columns[0].kind"},
		{"baseline on time column", func(s *Spec) {
			s.Report.Columns = []ColumnSpec{{Kind: "time", Baseline: "Sing"}}
		}, "report.columns[0].baseline"},
		{"speedup without baseline", func(s *Spec) {
			s.Report.Columns = []ColumnSpec{{Kind: "speedup"}}
		}, "report.columns[0].baseline"},
		{"absent baseline config", func(s *Spec) {
			s.Report.Columns = []ColumnSpec{{Kind: "time"}, {Kind: "speedup", Baseline: "Docker"}}
		}, "report.columns[1].baseline"},
		{"absent efficiency baseline", func(s *Spec) {
			s.Report.Columns = []ColumnSpec{{Kind: "efficiency", Baseline: "nope"}}
		}, "report.columns[0].baseline"},
	}
	for _, tc := range cases {
		sp := validSpec()
		tc.mutate(&sp)
		_, err := sp.Compile()
		if err == nil {
			t.Errorf("%s: compiled", tc.name)
			continue
		}
		fe, ok := err.(*FieldError)
		if !ok {
			t.Errorf("%s: error is %T (%v), want *FieldError", tc.name, err, err)
			continue
		}
		if !strings.HasPrefix(fe.Path, tc.path) {
			t.Errorf("%s: error path %q, want prefix %q (%v)", tc.name, fe.Path, tc.path, err)
		}
	}
}

// TestParseRejectsUnknownFields asserts a misspelled knob is an
// error, not a silently applied default.
func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"name": "x", "clutser": "Lenox"}`), "bad.json")
	if err == nil || !strings.Contains(err.Error(), "clutser") {
		t.Fatalf("unknown field accepted: %v", err)
	}
	_, err = ParseSpec(strings.NewReader(`{"name": "x"} {"name": "y"}`), "two.json")
	if err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing data accepted: %v", err)
	}
}

// TestLoadMissingFile asserts a readable error for a bad path.
func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("no/such/spec.json"); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestImageFromSelfNormalises asserts naming the study cluster as the
// image source is identical to omitting it, so the fingerprint
// matches a spec that leaves the default.
func TestImageFromSelfNormalises(t *testing.T) {
	a := validSpec()
	b := validSpec()
	b.Configs[1].ImageFrom = "Lenox"
	sa, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa.Keys() {
		if sa.Keys()[i] != sb.Keys()[i] {
			t.Fatalf("cell %d fingerprint changed by self image_from", i)
		}
	}
}
