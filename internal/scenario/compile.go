package scenario

import (
	"fmt"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/experiments"
	"repro/internal/mpi"
)

// Study is a compiled spec: every name resolved against the model,
// every grid point expanded into an experiments.CellSpec, and the
// report layout planned. Compilation is pure — no image builds, no
// simulation — so `hpcstudy validate` and -list stay instant.
type Study struct {
	spec    Spec
	title   string
	cluster *cluster.Cluster
	cs      alya.Case
	configs []config
	axis    []axisPoint
	mode    alya.Mode
	algo    mpi.AllreduceAlgo
	columns []column
	cells   []experiments.CellSpec
	keys    []string
}

// config is one resolved configuration.
type config struct {
	label     string
	runtime   container.Runtime
	kind      container.BuildKind
	imageFrom *cluster.Cluster
}

// axisPoint is one resolved grid point.
type axisPoint struct {
	// path locates the point in the spec for duplicate-cell errors
	// ("grid.nodes[2]").
	path string
	// label names the point in cell labels ("4 nodes", "8x14").
	label string
	// rowCell renders the axis column of the point's table/CSV row —
	// an int for a nodes grid, the "RxT" string for a hybrid one.
	rowCell any
	// x is the numeric axis value (node count / rank count).
	x                     int
	nodes, ranks, threads int
}

// column kinds.
const (
	colTime = iota
	colSpeedup
	colEfficiency
)

// column is one planned column group; baseline indexes configs for
// speedup/efficiency.
type column struct {
	kind     int
	baseline int
}

// Compile validates the spec against the model and expands it into
// runnable cells. Every validation failure is a *FieldError naming
// the offending field path.
func (sp Spec) Compile() (*Study, error) {
	if sp.Name == "" {
		return nil, errf("name", "required")
	}
	st := &Study{spec: sp, title: sp.Title}
	if st.title == "" {
		st.title = sp.Name
	}

	// Cluster.
	if sp.Cluster == "" {
		return nil, errf("cluster", "required (known: %s)", joinKnown(clusterNames()))
	}
	cl, err := cluster.ByName(sp.Cluster)
	if err != nil {
		return nil, errf("cluster", "unknown machine %q (known: %s)", sp.Cluster, joinKnown(clusterNames()))
	}
	st.cluster = cl

	// Case.
	if sp.Case.Name == "" {
		return nil, errf("case.name", "required (known: %s)", joinKnown(alya.CaseNames()))
	}
	cs, err := alya.CaseByName(sp.Case.Name)
	if err != nil {
		return nil, errf("case.name", "unknown case %q (known: %s)", sp.Case.Name, joinKnown(alya.CaseNames()))
	}
	for _, f := range []struct {
		path string
		v    int
		dst  *int
	}{
		{"case.steps", sp.Case.Steps, &cs.Steps},
		{"case.sim_steps", sp.Case.SimSteps, &cs.SimSteps},
		{"case.model_cg_iters", sp.Case.ModelCGIters, &cs.ModelCGIters},
	} {
		if f.v < 0 {
			return nil, errf(f.path, "must be ≥ 1 (0 keeps the case's own value), got %d", f.v)
		}
		if f.v > 0 {
			*f.dst = f.v
		}
	}
	if err := cs.Validate(); err != nil {
		return nil, errf("case", "%v", err)
	}
	st.cs = cs

	// Configs.
	if len(sp.Configs) == 0 {
		return nil, errf("configs", "at least one configuration is required")
	}
	seenLabels := make(map[string]int)
	for i, c := range sp.Configs {
		path := fmt.Sprintf("configs[%d]", i)
		if c.Runtime == "" {
			return nil, errf(path+".runtime", "required (known: %s)", joinKnown(runtimeNames()))
		}
		rt, err := container.ByName(c.Runtime)
		if err != nil {
			return nil, errf(path+".runtime", "unknown runtime %q (known: %s)", c.Runtime, joinKnown(runtimeNames()))
		}
		if c.Version != "" {
			if rt, err = container.ByNameVersion(c.Runtime, c.Version); err != nil {
				return nil, errf(path+".version", "%v", err)
			}
		}
		kind, err := parseTechnique(c.Technique)
		if err != nil {
			return nil, errf(path+".technique", "%v", err)
		}
		var imageFrom *cluster.Cluster
		if c.ImageFrom != "" && c.ImageFrom != sp.Cluster {
			if imageFrom, err = cluster.ByName(c.ImageFrom); err != nil {
				return nil, errf(path+".image_from", "unknown machine %q (known: %s)", c.ImageFrom, joinKnown(clusterNames()))
			}
		}
		label := c.Label
		if label == "" {
			label = rt.Name()
		}
		if prev, dup := seenLabels[label]; dup {
			return nil, errf(path+".label", "duplicate label %q (also configs[%d])", label, prev)
		}
		seenLabels[label] = i
		st.configs = append(st.configs, config{label: label, runtime: rt, kind: kind, imageFrom: imageFrom})
	}

	// Grid.
	if err := st.compileGrid(sp.Grid); err != nil {
		return nil, err
	}

	// Mode and allreduce.
	if st.mode, err = parseMode(sp.Mode); err != nil {
		return nil, errf("mode", "%v", err)
	}
	if st.algo, err = parseAllreduce(sp.Allreduce); err != nil {
		return nil, errf("allreduce", "%v", err)
	}

	// Report columns.
	cols := sp.Report.Columns
	if len(cols) == 0 {
		cols = []ColumnSpec{{Kind: "time"}}
	}
	for i, c := range cols {
		path := fmt.Sprintf("report.columns[%d]", i)
		var kind int
		switch c.Kind {
		case "time":
			kind = colTime
		case "speedup":
			kind = colSpeedup
		case "efficiency":
			kind = colEfficiency
		default:
			return nil, errf(path+".kind", "unknown kind %q (time, speedup, efficiency)", c.Kind)
		}
		baseline := -1
		if kind == colTime {
			if c.Baseline != "" {
				return nil, errf(path+".baseline", "only meaningful for speedup/efficiency columns")
			}
		} else {
			if c.Baseline == "" {
				return nil, errf(path+".baseline", "required for %s columns (name a config label)", c.Kind)
			}
			ci, ok := seenLabels[c.Baseline]
			if !ok {
				return nil, errf(path+".baseline", "unknown config %q (configs: %s)", c.Baseline, joinKnown(st.configLabels()))
			}
			baseline = ci
		}
		st.columns = append(st.columns, column{kind: kind, baseline: baseline})
	}

	// Cells: configs outer, axis inner — the same sweep order the
	// hand-coded studies enumerate, so store pinning, sharding, and
	// stats line up cell for cell.
	st.cells = make([]experiments.CellSpec, 0, len(st.configs)*len(st.axis))
	st.keys = make([]string, 0, cap(st.cells))
	seenCells := make(map[string]string)
	for ci := range st.configs {
		cfg := &st.configs[ci]
		for ai := range st.axis {
			ax := &st.axis[ai]
			cell := experiments.CellSpec{
				Label:   fmt.Sprintf("%s %s %s", sp.Name, cfg.label, ax.label),
				Cluster: st.cluster, Runtime: cfg.runtime, Kind: cfg.kind,
				ImageFrom: cfg.imageFrom,
				Case:      st.cs,
				Nodes:     ax.nodes, Ranks: ax.ranks, Threads: ax.threads,
				Mode: st.mode, Allreduce: st.algo,
			}
			key, err := cell.Key()
			if err != nil {
				return nil, errf(fmt.Sprintf("configs[%d] x %s", ci, ax.path), "%v", err)
			}
			at := fmt.Sprintf("configs[%d] x %s", ci, ax.path)
			if prev, dup := seenCells[key]; dup {
				return nil, errf(at, "duplicate cell (same fingerprint as %s)", prev)
			}
			seenCells[key] = at
			st.cells = append(st.cells, cell)
			st.keys = append(st.keys, key)
		}
	}
	return st, nil
}

// compileGrid expands the grid into axis points.
func (st *Study) compileGrid(g GridSpec) error {
	switch {
	case len(g.Nodes) > 0 && len(g.Hybrid) > 0:
		return errf("grid", "nodes and hybrid are mutually exclusive")
	case len(g.Nodes) == 0 && len(g.Hybrid) == 0:
		return errf("grid", "empty grid: set nodes or hybrid")
	case len(g.Nodes) > 0:
		if g.FixedNodes != 0 {
			return errf("grid.fixed_nodes", "only meaningful with a hybrid grid")
		}
		rpn := g.RanksPerNode
		switch {
		case rpn < 0:
			return errf("grid.ranks_per_node", "must be ≥ 1 (0 means the cluster's %d cores per node), got %d",
				st.cluster.CoresPerNode(), rpn)
		case rpn == 0:
			rpn = st.cluster.CoresPerNode()
		}
		threads := g.Threads
		switch {
		case threads < 0:
			return errf("grid.threads", "must be ≥ 1 (0 means 1), got %d", threads)
		case threads == 0:
			threads = 1
		}
		// Mirror the scheduler's capacity rule eagerly, so an
		// oversubscribed spec fails validate with a field path instead
		// of failing every cell at run time (and poisoning the negative
		// cache with pure spec mistakes).
		if cores := st.cluster.CoresPerNode(); rpn*threads > cores {
			path := "grid.threads"
			if g.RanksPerNode != 0 {
				path = "grid.ranks_per_node"
			}
			return errf(path, "%d ranks/node × %d threads oversubscribe %s's %d cores per node",
				rpn, threads, st.cluster.Name, cores)
		}
		seen := make(map[int]int)
		for i, n := range g.Nodes {
			path := fmt.Sprintf("grid.nodes[%d]", i)
			if n < 1 {
				return errf(path, "must be ≥ 1, got %d", n)
			}
			if n > st.cluster.TotalNodes {
				return errf(path, "%d nodes exceed %s's %d", n, st.cluster.Name, st.cluster.TotalNodes)
			}
			if prev, dup := seen[n]; dup {
				return errf(path, "duplicate node count %d (also grid.nodes[%d])", n, prev)
			}
			seen[n] = i
			st.axis = append(st.axis, axisPoint{
				path: path, label: fmt.Sprintf("%d nodes", n), rowCell: n,
				x: n, nodes: n, ranks: n * rpn, threads: threads,
			})
		}
	default: // hybrid
		if g.RanksPerNode != 0 {
			return errf("grid.ranks_per_node", "only meaningful with a nodes grid")
		}
		if g.Threads != 0 {
			return errf("grid.threads", "only meaningful with a nodes grid")
		}
		nodes := g.FixedNodes
		switch {
		case nodes < 0:
			return errf("grid.fixed_nodes", "must be ≥ 1 (0 means the whole machine), got %d", nodes)
		case nodes == 0:
			nodes = st.cluster.TotalNodes
		case nodes > st.cluster.TotalNodes:
			return errf("grid.fixed_nodes", "%d nodes exceed %s's %d", nodes, st.cluster.Name, st.cluster.TotalNodes)
		}
		seen := make(map[HybridSpec]int)
		for i, h := range g.Hybrid {
			path := fmt.Sprintf("grid.hybrid[%d]", i)
			if h.Ranks < 1 {
				return errf(path+".ranks", "must be ≥ 1, got %d", h.Ranks)
			}
			if h.Threads < 1 {
				return errf(path+".threads", "must be ≥ 1, got %d", h.Threads)
			}
			if prev, dup := seen[h]; dup {
				return errf(path, "duplicate decomposition %dx%d (also grid.hybrid[%d])", h.Ranks, h.Threads, prev)
			}
			seen[h] = i
			// The scheduler's placement rules, checked eagerly: ranks
			// spread evenly over the nodes and never oversubscribe
			// cores.
			if h.Ranks%nodes != 0 {
				return errf(path+".ranks", "%d ranks do not divide over %d nodes", h.Ranks, nodes)
			}
			if cores := st.cluster.CoresPerNode(); (h.Ranks/nodes)*h.Threads > cores {
				return errf(path, "%d ranks/node × %d threads oversubscribe %s's %d cores per node",
					h.Ranks/nodes, h.Threads, st.cluster.Name, cores)
			}
			label := fmt.Sprintf("%dx%d", h.Ranks, h.Threads)
			st.axis = append(st.axis, axisPoint{
				path: path, label: label, rowCell: label,
				x: h.Ranks, nodes: nodes, ranks: h.Ranks, threads: h.Threads,
			})
		}
	}
	return nil
}

// Name returns the spec's study name.
func (st *Study) Name() string { return st.spec.Name }

// Title returns the rendered title.
func (st *Study) Title() string { return st.title }

// Cells returns the compiled cells in sweep order. The slice is owned
// by the study; callers must not mutate it.
func (st *Study) Cells() []experiments.CellSpec { return st.cells }

// Keys returns each cell's result-store content address, aligned with
// Cells.
func (st *Study) Keys() []string { return st.keys }

// Shape summarises the compiled study for validate/list output.
func (st *Study) Shape() string {
	return fmt.Sprintf("%d configs x %d grid points = %d cells on %s",
		len(st.configs), len(st.axis), len(st.cells), st.cluster.Name)
}

// configLabels lists the resolved config labels in order.
func (st *Study) configLabels() []string {
	out := make([]string, len(st.configs))
	for i := range st.configs {
		out[i] = st.configs[i].label
	}
	return out
}

// clusterNames lists the preset machines for error messages.
func clusterNames() []string {
	all := cluster.All()
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.Name
	}
	return out
}

// runtimeNames lists the runtimes for error messages.
func runtimeNames() []string {
	all := container.Runtimes()
	out := make([]string, len(all))
	for i, rt := range all {
		out[i] = rt.Name()
	}
	return out
}

// parseTechnique resolves a build-technique display name.
func parseTechnique(s string) (container.BuildKind, error) {
	switch s {
	case "", container.SystemSpecific.String():
		return container.SystemSpecific, nil
	case container.SelfContained.String():
		return container.SelfContained, nil
	}
	return 0, fmt.Errorf("unknown technique %q (%s, %s)", s, container.SystemSpecific, container.SelfContained)
}

// parseMode resolves an execution-mode display name.
func parseMode(s string) (alya.Mode, error) {
	switch s {
	case "", alya.ModeModel.String():
		return alya.ModeModel, nil
	case alya.ModeReal.String():
		return alya.ModeReal, nil
	}
	return 0, fmt.Errorf("unknown mode %q (%s, %s)", s, alya.ModeModel, alya.ModeReal)
}

// parseAllreduce resolves an allreduce algorithm display name.
func parseAllreduce(s string) (mpi.AllreduceAlgo, error) {
	algos := []mpi.AllreduceAlgo{
		mpi.AllreduceRecursiveDoubling, mpi.AllreduceRing,
		mpi.AllreduceReduceBcast, mpi.AllreduceHierarchical,
	}
	if s == "" {
		return mpi.AllreduceRecursiveDoubling, nil
	}
	names := make([]string, len(algos))
	for i, a := range algos {
		if s == a.String() {
			return a, nil
		}
		names[i] = a.String()
	}
	return 0, fmt.Errorf("unknown allreduce %q (%s)", s, joinKnown(names))
}
