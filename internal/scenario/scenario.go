// Package scenario turns user-authored JSON study specs into runs of
// the shared sweep engine. The paper's evaluation is five hand-coded
// studies; this package is the declarative generalisation: a spec
// names a cluster, a workload case, a set of runtime configurations,
// and a grid of node/rank/thread points, plus a report layout, and the
// compiler lowers it onto the exact machinery the built-in figures
// use — experiments.CellSpec enumeration, the bounded-worker Sweep
// (inheriting parallelism, the result store, sharding, merge,
// negative caching, and pinning unchanged), and internal/report
// rendering. A spec that re-expresses Fig. 1 or Fig. 2 produces
// byte-identical output to the hand-coded study, cold or warm.
//
// Specs are validated eagerly with field-path errors ("configs[2]
// .runtime: unknown runtime ..."), so a typo surfaces as one precise
// message before any cell simulates, and unknown JSON fields are
// rejected rather than ignored.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Spec is the JSON form of a user-authored study: everything the five
// hand-coded studies hard-code, as data.
type Spec struct {
	// Name labels the study in output footers, cell labels, and
	// errors ("fig2"). Required.
	Name string `json:"name"`
	// Title is printed above the rendered table; defaults to Name.
	Title string `json:"title,omitempty"`
	// Cluster names the target machine (cluster.ByName). Required.
	Cluster string `json:"cluster"`
	// Case selects and optionally resizes the workload.
	Case CaseSpec `json:"case"`
	// Configs are the compared runtime configurations — the table's
	// column groups. At least one is required.
	Configs []ConfigSpec `json:"configs"`
	// Grid is the swept axis: node counts or hybrid ranks×threads
	// decompositions.
	Grid GridSpec `json:"grid"`
	// Mode selects the execution mode: "model" (default) or "real".
	Mode string `json:"mode,omitempty"`
	// Allreduce selects the collective algorithm by its display name:
	// "recursive-doubling" (default), "ring", "reduce+bcast", or
	// "hierarchical".
	Allreduce string `json:"allreduce,omitempty"`
	// Report shapes the rendered output.
	Report ReportSpec `json:"report,omitempty"`
}

// CaseSpec selects a named workload case and optionally resizes it.
type CaseSpec struct {
	// Name is one of alya.CaseNames(). Required.
	Name string `json:"name"`
	// Steps overrides the reported physical step count (0 keeps the
	// case's own).
	Steps int `json:"steps,omitempty"`
	// SimSteps overrides how many steps actually simulate — the same
	// knob the CLI's -quick uses (0 keeps the case's own).
	SimSteps int `json:"sim_steps,omitempty"`
	// ModelCGIters overrides the fixed CG iteration count of
	// ModeModel (0 keeps the case's own).
	ModelCGIters int `json:"model_cg_iters,omitempty"`
}

// ConfigSpec is one compared configuration: a runtime at a version,
// an image-building technique, and optionally a foreign build cluster.
type ConfigSpec struct {
	// Label names the configuration in headers and cell labels;
	// defaults to the runtime name.
	Label string `json:"label,omitempty"`
	// Runtime is the display name: "Bare-metal", "Docker",
	// "Singularity", or "Shifter". Required.
	Runtime string `json:"runtime"`
	// Version pins the runtime version (part of the cell identity);
	// empty keeps the study default.
	Version string `json:"version,omitempty"`
	// Technique is the image-building technique: "system-specific"
	// (default) or "self-contained". Ignored for bare metal.
	Technique string `json:"technique,omitempty"`
	// ImageFrom, when set, builds the image for that cluster instead
	// of the study cluster — the portability study's cross-cluster
	// runs. Naming the study cluster itself is normalised to unset.
	ImageFrom string `json:"image_from,omitempty"`
}

// GridSpec is the swept axis. Exactly one of Nodes or Hybrid must be
// set.
type GridSpec struct {
	// Nodes sweeps node counts; ranks default to nodes ×
	// RanksPerNode and threads to Threads (fig2/fig3 shape).
	Nodes []int `json:"nodes,omitempty"`
	// RanksPerNode overrides ranks per node for a nodes grid
	// (default: the cluster's cores per node).
	RanksPerNode int `json:"ranks_per_node,omitempty"`
	// Threads fixes OpenMP threads per rank for a nodes grid
	// (default 1).
	Threads int `json:"threads,omitempty"`
	// Hybrid sweeps ranks×threads decompositions at a fixed node
	// count (fig1 shape).
	Hybrid []HybridSpec `json:"hybrid,omitempty"`
	// FixedNodes is the node count of a hybrid grid (default: the
	// whole machine).
	FixedNodes int `json:"fixed_nodes,omitempty"`
}

// HybridSpec is one ranks×threads decomposition.
type HybridSpec struct {
	Ranks   int `json:"ranks"`
	Threads int `json:"threads"`
}

// ReportSpec shapes the rendered table, CSV, and chart.
type ReportSpec struct {
	// AxisHeader heads the axis column (default: "Nodes" for a nodes
	// grid, "MPI x threads" for a hybrid one).
	AxisHeader string `json:"axis_header,omitempty"`
	// CSVAxisHeader heads the axis column in CSV output (default:
	// "nodes" / "config").
	CSVAxisHeader string `json:"csv_axis_header,omitempty"`
	// ShowFabric appends each configuration's network path to its
	// time-column header, as Fig. 2 does.
	ShowFabric bool `json:"show_fabric,omitempty"`
	// Columns are the rendered column groups, one sub-column per
	// config each; default is a single group of elapsed seconds.
	Columns []ColumnSpec `json:"columns,omitempty"`
	// Chart additionally renders the elapsed-time curves as an ASCII
	// chart after the table.
	Chart bool `json:"chart,omitempty"`
}

// ColumnSpec is one rendered column group.
type ColumnSpec struct {
	// Kind is "time" (elapsed seconds), "speedup" (baseline's time
	// over each config's at the same grid point), or "efficiency"
	// (speedup vs the baseline's first point, divided by the ideal
	// axis ratio — parallel efficiency against the baseline).
	Kind string `json:"kind"`
	// Baseline names the reference config by label; required for
	// speedup and efficiency, rejected for time.
	Baseline string `json:"baseline,omitempty"`
}

// FieldError locates a spec mistake by JSON field path, so a user
// editing a scenario file is pointed at the exact field to fix.
type FieldError struct {
	// Path is the JSON path, e.g. "configs[2].runtime".
	Path string
	// Msg says what is wrong with it.
	Msg string
}

// Error implements error.
func (e *FieldError) Error() string { return e.Path + ": " + e.Msg }

// errf builds a FieldError at a path.
func errf(path, format string, args ...any) *FieldError {
	return &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// ParseSpec decodes one spec from r without compiling it. Unknown
// fields are errors — a misspelled knob must not silently revert to a
// default. name labels decode errors (usually the file path).
func ParseSpec(r io.Reader, name string) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("scenario %s: %w", name, err)
	}
	// Anything after the spec object is a concatenation mistake, not
	// a second study.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario %s: trailing data after the spec object", name)
	}
	return sp, nil
}

// ParseSpecFile reads and decodes one spec file without compiling it.
func ParseSpecFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return ParseSpec(f, path)
}

// Load reads, decodes, and compiles one spec file: the one-call form
// the CLI and facade use. Compile errors are prefixed with the file
// path so `hpcstudy validate` output is self-locating.
func Load(path string) (*Study, error) {
	sp, err := ParseSpecFile(path)
	if err != nil {
		return nil, err
	}
	st, err := sp.Compile()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	return st, nil
}

// Parse decodes and compiles one spec from a reader.
func Parse(r io.Reader, name string) (*Study, error) {
	sp, err := ParseSpec(r, name)
	if err != nil {
		return nil, err
	}
	st, err := sp.Compile()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	return st, nil
}

// joinKnown renders a known-names list for error messages.
func joinKnown(names []string) string { return strings.Join(names, ", ") }
