package scenario

import (
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/report"
)

// Result holds a scenario run: one elapsed-time series per config
// over the grid axis, plus the network path each config used.
type Result struct {
	study *Study
	// Series holds one curve per config in spec order; Point.X is the
	// axis value (node count or rank count).
	Series []metrics.Series
	// Fabrics records each config's network path (its last grid
	// point's, as the hand-coded figures do).
	Fabrics []string
}

// Run executes the study through the shared sweep engine, inheriting
// everything Options carries: parallelism, the result store (local
// directory, registry client, or tiered), sharding, FromStore merge
// assembly, negative caching, pinning, and stats. The spec defines
// the workload and grid, so Options.Case and Options.NodePoints are
// not consulted.
func (st *Study) Run(opt experiments.Options) (*Result, error) {
	results, err := experiments.NewSweep(opt).Run(st.cells)
	if err != nil {
		return nil, err
	}
	out := &Result{study: st}
	for ci := range st.configs {
		s := metrics.Series{Label: st.configs[ci].label}
		fabric := ""
		for ai := range st.axis {
			res := results[ci*len(st.axis)+ai]
			s.Points = append(s.Points, metrics.Point{X: st.axis[ai].x, T: res.Exec.Elapsed})
			fabric = res.Exec.FabricPath
		}
		out.Series = append(out.Series, s)
		out.Fabrics = append(out.Fabrics, fabric)
	}
	return out, nil
}

// SeriesByLabel finds a curve by config label.
func (r *Result) SeriesByLabel(label string) (*metrics.Series, error) {
	for i := range r.Series {
		if r.Series[i].Label == label {
			return &r.Series[i], nil
		}
	}
	return nil, fmt.Errorf("scenario: %s has no series %q", r.study.Name(), label)
}

// axisHeader returns the table axis header, defaulted per grid kind.
func (st *Study) axisHeader() string {
	if h := st.spec.Report.AxisHeader; h != "" {
		return h
	}
	if len(st.spec.Grid.Hybrid) > 0 {
		return "MPI x threads"
	}
	return "Nodes"
}

// csvAxisHeader returns the CSV axis header, defaulted per grid kind.
func (st *Study) csvAxisHeader() string {
	if h := st.spec.Report.CSVAxisHeader; h != "" {
		return h
	}
	if len(st.spec.Grid.Hybrid) > 0 {
		return "config"
	}
	return "nodes"
}

// header renders one sub-column header for the table.
func (r *Result) header(col column, ci int) string {
	label := r.study.configs[ci].label
	switch col.kind {
	case colSpeedup:
		return label + " speedup"
	case colEfficiency:
		return label + " eff"
	default:
		if r.study.spec.Report.ShowFabric {
			return fmt.Sprintf("%s [s] (%s)", label, r.Fabrics[ci])
		}
		return label + " [s]"
	}
}

// csvHeader renders one sub-column header for CSV.
func (r *Result) csvHeader(col column, ci int) string {
	label := r.study.configs[ci].label
	switch col.kind {
	case colSpeedup:
		return label + "_speedup"
	case colEfficiency:
		return label + "_efficiency"
	default:
		return label
	}
}

// value computes one sub-column value at a grid row.
//
// Speedup is the baseline config's time over this config's at the
// same grid point (>1 = faster than baseline). Efficiency is the
// scaling efficiency against the baseline's first point: speedup vs
// that time, divided by the ideal axis ratio x/x₀.
func (r *Result) value(col column, ci, row int) float64 {
	t := float64(r.Series[ci].Points[row].T)
	if t <= 0 {
		return 0
	}
	switch col.kind {
	case colSpeedup:
		return float64(r.Series[col.baseline].Points[row].T) / t
	case colEfficiency:
		base := float64(r.Series[col.baseline].Points[0].T)
		x0, x := float64(r.study.axis[0].x), float64(r.study.axis[row].x)
		if x0 <= 0 || x <= 0 {
			return 0
		}
		return (base / t) / (x / x0)
	default:
		return t
	}
}

// Render writes the study as an aligned table: one row per grid
// point, one column per (column group, config) pair.
func (r *Result) Render(w io.Writer) {
	headers := []string{r.study.axisHeader()}
	for _, col := range r.study.columns {
		for ci := range r.study.configs {
			headers = append(headers, r.header(col, ci))
		}
	}
	t := report.NewTable(r.study.title, headers...)
	for row := range r.study.axis {
		cells := []interface{}{r.study.axis[row].rowCell}
		for _, col := range r.study.columns {
			for ci := range r.study.configs {
				v := r.value(col, ci, row)
				if col.kind == colTime {
					cells = append(cells, report.Seconds(r.Series[ci].Points[row].T))
				} else {
					cells = append(cells, fmt.Sprintf("%.2f", v))
				}
			}
		}
		t.AddRow(cells...)
	}
	t.Render(w)
	if r.study.spec.Report.Chart {
		fmt.Fprintln(w)
		r.RenderChart(w)
	}
}

// CSV writes the study as machine-readable data, raw floats.
func (r *Result) CSV(w io.Writer) {
	headers := []string{r.study.csvAxisHeader()}
	for _, col := range r.study.columns {
		for ci := range r.study.configs {
			headers = append(headers, r.csvHeader(col, ci))
		}
	}
	t := report.NewTable("", headers...)
	for row := range r.study.axis {
		cells := []interface{}{r.study.axis[row].rowCell}
		for _, col := range r.study.columns {
			for ci := range r.study.configs {
				cells = append(cells, r.value(col, ci, row))
			}
		}
		t.AddRow(cells...)
	}
	t.CSV(w)
}

// RenderChart writes the elapsed-time curves as an ASCII chart.
func (r *Result) RenderChart(w io.Writer) {
	c := report.Chart{Title: r.study.title, YLabel: "seconds", Series: r.Series}
	c.Render(w)
}
