package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/alya"
	"repro/internal/experiments"
	"repro/internal/resultdb"
)

// specPath locates the shipped example specs from this package.
const (
	fig1SpecPath      = "../../examples/scenarios/fig1.json"
	fig2SpecPath      = "../../examples/scenarios/fig2.json"
	fig2QuickSpecPath = "../../examples/scenarios/fig2-quick.json"
)

// assertCellsMatch compares a compiled study's cells against a
// hand-coded enumeration, label for label and fingerprint for
// fingerprint — the property that makes scenario runs share stores,
// shards, and caches with the built-in studies.
func assertCellsMatch(t *testing.T, st *Study, want []experiments.CellSpec) {
	t.Helper()
	got := st.Cells()
	if len(got) != len(want) {
		t.Fatalf("%d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label != want[i].Label {
			t.Errorf("cell %d label = %q, want %q", i, got[i].Label, want[i].Label)
		}
		wk, err := want[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		if st.Keys()[i] != wk {
			t.Errorf("cell %d (%s): fingerprint differs from the built-in study", i, got[i].Label)
		}
	}
}

// TestFig1SpecMatchesBuiltinCells pins the shipped fig1.json to the
// hand-coded Fig. 1 enumeration at paper scale, without simulating.
func TestFig1SpecMatchesBuiltinCells(t *testing.T) {
	st, err := Load(fig1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	assertCellsMatch(t, st, experiments.Fig1Specs(experiments.Options{}))
}

// TestFig2SpecMatchesBuiltinCells pins the shipped fig2.json to the
// hand-coded Fig. 2 enumeration at paper scale.
func TestFig2SpecMatchesBuiltinCells(t *testing.T) {
	st, err := Load(fig2SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	assertCellsMatch(t, st, experiments.Fig2Specs(experiments.Options{}))
}

// TestFig2QuickSpecMatchesQuickCells pins fig2-quick.json to the
// CLI's -quick fig2 configuration (SimSteps 1, nodes 2/4/8/16).
func TestFig2QuickSpecMatchesQuickCells(t *testing.T) {
	st, err := Load(fig2QuickSpecPath)
	if err != nil {
		t.Fatal(err)
	}
	c := alya.ArteryCFDCTEPower()
	c.SimSteps = 1
	assertCellsMatch(t, st, experiments.Fig2Specs(experiments.Options{
		Case: c, NodePoints: []int{2, 4, 8, 16},
	}))
}

// reduceCase shrinks a spec's workload the way the experiments tests
// shrink the built-in figures, so full-output comparisons stay fast.
func reduceCase(sp *Spec) {
	sp.Case.SimSteps = 1
	sp.Case.ModelCGIters = 30
}

// reducedLenox mirrors the experiments tests' reduced Fig. 1 case.
func reducedLenox() alya.Case {
	c := alya.ArteryCFDLenox()
	c.SimSteps = 1
	c.ModelCGIters = 30
	return c
}

// reducedCTEPower mirrors the reduced Fig. 2 case.
func reducedCTEPower() alya.Case {
	c := alya.ArteryCFDCTEPower()
	c.SimSteps = 1
	c.ModelCGIters = 30
	return c
}

// TestFig1OutputByteIdentical runs the shipped fig1.json (workload
// reduced identically on both sides) and compares table and CSV bytes
// against the hand-coded study.
func TestFig1OutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 sweep skipped in -short")
	}
	sp, err := ParseSpecFile(fig1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	reduceCase(&sp)
	st, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run(experiments.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := experiments.Fig1(experiments.Options{Parallelism: 4, Case: reducedLenox()})
	if err != nil {
		t.Fatal(err)
	}

	var got, want bytes.Buffer
	res.Render(&got)
	builtin.Render(&want)
	if got.String() != want.String() {
		t.Fatalf("scenario fig1 table differs:\n--- scenario ---\n%s\n--- builtin ---\n%s", got.String(), want.String())
	}
	got.Reset()
	want.Reset()
	res.CSV(&got)
	builtin.CSV(&want)
	if got.String() != want.String() {
		t.Fatalf("scenario fig1 CSV differs:\n--- scenario ---\n%s\n--- builtin ---\n%s", got.String(), want.String())
	}
}

// TestFig2WarmShardMergeByteIdentical is the acceptance story on the
// shipped fig2.json (grid and workload reduced identically on both
// sides): a cold scenario run, a warm rerun, and a two-shard populate
// plus store-only merge all render byte-identically to the hand-coded
// Fig. 2 — and the warm paths simulate nothing.
func TestFig2WarmShardMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 sweep skipped in -short")
	}
	sp, err := ParseSpecFile(fig2SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	reduceCase(&sp)
	sp.Grid.Nodes = []int{2, 4}
	st, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}

	builtin, err := experiments.Fig2(experiments.Options{
		Parallelism: 4, Case: reducedCTEPower(), NodePoints: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	builtin.Render(&want)

	render := func(r *Result) string {
		var b bytes.Buffer
		r.Render(&b)
		return b.String()
	}

	// Cold into a store.
	dir := t.TempDir()
	store, err := resultdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldStats := &experiments.SweepStats{}
	cold, err := st.Run(experiments.Options{Parallelism: 4, Store: store, Stats: coldStats})
	if err != nil {
		t.Fatal(err)
	}
	if render(cold) != want.String() {
		t.Fatalf("cold scenario differs from builtin:\n%s\n---\n%s", render(cold), want.String())
	}
	if coldStats.Computed.Load() != 6 {
		t.Fatalf("cold run computed %d cells, want 6", coldStats.Computed.Load())
	}
	store.Close()

	// Warm from a fresh open: zero simulations, same bytes.
	store, err = resultdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmStats := &experiments.SweepStats{}
	warm, err := st.Run(experiments.Options{Parallelism: 4, Store: store, Stats: warmStats})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Computed.Load() != 0 || warmStats.Hits.Load() != 6 {
		t.Fatalf("warm run: %d computed, %d hits", warmStats.Computed.Load(), warmStats.Hits.Load())
	}
	if render(warm) != want.String() {
		t.Fatal("warm scenario differs from builtin")
	}
	store.Close()

	// Two shards populate a fresh store; a store-only merge assembles.
	shardDir := t.TempDir()
	for k := 1; k <= 2; k++ {
		s, err := resultdb.Open(shardDir)
		if err != nil {
			t.Fatal(err)
		}
		_, err = st.Run(experiments.Options{
			Parallelism: 4, Store: s, Shard: resultdb.Shard{Index: k, Count: 2},
		})
		var miss *experiments.MissingCellsError
		if err != nil && !errors.As(err, &miss) {
			t.Fatalf("shard %d: %v", k, err)
		}
		s.Close()
	}
	s, err := resultdb.Open(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mergeStats := &experiments.SweepStats{}
	merged, err := st.Run(experiments.Options{
		Parallelism: 4, Store: s, FromStore: true, Stats: mergeStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mergeStats.Computed.Load() != 0 {
		t.Fatalf("merge simulated %d cells", mergeStats.Computed.Load())
	}
	if render(merged) != want.String() {
		t.Fatal("sharded merge differs from builtin")
	}

	// Cross-direction: the hand-coded study replays the scenario's
	// cells — one store serves both expressions of the figure.
	crossStats := &experiments.SweepStats{}
	cross, err := experiments.Fig2(experiments.Options{
		Parallelism: 4, Case: reducedCTEPower(), NodePoints: []int{2, 4},
		Store: s, FromStore: true, Stats: crossStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if crossStats.Computed.Load() != 0 {
		t.Fatal("builtin merge from scenario-populated store simulated cells")
	}
	var crossBuf bytes.Buffer
	cross.Render(&crossBuf)
	if crossBuf.String() != want.String() {
		t.Fatal("builtin merge from scenario store differs")
	}
}

// TestSpeedupEfficiencyColumns exercises the report layout a custom
// study would use: a baseline-referenced speedup column (baseline
// itself = 1.00) and an efficiency column, in table and CSV.
func TestSpeedupEfficiencyColumns(t *testing.T) {
	sp := Spec{
		Name:    "overhead",
		Title:   "Container overhead on Lenox",
		Cluster: "Lenox",
		Case:    CaseSpec{Name: "quick-cfd"},
		Configs: []ConfigSpec{
			{Runtime: "Bare-metal"},
			{Runtime: "Singularity"},
		},
		Grid: GridSpec{Nodes: []int{1, 2}, RanksPerNode: 4},
		Report: ReportSpec{
			Columns: []ColumnSpec{
				{Kind: "time"},
				{Kind: "speedup", Baseline: "Bare-metal"},
				{Kind: "efficiency", Baseline: "Bare-metal"},
			},
			Chart: true,
		},
	}
	st, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run(experiments.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	var table bytes.Buffer
	res.Render(&table)
	out := table.String()
	for _, wantStr := range []string{
		"Container overhead on Lenox",
		"Bare-metal [s]", "Singularity [s]",
		"Bare-metal speedup", "Singularity speedup",
		"Bare-metal eff", "Singularity eff",
	} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("table missing %q:\n%s", wantStr, out)
		}
	}
	// The chart rides behind the table when requested.
	if !strings.Contains(out, "seconds") {
		t.Errorf("chart missing from output:\n%s", out)
	}
	// The baseline's speedup against itself is exactly 1.
	if !strings.Contains(out, "1.00") {
		t.Errorf("baseline speedup not 1.00:\n%s", out)
	}

	var csv bytes.Buffer
	res.CSV(&csv)
	head := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, wantStr := range []string{"nodes", "Bare-metal", "Bare-metal_speedup", "Singularity_efficiency"} {
		if !strings.Contains(head, wantStr) {
			t.Errorf("CSV header missing %q: %s", wantStr, head)
		}
	}
}
