// Package mesh provides the structured artery-segment meshes the
// Alya-like solvers run on, and their 3D block decompositions.
//
// The paper's cases are unstructured FE meshes of an artery; the
// performance-relevant properties are cells per rank (compute),
// face sizes between subdomains (halo traffic), and neighbour counts
// (message multiplicity). A structured hex mesh with a balanced 3D
// block decomposition reproduces all three while staying verifiable.
package mesh

import (
	"fmt"
	"math"
)

// Mesh is a uniform structured hex grid spanning an artery segment.
// The tube axis runs along Z: the inlet plane is k == 0, the outlet
// plane is k == NZ-1, and the lateral boundary is the vessel wall.
type Mesh struct {
	// NX, NY, NZ are cell counts per axis.
	NX int `json:"NX"`
	NY int `json:"NY"`
	NZ int `json:"NZ"`
	// HX, HY, HZ are cell sizes in metres.
	HX float64 `json:"HX"`
	HY float64 `json:"HY"`
	HZ float64 `json:"HZ"`
}

// NewMesh validates and returns a mesh.
func NewMesh(nx, ny, nz int, hx, hy, hz float64) (Mesh, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return Mesh{}, fmt.Errorf("mesh: dimensions %d×%d×%d", nx, ny, nz)
	}
	if hx <= 0 || hy <= 0 || hz <= 0 {
		return Mesh{}, fmt.Errorf("mesh: cell sizes %v×%v×%v", hx, hy, hz)
	}
	return Mesh{NX: nx, NY: ny, NZ: nz, HX: hx, HY: hy, HZ: hz}, nil
}

// Cells returns the total cell count.
func (m Mesh) Cells() int { return m.NX * m.NY * m.NZ }

// Index linearizes (i, j, k) in x-fastest order.
func (m Mesh) Index(i, j, k int) int { return i + m.NX*(j+m.NY*k) }

// Center returns the cell-centre coordinates of (i, j, k).
func (m Mesh) Center(i, j, k int) (x, y, z float64) {
	return (float64(i) + 0.5) * m.HX, (float64(j) + 0.5) * m.HY, (float64(k) + 0.5) * m.HZ
}

// Axis identifies a face direction of a subdomain.
type Axis int

// The six face directions.
const (
	XMinus Axis = iota
	XPlus
	YMinus
	YPlus
	ZMinus
	ZPlus
)

// String names the axis direction.
func (a Axis) String() string {
	return [...]string{"x-", "x+", "y-", "y+", "z-", "z+"}[a]
}

// Opposite returns the facing direction.
func (a Axis) Opposite() Axis {
	return [...]Axis{XPlus, XMinus, YPlus, YMinus, ZPlus, ZMinus}[a]
}

// Grid is a 3D block decomposition of a mesh into PX×PY×PZ parts.
type Grid struct {
	// Mesh is the decomposed mesh.
	Mesh Mesh
	// PX, PY, PZ are part counts per axis; PX*PY*PZ is the rank count.
	PX, PY, PZ int
}

// Decompose factors p parts over the mesh, choosing the factorization
// that minimizes total inter-part surface (communication volume).
func Decompose(m Mesh, p int) (Grid, error) {
	return DecomposeAligned(m, p, 1)
}

// DecomposeAligned factors p parts with PZ a multiple of alignZ. With
// x-fastest rank ordering and block placement over alignZ nodes, the
// constraint makes node boundaries exact z cross-sections: the
// inter-node communication volume becomes independent of the ranks ×
// threads decomposition, as it is for a production code whose
// partitioner is topology-aware. Among admissible factorizations the
// one minimizing per-part surface wins.
func DecomposeAligned(m Mesh, p, alignZ int) (Grid, error) {
	if p < 1 {
		return Grid{}, fmt.Errorf("mesh: decompose into %d parts", p)
	}
	if alignZ < 1 {
		return Grid{}, fmt.Errorf("mesh: z alignment %d", alignZ)
	}
	if p%alignZ != 0 {
		return Grid{}, fmt.Errorf("mesh: %d parts not divisible by z alignment %d", p, alignZ)
	}
	if p > m.Cells() {
		return Grid{}, fmt.Errorf("mesh: %d parts exceed %d cells", p, m.Cells())
	}
	best := Grid{Mesh: m}
	bestCost := math.Inf(1)
	for px := 1; px <= p; px++ {
		if p%px != 0 || px > m.NX {
			continue
		}
		rest := p / px
		for py := 1; py <= rest; py++ {
			if rest%py != 0 || py > m.NY {
				continue
			}
			pz := rest / py
			if pz > m.NZ || pz%alignZ != 0 {
				continue
			}
			// Surface area of one part, in cells, as the cost proxy.
			lx := float64(m.NX) / float64(px)
			ly := float64(m.NY) / float64(py)
			lz := float64(m.NZ) / float64(pz)
			cost := 2 * (lx*ly*btoi(pz > 1) + lx*lz*btoi(py > 1) + ly*lz*btoi(px > 1))
			if cost < bestCost {
				bestCost = cost
				best.PX, best.PY, best.PZ = px, py, pz
			}
		}
	}
	if best.PX == 0 {
		return Grid{}, fmt.Errorf("mesh: no factorization of %d parts over %d×%d×%d with z alignment %d",
			p, m.NX, m.NY, m.NZ, alignZ)
	}
	return best, nil
}

func btoi(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Parts returns the rank count of the decomposition.
func (g Grid) Parts() int { return g.PX * g.PY * g.PZ }

// Coords maps a rank to its (cx, cy, cz) block coordinates
// (x-fastest order).
func (g Grid) Coords(rank int) (cx, cy, cz int) {
	cx = rank % g.PX
	cy = (rank / g.PX) % g.PY
	cz = rank / (g.PX * g.PY)
	return
}

// RankAt maps block coordinates to a rank.
func (g Grid) RankAt(cx, cy, cz int) int {
	return cx + g.PX*(cy+g.PY*cz)
}

// Part returns a rank's subdomain.
func (g Grid) Part(rank int) Partition {
	if rank < 0 || rank >= g.Parts() {
		panic(fmt.Sprintf("mesh: rank %d outside %d parts", rank, g.Parts()))
	}
	cx, cy, cz := g.Coords(rank)
	i0, i1 := blockRange(g.Mesh.NX, g.PX, cx)
	j0, j1 := blockRange(g.Mesh.NY, g.PY, cy)
	k0, k1 := blockRange(g.Mesh.NZ, g.PZ, cz)
	return Partition{
		Grid: g, Rank: rank,
		CX: cx, CY: cy, CZ: cz,
		I0: i0, I1: i1, J0: j0, J1: j1, K0: k0, K1: k1,
	}
}

// blockRange splits n cells into p balanced contiguous blocks and
// returns block b's half-open range.
func blockRange(n, p, b int) (int, int) {
	return b * n / p, (b + 1) * n / p
}

// Partition is one rank's subdomain: the half-open index box
// [I0,I1)×[J0,J1)×[K0,K1) of the global mesh.
type Partition struct {
	// Grid is the owning decomposition; Rank the owner.
	Grid Grid
	Rank int
	// CX, CY, CZ are the block coordinates.
	CX, CY, CZ int
	// I0..K1 bound the owned cells (half-open).
	I0, I1, J0, J1, K0, K1 int
}

// Dims returns the local extent per axis.
func (p Partition) Dims() (nx, ny, nz int) {
	return p.I1 - p.I0, p.J1 - p.J0, p.K1 - p.K0
}

// Cells returns the local cell count.
func (p Partition) Cells() int {
	nx, ny, nz := p.Dims()
	return nx * ny * nz
}

// Neighbor is one face-adjacent peer subdomain.
type Neighbor struct {
	// Rank is the peer's rank.
	Rank int
	// Face is the direction of the shared face from this partition.
	Face Axis
	// Count is the number of face cells exchanged per halo swap.
	Count int
}

// Neighbors lists the face-adjacent peers in a fixed axis order
// (x-, x+, y-, y+, z-, z+), omitting physical-boundary faces.
func (p Partition) Neighbors() []Neighbor {
	nx, ny, nz := p.Dims()
	var out []Neighbor
	add := func(face Axis, cx, cy, cz, count int) {
		if cx < 0 || cx >= p.Grid.PX || cy < 0 || cy >= p.Grid.PY || cz < 0 || cz >= p.Grid.PZ {
			return
		}
		out = append(out, Neighbor{Rank: p.Grid.RankAt(cx, cy, cz), Face: face, Count: count})
	}
	add(XMinus, p.CX-1, p.CY, p.CZ, ny*nz)
	add(XPlus, p.CX+1, p.CY, p.CZ, ny*nz)
	add(YMinus, p.CX, p.CY-1, p.CZ, nx*nz)
	add(YPlus, p.CX, p.CY+1, p.CZ, nx*nz)
	add(ZMinus, p.CX, p.CY, p.CZ-1, nx*ny)
	add(ZPlus, p.CX, p.CY, p.CZ+1, nx*ny)
	return out
}

// HaloCells returns the total cells exchanged per halo swap.
func (p Partition) HaloCells() int {
	total := 0
	for _, n := range p.Neighbors() {
		total += n.Count
	}
	return total
}

// OnInlet reports whether the partition touches the inlet plane (k=0).
func (p Partition) OnInlet() bool { return p.K0 == 0 }

// OnOutlet reports whether the partition touches the outlet plane.
func (p Partition) OnOutlet() bool { return p.K1 == p.Grid.Mesh.NZ }

// OnWall reports whether the partition touches the lateral boundary.
func (p Partition) OnWall() bool {
	return p.I0 == 0 || p.I1 == p.Grid.Mesh.NX || p.J0 == 0 || p.J1 == p.Grid.Mesh.NY
}

// WallCells counts this partition's cells on the lateral boundary —
// the FSI coupling interface.
func (p Partition) WallCells() int {
	nx, ny, nz := p.Dims()
	count := 0
	if p.I0 == 0 {
		count += ny * nz
	}
	if p.I1 == p.Grid.Mesh.NX {
		count += ny * nz
	}
	if p.J0 == 0 {
		count += nx * nz
	}
	if p.J1 == p.Grid.Mesh.NY {
		count += nx * nz
	}
	return count
}
