package mesh

import (
	"testing"
	"testing/quick"
)

func mustMesh(t *testing.T, nx, ny, nz int) Mesh {
	t.Helper()
	m, err := NewMesh(nx, ny, nz, 1e-3, 1e-3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeshValidates(t *testing.T) {
	if _, err := NewMesh(0, 1, 1, 1, 1, 1); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := NewMesh(1, 1, 1, 0, 1, 1); err == nil {
		t.Error("zero cell size accepted")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	m := mustMesh(t, 4, 5, 6)
	seen := make(map[int]bool)
	for k := 0; k < 6; k++ {
		for j := 0; j < 5; j++ {
			for i := 0; i < 4; i++ {
				idx := m.Index(i, j, k)
				if idx < 0 || idx >= m.Cells() {
					t.Fatalf("index out of range: %d", idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate index %d", idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != m.Cells() {
		t.Fatalf("covered %d cells of %d", len(seen), m.Cells())
	}
}

func TestAxisOpposite(t *testing.T) {
	for _, a := range []Axis{XMinus, XPlus, YMinus, YPlus, ZMinus, ZPlus} {
		if a.Opposite().Opposite() != a {
			t.Fatalf("opposite not involutive for %v", a)
		}
		if a.Opposite() == a {
			t.Fatalf("axis %v is its own opposite", a)
		}
	}
}

func TestDecomposeCoversAllCells(t *testing.T) {
	m := mustMesh(t, 12, 10, 8)
	for _, p := range []int{1, 2, 3, 4, 6, 8, 12, 24, 60} {
		g, err := Decompose(m, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if g.Parts() != p {
			t.Fatalf("p=%d: got %d parts", p, g.Parts())
		}
		total := 0
		owned := make([]int, m.Cells())
		for r := 0; r < p; r++ {
			part := g.Part(r)
			total += part.Cells()
			for k := part.K0; k < part.K1; k++ {
				for j := part.J0; j < part.J1; j++ {
					for i := part.I0; i < part.I1; i++ {
						owned[m.Index(i, j, k)]++
					}
				}
			}
		}
		if total != m.Cells() {
			t.Fatalf("p=%d: parts own %d cells of %d", p, total, m.Cells())
		}
		for idx, n := range owned {
			if n != 1 {
				t.Fatalf("p=%d: cell %d owned %d times", p, idx, n)
			}
		}
	}
}

func TestDecomposeBalance(t *testing.T) {
	m := mustMesh(t, 64, 64, 64)
	g, err := Decompose(m, 48)
	if err != nil {
		t.Fatal(err)
	}
	minC, maxC := m.Cells(), 0
	for r := 0; r < 48; r++ {
		c := g.Part(r).Cells()
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if float64(maxC) > 1.2*float64(minC) {
		t.Fatalf("imbalance: min %d max %d", minC, maxC)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	m := mustMesh(t, 12, 10, 8)
	g, err := Decompose(m, 24)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < g.Parts(); r++ {
		for _, nb := range g.Part(r).Neighbors() {
			// The neighbour must list us back across the opposite face
			// with the same count.
			back := g.Part(nb.Rank).Neighbors()
			found := false
			for _, bn := range back {
				if bn.Rank == r && bn.Face == nb.Face.Opposite() {
					found = true
					if bn.Count != nb.Count {
						t.Fatalf("rank %d↔%d: asymmetric face counts %d vs %d",
							r, nb.Rank, nb.Count, bn.Count)
					}
				}
			}
			if !found {
				t.Fatalf("rank %d lists %d via %v but not vice versa", r, nb.Rank, nb.Face)
			}
		}
	}
}

func TestInteriorPartHasSixNeighbors(t *testing.T) {
	m := mustMesh(t, 30, 30, 30)
	g, err := Decompose(m, 27) // 3×3×3
	if err != nil {
		t.Fatal(err)
	}
	center := g.RankAt(1, 1, 1)
	if n := len(g.Part(center).Neighbors()); n != 6 {
		t.Fatalf("central part has %d neighbours, want 6", n)
	}
	corner := g.RankAt(0, 0, 0)
	if n := len(g.Part(corner).Neighbors()); n != 3 {
		t.Fatalf("corner part has %d neighbours, want 3", n)
	}
}

func TestBoundaryFlags(t *testing.T) {
	m := mustMesh(t, 8, 8, 8)
	g, err := Decompose(m, 8) // 2×2×2
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		p := g.Part(r)
		_, _, cz := g.Coords(r)
		if p.OnInlet() != (cz == 0) {
			t.Errorf("rank %d inlet flag wrong", r)
		}
		if p.OnOutlet() != (cz == g.PZ-1) {
			t.Errorf("rank %d outlet flag wrong", r)
		}
		// With at most 8 parts of a cube, every part touches some
		// lateral boundary.
		if !p.OnWall() {
			t.Errorf("rank %d should touch the wall in an 8-way split", r)
		}
		if p.WallCells() <= 0 {
			t.Errorf("rank %d wall cells %d", r, p.WallCells())
		}
	}
}

func TestDecomposeAlignedConstraint(t *testing.T) {
	m := mustMesh(t, 64, 64, 64)
	for _, c := range []struct{ p, align int }{
		{8, 4}, {28, 4}, {112, 4}, {48, 2}, {640, 16},
	} {
		g, err := DecomposeAligned(m, c.p, c.align)
		if err != nil {
			t.Fatalf("p=%d align=%d: %v", c.p, c.align, err)
		}
		if g.PZ%c.align != 0 {
			t.Fatalf("p=%d align=%d: PZ=%d not aligned", c.p, c.align, g.PZ)
		}
	}
}

func TestDecomposeAlignedRejects(t *testing.T) {
	m := mustMesh(t, 8, 8, 8)
	if _, err := DecomposeAligned(m, 7, 2); err == nil {
		t.Error("7 parts with alignment 2 should fail")
	}
	if _, err := DecomposeAligned(m, 4, 0); err == nil {
		t.Error("alignment 0 should fail")
	}
	if _, err := Decompose(m, 0); err == nil {
		t.Error("0 parts should fail")
	}
	if _, err := Decompose(m, m.Cells()+1); err == nil {
		t.Error("more parts than cells should fail")
	}
}

func TestAlignedNodeBoundariesAreCrossSections(t *testing.T) {
	// With pz aligned to the node count and x-fastest rank order,
	// ranks on different nodes must never be x/y neighbours — all
	// inter-node halo traffic crosses z faces.
	m := mustMesh(t, 32, 32, 32)
	nodes := 4
	for _, p := range []int{8, 16, 28, 56, 112} {
		g, err := DecomposeAligned(m, p, nodes)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		rpn := p / nodes
		nodeOf := func(rank int) int { return rank / rpn }
		for r := 0; r < p; r++ {
			for _, nb := range g.Part(r).Neighbors() {
				if nodeOf(nb.Rank) != nodeOf(r) {
					if nb.Face != ZMinus && nb.Face != ZPlus {
						t.Fatalf("p=%d: inter-node neighbour across %v", p, nb.Face)
					}
				}
			}
		}
	}
}

func TestHaloCellsQuick(t *testing.T) {
	m := mustMesh(t, 24, 24, 24)
	f := func(pRaw uint8) bool {
		p := int(pRaw)%16 + 1
		g, err := Decompose(m, p)
		if err != nil {
			return true // infeasible factorizations are allowed to fail
		}
		for r := 0; r < p; r++ {
			part := g.Part(r)
			sum := 0
			for _, nb := range part.Neighbors() {
				sum += nb.Count
			}
			if sum != part.HaloCells() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCenterCoordinates(t *testing.T) {
	m := mustMesh(t, 4, 4, 4)
	x, y, z := m.Center(0, 0, 0)
	if x != 0.5e-3 || y != 0.5e-3 || z != 0.5e-3 {
		t.Fatalf("center of first cell: %v %v %v", x, y, z)
	}
}
