package trace

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/units"
)

// runTraced executes a small world with a TrafficMatrix attached.
func runTraced(t *testing.T, body func(r *mpi.Rank)) *TrafficMatrix {
	t.Helper()
	nodeOf := func(r int) int { return r / 2 }
	tm := NewTrafficMatrix(nodeOf)
	shm := fabric.SharedMemory(8*units.GBps, 0.5*units.Microsecond)
	inter := fabric.GigabitEthernet.Native
	cfg := mpi.Config{
		Ranks: 4, Nodes: 2,
		NodeOf: nodeOf,
		Path: func(src, dst int) *fabric.Transport {
			if src/2 == dst/2 {
				return &shm
			}
			return &inter
		},
		ComputeDilation: 1,
		Observer:        tm,
	}
	if _, err := mpi.Run(cfg, body); err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestTrafficAccounting(t *testing.T) {
	tm := runTraced(t, func(r *mpi.Rank) {
		buf := make([]float64, 128) // 1 KiB
		switch r.ID() {
		case 0:
			r.Send(1, 0, buf) // intra-node
			r.Send(2, 0, buf) // inter-node
		case 1:
			r.Recv(0, 0, buf)
		case 2:
			r.Recv(0, 0, buf)
		}
	})
	if tm.TotalMessages() != 2 {
		t.Fatalf("observed %d messages, want 2", tm.TotalMessages())
	}
	if tm.TotalBytes() != 2*1024 {
		t.Fatalf("observed %v, want 2 KiB", tm.TotalBytes())
	}
	if tm.IntraNodeBytes() != 1024 || tm.InterNodeBytes() != 1024 {
		t.Fatalf("intra %v inter %v", tm.IntraNodeBytes(), tm.InterNodeBytes())
	}
	if tm.Between(0, 1) != 1024 || tm.Between(1, 0) != 0 {
		t.Fatalf("directional accounting wrong: %v / %v", tm.Between(0, 1), tm.Between(1, 0))
	}
	byTr := tm.ByTransport()
	if byTr["shm"] != 1024 || byTr["tcp-1gbe"] != 1024 {
		t.Fatalf("per-transport bytes %v", byTr)
	}
}

func TestLatencyStats(t *testing.T) {
	tm := runTraced(t, func(r *mpi.Rank) {
		buf := make([]float64, 8)
		if r.ID() == 0 {
			r.Send(2, 0, buf)
		} else if r.ID() == 2 {
			r.Recv(0, 0, buf)
		}
	})
	st := tm.LatencyStats()
	if st.N != 1 {
		t.Fatalf("latency samples %d", st.N)
	}
	// The inter-node latency must at least include the wire latency.
	if st.Min < float64(50*units.Microsecond) {
		t.Fatalf("observed latency %v below the 1GbE wire latency", st.Min)
	}
}

func TestCollectivesAreObserved(t *testing.T) {
	tm := runTraced(t, func(r *mpi.Rank) {
		r.AllreduceScalar(1, mpi.OpSum)
	})
	if tm.TotalMessages() == 0 {
		t.Fatal("collective traffic not observed")
	}
}

func TestRender(t *testing.T) {
	tm := runTraced(t, func(r *mpi.Rank) {
		buf := make([]float64, 8)
		if r.ID() == 0 {
			r.Send(3, 0, buf)
		} else if r.ID() == 3 {
			r.Recv(0, 0, buf)
		}
	})
	var sb strings.Builder
	tm.Render(&sb)
	out := sb.String()
	for _, want := range []string{"traffic:", "node 0 -> node 1", "tcp-1gbe"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDockerAbsorbsIntraNodeTraffic(t *testing.T) {
	// The analysis the tracer exists for: under Docker's per-rank
	// isolation the bridge carries bytes that shm carries elsewhere.
	nodeOf := func(r int) int { return r / 2 }
	bridge := fabric.DockerBridge()
	nat := fabric.DockerNAT(fabric.GigabitEthernet.Native)
	tm := NewTrafficMatrix(nodeOf)
	cfg := mpi.Config{
		Ranks: 4, Nodes: 2,
		NodeOf: nodeOf,
		Path: func(src, dst int) *fabric.Transport {
			if src/2 == dst/2 {
				return &bridge
			}
			return &nat
		},
		ComputeDilation: 1,
		Observer:        tm,
	}
	_, err := mpi.Run(cfg, func(r *mpi.Rank) {
		buf := make([]float64, 64)
		peer := r.ID() ^ 1 // intra-node partner
		r.SendRecv(peer, 0, buf, peer, 0, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	byTr := tm.ByTransport()
	if byTr["docker-bridge"] == 0 {
		t.Fatal("bridge carried nothing")
	}
	if byTr["shm"] != 0 {
		t.Fatal("shared memory should not appear under Docker")
	}
}
