// Package trace provides observers for the simulated MPI: traffic
// matrices between nodes, per-transport byte accounting, and message
// latency statistics. Plug one into mpi.Config.Observer to analyse
// where an execution's communication actually went — the tool that
// surfaces, for example, how Docker's bridge path absorbs the
// intra-node traffic that shared memory carries on the other runtimes.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/metrics"
	"repro/internal/units"
)

// TrafficMatrix aggregates completed messages by node pair and by
// transport. It implements mpi.Observer; runs under the deterministic
// scheduler, so no locking is needed.
type TrafficMatrix struct {
	// NodeOf maps ranks to nodes (same function as the mpi.Config).
	NodeOf func(rank int) int

	bytes     map[[2]int]units.ByteSize
	msgs      map[[2]int]int
	transport map[string]units.ByteSize
	latencies []float64

	totalBytes units.ByteSize
	totalMsgs  int
}

// NewTrafficMatrix builds a matrix for the given placement.
func NewTrafficMatrix(nodeOf func(rank int) int) *TrafficMatrix {
	return &TrafficMatrix{
		NodeOf:    nodeOf,
		bytes:     make(map[[2]int]units.ByteSize),
		msgs:      make(map[[2]int]int),
		transport: make(map[string]units.ByteSize),
	}
}

// Message implements mpi.Observer.
func (t *TrafficMatrix) Message(src, dst, tag int, size units.ByteSize,
	transport string, sent, arrived units.Seconds) {

	key := [2]int{t.NodeOf(src), t.NodeOf(dst)}
	t.bytes[key] += size
	t.msgs[key]++
	t.transport[transport] += size
	t.totalBytes += size
	t.totalMsgs++
	if arrived > sent {
		t.latencies = append(t.latencies, float64(arrived-sent))
	}
}

// TotalBytes returns the total observed payload bytes.
func (t *TrafficMatrix) TotalBytes() units.ByteSize { return t.totalBytes }

// TotalMessages returns the total observed message count.
func (t *TrafficMatrix) TotalMessages() int { return t.totalMsgs }

// Between returns the bytes sent from node a to node b.
func (t *TrafficMatrix) Between(a, b int) units.ByteSize {
	return t.bytes[[2]int{a, b}]
}

// IntraNodeBytes returns the bytes that never left a node.
func (t *TrafficMatrix) IntraNodeBytes() units.ByteSize {
	var s units.ByteSize
	//lint:allow maporder -- ByteSize holds whole byte counts, exact in float64, so the sum commutes
	for k, v := range t.bytes {
		if k[0] == k[1] {
			s += v
		}
	}
	return s
}

// InterNodeBytes returns the bytes that crossed the fabric.
func (t *TrafficMatrix) InterNodeBytes() units.ByteSize {
	return t.totalBytes - t.IntraNodeBytes()
}

// ByTransport returns the bytes carried per transport name.
func (t *TrafficMatrix) ByTransport() map[string]units.ByteSize {
	out := make(map[string]units.ByteSize, len(t.transport))
	for k, v := range t.transport {
		out[k] = v
	}
	return out
}

// LatencyStats summarizes observed message latencies (seconds).
func (t *TrafficMatrix) LatencyStats() metrics.Summary {
	return metrics.Summarize(t.latencies)
}

// Render writes a per-node-pair summary table.
func (t *TrafficMatrix) Render(w io.Writer) {
	fmt.Fprintf(w, "traffic: %d messages, %v total (%v intra-node, %v inter-node)\n",
		t.totalMsgs, t.totalBytes, t.IntraNodeBytes(), t.InterNodeBytes())
	names := make([]string, 0, len(t.transport))
	for name := range t.transport {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-20s %v\n", name, t.transport[name])
	}
	keys := make([][2]int, 0, len(t.bytes))
	for k := range t.bytes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "  node %d -> node %d: %v in %d messages\n",
			k[0], k[1], t.bytes[k], t.msgs[k])
	}
}
