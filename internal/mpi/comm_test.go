package mpi

import (
	"testing"

	"repro/internal/units"
)

func TestCommSplitCollectives(t *testing.T) {
	// Two disjoint groups run independent allreduces; values must not
	// leak across groups — the FSI two-code pattern.
	p := 12
	cfg := testConfig(p, 4)
	results := make([]float64, p)
	_, err := Run(cfg, func(r *Rank) {
		var group []int
		if r.ID() < 8 {
			group = []int{0, 1, 2, 3, 4, 5, 6, 7}
		} else {
			group = []int{8, 9, 10, 11}
		}
		comm, err := r.NewComm(group)
		if err != nil {
			t.Error(err)
			return
		}
		results[r.ID()] = comm.AllreduceScalar(1, OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if results[i] != 8 {
			t.Fatalf("fluid rank %d got %v, want 8", i, results[i])
		}
	}
	for i := 8; i < 12; i++ {
		if results[i] != 4 {
			t.Fatalf("solid rank %d got %v, want 4", i, results[i])
		}
	}
}

func TestCommRankTranslation(t *testing.T) {
	cfg := testConfig(6, 3)
	_, err := Run(cfg, func(r *Rank) {
		if r.ID()%2 != 0 {
			return // odd ranks sit out
		}
		comm, err := r.NewComm([]int{4, 0, 2}) // unsorted on purpose
		if err != nil {
			t.Error(err)
			return
		}
		if comm.Size() != 3 {
			t.Errorf("size %d", comm.Size())
		}
		wantRank := map[int]int{0: 0, 2: 1, 4: 2}[r.ID()]
		if comm.Rank() != wantRank {
			t.Errorf("world %d: comm rank %d, want %d", r.ID(), comm.Rank(), wantRank)
		}
		if comm.WorldRank(comm.Rank()) != r.ID() {
			t.Errorf("world rank translation broken")
		}
		// A bcast within the comm.
		buf := []float64{0}
		if comm.Rank() == 0 {
			buf[0] = 42
		}
		comm.Bcast(buf, 0)
		if buf[0] != 42 {
			t.Errorf("world %d: bcast got %v", r.ID(), buf[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewCommValidation(t *testing.T) {
	cfg := testConfig(4, 4)
	_, err := Run(cfg, func(r *Rank) {
		if _, err := r.NewComm(nil); err == nil {
			t.Error("empty comm accepted")
		}
		if _, err := r.NewComm([]int{0, 0, r.ID()}); err == nil {
			t.Error("duplicate ranks accepted")
		}
		if _, err := r.NewComm([]int{99, r.ID()}); err == nil {
			t.Error("out-of-world rank accepted")
		}
		other := (r.ID() + 1) % 4
		if _, err := r.NewComm([]int{other}); err == nil {
			t.Error("comm without self accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalAllreduceCorrect(t *testing.T) {
	// The hierarchical algorithm must agree with the flat ones for
	// every node-grouping, including ragged group sizes.
	for _, tc := range []struct{ p, rpn int }{
		{4, 4}, {8, 4}, {12, 5}, {16, 3}, {24, 7}, {48, 48},
	} {
		cfg := testConfig(tc.p, tc.rpn)
		cfg.Allreduce = AllreduceHierarchical
		got := make([]float64, tc.p)
		_, err := Run(cfg, func(r *Rank) {
			got[r.ID()] = r.AllreduceScalar(float64(r.ID()+1), OpSum)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(tc.p*(tc.p+1)) / 2
		for i, v := range got {
			if v != want {
				t.Fatalf("p=%d rpn=%d rank=%d: got %v want %v", tc.p, tc.rpn, i, v, want)
			}
		}
	}
}

func TestHierarchicalAllreduceVector(t *testing.T) {
	cfg := testConfig(12, 5)
	cfg.Allreduce = AllreduceHierarchical
	_, err := Run(cfg, func(r *Rank) {
		buf := []float64{float64(r.ID()), 1, -float64(r.ID())}
		r.Allreduce(buf, OpMax)
		if buf[0] != 11 || buf[1] != 1 || buf[2] != 0 {
			t.Errorf("rank %d: %v", r.ID(), buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalCheaperThanFlatOnFastIntra(t *testing.T) {
	// With a slow inter-node fabric, fast shm, and a non-power-of-two
	// rank-per-node count (like the real 48-core nodes), flat recursive
	// doubling's butterfly peers scatter across nodes while the
	// hierarchical algorithm pays the fabric only between node leaders.
	cost := func(algo AllreduceAlgo) units.Seconds {
		cfg := testConfig(48, 12) // 4 nodes × 12 ranks on 1GbE
		cfg.Allreduce = algo
		st, err := Run(cfg, func(r *Rank) {
			for i := 0; i < 5; i++ {
				r.AllreduceScalar(1, OpSum)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.End
	}
	flat := cost(AllreduceRecursiveDoubling)
	hier := cost(AllreduceHierarchical)
	if hier >= flat {
		t.Fatalf("hierarchical (%v) not cheaper than flat RD (%v)", hier, flat)
	}
}

func TestWorldWrappersMatchComm(t *testing.T) {
	cfg := testConfig(5, 2)
	_, err := Run(cfg, func(r *Rank) {
		a := r.AllreduceScalar(float64(r.ID()), OpMin)
		b := r.World().AllreduceScalar(float64(r.ID()), OpMin)
		if a != 0 || b != 0 {
			t.Errorf("wrappers disagree: %v %v", a, b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrossGroupPointToPoint(t *testing.T) {
	// The FSI coupling pattern: group A world-rank p2p with group B.
	cfg := testConfig(6, 3)
	var got [3]float64
	_, err := Run(cfg, func(r *Rank) {
		if r.ID() < 3 {
			r.Send(r.ID()+3, 50, []float64{float64(10 * r.ID())})
		} else {
			buf := []float64{0}
			r.Recv(r.ID()-3, 50, buf)
			got[r.ID()-3] = buf[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(10*i) {
			t.Fatalf("cross-group p2p: got %v", got)
		}
	}
}
