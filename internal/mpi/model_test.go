package mpi

import (
	"reflect"
	"testing"
)

// modelStats runs a two-rank exchange of n float64s using the given
// send/recv bodies and returns the stats.
func exchangeStats(t *testing.T, p, rpn, n int, body func(r *Rank, n int)) Stats {
	t.Helper()
	st, err := Run(testConfig(p, rpn), func(r *Rank) { body(r, n) })
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestModelMessagesMatchZeroPayloads is the size-only contract: a
// model exchange must be indistinguishable — same end time, same comm
// time, same byte counts — from sending real zero-filled buffers of
// the same length, for both eager and rendezvous sizes, intra- and
// inter-node.
func TestModelMessagesMatchZeroPayloads(t *testing.T) {
	cases := []struct {
		name   string
		p, rpn int
		n      int
	}{
		{"eager-intra", 2, 2, 8},
		{"eager-inter", 2, 1, 8},
		{"rendezvous-intra", 2, 2, 1 << 16},
		{"rendezvous-inter", 2, 1, 1 << 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			real := exchangeStats(t, tc.p, tc.rpn, tc.n, func(r *Rank, n int) {
				buf := make([]float64, n)
				if r.ID() == 0 {
					r.Wait(r.Isend(1, 3, buf))
				} else {
					r.Wait(r.Irecv(0, 3, buf))
				}
			})
			model := exchangeStats(t, tc.p, tc.rpn, tc.n, func(r *Rank, n int) {
				if r.ID() == 0 {
					r.Wait(r.IsendModel(1, 3, n))
				} else {
					r.Wait(r.IrecvModel(0, 3, n))
				}
			})
			if !reflect.DeepEqual(real, model) {
				t.Fatalf("model stats differ from zero-payload stats:\nreal  %+v\nmodel %+v", real, model)
			}
		})
	}
}

// TestModelBlockingPair covers SendModel/RecvModel (the blocking
// variants) against Send/Recv with zero buffers.
func TestModelBlockingPair(t *testing.T) {
	const n = 1 << 14
	real := exchangeStats(t, 2, 1, n, func(r *Rank, n int) {
		buf := make([]float64, n)
		if r.ID() == 0 {
			r.Send(1, 9, buf)
		} else {
			r.Recv(0, 9, buf)
		}
	})
	model := exchangeStats(t, 2, 1, n, func(r *Rank, n int) {
		if r.ID() == 0 {
			r.SendModel(1, 9, n)
		} else {
			r.RecvModel(0, 9, n)
		}
	})
	if !reflect.DeepEqual(real, model) {
		t.Fatalf("blocking model stats differ:\nreal  %+v\nmodel %+v", real, model)
	}
}

// TestModelMixedWithRealRecv asserts a size-only message delivers
// zeros into a real receive buffer (the documented mixed-mode
// semantics), clearing stale contents.
func TestModelMixedWithRealRecv(t *testing.T) {
	buf := []float64{1, 2, 3}
	_, err := Run(testConfig(2, 2), func(r *Rank) {
		if r.ID() == 0 {
			r.SendModel(1, 4, len(buf))
		} else {
			r.Recv(0, 4, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("buf[%d] = %v after model send, want 0", i, v)
		}
	}
}

// TestModelCountMismatchPanics keeps the truncation check alive for
// size-only endpoints.
func TestModelCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("count mismatch did not panic")
		}
	}()
	_, _ = Run(testConfig(2, 2), func(r *Rank) {
		if r.ID() == 0 {
			r.SendModel(1, 5, 8)
		} else {
			r.RecvModel(0, 5, 4)
		}
	})
}
