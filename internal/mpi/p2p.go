package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/units"
)

// message is an in-flight point-to-point payload.
type message struct {
	src, dst, tag int
	// data carries the payload values; nil for size-only (model)
	// messages, which move no bytes in host memory but are costed
	// exactly like a payload of count float64s.
	data  []float64
	count int
	size  units.ByteSize
	tr    *fabric.Transport
	eager bool
	// readyAt is, for eager messages, the time the payload is fully
	// available at the receiver; for rendezvous messages, the time the
	// sender posted (RTS time).
	readyAt units.Seconds
	// sentAt is when the sender entered the send, for the Observer's
	// latency accounting.
	sentAt units.Seconds
	// sreq, when non-nil, is the sender's request to complete once the
	// transfer finishes (rendezvous Isend or blocking Send).
	sreq *Request
	// sender lets the receiver wake a blocked sender.
	sender *Rank
}

// recvPost is a posted receive awaiting a matching send.
type recvPost struct {
	src, tag int
	// buf receives the payload; nil for size-only (model) receives
	// that only validate the expected count.
	buf      []float64
	count    int
	postedAt units.Seconds
	req      *Request
	owner    *Rank
}

// mailbox holds a destination rank's unexpected messages and posted
// receives. Matching is FIFO within (src, tag).
type mailbox struct {
	sends []*message
	posts []*recvPost
}

func (m *mailbox) matchSend(src, tag int) *message {
	for i, msg := range m.sends {
		if msg.src == src && msg.tag == tag {
			m.sends = append(m.sends[:i], m.sends[i+1:]...)
			return msg
		}
	}
	return nil
}

func (m *mailbox) matchPost(src, tag int) *recvPost {
	for i, p := range m.posts {
		if p.src == src && p.tag == tag {
			m.posts = append(m.posts[:i], m.posts[i+1:]...)
			return p
		}
	}
	return nil
}

// Request tracks completion of a nonblocking operation.
type Request struct {
	owner      *Rank
	done       bool
	completeAt units.Seconds
	kind       string
	seq        int
}

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done }

func (r *Rank) newRequest(kind string) *Request {
	r.reqSeq++
	return &Request{owner: r, kind: kind, seq: r.reqSeq}
}

// complete marks the request finished at time t.
func (q *Request) complete(t units.Seconds) {
	q.done = true
	q.completeAt = t
}

// payloadSize converts a float64 count to wire bytes.
func payloadSize(n int) units.ByteSize { return units.ByteSize(8 * n) }

// observe reports a completed transfer to the configured Observer.
func (w *World) observe(msg *message, arrival units.Seconds) {
	if w.cfg.Observer != nil {
		w.cfg.Observer.Message(msg.src, msg.dst, msg.tag, msg.size, msg.tr.Name, msg.sentAt, arrival)
	}
}

// deliver computes the arrival time of a matched transfer whose payload
// may start moving at `start` on transport tr, accounting for NIC
// serialization on the sending node when the path shares the NIC.
func (w *World) deliver(tr *fabric.Transport, srcNode int, start units.Seconds, size units.ByteSize) units.Seconds {
	wire := tr.WireTime(size)
	if tr.SharesNIC {
		return w.nic(srcNode).ReserveAt(start, wire) + tr.Latency
	}
	return start + wire + tr.Latency
}

// Send transmits data to dst with the given tag. Small messages are
// eager (buffered, sender returns after its CPU cost); large messages
// use rendezvous and block the sender until the receiver has the data —
// matching the synchronous behaviour of real MPI large-message sends.
func (r *Rank) Send(dst, tag int, data []float64) {
	r.timed(func() { r.send(dst, tag, data, len(data), nil) })
}

// SendModel is Send for a size-only payload of n float64s: it pays
// every transport cost of the full message without moving data — the
// workload model's replacement for sending a zero buffer.
func (r *Rank) SendModel(dst, tag, n int) {
	r.timed(func() { r.send(dst, tag, nil, n, nil) })
}

// Isend starts a nonblocking send and returns its request. Eager sends
// complete immediately after local CPU cost; rendezvous sends complete
// when the receiver has the data (observe via Wait).
func (r *Rank) Isend(dst, tag int, data []float64) *Request {
	var req *Request
	r.timed(func() {
		req = r.newRequest("isend")
		r.send(dst, tag, data, len(data), req)
	})
	return req
}

// IsendModel is Isend for a size-only payload of n float64s.
func (r *Rank) IsendModel(dst, tag, n int) *Request {
	var req *Request
	r.timed(func() {
		req = r.newRequest("isend")
		r.send(dst, tag, nil, n, req)
	})
	return req
}

// send implements Send/SendModel (req == nil) and Isend/IsendModel
// (req != nil). data is nil for size-only messages; count is the
// payload length in float64s in either case.
func (r *Rank) send(dst, tag int, data []float64, count int, req *Request) {
	if dst < 0 || dst >= r.w.cfg.Ranks {
		panic(fmt.Sprintf("mpi: rank %d sends to invalid rank %d", r.id, dst))
	}
	if dst == r.id {
		panic(fmt.Sprintf("mpi: rank %d sends to itself (tag %d)", r.id, tag))
	}
	tr := r.path(dst)
	size := payloadSize(count)
	r.proc.Sync() // establish global virtual-time order before matching
	r.bytesSent += size
	r.msgsSent++

	// The payload is copied at send time: MPI buffer semantics. The
	// copy also prevents aliasing bugs between rank bodies. Size-only
	// messages skip the copy — there is nothing to alias.
	var payload []float64
	if data != nil {
		payload = make([]float64, len(data))
		copy(payload, data)
	}

	eager := tr.Eager(size)
	cpu := tr.CPUCost(size)
	msg := &message{
		src: r.id, dst: dst, tag: tag,
		data: payload, count: count, size: size, tr: tr,
		eager: eager, sender: r, sreq: req,
		sentAt: r.proc.Now(),
	}
	box := &r.w.boxes[dst]

	if eager {
		r.proc.Advance(cpu)
		msg.readyAt = r.w.deliver(tr, r.node, r.proc.Now(), size)
		if req != nil {
			req.complete(r.proc.Now())
		}
		if post := box.matchPost(msg.src, msg.tag); post != nil {
			r.finishReceive(post, msg)
			return
		}
		box.sends = append(box.sends, msg)
		return
	}

	// Rendezvous: post the RTS, then either block (Send) or let the
	// request track completion (Isend).
	r.proc.Advance(tr.Overhead) // RTS packet cost
	msg.readyAt = r.proc.Now()
	if post := box.matchPost(msg.src, msg.tag); post != nil {
		// Receiver already waiting: transfer can start once the CTS
		// round-trip completes.
		start := units.Max(msg.readyAt, post.postedAt) + tr.Latency
		arrival := r.w.deliver(tr, r.node, start, size)
		r.completeMatchedRecv(post, msg, arrival)
		if req != nil {
			req.complete(arrival)
		} else {
			r.idleTo("wait:send-rdv", arrival)
		}
		return
	}
	box.sends = append(box.sends, msg)
	if req == nil {
		msg.sreq = r.newRequest("send-rdv")
		r.waitOne(msg.sreq)
	}
}

// Recv blocks until a matching message arrives and copies it into buf.
// buf must have exactly the sent length; mismatches panic, which in a
// simulator is the most useful behaviour for a truncation bug.
func (r *Rank) Recv(src, tag int, buf []float64) {
	r.timed(func() {
		req := r.irecv(src, tag, buf, len(buf))
		r.waitOne(req)
	})
}

// RecvModel is Recv for a size-only message of n float64s.
func (r *Rank) RecvModel(src, tag, n int) {
	r.timed(func() {
		req := r.irecv(src, tag, nil, n)
		r.waitOne(req)
	})
}

// Irecv posts a nonblocking receive into buf.
func (r *Rank) Irecv(src, tag int, buf []float64) *Request {
	var req *Request
	r.timed(func() { req = r.irecv(src, tag, buf, len(buf)) })
	return req
}

// IrecvModel posts a nonblocking size-only receive of n float64s.
func (r *Rank) IrecvModel(src, tag, n int) *Request {
	var req *Request
	r.timed(func() { req = r.irecv(src, tag, nil, n) })
	return req
}

func (r *Rank) irecv(src, tag int, buf []float64, count int) *Request {
	if src < 0 || src >= r.w.cfg.Ranks {
		panic(fmt.Sprintf("mpi: rank %d receives from invalid rank %d", r.id, src))
	}
	if src == r.id {
		panic(fmt.Sprintf("mpi: rank %d receives from itself (tag %d)", r.id, tag))
	}
	req := r.newRequest("irecv")
	r.proc.Sync()
	box := &r.w.boxes[r.id]
	post := &recvPost{src: src, tag: tag, buf: buf, count: count, postedAt: r.proc.Now(), req: req, owner: r}
	if msg := box.matchSend(src, tag); msg != nil {
		r.matchAsReceiver(post, msg)
		return req
	}
	box.posts = append(box.posts, post)
	return req
}

// matchAsReceiver computes completion for a message found already
// posted in the mailbox, from the receiver's side.
func (r *Rank) matchAsReceiver(post *recvPost, msg *message) {
	tr := msg.tr
	if msg.eager {
		arrival := units.Max(msg.readyAt, post.postedAt) + tr.CPUCost(msg.size)
		copyPayload(post, msg)
		post.req.complete(arrival)
		r.w.observe(msg, arrival)
		return
	}
	// Rendezvous: CTS handshake then transfer.
	start := units.Max(msg.readyAt, post.postedAt) + tr.Latency
	arrival := r.w.deliver(tr, r.w.ranks[msg.src].node, start, msg.size)
	arrival += tr.CPUCost(msg.size)
	copyPayload(post, msg)
	post.req.complete(arrival)
	r.w.observe(msg, arrival)
	if msg.sreq != nil {
		// Complete the sender's request; if the sender is parked in a
		// blocking rendezvous Send or in Wait, bring it back.
		msg.sreq.complete(arrival)
		r.wakeIfBlocked(msg.sender, arrival)
	}
}

// finishReceive completes a posted receive matched from the sender's
// side (eager case).
func (r *Rank) finishReceive(post *recvPost, msg *message) {
	arrival := units.Max(msg.readyAt, post.postedAt) + msg.tr.CPUCost(msg.size)
	copyPayload(post, msg)
	post.req.complete(arrival)
	r.w.observe(msg, arrival)
	r.wakeIfBlocked(post.owner, arrival)
}

// completeMatchedRecv completes a posted receive matched from the
// sender's side (rendezvous case) with a known arrival time.
func (r *Rank) completeMatchedRecv(post *recvPost, msg *message, arrival units.Seconds) {
	arrival += msg.tr.CPUCost(msg.size)
	copyPayload(post, msg)
	post.req.complete(arrival)
	r.w.observe(msg, arrival)
	r.wakeIfBlocked(post.owner, arrival)
}

// wakeIfBlocked wakes a peer rank parked in Wait if its request is now
// satisfied. The kernel defers the wake: the peer joins the run queue
// in a batched insert at this rank's next scheduling point, so the
// consecutive completions of a collective fan-out (a Bcast or Scatter
// root eagerly satisfying one blocked child per send) flush as one
// bulk operation instead of one heap push each. The vtime kernel only
// lets us wake genuinely blocked procs, so Wait marks itself via the
// waiting flag before parking.
func (r *Rank) wakeIfBlocked(peer *Rank, at units.Seconds) {
	if peer.waiting {
		r.proc.Wake(peer.proc, at)
		peer.waiting = false
	}
}

func copyPayload(post *recvPost, msg *message) {
	if post.count != msg.count {
		panic(fmt.Sprintf("mpi: recv buffer length %d != message length %d (src %d dst %d tag %d)",
			post.count, msg.count, msg.src, msg.dst, msg.tag))
	}
	// Size-only endpoints move no data between themselves. A size-only
	// message delivers zeros, so a real receive buffer matched against
	// one is cleared to preserve the zero-payload semantics.
	switch {
	case post.buf == nil:
	case msg.data != nil:
		copy(post.buf, msg.data)
	default:
		clear(post.buf)
	}
}

// Wait blocks until every request completes, advancing the rank's clock
// to the latest completion.
func (r *Rank) Wait(reqs ...*Request) {
	r.timed(func() {
		for _, q := range reqs {
			r.waitOne(q)
		}
	})
}

func (r *Rank) waitOne(q *Request) {
	if q.owner != r {
		panic(fmt.Sprintf("mpi: rank %d waits on rank %d's request", r.id, q.owner.id))
	}
	for !q.done {
		r.waiting = true
		r.proc.Block("wait:" + q.kind)
	}
	r.waiting = false
	r.idleTo("wait:"+q.kind, q.completeAt)
}

// idleTo advances the rank's clock to t, reporting the jump (a wait on
// an already-completed operation whose finish time lies ahead) to the
// kernel tracer so profilers can attribute it. Blocked waits are
// reported by the kernel's own park/wake events instead.
func (r *Rank) idleTo(tag string, t units.Seconds) {
	if tr := r.w.cfg.KernelTracer; tr != nil && t > r.proc.Now() {
		tr.Idle(r.id, tag, r.proc.Now(), t)
	}
	r.proc.AdvanceTo(t)
}

// SendRecv performs a simultaneous exchange with two peers — the
// deadlock-free building block of halo exchanges.
func (r *Rank) SendRecv(dst, sendTag int, sendBuf []float64, src, recvTag int, recvBuf []float64) {
	rq := r.Irecv(src, recvTag, recvBuf)
	sq := r.Isend(dst, sendTag, sendBuf)
	r.Wait(rq, sq)
}
