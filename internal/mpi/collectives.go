package mpi

import (
	"fmt"
	"math"
)

// Op is an elementwise reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

// String names the operator.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// apply folds src into dst elementwise.
func (op Op) apply(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mpi: reduction length mismatch %d != %d", len(dst), len(src)))
	}
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMax:
		for i := range dst {
			dst[i] = math.Max(dst[i], src[i])
		}
	case OpMin:
		for i := range dst {
			dst[i] = math.Min(dst[i], src[i])
		}
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", int(op)))
	}
}

// Collective tags live in a reserved band per rank pair so application
// traffic (tags >= 0 from user code) never matches collective traffic.
const (
	tagBarrier   = -1000
	tagAllreduce = -2000
	tagBcast     = -3000
	tagReduce    = -4000
	tagGather    = -5000
	tagScatter   = -6000
	tagAllgather = -7000
	tagAlltoall  = -8000
)

// beginPhase opens a collective span for the world's PhaseObserver and
// returns the observer to close it with (nil when nobody listens, so
// the untraced hot path costs one nil check per collective).
func (c *Comm) beginPhase(name string) PhaseObserver {
	if po := c.r.w.phObs; po != nil {
		po.PhaseBegin(c.r.id, name, c.r.proc.Now())
		return po
	}
	return nil
}

// endPhase closes a span opened by beginPhase.
func (c *Comm) endPhase(po PhaseObserver, name string) {
	if po != nil {
		po.PhaseEnd(c.r.id, name, c.r.proc.Now())
	}
}

// Barrier synchronizes all ranks with the dissemination algorithm:
// ceil(log2 P) rounds of zero-byte exchanges.
func (c *Comm) Barrier() {
	po := c.beginPhase("barrier")
	c.barrier()
	c.endPhase(po, "barrier")
}

func (c *Comm) barrier() {
	p := c.Size()
	if p == 1 {
		return
	}
	empty := []float64{}
	recv := []float64{}
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		dst := (c.me + k) % p
		src := (c.me - k + p) % p
		c.sendRecv(dst, tagBarrier-round, empty, src, tagBarrier-round, recv)
	}
}

// Allreduce reduces buf elementwise across all ranks and leaves the
// result in buf on every rank, using the configured algorithm.
func (c *Comm) Allreduce(buf []float64, op Op) {
	if c.Size() == 1 {
		return
	}
	po := c.beginPhase("allreduce")
	c.allreduce(buf, op)
	c.endPhase(po, "allreduce")
}

func (c *Comm) allreduce(buf []float64, op Op) {
	switch c.r.w.cfg.Allreduce {
	case AllreduceRecursiveDoubling:
		c.allreduceRD(buf, op)
	case AllreduceRing:
		c.allreduceRing(buf, op)
	case AllreduceReduceBcast:
		c.Reduce(buf, 0, op)
		c.Bcast(buf, 0)
	case AllreduceHierarchical:
		c.allreduceHier(buf, op)
	default:
		panic(fmt.Sprintf("mpi: unknown allreduce algorithm %d", int(c.r.w.cfg.Allreduce)))
	}
}

// allreduceHier is the shared-memory-aware algorithm every production
// MPI applies at scale: reduce within each node to a leader over the
// (fast) intra-node path, recursive-double among the node leaders over
// the fabric, then broadcast within each node. The fabric's latency is
// paid ceil(log2 #nodes) times instead of ceil(log2 P).
func (c *Comm) allreduceHier(buf []float64, op Op) {
	h := c.hier()
	tmp := make([]float64, len(buf))
	// 1. Intra-node binomial reduce to the node leader (local rank 0).
	lr, ln := h.localRank, len(h.localPeers)
	for mask := 1; mask < ln; mask <<= 1 {
		if lr&mask != 0 {
			c.send(h.localPeers[lr-mask], tagAllreduce-400, buf)
			break
		}
		if lr+mask < ln {
			c.recv(h.localPeers[lr+mask], tagAllreduce-400, tmp)
			op.apply(buf, tmp)
		}
	}
	// 2. Leaders recursive-double across nodes.
	if lr == 0 && len(h.leaders) > 1 {
		c.subsetRD(h.leaders, h.leaderIdx, buf, tmp, op)
	}
	// 3. Intra-node binomial broadcast from the leader.
	if ln > 1 {
		if lr != 0 {
			mask := 1
			for mask <= lr {
				mask <<= 1
			}
			mask >>= 1
			c.recv(h.localPeers[lr-mask], tagAllreduce-500, buf)
		}
		for mask := lowestPow2Above(lr); lr+mask < ln; mask <<= 1 {
			c.send(h.localPeers[lr+mask], tagAllreduce-500, buf)
		}
	}
}

// subsetRD runs recursive doubling among the comm ranks listed in
// subset (me = my index within it), with the standard non-power-of-two
// fold.
func (c *Comm) subsetRD(subset []int, me int, buf, tmp []float64, op Op) {
	p := len(subset)
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	newRank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		c.send(subset[me+1], tagAllreduce-600, buf)
	case me < 2*rem:
		c.recv(subset[me-1], tagAllreduce-600, tmp)
		op.apply(buf, tmp)
		newRank = me / 2
	default:
		newRank = me - rem
	}
	if newRank >= 0 {
		for mask, round := 1, 0; mask < pof2; mask, round = mask<<1, round+1 {
			peerNew := newRank ^ mask
			peer := peerNew
			if peerNew < rem {
				peer = peerNew*2 + 1
			} else {
				peer = peerNew + rem
			}
			c.sendRecv(subset[peer], tagAllreduce-601-round, buf,
				subset[peer], tagAllreduce-601-round, tmp)
			op.apply(buf, tmp)
		}
	}
	switch {
	case me < 2*rem && me%2 == 0:
		c.recv(subset[me+1], tagAllreduce-700, buf)
	case me < 2*rem:
		c.send(subset[me-1], tagAllreduce-700, buf)
	}
}

// allreduceRD is recursive doubling with the standard non-power-of-two
// pre/post phase: the first 2*rem ranks pair up so a power-of-two core
// performs the butterfly, then results fan back out.
func (c *Comm) allreduceRD(buf []float64, op Op) {
	p := c.Size()
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	tmp := make([]float64, len(buf))

	newRank := -1
	switch {
	case c.me < 2*rem && c.me%2 == 0:
		// Fold into the odd partner, then sit out the butterfly.
		c.send(c.me+1, tagAllreduce, buf)
	case c.me < 2*rem:
		c.recv(c.me-1, tagAllreduce, tmp)
		op.apply(buf, tmp)
		newRank = c.me / 2
	default:
		newRank = c.me - rem
	}

	if newRank >= 0 {
		for mask, round := 1, 0; mask < pof2; mask, round = mask<<1, round+1 {
			peerNew := newRank ^ mask
			peer := peerNew
			if peerNew < rem {
				peer = peerNew*2 + 1
			} else {
				peer = peerNew + rem
			}
			c.sendRecv(peer, tagAllreduce-1-round, buf, peer, tagAllreduce-1-round, tmp)
			op.apply(buf, tmp)
		}
	}

	// Post phase: odd folded ranks return results to their even pairs.
	switch {
	case c.me < 2*rem && c.me%2 == 0:
		c.recv(c.me+1, tagAllreduce-100, buf)
	case c.me < 2*rem:
		c.send(c.me-1, tagAllreduce-100, buf)
	}
}

// allreduceRing is the bandwidth-optimal reduce-scatter + allgather
// ring: each rank sends 2(P-1) chunks of size n/P.
func (c *Comm) allreduceRing(buf []float64, op Op) {
	p := c.Size()
	n := len(buf)
	if n == 0 {
		c.Barrier()
		return
	}
	// Chunk boundaries (block distribution of buf across ranks).
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = i * n / p
	}
	chunk := func(i int) []float64 {
		i = ((i % p) + p) % p
		return buf[bounds[i]:bounds[i+1]]
	}
	next := (c.me + 1) % p
	prev := (c.me - 1 + p) % p
	tmp := make([]float64, n) // large enough for any chunk

	// Reduce-scatter phase.
	for step := 0; step < p-1; step++ {
		out := chunk(c.me - step)
		in := chunk(c.me - step - 1)
		c.sendRecv(next, tagAllreduce-200-step, out, prev, tagAllreduce-200-step, tmp[:len(in)])
		op.apply(in, tmp[:len(in)])
	}
	// Allgather phase.
	for step := 0; step < p-1; step++ {
		out := chunk(c.me + 1 - step)
		in := chunk(c.me - step)
		c.sendRecv(next, tagAllreduce-300-step, out, prev, tagAllreduce-300-step, tmp[:len(in)])
		copy(in, tmp[:len(in)])
	}
}

// Bcast broadcasts root's buf to all ranks over a binomial tree.
func (c *Comm) Bcast(buf []float64, root int) {
	po := c.beginPhase("bcast")
	c.bcast(buf, root)
	c.endPhase(po, "bcast")
}

func (c *Comm) bcast(buf []float64, root int) {
	p := c.Size()
	if p == 1 {
		return
	}
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mpi: bcast root %d out of range", root))
	}
	// Work in a rotated space where root is rank 0.
	vrank := (c.me - root + p) % p
	// Receive from parent (highest set bit), unless root.
	if vrank != 0 {
		mask := 1
		for mask <= vrank {
			mask <<= 1
		}
		mask >>= 1
		parent := (vrank - mask + root) % p
		c.recv(parent, tagBcast, buf)
	}
	// Forward to children.
	low := lowestPow2Above(vrank)
	for mask := low; vrank+mask < p; mask <<= 1 {
		child := (vrank + mask + root) % p
		c.send(child, tagBcast, buf)
	}
}

// lowestPow2Above returns the smallest power of two strictly greater
// than v's highest set bit — i.e. where v's children start in a
// binomial tree (1 for v == 0).
func lowestPow2Above(v int) int {
	m := 1
	for m <= v {
		m <<= 1
	}
	return m
}

// Reduce folds buf from all ranks into root's buf over a binomial tree.
// Non-root buffers are left with their partial reductions (like MPI,
// their contents are undefined afterwards; do not rely on them).
func (c *Comm) Reduce(buf []float64, root int, op Op) {
	po := c.beginPhase("reduce")
	c.reduce(buf, root, op)
	c.endPhase(po, "reduce")
}

func (c *Comm) reduce(buf []float64, root int, op Op) {
	p := c.Size()
	if p == 1 {
		return
	}
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mpi: reduce root %d out of range", root))
	}
	vrank := (c.me - root + p) % p
	tmp := make([]float64, len(buf))
	// Mirror image of the bcast tree: receive from children first.
	low := lowestPow2Above(vrank)
	// Children of vrank are vrank+m for m in {low, low*2, ...}; to
	// reduce bottom-up we visit them from the largest down.
	var children []int
	for mask := low; vrank+mask < p; mask <<= 1 {
		children = append(children, vrank+mask)
	}
	for i := len(children) - 1; i >= 0; i-- {
		child := (children[i] + root) % p
		c.recv(child, tagReduce, tmp)
		op.apply(buf, tmp)
	}
	if vrank != 0 {
		mask := 1
		for mask <= vrank {
			mask <<= 1
		}
		mask >>= 1
		parent := (vrank - mask + root) % p
		c.send(parent, tagReduce, buf)
	}
}

// AllreduceScalar reduces a single value — the hot path of Krylov dot
// products — and returns the result.
func (c *Comm) AllreduceScalar(v float64, op Op) float64 {
	buf := []float64{v}
	c.Allreduce(buf, op)
	return buf[0]
}

// Gather collects every rank's buf into root's out, which must be
// len(buf)*Size() long on root (ignored elsewhere). Linear algorithm:
// deployment-phase usage only, not on solver hot paths.
func (c *Comm) Gather(buf []float64, root int, out []float64) {
	po := c.beginPhase("gather")
	c.gather(buf, root, out)
	c.endPhase(po, "gather")
}

func (c *Comm) gather(buf []float64, root int, out []float64) {
	p := c.Size()
	n := len(buf)
	if c.me == root {
		if len(out) != n*p {
			panic(fmt.Sprintf("mpi: gather out length %d != %d", len(out), n*p))
		}
		copy(out[root*n:(root+1)*n], buf)
		for src := 0; src < p; src++ {
			if src == root {
				continue
			}
			c.recv(src, tagGather, out[src*n:(src+1)*n])
		}
		return
	}
	c.send(root, tagGather, buf)
}

// Scatter distributes root's in (len n*P) so each rank receives its
// n-length block into buf. Linear algorithm.
func (c *Comm) Scatter(in []float64, root int, buf []float64) {
	po := c.beginPhase("scatter")
	c.scatter(in, root, buf)
	c.endPhase(po, "scatter")
}

func (c *Comm) scatter(in []float64, root int, buf []float64) {
	p := c.Size()
	n := len(buf)
	if c.me == root {
		if len(in) != n*p {
			panic(fmt.Sprintf("mpi: scatter in length %d != %d", len(in), n*p))
		}
		copy(buf, in[root*n:(root+1)*n])
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			c.send(dst, tagScatter, in[dst*n:(dst+1)*n])
		}
		return
	}
	c.recv(root, tagScatter, buf)
}

// Allgather concatenates every rank's buf into out (len(buf)*Size()) on
// all ranks, using the ring algorithm.
func (c *Comm) Allgather(buf []float64, out []float64) {
	po := c.beginPhase("allgather")
	c.allgather(buf, out)
	c.endPhase(po, "allgather")
}

func (c *Comm) allgather(buf []float64, out []float64) {
	p := c.Size()
	n := len(buf)
	if len(out) != n*p {
		panic(fmt.Sprintf("mpi: allgather out length %d != %d", len(out), n*p))
	}
	copy(out[c.me*n:(c.me+1)*n], buf)
	if p == 1 {
		return
	}
	next := (c.me + 1) % p
	prev := (c.me - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendIdx := ((c.me-step)%p + p) % p
		recvIdx := ((c.me-step-1)%p + p) % p
		c.sendRecv(next, tagAllgather-step, out[sendIdx*n:(sendIdx+1)*n],
			prev, tagAllgather-step, out[recvIdx*n:(recvIdx+1)*n])
	}
}

// Alltoall exchanges blocks: rank i's in[j*n:(j+1)*n] lands in rank j's
// out[i*n:(i+1)*n]. Pairwise-exchange algorithm (P-1 balanced steps).
func (c *Comm) Alltoall(in, out []float64, n int) {
	po := c.beginPhase("alltoall")
	c.alltoall(in, out, n)
	c.endPhase(po, "alltoall")
}

func (c *Comm) alltoall(in, out []float64, n int) {
	p := c.Size()
	if len(in) != n*p || len(out) != n*p {
		panic(fmt.Sprintf("mpi: alltoall buffer lengths %d/%d != %d", len(in), len(out), n*p))
	}
	copy(out[c.me*n:(c.me+1)*n], in[c.me*n:(c.me+1)*n])
	// The pairing scheme must be uniform across ranks within a step:
	// XOR pairing for power-of-two worlds, shifted pairing otherwise.
	pof2 := p&(p-1) == 0
	for step := 1; step < p; step++ {
		if pof2 {
			peer := c.me ^ step
			c.sendRecv(peer, tagAlltoall-step, in[peer*n:(peer+1)*n],
				peer, tagAlltoall-step, out[peer*n:(peer+1)*n])
			continue
		}
		sendTo := (c.me + step) % p
		recvFrom := (c.me - step + p) % p
		c.sendRecv(sendTo, tagAlltoall-step, in[sendTo*n:(sendTo+1)*n],
			recvFrom, tagAlltoall-step, out[recvFrom*n:(recvFrom+1)*n])
	}
}
