// Package mpi is a deterministic virtual-time MPI implementation.
//
// Ranks are coroutines scheduled by the vtime kernel; messages carry
// real []float64 payloads, so distributed solvers built on this package
// produce genuine numerical results while every operation's duration is
// charged from the fabric cost models. Point-to-point matching follows
// MPI semantics (FIFO per source/tag/communicator, eager and rendezvous
// protocols); collectives are implemented on top of point-to-point with
// the textbook algorithms (binomial trees, recursive doubling, ring),
// so their scaling behaviour emerges from the message costs rather than
// being asserted.
package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/units"
	"repro/internal/vtime"
)

// Config fixes the simulated machine as the MPI layer sees it: rank
// placement, transport selection per rank pair, and execution knobs.
type Config struct {
	// Ranks is the world size.
	Ranks int
	// NodeOf maps a rank to its node index (0-based, dense).
	NodeOf func(rank int) int
	// Nodes is the number of distinct nodes (for NIC resources).
	Nodes int
	// Path selects the transport for a message from src to dst rank.
	// The container runtime's integration policy lives here: Docker
	// returns the bridge path even intra-node; a self-contained image
	// returns the TCP fallback inter-node.
	Path func(src, dst int) *fabric.Transport
	// ComputeDilation multiplies all Compute durations (cgroup
	// accounting and container page-cache effects). 1.0 = bare metal.
	ComputeDilation float64
	// Allreduce picks the allreduce algorithm (default recursive
	// doubling).
	Allreduce AllreduceAlgo
	// StartupSkew staggers rank start times (container per-rank start
	// cost is paid here by the runtime profiles). StartupSkew(rank)
	// returns the rank's time-zero offset; nil means all start at 0.
	StartupSkew func(rank int) units.Seconds
	// Observer, when non-nil, receives every completed point-to-point
	// message (the trace package provides implementations). It runs
	// under the deterministic scheduler, so it needs no locking. An
	// Observer that also implements PhaseObserver additionally receives
	// collective phase spans.
	Observer Observer
	// KernelTracer, when non-nil, taps the vtime scheduler's
	// switch/park/wake events (see vtime.Tracer). Same contract as
	// Observer: deterministic callback order, no locking needed, and
	// the execution's outcome does not depend on it.
	KernelTracer vtime.Tracer
}

// Observer receives message-completion events for tracing.
type Observer interface {
	// Message reports one delivered point-to-point message: endpoints,
	// tag, payload size, transport name, send time, and arrival time.
	Message(src, dst, tag int, size units.ByteSize, transport string, sent, arrived units.Seconds)
}

// PhaseObserver extends Observer with collective phase spans: every
// public collective (Barrier, Allreduce, Bcast, ...) reports the
// calling rank's entry and exit in virtual time. Spans nest — the
// reduce+bcast allreduce reports its inner Reduce and Bcast inside the
// allreduce span — and stay properly bracketed per rank.
type PhaseObserver interface {
	Observer
	// PhaseBegin reports rank entering the named collective at start.
	PhaseBegin(rank int, name string, start units.Seconds)
	// PhaseEnd reports rank leaving the named collective at end.
	PhaseEnd(rank int, name string, end units.Seconds)
}

// AllreduceAlgo selects the collective algorithm for Allreduce.
type AllreduceAlgo int

// Available allreduce algorithms.
const (
	// AllreduceRecursiveDoubling is latency-optimal for short vectors:
	// ceil(log2 P) rounds exchanging the full vector.
	AllreduceRecursiveDoubling AllreduceAlgo = iota
	// AllreduceRing is bandwidth-optimal for long vectors:
	// reduce-scatter plus allgather, 2(P-1) chunk steps.
	AllreduceRing
	// AllreduceReduceBcast reduces to root over a binomial tree and
	// broadcasts back; the baseline algorithm.
	AllreduceReduceBcast
	// AllreduceHierarchical reduces within each node over shared
	// memory, recursive-doubles among node leaders over the fabric,
	// and broadcasts back within nodes — what production MPIs do at
	// scale.
	AllreduceHierarchical
)

// String names the algorithm.
func (a AllreduceAlgo) String() string {
	switch a {
	case AllreduceRecursiveDoubling:
		return "recursive-doubling"
	case AllreduceRing:
		return "ring"
	case AllreduceReduceBcast:
		return "reduce+bcast"
	case AllreduceHierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("allreduce(%d)", int(a))
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Ranks <= 0 {
		return fmt.Errorf("mpi: world size %d", c.Ranks)
	}
	if c.NodeOf == nil {
		return fmt.Errorf("mpi: no rank placement")
	}
	if c.Nodes <= 0 {
		return fmt.Errorf("mpi: node count %d", c.Nodes)
	}
	if c.Path == nil {
		return fmt.Errorf("mpi: no transport policy")
	}
	if c.ComputeDilation <= 0 {
		return fmt.Errorf("mpi: compute dilation %v", c.ComputeDilation)
	}
	return nil
}

// World is one simulated MPI_COMM_WORLD execution.
type World struct {
	cfg   Config
	sched *vtime.Scheduler
	ranks []*Rank
	nics  []*vtime.Resource
	boxes []mailbox
	// phObs is cfg.Observer pre-asserted to PhaseObserver (nil when the
	// observer has no phase extension), so collectives pay one nil
	// check per call instead of a type assertion.
	phObs PhaseObserver
}

// Rank is the per-process handle passed to rank bodies.
type Rank struct {
	w    *World
	proc *vtime.Proc
	id   int
	node int

	// waiting marks the rank as parked inside Wait/Block so peers know
	// to wake it when they complete one of its requests.
	waiting bool

	// world caches the all-ranks communicator.
	world *Comm

	// stats
	commTime  units.Seconds
	bytesSent units.ByteSize
	msgsSent  int
	reqSeq    int
}

// Stats summarizes one execution.
type Stats struct {
	// End is the simulated makespan (max rank finish time).
	End units.Seconds `json:"End"`
	// MaxCommTime is the largest per-rank time spent inside MPI calls.
	MaxCommTime units.Seconds `json:"MaxCommTime"`
	// AvgCommTime is the mean per-rank MPI time.
	AvgCommTime units.Seconds `json:"AvgCommTime"`
	// TotalBytes is the sum of sent payload bytes.
	TotalBytes units.ByteSize `json:"TotalBytes"`
	// TotalMessages is the number of point-to-point messages sent.
	TotalMessages int `json:"TotalMessages"`
	// RankEnd holds every rank's finish time.
	RankEnd []units.Seconds `json:"RankEnd"`
	// Kernel reports the vtime scheduler's counters for this execution
	// — wall-cost observability, not simulated output, so it is
	// excluded from persisted results.
	Kernel vtime.Counters `json:"-"`
}

// Run executes body on every rank and returns the execution statistics.
func Run(cfg Config, body func(r *Rank)) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if cfg.Allreduce < AllreduceRecursiveDoubling || cfg.Allreduce > AllreduceHierarchical {
		return Stats{}, fmt.Errorf("mpi: unknown allreduce algorithm %d", int(cfg.Allreduce))
	}
	w := &World{
		cfg:   cfg,
		sched: vtime.NewScheduler(cfg.Ranks),
		ranks: make([]*Rank, cfg.Ranks),
		nics:  make([]*vtime.Resource, cfg.Nodes),
		boxes: make([]mailbox, cfg.Ranks),
	}
	for n := range w.nics {
		w.nics[n] = vtime.NewResource(fmt.Sprintf("nic-%d", n))
	}
	w.phObs, _ = cfg.Observer.(PhaseObserver)
	if cfg.KernelTracer != nil {
		w.sched.SetTracer(cfg.KernelTracer)
	}
	procs := w.sched.Procs()
	for i := range w.ranks {
		node := cfg.NodeOf(i)
		if node < 0 || node >= cfg.Nodes {
			return Stats{}, fmt.Errorf("mpi: rank %d placed on node %d of %d", i, node, cfg.Nodes)
		}
		w.ranks[i] = &Rank{w: w, proc: procs[i], id: i, node: node}
	}
	end := w.sched.Run(func(p *vtime.Proc) {
		r := w.ranks[p.ID]
		if cfg.StartupSkew != nil {
			p.Advance(cfg.StartupSkew(r.id))
		}
		body(r)
	})

	st := Stats{End: end, RankEnd: make([]units.Seconds, cfg.Ranks), Kernel: w.sched.Counters()}
	var sumComm units.Seconds
	for i, r := range w.ranks {
		st.RankEnd[i] = r.proc.Now()
		if r.commTime > st.MaxCommTime {
			st.MaxCommTime = r.commTime
		}
		sumComm += r.commTime
		st.TotalBytes += r.bytesSent
		st.TotalMessages += r.msgsSent
	}
	st.AvgCommTime = sumComm / units.Seconds(cfg.Ranks)
	return st, nil
}

// ID returns the rank number (0-based).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.cfg.Ranks }

// Node returns the node index hosting this rank.
func (r *Rank) Node() int { return r.node }

// Now returns the rank's virtual clock.
func (r *Rank) Now() units.Seconds { return r.proc.Now() }

// CommTime returns the rank's accumulated time inside MPI operations.
func (r *Rank) CommTime() units.Seconds { return r.commTime }

// Compute charges d of application computation, scaled by the runtime's
// compute dilation.
func (r *Rank) Compute(d units.Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("mpi: rank %d computed negative duration %v", r.id, d))
	}
	r.proc.Advance(d * units.Seconds(r.w.cfg.ComputeDilation))
}

// path returns the transport for a message from r to dst.
func (r *Rank) path(dst int) *fabric.Transport {
	t := r.w.cfg.Path(r.id, dst)
	if t == nil {
		panic(fmt.Sprintf("mpi: no path from rank %d to %d", r.id, dst))
	}
	return t
}

// nic returns the injection-port resource of a node.
func (w *World) nic(node int) *vtime.Resource { return w.nics[node] }

// timed wraps an MPI operation, accumulating its duration into the
// rank's communication time.
func (r *Rank) timed(f func()) {
	start := r.proc.Now()
	f()
	r.commTime += r.proc.Now() - start
}
