package mpi

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/units"
)

// testConfig builds a world of p ranks spread over nodes of rpn ranks
// each, with distinct intra- and inter-node transports.
func testConfig(p, rpn int) Config {
	if rpn <= 0 {
		rpn = p
	}
	nodes := (p + rpn - 1) / rpn
	shm := fabric.SharedMemory(8*units.GBps, 0.5*units.Microsecond)
	inter := fabric.GigabitEthernet.Native
	return Config{
		Ranks:  p,
		Nodes:  nodes,
		NodeOf: func(r int) int { return r / rpn },
		Path: func(src, dst int) *fabric.Transport {
			if src/rpn == dst/rpn {
				return &shm
			}
			return &inter
		},
		ComputeDilation: 1.0,
	}
}

func TestSendRecvDeliversPayload(t *testing.T) {
	cfg := testConfig(2, 2)
	want := []float64{1, 2, 3, 4.5}
	var got []float64
	st, err := Run(cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, want)
		} else {
			got = make([]float64, len(want))
			r.Recv(0, 7, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if st.End <= 0 {
		t.Fatalf("end time %v, want > 0", st.End)
	}
	if st.TotalMessages != 1 {
		t.Fatalf("messages = %d, want 1", st.TotalMessages)
	}
}

func TestSendRecvCostOrdering(t *testing.T) {
	// The same payload must take longer inter-node than intra-node,
	// and longer still when large enough for rendezvous.
	elapsed := func(p, rpn, n int) units.Seconds {
		cfg := testConfig(p, rpn)
		st, err := Run(cfg, func(r *Rank) {
			buf := make([]float64, n)
			if r.ID() == 0 {
				r.Send(1, 0, buf)
			} else if r.ID() == 1 {
				r.Recv(0, 0, buf)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.End
	}
	small, large := 16, 1<<16
	intraSmall := elapsed(2, 2, small)
	interSmall := elapsed(2, 1, small)
	interLarge := elapsed(2, 1, large)
	if intraSmall >= interSmall {
		t.Errorf("intra-node (%v) should beat inter-node (%v)", intraSmall, interSmall)
	}
	if interSmall >= interLarge {
		t.Errorf("small message (%v) should beat large message (%v)", interSmall, interLarge)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	// Two sends on the same (src, tag) must match posted receives in
	// order.
	cfg := testConfig(2, 2)
	var first, second [1]float64
	_, err := Run(cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 3, []float64{1})
			r.Send(1, 3, []float64{2})
		} else {
			r.Recv(0, 3, first[:])
			r.Recv(0, 3, second[:])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != 1 || second[0] != 2 {
		t.Fatalf("FIFO violated: got %v, %v", first[0], second[0])
	}
}

func TestTagSelectivity(t *testing.T) {
	// A receive for tag 9 must skip an earlier message with tag 8.
	cfg := testConfig(2, 2)
	var nine, eight [1]float64
	_, err := Run(cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 8, []float64{8})
			r.Send(1, 9, []float64{9})
		} else {
			r.Recv(0, 9, nine[:])
			r.Recv(0, 8, eight[:])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if nine[0] != 9 || eight[0] != 8 {
		t.Fatalf("tag matching violated: got tag9=%v tag8=%v", nine[0], eight[0])
	}
}

func TestRendezvousBlocksSender(t *testing.T) {
	// A rendezvous send must not complete before the receiver posts.
	cfg := testConfig(2, 1)
	n := 1 << 16 // 512 KiB > eager threshold
	recvDelay := 50 * units.Millisecond
	var senderDone units.Seconds
	_, err := Run(cfg, func(r *Rank) {
		buf := make([]float64, n)
		if r.ID() == 0 {
			r.Send(1, 0, buf)
			senderDone = r.Now()
		} else {
			r.Compute(recvDelay)
			r.Recv(0, 0, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderDone < recvDelay {
		t.Fatalf("rendezvous sender finished at %v, before receiver posted at %v", senderDone, recvDelay)
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	cfg := testConfig(2, 1)
	recvDelay := 50 * units.Millisecond
	var senderDone units.Seconds
	_, err := Run(cfg, func(r *Rank) {
		buf := make([]float64, 4)
		if r.ID() == 0 {
			r.Send(1, 0, buf)
			senderDone = r.Now()
		} else {
			r.Compute(recvDelay)
			r.Recv(0, 0, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderDone >= recvDelay {
		t.Fatalf("eager sender blocked until %v (receiver posted at %v)", senderDone, recvDelay)
	}
}

func TestSendBufferSemantics(t *testing.T) {
	// Mutating the send buffer after Send must not corrupt the payload.
	cfg := testConfig(2, 2)
	var got [2]float64
	_, err := Run(cfg, func(r *Rank) {
		if r.ID() == 0 {
			buf := []float64{10, 20}
			r.Send(1, 0, buf)
			buf[0], buf[1] = -1, -2
			r.Barrier()
		} else {
			r.Barrier()
			r.Recv(0, 0, got[:])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("payload corrupted by sender mutation: %v", got)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// After a barrier, every rank's clock must be at least the latest
	// pre-barrier clock.
	for _, p := range []int{2, 3, 5, 8, 17} {
		cfg := testConfig(p, 4)
		var latest units.Seconds
		after := make([]units.Seconds, p)
		_, err := Run(cfg, func(r *Rank) {
			d := units.Seconds(r.ID()) * 10 * units.Millisecond
			r.Compute(d)
			if r.Now() > latest {
				latest = r.Now()
			}
			r.Barrier()
			after[r.ID()] = r.Now()
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range after {
			if a < latest {
				t.Fatalf("p=%d: rank %d left barrier at %v, before slowest rank arrived at %v", p, i, a, latest)
			}
		}
	}
}

func allreduceResult(t *testing.T, p, n int, algo AllreduceAlgo, op Op) [][]float64 {
	t.Helper()
	cfg := testConfig(p, 4)
	cfg.Allreduce = algo
	out := make([][]float64, p)
	_, err := Run(cfg, func(r *Rank) {
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64((r.ID()+1)*(i+1)) * 0.5
		}
		r.Allreduce(buf, op)
		out[r.ID()] = buf
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func expectedAllreduce(p, n int, op Op) []float64 {
	want := make([]float64, n)
	for i := range want {
		switch op {
		case OpSum:
			s := 0.0
			for r := 0; r < p; r++ {
				s += float64((r+1)*(i+1)) * 0.5
			}
			want[i] = s
		case OpMax:
			want[i] = float64(p*(i+1)) * 0.5
		case OpMin:
			want[i] = float64(i+1) * 0.5
		}
	}
	return want
}

func TestAllreduceAlgorithmsCorrect(t *testing.T) {
	algos := []AllreduceAlgo{AllreduceRecursiveDoubling, AllreduceRing, AllreduceReduceBcast}
	ops := []Op{OpSum, OpMax, OpMin}
	for _, p := range []int{1, 2, 3, 4, 7, 8, 13, 16} {
		for _, n := range []int{1, 5, 64} {
			for _, algo := range algos {
				for _, op := range ops {
					got := allreduceResult(t, p, n, algo, op)
					want := expectedAllreduce(p, n, op)
					for rk := 0; rk < p; rk++ {
						for i := range want {
							if math.Abs(got[rk][i]-want[i]) > 1e-9*math.Abs(want[i])+1e-12 {
								t.Fatalf("p=%d n=%d algo=%v op=%v rank=%d elem=%d: got %v want %v",
									p, n, algo, op, rk, i, got[rk][i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

func TestBcastCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 6, 9, 16} {
		for root := 0; root < p; root += 2 {
			cfg := testConfig(p, 4)
			out := make([][]float64, p)
			_, err := Run(cfg, func(r *Rank) {
				buf := make([]float64, 8)
				if r.ID() == root {
					for i := range buf {
						buf[i] = float64(i) + 0.25
					}
				}
				r.Bcast(buf, root)
				out[r.ID()] = buf
			})
			if err != nil {
				t.Fatal(err)
			}
			for rk := 0; rk < p; rk++ {
				for i := 0; i < 8; i++ {
					if out[rk][i] != float64(i)+0.25 {
						t.Fatalf("p=%d root=%d rank=%d elem=%d: got %v", p, root, rk, i, out[rk][i])
					}
				}
			}
		}
	}
}

func TestReduceCorrect(t *testing.T) {
	for _, p := range []int{2, 5, 8, 11} {
		root := p / 2
		cfg := testConfig(p, 3)
		var got []float64
		_, err := Run(cfg, func(r *Rank) {
			buf := []float64{float64(r.ID() + 1), 1}
			r.Reduce(buf, root, OpSum)
			if r.ID() == root {
				got = buf
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		wantSum := float64(p*(p+1)) / 2
		if got[0] != wantSum || got[1] != float64(p) {
			t.Fatalf("p=%d: reduce got %v, want [%v %v]", p, got, wantSum, float64(p))
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	p, n := 6, 3
	cfg := testConfig(p, 2)
	var gathered []float64
	scattered := make([][]float64, p)
	_, err := Run(cfg, func(r *Rank) {
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(r.ID()*100 + i)
		}
		out := make([]float64, n*p)
		r.Gather(buf, 0, out)
		if r.ID() == 0 {
			gathered = out
		}
		// Scatter the gathered data back.
		back := make([]float64, n)
		r.Scatter(out, 0, back)
		scattered[r.ID()] = back
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk := 0; rk < p; rk++ {
		for i := 0; i < n; i++ {
			want := float64(rk*100 + i)
			if gathered[rk*n+i] != want {
				t.Fatalf("gather[%d][%d] = %v, want %v", rk, i, gathered[rk*n+i], want)
			}
			if scattered[rk][i] != want {
				t.Fatalf("scatter[%d][%d] = %v, want %v", rk, i, scattered[rk][i], want)
			}
		}
	}
}

func TestAllgatherCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 8} {
		n := 2
		cfg := testConfig(p, 3)
		out := make([][]float64, p)
		_, err := Run(cfg, func(r *Rank) {
			buf := []float64{float64(r.ID()), float64(-r.ID())}
			all := make([]float64, n*p)
			r.Allgather(buf, all)
			out[r.ID()] = all
		})
		if err != nil {
			t.Fatal(err)
		}
		for rk := 0; rk < p; rk++ {
			for src := 0; src < p; src++ {
				if out[rk][src*n] != float64(src) || out[rk][src*n+1] != float64(-src) {
					t.Fatalf("p=%d rank=%d: allgather block %d = %v", p, rk, src, out[rk][src*n:src*n+2])
				}
			}
		}
	}
}

func TestAlltoallCorrect(t *testing.T) {
	for _, p := range []int{2, 4, 5, 8} {
		n := 2
		cfg := testConfig(p, 3)
		out := make([][]float64, p)
		_, err := Run(cfg, func(r *Rank) {
			in := make([]float64, n*p)
			for j := 0; j < p; j++ {
				for k := 0; k < n; k++ {
					in[j*n+k] = float64(r.ID()*1000 + j*10 + k)
				}
			}
			o := make([]float64, n*p)
			r.Alltoall(in, o, n)
			out[r.ID()] = o
		})
		if err != nil {
			t.Fatal(err)
		}
		for rk := 0; rk < p; rk++ {
			for src := 0; src < p; src++ {
				for k := 0; k < n; k++ {
					want := float64(src*1000 + rk*10 + k)
					if out[rk][src*n+k] != want {
						t.Fatalf("p=%d: alltoall out[%d] block %d elem %d = %v, want %v",
							p, rk, src, k, out[rk][src*n+k], want)
					}
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical runs must produce bit-identical end times and stats.
	run := func() Stats {
		cfg := testConfig(12, 4)
		st, err := Run(cfg, func(r *Rank) {
			buf := make([]float64, 256)
			for i := range buf {
				buf[i] = float64(r.ID() + i)
			}
			for iter := 0; iter < 5; iter++ {
				r.Allreduce(buf[:8], OpSum)
				next := (r.ID() + 1) % r.Size()
				prev := (r.ID() - 1 + r.Size()) % r.Size()
				r.SendRecv(next, iter, buf, prev, iter, buf)
				r.Compute(units.Seconds(r.ID()%3) * units.Millisecond)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.End != b.End {
		t.Fatalf("nondeterministic end: %v vs %v", a.End, b.End)
	}
	if a.MaxCommTime != b.MaxCommTime || a.TotalMessages != b.TotalMessages {
		t.Fatalf("nondeterministic stats: %+v vs %+v", a, b)
	}
	for i := range a.RankEnd {
		if a.RankEnd[i] != b.RankEnd[i] {
			t.Fatalf("rank %d end differs: %v vs %v", i, a.RankEnd[i], b.RankEnd[i])
		}
	}
}

func TestAllreduceScalesWithRanks(t *testing.T) {
	// Allreduce cost must grow with world size (latency-bound regime).
	cost := func(p int) units.Seconds {
		cfg := testConfig(p, 1) // one rank per node: all inter-node
		st, err := Run(cfg, func(r *Rank) {
			r.AllreduceScalar(1, OpSum)
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.End
	}
	c4, c16, c64 := cost(4), cost(16), cost(64)
	if !(c4 < c16 && c16 < c64) {
		t.Fatalf("allreduce cost not increasing: %v, %v, %v", c4, c16, c64)
	}
}

func TestNICContentionSerializes(t *testing.T) {
	// Many ranks on one node sending large messages to another node
	// must take longer than a single rank doing one transfer, because
	// the 1 GbE injection port serializes them.
	elapsed := func(senders int) units.Seconds {
		p := 2 * senders
		cfg := testConfig(p, senders) // node 0: senders, node 1: receivers
		n := 1 << 15                  // 256 KiB each, rendezvous
		st, err := Run(cfg, func(r *Rank) {
			buf := make([]float64, n)
			if r.ID() < senders {
				r.Send(r.ID()+senders, 0, buf)
			} else {
				r.Recv(r.ID()-senders, 0, buf)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.End
	}
	one, eight := elapsed(1), elapsed(8)
	if eight < 6*one {
		t.Fatalf("NIC contention too weak: 8 senders %v vs 1 sender %v", eight, one)
	}
}

func TestAllreduceScalarQuick(t *testing.T) {
	// Property: for any rank values, AllreduceScalar(sum) equals the
	// sequential sum on every rank, with every algorithm.
	f := func(vals []float64, algoPick uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 24 {
			vals = vals[:24]
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true // skip degenerate inputs
			}
		}
		p := len(vals)
		algo := AllreduceAlgo(int(algoPick) % 3)
		cfg := testConfig(p, 3)
		cfg.Allreduce = algo
		want := 0.0
		for _, v := range vals {
			want += v
		}
		ok := true
		_, err := Run(cfg, func(r *Rank) {
			got := r.AllreduceScalar(vals[r.ID()], OpSum)
			if math.Abs(got-want) > 1e-6*(math.Abs(want)+1) {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Ranks: 4},
		{Ranks: 4, NodeOf: func(int) int { return 0 }},
		{Ranks: 4, NodeOf: func(int) int { return 0 }, Nodes: 1},
		{Ranks: 4, NodeOf: func(int) int { return 0 }, Nodes: 1,
			Path: func(int, int) *fabric.Transport { return nil }},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, func(*Rank) {}); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
}
