package mpi

import (
	"fmt"
	"testing"
)

// Collective microbenchmarks for the simulated-MPI hot path: each
// iteration runs a full world (spawn, collective, join) so the numbers
// track the kernel's scheduling cost per collective, not just the
// reduction arithmetic. Two rank counts bracket the topology: 8 ranks
// on one node exercises the shared-memory fast path, 32 ranks over 4
// nodes the hierarchical inter-node algorithm. CI compares these
// against bench/baseline.json as an advisory lane (see
// .github/workflows/ci.yml) until their spread across runners is
// understood well enough to promote them to the hard gate.

// benchWorld runs body once per b.N over a fresh world.
func benchWorld(b *testing.B, p, rpn int, body func(r *Rank)) {
	b.Helper()
	cfg := testConfig(p, rpn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllreduce(b *testing.B) {
	for _, sz := range []struct{ p, rpn int }{{8, 8}, {32, 8}} {
		b.Run(fmt.Sprintf("p%dx%d", sz.p, sz.rpn), func(b *testing.B) {
			benchWorld(b, sz.p, sz.rpn, func(r *Rank) {
				buf := make([]float64, 1024)
				for i := range buf {
					buf[i] = float64(r.ID() + i)
				}
				r.Allreduce(buf, OpSum)
			})
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, sz := range []struct{ p, rpn int }{{8, 8}, {32, 8}} {
		b.Run(fmt.Sprintf("p%dx%d", sz.p, sz.rpn), func(b *testing.B) {
			benchWorld(b, sz.p, sz.rpn, func(r *Rank) {
				r.Barrier()
			})
		})
	}
}
