package mpi

import (
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered subset of world ranks that runs
// collectives among themselves. The FSI case uses two disjoint comms —
// one per coupled code — exactly like Alya's split MPI_COMM_WORLD.
type Comm struct {
	r     *Rank
	ranks []int // world rank per comm rank
	me    int   // this rank's index within ranks

	// hierCache holds the node-grouping the hierarchical allreduce
	// uses, built once per communicator.
	hierCache *hierInfo
}

// hierInfo is the node topology of a communicator as the hierarchical
// collectives see it.
type hierInfo struct {
	// localPeers are the comm ranks sharing this rank's node,
	// ascending; localRank is this rank's index within them.
	localPeers []int
	localRank  int
	// leaders are each node's lowest comm rank, ascending; leaderIdx
	// is this rank's index among them (meaningful when localRank==0).
	leaders   []int
	leaderIdx int
}

// hier lazily computes the node grouping.
func (c *Comm) hier() *hierInfo {
	if c.hierCache != nil {
		return c.hierCache
	}
	nodeOf := c.r.w.cfg.NodeOf
	myNode := nodeOf(c.ranks[c.me])
	h := &hierInfo{leaderIdx: -1}
	seen := make(map[int]bool)
	for cr, wr := range c.ranks {
		n := nodeOf(wr)
		if !seen[n] {
			seen[n] = true
			h.leaders = append(h.leaders, cr)
		}
		if n == myNode {
			if cr == c.me {
				h.localRank = len(h.localPeers)
			}
			h.localPeers = append(h.localPeers, cr)
		}
	}
	// Leaders arrive in first-appearance order; comm ranks ascend, so
	// the list is ascending already. Locate self among leaders.
	for i, l := range h.leaders {
		if l == c.me {
			h.leaderIdx = i
		}
	}
	c.hierCache = h
	return h
}

// World returns the all-ranks communicator for this rank.
func (r *Rank) World() *Comm {
	if r.world == nil {
		ranks := make([]int, r.w.cfg.Ranks)
		for i := range ranks {
			ranks[i] = i
		}
		r.world = &Comm{r: r, ranks: ranks, me: r.id}
	}
	return r.world
}

// NewComm builds a communicator over the given world ranks, which must
// include the calling rank. The slice is copied and sorted; comm rank
// order is ascending world rank (MPI_Comm_split semantics with a single
// color and key = world rank).
func (r *Rank) NewComm(worldRanks []int) (*Comm, error) {
	if len(worldRanks) == 0 {
		return nil, fmt.Errorf("mpi: empty communicator")
	}
	ranks := append([]int(nil), worldRanks...)
	sort.Ints(ranks)
	me := -1
	for i, wr := range ranks {
		if wr < 0 || wr >= r.w.cfg.Ranks {
			return nil, fmt.Errorf("mpi: communicator rank %d outside world of %d", wr, r.w.cfg.Ranks)
		}
		if i > 0 && ranks[i-1] == wr {
			return nil, fmt.Errorf("mpi: duplicate rank %d in communicator", wr)
		}
		if wr == r.id {
			me = i
		}
	}
	if me == -1 {
		return nil, fmt.Errorf("mpi: rank %d not a member of its own communicator", r.id)
	}
	return &Comm{r: r, ranks: ranks, me: me}, nil
}

// Rank returns the calling rank's index within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a comm rank to its world rank.
func (c *Comm) WorldRank(commRank int) int { return c.ranks[commRank] }

// send/recv/sendRecv translate comm ranks to world ranks for the
// point-to-point layer. Disjoint communicators cannot cross-match
// because matching is keyed on world-rank pairs.
func (c *Comm) send(dst, tag int, data []float64) { c.r.Send(c.ranks[dst], tag, data) }
func (c *Comm) recv(src, tag int, buf []float64)  { c.r.Recv(c.ranks[src], tag, buf) }
func (c *Comm) sendRecv(dst, sendTag int, sendBuf []float64, src, recvTag int, recvBuf []float64) {
	c.r.SendRecv(c.ranks[dst], sendTag, sendBuf, c.ranks[src], recvTag, recvBuf)
}

// Send transmits to a comm rank (blocking, MPI semantics as Rank.Send).
func (c *Comm) Send(dst, tag int, data []float64) { c.send(dst, tag, data) }

// Recv receives from a comm rank.
func (c *Comm) Recv(src, tag int, buf []float64) { c.recv(src, tag, buf) }

// Isend starts a nonblocking send to a comm rank.
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	return c.r.Isend(c.ranks[dst], tag, data)
}

// IsendModel starts a nonblocking size-only send of n float64s to a
// comm rank: full transport costs, no payload in host memory.
func (c *Comm) IsendModel(dst, tag, n int) *Request {
	return c.r.IsendModel(c.ranks[dst], tag, n)
}

// Irecv posts a nonblocking receive from a comm rank.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	return c.r.Irecv(c.ranks[src], tag, buf)
}

// IrecvModel posts a nonblocking size-only receive of n float64s from
// a comm rank.
func (c *Comm) IrecvModel(src, tag, n int) *Request {
	return c.r.IrecvModel(c.ranks[src], tag, n)
}

// Base returns the underlying world rank handle (for Wait, Compute,
// and cross-communicator point-to-point).
func (c *Comm) Base() *Rank { return c.r }

// World-level convenience wrappers so simple programs and tests can
// call collectives directly on the rank.

// Barrier synchronizes all world ranks.
func (r *Rank) Barrier() { r.World().Barrier() }

// Allreduce reduces across all world ranks.
func (r *Rank) Allreduce(buf []float64, op Op) { r.World().Allreduce(buf, op) }

// AllreduceScalar reduces one value across all world ranks.
func (r *Rank) AllreduceScalar(v float64, op Op) float64 { return r.World().AllreduceScalar(v, op) }

// Bcast broadcasts across all world ranks.
func (r *Rank) Bcast(buf []float64, root int) { r.World().Bcast(buf, root) }

// Reduce reduces to root across all world ranks.
func (r *Rank) Reduce(buf []float64, root int, op Op) { r.World().Reduce(buf, root, op) }

// Gather gathers to root across all world ranks.
func (r *Rank) Gather(buf []float64, root int, out []float64) { r.World().Gather(buf, root, out) }

// Scatter scatters from root across all world ranks.
func (r *Rank) Scatter(in []float64, root int, buf []float64) { r.World().Scatter(in, root, buf) }

// Allgather gathers everywhere across all world ranks.
func (r *Rank) Allgather(buf []float64, out []float64) { r.World().Allgather(buf, out) }

// Alltoall exchanges blocks across all world ranks.
func (r *Rank) Alltoall(in, out []float64, n int) { r.World().Alltoall(in, out, n) }
