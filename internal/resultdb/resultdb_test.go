package resultdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/alya"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/units"
)

// sample builds a distinctive SavedResult without running a
// simulation; i differentiates records.
func sample(i int) core.SavedResult {
	return core.SavedResult{
		Deploy: container.DeployReport{
			Runtime: "Singularity", Image: "bsc/alya:v2.0", Nodes: i,
			WireSize: units.ByteSize(700+i) * units.MiB, PullTime: units.Seconds(i) * 1.25,
		},
		Exec: alya.Result{
			Case: "quick-cfd", Runtime: "Singularity", FabricPath: "omni-path",
			Nodes: i, Ranks: 48 * i, Threads: 1,
			TimePerStep: 0.375 * units.Seconds(i+1), Elapsed: 16.875 * units.Seconds(i+1),
			MPI: mpi.Stats{TotalMessages: 100 * i, RankEnd: []units.Seconds{1.5, 2.25}},
		},
	}
}

func key(i int) string { return fmt.Sprintf("%064x", i) }

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok := s.Get(key(1)); ok {
		t.Fatal("empty store reported a hit")
	}
	want := sample(1)
	if err := s.Put(key(1), want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(1))
	if !ok {
		t.Fatal("committed record missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the result:\nput %+v\ngot %+v", want, got)
	}

	// Floats must restore bit-identical, not approximately.
	if got.Exec.TimePerStep != want.Exec.TimePerStep || got.Deploy.PullTime != want.Deploy.PullTime {
		t.Fatal("float fields not bit-identical after round trip")
	}
}

func TestCorruptRecordIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(key(2), sample(2)); err != nil {
		t.Fatal(err)
	}
	path := s.recordPath(key(2))

	// Truncated mid-record (crash during a non-atomic copy of the dir).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("truncated record returned a hit")
	}

	// Outright garbage.
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("garbage record returned a hit")
	}

	// Recomputation overwrites the damage.
	if err := s.Put(key(2), sample(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(2)); !ok {
		t.Fatal("recommit after corruption missed")
	}
}

func TestSchemaStampInvalidates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(key(3), sample(3)); err != nil {
		t.Fatal(err)
	}

	// Rewrite the record as a future (or past) simulator would have:
	// same key, different schema stamp.
	path := s.recordPath(key(3))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Schema = SchemaVersion() + "-stale"
	stale, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(3)); ok {
		t.Fatal("record with a foreign schema stamp returned a hit")
	}
}

func TestKeyMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(key(4), sample(4)); err != nil {
		t.Fatal(err)
	}
	// A record copied to the wrong address (cross-populated cache dirs)
	// must not masquerade as another cell.
	src := s.recordPath(key(4))
	dst := s.recordPath(key(5))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(5)); ok {
		t.Fatal("record stored under a foreign key returned a hit")
	}
}

func TestManifestResume(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(key(10+i), sample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh Open replays the journal.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 5 {
		t.Fatalf("resumed store knows %d keys, want 5", got)
	}
	for i := 0; i < 5; i++ {
		got, ok := s2.Get(key(10 + i))
		if !ok {
			t.Fatalf("resumed store missed key %d", i)
		}
		if !reflect.DeepEqual(got, sample(i)) {
			t.Fatalf("resumed record %d differs", i)
		}
	}

	// A journaled record whose file vanished is a miss, not a failure.
	if err := os.Remove(s2.recordPath(key(10))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key(10)); ok {
		t.Fatal("deleted record returned a hit")
	}
}

// TestRecordWithoutJournalLine simulates a crash between the rename
// and the journal append: the record is on disk, the manifest never
// heard of it. Get must still find it (the files are the source of
// truth) and reconcile the index.
func TestRecordWithoutJournalLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(7), sample(7)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 0 {
		t.Fatalf("journal gone but store knows %d keys", got)
	}
	if _, ok := s2.Get(key(7)); !ok {
		t.Fatal("on-disk record not found without its journal line")
	}
	if got := s2.Len(); got != 1 {
		t.Fatalf("reconciled index has %d keys, want 1", got)
	}
}

// TestConcurrentWriters exercises the sharded-sweep contract: several
// stores (standing in for processes) commit into one directory
// concurrently, with overlapping keys, and every record stays intact.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	const writers, keys = 4, 32

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			s, err := Open(dir)
			if err != nil {
				errs[wtr] = err
				return
			}
			defer s.Close()
			// Each writer commits every key: maximal overlap. Content
			// is a pure function of the key, as in a real sweep.
			for i := 0; i < keys; i++ {
				if err := s.Put(key(i), sample(i)); err != nil {
					errs[wtr] = err
					return
				}
			}
		}(wtr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != keys {
		t.Fatalf("store knows %d keys after concurrent writes, want %d", got, keys)
	}
	for i := 0; i < keys; i++ {
		got, ok := s.Get(key(i))
		if !ok {
			t.Fatalf("key %d missed after concurrent writes", i)
		}
		if !reflect.DeepEqual(got, sample(i)) {
			t.Fatalf("key %d corrupted by concurrent writes", i)
		}
	}
}

func TestShardParse(t *testing.T) {
	good := map[string]Shard{
		"1/1": {1, 1},
		"1/2": {1, 2},
		"2/2": {2, 2},
		"7/9": {7, 9},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "1", "1/", "/2", "0/2", "3/2", "a/b", "1/2/3", "-1/2", "2/1", "1/0", "1/-2", "0/0"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted", in)
		}
	}
	// The zero value means "no sharding" and must stay valid; any other
	// inconsistent combination must not slip through Validate either.
	if err := (Shard{}).Validate(); err != nil {
		t.Errorf("zero shard rejected: %v", err)
	}
	for _, sh := range []Shard{{2, 1}, {1, 0}, {0, 1}, {1, -2}, {-1, -1}} {
		if err := sh.Validate(); err == nil {
			t.Errorf("Shard%v validated", sh)
		}
	}
}

// TestShardPartition is the sharding invariant: every key belongs to
// exactly one of the N shards, so cooperating processes compute
// disjoint, exhaustive slices.
func TestShardPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		counts := make([]int, n)
		for i := 0; i < 500; i++ {
			k := key(i * 7919)
			owners := 0
			for idx := 1; idx <= n; idx++ {
				if (Shard{Index: idx, Count: n}).Owns(k) {
					owners++
					counts[idx-1]++
				}
			}
			if owners != 1 {
				t.Fatalf("key %q owned by %d of %d shards", k, owners, n)
			}
		}
		// Distribution sanity: no shard starves on a large key set.
		for idx, c := range counts {
			if c == 0 {
				t.Errorf("shard %d/%d owns no keys out of 500", idx+1, n)
			}
		}
	}
	// The zero shard owns everything.
	if !(Shard{}).Owns(key(1)) {
		t.Error("zero shard does not own keys")
	}
}

// TestPutErrorRoundTrip covers negative caching: a failure record
// commits through the same path, replays through Lookup, stays
// invisible to the success-only Get, and enters the manifest journal.
func TestPutErrorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.PutError(key(7), "docker needs admin rights"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(7)); ok {
		t.Fatal("failure record answered a success-only Get")
	}
	ent, ok, _ := s.Lookup(key(7))
	if !ok {
		t.Fatal("failure record missed on Lookup")
	}
	if ent.Err != "docker needs admin rights" {
		t.Fatalf("replayed message %q", ent.Err)
	}

	// A later process sees it through the journal like any record.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 1 {
		t.Fatalf("journal replay found %d keys, want 1", got)
	}
	if ent, ok, _ := s2.Lookup(key(7)); !ok || ent.Err == "" {
		t.Fatal("failure record lost across reopen")
	}

	// Empty messages are indistinguishable from successes: rejected.
	if err := s.PutError(key(8), ""); err == nil {
		t.Fatal("empty failure message accepted")
	}
}

// TestSchemaVersionTracksModel asserts the stamp embeds the model
// checksum, so resimulating after a model-constant change cannot
// replay records from the old model.
func TestSchemaVersionTracksModel(t *testing.T) {
	v := SchemaVersion()
	want := fmt.Sprintf("%d-%s", schemaGeneration, core.ModelChecksum()[:16])
	if v != want {
		t.Fatalf("SchemaVersion() = %q, want %q", v, want)
	}
	if SchemaVersion() != v {
		t.Fatal("SchemaVersion unstable across calls")
	}
}
