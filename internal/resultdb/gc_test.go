package resultdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// gcStore opens a store with n committed records and returns it with
// each record file's size (index i-1 holds key(i)'s).
func gcStore(t *testing.T, dir string, n int) (*DirStore, []int64) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var sizes []int64
	for i := 1; i <= n; i++ {
		if err := s.Put(key(i), sample(i)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(s.recordPath(key(i)))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	return s, sizes
}

// sum totals record sizes.
func sum(sizes []int64) int64 {
	var t int64
	for _, s := range sizes {
		t += s
	}
	return t
}

// touchAt appends an access-journal line for key at a chosen time, the
// way a later read would, so tests order recency without sleeping.
func touchAt(t *testing.T, dir, key string, at time.Time) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, accessName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "%d %s\n", at.Unix(), key)
}

// TestGCZeroPolicyNoop asserts the zero policy scans but never evicts.
func TestGCZeroPolicyNoop(t *testing.T) {
	s, sizes := gcStore(t, t.TempDir(), 3)
	rep, err := s.GC(time.Now(), GCPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 3 || rep.Evicted != 0 || rep.RetainedBytes != sum(sizes) {
		t.Fatalf("zero policy: %+v (total %d)", rep, sum(sizes))
	}
}

// TestGCAgePolicy asserts MaxAge evicts records whose last access
// predates the horizon, and that the store keeps working afterwards.
func TestGCAgePolicy(t *testing.T) {
	dir := t.TempDir()
	s, _ := gcStore(t, dir, 3)

	// Within the horizon nothing is old enough.
	rep, err := s.GC(time.Now(), GCPolicy{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 0 {
		t.Fatalf("fresh records evicted: %+v", rep)
	}

	// Two days on, everything has aged out.
	rep, err = s.GC(time.Now().Add(48*time.Hour), GCPolicy{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 3 || rep.RetainedBytes != 0 {
		t.Fatalf("aged records survived: %+v", rep)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("evicted record still readable")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("known keys after full eviction: %d", got)
	}
	// The store stays writable and a fresh commit is durable.
	if err := s.Put(key(9), sample(9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(9)); !ok {
		t.Fatal("post-GC commit unreadable")
	}
}

// TestGCSizePolicyEvictsColdest asserts MaxBytes sheds the
// least-recently-accessed records first, with recency taken from the
// access journal rather than file order.
func TestGCSizePolicyEvictsColdest(t *testing.T) {
	dir := t.TempDir()
	s, sizes := gcStore(t, dir, 3)
	now := time.Now()
	// key 2 stays at its commit time; 1 and 3 are read later.
	touchAt(t, dir, key(1), now.Add(10*time.Hour))
	touchAt(t, dir, key(3), now.Add(20*time.Hour))

	rep, err := s.GC(now.Add(30*time.Hour), GCPolicy{MaxBytes: sum(sizes) - 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 1 {
		t.Fatalf("want exactly one eviction under MaxBytes=total-1: %+v", rep)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("coldest record survived size eviction")
	}
	for _, i := range []int{1, 3} {
		if _, ok := s.Get(key(i)); !ok {
			t.Fatalf("recently accessed record %d evicted", i)
		}
	}
}

// TestGCNeverEvictsPinned is the in-flight-sweep invariant: a pinned
// record survives any policy until released.
func TestGCNeverEvictsPinned(t *testing.T) {
	dir := t.TempDir()
	s, _ := gcStore(t, dir, 3)
	release := s.Pin([]string{key(1)})

	rep, err := s.GC(time.Now().Add(48*time.Hour), GCPolicy{MaxAge: time.Hour, MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pinned == 0 {
		t.Fatalf("report does not count the protected record: %+v", rep)
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("pinned record evicted")
	}
	if rep.Evicted != 2 {
		t.Fatalf("unpinned records should all go: %+v", rep)
	}

	release()
	release() // releases are idempotent; a double call must not unpin others' pins
	rep, err = s.GC(time.Now().Add(48*time.Hour), GCPolicy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 1 {
		t.Fatalf("released record not collected: %+v", rep)
	}
}

// TestGCCompactsJournals asserts eviction rewrites both journals to
// the survivors, so a later Open sees a truthful index.
func TestGCCompactsJournals(t *testing.T) {
	dir := t.TempDir()
	s, sizes := gcStore(t, dir, 4)
	now := time.Now()
	touchAt(t, dir, key(3), now.Add(10*time.Hour))
	touchAt(t, dir, key(4), now.Add(10*time.Hour))

	if _, err := s.GC(now.Add(20*time.Hour), GCPolicy{MaxBytes: sizes[2] + sizes[3]}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{manifestName, accessName} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range []int{1, 2} {
			if strings.Contains(string(data), key(i)) {
				t.Fatalf("%s still lists evicted %s:\n%s", name, key(i), data)
			}
		}
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 2 {
		t.Fatalf("reopened store knows %d keys, want 2", got)
	}
	for _, i := range []int{3, 4} {
		if _, ok := s2.Get(key(i)); !ok {
			t.Fatalf("survivor %d unreadable after compaction", i)
		}
	}
}

// TestGCCompactsOversizedAccessJournal asserts a pass with nothing to
// evict still compacts a journal that outgrew its records — hot
// stores append one line per hit, and an in-bounds policy must not
// let the file grow forever.
func TestGCCompactsOversizedAccessJournal(t *testing.T) {
	dir := t.TempDir()
	s, _ := gcStore(t, dir, 2)
	now := time.Now()

	f, err := os.OpenFile(filepath.Join(dir, accessName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*2+compactSlack+100; i++ {
		fmt.Fprintf(f, "%d %s\n", now.Add(time.Duration(i)*time.Second).Unix(), key(1+i%2))
	}
	f.Close()

	rep, err := s.GC(now, GCPolicy{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 0 {
		t.Fatalf("in-bounds pass evicted: %+v", rep)
	}
	data, err := os.ReadFile(filepath.Join(dir, accessName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 2 {
		t.Fatalf("compacted journal has %d lines, want 2:\n%s", lines, data)
	}
	// Recency survives compaction: both records still read and a
	// fresh aggressive pass still sees the newest access times.
	for _, i := range []int{1, 2} {
		if _, ok := s.Get(key(i)); !ok {
			t.Fatalf("record %d lost to journal compaction", i)
		}
	}
}
