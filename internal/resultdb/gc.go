package resultdb

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// GCPolicy bounds a store directory. Zero fields mean unbounded: the
// zero policy evicts nothing.
type GCPolicy struct {
	// MaxBytes caps the total size of record files; eviction removes
	// the least-recently-accessed records until the cap holds. 0 means
	// no size bound.
	MaxBytes int64
	// MaxAge evicts records not accessed (read or written) within the
	// duration. 0 means no age bound.
	MaxAge time.Duration
}

// Bounded reports whether the policy can evict anything.
func (p GCPolicy) Bounded() bool { return p.MaxBytes > 0 || p.MaxAge > 0 }

// GCReport summarises one collection pass.
type GCReport struct {
	// Scanned counts record files examined; Evicted those removed.
	Scanned, Evicted int
	// EvictedBytes and RetainedBytes partition the scanned sizes.
	EvictedBytes, RetainedBytes int64
	// Pinned counts records the policy selected but Pin protected —
	// cells of an in-flight sweep are never evicted under it.
	Pinned int
}

// String renders the report for CLI and server logs.
func (r GCReport) String() string {
	return fmt.Sprintf("gc: %d records scanned, %d evicted (%d bytes), %d retained bytes, %d pinned",
		r.Scanned, r.Evicted, r.EvictedBytes, r.RetainedBytes, r.Pinned)
}

// gcItem is one record file under consideration.
type gcItem struct {
	key  string
	size int64
	last time.Time
}

// GC evicts records according to pol: first everything whose last
// access predates now-MaxAge, then — least-recently-accessed first —
// until the retained bytes fit MaxBytes. Last access is the newest of
// the record's access-journal entries and its file mtime, so a store
// populated before the journal existed still ages correctly. Pinned
// keys are never evicted. After eviction both journals are compacted
// to the surviving records.
//
// GC serialises against this process's reads and writes; concurrent
// writers in other processes should be quiesced (or route through the
// serving process, whose periodic GC shares this store), since journal
// compaction rewrites files those writers append to. A record another
// process commits mid-collection is at worst missing from the
// compacted manifest — a directory scan or a re-Put restores it, per
// the journal-is-advisory contract.
func (s *DirStore) GC(now time.Time, pol GCPolicy) (GCReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-arm the once-per-process access journaling: recency appends
	// are coalesced between collections (touchLocked), so each pass
	// resets the guard and a long-lived server refreshes every
	// actively-used key at least once per GC interval — an hourly
	// reader can never age past -max-age.
	defer func() { s.touched = make(map[string]bool) }()

	lastAccess, accessLines, err := s.readAccessLocked()
	if err != nil {
		return GCReport{}, err
	}
	items, total, err := s.scanLocked(lastAccess)
	if err != nil {
		return GCReport{}, err
	}
	rep := GCReport{Scanned: len(items), RetainedBytes: total}

	sort.Slice(items, func(i, j int) bool { return items[i].last.Before(items[j].last) })
	evict := make([]gcItem, 0, len(items))
	keep := items[:0]
	pinnedKept := make(map[string]bool)
	for _, it := range items {
		tooOld := pol.MaxAge > 0 && now.Sub(it.last) > pol.MaxAge
		if tooOld && s.pins[it.key] == 0 {
			evict = append(evict, it)
			continue
		}
		if tooOld {
			pinnedKept[it.key] = true
		}
		keep = append(keep, it)
	}
	if pol.MaxBytes > 0 {
		retained := total
		for _, it := range evict {
			retained -= it.size
		}
		// keep is still oldest-first: shed from the cold end.
		kept := keep[:0]
		for _, it := range keep {
			if retained > pol.MaxBytes && s.pins[it.key] == 0 {
				evict = append(evict, it)
				retained -= it.size
				continue
			}
			if retained > pol.MaxBytes {
				pinnedKept[it.key] = true
			}
			kept = append(kept, it)
		}
		keep = kept
	}
	rep.Pinned = len(pinnedKept)

	for _, it := range evict {
		if err := os.Remove(s.recordPath(it.key)); err != nil && !os.IsNotExist(err) {
			return rep, fmt.Errorf("resultdb: gc: %w", err)
		}
		delete(s.known, it.key)
		rep.Evicted++
		rep.EvictedBytes += it.size
	}
	rep.RetainedBytes = total - rep.EvictedBytes

	// Every pass that scanned an oversized access journal compacts it
	// to one line per record, even with nothing evicted — hot stores
	// append one line per hit, and an in-bounds policy must not let
	// the journal outgrow the records it describes.
	if rep.Evicted == 0 {
		if accessLines > 2*len(items)+compactSlack {
			access := append([]gcItem(nil), keep...)
			sort.Slice(access, func(i, j int) bool { return access[i].key < access[j].key })
			if err := s.rewriteJournalLocked(&s.access, accessName, nil, access); err != nil {
				return rep, err
			}
		}
		return rep, nil
	}

	// Compact both journals to the survivors. The manifest is rebuilt
	// from the scan (dropping keys whose files had already vanished);
	// the access journal keeps one line per survivor at its computed
	// last-access time.
	surviving := make([]string, 0, len(keep))
	for _, it := range keep {
		surviving = append(surviving, it.key)
	}
	sort.Strings(surviving)
	if err := s.rewriteJournalLocked(&s.manifest, manifestName, surviving, nil); err != nil {
		return rep, err
	}
	access := keep
	sort.Slice(access, func(i, j int) bool { return access[i].key < access[j].key })
	if err := s.rewriteJournalLocked(&s.access, accessName, nil, access); err != nil {
		return rep, err
	}
	s.known = make(map[string]bool, len(surviving))
	for _, k := range surviving {
		s.known[k] = true
	}
	return rep, nil
}

// compactSlack is how many access-journal lines beyond 2× the record
// count a pass tolerates before compacting the journal anyway.
const compactSlack = 1024

// readAccessLocked parses the access journal into last-access times,
// keeping the newest entry per key, and reports the raw line count so
// GC can decide whether the journal needs compacting. Damaged lines
// are skipped — the record mtime remains as a floor.
func (s *DirStore) readAccessLocked() (map[string]time.Time, int, error) {
	out := make(map[string]time.Time)
	f, err := os.Open(filepath.Join(s.dir, accessName))
	if err != nil {
		if os.IsNotExist(err) {
			return out, 0, nil
		}
		return nil, 0, fmt.Errorf("resultdb: gc: %w", err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		ts, key, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !ok {
			continue
		}
		unix, err := strconv.ParseInt(ts, 10, 64)
		if err != nil {
			continue
		}
		when := time.Unix(unix, 0)
		if prev, seen := out[key]; !seen || when.After(prev) {
			out[key] = when
		}
	}
	return out, lines, sc.Err()
}

// scanLocked walks the fan-out directories and sizes every record
// file, resolving each record's last access from the journal with the
// file mtime as floor.
func (s *DirStore) scanLocked(lastAccess map[string]time.Time) ([]gcItem, int64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("resultdb: gc: %w", err)
	}
	var items []gcItem
	var total int64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, 0, fmt.Errorf("resultdb: gc: %w", err)
		}
		for _, f := range files {
			key, isRec := strings.CutSuffix(f.Name(), ".json")
			if !isRec || f.IsDir() {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue // deleted underneath us: no longer ours to collect
			}
			last := info.ModTime()
			if t, ok := lastAccess[key]; ok && t.After(last) {
				last = t
			}
			items = append(items, gcItem{key: key, size: info.Size(), last: last})
			total += info.Size()
		}
	}
	return items, total, nil
}

// rewriteJournalLocked atomically replaces a journal file with the
// surviving entries and reopens the append handle. Exactly one of
// keys (manifest lines) or access (timestamped lines) is used.
func (s *DirStore) rewriteJournalLocked(handle **os.File, name string, keys []string, access []gcItem) error {
	if *handle != nil {
		(*handle).Close()
		*handle = nil
	}
	path := filepath.Join(s.dir, name)
	tmp, err := os.CreateTemp(s.dir, name+"-*")
	if err != nil {
		return fmt.Errorf("resultdb: gc: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
	for _, it := range access {
		fmt.Fprintf(w, "%d %s\n", it.last.Unix(), it.key)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("resultdb: gc: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resultdb: gc: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultdb: gc: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resultdb: gc: %w", err)
	}
	reopened, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resultdb: gc: %w", err)
	}
	*handle = reopened
	return nil
}
