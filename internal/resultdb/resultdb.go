// Package resultdb is a persistent, content-addressed store for cell
// results. Each record is one core.SavedResult keyed by the cell's
// canonical fingerprint (core.CellID.Fingerprint), written as a single
// JSON file under a cache directory:
//
//	<dir>/<key[:2]>/<key>.json
//
// Commits are crash-safe: a record is written to a temp file, synced,
// and renamed into place, so a reader never observes a half-written
// record at its final path. An append-only manifest journal
// (<dir>/manifest.log, one key per line) indexes committed records so
// a resumed or merging process can enumerate the store without
// scanning; the record files remain the source of truth — a journal
// entry whose file is missing or unreadable is simply a miss, and a
// record committed just before a crash that lost its journal line is
// still found on disk.
//
// Records carry a schema stamp, SchemaVersion: a record-format
// generation plus a checksum over the simulator's model constants
// (fabric/cluster/container tables, workload cases, solver cost
// constants — see core.ModelChecksum). Any change to a model number
// alters the stamp, so every existing record reads as a miss and is
// recomputed — stale caches self-invalidate instead of replaying
// outdated numbers, without anyone remembering to bump a version.
//
// Failed cells are cached too: PutError commits a schema-stamped error
// record through the same atomic-rename path, so repeated sweeps skip
// known-bad runtime×technique combinations. Lookup distinguishes the
// three outcomes — successful result, recorded failure, miss — while
// Get keeps the success-only view.
//
// Multiple processes may share one directory — the sharded-sweep
// workflow depends on it. Renames are atomic, concurrent commits of
// the same key are idempotent (the content is a pure function of the
// key), and manifest appends use O_APPEND single-write lines.
package resultdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// schemaGeneration is the record-format generation: bump it when the
// record encoding itself changes (fields added or reinterpreted).
// Model-constant changes are covered automatically by the checksum.
const schemaGeneration = 2

// SchemaVersion stamps every record: the record-format generation
// joined with a checksum over the simulator model constants. Records
// written under a different generation or a different model read as
// misses and are recomputed.
func SchemaVersion() string {
	return fmt.Sprintf("%d-%s", schemaGeneration, core.ModelChecksum()[:16])
}

// manifestName is the journal file inside a store directory.
const manifestName = "manifest.log"

// record is the on-disk form of one cached cell.
type record struct {
	// Schema is the SchemaVersion the record was written under.
	Schema string `json:"schema"`
	// Key echoes the content address, guarding against renamed or
	// cross-copied files.
	Key string `json:"key"`
	// Result is the saved outcome; meaningful only when Error is empty.
	Result core.SavedResult `json:"result"`
	// Error is the recorded failure of a known-bad cell; empty for
	// successful cells.
	Error string `json:"error,omitempty"`
}

// Entry is one committed record's payload: a saved result, or the
// recorded error of a cell that deterministically fails.
type Entry struct {
	// Result is the saved outcome; meaningful only when Err is empty.
	Result core.SavedResult
	// Err is the recorded failure; empty for successful cells.
	Err string
}

// Store is one cache directory.
type Store struct {
	dir string

	mu       sync.Mutex
	manifest *os.File
	known    map[string]bool
}

// Open creates the directory if needed, replays the manifest journal,
// and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultdb: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	known := make(map[string]bool)
	path := filepath.Join(dir, manifestName)
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if key := strings.TrimSpace(sc.Text()); key != "" {
				known[key] = true
			}
		}
		// A torn final line (crash mid-append) is dropped by the key
		// check in Get; scanner errors mean a damaged journal, which
		// the record files recover from.
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("resultdb: manifest: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	manifest, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	return &Store{dir: dir, manifest: manifest, known: known}, nil
}

// Close releases the manifest journal. Records already committed stay
// readable by future Opens.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil {
		return nil
	}
	err := s.manifest.Close()
	s.manifest = nil
	return err
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// recordPath places a record under a two-hex-character fan-out
// directory, keeping any single directory small on big sweeps.
func (s *Store) recordPath(key string) string {
	prefix := key
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	return filepath.Join(s.dir, prefix, key+".json")
}

// Get returns the saved result for a key, success records only. Every
// failure mode — no record, truncated or corrupt JSON, schema
// mismatch, key mismatch, recorded failure — reads as a miss, so a
// damaged entry costs one recomputation, never a failed sweep.
func (s *Store) Get(key string) (core.SavedResult, bool) {
	ent, ok := s.Lookup(key)
	if !ok || ent.Err != "" {
		return core.SavedResult{}, false
	}
	return ent.Result, true
}

// Lookup returns the committed entry for a key — a saved result or a
// recorded failure (Entry.Err non-empty). Damaged, stale-schema, and
// mismatched records read as misses, exactly as in Get.
func (s *Store) Lookup(key string) (Entry, bool) {
	data, err := os.ReadFile(s.recordPath(key))
	if err != nil {
		return Entry{}, false
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Entry{}, false
	}
	if rec.Schema != SchemaVersion() || rec.Key != key {
		return Entry{}, false
	}
	s.mu.Lock()
	s.known[key] = true // reconcile: found on disk but absent from our journal view
	s.mu.Unlock()
	return Entry{Result: rec.Result, Err: rec.Error}, true
}

// Put commits a result under a key: temp file, sync, atomic rename,
// then a journal append. A concurrent Put of the same key from another
// process is harmless — both renames install identical content.
func (s *Store) Put(key string, res core.SavedResult) error {
	return s.commit(key, record{Schema: SchemaVersion(), Key: key, Result: res})
}

// PutError commits a failure record under a key through the same
// atomic-rename path, so repeated sweeps skip known-bad cells instead
// of re-simulating them. The message must be non-empty — it is what
// distinguishes a failure record from a success.
func (s *Store) PutError(key, msg string) error {
	if msg == "" {
		return fmt.Errorf("resultdb: empty failure message for key %s", key)
	}
	return s.commit(key, record{Schema: SchemaVersion(), Key: key, Error: msg})
}

func (s *Store) commit(key string, rec record) error {
	if key == "" {
		return fmt.Errorf("resultdb: empty key")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}
	path := s.recordPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "commit-*")
	if err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("resultdb: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resultdb: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.known[key] {
		return nil // already journaled (recommit after schema bump, or racing writer)
	}
	if s.manifest != nil {
		if _, err := s.manifest.WriteString(key + "\n"); err != nil {
			return fmt.Errorf("resultdb: manifest: %w", err)
		}
	}
	s.known[key] = true
	return nil
}

// Keys returns every key this store knows of, sorted: the journal
// replayed at Open plus everything committed or observed since. Keys
// are advisory — a listed record may still read as a miss if its file
// was damaged.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.known))
	for k := range s.known {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of known keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.known)
}

// RecordedError is a replayed failure record: consumers return it in
// place of re-running a cell whose deterministic failure the store
// already witnessed. errors.As separates a replayed failure from a
// fresh one and from genuinely missing cells.
type RecordedError struct {
	// Key is the failed cell's content address.
	Key string
	// Msg is the failure text exactly as first recorded.
	Msg string
}

// Error returns the recorded message verbatim, so a replayed failure
// renders identically to the original.
func (e *RecordedError) Error() string { return e.Msg }
