// Package resultdb is a persistent, content-addressed store for cell
// results. Each record is one core.SavedResult keyed by the cell's
// canonical fingerprint (core.CellID.Fingerprint). The package defines
// the pluggable Store contract the sweep engine and the merge assembly
// depend on, plus its reference implementation, DirStore: one JSON
// file per record under a cache directory:
//
//	<dir>/<key[:2]>/<key>.json
//
// Commits are crash-safe: a record is written to a temp file, synced,
// and renamed into place, so a reader never observes a half-written
// record at its final path. An append-only manifest journal
// (<dir>/manifest.log, one key per line) indexes committed records so
// a resumed or merging process can enumerate the store without
// scanning; the record files remain the source of truth — a journal
// entry whose file is missing or unreadable is simply a miss, and a
// record committed just before a crash that lost its journal line is
// still found on disk.
//
// Records carry a schema stamp, SchemaVersion: a record-format
// generation plus a checksum over the simulator's model constants
// (fabric/cluster/container tables, workload cases, solver cost
// constants — see core.ModelChecksum). Any change to a model number
// alters the stamp, so every existing record reads as a miss and is
// recomputed — stale caches self-invalidate instead of replaying
// outdated numbers, without anyone remembering to bump a version.
//
// Failed cells are cached too: PutError commits a schema-stamped error
// record through the same atomic-rename path, so repeated sweeps skip
// known-bad runtime×technique combinations. Lookup distinguishes the
// three outcomes — successful result, recorded failure, miss — while
// Get keeps the success-only view.
//
// Multiple processes may share one directory — the sharded-sweep
// workflow depends on it. Renames are atomic, concurrent commits of
// the same key are idempotent (the content is a pure function of the
// key), and manifest appends use O_APPEND single-write lines.
//
// A second journal, <dir>/access.log, records when each record was
// last read or written; GC (gc.go) uses it to evict cold records
// under a size/age policy while Pin protects the cells of an in-flight
// sweep from eviction.
package resultdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// schemaGeneration is the record-format generation: bump it when the
// record encoding itself changes (fields added or reinterpreted).
// Model-constant changes are covered automatically by the checksum.
const schemaGeneration = 2

// SchemaVersion stamps every record: the record-format generation
// joined with a checksum over the simulator model constants. Records
// written under a different generation or a different model read as
// misses and are recomputed. A network registry serves it on
// GET /v1/schema so clients can refuse to exchange records across a
// model change instead of silently mixing incompatible numbers.
func SchemaVersion() string {
	return fmt.Sprintf("%d-%s", schemaGeneration, core.ModelChecksum()[:16])
}

// ValidKey reports whether key is a well-formed content address: 64
// lowercase hex characters, the sha256 fingerprint form. Stores and
// the registry reject anything else — a key is a digest, never a
// path, so "../evil" can never reach the filesystem or the wire.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// manifestName is the journal file inside a store directory.
const manifestName = "manifest.log"

// accessName is the access journal GC reads last-use times from.
const accessName = "access.log"

// Store is the pluggable result-store contract: a content-addressed
// map from cell fingerprints to committed entries. The sweep engine,
// the FromStore (merge) assembly, and the CLI all depend on this
// interface, so a directory, a network registry client, or a tiered
// combination of the two can back a sweep interchangeably.
//
// Semantics every implementation must keep:
//
//   - Get is the success-only, miss-tolerant view: any failure to
//     produce a valid success record — absence, damage, staleness,
//     a recorded cell failure — reads as a miss.
//   - Lookup reports committed entries (success or recorded failure)
//     and surfaces transport errors; damaged or stale records read as
//     misses with a nil error, costing one recomputation rather than
//     a failed sweep.
//   - Put/PutError commit durably before returning; committing the
//     same key concurrently from several writers is safe because the
//     content is a pure function of the key.
//   - Keys is advisory enumeration: a listed key may still miss.
type Store interface {
	// Get returns the saved result for a key, success records only.
	Get(key string) (core.SavedResult, bool)
	// Lookup returns the committed entry for a key — a saved result or
	// a recorded failure (Entry.Err non-empty). The error reports
	// transport-level failures (a network store that cannot answer);
	// damaged records are misses, not errors.
	Lookup(key string) (Entry, bool, error)
	// Put commits a successful result under a key.
	Put(key string, res core.SavedResult) error
	// PutError commits a failure record under a key; msg must be
	// non-empty.
	PutError(key, msg string) error
	// Keys enumerates every key the store knows of, sorted.
	Keys() []string
	// Stats snapshots the store's traffic counters.
	Stats() StoreStats
	// Close releases the store's resources. Committed records stay
	// readable by future opens.
	Close() error
}

// StoreStats is a snapshot of one store's traffic: how many lookups it
// answered and how, and how many commits it accepted. Network stores
// additionally count transport retries. The CLI's -v mode reports
// these alongside the sweep's own counters.
type StoreStats struct {
	// Lookups counts Get/Lookup calls.
	Lookups int64
	// Hits counts lookups answered with a successful result.
	Hits int64
	// NegHits counts lookups answered with a recorded failure.
	NegHits int64
	// Puts counts committed results; PutErrors committed failure
	// records.
	Puts, PutErrors int64
	// Retries counts transport retries (network stores only).
	Retries int64
	// PrefetchSkips counts lookups answered as misses locally because
	// a manifest prefetch (Prefetcher) showed the store lacks the key —
	// each one is a per-cell round trip a network store avoided.
	PrefetchSkips int64
}

// Misses derives the lookups that found nothing.
func (st StoreStats) Misses() int64 { return st.Lookups - st.Hits - st.NegHits }

// GetFrom derives the success-only Get view from a store's Lookup —
// the one place its semantics live, so every backend filters
// transport errors, misses, and recorded failures identically.
func GetFrom(s Store, key string) (core.SavedResult, bool) {
	ent, ok, err := s.Lookup(key)
	if err != nil || !ok || ent.Err != "" {
		return core.SavedResult{}, false
	}
	return ent.Result, true
}

// Prefetcher is implemented by stores that can learn, in one bulk
// operation, which of an upcoming working set's keys they do not
// have. The sweep engine announces the full key set before its lookup
// fan-out; a network store answers by fetching the manifest once and
// then resolving lookups of known-absent keys locally, replacing one
// round trip per missing cell with one per sweep. The hint is
// best-effort and advisory in both directions: a key another writer
// commits after the prefetch may read as a miss once (the same race a
// direct GET has — the cell is recomputed and the commit is
// idempotent), and a failed prefetch simply leaves every lookup on
// its normal path. Directory stores don't implement it: a local read
// costs less than maintaining the hint.
type Prefetcher interface {
	// Prefetch hints that keys are about to be looked up.
	Prefetch(keys []string)
}

// Pinner is implemented by stores whose records can be protected from
// garbage collection. A sweep pins every key it will read or write for
// the duration of the run, so a GC pass in the same process can never
// evict a cell between its lookup and its use. Pins are in-process
// state: they do not travel over the wire, so a remote registry's
// server-side GC instead relies on access recency — lookups and
// commits refresh the record's journal entry (coalesced to once per
// GC cycle), and the server's -max-age should exceed the longest
// expected sweep.
type Pinner interface {
	// Pin protects keys until the returned release is called. Pins
	// nest: a key is evictable again once every Pin holding it has
	// been released.
	Pin(keys []string) (release func())
}

// record is the on-disk form of one cached cell.
type record struct {
	// Schema is the SchemaVersion the record was written under.
	Schema string `json:"schema"`
	// Key echoes the content address, guarding against renamed or
	// cross-copied files.
	Key string `json:"key"`
	// Result is the saved outcome; meaningful only when Error is empty.
	Result core.SavedResult `json:"result"`
	// Error is the recorded failure of a known-bad cell; empty for
	// successful cells.
	Error string `json:"error,omitempty"`
}

// Entry is one committed record's payload: a saved result, or the
// recorded error of a cell that deterministically fails.
type Entry struct {
	// Result is the saved outcome; meaningful only when Err is empty.
	Result core.SavedResult
	// Err is the recorded failure; empty for successful cells.
	Err string
}

// DirStore is the directory-backed Store: the reference
// implementation every other backend (the network registry, the
// tiered cache) ultimately persists through.
type DirStore struct {
	dir string

	lookups, hits, negHits, puts, putErrors atomic.Int64

	mu       sync.Mutex
	manifest *os.File
	access   *os.File
	known    map[string]bool
	touched  map[string]bool // keys already access-journaled by this process
	pins     map[string]int
}

var _ Store = (*DirStore)(nil)
var _ Pinner = (*DirStore)(nil)

// Open creates the directory if needed, replays the manifest journal,
// and returns the store.
func Open(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultdb: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	known := make(map[string]bool)
	path := filepath.Join(dir, manifestName)
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if key := strings.TrimSpace(sc.Text()); key != "" {
				known[key] = true
			}
		}
		// A torn final line (crash mid-append) is dropped by the key
		// check in Get; scanner errors mean a damaged journal, which
		// the record files recover from.
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("resultdb: manifest: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	manifest, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	access, err := os.OpenFile(filepath.Join(dir, accessName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		manifest.Close()
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	return &DirStore{
		dir:      dir,
		manifest: manifest,
		access:   access,
		known:    known,
		touched:  make(map[string]bool),
		pins:     make(map[string]int),
	}, nil
}

// Close releases the journals. Records already committed stay readable
// by future Opens.
func (s *DirStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.manifest != nil {
		err = s.manifest.Close()
		s.manifest = nil
	}
	if s.access != nil {
		if aerr := s.access.Close(); err == nil {
			err = aerr
		}
		s.access = nil
	}
	return err
}

// Dir returns the store directory.
func (s *DirStore) Dir() string { return s.dir }

// recordPath places a record under a two-hex-character fan-out
// directory, keeping any single directory small on big sweeps.
func (s *DirStore) recordPath(key string) string {
	prefix := key
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	return filepath.Join(s.dir, prefix, key+".json")
}

// Get returns the saved result for a key, success records only. Every
// failure mode — no record, truncated or corrupt JSON, schema
// mismatch, key mismatch, recorded failure — reads as a miss, so a
// damaged entry costs one recomputation, never a failed sweep.
func (s *DirStore) Get(key string) (core.SavedResult, bool) {
	return GetFrom(s, key)
}

// Lookup returns the committed entry for a key — a saved result or a
// recorded failure (Entry.Err non-empty). Damaged, stale-schema, and
// mismatched records read as misses, exactly as in Get; the error is
// always nil for a directory store (it exists for network backends).
func (s *DirStore) Lookup(key string) (Entry, bool, error) {
	s.lookups.Add(1)
	if !ValidKey(key) {
		return Entry{}, false, nil
	}
	data, err := os.ReadFile(s.recordPath(key))
	if err != nil {
		return Entry{}, false, nil
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Entry{}, false, nil
	}
	if rec.Schema != SchemaVersion() || rec.Key != key {
		return Entry{}, false, nil
	}
	if rec.Error != "" {
		s.negHits.Add(1)
	} else {
		s.hits.Add(1)
	}
	s.mu.Lock()
	s.known[key] = true // reconcile: found on disk but absent from our journal view
	s.touchLocked(key)
	s.mu.Unlock()
	return Entry{Result: rec.Result, Err: rec.Error}, true, nil
}

// Put commits a result under a key: temp file, sync, atomic rename,
// then a journal append. A concurrent Put of the same key from another
// process is harmless — both renames install identical content.
func (s *DirStore) Put(key string, res core.SavedResult) error {
	if err := s.commit(key, record{Schema: SchemaVersion(), Key: key, Result: res}); err != nil {
		return err
	}
	s.puts.Add(1)
	return nil
}

// PutError commits a failure record under a key through the same
// atomic-rename path, so repeated sweeps skip known-bad cells instead
// of re-simulating them. The message must be non-empty — it is what
// distinguishes a failure record from a success.
func (s *DirStore) PutError(key, msg string) error {
	if msg == "" {
		return fmt.Errorf("resultdb: empty failure message for key %s", key)
	}
	if err := s.commit(key, record{Schema: SchemaVersion(), Key: key, Error: msg}); err != nil {
		return err
	}
	s.putErrors.Add(1)
	return nil
}

// Stats snapshots the store's traffic counters.
func (s *DirStore) Stats() StoreStats {
	return StoreStats{
		Lookups:   s.lookups.Load(),
		Hits:      s.hits.Load(),
		NegHits:   s.negHits.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
	}
}

// Pin protects keys from GC until the returned release is called.
func (s *DirStore) Pin(keys []string) (release func()) {
	s.mu.Lock()
	for _, k := range keys {
		s.pins[k]++
	}
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			for _, k := range keys {
				if s.pins[k]--; s.pins[k] <= 0 {
					delete(s.pins, k)
				}
			}
			s.mu.Unlock()
		})
	}
}

// touchLocked appends an access-journal line for key, coalesced to
// once per key between GC passes (GC re-arms the guard): age-based
// eviction needs recency no finer than the collection interval, and
// journaling every hit would add a write syscall to each warm lookup
// and grow the file without bound. Best-effort: a failed append
// degrades GC's age signal (the record file's mtime takes over),
// never a read or write. Caller holds s.mu.
func (s *DirStore) touchLocked(key string) {
	if s.access == nil || s.touched[key] {
		return
	}
	//lint:allow wallclock -- GC access journal: host-side cache bookkeeping that never reaches simulated results
	fmt.Fprintf(s.access, "%d %s\n", time.Now().Unix(), key)
	s.touched[key] = true
}

func (s *DirStore) commit(key string, rec record) error {
	if !ValidKey(key) {
		return fmt.Errorf("resultdb: invalid key %q (want a 64-hex fingerprint)", key)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}
	path := s.recordPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "commit-*")
	if err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("resultdb: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resultdb: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}

	// The rename happens under the store lock so an in-process GC pass
	// (which holds it for its whole collection) can never evict a
	// record between this commit's install and its acknowledgement —
	// the commit either lands before the scan or after the eviction
	// loop, never in between.
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}
	s.touchLocked(key)
	if s.known[key] {
		return nil // already journaled (recommit after schema bump, or racing writer)
	}
	if s.manifest != nil {
		if _, err := s.manifest.WriteString(key + "\n"); err != nil {
			return fmt.Errorf("resultdb: manifest: %w", err)
		}
	}
	s.known[key] = true
	return nil
}

// Keys returns every key this store knows of, sorted: the journal
// replayed at Open plus everything committed or observed since. Keys
// are advisory — a listed record may still read as a miss if its file
// was damaged.
func (s *DirStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.known))
	for k := range s.known {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of known keys.
func (s *DirStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.known)
}

// RecordedError is a replayed failure record: consumers return it in
// place of re-running a cell whose deterministic failure the store
// already witnessed. errors.As separates a replayed failure from a
// fresh one and from genuinely missing cells.
type RecordedError struct {
	// Key is the failed cell's content address.
	Key string
	// Msg is the failure text exactly as first recorded.
	Msg string
}

// Error returns the recorded message verbatim, so a replayed failure
// renders identically to the original.
func (e *RecordedError) Error() string { return e.Msg }
