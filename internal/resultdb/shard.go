package resultdb

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Shard is a deterministic 1-of-N partition of the key space, the unit
// of distributing one sweep across processes or machines: N invocations
// with shards 1/N .. N/N each compute a disjoint slice of the
// enumerated cells into a shared store, and a merge assembles the
// whole figure from it. The zero value (and any Count ≤ 1) owns every
// key.
type Shard struct {
	// Index is 1-based: 1 ≤ Index ≤ Count.
	Index int
	// Count is the total number of shards.
	Count int
}

// ParseShard parses the CLI form "k/N".
func ParseShard(s string) (Shard, error) {
	k, n, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("resultdb: shard %q is not of the form k/N", s)
	}
	idx, err1 := strconv.Atoi(k)
	cnt, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("resultdb: shard %q is not of the form k/N", s)
	}
	sh := Shard{Index: idx, Count: cnt}
	// The zero value means "no sharding" only programmatically; the
	// explicit string form must name a real slice.
	if sh == (Shard{}) {
		return Shard{}, fmt.Errorf("resultdb: shard %q out of range", s)
	}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate rejects out-of-range shards. Only the zero value (no
// sharding) and 1 ≤ Index ≤ Count pass: a typo like "2/1" must error,
// not silently behave as an unsharded full sweep.
func (sh Shard) Validate() error {
	if sh == (Shard{}) {
		return nil
	}
	if sh.Count < 1 || sh.Index < 1 || sh.Index > sh.Count {
		return fmt.Errorf("resultdb: shard %d/%d out of range", sh.Index, sh.Count)
	}
	return nil
}

// Active reports whether the shard restricts anything.
func (sh Shard) Active() bool { return sh.Count > 1 }

// String renders the CLI form.
func (sh Shard) String() string { return fmt.Sprintf("%d/%d", sh.Index, sh.Count) }

// Owns reports whether a key falls in this shard's slice: a modulo
// partition of a 64-bit hash of the key, so any set of keys splits
// near-evenly and every process agrees on the assignment with no
// coordination.
func (sh Shard) Owns(key string) bool {
	if !sh.Active() {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()%uint64(sh.Count) == uint64(sh.Index-1)
}
