package container

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/units"
)

func buildOCI(t *testing.T, arch topology.ISA, kind BuildKind, abi string) *Image {
	t.Helper()
	img, err := BuildOCI(BuildSpec{
		Name: "bsc/alya", Tag: "test", Arch: arch, Kind: kind, HostABI: abi, App: "alya",
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestBuildOCIValidation(t *testing.T) {
	if _, err := BuildOCI(BuildSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := BuildOCI(BuildSpec{Name: "x", App: "a", Kind: SystemSpecific}); err == nil {
		t.Error("system-specific without host ABI accepted")
	}
	img, err := BuildOCI(BuildSpec{Name: "x", App: "a", Kind: SelfContained, Arch: topology.AMD64})
	if err != nil {
		t.Fatal(err)
	}
	if img.Tag != "latest" {
		t.Errorf("default tag %q", img.Tag)
	}
	if img.HostABI != "" {
		t.Error("self-contained image must not carry a host ABI")
	}
}

func TestSelfContainedBiggerThanSystemSpecific(t *testing.T) {
	sys := buildOCI(t, topology.AMD64, SystemSpecific, "abi-x")
	self := buildOCI(t, topology.AMD64, SelfContained, "")
	if self.Size() <= sys.Size() {
		t.Fatalf("self-contained %v not bigger than system-specific %v (bundled MPI missing?)",
			self.Size(), sys.Size())
	}
}

func TestLayerDedupAcrossBuilds(t *testing.T) {
	a := buildOCI(t, topology.AMD64, SelfContained, "")
	b := buildOCI(t, topology.AMD64, SelfContained, "")
	for i := range a.Layers {
		if a.Layers[i].Digest != b.Layers[i].Digest {
			t.Fatalf("identical builds produced different layer digests at %d", i)
		}
	}
	// A different architecture must change every digest.
	c := buildOCI(t, topology.ARM64, SelfContained, "")
	for i := range a.Layers {
		if a.Layers[i].Digest == c.Layers[i].Digest {
			t.Fatalf("arch change kept digest of layer %d (%s)", i, a.Layers[i].Description)
		}
	}
}

func TestConversionShrinksAndFlattens(t *testing.T) {
	oci := buildOCI(t, topology.AMD64, SystemSpecific, "abi-x")
	sif, err := ConvertToSIF(oci)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := ConvertToSquashFS(oci)
	if err != nil {
		t.Fatal(err)
	}
	if len(sif.Layers) != 1 || len(sq.Layers) != 1 {
		t.Fatal("converted images must be single-layer")
	}
	if sif.Size() != oci.Size() {
		t.Fatal("conversion changed uncompressed size")
	}
	if sif.CompressedSize() >= oci.CompressedSize() {
		t.Fatalf("SIF (%v) should compress better than gzip layers (%v)",
			sif.CompressedSize(), oci.CompressedSize())
	}
	if sif.CompressedSize() >= sq.CompressedSize() {
		t.Fatalf("SIF xz (%v) should beat squashfs gzip (%v)",
			sif.CompressedSize(), sq.CompressedSize())
	}
	// Converting a non-OCI image is an error.
	if _, err := ConvertToSIF(sif); err == nil {
		t.Fatal("double conversion accepted")
	}
}

func TestImageDigestStable(t *testing.T) {
	a := buildOCI(t, topology.PPC64LE, SelfContained, "")
	b := buildOCI(t, topology.PPC64LE, SelfContained, "")
	if a.Digest() != b.Digest() {
		t.Fatal("image digest not reproducible")
	}
}

func TestDockerNeedsRoot(t *testing.T) {
	d := Docker{}
	if err := d.Available(cluster.Lenox()); err != nil {
		t.Fatalf("Docker must be available on Lenox: %v", err)
	}
	for _, cl := range []*cluster.Cluster{cluster.MareNostrum4(), cluster.CTEPower(), cluster.ThunderX()} {
		err := d.Available(cl)
		if !errors.Is(err, ErrNeedsRoot) {
			t.Errorf("%s: Docker availability = %v, want ErrNeedsRoot", cl.Name, err)
		}
	}
	// Shifter's gateway likewise.
	if err := (Shifter{}).Available(cluster.MareNostrum4()); !errors.Is(err, ErrNeedsRoot) {
		t.Errorf("Shifter on MN4: %v", err)
	}
	// Singularity runs everywhere.
	for _, cl := range cluster.All() {
		if err := (Singularity{}).Available(cl); err != nil {
			t.Errorf("Singularity on %s: %v", cl.Name, err)
		}
	}
}

func TestArchCompat(t *testing.T) {
	s := Singularity{}
	mn4 := cluster.MareNostrum4()
	armOCI := buildOCI(t, topology.ARM64, SelfContained, "")
	armSIF, _ := s.ImageFor(armOCI)
	_, err := s.ExecProfile(mn4, armSIF)
	if !errors.Is(err, ErrWrongArch) {
		t.Fatalf("arm image on Skylake: %v, want ErrWrongArch", err)
	}
}

func TestHostABICompat(t *testing.T) {
	s := Singularity{}
	mn4 := cluster.MareNostrum4()
	lenoxImg := buildOCI(t, topology.AMD64, SystemSpecific, cluster.Lenox().HostABI)
	sif, _ := s.ImageFor(lenoxImg)
	_, err := s.ExecProfile(mn4, sif)
	if !errors.Is(err, ErrHostABI) {
		t.Fatalf("lenox-ABI image on MN4: %v, want ErrHostABI", err)
	}
}

func TestExecProfilesTransportPolicy(t *testing.T) {
	mn4 := cluster.MareNostrum4()
	s := Singularity{}

	sysOCI := buildOCI(t, topology.AMD64, SystemSpecific, mn4.HostABI)
	sysSIF, _ := s.ImageFor(sysOCI)
	sys, err := s.ExecProfile(mn4, sysSIF)
	if err != nil {
		t.Fatal(err)
	}
	if sys.InterNode.Name != mn4.Interconnect.Native.Name {
		t.Errorf("system-specific inter-node path %q, want native", sys.InterNode.Name)
	}
	if sys.IntraNode.Name != "shm" {
		t.Errorf("system-specific intra-node path %q, want shm", sys.IntraNode.Name)
	}

	selfOCI := buildOCI(t, topology.AMD64, SelfContained, "")
	selfSIF, _ := s.ImageFor(selfOCI)
	self, err := s.ExecProfile(mn4, selfSIF)
	if err != nil {
		t.Fatal(err)
	}
	if self.InterNode.Name != mn4.Interconnect.TCPFallback.Name {
		t.Errorf("self-contained inter-node path %q, want TCP fallback", self.InterNode.Name)
	}
	if self.IntraNode.Name != "shm" {
		t.Errorf("self-contained intra-node path %q, want shm (host IPC namespace)", self.IntraNode.Name)
	}
}

func TestDockerProfileIsolation(t *testing.T) {
	lenox := cluster.Lenox()
	d := Docker{}
	img := buildOCI(t, topology.AMD64, SystemSpecific, lenox.HostABI)
	p, err := d.ExecProfile(lenox, img)
	if err != nil {
		t.Fatal(err)
	}
	if p.IntraNode.Name != "docker-bridge" {
		t.Errorf("docker intra-node path %q, want docker-bridge", p.IntraNode.Name)
	}
	if !strings.Contains(p.InterNode.Name, "nat") {
		t.Errorf("docker inter-node path %q, want NAT", p.InterNode.Name)
	}
	if p.ComputeDilation <= 1 {
		t.Errorf("docker compute dilation %v, want > 1", p.ComputeDilation)
	}
	if p.LaunchPerRank <= (Singularity{}).mustProfile(t, lenox).LaunchPerRank {
		t.Errorf("docker per-rank launch should exceed singularity's")
	}
}

// mustProfile builds a matching image and returns the profile.
func (s Singularity) mustProfile(t *testing.T, cl *cluster.Cluster) ExecProfile {
	t.Helper()
	oci, err := BuildOCI(BuildSpec{
		Name: "x", App: "a", Arch: cl.ISA(), Kind: SystemSpecific, HostABI: cl.HostABI,
	})
	if err != nil {
		t.Fatal(err)
	}
	sif, err := s.ImageFor(oci)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.ExecProfile(cl, sif)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBareMetalProfile(t *testing.T) {
	for _, cl := range cluster.All() {
		p, err := (BareMetal{}).ExecProfile(cl, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.ComputeDilation != 1 || p.LaunchPerRank != 0 {
			t.Errorf("%s: bare metal has container costs: %+v", cl.Name, p)
		}
		if p.InterNode.Name != cl.Interconnect.Native.Name {
			t.Errorf("%s: bare metal not on native fabric", cl.Name)
		}
	}
}

func TestDeployScaling(t *testing.T) {
	lenox := cluster.Lenox()
	d := Docker{}
	img := buildOCI(t, topology.AMD64, SystemSpecific, lenox.HostABI)

	r1, err := d.Deploy(lenox, img, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := d.Deploy(lenox, img, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Docker pulls per node: wire traffic and pull time must scale.
	if r4.WireSize != 4*r1.WireSize {
		t.Errorf("docker wire: %v at 4 nodes vs %v at 1", r4.WireSize, r1.WireSize)
	}
	if r4.PullTime <= r1.PullTime {
		t.Error("docker pull time did not grow with nodes")
	}

	s := Singularity{}
	sif, _ := s.ImageFor(img)
	s1, err := s.Deploy(lenox, sif, 1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := s.Deploy(lenox, sif, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Singularity pulls once; only the tiny per-node start grows.
	if s4.WireSize != s1.WireSize {
		t.Error("singularity wire traffic grew with nodes")
	}
	if s4.PullTime != s1.PullTime {
		t.Error("singularity pull time grew with nodes")
	}
	if s4.Total() <= s1.Total() {
		t.Error("per-node start cost missing")
	}
	// At full allocation, Docker deployment must dominate.
	if r4.Total() <= s4.Total() {
		t.Errorf("docker deploy %v not above singularity %v at 4 nodes", r4.Total(), s4.Total())
	}
}

func TestDeployRejectsWrongFormat(t *testing.T) {
	lenox := cluster.Lenox()
	img := buildOCI(t, topology.AMD64, SystemSpecific, lenox.HostABI)
	sif, _ := ConvertToSIF(img)
	if _, err := (Docker{}).Deploy(lenox, sif, 1); !errors.Is(err, ErrWrongFormat) {
		t.Errorf("docker deploying SIF: %v", err)
	}
	if _, err := (Singularity{}).Deploy(lenox, img, 1); !errors.Is(err, ErrWrongFormat) {
		t.Errorf("singularity deploying OCI: %v", err)
	}
	if _, err := (Shifter{}).Deploy(lenox, sif, 1); !errors.Is(err, ErrWrongFormat) {
		t.Errorf("shifter deploying SIF: %v", err)
	}
}

func TestRegistryPushPull(t *testing.T) {
	r := NewRegistry()
	img := buildOCI(t, topology.AMD64, SelfContained, "")
	r.Push(img)
	got, err := r.Pull(img.Ref(), FormatOCI)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != img.Digest() {
		t.Fatal("pulled a different image")
	}
	if _, err := r.Pull("missing:latest", FormatOCI); err == nil {
		t.Fatal("missing image pulled")
	}
	if _, err := r.Pull(img.Ref(), FormatSIF); err == nil {
		t.Fatal("wrong format pulled")
	}
}

func TestRegistryLayerCacheDedup(t *testing.T) {
	r := NewRegistry()
	sys := buildOCI(t, topology.AMD64, SystemSpecific, "abi-x")
	self := buildOCI(t, topology.AMD64, SelfContained, "")

	first := r.MissingBytes("Lenox", sys)
	if first != sys.CompressedSize() {
		t.Fatalf("cold pull %v, want full %v", first, sys.CompressedSize())
	}
	again := r.MissingBytes("Lenox", sys)
	if again != 0 {
		t.Fatalf("warm pull %v, want 0", again)
	}
	// The self-contained image shares base layers: a partial pull.
	partial := r.MissingBytes("Lenox", self)
	if partial <= 0 || partial >= self.CompressedSize() {
		t.Fatalf("shared-layer pull %v of %v", partial, self.CompressedSize())
	}
	// A different cluster has a cold cache.
	other := r.MissingBytes("CTE-POWER", sys)
	if other != sys.CompressedSize() {
		t.Fatalf("other cluster pull %v", other)
	}
	r.ResetCache("Lenox")
	if r.MissingBytes("Lenox", sys) != sys.CompressedSize() {
		t.Fatal("cache reset did not work")
	}
}

func TestRuntimesList(t *testing.T) {
	rts := Runtimes()
	if len(rts) != 4 {
		t.Fatalf("%d runtimes", len(rts))
	}
	names := []string{"Bare-metal", "Docker", "Singularity", "Shifter"}
	for i, want := range names {
		if rts[i].Name() != want {
			t.Errorf("runtime %d is %q, want %q", i, rts[i].Name(), want)
		}
		if _, err := ByName(want); err != nil {
			t.Errorf("ByName(%q): %v", want, err)
		}
	}
	if _, err := ByName("Podman"); err == nil {
		t.Error("unknown runtime found")
	}
}

func TestImageSizesInPaperBallpark(t *testing.T) {
	// The study's Alya images were roughly 1–2.5 GB uncompressed.
	img := buildOCI(t, topology.AMD64, SelfContained, "")
	if img.Size() < 1*units.GiB || img.Size() > 3*units.GiB {
		t.Fatalf("self-contained image %v outside the plausible range", img.Size())
	}
}
