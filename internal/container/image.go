// Package container models container images and the three runtimes of
// the study — Docker, Singularity, and Shifter — plus bare metal as the
// reference "runtime".
//
// Two image-building techniques from the paper's portability section
// are first-class: a *system-specific* image binds the host's MPI and
// fabric stack at run time (fast network, zero portability across
// hosts), while a *self-contained* image bundles a generic MPI (runs
// anywhere with the right ISA, TCP only). The execution profiles the
// runtimes hand to the MPI layer encode exactly these trade-offs.
package container

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/topology"
	"repro/internal/units"
)

// Format is the on-disk image format.
type Format int

// Image formats.
const (
	// FormatOCI is a Docker-style stack of compressed layers.
	FormatOCI Format = iota
	// FormatSIF is Singularity's single squashed image file.
	FormatSIF
	// FormatSquashFS is Shifter's gateway-produced loop-mount image.
	FormatSquashFS
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatOCI:
		return "oci-layers"
	case FormatSIF:
		return "sif"
	case FormatSquashFS:
		return "squashfs"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// BuildKind is the image-building technique.
type BuildKind int

// Building techniques.
const (
	// SystemSpecific images bind the host MPI/fabric stack at run time.
	SystemSpecific BuildKind = iota
	// SelfContained images bundle a generic MPI with TCP support only.
	SelfContained
)

// String names the build kind.
func (k BuildKind) String() string {
	switch k {
	case SystemSpecific:
		return "system-specific"
	case SelfContained:
		return "self-contained"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Layer is one content-addressed image layer.
type Layer struct {
	// Digest is the content address (sha256 of the synthetic content
	// description, so identical build steps dedup across images).
	Digest string
	// Size is the uncompressed layer size.
	Size units.ByteSize
	// CompressedSize is the on-wire size.
	CompressedSize units.ByteSize
	// Description says what the layer holds, e.g. "centos-7.4 base".
	Description string
}

// NewLayer builds a layer whose digest derives from its description and
// size, making builds reproducible and dedup meaningful.
func NewLayer(desc string, size, compressed units.ByteSize) Layer {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%.0f", desc, float64(size))))
	return Layer{
		Digest:         hex.EncodeToString(h[:]),
		Size:           size,
		CompressedSize: compressed,
		Description:    desc,
	}
}

// Image is a built container image.
type Image struct {
	// Name and Tag identify the image in the registry.
	Name string
	Tag  string
	// Arch is the ISA the binaries were compiled for; execution on a
	// different ISA fails with ErrWrongArch.
	Arch topology.ISA
	// Format is the on-disk representation.
	Format Format
	// Kind is the building technique.
	Kind BuildKind
	// HostABI, for system-specific images, names the host stack the
	// image binds; it must match the target cluster's HostABI.
	HostABI string
	// MPIStack documents the MPI implementation inside the image.
	MPIStack string
	// Layers composes the image (a single layer for SIF/SquashFS).
	Layers []Layer
}

// Ref returns the registry reference name:tag.
func (img *Image) Ref() string { return img.Name + ":" + img.Tag }

// Size returns the uncompressed image size.
func (img *Image) Size() units.ByteSize {
	var s units.ByteSize
	for _, l := range img.Layers {
		s += l.Size
	}
	return s
}

// CompressedSize returns the on-wire image size.
func (img *Image) CompressedSize() units.ByteSize {
	var s units.ByteSize
	for _, l := range img.Layers {
		s += l.CompressedSize
	}
	return s
}

// Digest returns a deterministic identity for the whole image.
func (img *Image) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%s", img.Ref(), img.Arch, img.Format, img.Kind)
	for _, l := range img.Layers {
		fmt.Fprintf(h, "|%s", l.Digest)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BuildSpec describes an image to build.
type BuildSpec struct {
	// Name and Tag for the registry.
	Name string
	Tag  string
	// Arch is the target ISA.
	Arch topology.ISA
	// Kind selects the building technique.
	Kind BuildKind
	// HostABI is required for system-specific builds: the host stack
	// the image will bind (a cluster's HostABI value).
	HostABI string
	// App is the application bundle name, e.g. "alya".
	App string
}

// Component sizes of the synthetic Alya image, calibrated to land the
// total near the ~1.5–2.5 GB images the study worked with.
const (
	baseOSSize      = 210 * units.MiB // minimal CentOS-class userland
	toolchainSize   = 480 * units.MiB // compilers' runtime libs, numactl, perf tools
	genericMPISize  = 640 * units.MiB // bundled OpenMPI + libfabric + IPoverything
	hostShimSize    = 45 * units.MiB  // bind-mount glue for the host MPI stack
	alyaAppSize     = 520 * units.MiB // Alya binaries, modules, default input decks
	compressionOCI  = 0.46            // gzip layer ratio
	compressionSIF  = 0.38            // squashfs with xz, single pass over everything
	compressionSqFS = 0.41            // shifter gateway squashfs (gzip)
)

// BuildOCI builds a Docker-style layered image from the spec. This is
// the "docker build" everyone starts from; SIF and SquashFS images are
// derived from it by conversion.
func BuildOCI(spec BuildSpec) (*Image, error) {
	if spec.Name == "" || spec.App == "" {
		return nil, fmt.Errorf("container: build spec needs a name and an app")
	}
	if spec.Tag == "" {
		spec.Tag = "latest"
	}
	if spec.Kind == SystemSpecific && spec.HostABI == "" {
		return nil, fmt.Errorf("container: system-specific build of %s needs a host ABI", spec.Name)
	}
	if spec.Kind == SelfContained {
		spec.HostABI = ""
	}
	mkLayer := func(desc string, size units.ByteSize) Layer {
		return NewLayer(fmt.Sprintf("%s/%s", spec.Arch, desc), size, units.ByteSize(float64(size)*compressionOCI))
	}
	layers := []Layer{
		mkLayer("base-os", baseOSSize),
		mkLayer("toolchain", toolchainSize),
	}
	mpi := "host-bound (" + spec.HostABI + ")"
	if spec.Kind == SelfContained {
		layers = append(layers, mkLayer("generic-mpi", genericMPISize))
		mpi = "bundled OpenMPI (TCP BTL only)"
	} else {
		layers = append(layers, mkLayer("host-mpi-shim/"+spec.HostABI, hostShimSize))
	}
	layers = append(layers, mkLayer("app/"+spec.App, alyaAppSize))
	return &Image{
		Name:     spec.Name,
		Tag:      spec.Tag,
		Arch:     spec.Arch,
		Format:   FormatOCI,
		Kind:     spec.Kind,
		HostABI:  spec.HostABI,
		MPIStack: mpi,
		Layers:   layers,
	}, nil
}

// ConvertToSIF squashes an OCI image into a Singularity SIF file.
func ConvertToSIF(img *Image) (*Image, error) {
	return convertFlat(img, FormatSIF, compressionSIF, "sif")
}

// ConvertToSquashFS squashes an OCI image into a Shifter squashfs
// (what the Shifter image gateway produces from a Docker image).
func ConvertToSquashFS(img *Image) (*Image, error) {
	return convertFlat(img, FormatSquashFS, compressionSqFS, "squashfs")
}

func convertFlat(img *Image, f Format, ratio float64, suffix string) (*Image, error) {
	if img.Format != FormatOCI {
		return nil, fmt.Errorf("container: can only convert OCI images, got %v", img.Format)
	}
	size := img.Size()
	flat := NewLayer(fmt.Sprintf("%s/%s/%s", img.Arch, img.Ref(), suffix),
		size, units.ByteSize(float64(size)*ratio))
	out := *img
	out.Format = f
	out.Layers = []Layer{flat}
	return &out, nil
}

// Compatibility errors.
var (
	// ErrWrongArch: image ISA does not match the host ISA ("exec format
	// error" in real life).
	ErrWrongArch = fmt.Errorf("container: image architecture does not match host")
	// ErrHostABI: a system-specific image was built against a different
	// host stack and its bind mounts cannot resolve.
	ErrHostABI = fmt.Errorf("container: system-specific image does not match host MPI/fabric stack")
	// ErrNeedsRoot: the runtime requires administrative rights the
	// study did not have on this machine.
	ErrNeedsRoot = fmt.Errorf("container: runtime requires administrative rights on the cluster")
	// ErrWrongFormat: the runtime cannot execute this image format.
	ErrWrongFormat = fmt.Errorf("container: runtime cannot execute this image format")
)
