package container

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/units"
)

// ExecProfile is what a runtime hands the MPI layer: which transports
// ranks get, how computation is dilated, and what launching costs.
type ExecProfile struct {
	// RuntimeName identifies the producing runtime in reports.
	RuntimeName string
	// IntraNode is the path between ranks on the same node.
	IntraNode fabric.Transport
	// InterNode is the path between ranks on different nodes.
	InterNode fabric.Transport
	// ComputeDilation multiplies compute durations (cgroup accounting,
	// storage-driver page-cache overhead). 1.0 = bare metal.
	ComputeDilation float64
	// LaunchPerRank is the per-rank container instantiation cost,
	// charged as start-up skew.
	LaunchPerRank units.Seconds
	// FabricPath documents which network path inter-node traffic uses.
	FabricPath string
}

// DeployReport breaks down the time from "job submitted" to "image
// ready on every allocated node" — the paper's deployment-overhead
// metric.
type DeployReport struct {
	// Runtime and Image identify the deployment.
	Runtime string `json:"Runtime"`
	Image   string `json:"Image"`
	// Nodes is the allocation size.
	Nodes int `json:"Nodes"`
	// WireSize is the bytes fetched from the registry (after layer
	// dedup), summed over all fetches.
	WireSize units.ByteSize `json:"WireSize"`
	// StoredSize is the image's footprint once staged.
	StoredSize units.ByteSize `json:"StoredSize"`
	// PullTime is registry→cluster transfer time.
	PullTime units.Seconds `json:"PullTime"`
	// ConvertTime is format-conversion time (docker→SIF, gateway
	// squashing). Zero when no conversion happens.
	ConvertTime units.Seconds `json:"ConvertTime"`
	// StageTime distributes/extracts the image onto compute nodes.
	StageTime units.Seconds `json:"StageTime"`
	// StartTime instantiates the container environment on every node
	// (daemon container create, SUID mount, loop mount).
	StartTime units.Seconds `json:"StartTime"`
}

// Total is the full deployment overhead.
func (d DeployReport) Total() units.Seconds {
	return d.PullTime + d.ConvertTime + d.StageTime + d.StartTime
}

// Runtime is a container technology as the study exercises it.
type Runtime interface {
	// Name is the runtime's name, e.g. "Singularity".
	Name() string
	// Available reports whether the runtime can be installed and used
	// on the cluster (Docker needs root).
	Available(c *cluster.Cluster) error
	// ImageFor converts a built OCI image into whatever format this
	// runtime executes. Bare metal returns nil.
	ImageFor(oci *Image) (*Image, error)
	// Deploy computes the deployment overhead of staging img on n
	// nodes of the cluster.
	Deploy(c *cluster.Cluster, img *Image, nodes int) (DeployReport, error)
	// ExecProfile validates img against the cluster and returns the
	// execution profile MPI runs under.
	ExecProfile(c *cluster.Cluster, img *Image) (ExecProfile, error)
}

// checkCompat validates ISA and host-ABI compatibility, shared by all
// containerized runtimes.
func checkCompat(c *cluster.Cluster, img *Image) error {
	if img == nil {
		return fmt.Errorf("container: nil image")
	}
	if img.Arch != c.ISA() {
		return fmt.Errorf("%w: image %s is %s, host %s is %s",
			ErrWrongArch, img.Ref(), img.Arch, c.Name, c.ISA())
	}
	if img.Kind == SystemSpecific && img.HostABI != c.HostABI {
		return fmt.Errorf("%w: image %s binds %q, host %s provides %q",
			ErrHostABI, img.Ref(), img.HostABI, c.Name, c.HostABI)
	}
	return nil
}

// interPath picks the inter-node transport an image's MPI can drive:
// the native fabric when the host stack is bound (system-specific), the
// TCP fallback when the image is self-contained.
func interPath(c *cluster.Cluster, img *Image) (fabric.Transport, string) {
	if img.Kind == SelfContained {
		t := c.Interconnect.TCPFallback
		return t, t.Name
	}
	t := c.Interconnect.Native
	return t, t.Name
}

// Registry keeps built images addressable by reference and tracks which
// layer digests a cluster has already cached, so repeated pulls dedup.
type Registry struct {
	images map[string]*Image
	cached map[string]map[string]bool // cluster name -> layer digest -> present
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		images: make(map[string]*Image),
		cached: make(map[string]map[string]bool),
	}
}

// Push stores an image under its reference; same-reference pushes with
// a different format are stored under ref+format to mirror multi-format
// repositories.
func (r *Registry) Push(img *Image) {
	r.images[r.key(img.Ref(), img.Format)] = img
}

// Pull finds an image by reference and format.
func (r *Registry) Pull(ref string, f Format) (*Image, error) {
	img, ok := r.images[r.key(ref, f)]
	if !ok {
		return nil, fmt.Errorf("container: image %s (%v) not in registry", ref, f)
	}
	return img, nil
}

func (r *Registry) key(ref string, f Format) string {
	return fmt.Sprintf("%s@%v", ref, f)
}

// MissingBytes returns the on-wire bytes a cluster still needs to fetch
// for img, honouring the layer cache, and marks those layers cached.
func (r *Registry) MissingBytes(clusterName string, img *Image) units.ByteSize {
	cache := r.cached[clusterName]
	if cache == nil {
		cache = make(map[string]bool)
		r.cached[clusterName] = cache
	}
	var need units.ByteSize
	for _, l := range img.Layers {
		if !cache[l.Digest] {
			need += l.CompressedSize
			cache[l.Digest] = true
		}
	}
	return need
}

// ResetCache clears a cluster's layer cache (cold-deployment studies).
func (r *Registry) ResetCache(clusterName string) {
	delete(r.cached, clusterName)
}
