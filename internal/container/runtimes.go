package container

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/units"
)

// BareMetal is the reference execution: no image, host MPI, native
// fabric, zero container costs.
type BareMetal struct{}

// Name implements Runtime.
func (BareMetal) Name() string { return "Bare-metal" }

// Available implements Runtime; bare metal is always available.
func (BareMetal) Available(*cluster.Cluster) error { return nil }

// ImageFor implements Runtime; bare metal uses no image.
func (BareMetal) ImageFor(*Image) (*Image, error) { return nil, nil }

// Deploy implements Runtime: the application binary already sits on the
// shared filesystem; deployment is a metadata touch per node.
func (BareMetal) Deploy(c *cluster.Cluster, _ *Image, nodes int) (DeployReport, error) {
	if nodes < 1 {
		return DeployReport{}, fmt.Errorf("container: deploy on %d nodes", nodes)
	}
	return DeployReport{
		Runtime:   "Bare-metal",
		Image:     "(none)",
		Nodes:     nodes,
		StartTime: c.SharedFS.MetadataLatency, // binary stat/open
	}, nil
}

// ExecProfile implements Runtime.
func (BareMetal) ExecProfile(c *cluster.Cluster, _ *Image) (ExecProfile, error) {
	return ExecProfile{
		RuntimeName:     "Bare-metal",
		IntraNode:       c.SharedMemTransport(),
		InterNode:       c.Interconnect.Native,
		ComputeDilation: 1.0,
		LaunchPerRank:   0,
		FabricPath:      c.Interconnect.Native.Name,
	}, nil
}

// Docker runs each MPI rank in its own fully isolated container: root
// daemon, cgroups, and per-container network namespaces. The isolation
// is exactly what hurts it as MPI scales — ranks cannot use shared
// memory, so even intra-node traffic crosses veth pairs, the docker0
// bridge, and iptables NAT.
type Docker struct {
	// Version documents the deployed release (1.11.1 on Lenox).
	Version string
}

// Name implements Runtime.
func (Docker) Name() string { return "Docker" }

// Available implements Runtime: the daemon needs root.
func (Docker) Available(c *cluster.Cluster) error {
	if !c.AdminRights {
		return fmt.Errorf("%w: Docker daemon on %s", ErrNeedsRoot, c.Name)
	}
	return nil
}

// ImageFor implements Runtime: Docker runs OCI images directly.
func (Docker) ImageFor(oci *Image) (*Image, error) {
	if oci.Format != FormatOCI {
		return nil, fmt.Errorf("%w: Docker needs OCI layers, got %v", ErrWrongFormat, oci.Format)
	}
	return oci, nil
}

// Deploy implements Runtime: every node's daemon pulls all layers from
// the registry through the shared uplink (no peer cache in 1.11), then
// extracts them onto the local storage driver.
func (d Docker) Deploy(c *cluster.Cluster, img *Image, nodes int) (DeployReport, error) {
	if err := d.Available(c); err != nil {
		return DeployReport{}, err
	}
	if img.Format != FormatOCI {
		return DeployReport{}, fmt.Errorf("%w: Docker deploys OCI images", ErrWrongFormat)
	}
	if nodes < 1 {
		return DeployReport{}, fmt.Errorf("container: deploy on %d nodes", nodes)
	}
	wire := img.CompressedSize() * units.ByteSize(nodes)
	pull := c.RegistryRTT*units.Seconds(len(img.Layers)) +
		units.Rate(c.RegistryBW).TimeFor(wire)
	// Layer extraction runs node-locally in parallel across nodes:
	// gunzip+untar onto the storage driver, disk-write bound.
	stage := c.LocalDisk.WriteTime(img.Size())
	// Daemon creates the container environment per node: network
	// namespace, cgroup hierarchy, overlay mount.
	start := units.Seconds(nodes) * 80 * units.Millisecond
	return DeployReport{
		Runtime:    d.Name(),
		Image:      img.Ref(),
		Nodes:      nodes,
		WireSize:   wire,
		StoredSize: img.Size() * units.ByteSize(nodes),
		PullTime:   pull,
		StageTime:  stage,
		StartTime:  start,
	}, nil
}

// ExecProfile implements Runtime.
func (d Docker) ExecProfile(c *cluster.Cluster, img *Image) (ExecProfile, error) {
	if err := d.Available(c); err != nil {
		return ExecProfile{}, err
	}
	if err := checkCompat(c, img); err != nil {
		return ExecProfile{}, err
	}
	if img.Format != FormatOCI {
		return ExecProfile{}, fmt.Errorf("%w: Docker executes OCI images", ErrWrongFormat)
	}
	inter, _ := interPath(c, img)
	nat := fabric.DockerNAT(inter)
	return ExecProfile{
		RuntimeName:     d.Name(),
		IntraNode:       fabric.DockerBridge(),
		InterNode:       nat,
		ComputeDilation: 1.02, // cgroup accounting + overlay page-cache misses
		LaunchPerRank:   350 * units.Millisecond,
		FabricPath:      nat.Name,
	}, nil
}

// Singularity executes a single SIF file via a SUID starter, keeping
// the host's network and IPC namespaces — MPI behaves exactly as on
// the host, which is why it tracks bare metal in every figure.
type Singularity struct {
	// Version documents the deployed release (2.4–2.5 in the study).
	Version string
}

// Name implements Runtime.
func (Singularity) Name() string { return "Singularity" }

// Available implements Runtime: the SUID starter ships pre-installed on
// all four machines.
func (Singularity) Available(*cluster.Cluster) error { return nil }

// ImageFor implements Runtime: convert OCI to SIF.
func (Singularity) ImageFor(oci *Image) (*Image, error) { return ConvertToSIF(oci) }

// Deploy implements Runtime: pull once, convert once, drop the single
// SIF file on the shared filesystem; nodes only stat/open it.
func (s Singularity) Deploy(c *cluster.Cluster, img *Image, nodes int) (DeployReport, error) {
	if img.Format != FormatSIF {
		return DeployReport{}, fmt.Errorf("%w: Singularity deploys SIF images", ErrWrongFormat)
	}
	if nodes < 1 {
		return DeployReport{}, fmt.Errorf("container: deploy on %d nodes", nodes)
	}
	wire := img.CompressedSize()
	pull := c.RegistryRTT + units.Rate(c.RegistryBW).TimeFor(wire)
	// singularity build: decompress + squash, CPU bound at the login
	// node, then one write to the parallel filesystem.
	convert := convertRate.TimeFor(img.Size())
	stage := c.SharedFS.WriteTime(img.CompressedSize(), 1)
	// Per-node start: stat the SIF, SUID starter mounts it read-only.
	start := units.Seconds(nodes)*c.SharedFS.MetadataLatency + units.Seconds(nodes)*12*units.Millisecond
	return DeployReport{
		Runtime:     s.Name(),
		Image:       img.Ref(),
		Nodes:       nodes,
		WireSize:    wire,
		StoredSize:  img.CompressedSize(), // SIF stays compressed on disk
		PullTime:    pull,
		ConvertTime: convert,
		StageTime:   stage,
		StartTime:   start,
	}, nil
}

// ExecProfile implements Runtime.
func (s Singularity) ExecProfile(c *cluster.Cluster, img *Image) (ExecProfile, error) {
	if err := checkCompat(c, img); err != nil {
		return ExecProfile{}, err
	}
	if img.Format != FormatSIF {
		return ExecProfile{}, fmt.Errorf("%w: Singularity executes SIF images", ErrWrongFormat)
	}
	inter, path := interPath(c, img)
	return ExecProfile{
		RuntimeName:     s.Name(),
		IntraNode:       c.SharedMemTransport(), // host IPC namespace: shm works
		InterNode:       inter,
		ComputeDilation: 1.0,
		LaunchPerRank:   15 * units.Millisecond,
		FabricPath:      path,
	}, nil
}

// Shifter routes Docker images through an image gateway that flattens
// them to squashfs once per image; compute nodes loop-mount the result
// from the parallel filesystem. Like Singularity it keeps host network
// and IPC namespaces.
type Shifter struct {
	// Version documents the deployed release (16.08.3 on Lenox).
	Version string
}

// Name implements Runtime.
func (Shifter) Name() string { return "Shifter" }

// Available implements Runtime: the gateway is a site service; the
// study had it only where it had root to install it.
func (Shifter) Available(c *cluster.Cluster) error {
	if !c.AdminRights {
		return fmt.Errorf("%w: Shifter image gateway on %s", ErrNeedsRoot, c.Name)
	}
	return nil
}

// ImageFor implements Runtime: gateway conversion to squashfs.
func (Shifter) ImageFor(oci *Image) (*Image, error) { return ConvertToSquashFS(oci) }

// Deploy implements Runtime: the gateway pulls the OCI layers once,
// squashes them, writes the squashfs to the shared filesystem; nodes
// loop-mount it (metadata cost only).
func (sh Shifter) Deploy(c *cluster.Cluster, img *Image, nodes int) (DeployReport, error) {
	if err := sh.Available(c); err != nil {
		return DeployReport{}, err
	}
	if img.Format != FormatSquashFS {
		return DeployReport{}, fmt.Errorf("%w: Shifter deploys squashfs images", ErrWrongFormat)
	}
	if nodes < 1 {
		return DeployReport{}, fmt.Errorf("container: deploy on %d nodes", nodes)
	}
	wire := img.CompressedSize()
	pull := c.RegistryRTT + units.Rate(c.RegistryBW).TimeFor(wire)
	convert := convertRate.TimeFor(img.Size())
	stage := c.SharedFS.WriteTime(img.CompressedSize(), 1)
	start := units.Seconds(nodes)*c.SharedFS.MetadataLatency + units.Seconds(nodes)*20*units.Millisecond
	return DeployReport{
		Runtime:     sh.Name(),
		Image:       img.Ref(),
		Nodes:       nodes,
		WireSize:    wire,
		StoredSize:  img.CompressedSize(),
		PullTime:    pull,
		ConvertTime: convert,
		StageTime:   stage,
		StartTime:   start,
	}, nil
}

// ExecProfile implements Runtime.
func (sh Shifter) ExecProfile(c *cluster.Cluster, img *Image) (ExecProfile, error) {
	if err := sh.Available(c); err != nil {
		return ExecProfile{}, err
	}
	if err := checkCompat(c, img); err != nil {
		return ExecProfile{}, err
	}
	if img.Format != FormatSquashFS {
		return ExecProfile{}, fmt.Errorf("%w: Shifter executes squashfs images", ErrWrongFormat)
	}
	inter, path := interPath(c, img)
	return ExecProfile{
		RuntimeName:     sh.Name(),
		IntraNode:       c.SharedMemTransport(),
		InterNode:       inter,
		ComputeDilation: 1.0,
		LaunchPerRank:   22 * units.Millisecond,
		FabricPath:      path,
	}, nil
}

// convertRate is the squashing throughput of image conversion
// (decompress + mksquashfs, CPU bound on a login/gateway node).
var convertRate = 140 * units.MBps

// Runtimes returns the four runtimes in the paper's comparison order.
func Runtimes() []Runtime {
	return []Runtime{BareMetal{}, Docker{Version: "1.11.1"}, Singularity{Version: "2.4.5"}, Shifter{Version: "16.08.3"}}
}

// ByName finds a runtime by its display name.
func ByName(name string) (Runtime, error) {
	for _, rt := range Runtimes() {
		if rt.Name() == name {
			return rt, nil
		}
	}
	return nil, fmt.Errorf("container: unknown runtime %q", name)
}

// ByNameVersion finds a runtime by display name at an explicit
// version. The version is part of a cell's content identity, so
// callers reproducing a specific measurement (scenario specs) must be
// able to pin it; an empty version keeps the study default.
func ByNameVersion(name, version string) (Runtime, error) {
	rt, err := ByName(name)
	if err != nil || version == "" {
		return rt, err
	}
	switch rt.(type) {
	case BareMetal:
		return nil, fmt.Errorf("container: bare metal has no version")
	case Docker:
		return Docker{Version: version}, nil
	case Singularity:
		return Singularity{Version: version}, nil
	case Shifter:
		return Shifter{Version: version}, nil
	}
	return rt, nil
}
