package report

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/units"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "Name", "Value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta-long-name", 2.5)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Title", "Name", "Value", "alpha", "beta-long-name", "2.5", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// All rows share the same rendered width (alignment).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("x,y", `quote"me`)
	tb.AddRow("plain", 7)
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"quote""me"`) {
		t.Fatalf("quote cell not escaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
}

func TestSecondsFormat(t *testing.T) {
	if Seconds(1.23456*units.Second) != "1.235" {
		t.Fatalf("Seconds() = %q", Seconds(1.23456*units.Second))
	}
}

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:  "speedup",
		YLabel: "x",
		Series: []metrics.Series{
			{Label: "one", Points: []metrics.Point{{X: 4, T: 2}, {X: 8, T: 1}}},
		},
	}
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	for _, want := range []string{"speedup", "[0] one", "4", "8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Empty chart renders nothing and must not panic.
	empty := Chart{}
	sb.Reset()
	empty.Render(&sb)
	if sb.Len() != 0 {
		t.Fatal("empty chart produced output")
	}
}
