// Package report renders experiment results as aligned ASCII tables,
// simple ASCII line charts, and CSV — the textual equivalents of the
// paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
	"repro/internal/units"
)

// Table is a simple column-aligned text table.
type Table struct {
	// Title is printed above the table.
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len([]rune(c)) > width[i] {
				width[i] = len([]rune(c))
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, width[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.headers)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	fmt.Fprintln(w, strings.Join(out, ","))
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// Seconds formats a duration for table cells with fixed precision.
func Seconds(s units.Seconds) string { return fmt.Sprintf("%.3f", float64(s)) }

// Chart renders series as a crude ASCII line chart: one row per x
// value, one column block per series, plus a bar visualization.
type Chart struct {
	// Title is printed above the chart.
	Title string
	// YLabel names the plotted quantity.
	YLabel string
	// Series are the curves.
	Series []metrics.Series
	// Values overrides times with precomputed y values (e.g.
	// speedups); indexed [series][point]. Nil means plot seconds.
	Values [][]float64
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) {
	if len(c.Series) == 0 {
		return
	}
	fmt.Fprintf(w, "%s\n", c.Title)
	val := func(si, pi int) float64 {
		if c.Values != nil {
			return c.Values[si][pi]
		}
		return float64(c.Series[si].Points[pi].T)
	}
	maxV := 0.0
	for si, s := range c.Series {
		for pi := range s.Points {
			if v := val(si, pi); v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	// Legend.
	for si, s := range c.Series {
		fmt.Fprintf(w, "  [%d] %s\n", si, s.Label)
	}
	fmt.Fprintf(w, "  %-8s %s\n", "x", c.YLabel)
	for pi := range c.Series[0].Points {
		x := c.Series[0].Points[pi].X
		fmt.Fprintf(w, "  %-8d", x)
		for si := range c.Series {
			if pi >= len(c.Series[si].Points) {
				continue
			}
			v := val(si, pi)
			bar := int(v / maxV * 40)
			fmt.Fprintf(w, " [%d] %8.3f %s", si, v, strings.Repeat("*", bar))
			fmt.Fprintf(w, "\n  %-8s", "")
		}
		fmt.Fprintln(w)
	}
}
