package storage

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/vtime"
)

func fs() ParallelFS {
	return ParallelFS{
		Name:            "gpfs",
		AggregateBW:     10 * units.GBps,
		PerClientBW:     2 * units.GBps,
		MetadataLatency: units.Millisecond,
	}
}

func TestReadTimeSingleClient(t *testing.T) {
	f := fs()
	got := f.ReadTime(2*units.GB, 1)
	want := units.Millisecond + units.Second // 2GB at 2GB/s per-client cap
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Fatalf("read time %v, want %v", got, want)
	}
}

func TestReadTimeAggregateCap(t *testing.T) {
	f := fs()
	// 10 clients: fair share 1 GB/s < per-client 2 GB/s.
	got := f.ReadTime(1*units.GB, 10)
	want := units.Millisecond + units.Second
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Fatalf("contended read time %v, want %v", got, want)
	}
	// More clients can never make an individual read faster.
	if f.ReadTime(units.GB, 20) < f.ReadTime(units.GB, 2) {
		t.Fatal("contention made reads faster")
	}
}

func TestReadZeroClientsClamped(t *testing.T) {
	f := fs()
	if f.ReadTime(units.GB, 0) != f.ReadTime(units.GB, 1) {
		t.Fatal("0 clients should behave as 1")
	}
}

func TestWriteMirrorsRead(t *testing.T) {
	f := fs()
	if f.WriteTime(3*units.GB, 4) != f.ReadTime(3*units.GB, 4) {
		t.Fatal("write/read asymmetry unexpected for this model")
	}
}

func TestValidate(t *testing.T) {
	bad := ParallelFS{Name: "x"}
	if bad.Validate() == nil {
		t.Fatal("zero-bandwidth fs should fail validation")
	}
	d := LocalDisk{Name: "d"}
	if d.Validate() == nil {
		t.Fatal("zero-bandwidth disk should fail validation")
	}
	good := fs()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalDisk(t *testing.T) {
	d := LocalDisk{Name: "ssd", ReadBW: 500 * units.MBps, WriteBW: 250 * units.MBps}
	if got := d.ReadTime(500 * units.MB); math.Abs(float64(got-units.Second)) > 1e-9 {
		t.Fatalf("read %v", got)
	}
	if got := d.WriteTime(500 * units.MB); math.Abs(float64(got-2*units.Second)) > 1e-9 {
		t.Fatalf("write %v", got)
	}
}

func TestRegistryLinkSerializes(t *testing.T) {
	link := NewRegistryLink(100*units.MBps, 10*units.Millisecond)
	// Two sequential bookings must queue.
	end1 := link.PullAt(0, 100*units.MB) // 10ms RTT + 1s
	end2 := link.PullAt(0, 100*units.MB)
	if math.Abs(float64(end1)-1.010) > 1e-9 {
		t.Fatalf("first pull ends at %v", end1)
	}
	if end2 <= end1 {
		t.Fatalf("second pull (%v) did not queue behind first (%v)", end2, end1)
	}
	link.Reset()
	if got := link.PullAt(0, 100*units.MB); math.Abs(float64(got)-1.010) > 1e-9 {
		t.Fatalf("after reset, pull ends at %v", got)
	}
}

func TestRegistryLinkWithProc(t *testing.T) {
	link := NewRegistryLink(100*units.MBps, 0)
	s := vtime.NewScheduler(3)
	ends := make([]units.Seconds, 3)
	s.Run(func(p *vtime.Proc) {
		p.Sync()
		link.Pull(p, 100*units.MB)
		ends[p.ID] = p.Now()
	})
	for i, e := range ends {
		want := units.Seconds(i+1) * units.Second
		if math.Abs(float64(e-want)) > 1e-9 {
			t.Fatalf("proc %d finished at %v, want %v", i, e, want)
		}
	}
}
