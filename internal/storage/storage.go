// Package storage models the data stores that container deployment
// moves bytes through: a shared parallel filesystem (GPFS/Lustre
// class), node-local disks, and the external registry uplink.
//
// Deployment overhead — one of the paper's three §B.1 comparison
// metrics — is dominated by where image bytes live and how many times
// they cross which link, so these models are deliberately explicit
// about aggregate vs per-client bandwidth.
package storage

import (
	"fmt"

	"repro/internal/units"
	"repro/internal/vtime"
)

// ParallelFS is a shared cluster filesystem. Reads from many nodes
// contend for the aggregate backend bandwidth but are also capped
// per-client; metadata operations pay a fixed latency.
type ParallelFS struct {
	// Name identifies the filesystem in reports.
	Name string `json:"Name"`
	// AggregateBW is the backend bandwidth shared by all clients.
	AggregateBW units.Rate `json:"AggregateBW"`
	// PerClientBW caps what a single node can pull.
	PerClientBW units.Rate `json:"PerClientBW"`
	// MetadataLatency is the cost of an open/stat.
	MetadataLatency units.Seconds `json:"MetadataLatency"`
}

// Validate reports a misconfigured filesystem.
func (fs *ParallelFS) Validate() error {
	if fs.AggregateBW <= 0 || fs.PerClientBW <= 0 {
		return fmt.Errorf("storage: filesystem %q has no bandwidth", fs.Name)
	}
	if fs.MetadataLatency < 0 {
		return fmt.Errorf("storage: filesystem %q has negative metadata latency", fs.Name)
	}
	return nil
}

// ReadTime is the time for `clients` nodes to each read `size` bytes
// concurrently: per-client bandwidth capped by the fair share of the
// aggregate backend, plus one metadata operation.
func (fs *ParallelFS) ReadTime(size units.ByteSize, clients int) units.Seconds {
	if clients < 1 {
		clients = 1
	}
	bw := fs.PerClientBW
	share := units.Rate(float64(fs.AggregateBW) / float64(clients))
	if share < bw {
		bw = share
	}
	return fs.MetadataLatency + bw.TimeFor(size)
}

// WriteTime mirrors ReadTime; parallel filesystems in this study are
// roughly symmetric for large sequential IO.
func (fs *ParallelFS) WriteTime(size units.ByteSize, clients int) units.Seconds {
	return fs.ReadTime(size, clients)
}

// LocalDisk is a node-local drive used by Docker's storage driver.
type LocalDisk struct {
	// Name identifies the disk model in reports.
	Name string `json:"Name"`
	// ReadBW and WriteBW are sequential bandwidths.
	ReadBW  units.Rate `json:"ReadBW"`
	WriteBW units.Rate `json:"WriteBW"`
}

// Validate reports a misconfigured disk.
func (d *LocalDisk) Validate() error {
	if d.ReadBW <= 0 || d.WriteBW <= 0 {
		return fmt.Errorf("storage: disk %q has no bandwidth", d.Name)
	}
	return nil
}

// WriteTime is the time to persist size bytes locally.
func (d *LocalDisk) WriteTime(size units.ByteSize) units.Seconds {
	return d.WriteBW.TimeFor(size)
}

// ReadTime is the time to load size bytes locally.
func (d *LocalDisk) ReadTime(size units.ByteSize) units.Seconds {
	return d.ReadBW.TimeFor(size)
}

// RegistryLink is the shared uplink between the cluster and the image
// registry. All concurrent pulls serialize through it; the Resource
// tracks its occupancy in virtual time.
type RegistryLink struct {
	// Bandwidth is the uplink rate.
	Bandwidth units.Rate
	// RTT is the per-request round-trip (HTTP range request, auth).
	RTT units.Seconds
	// res orders concurrent transfers in virtual time.
	res vtime.Resource
}

// NewRegistryLink builds a link with the given rate and request RTT.
func NewRegistryLink(bw units.Rate, rtt units.Seconds) *RegistryLink {
	return &RegistryLink{Bandwidth: bw, RTT: rtt}
}

// Pull charges proc for transferring size bytes over the shared link:
// the proc waits for the link, holds it for the wire time, and pays the
// request RTT.
func (l *RegistryLink) Pull(p *vtime.Proc, size units.ByteSize) {
	p.Advance(l.RTT)
	l.res.Acquire(p, l.Bandwidth.TimeFor(size))
}

// PullAt books a transfer starting no earlier than start and returns
// its completion time, without touching a process clock.
func (l *RegistryLink) PullAt(start units.Seconds, size units.ByteSize) units.Seconds {
	return l.res.ReserveAt(start+l.RTT, l.Bandwidth.TimeFor(size))
}

// Reset clears link occupancy between independent experiments.
func (l *RegistryLink) Reset() {
	l.res = vtime.Resource{Name: l.res.Name}
}
