package krylov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// lap1d builds the SPD 1D Laplacian with Dirichlet ends.
func lap1d(n int) *linalg.CSR {
	var tr []linalg.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, linalg.Triplet{Row: i, Col: i, Val: 2})
		if i > 0 {
			tr = append(tr, linalg.Triplet{Row: i, Col: i - 1, Val: -1})
		}
		if i < n-1 {
			tr = append(tr, linalg.Triplet{Row: i, Col: i + 1, Val: -1})
		}
	}
	m, err := linalg.NewCSR(n, n, tr)
	if err != nil {
		panic(err)
	}
	return m
}

func residual(m *linalg.CSR, b, x []float64) float64 {
	r := make([]float64, len(b))
	m.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return linalg.Norm2(r) / (linalg.Norm2(b) + 1e-300)
}

func TestCGSolvesLaplacian(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100} {
		m := lap1d(n)
		b := make([]float64, n)
		for i := range b {
			b[i] = math.Sin(float64(i))
		}
		x := make([]float64, n)
		res, err := CG(CSROperator{M: m}, b, x, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: not converged after %d iters (res %v)", n, res.Iterations, res.Residual)
		}
		if r := residual(m, b, x); r > 1e-8 {
			t.Fatalf("n=%d: true residual %v", n, r)
		}
	}
}

func TestCGExactInNSteps(t *testing.T) {
	// CG on an n×n SPD system converges in at most n iterations
	// (exactly, in exact arithmetic; with a small tolerance here).
	n := 25
	m := lap1d(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	res, err := CG(CSROperator{M: m}, b, x, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > n+2 {
		t.Fatalf("CG took %d iterations on a %d×%d system", res.Iterations, n, n)
	}
}

func TestJacobiPreconditionerHelps(t *testing.T) {
	// A badly scaled diagonal (symmetric: D + L with unit couplings,
	// diagonally dominant, hence SPD): Jacobi should cut iterations.
	n := 200
	var tr []linalg.Triplet
	for i := 0; i < n; i++ {
		scale := 1.0 + 99*float64(i)/float64(n-1)
		tr = append(tr, linalg.Triplet{Row: i, Col: i, Val: 2 * scale})
		if i > 0 {
			tr = append(tr, linalg.Triplet{Row: i, Col: i - 1, Val: -1})
		}
		if i < n-1 {
			tr = append(tr, linalg.Triplet{Row: i, Col: i + 1, Val: -1})
		}
	}
	m, err := linalg.NewCSR(n, n, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(0) {
		t.Fatal("test matrix must be symmetric for CG")
	}
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range b {
		b[i] = rng.Float64()
	}
	plain := make([]float64, n)
	resPlain, err := CG(CSROperator{M: m}, b, plain, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	pre := make([]float64, n)
	resPre, err := CG(CSROperator{M: m}, b, pre, Options{
		Tol:     1e-8,
		Precond: JacobiPrecond(m.Diag()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resPlain.Converged || !resPre.Converged {
		t.Fatalf("convergence: plain %v, precond %v", resPlain.Converged, resPre.Converged)
	}
	if resPre.Iterations > resPlain.Iterations {
		t.Fatalf("Jacobi hurt: %d vs %d iterations", resPre.Iterations, resPlain.Iterations)
	}
}

func TestCGWarmStart(t *testing.T) {
	n := 50
	m := lap1d(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 3)
	}
	cold := make([]float64, n)
	resCold, err := CG(CSROperator{M: m}, b, cold, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Restart from the solution: should converge immediately.
	resWarm, err := CG(CSROperator{M: m}, b, cold, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if resWarm.Iterations > 2 {
		t.Fatalf("warm start took %d iterations (cold took %d)", resWarm.Iterations, resCold.Iterations)
	}
}

func TestCGCustomDot(t *testing.T) {
	// A custom dot that mimics a distributed reduction (sums in two
	// halves) must give the same answer.
	n := 64
	m := lap1d(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	calls := 0
	x := make([]float64, n)
	res, err := CG(CSROperator{M: m}, b, x, Options{
		Tol: 1e-10,
		Dot: func(a, c []float64) float64 {
			calls++
			return linalg.Dot(a[:n/2], c[:n/2]) + linalg.Dot(a[n/2:], c[n/2:])
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged with custom dot")
	}
	if calls == 0 {
		t.Fatal("custom dot never called")
	}
	if r := residual(m, b, x); r > 1e-8 {
		t.Fatalf("true residual %v", r)
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	m := lap1d(4)
	if _, err := CG(CSROperator{M: m}, make([]float64, 4), make([]float64, 3), Options{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestCGZeroRHS(t *testing.T) {
	m := lap1d(10)
	x := make([]float64, 10)
	res, err := CG(CSROperator{M: m}, make([]float64, 10), x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", res)
	}
}

func TestCGMaxIter(t *testing.T) {
	m := lap1d(400)
	b := make([]float64, 400)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, 400)
	res, err := CG(CSROperator{M: m}, b, x, Options{MaxIter: 3, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 3 {
		t.Fatalf("maxiter not honoured: %+v", res)
	}
}

// nonsym builds a nonsymmetric advection-diffusion-like matrix.
func nonsym(n int) *linalg.CSR {
	var tr []linalg.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, linalg.Triplet{Row: i, Col: i, Val: 3})
		if i > 0 {
			tr = append(tr, linalg.Triplet{Row: i, Col: i - 1, Val: -1.8})
		}
		if i < n-1 {
			tr = append(tr, linalg.Triplet{Row: i, Col: i + 1, Val: -0.6})
		}
	}
	m, err := linalg.NewCSR(n, n, tr)
	if err != nil {
		panic(err)
	}
	return m
}

func TestBiCGStabSolvesNonsymmetric(t *testing.T) {
	n := 120
	m := nonsym(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(i) / 3)
	}
	x := make([]float64, n)
	res, err := BiCGStab(CSROperator{M: m}, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("bicgstab did not converge: %+v", res)
	}
	if r := residual(m, b, x); r > 1e-8 {
		t.Fatalf("true residual %v", r)
	}
}

func TestBiCGStabWithPreconditioner(t *testing.T) {
	n := 120
	m := nonsym(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	res, err := BiCGStab(CSROperator{M: m}, b, x, Options{
		Tol:     1e-10,
		Precond: JacobiPrecond(m.Diag()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("preconditioned bicgstab did not converge: %+v", res)
	}
	if r := residual(m, b, x); r > 1e-8 {
		t.Fatalf("true residual %v", r)
	}
}

func TestOperatorFunc(t *testing.T) {
	// Identity via OperatorFunc: CG converges in one iteration.
	n := 8
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	x := make([]float64, n)
	res, err := CG(OperatorFunc(func(dst, src []float64) { copy(dst, src) }), b, x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 1 {
		t.Fatalf("identity solve: %+v", res)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-10 {
			t.Fatalf("x = %v", x)
		}
	}
}
