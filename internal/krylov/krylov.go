// Package krylov implements the iterative solvers of the Alya-like
// code: preconditioned conjugate gradients (the pressure Poisson
// workhorse) and BiCGStab (for the nonsymmetric momentum systems).
//
// Both solvers are written against two small interfaces so the same
// code runs sequentially (tests, reference solutions) and distributed
// (dot products become MPI allreduces, operator application includes a
// halo exchange).
package krylov

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Operator applies a linear operator: dst = A·src. Distributed
// implementations exchange halos before applying the local stencil.
type Operator interface {
	Apply(dst, src []float64)
}

// OperatorFunc adapts a function to the Operator interface.
type OperatorFunc func(dst, src []float64)

// Apply implements Operator.
func (f OperatorFunc) Apply(dst, src []float64) { f(dst, src) }

// CSROperator adapts a linalg.CSR matrix to the Operator interface.
type CSROperator struct{ M *linalg.CSR }

// Apply implements Operator.
func (o CSROperator) Apply(dst, src []float64) { o.M.MulVec(dst, src) }

// Options configures a solve.
type Options struct {
	// MaxIter caps iterations; 0 means 10·n.
	MaxIter int
	// Tol is the relative residual tolerance ‖r‖/‖b‖; 0 means 1e-8.
	Tol float64
	// Dot computes global inner products. Nil means the sequential
	// linalg.Dot; distributed callers install the allreduce version.
	Dot func(a, b []float64) float64
	// Precond applies the preconditioner: dst = M⁻¹·src. Nil means
	// identity.
	Precond func(dst, src []float64)
}

func (o Options) withDefaults(n int) Options {
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.Dot == nil {
		o.Dot = linalg.Dot
	}
	if o.Precond == nil {
		o.Precond = linalg.Copy
	}
	return o
}

// Result reports a solve's outcome.
type Result struct {
	// Iterations performed.
	Iterations int
	// Residual is the final relative residual.
	Residual float64
	// Converged reports whether Tol was reached within MaxIter.
	Converged bool
}

// JacobiPrecond builds a diagonal (Jacobi) preconditioner from the
// operator diagonal. Zero diagonal entries pass through unscaled.
func JacobiPrecond(diag []float64) func(dst, src []float64) {
	inv := make([]float64, len(diag))
	for i, d := range diag {
		if d != 0 {
			inv[i] = 1 / d
		} else {
			inv[i] = 1
		}
	}
	return func(dst, src []float64) {
		for i := range dst {
			dst[i] = inv[i] * src[i]
		}
	}
}

// CG solves A·x = b for symmetric positive (semi-)definite A with
// preconditioned conjugate gradients. x holds the initial guess on
// entry and the solution on return.
func CG(a Operator, b, x []float64, opts Options) (Result, error) {
	n := len(b)
	if len(x) != n {
		return Result{}, fmt.Errorf("krylov: cg dims b=%d x=%d", n, len(x))
	}
	o := opts.withDefaults(n)

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	// r = b - A·x
	a.Apply(ap, x)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	bnorm := math.Sqrt(o.Dot(b, b))
	if bnorm == 0 {
		bnorm = 1
	}
	o.Precond(z, r)
	copy(p, z)
	rz := o.Dot(r, z)

	res := math.Sqrt(o.Dot(r, r)) / bnorm
	if res <= o.Tol {
		return Result{Iterations: 0, Residual: res, Converged: true}, nil
	}
	for it := 1; it <= o.MaxIter; it++ {
		a.Apply(ap, p)
		pap := o.Dot(p, ap)
		if pap == 0 || math.IsNaN(pap) {
			return Result{Iterations: it, Residual: res, Converged: false},
				fmt.Errorf("krylov: cg breakdown, pᵀAp = %v at iteration %d", pap, it)
		}
		alpha := rz / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		res = math.Sqrt(o.Dot(r, r)) / bnorm
		if res <= o.Tol {
			return Result{Iterations: it, Residual: res, Converged: true}, nil
		}
		o.Precond(z, r)
		rzNew := o.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		linalg.Aypx(beta, z, p)
	}
	return Result{Iterations: o.MaxIter, Residual: res, Converged: false}, nil
}

// BiCGStab solves A·x = b for general (nonsymmetric) A.
func BiCGStab(a Operator, b, x []float64, opts Options) (Result, error) {
	n := len(b)
	if len(x) != n {
		return Result{}, fmt.Errorf("krylov: bicgstab dims b=%d x=%d", n, len(x))
	}
	o := opts.withDefaults(n)

	r := make([]float64, n)
	rhat := make([]float64, n)
	v := make([]float64, n)
	p := make([]float64, n)
	ph := make([]float64, n)
	s := make([]float64, n)
	sh := make([]float64, n)
	t := make([]float64, n)

	a.Apply(v, x)
	for i := range r {
		r[i] = b[i] - v[i]
	}
	copy(rhat, r)
	linalg.Fill(v, 0)

	bnorm := math.Sqrt(o.Dot(b, b))
	if bnorm == 0 {
		bnorm = 1
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	res := math.Sqrt(o.Dot(r, r)) / bnorm
	if res <= o.Tol {
		return Result{Iterations: 0, Residual: res, Converged: true}, nil
	}
	for it := 1; it <= o.MaxIter; it++ {
		rhoNew := o.Dot(rhat, r)
		if rhoNew == 0 {
			return Result{Iterations: it, Residual: res, Converged: false},
				fmt.Errorf("krylov: bicgstab breakdown, ρ = 0 at iteration %d", it)
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		o.Precond(ph, p)
		a.Apply(v, ph)
		den := o.Dot(rhat, v)
		if den == 0 {
			return Result{Iterations: it, Residual: res, Converged: false},
				fmt.Errorf("krylov: bicgstab breakdown, r̂ᵀv = 0 at iteration %d", it)
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if sn := math.Sqrt(o.Dot(s, s)) / bnorm; sn <= o.Tol {
			linalg.Axpy(alpha, ph, x)
			return Result{Iterations: it, Residual: sn, Converged: true}, nil
		}
		o.Precond(sh, s)
		a.Apply(t, sh)
		tt := o.Dot(t, t)
		if tt == 0 {
			return Result{Iterations: it, Residual: res, Converged: false},
				fmt.Errorf("krylov: bicgstab breakdown, tᵀt = 0 at iteration %d", it)
		}
		omega = o.Dot(t, s) / tt
		linalg.Axpy(alpha, ph, x)
		linalg.Axpy(omega, sh, x)
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		res = math.Sqrt(o.Dot(r, r)) / bnorm
		if res <= o.Tol {
			return Result{Iterations: it, Residual: res, Converged: true}, nil
		}
		if omega == 0 {
			return Result{Iterations: it, Residual: res, Converged: false},
				fmt.Errorf("krylov: bicgstab breakdown, ω = 0 at iteration %d", it)
		}
	}
	return Result{Iterations: o.MaxIter, Residual: res, Converged: false}, nil
}
