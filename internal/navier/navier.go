// Package navier implements the fluid half of the Alya-like workload:
// an incompressible Navier–Stokes solver (Chorin projection) for blood
// flow through an artery segment, on a collocated structured grid.
//
// The solver is written against field.Comm, so identical code runs
// sequentially and distributed over the simulated MPI; dot products in
// the pressure CG become global reductions and every stencil
// application is preceded by a halo exchange — the communication
// pattern whose scaling the paper measures.
package navier

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/krylov"
	"repro/internal/linalg"
	"repro/internal/mesh"
)

// Per-cell work of each solver phase: floating-point operations and
// memory traffic. These feed Comm.Charge here and the model-mode
// workload generator in the alya package, so the real and modelled
// executions charge identical compute costs.
const (
	// AssemblyFlopsPerCell covers the tentative-velocity update
	// (upwind advection + diffusion, three components) plus the
	// divergence right-hand side.
	AssemblyFlopsPerCell = 150
	// AssemblyBytesPerCell is the matching memory traffic.
	AssemblyBytesPerCell = 230
	// CGIterFlopsPerCell covers one CG iteration: the 7-point stencil
	// apply plus the BLAS-1 updates.
	CGIterFlopsPerCell = 30
	// CGIterBytesPerCell is the matching memory traffic (the stencil
	// is strongly memory bound).
	CGIterBytesPerCell = 130
	// ProjectionFlopsPerCell covers the velocity correction and the
	// step diagnostics.
	ProjectionFlopsPerCell = 80
	// ProjectionBytesPerCell is the matching memory traffic.
	ProjectionBytesPerCell = 190
)

// Params are the physical and numerical parameters of the fluid case.
type Params struct {
	// Nu is the kinematic viscosity (m²/s). Blood ≈ 3.3e-6.
	Nu float64 `json:"Nu"`
	// Rho is the density (kg/m³). Blood ≈ 1060.
	Rho float64 `json:"Rho"`
	// Dt is the time step (s).
	Dt float64 `json:"Dt"`
	// InletVelocity is the peak axial velocity at the inlet (m/s).
	InletVelocity float64 `json:"InletVelocity"`
	// CGTol and CGMaxIter control the pressure solve.
	CGTol     float64 `json:"CGTol"`
	CGMaxIter int     `json:"CGMaxIter"`
}

// DefaultParams returns a stable configuration for the artery cases.
func DefaultParams() Params {
	return Params{
		Nu:            3.3e-6,
		Rho:           1060,
		Dt:            1e-3,
		InletVelocity: 0.1,
		CGTol:         1e-6,
		CGMaxIter:     400,
	}
}

// Solver advances one subdomain of the fluid problem.
type Solver struct {
	// Part is the owned subdomain.
	Part mesh.Partition
	// P holds the parameters.
	P Params
	// Comm provides halos and reductions.
	Comm field.Comm

	// U, V, W are the velocity components; Pr the pressure.
	U, V, W, Pr *field.Field

	// wallVel is the FSI wall-motion coupling term: a radial wall
	// velocity the solid solver feeds back, applied at wall faces.
	wallVel float64

	// work fields
	us, vs, ws *field.Field
	rhs        []float64
	tmp        *field.Field

	hx, hy, hz float64
}

// StepStats reports one time step's outcome.
type StepStats struct {
	// CGIterations is the pressure-solve iteration count.
	CGIterations int
	// CGResidual is the final relative residual.
	CGResidual float64
	// MaxDivergence is the global max |∇·u| after projection.
	MaxDivergence float64
	// MaxVelocity is the global max velocity magnitude component.
	MaxVelocity float64
}

// NewSolver builds a solver for one partition.
func NewSolver(part mesh.Partition, p Params, comm field.Comm) (*Solver, error) {
	if p.Dt <= 0 || p.Rho <= 0 || p.Nu < 0 {
		return nil, fmt.Errorf("navier: bad parameters %+v", p)
	}
	s := &Solver{
		Part: part, P: p, Comm: comm,
		U: field.New(part), V: field.New(part), W: field.New(part), Pr: field.New(part),
		us: field.New(part), vs: field.New(part), ws: field.New(part),
		tmp: field.New(part),
		hx:  part.Grid.Mesh.HX, hy: part.Grid.Mesh.HY, hz: part.Grid.Mesh.HZ,
	}
	s.rhs = make([]float64, s.U.Interior())
	return s, nil
}

// SetWallVelocity installs the FSI coupling term (radial wall motion).
func (s *Solver) SetWallVelocity(v float64) { s.wallVel = v }

// inletProfile is the parabolic (Poiseuille) inlet profile at global
// cell (i, j): peak at the tube axis, zero at the wall.
func (s *Solver) inletProfile(gi, gj int) float64 {
	m := s.Part.Grid.Mesh
	cx := float64(m.NX) / 2
	cy := float64(m.NY) / 2
	dx := (float64(gi) + 0.5 - cx) / cx
	dy := (float64(gj) + 0.5 - cy) / cy
	r2 := dx*dx + dy*dy
	if r2 >= 1 {
		return 0
	}
	return s.P.InletVelocity * (1 - r2)
}

// boundary ghost-fill kinds for fillGhosts.
type bcKind int

const (
	bcVelU bcKind = iota // lateral no-slip, inlet 0, outlet zero-gradient
	bcVelV
	bcVelW // lateral no-slip, inlet Dirichlet profile, outlet zero-gradient
	bcPres // Neumann everywhere except Dirichlet 0 at outlet
)

// fillGhosts sets the physical-boundary ghost layers of f according to
// the BC kind. Partition-internal faces are left for Comm.Exchange.
func (s *Solver) fillGhosts(f *field.Field, kind bcKind) {
	p := s.Part
	nx, ny, nz := f.NX, f.NY, f.NZ

	// Lateral boundaries (vessel wall).
	if p.I0 == 0 {
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				s.wallGhost(f, kind, -1, j, k, 0, j, k)
			}
		}
	}
	if p.I1 == p.Grid.Mesh.NX {
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				s.wallGhost(f, kind, nx, j, k, nx-1, j, k)
			}
		}
	}
	if p.J0 == 0 {
		for k := 0; k < nz; k++ {
			for i := 0; i < nx; i++ {
				s.wallGhost(f, kind, i, -1, k, i, 0, k)
			}
		}
	}
	if p.J1 == p.Grid.Mesh.NY {
		for k := 0; k < nz; k++ {
			for i := 0; i < nx; i++ {
				s.wallGhost(f, kind, i, ny, k, i, ny-1, k)
			}
		}
	}

	// Inlet (global k == 0).
	if p.OnInlet() {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				in := f.At(i, j, 0)
				switch kind {
				case bcVelU, bcVelV:
					f.Set(i, j, -1, -in)
				case bcVelW:
					prof := s.inletProfile(p.I0+i, p.J0+j)
					f.Set(i, j, -1, 2*prof-in)
				case bcPres:
					f.Set(i, j, -1, in)
				}
			}
		}
	}
	// Outlet (global k == NZ).
	if p.OnOutlet() {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				in := f.At(i, j, nz-1)
				switch kind {
				case bcVelU, bcVelV, bcVelW:
					f.Set(i, j, nz, in) // zero gradient
				case bcPres:
					f.Set(i, j, nz, -in) // p = 0 at the outlet face
				}
			}
		}
	}
}

// wallGhost fills one lateral-wall ghost cell: no-slip for velocity
// (with the FSI wall-motion term), mirror for pressure.
func (s *Solver) wallGhost(f *field.Field, kind bcKind, gi, gj, gk, ii, ij, ik int) {
	in := f.At(ii, ij, ik)
	switch kind {
	case bcVelU, bcVelV, bcVelW:
		f.Set(gi, gj, gk, -in+2*s.wallVel)
	case bcPres:
		f.Set(gi, gj, gk, in)
	}
}

// syncVelocity fills BC ghosts and exchanges halos for a velocity set.
func (s *Solver) syncVelocity(u, v, w *field.Field) {
	s.fillGhosts(u, bcVelU)
	s.fillGhosts(v, bcVelV)
	s.fillGhosts(w, bcVelW)
	s.Comm.Exchange(u, v, w)
}

// Step advances the solution by one time step and returns its stats.
func (s *Solver) Step() (StepStats, error) {
	nx, ny, nz := s.U.NX, s.U.NY, s.U.NZ
	dt, nu := s.P.Dt, s.P.Nu

	// 1. Tentative velocity: u* = u + dt(ν∇²u − (u·∇)u).
	s.syncVelocity(s.U, s.V, s.W)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				au := s.advect(s.U, i, j, k)
				av := s.advect(s.V, i, j, k)
				aw := s.advect(s.W, i, j, k)
				lu := s.laplace(s.U, i, j, k)
				lv := s.laplace(s.V, i, j, k)
				lw := s.laplace(s.W, i, j, k)
				s.us.Set(i, j, k, s.U.At(i, j, k)+dt*(nu*lu-au))
				s.vs.Set(i, j, k, s.V.At(i, j, k)+dt*(nu*lv-av))
				s.ws.Set(i, j, k, s.W.At(i, j, k)+dt*(nu*lw-aw))
			}
		}
	}

	cells := float64(s.U.Interior())
	s.Comm.Charge(cells*AssemblyFlopsPerCell, cells*AssemblyBytesPerCell)

	// 2. Pressure Poisson: −∇²p = −(ρ/dt)∇·u*.
	s.syncVelocity(s.us, s.vs, s.ws)
	n := 0
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				s.rhs[n] = -(s.P.Rho / dt) * s.div(s.us, s.vs, s.ws, i, j, k)
				n++
			}
		}
	}
	x := make([]float64, len(s.rhs))
	s.Pr.CopyInterior(x) // warm start from the previous pressure
	res, err := krylov.CG(krylov.OperatorFunc(s.applyNegLaplacian), s.rhs, x, krylov.Options{
		MaxIter: s.P.CGMaxIter,
		Tol:     s.P.CGTol,
		Dot: func(a, b []float64) float64 {
			return s.Comm.AllSum(linalg.Dot(a, b))
		},
	})
	if err != nil {
		return StepStats{}, fmt.Errorf("navier: pressure solve: %w", err)
	}
	s.Pr.SetInterior(x)

	// 3. Projection: u = u* − (dt/ρ)∇p.
	s.fillGhosts(s.Pr, bcPres)
	s.Comm.Exchange(s.Pr)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				gx, gy, gz := s.grad(s.Pr, i, j, k)
				c := dt / s.P.Rho
				s.U.Set(i, j, k, s.us.At(i, j, k)-c*gx)
				s.V.Set(i, j, k, s.vs.At(i, j, k)-c*gy)
				s.W.Set(i, j, k, s.ws.At(i, j, k)-c*gz)
			}
		}
	}

	// 4. Diagnostics on the corrected field.
	s.syncVelocity(s.U, s.V, s.W)
	maxDiv, maxVel := 0.0, 0.0
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if d := math.Abs(s.div(s.U, s.V, s.W, i, j, k)); d > maxDiv {
					maxDiv = d
				}
				for _, v := range [3]float64{s.U.At(i, j, k), s.V.At(i, j, k), s.W.At(i, j, k)} {
					if a := math.Abs(v); a > maxVel {
						maxVel = a
					}
				}
			}
		}
	}
	s.Comm.Charge(cells*ProjectionFlopsPerCell, cells*ProjectionBytesPerCell)
	return StepStats{
		CGIterations:  res.Iterations,
		CGResidual:    res.Residual,
		MaxDivergence: s.Comm.AllMax(maxDiv),
		MaxVelocity:   s.Comm.AllMax(maxVel),
	}, nil
}

// applyNegLaplacian is the CG operator: dst = −∇²·src with the pressure
// boundary conditions (SPD thanks to the outlet Dirichlet condition).
func (s *Solver) applyNegLaplacian(dst, src []float64) {
	cells := float64(len(src))
	s.Comm.Charge(cells*CGIterFlopsPerCell, cells*CGIterBytesPerCell)
	s.tmp.SetInterior(src)
	s.fillGhosts(s.tmp, bcPres)
	s.Comm.Exchange(s.tmp)
	n := 0
	for k := 0; k < s.tmp.NZ; k++ {
		for j := 0; j < s.tmp.NY; j++ {
			for i := 0; i < s.tmp.NX; i++ {
				dst[n] = -s.laplace(s.tmp, i, j, k)
				n++
			}
		}
	}
}

// laplace is the 7-point Laplacian at (i, j, k), ghosts filled.
func (s *Solver) laplace(f *field.Field, i, j, k int) float64 {
	c := f.At(i, j, k)
	return (f.At(i-1, j, k)-2*c+f.At(i+1, j, k))/(s.hx*s.hx) +
		(f.At(i, j-1, k)-2*c+f.At(i, j+1, k))/(s.hy*s.hy) +
		(f.At(i, j, k-1)-2*c+f.At(i, j, k+1))/(s.hz*s.hz)
}

// grad is the central-difference gradient at (i, j, k).
func (s *Solver) grad(f *field.Field, i, j, k int) (gx, gy, gz float64) {
	gx = (f.At(i+1, j, k) - f.At(i-1, j, k)) / (2 * s.hx)
	gy = (f.At(i, j+1, k) - f.At(i, j-1, k)) / (2 * s.hy)
	gz = (f.At(i, j, k+1) - f.At(i, j, k-1)) / (2 * s.hz)
	return
}

// div is the central-difference divergence of (u, v, w) at (i, j, k).
func (s *Solver) div(u, v, w *field.Field, i, j, k int) float64 {
	return (u.At(i+1, j, k)-u.At(i-1, j, k))/(2*s.hx) +
		(v.At(i, j+1, k)-v.At(i, j-1, k))/(2*s.hy) +
		(w.At(i, j, k+1)-w.At(i, j, k-1))/(2*s.hz)
}

// advect is the first-order upwind convective term (u·∇)f at (i, j, k).
func (s *Solver) advect(f *field.Field, i, j, k int) float64 {
	u, v, w := s.U.At(i, j, k), s.V.At(i, j, k), s.W.At(i, j, k)
	var dfx, dfy, dfz float64
	if u >= 0 {
		dfx = (f.At(i, j, k) - f.At(i-1, j, k)) / s.hx
	} else {
		dfx = (f.At(i+1, j, k) - f.At(i, j, k)) / s.hx
	}
	if v >= 0 {
		dfy = (f.At(i, j, k) - f.At(i, j-1, k)) / s.hy
	} else {
		dfy = (f.At(i, j+1, k) - f.At(i, j, k)) / s.hy
	}
	if w >= 0 {
		dfz = (f.At(i, j, k) - f.At(i, j, k-1)) / s.hz
	} else {
		dfz = (f.At(i, j, k+1) - f.At(i, j, k)) / s.hz
	}
	return u*dfx + v*dfy + w*dfz
}

// WallPressure returns the mean pressure over this partition's wall
// cells — the traction datum the FSI coupler ships to the solid code.
// Returns 0 for interior partitions.
func (s *Solver) WallPressure() float64 {
	if !s.Part.OnWall() {
		return 0
	}
	nx, ny, nz := s.Pr.NX, s.Pr.NY, s.Pr.NZ
	sum, count := 0.0, 0
	if s.Part.I0 == 0 {
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				sum += s.Pr.At(0, j, k)
				count++
			}
		}
	}
	if s.Part.I1 == s.Part.Grid.Mesh.NX {
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				sum += s.Pr.At(nx-1, j, k)
				count++
			}
		}
	}
	if s.Part.J0 == 0 {
		for k := 0; k < nz; k++ {
			for i := 0; i < nx; i++ {
				sum += s.Pr.At(i, 0, k)
				count++
			}
		}
	}
	if s.Part.J1 == s.Part.Grid.Mesh.NY {
		for k := 0; k < nz; k++ {
			for i := 0; i < nx; i++ {
				sum += s.Pr.At(i, ny-1, k)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
