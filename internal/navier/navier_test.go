package navier

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/mesh"
)

func solver(t *testing.T, nx, ny, nz int, p Params) *Solver {
	t.Helper()
	m, err := mesh.NewMesh(nx, ny, nz, 1e-3, 1e-3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mesh.Decompose(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g.Part(0), p, field.SeqComm{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSolverValidates(t *testing.T) {
	m, _ := mesh.NewMesh(4, 4, 4, 1e-3, 1e-3, 1e-3)
	g, _ := mesh.Decompose(m, 1)
	bad := DefaultParams()
	bad.Dt = 0
	if _, err := NewSolver(g.Part(0), bad, field.SeqComm{}); err == nil {
		t.Fatal("zero dt accepted")
	}
	bad = DefaultParams()
	bad.Rho = -1
	if _, err := NewSolver(g.Part(0), bad, field.SeqComm{}); err == nil {
		t.Fatal("negative density accepted")
	}
}

func TestStepConvergesAndBoundsVelocity(t *testing.T) {
	p := DefaultParams()
	p.Dt = 2e-4
	s := solver(t, 10, 10, 14, p)
	var last StepStats
	for i := 0; i < 10; i++ {
		st, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.CGIterations <= 0 {
			t.Fatalf("step %d: no CG iterations", i)
		}
		if st.CGResidual > p.CGTol*10 {
			t.Fatalf("step %d: CG residual %v", i, st.CGResidual)
		}
		// The inlet drives at InletVelocity; the interior field must
		// stay bounded well below a blow-up.
		if st.MaxVelocity > 10*p.InletVelocity {
			t.Fatalf("step %d: velocity blow-up %v", i, st.MaxVelocity)
		}
		if math.IsNaN(st.MaxVelocity) || math.IsNaN(st.MaxDivergence) {
			t.Fatalf("step %d: NaN in diagnostics", i)
		}
		last = st
	}
	if last.MaxVelocity <= 0 {
		t.Fatal("flow never developed: zero velocity after 10 steps")
	}
}

func TestProjectionReducesDivergence(t *testing.T) {
	// Compare the post-projection divergence against the divergence
	// the tentative velocity field would have without the pressure
	// correction (solve with CG disabled via a huge tolerance).
	p := DefaultParams()
	p.Dt = 2e-4
	corrected := solver(t, 10, 10, 14, p)

	uncorrected := solver(t, 10, 10, 14, p)
	uncorrected.P.CGMaxIter = 1 // cripple the projection

	var divC, divU float64
	for i := 0; i < 5; i++ {
		st, err := corrected.Step()
		if err != nil {
			t.Fatal(err)
		}
		divC = st.MaxDivergence
		stu, err := uncorrected.Step()
		if err != nil {
			t.Fatal(err)
		}
		divU = stu.MaxDivergence
	}
	if divC >= divU {
		t.Fatalf("projection did not reduce divergence: corrected %v vs crippled %v", divC, divU)
	}
	if divC > 0.35*divU {
		t.Fatalf("projection too weak: corrected %v vs crippled %v", divC, divU)
	}
}

func TestFlowDevelopsDownstream(t *testing.T) {
	// After some steps the axial velocity near the axis must be
	// positive (flow entering at the inlet travels down the tube) and
	// larger at the axis than at the wall (Poiseuille-like shape).
	p := DefaultParams()
	p.Dt = 2e-4
	s := solver(t, 12, 12, 16, p)
	for i := 0; i < 30; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	axis := s.W.At(6, 6, 8)
	wall := s.W.At(0, 6, 8)
	if axis <= 0 {
		t.Fatalf("axial velocity at the axis is %v, want > 0", axis)
	}
	if axis <= math.Abs(wall) {
		t.Fatalf("no Poiseuille shape: axis %v, wall %v", axis, wall)
	}
}

func TestInletProfileParabolic(t *testing.T) {
	s := solver(t, 16, 16, 8, DefaultParams())
	center := s.inletProfile(8, 8)
	edge := s.inletProfile(0, 8)
	outside := s.inletProfile(0, 0) // corner: outside the circle
	if center <= 0 {
		t.Fatalf("center profile %v", center)
	}
	if center <= edge {
		t.Fatalf("profile not peaked: center %v edge %v", center, edge)
	}
	if outside != 0 {
		t.Fatalf("corner profile %v, want 0", outside)
	}
	if math.Abs(center-s.P.InletVelocity) > 0.02*s.P.InletVelocity {
		t.Fatalf("peak %v, want ≈ %v", center, s.P.InletVelocity)
	}
}

func TestLaplacianOperatorSymmetric(t *testing.T) {
	// The CG operator must be symmetric: x·(A y) == y·(A x) for
	// arbitrary x, y — this is what entitles us to use CG at all.
	s := solver(t, 5, 4, 6, DefaultParams())
	n := 5 * 4 * 6
	x := make([]float64, n)
	y := make([]float64, n)
	ax := make([]float64, n)
	ay := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(3*i) + 0.5)
		y[i] = math.Cos(float64(7*i) - 1.5)
	}
	s.applyNegLaplacian(ax, x)
	s.applyNegLaplacian(ay, y)
	var xay, yax float64
	for i := range x {
		xay += x[i] * ay[i]
		yax += y[i] * ax[i]
	}
	if math.Abs(xay-yax) > 1e-9*(math.Abs(xay)+1) {
		t.Fatalf("operator asymmetric: x·Ay=%v y·Ax=%v", xay, yax)
	}
}

func TestLaplacianOperatorPositive(t *testing.T) {
	// x·(A x) > 0 for x ≠ 0 (SPD via the outlet Dirichlet condition).
	s := solver(t, 5, 5, 5, DefaultParams())
	n := 125
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i*(trial+2)) + float64(trial))
		}
		ax := make([]float64, n)
		s.applyNegLaplacian(ax, x)
		var xax float64
		for i := range x {
			xax += x[i] * ax[i]
		}
		if xax <= 0 {
			t.Fatalf("trial %d: x·Ax = %v, not positive", trial, xax)
		}
	}
}

func TestWallPressureInteriorZero(t *testing.T) {
	m, _ := mesh.NewMesh(9, 9, 9, 1e-3, 1e-3, 1e-3)
	g, err := mesh.Decompose(m, 27) // 3×3×3: rank at (1,1,1) is interior
	if err != nil {
		t.Fatal(err)
	}
	interior := g.RankAt(1, 1, 1)
	s, err := NewSolver(g.Part(interior), DefaultParams(), field.SeqComm{})
	if err != nil {
		t.Fatal(err)
	}
	if wp := s.WallPressure(); wp != 0 {
		t.Fatalf("interior partition wall pressure %v", wp)
	}
}

func TestWallVelocityCouplingAffectsFlow(t *testing.T) {
	// Setting a wall velocity (the FSI feedback) must change the
	// solution relative to a rigid wall.
	p := DefaultParams()
	p.Dt = 2e-4
	rigid := solver(t, 8, 8, 10, p)
	moving := solver(t, 8, 8, 10, p)
	moving.SetWallVelocity(0.01)
	for i := 0; i < 3; i++ {
		if _, err := rigid.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := moving.Step(); err != nil {
			t.Fatal(err)
		}
	}
	diff := 0.0
	for i := range rigid.U.Data {
		diff += math.Abs(rigid.U.Data[i] - moving.U.Data[i])
	}
	if diff == 0 {
		t.Fatal("wall velocity had no effect on the flow")
	}
}

func TestStepDeterministic(t *testing.T) {
	p := DefaultParams()
	run := func() []float64 {
		s := solver(t, 8, 8, 10, p)
		for i := 0; i < 5; i++ {
			if _, err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float64, s.W.Interior())
		s.W.CopyInterior(out)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic solver at cell %d", i)
		}
	}
}
