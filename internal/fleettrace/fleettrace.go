// Package fleettrace reconstructs a distributed run's wall-clock
// timeline from the JSONL fleet journals its processes wrote
// (-fleetlog DIR; see internal/telemetry's FleetJournal). It merges
// journals from N processes, aligns their clocks using the
// request/response edges the trace/span headers correlate, and renders
// the result three ways: a Chrome Trace Event timeline (workers as
// tracks, leases as nested spans, wire ops as events), a per-worker
// wall-clock attribution table whose categories tile each worker's
// observed span exactly (the same contract internal/profile enforces
// for virtual time), and an A-vs-B diff between two runs.
//
// Everything here is a pure function of the journal bytes: given the
// same journals, every rendering is byte-deterministic regardless of
// file discovery order.
package fleettrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Proc is one process's journal after merging: its events in sequence
// order and the clock offset that maps its timestamps onto the
// reference clock.
type Proc struct {
	// Name is the journal's process identity.
	Name string `json:"name"`
	// Events holds the process's journal records, sorted by Seq.
	Events []telemetry.FleetEvent `json:"events"`
	// OffsetNs is added to this process's timestamps to express them
	// in the reference process's clock; Edges counts the matched
	// request/response pairs behind the estimate (0 means the process
	// keeps its own clock).
	OffsetNs int64 `json:"offset_ns"`
	Edges    int   `json:"edges"`
}

// Run is a merged fleet run.
type Run struct {
	// Procs is every process that journaled, sorted by name.
	Procs []Proc `json:"procs"`
	// Reference names the process whose clock anchors the timeline
	// (the one that served requests); "" when no server journal was
	// found and all clocks are taken as-is.
	Reference string `json:"reference,omitempty"`
	// SkippedLines counts undecodable journal lines (typically the
	// torn tail a SIGKILLed worker leaves behind).
	SkippedLines int `json:"skipped_lines,omitempty"`
}

// ReadDir merges every *.fleetlog.jsonl journal under dir.
func ReadDir(dir string) (*Run, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.fleetlog.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("fleettrace: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("fleettrace: no *.fleetlog.jsonl journals in %s", dir)
	}
	return ReadFiles(paths)
}

// ReadFiles merges the named journals into one aligned run. Events are
// grouped by their Proc field and ordered by Seq, so the result is
// independent of both path order and how events were split across
// files. Undecodable lines (a killed process's torn tail) are skipped
// and counted, never fatal.
func ReadFiles(paths []string) (*Run, error) {
	byProc := make(map[string][]telemetry.FleetEvent)
	skipped := 0
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("fleettrace: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var ev telemetry.FleetEvent
			if err := json.Unmarshal(line, &ev); err != nil || ev.Proc == "" {
				skipped++
				continue
			}
			byProc[ev.Proc] = append(byProc[ev.Proc], ev)
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("fleettrace: %s: %w", path, err)
		}
	}
	if len(byProc) == 0 {
		return nil, fmt.Errorf("fleettrace: journals held no events")
	}
	names := make([]string, 0, len(byProc))
	for name := range byProc {
		names = append(names, name)
	}
	sort.Strings(names)
	run := &Run{Procs: make([]Proc, 0, len(names)), SkippedLines: skipped}
	for _, name := range names {
		events := byProc[name]
		sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
		run.Procs = append(run.Procs, Proc{Name: name, Events: events})
	}
	align(run)
	return run, nil
}

// isServer reports whether a process's journal contains server-side
// request spans — the mark of the reference process.
func isServer(p *Proc) bool {
	for _, ev := range p.Events {
		if ev.Name == "serve" {
			return true
		}
	}
	return false
}

// wireCategory reports whether a span name is a wire operation for
// attribution. Everything that is not structure (lease), work
// (simulate), or pacing (backoff) rides the wire.
func wireCategory(name string) bool {
	switch name {
	case "lease", "simulate", "backoff", "serve", "requeue":
		return false
	}
	return true
}

// Summary is a one-line description for logs.
func (r *Run) Summary() string {
	events := 0
	for i := range r.Procs {
		events += len(r.Procs[i].Events)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d processes, %d events", len(r.Procs), events)
	if r.Reference != "" {
		fmt.Fprintf(&b, ", clocks aligned to %s", r.Reference)
	}
	if r.SkippedLines > 0 {
		fmt.Fprintf(&b, ", %d torn lines skipped", r.SkippedLines)
	}
	return b.String()
}
