package fleettrace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/report"
)

// Diff of two fleet runs: the per-worker attribution of A and B side by
// side. This is the regression question fleet tracing exists to answer
// — "run B converged slower; which worker's wall clock grew, and was it
// simulate, wire, backoff, or idle?" — asked of the journals alone, so
// it works on runs from different machines or days.

// AttribDiff is one process's attribution delta (B minus A). A process
// present in only one run carries that run's numbers and InA/InB marks
// the gap.
type AttribDiff struct {
	Proc     string            `json:"proc"`
	InA, InB bool              `json:"-"`
	A, B     WorkerAttribution `json:"-"`
}

// DiffRuns pairs the two runs' attributions by process name.
func DiffRuns(a, b *Run) ([]AttribDiff, error) {
	attrA, err := a.Attribution()
	if err != nil {
		return nil, fmt.Errorf("run A: %w", err)
	}
	attrB, err := b.Attribution()
	if err != nil {
		return nil, fmt.Errorf("run B: %w", err)
	}
	byName := make(map[string]*AttribDiff)
	var names []string
	for _, at := range attrA {
		byName[at.Proc] = &AttribDiff{Proc: at.Proc, InA: true, A: at}
		names = append(names, at.Proc)
	}
	for _, bt := range attrB {
		d, ok := byName[bt.Proc]
		if !ok {
			d = &AttribDiff{Proc: bt.Proc}
			byName[bt.Proc] = d
			names = append(names, bt.Proc)
		}
		d.InB, d.B = true, bt
	}
	sort.Strings(names)
	out := make([]AttribDiff, 0, len(names))
	for _, name := range names {
		out = append(out, *byName[name])
	}
	return out, nil
}

// RenderDiff writes the A/B attribution comparison.
func RenderDiff(w io.Writer, diffs []AttribDiff) {
	t := report.NewTable("Fleet wall-clock diff (B − A)",
		"process", "span A", "span B", "Δspan", "Δsimulate", "Δwire", "Δbackoff", "Δidle")
	for i := range diffs {
		d := &diffs[i]
		switch {
		case !d.InB:
			t.AddRow(d.Proc, ns(d.A.SpanNs), "absent", "", "", "", "", "")
		case !d.InA:
			t.AddRow(d.Proc, "absent", ns(d.B.SpanNs), "", "", "", "", "")
		default:
			t.AddRow(d.Proc, ns(d.A.SpanNs), ns(d.B.SpanNs),
				signedNs(d.B.SpanNs-d.A.SpanNs),
				signedNs(d.B.SimulateNs-d.A.SimulateNs),
				signedNs(d.B.WireNs-d.A.WireNs),
				signedNs(d.B.BackoffNs-d.A.BackoffNs),
				signedNs(d.B.IdleNs-d.A.IdleNs))
		}
	}
	t.Render(w)
}

// signedNs renders a delta with an explicit sign, so a shrink reads as
// a win at a glance.
func signedNs(v int64) string {
	if v >= 0 {
		return "+" + time.Duration(v).String()
	}
	return time.Duration(v).String()
}
