package fleettrace

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// Chrome Trace Event export of a merged fleet run: one pid per process
// (workers as tracks), leases and wire attempts as "X" complete spans
// nested by time containment, requeues and other points as "i"
// instants. Timestamps are reference-clock wall microseconds, rebased
// so the run starts at 0 — absolute wall time is journal detail, not
// timeline shape. chromeFleetTrace is registered in the repolint
// WireRoots; args are concrete structs so the exported bytes are fixed
// by field declaration order, exactly like internal/telemetry's cell
// traces.
type chromeFleetTrace struct {
	TraceEvents     []chromeFleetEvent  `json:"traceEvents"`
	DisplayTimeUnit string              `json:"displayTimeUnit"`
	OtherData       chromeFleetMetadata `json:"otherData"`
}

// chromeFleetMetadata summarises the merge for the trace viewer.
type chromeFleetMetadata struct {
	// Clock names the timestamp domain; always "wall".
	Clock string `json:"clock"`
	// Reference names the process whose clock anchors the timeline.
	Reference string `json:"reference,omitempty"`
	// Procs counts merged journals; SkippedLines their torn tails.
	Procs        int `json:"procs"`
	SkippedLines int `json:"skippedLines,omitempty"`
}

// chromeFleetEvent is one trace record ("X" span, "i" instant, "M"
// metadata).
type chromeFleetEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
	S    string  `json:"s,omitempty"` // instant scope: "p" = process
	ID   string  `json:"id,omitempty"`
}

// Per-kind argument payloads (concrete types for byte-determinism).
type (
	fleetNameArgs struct {
		Name string `json:"name"`
	}
	fleetSpanArgs struct {
		Span    string `json:"span,omitempty"`
		Parent  string `json:"parent,omitempty"`
		Trace   string `json:"trace,omitempty"`
		Outcome string `json:"outcome,omitempty"`
		Label   string `json:"label,omitempty"`
		Detail  string `json:"detail,omitempty"`
	}
)

// category buckets a journal event for the trace viewer's colouring.
func category(ev *telemetry.FleetEvent) string {
	switch {
	case ev.Name == "lease":
		return "lease"
	case ev.Name == "simulate":
		return "simulate"
	case ev.Name == "backoff":
		return "backoff"
	case ev.Name == "serve":
		return "serve"
	case ev.Kind == telemetry.FleetPoint:
		return "point"
	default:
		return "wire"
	}
}

// Chrome renders the run as Chrome Trace Event Format JSON: a pure
// function of the merged journals, byte-identical however they were
// discovered.
func (r *Run) Chrome() ([]byte, error) {
	base := r.baseNs()
	out := chromeFleetTrace{
		DisplayTimeUnit: "ms",
		OtherData: chromeFleetMetadata{
			Clock:        "wall",
			Reference:    r.Reference,
			Procs:        len(r.Procs),
			SkippedLines: r.SkippedLines,
		},
	}
	for pi := range r.Procs {
		p := &r.Procs[pi]
		out.TraceEvents = append(out.TraceEvents, chromeFleetEvent{
			Name: "process_name", Ph: "M", Pid: pi, Args: fleetNameArgs{Name: p.Name},
		})
		for i := range p.Events {
			ev := &p.Events[i]
			ts := float64(p.AlignNs(ev.StartNs)-base) / 1e3
			ce := chromeFleetEvent{
				Name: ev.Name, Cat: category(ev), Pid: pi,
				Ts: ts, ID: ev.Span,
				Args: fleetSpanArgs{
					Span: ev.Span, Parent: ev.Parent, Trace: ev.Trace,
					Outcome: ev.Outcome, Label: ev.Label, Detail: ev.Detail,
				},
			}
			if ev.Kind == telemetry.FleetSpan && ev.EndNs >= ev.StartNs {
				ce.Ph = "X"
				ce.Dur = float64(ev.EndNs-ev.StartNs) / 1e3
			} else {
				ce.Ph = "i"
				ce.S = "p"
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	// Chrome sorts tracks by pid, but within one track the viewer wants
	// events in time order; ties break by (pid, seq) so the ordering —
	// and the bytes — never depend on input order.
	sortFleetEvents(out.TraceEvents)
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("fleettrace: %w", err)
	}
	return append(data, '\n'), nil
}

// baseNs finds the earliest aligned timestamp across the run, the
// timeline's zero.
func (r *Run) baseNs() int64 {
	base := int64(0)
	first := true
	for pi := range r.Procs {
		p := &r.Procs[pi]
		for i := range p.Events {
			ts := p.AlignNs(p.Events[i].StartNs)
			if first || ts < base {
				base, first = ts, false
			}
		}
	}
	return base
}

// sortFleetEvents orders trace events deterministically: metadata
// first, then by (timestamp, pid, longer-span-first, name).
func sortFleetEvents(events []chromeFleetEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur // enclosing span before its children
		}
		return a.Name < b.Name
	})
}
