package fleettrace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// writeJournal marshals events (Proc/Seq already set) as JSONL into
// dir/<name>.fleetlog.jsonl and returns the path.
func writeJournal(t *testing.T, dir, name string, events []telemetry.FleetEvent) string {
	t.Helper()
	var buf bytes.Buffer
	for _, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(append(data, '\n'))
	}
	path := filepath.Join(dir, name+".fleetlog.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// span builds one span event.
func span(proc string, seq int64, name, id, parent string, start, end int64) telemetry.FleetEvent {
	return telemetry.FleetEvent{
		Proc: proc, Seq: seq, Kind: telemetry.FleetSpan, Name: name,
		Span: id, Parent: parent, StartNs: start, EndNs: end, Outcome: "ok",
	}
}

// alignFixture builds a coordinator journal and one worker journal
// whose clock runs `off` nanoseconds ahead of the coordinator's: three
// symmetric request/response edges (exact θ) plus one edge with a slow
// inbound leg (asymmetric — the median must shrug it off).
func alignFixture(off int64) (coord, worker []telemetry.FleetEvent) {
	mk := func(k int64, inDelay int64) {
		t0 := 1_000_000 + 10_000*k // client send, coordinator clock
		t1 := t0 + inDelay         // server receive
		t2 := t1 + 2_000           // server reply
		t3 := t2 + 500             // client receive (outbound delay 500)
		id := "w-a#" + string(rune('0'+k))
		worker = append(worker, span("w-a", k+1, "claim", id, "", t0+off, t3+off))
		coord = append(coord, span("coordinator", k+1, "serve",
			"coordinator#"+string(rune('0'+k)), id, t1, t2))
	}
	for k := int64(0); k < 3; k++ {
		mk(k, 500) // symmetric: in = out = 500 → θ = −off exactly
	}
	mk(3, 9_500) // slow inbound leg: θ biased by (9500−500)/2
	return coord, worker
}

func TestAlignRecoversClockOffset(t *testing.T) {
	const off = 5_000_000 // worker clock 5 ms ahead
	coord, worker := alignFixture(off)
	dir := t.TempDir()
	writeJournal(t, dir, "coordinator", coord)
	writeJournal(t, dir, "w-a", worker)
	run, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if run.Reference != "coordinator" {
		t.Fatalf("reference = %q, want coordinator", run.Reference)
	}
	var wa *Proc
	for i := range run.Procs {
		if run.Procs[i].Name == "w-a" {
			wa = &run.Procs[i]
		}
	}
	if wa == nil {
		t.Fatalf("worker journal lost in merge: %+v", run.Procs)
	}
	if wa.Edges != 4 {
		t.Fatalf("edges = %d, want 4", wa.Edges)
	}
	// Four θs: three exact (−off) and one biased by the asymmetric
	// inbound leg; the even-count median averages the central pair, both
	// −off, so the estimate is exact despite the outlier.
	if wa.OffsetNs != -off {
		t.Fatalf("offset = %d, want %d", wa.OffsetNs, int64(-off))
	}
	// AlignNs maps a worker timestamp back onto the coordinator clock.
	if got := wa.AlignNs(1_000_000 + off); got != 1_000_000 {
		t.Fatalf("AlignNs = %d, want 1000000", got)
	}
	// The coordinator keeps its own clock.
	for i := range run.Procs {
		if run.Procs[i].Name == "coordinator" && run.Procs[i].OffsetNs != 0 {
			t.Fatalf("reference clock shifted: %+v", run.Procs[i])
		}
	}
}

func TestAlignWithoutServerJournal(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, "w-a", []telemetry.FleetEvent{
		span("w-a", 1, "claim", "w-a#1", "", 100, 200),
	})
	run, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if run.Reference != "" || run.Procs[0].OffsetNs != 0 {
		t.Fatalf("clientless merge invented a reference: %+v", run)
	}
}

// TestAttributionTilesExactly charges a hand-built worker timeline and
// checks the four categories tile the observed span to the nanosecond,
// with overlap resolved by priority (backoff > wire > simulate).
func TestAttributionTilesExactly(t *testing.T) {
	events := []telemetry.FleetEvent{
		span("w-a", 1, "claim", "w-a#1", "", 0, 100),          // wire
		span("w-a", 2, "lease", "L1", "w-a#1", 100, 800),      // structure: charges nothing
		span("w-a", 3, "simulate", "w-a#2", "L1", 100, 500),   // simulate
		span("w-a", 4, "heartbeat", "w-a#3", "", 200, 250),    // wire inside simulate: wire wins
		span("w-a", 5, "backoff", "w-a#4", "w-a#5", 600, 700), // backoff
		span("w-a", 6, "store-put", "w-a#5", "", 700, 800),    // wire
	}
	run := &Run{Procs: []Proc{{Name: "w-a", Events: events}}}
	attrs, err := run.Attribution()
	if err != nil {
		t.Fatal(err)
	}
	a := attrs[0]
	want := WorkerAttribution{
		Proc: "w-a", SpanNs: 800,
		SimulateNs: 350, // [100,500] minus the heartbeat's [200,250]
		WireNs:     250, // [0,100] + [200,250] + [700,800]
		BackoffNs:  100, // [600,700]
		IdleNs:     100, // [500,600]
		Cells:      1, Requests: 3,
	}
	if a != want {
		t.Fatalf("attribution = %+v, want %+v", a, want)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	broken := a
	broken.IdleNs++
	if err := broken.Validate(); err == nil {
		t.Fatal("broken partition validated")
	}
}

// TestMergeByteDeterminism: the same journal bytes — discovered in any
// path order, even with one process's events split across files — must
// produce byte-identical Chrome traces and identical attributions.
func TestMergeByteDeterminism(t *testing.T) {
	coord, worker := alignFixture(3_000_000)
	dir := t.TempDir()
	p1 := writeJournal(t, dir, "coordinator", coord)
	p2 := writeJournal(t, dir, "w-a", worker[:2])
	// The rest of w-a's events land in a second file (a restarted
	// worker appending under a different name would look like this).
	p3 := writeJournal(t, dir, "w-a.rest", worker[2:])

	runA, err := ReadFiles([]string{p1, p2, p3})
	if err != nil {
		t.Fatal(err)
	}
	runB, err := ReadFiles([]string{p3, p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	chromeA, err := runA.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	chromeB, err := runB.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chromeA, chromeB) {
		t.Fatalf("Chrome trace depends on discovery order:\nA: %s\nB: %s", chromeA, chromeB)
	}
	var sb1, sb2 strings.Builder
	attrsA, err := runA.Attribution()
	if err != nil {
		t.Fatal(err)
	}
	attrsB, err := runB.Attribution()
	if err != nil {
		t.Fatal(err)
	}
	RenderAttribution(&sb1, attrsA)
	RenderAttribution(&sb2, attrsB)
	if sb1.String() != sb2.String() {
		t.Fatalf("attribution depends on discovery order:\n%s\n%s", sb1.String(), sb2.String())
	}
	// The trace is valid Chrome Trace Event JSON with both tracks named.
	var decoded map[string]any
	if err := json.Unmarshal(chromeA, &decoded); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	text := string(chromeA)
	for _, want := range []string{`"process_name"`, `"coordinator"`, `"w-a"`, `"displayTimeUnit":"ms"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("Chrome trace lacks %s:\n%s", want, text)
		}
	}
}

// TestTornTailSkipped: a SIGKILLed worker's torn last line is skipped
// and counted, never fatal.
func TestTornTailSkipped(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, "w-a", []telemetry.FleetEvent{
		span("w-a", 1, "claim", "w-a#1", "", 100, 200),
	})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"proc":"w-a","seq":2,"kind":"span","na`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	run, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if run.SkippedLines != 1 || len(run.Procs[0].Events) != 1 {
		t.Fatalf("torn tail mishandled: %+v", run)
	}
	if !strings.Contains(run.Summary(), "1 torn lines skipped") {
		t.Fatalf("summary hides the torn tail: %s", run.Summary())
	}
}

func TestReadDirErrors(t *testing.T) {
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir read as a run")
	}
}

// TestDiffRuns pairs attributions by name and marks one-sided procs.
func TestDiffRuns(t *testing.T) {
	mk := func(proc string, simEnd int64) *Run {
		return &Run{Procs: []Proc{{Name: proc, Events: []telemetry.FleetEvent{
			span(proc, 1, "claim", proc+"#1", "", 0, 100),
			span(proc, 2, "simulate", proc+"#2", "", 100, simEnd),
		}}}}
	}
	a, b := mk("w-a", 500), mk("w-a", 900)
	b.Procs = append(b.Procs, Proc{Name: "w-b", Events: []telemetry.FleetEvent{
		span("w-b", 1, "claim", "w-b#1", "", 0, 50),
	}})
	diffs, err := DiffRuns(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 || diffs[0].Proc != "w-a" || diffs[1].Proc != "w-b" {
		t.Fatalf("diffs = %+v", diffs)
	}
	if !diffs[0].InA || !diffs[0].InB || diffs[1].InA || !diffs[1].InB {
		t.Fatalf("presence marks wrong: %+v", diffs)
	}
	if delta := diffs[0].B.SimulateNs - diffs[0].A.SimulateNs; delta != 400 {
		t.Fatalf("Δsimulate = %d, want 400", delta)
	}
	var sb strings.Builder
	RenderDiff(&sb, diffs)
	for _, want := range []string{"+400", "absent", "w-a", "w-b"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("diff table lacks %q:\n%s", want, sb.String())
		}
	}
}
