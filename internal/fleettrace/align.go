package fleettrace

import (
	"sort"

	"repro/internal/telemetry"
)

// Clock alignment. Each process journals with its own wall clock;
// merging them raw would shear the timeline by whatever the hosts'
// clocks disagree by. The propagated span ids give us NTP's classic
// remedy for free: every client request attempt [c.Start, c.End] that
// the reference process served as [s.Start, s.End] (its "serve" span's
// Parent is the client attempt's span id) is one offset measurement
//
//	θ = ((s.Start − c.Start) + (s.End − c.End)) / 2
//
// — the server-minus-client clock offset, exact when the network delay
// is symmetric. We take the median θ over all of a process's edges,
// which shrugs off the odd slow request; what survives is any
// *asymmetric* delay (e.g. a chaos proxy delaying only one direction),
// which biases the offset by half the asymmetry. That bound is
// documented rather than fixed: journals record it via Edges so a
// reader can judge the estimate's support.

// align picks the reference process (the first, in name order, whose
// journal serves requests) and estimates every other process's clock
// offset against it from matched request/response edges.
func align(run *Run) {
	refIdx := -1
	for i := range run.Procs {
		if isServer(&run.Procs[i]) {
			refIdx = i
			break
		}
	}
	if refIdx < 0 {
		return
	}
	ref := &run.Procs[refIdx]
	run.Reference = ref.Name
	serveByParent := make(map[string]telemetry.FleetEvent)
	for _, ev := range ref.Events {
		if ev.Name == "serve" && ev.Parent != "" {
			serveByParent[ev.Parent] = ev
		}
	}
	for i := range run.Procs {
		if i == refIdx {
			continue
		}
		p := &run.Procs[i]
		var thetas []int64
		for _, ev := range p.Events {
			if ev.Kind != telemetry.FleetSpan || ev.Span == "" {
				continue
			}
			s, ok := serveByParent[ev.Span]
			if !ok || s.EndNs == 0 || ev.EndNs == 0 {
				continue
			}
			thetas = append(thetas, ((s.StartNs-ev.StartNs)+(s.EndNs-ev.EndNs))/2)
		}
		p.Edges = len(thetas)
		if len(thetas) > 0 {
			p.OffsetNs = median(thetas)
		}
	}
}

// median returns the middle value (mean of the central pair when even).
// Mutates its argument by sorting.
func median(v []int64) int64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// AlignNs maps one of this process's timestamps onto the reference
// clock.
func (p *Proc) AlignNs(ts int64) int64 { return ts + p.OffsetNs }
