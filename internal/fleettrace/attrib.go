package fleettrace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/report"
	"repro/internal/telemetry"
)

// Per-worker wall-clock attribution. Each process's observed span —
// [first event start, last event end] in its own clock — is partitioned
// into four categories by a boundary sweep over its journal spans:
//
//	simulate  running cells (a "simulate" span covers the instant)
//	backoff   waiting out a retry delay
//	wire      a request attempt in flight (claim, heartbeat, GET, PUT)
//	idle      none of the above — between leases, between claims
//
// Instants covered by several spans resolve by fixed priority
// (backoff > wire > simulate > idle): a backoff or wire wait inside a
// lease is wire time, not simulation. The four categories tile the
// observed span *exactly* — the same integer-nanosecond contract
// internal/profile enforces for virtual time — and Validate rechecks
// the sum, so a broken partition is an error, never a quietly wrong
// table.
//
// Category boundaries are per-process durations, so no clock alignment
// enters attribution: each worker is measured against its own clock.

// Attribution categories, in render order.
const (
	CatSimulate = "simulate"
	CatWire     = "wire"
	CatBackoff  = "backoff"
	CatIdle     = "idle"
)

// WorkerAttribution is one process's wall-clock partition (all values
// integer nanoseconds; the four categories sum to SpanNs exactly).
type WorkerAttribution struct {
	Proc       string `json:"proc"`
	SpanNs     int64  `json:"span_ns"`
	SimulateNs int64  `json:"simulate_ns"`
	WireNs     int64  `json:"wire_ns"`
	BackoffNs  int64  `json:"backoff_ns"`
	IdleNs     int64  `json:"idle_ns"`
	// Cells counts simulate spans; Requests wire attempt spans.
	Cells    int `json:"cells"`
	Requests int `json:"requests"`
}

// Validate rechecks the exact-tiling contract.
func (a *WorkerAttribution) Validate() error {
	sum := a.SimulateNs + a.WireNs + a.BackoffNs + a.IdleNs
	if sum != a.SpanNs {
		return fmt.Errorf("fleettrace: %s: categories sum to %d ns but the observed span is %d ns (broken partition)",
			a.Proc, sum, a.SpanNs)
	}
	return nil
}

// categoryOf buckets one span event for attribution, "" for events that
// carry no attributable interval (points, serve spans — the server's
// time is the client's wire wait, already counted client-side).
func categoryOf(ev *telemetry.FleetEvent) string {
	if ev.Kind != telemetry.FleetSpan || ev.EndNs < ev.StartNs {
		return ""
	}
	switch {
	case ev.Name == "simulate":
		return CatSimulate
	case ev.Name == "backoff":
		return CatBackoff
	case wireCategory(ev.Name):
		return CatWire
	}
	return ""
}

// priority resolves overlap: higher wins the instant.
func priority(cat string) int {
	switch cat {
	case CatBackoff:
		return 3
	case CatWire:
		return 2
	case CatSimulate:
		return 1
	}
	return 0
}

// Attribution partitions every process's observed wall-clock span.
// Processes whose journals hold only points (nothing to attribute) get
// a zero span.
func (r *Run) Attribution() ([]WorkerAttribution, error) {
	out := make([]WorkerAttribution, 0, len(r.Procs))
	for pi := range r.Procs {
		a, err := attributeProc(&r.Procs[pi])
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// attributeProc runs the boundary sweep for one process: collect every
// span boundary, then charge each elementary interval to the
// highest-priority category covering it.
func attributeProc(p *Proc) (WorkerAttribution, error) {
	a := WorkerAttribution{Proc: p.Name}
	type span struct {
		start, end int64
		cat        string
	}
	var spans []span
	first, last := int64(0), int64(0)
	seen := false
	for i := range p.Events {
		ev := &p.Events[i]
		end := ev.EndNs
		if ev.Kind != telemetry.FleetSpan || end < ev.StartNs {
			end = ev.StartNs
		}
		if !seen || ev.StartNs < first {
			first = ev.StartNs
		}
		if !seen || end > last {
			last = end
		}
		seen = true
		switch cat := categoryOf(ev); cat {
		case "":
		default:
			spans = append(spans, span{ev.StartNs, end, cat})
			if cat == CatSimulate {
				a.Cells++
			}
			if cat == CatWire {
				a.Requests++
			}
		}
	}
	if !seen {
		return a, nil
	}
	a.SpanNs = last - first
	bounds := make([]int64, 0, 2*len(spans)+2)
	bounds = append(bounds, first, last)
	for _, s := range spans {
		bounds = append(bounds, s.start, s.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo || hi <= first || lo >= last {
			continue
		}
		cat := CatIdle
		for _, s := range spans {
			if s.start <= lo && hi <= s.end && priority(s.cat) > priority(cat) {
				cat = s.cat
			}
		}
		d := hi - lo
		switch cat {
		case CatSimulate:
			a.SimulateNs += d
		case CatWire:
			a.WireNs += d
		case CatBackoff:
			a.BackoffNs += d
		default:
			a.IdleNs += d
		}
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a, nil
}

// RenderAttribution writes the per-worker table.
func RenderAttribution(w io.Writer, attrs []WorkerAttribution) {
	t := attribTable(attrs)
	t.Render(w)
}

// AttributionCSV writes the table as CSV.
func AttributionCSV(w io.Writer, attrs []WorkerAttribution) {
	attribTable(attrs).CSV(w)
}

func attribTable(attrs []WorkerAttribution) *report.Table {
	t := report.NewTable("Fleet wall-clock attribution",
		"process", "span", "simulate", "wire", "backoff", "idle", "cells", "requests")
	for i := range attrs {
		a := &attrs[i]
		t.AddRow(a.Proc, ns(a.SpanNs), ns(a.SimulateNs), ns(a.WireNs),
			ns(a.BackoffNs), ns(a.IdleNs), a.Cells, a.Requests)
	}
	return t
}

// ns renders integer nanoseconds as a duration string.
func ns(v int64) string { return time.Duration(v).String() }
