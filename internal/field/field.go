// Package field provides ghosted scalar fields over mesh partitions and
// the communication interface the distributed solvers are written
// against. The same solver code runs sequentially (SeqComm) and under
// the simulated MPI (the alya package installs an MPI-backed Comm).
package field

import (
	"fmt"

	"repro/internal/mesh"
)

// Field is a scalar field on one partition's cells plus a one-cell
// ghost layer on every side.
type Field struct {
	// NX, NY, NZ are the interior (owned) dimensions.
	NX, NY, NZ int
	// Data is laid out x-fastest over (NX+2)×(NY+2)×(NZ+2).
	Data []float64
}

// New allocates a zeroed field for a partition.
func New(p mesh.Partition) *Field {
	nx, ny, nz := p.Dims()
	return &Field{NX: nx, NY: ny, NZ: nz, Data: make([]float64, (nx+2)*(ny+2)*(nz+2))}
}

// Idx maps interior coordinates i∈[-1,NX], j∈[-1,NY], k∈[-1,NZ]
// (−1 and N are ghosts) to the flat index.
func (f *Field) Idx(i, j, k int) int {
	return (i + 1) + (f.NX+2)*((j+1)+(f.NY+2)*(k+1))
}

// At reads the value at (i, j, k), ghosts included.
func (f *Field) At(i, j, k int) float64 { return f.Data[f.Idx(i, j, k)] }

// Set writes the value at (i, j, k), ghosts included.
func (f *Field) Set(i, j, k int, v float64) { f.Data[f.Idx(i, j, k)] = v }

// Interior returns the owned-cell count.
func (f *Field) Interior() int { return f.NX * f.NY * f.NZ }

// CopyInterior flattens the owned cells into dst (len Interior()).
func (f *Field) CopyInterior(dst []float64) {
	if len(dst) != f.Interior() {
		panic(fmt.Sprintf("field: interior copy length %d != %d", len(dst), f.Interior()))
	}
	n := 0
	for k := 0; k < f.NZ; k++ {
		for j := 0; j < f.NY; j++ {
			for i := 0; i < f.NX; i++ {
				dst[n] = f.At(i, j, k)
				n++
			}
		}
	}
}

// SetInterior fills the owned cells from src (len Interior()).
func (f *Field) SetInterior(src []float64) {
	if len(src) != f.Interior() {
		panic(fmt.Sprintf("field: interior set length %d != %d", len(src), f.Interior()))
	}
	n := 0
	for k := 0; k < f.NZ; k++ {
		for j := 0; j < f.NY; j++ {
			for i := 0; i < f.NX; i++ {
				f.Set(i, j, k, src[n])
				n++
			}
		}
	}
}

// PackFace gathers the interior boundary layer adjacent to the given
// face into buf (length = face cell count) for sending to a neighbour.
func (f *Field) PackFace(face mesh.Axis, buf []float64) {
	n := 0
	switch face {
	case mesh.XMinus, mesh.XPlus:
		i := 0
		if face == mesh.XPlus {
			i = f.NX - 1
		}
		for k := 0; k < f.NZ; k++ {
			for j := 0; j < f.NY; j++ {
				buf[n] = f.At(i, j, k)
				n++
			}
		}
	case mesh.YMinus, mesh.YPlus:
		j := 0
		if face == mesh.YPlus {
			j = f.NY - 1
		}
		for k := 0; k < f.NZ; k++ {
			for i := 0; i < f.NX; i++ {
				buf[n] = f.At(i, j, k)
				n++
			}
		}
	case mesh.ZMinus, mesh.ZPlus:
		k := 0
		if face == mesh.ZPlus {
			k = f.NZ - 1
		}
		for j := 0; j < f.NY; j++ {
			for i := 0; i < f.NX; i++ {
				buf[n] = f.At(i, j, k)
				n++
			}
		}
	}
	if n != len(buf) {
		panic(fmt.Sprintf("field: pack face %v filled %d of %d", face, n, len(buf)))
	}
}

// UnpackGhost scatters buf into the ghost layer on the given face.
func (f *Field) UnpackGhost(face mesh.Axis, buf []float64) {
	n := 0
	switch face {
	case mesh.XMinus, mesh.XPlus:
		i := -1
		if face == mesh.XPlus {
			i = f.NX
		}
		for k := 0; k < f.NZ; k++ {
			for j := 0; j < f.NY; j++ {
				f.Set(i, j, k, buf[n])
				n++
			}
		}
	case mesh.YMinus, mesh.YPlus:
		j := -1
		if face == mesh.YPlus {
			j = f.NY
		}
		for k := 0; k < f.NZ; k++ {
			for i := 0; i < f.NX; i++ {
				f.Set(i, j, k, buf[n])
				n++
			}
		}
	case mesh.ZMinus, mesh.ZPlus:
		k := -1
		if face == mesh.ZPlus {
			k = f.NZ
		}
		for j := 0; j < f.NY; j++ {
			for i := 0; i < f.NX; i++ {
				f.Set(i, j, k, buf[n])
				n++
			}
		}
	}
	if n != len(buf) {
		panic(fmt.Sprintf("field: unpack face %v consumed %d of %d", face, n, len(buf)))
	}
}

// FaceCells returns the ghost-face cell count for the given direction.
func (f *Field) FaceCells(face mesh.Axis) int {
	switch face {
	case mesh.XMinus, mesh.XPlus:
		return f.NY * f.NZ
	case mesh.YMinus, mesh.YPlus:
		return f.NX * f.NZ
	default:
		return f.NX * f.NY
	}
}

// Comm is the communication the distributed solvers need: halo
// exchanges and global sums. Implementations must fill ghost layers on
// partition-internal faces and leave physical-boundary ghosts alone
// (boundary conditions own those).
//
// Charge lets the solvers report their computational work at the point
// in the algorithm where it happens, so a simulating Comm can advance
// virtual time in the right interleaving with the communication. The
// sequential Comm ignores it.
type Comm interface {
	// Exchange swaps halo layers of all fields with face neighbours.
	Exchange(fields ...*Field)
	// AllSum globally sums v across ranks.
	AllSum(v float64) float64
	// AllMax globally maximizes v across ranks.
	AllMax(v float64) float64
	// Charge accounts flops of compute and bytes of memory traffic
	// performed locally since the last communication point.
	Charge(flops, bytes float64)
}

// SeqComm is the single-domain Comm: no neighbours, identity sums.
type SeqComm struct{}

// Exchange implements Comm as a no-op.
func (SeqComm) Exchange(...*Field) {}

// AllSum implements Comm as identity.
func (SeqComm) AllSum(v float64) float64 { return v }

// AllMax implements Comm as identity.
func (SeqComm) AllMax(v float64) float64 { return v }

// Charge implements Comm as a no-op.
func (SeqComm) Charge(flops, bytes float64) {}
