package field

import (
	"testing"

	"repro/internal/mesh"
)

func part(t *testing.T, nx, ny, nz int) mesh.Partition {
	t.Helper()
	m, err := mesh.NewMesh(nx, ny, nz, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mesh.Decompose(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g.Part(0)
}

func TestFieldIndexing(t *testing.T) {
	f := New(part(t, 3, 4, 5))
	if f.Interior() != 60 {
		t.Fatalf("interior = %d", f.Interior())
	}
	if len(f.Data) != 5*6*7 {
		t.Fatalf("storage = %d", len(f.Data))
	}
	// Every (i,j,k) in the ghosted range maps to a distinct slot.
	seen := make(map[int]bool)
	for k := -1; k <= 5; k++ {
		for j := -1; j <= 4; j++ {
			for i := -1; i <= 3; i++ {
				idx := f.Idx(i, j, k)
				if idx < 0 || idx >= len(f.Data) || seen[idx] {
					t.Fatalf("bad index %d at (%d,%d,%d)", idx, i, j, k)
				}
				seen[idx] = true
			}
		}
	}
}

func TestInteriorRoundTrip(t *testing.T) {
	f := New(part(t, 3, 3, 3))
	src := make([]float64, 27)
	for i := range src {
		src[i] = float64(i) + 0.5
	}
	f.SetInterior(src)
	dst := make([]float64, 27)
	f.CopyInterior(dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip lost element %d: %v != %v", i, dst[i], src[i])
		}
	}
	// Ghosts must remain zero.
	if f.At(-1, 0, 0) != 0 || f.At(3, 2, 2) != 0 {
		t.Fatal("interior set leaked into ghosts")
	}
}

func TestPackUnpackAllFaces(t *testing.T) {
	faces := []mesh.Axis{mesh.XMinus, mesh.XPlus, mesh.YMinus, mesh.YPlus, mesh.ZMinus, mesh.ZPlus}
	f := New(part(t, 3, 4, 5))
	for k := 0; k < 5; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 3; i++ {
				f.Set(i, j, k, float64(100*i+10*j+k))
			}
		}
	}
	for _, face := range faces {
		n := f.FaceCells(face)
		buf := make([]float64, n)
		f.PackFace(face, buf)
		// Unpack into a second field's ghost layer on the opposite
		// side and verify against the original boundary layer — the
		// halo exchange invariant.
		g := New(part(t, 3, 4, 5))
		g.UnpackGhost(face.Opposite(), buf)
		checkGhostMatchesBoundary(t, f, g, face)
	}
}

// checkGhostMatchesBoundary verifies g's ghost layer on face.Opposite()
// equals f's interior boundary layer adjacent to face.
func checkGhostMatchesBoundary(t *testing.T, f, g *Field, face mesh.Axis) {
	t.Helper()
	get := func(fl *Field, i, j, k int) float64 { return fl.At(i, j, k) }
	switch face {
	case mesh.XMinus, mesh.XPlus:
		iSrc, iDst := 0, f.NX
		if face == mesh.XPlus {
			iSrc, iDst = f.NX-1, -1
		}
		for k := 0; k < f.NZ; k++ {
			for j := 0; j < f.NY; j++ {
				if get(f, iSrc, j, k) != get(g, iDst, j, k) {
					t.Fatalf("face %v: mismatch at (%d,%d)", face, j, k)
				}
			}
		}
	case mesh.YMinus, mesh.YPlus:
		jSrc, jDst := 0, f.NY
		if face == mesh.YPlus {
			jSrc, jDst = f.NY-1, -1
		}
		for k := 0; k < f.NZ; k++ {
			for i := 0; i < f.NX; i++ {
				if get(f, i, jSrc, k) != get(g, i, jDst, k) {
					t.Fatalf("face %v: mismatch at (%d,%d)", face, i, k)
				}
			}
		}
	default:
		kSrc, kDst := 0, f.NZ
		if face == mesh.ZPlus {
			kSrc, kDst = f.NZ-1, -1
		}
		for j := 0; j < f.NY; j++ {
			for i := 0; i < f.NX; i++ {
				if get(f, i, j, kSrc) != get(g, i, j, kDst) {
					t.Fatalf("face %v: mismatch at (%d,%d)", face, i, j)
				}
			}
		}
	}
}

func TestFaceCells(t *testing.T) {
	f := New(part(t, 3, 4, 5))
	if f.FaceCells(mesh.XMinus) != 20 || f.FaceCells(mesh.YPlus) != 15 || f.FaceCells(mesh.ZMinus) != 12 {
		t.Fatalf("face cells: x=%d y=%d z=%d",
			f.FaceCells(mesh.XMinus), f.FaceCells(mesh.YPlus), f.FaceCells(mesh.ZMinus))
	}
}

func TestPackWrongSizePanics(t *testing.T) {
	f := New(part(t, 3, 3, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong buffer size should panic")
		}
	}()
	f.PackFace(mesh.XMinus, make([]float64, 5))
}

func TestSeqComm(t *testing.T) {
	var c SeqComm
	c.Exchange() // no-op
	if c.AllSum(3.5) != 3.5 || c.AllMax(-2) != -2 {
		t.Fatal("SeqComm reductions must be identity")
	}
	c.Charge(1e9, 1e9) // no-op, must not panic
}
