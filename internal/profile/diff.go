package profile

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/report"
	"repro/internal/units"
)

// DiffRow is one attribution line of an A-vs-B comparison, in
// per-rank-mean seconds so rows are comparable to the makespan delta.
type DiffRow struct {
	Name    string        `json:"name"`
	A       units.Seconds `json:"a"`
	B       units.Seconds `json:"b"`
	Delta   units.Seconds `json:"delta"`
	IsPhase bool          `json:"isPhase"`
}

// DiffReport attributes the makespan delta between two cells (B − A)
// to attribution categories and to named collective phases. It is a
// wire type for `analyze -diff` JSON output.
type DiffReport struct {
	ALabel     string        `json:"aLabel"`
	BLabel     string        `json:"bLabel"`
	AMakespan  units.Seconds `json:"aMakespan"`
	BMakespan  units.Seconds `json:"bMakespan"`
	Delta      units.Seconds `json:"delta"`
	Categories []DiffRow     `json:"categories"`
	Phases     []DiffRow     `json:"phases"`
}

// Diff compares two cell profiles. Categories come from the
// per-rank-mean breakdowns; phases from the per-collective span totals
// (union of names, per-rank mean), so a runtime that slows one
// collective shows up as that collective's row.
func Diff(a, b *CellProfile) *DiffReport {
	d := &DiffReport{
		ALabel: a.Label, BLabel: b.Label,
		AMakespan: a.Makespan, BMakespan: b.Makespan,
		Delta: b.Makespan - a.Makespan,
	}
	an, bn := units.Seconds(a.Ranks), units.Seconds(b.Ranks)
	cat := func(name string, av, bv units.Seconds) {
		av, bv = av/an, bv/bn
		d.Categories = append(d.Categories, DiffRow{Name: name, A: av, B: bv, Delta: bv - av})
	}
	cat("compute", a.Totals.Compute, b.Totals.Compute)
	cat("p2pWait", a.Totals.P2PWait, b.Totals.P2PWait)
	cat("collectiveWait", a.Totals.CollectiveWait, b.Totals.CollectiveWait)
	cat("resourceWait", a.Totals.ResourceWait, b.Totals.ResourceWait)

	phase := func(p *CellProfile, name string) units.Seconds {
		for _, ph := range p.Phases {
			if ph.Name == name {
				return ph.Seconds
			}
		}
		return 0
	}
	names := map[string]bool{}
	for _, ph := range a.Phases {
		names[ph.Name] = true
	}
	for _, ph := range b.Phases {
		names[ph.Name] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		av, bv := phase(a, n)/an, phase(b, n)/bn
		d.Phases = append(d.Phases, DiffRow{Name: n, A: av, B: bv, Delta: bv - av, IsPhase: true})
	}
	return d
}

// DiffText renders the comparison: the makespan delta, then the
// category and phase rows that explain it.
func DiffText(w io.Writer, d *DiffReport) {
	fmt.Fprintf(w, "A = %s (makespan %s)\nB = %s (makespan %s)\ndelta (B-A) = %s (%s)\n",
		d.ALabel, report.Seconds(d.AMakespan), d.BLabel, report.Seconds(d.BMakespan),
		report.Seconds(d.Delta), pct(d.Delta, d.AMakespan))
	t := report.NewTable("Attribution of the delta (per-rank mean seconds)",
		"where", "A", "B", "delta", "share")
	for _, row := range d.Categories {
		t.AddRow(row.Name, report.Seconds(row.A), report.Seconds(row.B),
			report.Seconds(row.Delta), share(row.Delta, d.Delta))
	}
	t.Render(w)
	if len(d.Phases) == 0 {
		return
	}
	t = report.NewTable("By collective phase (per-rank mean seconds)",
		"collective", "A", "B", "delta", "share")
	for _, row := range d.Phases {
		t.AddRow(row.Name, report.Seconds(row.A), report.Seconds(row.B),
			report.Seconds(row.Delta), share(row.Delta, d.Delta))
	}
	t.Render(w)
}

// share renders part as a percentage of the (possibly negative)
// makespan delta; "-" when the delta is zero.
func share(part, delta units.Seconds) string {
	if delta == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(delta))
}
