package profile

import (
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/units"
)

// pct renders part as a percentage of whole.
func pct(part, whole units.Seconds) string {
	if whole <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// Summary renders the one-line-per-cell attribution table: where each
// cell's virtual time went, as per-rank-mean seconds and percentages.
func Summary(w io.Writer, ps []*CellProfile) {
	t := report.NewTable("Time attribution (per-rank mean seconds)",
		"cell", "ranks", "makespan", "compute", "p2p", "collective", "resource", "comm%", "path-comm%")
	for _, p := range ps {
		n := units.Seconds(p.Ranks)
		wait := p.Totals.P2PWait + p.Totals.CollectiveWait + p.Totals.ResourceWait
		t.AddRow(p.Label, p.Ranks, report.Seconds(p.Makespan),
			report.Seconds(p.Totals.Compute/n),
			report.Seconds(p.Totals.P2PWait/n),
			report.Seconds(p.Totals.CollectiveWait/n),
			report.Seconds(p.Totals.ResourceWait/n),
			pct(wait, p.Totals.Total),
			pct(p.Path.Comm+p.Path.Resource, p.Makespan))
	}
	t.Render(w)
}

// RankTable renders one cell's per-rank breakdown.
func RankTable(w io.Writer, p *CellProfile) {
	t := report.NewTable(fmt.Sprintf("%s — per-rank attribution (seconds)", p.Label),
		"rank", "total", "compute", "p2p", "collective", "resource", "wait%")
	for id, b := range p.PerRank {
		t.AddRow(id, report.Seconds(b.Total), report.Seconds(b.Compute),
			report.Seconds(b.P2PWait), report.Seconds(b.CollectiveWait), report.Seconds(b.ResourceWait),
			pct(b.P2PWait+b.CollectiveWait+b.ResourceWait, b.Total))
	}
	t.Render(w)
}

// PhaseTable renders one cell's per-collective totals.
func PhaseTable(w io.Writer, p *CellProfile) {
	if len(p.Phases) == 0 {
		return
	}
	t := report.NewTable(fmt.Sprintf("%s — collectives (seconds over all ranks)", p.Label),
		"collective", "spans", "time", "blocked", "blocked%")
	for _, ph := range p.Phases {
		t.AddRow(ph.Name, ph.Count, report.Seconds(ph.Seconds), report.Seconds(ph.Wait),
			pct(ph.Wait, ph.Seconds))
	}
	t.Render(w)
}

// PathText renders the critical path: composition, then the longest
// segments (top bounds the listing; the full chain lives in the JSON).
func PathText(w io.Writer, p *CellProfile, top int) {
	fmt.Fprintf(w, "%s — critical path (length %s = makespan)\n",
		p.Label, report.Seconds(p.Makespan))
	fmt.Fprintf(w, "  compute %s (%s)  comm %s (%s)  resource %s (%s)  hops %d  segments %d\n",
		report.Seconds(p.Path.Compute), pct(p.Path.Compute, p.Makespan),
		report.Seconds(p.Path.Comm), pct(p.Path.Comm, p.Makespan),
		report.Seconds(p.Path.Resource), pct(p.Path.Resource, p.Makespan),
		p.Path.Hops, len(p.Path.Segments))
	idx := longestSegments(p.Path.Segments, top)
	if len(idx) == 0 {
		return
	}
	t := report.NewTable("  longest segments",
		"#", "rank", "kind", "from", "to", "dur", "slack", "detail")
	for _, i := range idx {
		s := p.Path.Segments[i]
		slack := ""
		if s.Kind == "comm" && s.Slack > 0 {
			slack = report.Seconds(s.Slack)
		}
		t.AddRow(i, s.Rank, s.Kind, report.Seconds(s.From), report.Seconds(s.To),
			report.Seconds(s.To-s.From), slack, s.Label)
	}
	t.Render(w)
}

// longestSegments returns the indices of the top longest segments, in
// chronological order (deterministic: duration ties break by index).
func longestSegments(segs []PathSegment, top int) []int {
	if top <= 0 || top > len(segs) {
		top = len(segs)
	}
	idx := make([]int, len(segs))
	for i := range idx {
		idx[i] = i
	}
	// Selection by (duration desc, index asc), then restore order.
	for i := 0; i < top; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			di := segs[idx[best]].To - segs[idx[best]].From
			dj := segs[idx[j]].To - segs[idx[j]].From
			if dj > di || (dj == di && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	idx = idx[:top]
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if idx[j] < idx[i] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	return idx
}

// AttributionCSV writes every cell's per-rank breakdown as CSV.
func AttributionCSV(w io.Writer, ps []*CellProfile) {
	t := report.NewTable("", "cell", "key", "rank", "total", "compute", "p2p_wait", "collective_wait", "resource_wait")
	for _, p := range ps {
		for id, b := range p.PerRank {
			t.AddRow(p.Label, p.Key, id, report.Seconds(b.Total), report.Seconds(b.Compute),
				report.Seconds(b.P2PWait), report.Seconds(b.CollectiveWait), report.Seconds(b.ResourceWait))
		}
	}
	t.CSV(w)
}

// PhasesCSV writes every cell's per-collective totals as CSV.
func PhasesCSV(w io.Writer, ps []*CellProfile) {
	t := report.NewTable("", "cell", "key", "collective", "spans", "seconds", "blocked")
	for _, p := range ps {
		for _, ph := range p.Phases {
			t.AddRow(p.Label, p.Key, ph.Name, ph.Count, report.Seconds(ph.Seconds), report.Seconds(ph.Wait))
		}
	}
	t.CSV(w)
}

// FoldedText writes one cell's folded stacks ("frame;frame weight"
// lines, weights in virtual nanoseconds) for flamegraph tools. The
// cell label is the root frame.
func FoldedText(w io.Writer, p *CellProfile) {
	for _, f := range p.Folded {
		fmt.Fprintf(w, "%s;%s %d\n", p.Label, f.Stack, f.Nanos)
	}
}
