package profile

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/units"
)

// sec builds a units.Seconds from an exactly-representable float.
func sec(v float64) units.Seconds { return units.Seconds(v) }

// recordSample drives a recorder through a two-rank scenario touching
// every category: rank 0 stalls on a NIC resource, rank 1 blocks on a
// recv released by rank 0's send and then waits inside an Allreduce.
// All times are dyadic rationals, so every boundary is exact.
func recordSample() *Recorder {
	r := NewRecorder()
	// Rank 0: resource stall [3, 4].
	r.Idle(0, "resource:nic", sec(3), sec(4))
	// Rank 1: p2p wait [2, 5], released by rank 0 acting at its clock 4.5;
	// the releasing message completes immediately before the wake.
	r.Park(1, "wait:irecv", sec(2))
	r.Message(0, 1, 7, units.ByteSize(8192), "ib", sec(4.5), sec(5))
	r.Wake(0, 1, sec(5), sec(4.5))
	// Both ranks run an Allreduce; rank 1 blocks inside it for [6, 7].
	r.PhaseBegin(0, "Allreduce", sec(5.5))
	r.PhaseBegin(1, "Allreduce", sec(6))
	r.Park(1, "wait:irecv", sec(6))
	r.Wake(0, 1, sec(7), sec(6.5))
	r.PhaseEnd(1, "Allreduce", sec(7))
	r.PhaseEnd(0, "Allreduce", sec(7))
	return r
}

// TestBreakdownPartitionsTotalExactly is the attribution contract: the
// four categories sum to each rank's total virtual time as exact
// float64s, and the cell totals fold the per-rank rows.
func TestBreakdownPartitionsTotalExactly(t *testing.T) {
	p, err := recordSample().Profile("cell", "k", []units.Seconds{sec(10), sec(8)})
	if err != nil {
		t.Fatal(err)
	}
	want := []Breakdown{
		{Total: 10, Compute: 9, ResourceWait: 1},
		{Total: 8, Compute: 4, P2PWait: 3, CollectiveWait: 1},
	}
	for id, b := range p.PerRank {
		if sum := b.Compute + b.P2PWait + b.CollectiveWait + b.ResourceWait; sum != b.Total {
			t.Errorf("rank %d: categories sum to %v, total %v (bits differ by %d)",
				id, sum, b.Total, math.Float64bits(float64(sum))^math.Float64bits(float64(b.Total)))
		}
		if b != want[id] {
			t.Errorf("rank %d breakdown = %+v, want %+v", id, b, want[id])
		}
	}
	if sum := p.Totals.Compute + p.Totals.P2PWait + p.Totals.CollectiveWait + p.Totals.ResourceWait; sum != p.Totals.Total {
		t.Errorf("cell categories sum to %v, total %v", sum, p.Totals.Total)
	}
	if p.Totals.Total != 18 {
		t.Errorf("cell total = %v, want 18", p.Totals.Total)
	}
	if p.Makespan != 10 {
		t.Errorf("makespan = %v, want 10", p.Makespan)
	}
	wantPhases := []PhaseStat{{Name: "Allreduce", Count: 2, Seconds: 2.5, Wait: 1}}
	if !reflect.DeepEqual(p.Phases, wantPhases) {
		t.Errorf("phases = %+v, want %+v", p.Phases, wantPhases)
	}
}

// TestCriticalPathTilesMakespan: the path's segments tile [0, makespan]
// with exactly-shared boundaries, so its composition sums to the
// makespan; a release edge crosses to the waker with the blocked time
// as slack.
func TestCriticalPathTilesMakespan(t *testing.T) {
	r := NewRecorder()
	// Rank 1 finishes last and spent [2, 6] blocked on rank 0, which
	// released it acting at its own clock 5.
	r.Park(1, "wait:irecv", sec(2))
	r.Message(0, 1, 9, units.ByteSize(4096), "ib", sec(5), sec(6))
	r.Wake(0, 1, sec(6), sec(5))
	p, err := r.Profile("cell", "k", []units.Seconds{sec(8), sec(10)})
	if err != nil {
		t.Fatal(err)
	}

	path := p.Path
	if n := len(path.Segments); n == 0 {
		t.Fatal("empty critical path")
	}
	if first, last := path.Segments[0], path.Segments[len(path.Segments)-1]; first.From != 0 || last.To != p.Makespan {
		t.Fatalf("path spans [%v,%v], want [0,%v]", first.From, last.To, p.Makespan)
	}
	var length units.Seconds
	for i, s := range path.Segments {
		if i > 0 && s.From != path.Segments[i-1].To {
			t.Fatalf("segment %d starts at %v, previous ended at %v", i, s.From, path.Segments[i-1].To)
		}
		length += s.To - s.From
	}
	if length != p.Makespan {
		t.Errorf("path length %v != makespan %v", length, p.Makespan)
	}
	if sum := path.Compute + path.Comm + path.Resource; sum != p.Makespan {
		t.Errorf("path composition sums to %v, want %v", sum, p.Makespan)
	}

	// Exact shape: rank 0 computes [0,5], its release reaches rank 1 at
	// 6 (slack = the 4 s rank 1 sat blocked), rank 1 computes [6,10].
	want := []PathSegment{
		{Rank: 0, Kind: "compute", From: 0, To: 5},
		{Rank: 0, Kind: "comm", From: 5, To: 6, Label: "0->1 tag 9 4.00 KiB over ib", Slack: 4},
		{Rank: 1, Kind: "compute", From: 6, To: 10},
	}
	if !reflect.DeepEqual(path.Segments, want) {
		t.Errorf("segments = %+v, want %+v", path.Segments, want)
	}
	if path.Hops != 1 {
		t.Errorf("hops = %d, want 1", path.Hops)
	}
}

// TestRecorderRejectsInconsistentStreams: a broken event stream (or a
// wait partition that fails to tile the timeline) is an error, never a
// silently wrong report.
func TestRecorderRejectsInconsistentStreams(t *testing.T) {
	ends := []units.Seconds{sec(10), sec(10)}
	cases := []struct {
		name string
		rec  func() *Recorder
		ends []units.Seconds
		want string
	}{
		{"double park", func() *Recorder {
			r := NewRecorder()
			r.Park(0, "wait:irecv", sec(1))
			r.Park(0, "wait:isend", sec(2))
			return r
		}, ends, "parked twice"},
		{"wake without park", func() *Recorder {
			r := NewRecorder()
			r.Wake(1, 0, sec(3), sec(2))
			return r
		}, ends, "woken without park"},
		{"phase close without open", func() *Recorder {
			r := NewRecorder()
			r.PhaseEnd(0, "Barrier", sec(4))
			return r
		}, ends, "without matching open"},
		{"still parked at end", func() *Recorder {
			r := NewRecorder()
			r.Park(0, "wait:irecv", sec(1))
			return r
		}, ends, "still parked"},
		{"still inside phase at end", func() *Recorder {
			r := NewRecorder()
			r.PhaseBegin(0, "Allreduce", sec(1))
			return r
		}, ends, "still inside phase"},
		{"wait past rank end", func() *Recorder {
			r := NewRecorder()
			r.Idle(0, "resource:nic", sec(8), sec(12))
			return r
		}, ends, "breaks the timeline partition"},
		{"overlapping waits", func() *Recorder {
			r := NewRecorder()
			r.Idle(0, "resource:nic", sec(2), sec(6))
			r.Idle(0, "resource:fs", sec(4), sec(8))
			return r
		}, ends, "breaks the timeline partition"},
		{"events beyond world size", func() *Recorder {
			r := NewRecorder()
			r.Idle(3, "resource:nic", sec(1), sec(2))
			return r
		}, ends, "beyond world size"},
		{"no ranks", NewRecorder, nil, "no ranks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.rec().Profile("cell", "k", tc.ends)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestProfileFileRoundTripDeterministic: WriteFile is byte-identical
// across writes, and ReadFile/ReadDir restore the exact profile.
func TestProfileFileRoundTripDeterministic(t *testing.T) {
	p, err := recordSample().Profile("cell a", "1111111111111111111111111111111111111111111111111111111111111111",
		[]units.Seconds{sec(10), sec(8)})
	if err != nil {
		t.Fatal(err)
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	for _, dir := range []string{dir1, dir2} {
		if err := p.WriteFile(dir); err != nil {
			t.Fatal(err)
		}
	}
	name := p.Key + ".profile.json"
	b1, err := os.ReadFile(filepath.Join(dir1, name))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(dir2, name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two writes of the same profile differ")
	}
	back, err := ReadFile(filepath.Join(dir1, name))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Fatalf("round trip changed the profile:\n%+v\n%+v", back, p)
	}
	all, err := ReadDir(dir1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || !reflect.DeepEqual(all[0], p) {
		t.Fatalf("ReadDir = %+v", all)
	}
}

// TestReadDirEmpty: an un-traced directory is a friendly error telling
// the user to rerun with -trace.
func TestReadDirEmpty(t *testing.T) {
	_, err := ReadDir(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "-trace") {
		t.Fatalf("err = %v, want a hint to rerun with -trace", err)
	}
}
