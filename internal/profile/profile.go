// Package profile turns the telemetry event stream into explanations:
// where every virtual nanosecond of a cell went, per rank and per
// collective phase, and which chain of dependencies set the makespan.
//
// A Recorder taps the full event stream online (telemetry.CellTrace
// forwards every event before ring bounding, so attribution never
// loses events to the trace ring's recency policy) and classifies each
// rank's timeline into four categories:
//
//   - compute: the rank's clock advancing under model costs — solver
//     work, MPI packing/overhead CPU charges, container startup skew;
//   - p2pWait: blocked or idle in a point-to-point operation outside
//     any collective (park→wake intervals and completed-request
//     clock catch-ups);
//   - collectiveWait: the same wait states inside a collective phase
//     span (Barrier, Allreduce, ...);
//   - resourceWait: clock jumps waiting for a serially-reusable
//     resource (NIC injection, filesystem bandwidth).
//
// Wait intervals are closed from exact clock values the kernel itself
// used, so they tile each rank's [0, end] timeline exactly: interval
// boundaries are equal as float64s, not merely close. Category
// durations are sums over that exact partition, and compute is defined
// as total minus the wait sums — the per-rank categories therefore sum
// to the rank's total virtual time by construction, and Profile
// validates the partition (monotone, in-bounds, nothing left open)
// before reporting.
package profile

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// Category detail tags follow the kernel's park/idle tags: "wait:irecv",
// "wait:isend", "wait:send-rdv", "resource:<name>".
const resourcePrefix = "resource:"

// msgInfo captures the point-to-point message whose completion released
// a blocked rank, for critical-path edge labelling.
type msgInfo struct {
	src, dst, tag int
	size          units.ByteSize
	transport     string
	sent          units.Seconds
	arrived       units.Seconds
}

// wait is one closed wait interval on a rank's timeline.
type wait struct {
	from, to units.Seconds
	// wakerAt is the waker's clock at the releasing action (the causal
	// source time); equal to `to` for idle catch-ups with no waker.
	wakerAt units.Seconds
	tag     string
	// phase is the ";"-joined collective span stack the rank was inside
	// ("" outside collectives).
	phase string
	// by is the releasing rank, -1 for idle catch-ups.
	by     int
	msg    msgInfo
	hasMsg bool
}

// rankRec accumulates one rank's attribution state during the run.
type rankRec struct {
	parked    bool
	parkAt    units.Seconds
	parkTag   string
	stack     []phaseOpen
	phasePath string
	waits     []wait
}

type phaseOpen struct {
	name  string
	begin units.Seconds
}

// Recorder consumes the telemetry event stream (attach it with
// telemetry.CellTrace.Forward) and accumulates per-rank wait intervals
// and collective phase spans. It is single-goroutine like every trace
// tap: callbacks arrive under the kernel's single-running-process
// invariant.
type Recorder struct {
	ranks []*rankRec
	// phase time aggregation: outermost span durations per collective.
	phaseTime  map[string]units.Seconds
	phaseCount map[string]int
	// lastMsg pairs a message completion with the wake it triggers (the
	// MPI layer wakes the released rank immediately after observing the
	// message, so the match is the immediately preceding event).
	lastMsg    msgInfo
	hasLastMsg bool
	err        error
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		phaseTime:  make(map[string]units.Seconds),
		phaseCount: make(map[string]int),
	}
}

// fail records the first inconsistency; Profile reports it.
func (r *Recorder) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("profile: "+format, args...)
	}
}

func (r *Recorder) rank(id int) *rankRec {
	for id >= len(r.ranks) {
		r.ranks = append(r.ranks, &rankRec{})
	}
	return r.ranks[id]
}

// Switch implements vtime.Tracer (handoffs carry no attribution).
func (r *Recorder) Switch(from, to int, now units.Seconds) {}

// FlushWakes implements vtime.Tracer (batch folds carry no attribution).
func (r *Recorder) FlushWakes(k int, now units.Seconds) {}

// Park implements vtime.Tracer: the rank starts a blocked wait.
func (r *Recorder) Park(id int, tag string, now units.Seconds) {
	if id < 0 {
		r.fail("park of proc %d", id)
		return
	}
	rec := r.rank(id)
	if rec.parked {
		r.fail("rank %d parked twice (at %v, again at %v)", id, rec.parkAt, now)
		return
	}
	rec.parked, rec.parkAt, rec.parkTag = true, now, tag
}

// Wake implements vtime.Tracer: closes the woken rank's wait interval,
// recording who released it and (when the immediately preceding event
// was the releasing message's completion) which message.
func (r *Recorder) Wake(waker, woken int, now, wakerNow units.Seconds) {
	if woken < 0 {
		r.fail("wake of proc %d", woken)
		return
	}
	rec := r.rank(woken)
	if !rec.parked {
		r.fail("rank %d woken without park at %v", woken, now)
		return
	}
	w := wait{
		from: rec.parkAt, to: now, wakerAt: wakerNow,
		tag: rec.parkTag, phase: rec.phasePath, by: waker,
	}
	if r.hasLastMsg && r.lastMsg.arrived == now &&
		((r.lastMsg.src == waker && r.lastMsg.dst == woken) ||
			(r.lastMsg.src == woken && r.lastMsg.dst == waker)) {
		w.msg, w.hasMsg = r.lastMsg, true
	}
	rec.parked = false
	rec.waits = append(rec.waits, w)
}

// Idle implements vtime.Tracer: a clock jump with no park — resource
// contention or catching up to an already-completed operation.
func (r *Recorder) Idle(id int, tag string, from, to units.Seconds) {
	if id < 0 || to <= from {
		return
	}
	rec := r.rank(id)
	rec.waits = append(rec.waits, wait{
		from: from, to: to, wakerAt: to,
		tag: tag, phase: rec.phasePath, by: -1,
	})
}

// Message implements the mpi.Observer seam (via telemetry.Handler).
func (r *Recorder) Message(src, dst, tag int, size units.ByteSize,
	transport string, sent, arrived units.Seconds) {
	r.lastMsg = msgInfo{src: src, dst: dst, tag: tag, size: size,
		transport: transport, sent: sent, arrived: arrived}
	r.hasLastMsg = true
}

// PhaseBegin implements the mpi.PhaseObserver seam.
func (r *Recorder) PhaseBegin(rank int, name string, start units.Seconds) {
	rec := r.rank(rank)
	rec.stack = append(rec.stack, phaseOpen{name: name, begin: start})
	if rec.phasePath == "" {
		rec.phasePath = name
	} else {
		rec.phasePath += ";" + name
	}
}

// PhaseEnd implements the mpi.PhaseObserver seam. Closing an outermost
// span adds its duration to the per-collective totals.
func (r *Recorder) PhaseEnd(rank int, name string, end units.Seconds) {
	rec := r.rank(rank)
	n := len(rec.stack)
	if n == 0 || rec.stack[n-1].name != name {
		r.fail("rank %d closes phase %q without matching open", rank, name)
		return
	}
	top := rec.stack[n-1]
	rec.stack = rec.stack[:n-1]
	if n == 1 {
		rec.phasePath = ""
		r.phaseTime[name] += end - top.begin
		r.phaseCount[name]++
	} else {
		parts := make([]string, 0, n-1)
		for _, p := range rec.stack {
			parts = append(parts, p.name)
		}
		rec.phasePath = strings.Join(parts, ";")
	}
}
