package profile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/units"
)

// CellProfile is one cell's complete time attribution: per-rank and
// cell-total category breakdowns, per-collective phase totals, folded
// stacks for flamegraph tools, and the critical path through the
// happens-before graph. It is a wire type (written as
// <key>.profile.json beside the cell's Chrome trace) and is registered
// in the repolint WireRoots.
type CellProfile struct {
	// Label is the cell's display name; Key its content fingerprint.
	Label string `json:"label"`
	Key   string `json:"key"`
	Ranks int    `json:"ranks"`
	// Makespan is the cell's simulated end time (max rank finish).
	Makespan units.Seconds `json:"makespan"`
	// Totals sums the per-rank breakdowns.
	Totals Breakdown `json:"totals"`
	// PerRank holds one breakdown per rank, indexed by rank id.
	PerRank []Breakdown `json:"perRank"`
	// Phases aggregates outermost collective spans by name, sorted.
	Phases []PhaseStat `json:"phases"`
	// Folded holds flamegraph folded-stack entries, sorted by stack.
	Folded []FoldedEntry `json:"folded"`
	// Path is the critical path ending at the makespan.
	Path PathReport `json:"criticalPath"`
}

// Breakdown attributes one rank's (or the whole cell's) virtual time.
// Compute is defined as Total minus the three wait categories, so the
// four categories sum to Total by construction; Profile validates the
// underlying wait partition exactly.
type Breakdown struct {
	Total          units.Seconds `json:"total"`
	Compute        units.Seconds `json:"compute"`
	P2PWait        units.Seconds `json:"p2pWait"`
	CollectiveWait units.Seconds `json:"collectiveWait"`
	ResourceWait   units.Seconds `json:"resourceWait"`
}

// add folds o into b (for cell totals).
func (b *Breakdown) add(o Breakdown) {
	b.Total += o.Total
	b.Compute += o.Compute
	b.P2PWait += o.P2PWait
	b.CollectiveWait += o.CollectiveWait
	b.ResourceWait += o.ResourceWait
}

// PhaseStat aggregates one collective across all ranks: how many
// outermost spans ran, their total duration, and how much of that
// duration ranks spent blocked.
type PhaseStat struct {
	Name string `json:"name"`
	// Count is the number of outermost spans (ranks × calls).
	Count int `json:"count"`
	// Seconds is the total span time summed over ranks.
	Seconds units.Seconds `json:"seconds"`
	// Wait is the blocked/idle time inside those spans.
	Wait units.Seconds `json:"wait"`
}

// FoldedEntry is one flamegraph folded-stack line: ";"-separated
// frames and a weight in integer virtual nanoseconds.
type FoldedEntry struct {
	Stack string `json:"stack"`
	Nanos int64  `json:"nanos"`
}

// Profile closes the recording and builds the cell's attribution.
// rankEnd is each rank's final virtual clock (mpi.Stats.RankEnd); its
// length fixes the rank count. Profile validates the event stream it
// saw: no rank still parked or inside a phase, wait intervals monotone
// and within [0, end] — a violated invariant is an error, never a
// silently wrong report.
func (r *Recorder) Profile(label, key string, rankEnd []units.Seconds) (*CellProfile, error) {
	if r.err != nil {
		return nil, r.err
	}
	n := len(rankEnd)
	if n == 0 {
		return nil, fmt.Errorf("profile: no ranks")
	}
	if len(r.ranks) > n {
		return nil, fmt.Errorf("profile: events for rank %d beyond world size %d", len(r.ranks)-1, n)
	}
	p := &CellProfile{Label: label, Key: key, Ranks: n, PerRank: make([]Breakdown, n)}
	for _, end := range rankEnd {
		if end > p.Makespan {
			p.Makespan = end
		}
	}

	folded := make(map[string]units.Seconds)
	phaseWait := make(map[string]units.Seconds)
	for id := 0; id < n; id++ {
		var rec *rankRec
		if id < len(r.ranks) {
			rec = r.ranks[id]
		} else {
			rec = &rankRec{}
		}
		if rec.parked {
			return nil, fmt.Errorf("profile: rank %d still parked on %q at end of run", id, rec.parkTag)
		}
		if len(rec.stack) > 0 {
			return nil, fmt.Errorf("profile: rank %d still inside phase %q at end of run", id, rec.stack[len(rec.stack)-1].name)
		}
		end := rankEnd[id]
		b := Breakdown{Total: end}
		prev := units.Seconds(0)
		for _, w := range rec.waits {
			if w.from < prev || w.to < w.from || w.to > end {
				return nil, fmt.Errorf("profile: rank %d wait [%v,%v] breaks the timeline partition (prev end %v, rank end %v)",
					id, w.from, w.to, prev, end)
			}
			prev = w.to
			dur := w.to - w.from
			switch {
			case strings.HasPrefix(w.tag, resourcePrefix):
				b.ResourceWait += dur
			case w.phase != "":
				b.CollectiveWait += dur
			default:
				b.P2PWait += dur
			}
			if w.phase != "" {
				name, _, _ := strings.Cut(w.phase, ";")
				phaseWait[name] += dur
			}
			folded[foldedStack(id, w.phase, w.tag)] += dur
		}
		b.Compute = b.Total - b.P2PWait - b.CollectiveWait - b.ResourceWait
		if b.Compute < 0 {
			return nil, fmt.Errorf("profile: rank %d waits exceed its total time by %v", id, -b.Compute)
		}
		folded[fmt.Sprintf("rank %d;compute", id)] += b.Compute
		p.PerRank[id] = b
		p.Totals.add(b)
	}

	names := make([]string, 0, len(r.phaseTime))
	for name := range r.phaseTime {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p.Phases = append(p.Phases, PhaseStat{
			Name:    name,
			Count:   r.phaseCount[name],
			Seconds: r.phaseTime[name],
			Wait:    phaseWait[name],
		})
	}

	stacks := make([]string, 0, len(folded))
	for s := range folded {
		stacks = append(stacks, s)
	}
	sort.Strings(stacks)
	for _, s := range stacks {
		p.Folded = append(p.Folded, FoldedEntry{Stack: s, Nanos: nanos(folded[s])})
	}

	path, err := r.criticalPath(rankEnd, p.Makespan)
	if err != nil {
		return nil, err
	}
	p.Path = path
	return p, nil
}

// foldedStack builds the frame path for a wait: rank, enclosing
// collective spans, then the wait tag.
func foldedStack(rank int, phase, tag string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rank %d", rank)
	if phase != "" {
		sb.WriteByte(';')
		sb.WriteString(phase)
	}
	sb.WriteByte(';')
	sb.WriteString(tag)
	return sb.String()
}

// nanos converts virtual seconds to the integer nanosecond weights
// folded-stack tools expect.
func nanos(s units.Seconds) int64 {
	return int64(float64(s)*1e9 + 0.5)
}

// WriteFile writes the profile into dir as <key>.profile.json,
// creating dir if needed. Output is byte-deterministic: one
// json.Marshal of a fixed-order struct.
func (p *CellProfile) WriteFile(dir string) error {
	data, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	data = append(data, '\n')
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	path := filepath.Join(dir, p.Key+".profile.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	return nil
}

// ReadFile loads one profile written by WriteFile.
func ReadFile(path string) (*CellProfile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	var p CellProfile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: %s: %w", path, err)
	}
	return &p, nil
}

// ReadDir loads every *.profile.json in dir, sorted by cell label then
// key so reports render in a stable order.
func ReadDir(dir string) ([]*CellProfile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	var out []*CellProfile
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".profile.json") {
			continue
		}
		p, err := ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("profile: no *.profile.json files in %s (run with -trace %s first)", dir, dir)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}
