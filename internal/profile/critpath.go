package profile

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// PathReport is the critical path through the happens-before graph:
// the chain of rank segments and release edges that ends at the cell's
// makespan. Its segments tile [0, makespan] exactly — walking the
// partition backward from the last-finishing rank, every instant is on
// exactly one segment — so the path's length equals the makespan by
// construction.
type PathReport struct {
	// Segments in chronological order. Adjacent segments share their
	// boundary time exactly (To of one == From of the next).
	Segments []PathSegment `json:"segments"`
	// Composition of the path by segment kind.
	Compute  units.Seconds `json:"compute"`
	Comm     units.Seconds `json:"comm"`
	Resource units.Seconds `json:"resource"`
	// Hops counts rank changes along the path.
	Hops int `json:"hops"`
}

// PathSegment is one span of the critical path.
type PathSegment struct {
	// Rank whose activity occupies this span of the path. For a comm
	// edge this is the releasing rank: the span covers its completion
	// action plus the wire flight to the released rank.
	Rank int `json:"rank"`
	// Kind is "compute", "comm" (a message/release edge or in-flight
	// arrival wait), or "resource" (contended device).
	Kind string        `json:"kind"`
	From units.Seconds `json:"from"`
	To   units.Seconds `json:"to"`
	// Label details the span: the wait tag, the enclosing collective,
	// or the releasing message ("12->13 tag -2000 8.0 KiB over ib").
	Label string `json:"label,omitempty"`
	// Slack, on comm edges, is how much the edge could speed up before
	// the released rank's own program order becomes the binding
	// constraint (its blocked time under this dependency). Zero-slack
	// edges arrived exactly when the receiver was ready.
	Slack units.Seconds `json:"slack,omitempty"`
}

// criticalPath walks the happens-before graph backward from the
// last-finishing rank. At each blocked wait it crosses to the rank
// that performed the release, at that rank's clock at the instant of
// the releasing action (the Wake seam's wakerNow) — the exact causal
// source. Idle catch-ups (message flight already under way, resource
// contention) stay on the same rank. Each wait is consumed at most
// once, so the walk terminates even through zero-duration release
// chains.
func (r *Recorder) criticalPath(rankEnd []units.Seconds, makespan units.Seconds) (PathReport, error) {
	cur := 0
	for id, end := range rankEnd {
		if end > rankEnd[cur] {
			cur = id
		}
	}
	// consumed[rank] is the lower bound (exclusive) of wait indices the
	// walk may still use on that rank; waits are consumed newest-first.
	consumed := make([]int, len(rankEnd))
	for id := range consumed {
		if id < len(r.ranks) {
			consumed[id] = len(r.ranks[id].waits)
		}
	}

	var segs []PathSegment // built backward, reversed at the end
	t := rankEnd[cur]
	for {
		var waits []wait
		if cur < len(r.ranks) {
			waits = r.ranks[cur].waits
		}
		// Latest unconsumed wait on cur ending at or before t.
		idx := sort.Search(consumed[cur], func(i int) bool { return waits[i].to > t }) - 1
		if idx < 0 {
			segs = appendSeg(segs, PathSegment{Rank: cur, Kind: "compute", From: 0, To: t})
			break
		}
		w := waits[idx]
		consumed[cur] = idx
		segs = appendSeg(segs, PathSegment{Rank: cur, Kind: "compute", From: w.to, To: t})
		switch {
		case w.by < 0:
			// Idle catch-up: in-flight arrival or resource contention;
			// the constraint lives on this rank's timeline.
			kind := "comm"
			if len(w.tag) >= len(resourcePrefix) && w.tag[:len(resourcePrefix)] == resourcePrefix {
				kind = "resource"
			}
			segs = appendSeg(segs, PathSegment{Rank: cur, Kind: kind, From: w.from, To: w.to, Label: pathLabel(w)})
			t = w.from
		default:
			// Release edge: cross to the releasing rank at its clock at
			// the moment of the release.
			jump := w.wakerAt
			if jump > w.to {
				jump = w.to
			}
			segs = appendSeg(segs, PathSegment{
				Rank: w.by, Kind: "comm", From: jump, To: w.to,
				Label: pathLabel(w), Slack: w.to - w.from,
			})
			cur, t = w.by, jump
		}
		if t <= 0 {
			break
		}
	}

	// Reverse into chronological order and total the composition.
	rep := PathReport{Segments: make([]PathSegment, 0, len(segs))}
	for i := len(segs) - 1; i >= 0; i-- {
		rep.Segments = append(rep.Segments, segs[i])
	}
	last := -1
	for _, s := range rep.Segments {
		switch s.Kind {
		case "compute":
			rep.Compute += s.To - s.From
		case "comm":
			rep.Comm += s.To - s.From
		case "resource":
			rep.Resource += s.To - s.From
		}
		if last >= 0 && s.Rank != last {
			rep.Hops++
		}
		last = s.Rank
	}
	if n := len(rep.Segments); n > 0 {
		if rep.Segments[0].From != 0 || rep.Segments[n-1].To != makespan {
			return PathReport{}, fmt.Errorf("profile: critical path spans [%v,%v], want [0,%v]",
				rep.Segments[0].From, rep.Segments[n-1].To, makespan)
		}
		for i := 1; i < n; i++ {
			if rep.Segments[i].From != rep.Segments[i-1].To {
				return PathReport{}, fmt.Errorf("profile: critical path gap at %v: segment %d starts at %v",
					rep.Segments[i-1].To, i, rep.Segments[i].From)
			}
		}
	}
	return rep, nil
}

// appendSeg drops zero-duration spans (degenerate boundaries at shared
// instants) so reports stay readable; partition exactness is kept
// because a dropped span's endpoints coincide.
func appendSeg(segs []PathSegment, s PathSegment) []PathSegment {
	if s.To <= s.From {
		return segs
	}
	return append(segs, s)
}

// pathLabel describes a wait for the path report.
func pathLabel(w wait) string {
	if w.hasMsg {
		return fmt.Sprintf("%d->%d tag %d %s over %s", w.msg.src, w.msg.dst, w.msg.tag, w.msg.size, w.msg.transport)
	}
	if w.phase != "" {
		return w.phase + ";" + w.tag
	}
	return w.tag
}
