package omp

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/units"
)

func testRegion() Region {
	return Region{
		Flops:          100 * units.MFlop,
		MemBytes:       100 * units.MiB,
		SerialFraction: 0.02,
		Imbalance:      0.05,
		Schedule:       ScheduleStatic,
	}
}

func TestRegionTimePositive(t *testing.T) {
	m := DefaultModel(topology.LenoxNode)
	for threads := 1; threads <= 28; threads++ {
		if rt := m.RegionTime(testRegion(), threads); rt <= 0 || math.IsInf(float64(rt), 0) {
			t.Fatalf("threads=%d: region time %v", threads, rt)
		}
	}
}

func TestMoreThreadsHelpUntilBandwidth(t *testing.T) {
	m := DefaultModel(topology.LenoxNode)
	reg := testRegion()
	t1 := m.RegionTime(reg, 1)
	t4 := m.RegionTime(reg, 4)
	t14 := m.RegionTime(reg, 14)
	if !(t1 > t4 && t4 > t14) {
		t.Fatalf("threading does not help: %v, %v, %v", t1, t4, t14)
	}
}

func TestEfficiencyDecreases(t *testing.T) {
	m := DefaultModel(topology.MareNostrum4Node)
	reg := testRegion()
	prev := 1.1
	for _, threads := range []int{1, 2, 4, 8, 16, 24, 48} {
		e := m.Efficiency(reg, threads)
		if e > prev+1e-9 {
			t.Fatalf("efficiency increased at %d threads: %v > %v", threads, e, prev)
		}
		if e <= 0 || e > 1.0001 {
			t.Fatalf("efficiency out of range at %d threads: %v", threads, e)
		}
		prev = e
	}
}

func TestRanksPerNodeShareBandwidth(t *testing.T) {
	// A rank sharing its node with 27 others gets far less bandwidth
	// than a rank owning the node.
	alone := DefaultModel(topology.LenoxNode)
	crowded := DefaultModel(topology.LenoxNode)
	crowded.RanksPerNode = 28
	reg := Region{MemBytes: 1 * units.GiB} // purely memory bound
	ta := alone.RegionTime(reg, 1)
	tc := crowded.RegionTime(reg, 1)
	if tc < 2*ta {
		t.Fatalf("bandwidth sharing too weak: alone %v, crowded %v", ta, tc)
	}
}

func TestNUMAPenaltyAppliesAcrossSockets(t *testing.T) {
	m := DefaultModel(topology.LenoxNode) // 14 cores/socket
	reg := Region{MemBytes: 1 * units.GiB}
	// 14 threads: one socket. 15: spans two and pays the NUMA penalty,
	// but gains the second socket's bandwidth; compare against the
	// ideal no-penalty scaling instead.
	t14 := m.RegionTime(reg, 14)
	t28 := m.RegionTime(reg, 28)
	idealT28 := t14 / 2
	if float64(t28) <= float64(idealT28)*1.05 {
		t.Fatalf("no NUMA penalty visible: t14=%v t28=%v", t14, t28)
	}
}

func TestScheduleTradeoffs(t *testing.T) {
	m := DefaultModel(topology.LenoxNode)
	imbalanced := Region{
		Flops:     400 * units.MFlop,
		Imbalance: 0.5,
	}
	static := imbalanced
	static.Schedule = ScheduleStatic
	dynamic := imbalanced
	dynamic.Schedule = ScheduleDynamic
	guided := imbalanced
	guided.Schedule = ScheduleGuided
	ts := m.RegionTime(static, 14)
	td := m.RegionTime(dynamic, 14)
	tg := m.RegionTime(guided, 14)
	// With heavy imbalance, dynamic must beat static; guided between.
	if !(td < tg && tg < ts) {
		t.Fatalf("schedule ordering wrong: static %v, guided %v, dynamic %v", ts, tg, td)
	}
	// With perfect balance, static must win (no chunk overhead).
	balanced := Region{Flops: 400 * units.MFlop}
	bs, bd := balanced, balanced
	bs.Schedule = ScheduleStatic
	bd.Schedule = ScheduleDynamic
	if m.RegionTime(bs, 14) >= m.RegionTime(bd, 14) {
		t.Fatal("static should win on balanced work")
	}
}

func TestSweetSpot(t *testing.T) {
	m := DefaultModel(topology.LenoxNode)
	candidates := []int{1, 2, 4, 7, 14, 28}
	reg := testRegion()
	best := m.SweetSpot(reg, candidates)
	bestT := m.RegionTime(reg, best)
	for _, c := range candidates {
		if m.RegionTime(reg, c) < bestT {
			t.Fatalf("SweetSpot returned %d but %d is faster", best, c)
		}
	}
}

func TestThreadsClamped(t *testing.T) {
	m := DefaultModel(topology.LenoxNode)
	reg := testRegion()
	if m.RegionTime(reg, 0) != m.RegionTime(reg, 1) {
		t.Error("0 threads should clamp to 1")
	}
	if m.RegionTime(reg, 100) != m.RegionTime(reg, 28) {
		t.Error(">cores threads should clamp to node cores")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 7, 100, 1001} {
			var hits int64
			seen := make([]int32, n)
			ParallelFor(n, threads, func(i int) {
				atomic.AddInt64(&hits, 1)
				atomic.AddInt32(&seen[i], 1)
			})
			if hits != int64(n) {
				t.Fatalf("threads=%d n=%d: %d hits", threads, n, hits)
			}
			for i, s := range seen {
				if s != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, s)
				}
			}
		}
	}
}

func TestParallelReduceDeterministic(t *testing.T) {
	n := 10000
	f := func(i int) float64 { return 1.0 / float64(i+1) }
	seq := ParallelReduce(n, 1, f)
	for _, threads := range []int{2, 4, 8} {
		a := ParallelReduce(n, threads, f)
		b := ParallelReduce(n, threads, f)
		if a != b {
			t.Fatalf("threads=%d: nondeterministic reduce %v vs %v", threads, a, b)
		}
		if math.Abs(a-seq) > 1e-9 {
			t.Fatalf("threads=%d: reduce %v far from sequential %v", threads, a, seq)
		}
	}
}

func TestRegionTimeMonotoneInWork(t *testing.T) {
	m := DefaultModel(topology.CTEPowerNode)
	f := func(a, b uint32, threads uint8) bool {
		x, y := units.Flops(a), units.Flops(b)
		if x > y {
			x, y = y, x
		}
		th := int(threads)%40 + 1
		rx := m.RegionTime(Region{Flops: x}, th)
		ry := m.RegionTime(Region{Flops: y}, th)
		return rx <= ry
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
