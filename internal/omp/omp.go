// Package omp models OpenMP-style intra-rank threading for the hybrid
// MPI×OpenMP configurations of the paper's Fig. 1 (8×14 … 112×1), and
// provides a real work-sharing runner used when the solver executes its
// actual numerics.
//
// The cost model charges a parallel region with: a fork/join and
// barrier cost growing with team size, an Amdahl serial fraction, a
// roofline bound combining compute rate and shared memory bandwidth,
// and a NUMA penalty when the team spans sockets.
package omp

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/topology"
	"repro/internal/units"
)

// Schedule is the loop scheduling policy. It affects the load-imbalance
// term of the region cost.
type Schedule int

// Available schedules.
const (
	// ScheduleStatic splits iterations evenly up front: no scheduling
	// overhead, full exposure to iteration imbalance.
	ScheduleStatic Schedule = iota
	// ScheduleDynamic hands out chunks on demand: per-chunk overhead,
	// imbalance smoothed to one chunk.
	ScheduleDynamic
	// ScheduleGuided shrinks chunk sizes geometrically: intermediate.
	ScheduleGuided
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	default:
		return fmt.Sprintf("schedule(%d)", int(s))
	}
}

// Region describes one parallel region's resource demands.
type Region struct {
	// Flops is the floating-point work in the region.
	Flops units.Flops
	// MemBytes is the memory traffic the region generates (the
	// bandwidth side of the roofline).
	MemBytes units.ByteSize
	// SerialFraction is the Amdahl fraction executed by one thread
	// (reductions tails, boundary fix-ups).
	SerialFraction float64
	// Imbalance is the relative spread of per-iteration work (0 =
	// perfectly balanced). Static scheduling pays it in full.
	Imbalance float64
	// Schedule is the loop scheduling policy.
	Schedule Schedule
}

// Model holds the machine-dependent constants of the cost model.
type Model struct {
	// Node is the hardware the team runs on.
	Node topology.NodeSpec
	// RanksPerNode is how many MPI ranks share the node: they compete
	// for memory bandwidth. 0 or 1 means the team owns the node.
	RanksPerNode int
	// ForkJoin is the fixed cost of opening and closing a region.
	ForkJoin units.Seconds
	// BarrierPerThread is the per-thread increment of a team barrier.
	BarrierPerThread units.Seconds
	// DynamicChunkCost is the bookkeeping cost per dynamic chunk.
	DynamicChunkCost units.Seconds
}

// DefaultModel returns calibrated constants for a node.
func DefaultModel(node topology.NodeSpec) Model {
	return Model{
		Node:             node,
		RanksPerNode:     1,
		ForkJoin:         1.5 * units.Microsecond,
		BarrierPerThread: 0.25 * units.Microsecond,
		DynamicChunkCost: 0.1 * units.Microsecond,
	}
}

// RegionTime returns the modelled wall time of the region on a team of
// the given width, assuming compact thread binding.
func (m Model) RegionTime(reg Region, threads int) units.Seconds {
	if threads < 1 {
		threads = 1
	}
	maxThreads := m.Node.CoresPerNode()
	if threads > maxThreads {
		threads = maxThreads
	}

	coreRate := m.Node.CPU.EffectiveCoreRate
	serial := coreRate.TimeFor(units.Flops(float64(reg.Flops) * reg.SerialFraction))
	parWork := units.Flops(float64(reg.Flops) * (1 - reg.SerialFraction))

	// Compute side of the roofline.
	compute := coreRate.TimeFor(parWork) / units.Seconds(threads)

	// Memory side of the roofline. A team draws at most
	// threads × per-core bandwidth, and no more than its fair share of
	// the node's total when RanksPerNode ranks compete; teams spanning
	// sockets pay the NUMA penalty on top.
	spanned := m.Node.SocketsSpanned(threads)
	demand := m.Node.CPU.PerCoreMemBW * units.Rate(threads)
	rpn := m.RanksPerNode
	if rpn < 1 {
		rpn = 1
	}
	share := m.Node.TotalMemBandwidth() / units.Rate(rpn)
	bw := demand
	if share < bw {
		bw = share
	}
	if spanned > 1 {
		bw = units.Rate(float64(bw) * m.Node.NUMARemotePenalty)
	}
	memory := bw.TimeFor(reg.MemBytes)

	body := units.Max(compute, memory)

	// Load imbalance: static pays the full spread; dynamic smooths it
	// but pays chunk bookkeeping; guided sits between.
	var imbalance, schedOverhead units.Seconds
	switch reg.Schedule {
	case ScheduleStatic:
		imbalance = body * units.Seconds(reg.Imbalance)
	case ScheduleDynamic:
		imbalance = body * units.Seconds(reg.Imbalance*0.15)
		chunks := 32 * threads
		schedOverhead = units.Seconds(chunks) * m.DynamicChunkCost
	case ScheduleGuided:
		imbalance = body * units.Seconds(reg.Imbalance*0.35)
		chunks := 8 * threads
		schedOverhead = units.Seconds(chunks) * m.DynamicChunkCost
	}
	if threads == 1 {
		imbalance = 0
		schedOverhead = 0
	}

	overhead := m.ForkJoin + units.Seconds(threads)*m.BarrierPerThread
	if threads == 1 {
		overhead = 0
	}
	return serial + body + imbalance + schedOverhead + overhead
}

// Efficiency reports the parallel efficiency of a region at the given
// team width: T(1)/(threads·T(threads)).
func (m Model) Efficiency(reg Region, threads int) float64 {
	t1 := m.RegionTime(reg, 1)
	tn := m.RegionTime(reg, threads)
	if tn <= 0 {
		return 0
	}
	return float64(t1) / (float64(threads) * float64(tn))
}

// ParallelFor executes fn(i) for i in [0, n) on a real goroutine team —
// the execution path used when the solver computes actual numerics. The
// split is contiguous static blocks, matching the model's assumptions.
func ParallelFor(n, threads int, fn func(i int)) {
	if threads < 1 {
		threads = 1
	}
	if threads == 1 || n < 2*threads {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelReduce computes the sum of fn(i) over [0, n) with a real
// goroutine team, deterministically: per-thread partials are reduced in
// thread order so the floating-point result is independent of timing.
func ParallelReduce(n, threads int, fn func(i int) float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads == 1 || n < 2*threads {
		s := 0.0
		for i := 0; i < n; i++ {
			s += fn(i)
		}
		return s
	}
	partial := make([]float64, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		go func(t, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += fn(i)
			}
			partial[t] = s
		}(t, lo, hi)
	}
	wg.Wait()
	s := 0.0
	for _, v := range partial {
		s += v
	}
	return s
}

// SweetSpot returns the team width in candidates minimizing the region
// time, for tests and for documentation of the Fig. 1 U-shape.
func (m Model) SweetSpot(reg Region, candidates []int) int {
	best, bestT := 1, units.Seconds(math.Inf(1))
	for _, c := range candidates {
		if t := m.RegionTime(reg, c); t < bestT {
			best, bestT = c, t
		}
	}
	return best
}
