package alya

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/units"
)

func bareProfile(t *testing.T, cl *cluster.Cluster) container.ExecProfile {
	t.Helper()
	p, err := container.BareMetal{}.ExecProfile(cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func job(t *testing.T, cl *cluster.Cluster, nodes, ranks, threads int) *sched.Job {
	t.Helper()
	j, err := sched.Plan(cl, nodes, ranks, threads, sched.PlaceBlock)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestCaseValidation(t *testing.T) {
	good := QuickCFD(3)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.SimSteps = 5 // > Steps
	if bad.Validate() == nil {
		t.Error("SimSteps > Steps accepted")
	}
	bad = good
	bad.ModelCGIters = 0
	if bad.Validate() == nil {
		t.Error("zero CG iters accepted")
	}
	fsi := QuickFSI(2)
	if err := fsi.Validate(); err != nil {
		t.Fatal(err)
	}
	badFSI := fsi
	badFSI.FluidFraction = 1.5
	if badFSI.Validate() == nil {
		t.Error("fluid fraction > 1 accepted")
	}
}

func TestRunCFDModel(t *testing.T) {
	cl := cluster.Lenox()
	res, err := Run(Spec{
		Job:     job(t, cl, 2, 8, 1),
		Profile: bareProfile(t, cl),
		Case:    QuickCFD(3),
		Mode:    ModeModel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimePerStep <= 0 {
		t.Fatalf("time/step %v", res.TimePerStep)
	}
	if res.Elapsed != res.TimePerStep*3 {
		t.Fatalf("elapsed %v != 3 × %v", res.Elapsed, res.TimePerStep)
	}
	if res.MPI.TotalMessages == 0 {
		t.Fatal("no MPI traffic")
	}
	if res.Runtime != "Bare-metal" {
		t.Fatalf("runtime %q", res.Runtime)
	}
}

func TestRunCFDReal(t *testing.T) {
	cl := cluster.Lenox()
	res, err := Run(Spec{
		Job:     job(t, cl, 2, 8, 1),
		Profile: bareProfile(t, cl),
		Case:    QuickCFD(3),
		Mode:    ModeReal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgCGIters <= 1 {
		t.Fatalf("avg CG iters %v", res.AvgCGIters)
	}
	if math.IsNaN(res.MaxDivergence) || res.MaxDivergence <= 0 {
		t.Fatalf("divergence diagnostic %v", res.MaxDivergence)
	}
}

func TestRealMatchesSequentialSolution(t *testing.T) {
	// The distributed real-mode solver must produce the same physics
	// regardless of rank count: compare the global max divergence and
	// CG iteration counts across 1, 2, and 8 ranks.
	cl := cluster.Lenox()
	run := func(ranks, nodes int) Result {
		res, err := Run(Spec{
			Job:     job(t, cl, nodes, ranks, 1),
			Profile: bareProfile(t, cl),
			Case:    QuickCFD(2),
			Mode:    ModeReal,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1, 1)
	r2 := run(2, 1)
	r8 := run(8, 2)
	for _, r := range []Result{r2, r8} {
		if math.Abs(r.MaxDivergence-r1.MaxDivergence) > 1e-6*math.Abs(r1.MaxDivergence) {
			t.Fatalf("divergence differs across rank counts: %v vs %v (ranks=%d)",
				r.MaxDivergence, r1.MaxDivergence, r.Ranks)
		}
		if math.Abs(r.AvgCGIters-r1.AvgCGIters) > 2 {
			t.Fatalf("CG iterations drifted: %v vs %v", r.AvgCGIters, r1.AvgCGIters)
		}
	}
}

func TestExecModesAgree(t *testing.T) {
	// Model and real modes must charge comparable virtual time for the
	// same configuration (same compute constants, same message sizes);
	// iteration counts differ (fixed vs converged), so compare
	// per-CG-iteration step cost within a tolerance.
	cl := cluster.Lenox()
	cs := QuickCFD(3)
	spec := Spec{
		Job:     job(t, cl, 2, 8, 1),
		Profile: bareProfile(t, cl),
		Case:    cs,
	}
	spec.Mode = ModeModel
	model, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Mode = ModeReal
	real, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	perIterModel := float64(model.TimePerStep) / float64(cs.ModelCGIters)
	perIterReal := float64(real.TimePerStep) / real.AvgCGIters
	ratio := perIterModel / perIterReal
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("modes disagree: model %.3g s/iter vs real %.3g s/iter (ratio %.2f)",
			perIterModel, perIterReal, ratio)
	}
}

func TestRunFSIModelAndReal(t *testing.T) {
	cl := cluster.CTEPower()
	for _, mode := range []Mode{ModeModel, ModeReal} {
		res, err := Run(Spec{
			Job:     job(t, cl, 2, 8, 1),
			Profile: bareProfile(t, cl),
			Case:    QuickFSI(2),
			Mode:    mode,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.TimePerStep <= 0 {
			t.Fatalf("%v: time/step %v", mode, res.TimePerStep)
		}
		if res.MPI.TotalMessages == 0 {
			t.Fatalf("%v: no traffic in a coupled run", mode)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cl := cluster.MareNostrum4()
	spec := Spec{
		Job:       job(t, cl, 2, 16, 3),
		Profile:   bareProfile(t, cl),
		Case:      QuickCFD(2),
		Mode:      ModeModel,
		Allreduce: mpi.AllreduceHierarchical,
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimePerStep != b.TimePerStep || a.MPI.End != b.MPI.End {
		t.Fatalf("nondeterministic: %v vs %v", a.TimePerStep, b.TimePerStep)
	}
}

func TestThreadsReduceRanksReduceTime(t *testing.T) {
	// More resources (2 nodes vs 1) must reduce model-mode time for a
	// compute-heavy case.
	cl := cluster.MareNostrum4()
	cs := ArteryCFDCTEPower() // big mesh, model mode only
	cs.FluidMesh = mustMesh(128, 128, 96, 1e-4)
	cs.Steps, cs.SimSteps = 2, 1
	one, err := Run(Spec{Job: job(t, cl, 1, 48, 1), Profile: bareProfile(t, cl), Case: cs})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Spec{Job: job(t, cl, 4, 192, 1), Profile: bareProfile(t, cl), Case: cs})
	if err != nil {
		t.Fatal(err)
	}
	if four.TimePerStep >= one.TimePerStep {
		t.Fatalf("4 nodes (%v) not faster than 1 (%v)", four.TimePerStep, one.TimePerStep)
	}
	speedup := float64(one.TimePerStep) / float64(four.TimePerStep)
	if speedup < 2 {
		t.Fatalf("4-node speedup only %.2f", speedup)
	}
}

func TestContainerStartupSkewCharged(t *testing.T) {
	cl := cluster.Lenox()
	slow := bareProfile(t, cl)
	slow.RuntimeName = "slow-start"
	slow.LaunchPerRank = 500 * units.Millisecond
	fast := bareProfile(t, cl)

	cs := QuickCFD(2)
	a, err := Run(Spec{Job: job(t, cl, 2, 8, 1), Profile: slow, Case: cs})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Spec{Job: job(t, cl, 2, 8, 1), Profile: fast, Case: cs})
	if err != nil {
		t.Fatal(err)
	}
	if a.LaunchTime <= b.LaunchTime+units.Seconds(0.5) {
		t.Fatalf("startup skew not visible: %v vs %v", a.LaunchTime, b.LaunchTime)
	}
	// Launch cost must not leak into per-step time.
	rel := math.Abs(float64(a.TimePerStep-b.TimePerStep)) / float64(b.TimePerStep)
	if rel > 0.01 {
		t.Fatalf("launch leaked into step time: %v vs %v", a.TimePerStep, b.TimePerStep)
	}
}

func TestComputeDilationSlowsSteps(t *testing.T) {
	cl := cluster.Lenox()
	dilated := bareProfile(t, cl)
	dilated.ComputeDilation = 1.5
	cs := QuickCFD(2)
	base, err := Run(Spec{Job: job(t, cl, 1, 4, 1), Profile: bareProfile(t, cl), Case: cs})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(Spec{Job: job(t, cl, 1, 4, 1), Profile: dilated, Case: cs})
	if err != nil {
		t.Fatal(err)
	}
	if slow.TimePerStep <= base.TimePerStep {
		t.Fatalf("dilation had no effect: %v vs %v", slow.TimePerStep, base.TimePerStep)
	}
}

func TestSpecValidation(t *testing.T) {
	cl := cluster.Lenox()
	if _, err := Run(Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	bad := QuickCFD(2)
	bad.SimSteps = 0
	if _, err := Run(Spec{Job: job(t, cl, 1, 4, 1), Profile: bareProfile(t, cl), Case: bad}); err == nil {
		t.Error("invalid case accepted")
	}
}
