package alya

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/fabric"
	"repro/internal/mesh"
	"repro/internal/mpi"
	"repro/internal/navier"
	"repro/internal/omp"
	"repro/internal/sched"
	"repro/internal/solid"
	"repro/internal/units"
	"repro/internal/vtime"
)

func workUnits(f float64) units.Flops    { return units.Flops(f) }
func byteUnits(b float64) units.ByteSize { return units.ByteSize(b) }

// decomposeFor partitions a code's mesh over its ranks, aligning the z
// split with the nodes the rank block [firstRank, firstRank+ranks)
// spans under the job's block placement, so node boundaries are clean
// mesh cross-sections (what a topology-aware partitioner produces).
// When the group does not tile whole nodes the alignment degrades
// gracefully to the unaligned decomposition.
func decomposeFor(m mesh.Mesh, ranks int, job *sched.Job, firstRank int) (mesh.Grid, error) {
	align := 1
	if job.Placement == sched.PlaceBlock &&
		firstRank%job.RanksPerNode == 0 && ranks%job.RanksPerNode == 0 {
		align = ranks / job.RanksPerNode
	}
	for ; align >= 1; align-- {
		if ranks%align != 0 {
			continue
		}
		g, err := mesh.DecomposeAligned(m, ranks, align)
		if err == nil {
			return g, nil
		}
	}
	return mesh.Decompose(m, ranks)
}

// Mode selects between the real-numerics and workload-model executions.
type Mode int

// Execution modes.
const (
	// ModeModel charges compute analytically and exchanges size-only
	// messages costed like correctly sized payloads. Scales to the
	// paper's 12,288-core runs.
	ModeModel Mode = iota
	// ModeReal runs the actual solvers with real data.
	ModeReal
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeModel:
		return "model"
	case ModeReal:
		return "real"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Spec fully describes one execution cell.
type Spec struct {
	// Job is the validated placement (cluster, nodes, ranks, threads).
	Job *sched.Job
	// Profile is the container runtime's execution profile.
	Profile container.ExecProfile
	// Case is the Alya configuration.
	Case Case
	// Mode selects real numerics or the workload model.
	Mode Mode
	// Allreduce picks the collective algorithm (default recursive
	// doubling; the big FSI runs use reduce+bcast, whose binomial
	// trees over block placement act as a hierarchical reduction —
	// see the ablation bench).
	Allreduce mpi.AllreduceAlgo
	// Observer and KernelTracer are passive telemetry taps forwarded
	// into the MPI layer (see mpi.Config); neither affects the
	// execution's outcome.
	Observer     mpi.Observer
	KernelTracer vtime.Tracer
}

// Result reports one execution cell.
type Result struct {
	// Case, Runtime, FabricPath identify the cell.
	Case       string `json:"Case"`
	Runtime    string `json:"Runtime"`
	FabricPath string `json:"FabricPath"`
	// Nodes, Ranks, Threads echo the configuration.
	Nodes   int `json:"Nodes"`
	Ranks   int `json:"Ranks"`
	Threads int `json:"Threads"`
	// TimePerStep is the steady-state time per physical step.
	TimePerStep units.Seconds `json:"TimePerStep"`
	// Elapsed is TimePerStep × Case.Steps — the figure's y axis.
	Elapsed units.Seconds `json:"Elapsed"`
	// LaunchTime covers srun fan-out, container start skew, and the
	// initial barrier.
	LaunchTime units.Seconds `json:"LaunchTime"`
	// MPI holds the transport statistics.
	MPI mpi.Stats `json:"MPI"`
	// CommFraction is max rank MPI time / total solver time.
	CommFraction float64 `json:"CommFraction"`
	// AvgCGIters is the mean pressure-CG iteration count per step.
	AvgCGIters float64 `json:"AvgCGIters"`
	// MaxDivergence is the final max |∇·u| (ModeReal only).
	MaxDivergence float64 `json:"MaxDivergence"`
}

// Run executes one cell.
func Run(spec Spec) (Result, error) {
	if spec.Job == nil {
		return Result{}, fmt.Errorf("alya: no job")
	}
	if err := spec.Case.Validate(); err != nil {
		return Result{}, err
	}
	job := spec.Job
	intra := spec.Profile.IntraNode
	inter := spec.Profile.InterNode
	if err := intra.Validate(); err != nil {
		return Result{}, err
	}
	if err := inter.Validate(); err != nil {
		return Result{}, err
	}

	model := omp.DefaultModel(job.Cluster.Node)
	model.RanksPerNode = job.RanksPerNode

	launch := job.LaunchLatency()
	perRank := spec.Profile.LaunchPerRank
	cfg := mpi.Config{
		Ranks:  job.Ranks,
		Nodes:  job.Nodes,
		NodeOf: job.NodeOf,
		Path: func(src, dst int) *fabric.Transport {
			if job.SameNode(src, dst) {
				return &intra
			}
			return &inter
		},
		ComputeDilation: spec.Profile.ComputeDilation,
		Allreduce:       spec.Allreduce,
		StartupSkew: func(rank int) units.Seconds {
			local := rank % job.RanksPerNode
			return launch + perRank*units.Seconds(local+1)
		},
		Observer:     spec.Observer,
		KernelTracer: spec.KernelTracer,
	}

	run := runState{spec: spec, model: model}
	var body func(r *mpi.Rank)
	switch spec.Case.Kind {
	case CFD:
		grid, err := decomposeFor(spec.Case.FluidMesh, job.Ranks, job, 0)
		if err != nil {
			return Result{}, err
		}
		run.fluidGrid = grid
		body = run.cfdBody
	case FSI:
		fluidRanks := int(float64(job.Ranks) * spec.Case.FluidFraction)
		if fluidRanks < 1 {
			fluidRanks = 1
		}
		if fluidRanks >= job.Ranks {
			fluidRanks = job.Ranks - 1
		}
		fg, err := decomposeFor(spec.Case.FluidMesh, fluidRanks, job, 0)
		if err != nil {
			return Result{}, err
		}
		sg, err := decomposeFor(spec.Case.SolidMesh, job.Ranks-fluidRanks, job, fluidRanks)
		if err != nil {
			return Result{}, err
		}
		run.fluidGrid, run.solidGrid = fg, sg
		run.fluidRanks = fluidRanks
		body = run.fsiBody
	default:
		return Result{}, fmt.Errorf("alya: unknown case kind %v", spec.Case.Kind)
	}

	st, err := mpi.Run(cfg, body)
	if err != nil {
		return Result{}, err
	}
	if run.err != nil {
		return Result{}, run.err
	}

	perStep := run.solveTime / units.Seconds(spec.Case.SimSteps)
	res := Result{
		Case:        spec.Case.Name,
		Runtime:     spec.Profile.RuntimeName,
		FabricPath:  spec.Profile.FabricPath,
		Nodes:       job.Nodes,
		Ranks:       job.Ranks,
		Threads:     job.ThreadsPerRank,
		TimePerStep: perStep,
		Elapsed:     perStep * units.Seconds(spec.Case.Steps),
		LaunchTime:  run.solveStart,
		MPI:         st,
		AvgCGIters:  run.cgIters / float64(spec.Case.SimSteps),
	}
	if run.solveTime > 0 {
		res.CommFraction = float64(st.MaxCommTime-run.startupComm) / float64(run.solveTime)
		if res.CommFraction < 0 {
			res.CommFraction = 0
		}
	}
	res.MaxDivergence = run.maxDiv
	return res, nil
}

// runState carries cross-rank result channels. All fields written by
// rank bodies are written under the vtime kernel's single-running-proc
// invariant — the direct handoff chain orders every write before the
// next rank observes it — so no locking is needed; rank 0 owns the
// scalar outcomes.
type runState struct {
	spec      Spec
	model     omp.Model
	fluidGrid mesh.Grid
	solidGrid mesh.Grid
	// fluidRanks is the world size of the fluid code (FSI).
	fluidRanks int

	solveStart  units.Seconds
	solveTime   units.Seconds
	startupComm units.Seconds
	cgIters     float64
	maxDiv      float64
	err         error
}

// fail records the first error; subsequent ranks keep the original.
func (rs *runState) fail(err error) {
	if rs.err == nil {
		rs.err = err
	}
}

// cfdBody is the per-rank program of the CFD case.
func (rs *runState) cfdBody(r *mpi.Rank) {
	comm := r.World()
	part := rs.fluidGrid.Part(comm.Rank())
	rc := newRankComm(comm, part, rs.model, rs.spec.Job.ThreadsPerRank)

	r.Barrier()
	start := r.Now()
	if r.ID() == 0 {
		rs.solveStart = start
		rs.startupComm = r.CommTime()
	}

	switch rs.spec.Mode {
	case ModeReal:
		solver, err := navier.NewSolver(part, rs.spec.Case.FluidParams, rc)
		if err != nil {
			rs.fail(err)
			return
		}
		for step := 0; step < rs.spec.Case.SimSteps; step++ {
			stats, err := solver.Step()
			if err != nil {
				rs.fail(err)
				return
			}
			if r.ID() == 0 {
				rs.cgIters += float64(stats.CGIterations)
				rs.maxDiv = stats.MaxDivergence
			}
		}
	default:
		for step := 0; step < rs.spec.Case.SimSteps; step++ {
			rs.modelCFDStep(rc, part)
		}
		if r.ID() == 0 {
			rs.cgIters = float64(rs.spec.Case.ModelCGIters * rs.spec.Case.SimSteps)
		}
	}

	r.Barrier()
	if r.ID() == 0 {
		rs.solveTime = r.Now() - start
	}
}

// modelCFDStep mirrors navier.(*Solver).Step's compute/communication
// structure without touching field data.
func (rs *runState) modelCFDStep(rc *rankComm, part mesh.Partition) {
	cells := float64(part.Cells())
	// Tentative velocity: assemble, then exchange the three components.
	rc.Charge(cells*navier.AssemblyFlopsPerCell, cells*navier.AssemblyBytesPerCell)
	rc.ExchangeModel(3)
	// Pressure CG: per iteration one stencil apply (with its pressure
	// halo) and two global dot products.
	for it := 0; it < rs.spec.Case.ModelCGIters; it++ {
		rc.Charge(cells*navier.CGIterFlopsPerCell, cells*navier.CGIterBytesPerCell)
		rc.ExchangeModel(1)
		rc.AllSum(1)
		rc.AllSum(1)
	}
	// Projection, pressure halo, final velocity sync and diagnostics.
	rc.Charge(cells*navier.ProjectionFlopsPerCell, cells*navier.ProjectionBytesPerCell)
	rc.ExchangeModel(1)
	rc.ExchangeModel(3)
	rc.AllMax(1)
	rc.AllMax(1)
}

// fsiBody is the per-rank program of the coupled FSI case: world ranks
// [0, fluidRanks) run the fluid code, the rest run the solid code, and
// the two exchange interface data every coupling iteration — two code
// instances, exactly as the paper describes.
func (rs *runState) fsiBody(r *mpi.Rank) {
	isFluid := r.ID() < rs.fluidRanks
	var group []int
	if isFluid {
		group = seq(0, rs.fluidRanks)
	} else {
		group = seq(rs.fluidRanks, r.Size())
	}
	comm, err := r.NewComm(group)
	if err != nil {
		rs.fail(err)
		return
	}

	solidRanks := r.Size() - rs.fluidRanks
	// Pairing: fluid comm-rank f couples with solid comm-rank
	// f*solidRanks/fluidRanks; the reverse mapping on the solid side
	// enumerates its fluid partners deterministically.
	pairOfFluid := func(f int) int { return f * solidRanks / rs.fluidRanks }

	r.Barrier()
	start := r.Now()
	if r.ID() == 0 {
		rs.solveStart = start
		rs.startupComm = r.CommTime()
	}

	if isFluid {
		rs.fluidFSI(r, comm, pairOfFluid)
	} else {
		rs.solidFSI(r, comm, pairOfFluid)
	}
	if rs.err != nil {
		return
	}

	r.Barrier()
	if r.ID() == 0 {
		rs.solveTime = r.Now() - start
	}
}

// interfaceCells returns the coupling-payload size for a fluid rank:
// its wall-adjacent cell count (≥ 1 so every pair exchanges something,
// as Alya's coupling keeps all ranks in the communication schedule).
func interfaceCells(part mesh.Partition) int {
	n := part.WallCells()
	if n < 1 {
		n = 1
	}
	return n
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// fluidFSI runs the fluid side: a CFD step plus coupling exchanges.
func (rs *runState) fluidFSI(r *mpi.Rank, comm *mpi.Comm, pairOfFluid func(int) int) {
	part := rs.fluidGrid.Part(comm.Rank())
	rc := newRankComm(comm, part, rs.model, rs.spec.Job.ThreadsPerRank)
	peer := rs.fluidRanks + pairOfFluid(comm.Rank()) // world rank of solid partner
	iface := interfaceCells(part)
	traction := make([]float64, iface)
	motion := make([]float64, iface)

	var solver *navier.Solver
	if rs.spec.Mode == ModeReal {
		var err error
		solver, err = navier.NewSolver(part, rs.spec.Case.FluidParams, rc)
		if err != nil {
			rs.fail(err)
			return
		}
	}

	for step := 0; step < rs.spec.Case.SimSteps; step++ {
		if rs.spec.Mode == ModeReal {
			stats, err := solver.Step()
			if err != nil {
				rs.fail(err)
				return
			}
			if r.ID() == 0 {
				rs.cgIters += float64(stats.CGIterations)
				rs.maxDiv = stats.MaxDivergence
			}
		} else {
			rs.modelCFDStep(rc, part)
			if r.ID() == 0 {
				rs.cgIters += float64(rs.spec.Case.ModelCGIters)
			}
		}
		for ci := 0; ci < rs.spec.Case.CouplingIters; ci++ {
			if rs.spec.Mode == ModeReal {
				wp := solver.WallPressure()
				for i := range traction {
					traction[i] = wp
				}
			}
			r.Send(peer, tagCoupleTraction, traction)
			r.Recv(peer, tagCoupleMotion, motion)
			if rs.spec.Mode == ModeReal {
				solver.SetWallVelocity(motion[0] * 1e-3)
			}
		}
	}
}

// solidFSI runs the structural side: wall substeps plus coupling.
func (rs *runState) solidFSI(r *mpi.Rank, comm *mpi.Comm, pairOfFluid func(int) int) {
	part := rs.solidGrid.Part(comm.Rank())
	rc := newRankComm(comm, part, rs.model, rs.spec.Job.ThreadsPerRank)

	// Enumerate the fluid comm-ranks paired to this solid comm-rank.
	var partners []int
	for f := 0; f < rs.fluidRanks; f++ {
		if pairOfFluid(f) == comm.Rank() {
			partners = append(partners, f)
		}
	}
	// Interface payload sizes follow the fluid partner's wall size.
	bufs := make([][]float64, len(partners))
	for i, f := range partners {
		bufs[i] = make([]float64, interfaceCells(rs.fluidGrid.Part(f)))
	}

	var solver *solid.Solver
	if rs.spec.Mode == ModeReal {
		var err error
		solver, err = solid.NewSolver(part, rs.spec.Case.SolidParams, rc)
		if err != nil {
			rs.fail(err)
			return
		}
	}

	cells := float64(part.Cells())
	for step := 0; step < rs.spec.Case.SimSteps; step++ {
		var meanVel float64
		for sub := 0; sub < rs.spec.Case.SolidSubsteps; sub++ {
			if rs.spec.Mode == ModeReal {
				stats, err := solver.Step()
				if err != nil {
					rs.fail(err)
					return
				}
				meanVel = stats.MeanRadialVelocity
			} else {
				rc.Charge(cells*solid.StepFlopsPerCell, cells*solid.StepBytesPerCell)
				rc.ExchangeModel(3)
				rc.AllSum(1)
				rc.AllSum(1)
				rc.AllMax(1)
			}
		}
		for ci := 0; ci < rs.spec.Case.CouplingIters; ci++ {
			var tractionSum float64
			for i, f := range partners {
				r.Recv(f, tagCoupleTraction, bufs[i])
				tractionSum += bufs[i][0]
			}
			if rs.spec.Mode == ModeReal && len(partners) > 0 {
				solver.SetTraction(tractionSum / float64(len(partners)))
			}
			for i, f := range partners {
				for j := range bufs[i] {
					bufs[i][j] = meanVel
				}
				r.Send(f, tagCoupleMotion, bufs[i])
			}
		}
	}
}
