// Package alya drives the two biological use cases of the study — the
// artery CFD case and the artery FSI case — over the simulated MPI, in
// either of two execution modes:
//
//   - ModeReal runs the actual Navier–Stokes / elasticity numerics with
//     real halo payloads (small meshes: tests, examples).
//   - ModeModel traverses the identical communication structure with
//     correctly sized payloads and charges the identical per-cell
//     compute costs, without allocating or computing the fields
//     (paper-scale meshes: 20–50M cells, up to 12,288 ranks).
//
// Both modes share the cost constants exported by the navier and solid
// packages, so the virtual-time behaviour of a configuration is the
// same in both; TestExecModesAgree asserts it.
package alya

import (
	"fmt"
	"strings"

	"repro/internal/mesh"
	"repro/internal/navier"
	"repro/internal/solid"
)

// Kind distinguishes the two use cases.
type Kind int

// The use cases.
const (
	// CFD is the single-code blood-flow simulation.
	CFD Kind = iota
	// FSI is the two-code fluid–structure simulation.
	FSI
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CFD:
		return "CFD"
	case FSI:
		return "FSI"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Case is one benchmark configuration of Alya.
type Case struct {
	// Name identifies the case in reports.
	Name string `json:"Name"`
	// Kind selects CFD or FSI.
	Kind Kind `json:"Kind"`
	// FluidMesh is the artery lumen mesh.
	FluidMesh mesh.Mesh `json:"FluidMesh"`
	// SolidMesh is the artery wall mesh (FSI only).
	SolidMesh mesh.Mesh `json:"SolidMesh"`
	// FluidParams and SolidParams configure the physics (ModeReal).
	FluidParams navier.Params `json:"FluidParams"`
	SolidParams solid.Params  `json:"SolidParams"`
	// Steps is the number of physical time steps the reported elapsed
	// time covers (the paper's runs are fixed-length simulations).
	Steps int `json:"Steps"`
	// SimSteps is how many steps are actually simulated; the per-step
	// time is steady-state, so Elapsed = TimePerStep × Steps. Must be
	// ≥ 1 and ≤ Steps.
	SimSteps int `json:"SimSteps"`
	// ModelCGIters fixes the pressure-CG iteration count per step in
	// ModeModel (ModeReal iterates to tolerance).
	ModelCGIters int `json:"ModelCGIters"`
	// SolidSubsteps is how many explicit structural steps run per
	// fluid step (FSI; the wall's stable dt is smaller).
	SolidSubsteps int `json:"SolidSubsteps"`
	// CouplingIters is the number of staggered coupling exchanges per
	// step (FSI).
	CouplingIters int `json:"CouplingIters"`
	// FluidFraction is the share of ranks given to the fluid code
	// (FSI); the remainder runs the solid code.
	FluidFraction float64 `json:"FluidFraction"`
}

// Validate reports an inconsistent case.
func (c *Case) Validate() error {
	if c.Steps < 1 || c.SimSteps < 1 || c.SimSteps > c.Steps {
		return fmt.Errorf("alya: case %q steps %d / sim steps %d", c.Name, c.Steps, c.SimSteps)
	}
	if c.ModelCGIters < 1 {
		return fmt.Errorf("alya: case %q needs a model CG iteration count", c.Name)
	}
	if c.FluidMesh.Cells() == 0 {
		return fmt.Errorf("alya: case %q has no fluid mesh", c.Name)
	}
	if c.Kind == FSI {
		if c.SolidMesh.Cells() == 0 {
			return fmt.Errorf("alya: FSI case %q has no solid mesh", c.Name)
		}
		if c.FluidFraction <= 0 || c.FluidFraction >= 1 {
			return fmt.Errorf("alya: FSI case %q fluid fraction %v", c.Name, c.FluidFraction)
		}
		if c.SolidSubsteps < 1 || c.CouplingIters < 1 {
			return fmt.Errorf("alya: FSI case %q substeps %d / coupling iters %d",
				c.Name, c.SolidSubsteps, c.CouplingIters)
		}
	}
	return nil
}

func mustMesh(nx, ny, nz int, h float64) mesh.Mesh {
	m, err := mesh.NewMesh(nx, ny, nz, h, h, h)
	if err != nil {
		panic(err)
	}
	return m
}

// ArteryCFDLenox is the Fig. 1 case: the artery CFD simulation sized
// for Lenox's 112 cores (≈20M cells, 45 steps).
func ArteryCFDLenox() Case {
	return Case{
		Name:         "artery-cfd-lenox",
		Kind:         CFD,
		FluidMesh:    mustMesh(288, 288, 240, 1e-4),
		FluidParams:  navier.DefaultParams(),
		Steps:        45,
		SimSteps:     2,
		ModelCGIters: 120,
	}
}

// ArteryCFDCTEPower is the Fig. 2 case: the artery CFD simulation sized
// for CTE-POWER's 2–16 nodes (≈20M cells, 120 steps).
func ArteryCFDCTEPower() Case {
	return Case{
		Name:         "artery-cfd-ctepower",
		Kind:         CFD,
		FluidMesh:    mustMesh(256, 256, 300, 1e-4),
		FluidParams:  navier.DefaultParams(),
		Steps:        120,
		SimSteps:     2,
		ModelCGIters: 100,
	}
}

// ArteryFSIMareNostrum4 is the Fig. 3 case: the coupled artery FSI
// simulation sized to strong-scale to 12,288 cores (fluid ≈52M cells,
// wall ≈14M cells).
func ArteryFSIMareNostrum4() Case {
	return Case{
		Name:          "artery-fsi-mn4",
		Kind:          FSI,
		FluidMesh:     mustMesh(384, 384, 352, 5e-5),
		SolidMesh:     mustMesh(384, 384, 96, 5e-5),
		FluidParams:   navier.DefaultParams(),
		SolidParams:   solid.DefaultParams(),
		Steps:         100,
		SimSteps:      1,
		ModelCGIters:  100,
		SolidSubsteps: 2,
		CouplingIters: 2,
		FluidFraction: 0.75,
	}
}

// CaseNames lists the named cases a scenario spec can select, in
// paper order.
func CaseNames() []string {
	return []string{"artery-cfd-lenox", "artery-cfd-ctepower", "artery-fsi-mn4", "quick-cfd", "quick-fsi"}
}

// CaseByName finds a named case. The quick cases default to 5 steps;
// callers wanting a different length override Steps/SimSteps on the
// returned value (scenario specs expose exactly that).
func CaseByName(name string) (Case, error) {
	switch name {
	case "artery-cfd-lenox":
		return ArteryCFDLenox(), nil
	case "artery-cfd-ctepower":
		return ArteryCFDCTEPower(), nil
	case "artery-fsi-mn4":
		return ArteryFSIMareNostrum4(), nil
	case "quick-cfd":
		return QuickCFD(5), nil
	case "quick-fsi":
		return QuickFSI(5), nil
	}
	return Case{}, fmt.Errorf("alya: unknown case %q (known: %s)", name, strings.Join(CaseNames(), ", "))
}

// QuickCFD is a laptop-scale CFD case for tests and the quickstart
// example: real numerics finish in well under a second.
func QuickCFD(steps int) Case {
	p := navier.DefaultParams()
	p.Dt = 5e-4
	p.CGTol = 1e-7
	return Case{
		Name:         "quick-cfd",
		Kind:         CFD,
		FluidMesh:    mustMesh(16, 16, 24, 1e-3),
		FluidParams:  p,
		Steps:        steps,
		SimSteps:     steps,
		ModelCGIters: 40,
	}
}

// QuickFSI is a laptop-scale FSI case for tests and examples.
func QuickFSI(steps int) Case {
	fp := navier.DefaultParams()
	fp.Dt = 5e-4
	sp := solid.DefaultParams()
	sp.Dt = 5e-6
	return Case{
		Name:          "quick-fsi",
		Kind:          FSI,
		FluidMesh:     mustMesh(12, 12, 16, 1e-3),
		SolidMesh:     mustMesh(12, 12, 8, 1e-3),
		FluidParams:   fp,
		SolidParams:   sp,
		Steps:         steps,
		SimSteps:      steps,
		ModelCGIters:  30,
		SolidSubsteps: 2,
		CouplingIters: 2,
		FluidFraction: 0.5,
	}
}
