package alya

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/mesh"
	"repro/internal/mpi"
	"repro/internal/omp"
)

// Halo tags live in the application band (≥ 0). The tag encodes the
// *sender's* face so both sides agree: a receiver expecting data across
// its face F matches the sender's opposite face.
const tagHaloBase = 100

// coupling tags for the FSI interface exchange.
const (
	tagCoupleTraction = 50
	tagCoupleMotion   = 51
)

// rankComm is the MPI-backed field.Comm for one rank of one code: it
// performs bundled halo exchanges with the partition's face neighbours,
// global reductions over the code's communicator, and charges compute
// time through the OpenMP cost model.
type rankComm struct {
	comm    *mpi.Comm
	part    mesh.Partition
	model   omp.Model
	threads int
	nbrs    []mesh.Neighbor

	// reusable per-neighbour buffers, grown on demand
	sendBufs [][]float64
	recvBufs [][]float64
	// reqs is the reusable request slice for bundled exchanges.
	reqs []*mpi.Request

	// commCalls counts Exchange invocations, for diagnostics.
	commCalls int
}

var _ field.Comm = (*rankComm)(nil)

// newRankComm builds the adapter for a partition owned by comm rank
// part.Rank (which must equal comm.Rank()).
func newRankComm(comm *mpi.Comm, part mesh.Partition, model omp.Model, threads int) *rankComm {
	if part.Rank != comm.Rank() {
		panic(fmt.Sprintf("alya: partition rank %d != comm rank %d", part.Rank, comm.Rank()))
	}
	nbrs := part.Neighbors()
	rc := &rankComm{
		comm: comm, part: part, model: model, threads: threads, nbrs: nbrs,
		sendBufs: make([][]float64, len(nbrs)),
		recvBufs: make([][]float64, len(nbrs)),
	}
	return rc
}

func (rc *rankComm) buffers(i, n int) (snd, rcv []float64) {
	if cap(rc.sendBufs[i]) < n {
		rc.sendBufs[i] = make([]float64, n)
		rc.recvBufs[i] = make([]float64, n)
	}
	return rc.sendBufs[i][:n], rc.recvBufs[i][:n]
}

// Exchange implements field.Comm: one bundled message per neighbour per
// direction carrying all fields' face layers.
func (rc *rankComm) Exchange(fields ...*field.Field) {
	if len(rc.nbrs) == 0 {
		return
	}
	rc.commCalls++
	reqs := make([]*mpi.Request, 0, 2*len(rc.nbrs))
	// Post all receives first (good MPI practice, and required for the
	// rendezvous protocol to overlap).
	for i, nb := range rc.nbrs {
		n := nb.Count * len(fields)
		_, rcv := rc.buffers(i, n)
		reqs = append(reqs, rc.comm.Irecv(nb.Rank, tagHaloBase+int(nb.Face.Opposite()), rcv))
	}
	for i, nb := range rc.nbrs {
		n := nb.Count * len(fields)
		snd, _ := rc.buffers(i, n)
		for fi, f := range fields {
			f.PackFace(nb.Face, snd[fi*nb.Count:(fi+1)*nb.Count])
		}
		reqs = append(reqs, rc.comm.Isend(nb.Rank, tagHaloBase+int(nb.Face), snd))
	}
	rc.comm.Base().Wait(reqs...)
	for i, nb := range rc.nbrs {
		n := nb.Count * len(fields)
		_, rcv := rc.buffers(i, n)
		for fi, f := range fields {
			f.UnpackGhost(nb.Face, rcv[fi*nb.Count:(fi+1)*nb.Count])
		}
	}
}

// ExchangeModel performs the halo exchange of nFields bundled fields
// without any field data: size-only messages pay every transport cost
// of the correctly sized payloads while moving no bytes in host
// memory. ModeModel's replacement for Exchange.
func (rc *rankComm) ExchangeModel(nFields int) {
	if len(rc.nbrs) == 0 {
		return
	}
	rc.commCalls++
	if cap(rc.reqs) < 2*len(rc.nbrs) {
		rc.reqs = make([]*mpi.Request, 0, 2*len(rc.nbrs))
	}
	reqs := rc.reqs[:0]
	for _, nb := range rc.nbrs {
		reqs = append(reqs, rc.comm.IrecvModel(nb.Rank, tagHaloBase+int(nb.Face.Opposite()), nb.Count*nFields))
	}
	for _, nb := range rc.nbrs {
		reqs = append(reqs, rc.comm.IsendModel(nb.Rank, tagHaloBase+int(nb.Face), nb.Count*nFields))
	}
	rc.comm.Base().Wait(reqs...)
}

// AllSum implements field.Comm.
func (rc *rankComm) AllSum(v float64) float64 {
	return rc.comm.AllreduceScalar(v, mpi.OpSum)
}

// AllMax implements field.Comm.
func (rc *rankComm) AllMax(v float64) float64 {
	return rc.comm.AllreduceScalar(v, mpi.OpMax)
}

// Charge implements field.Comm: the reported work becomes virtual time
// through the hybrid OpenMP region model.
func (rc *rankComm) Charge(flops, bytes float64) {
	t := rc.model.RegionTime(omp.Region{
		Flops:          workUnits(flops),
		MemBytes:       byteUnits(bytes),
		SerialFraction: 0.015,
		Imbalance:      0.07,
		Schedule:       omp.ScheduleStatic,
	}, rc.threads)
	rc.comm.Base().Compute(t)
}
