// Package topology models compute-node hardware: instruction-set
// architectures, CPU models, sockets, NUMA domains, and the effective
// compute and memory-bandwidth rates the performance model charges.
//
// Rates are *effective* application rates for a memory-bound implicit
// CFD code (sparse kernels dominated by irregular memory traffic), not
// vendor peak numbers. They were calibrated so the reproduced figures
// land in the ranges the paper reports; see DESIGN.md §2.
package topology

import (
	"fmt"

	"repro/internal/units"
)

// ISA is a processor instruction-set architecture. Container images are
// built for exactly one ISA and can only execute on matching hosts —
// this is the hard portability boundary of the paper's §B.2.
type ISA string

// The three architectures in the study plus the Haswell ISA (amd64 too).
const (
	AMD64   ISA = "amd64"
	PPC64LE ISA = "ppc64le"
	ARM64   ISA = "arm64"
)

// CPUModel describes one processor package (a socket's worth of CPU).
type CPUModel struct {
	// Name is the marketing name, e.g. "Intel Xeon Platinum 8160".
	Name string `json:"Name"`
	// ISA is the instruction set the package executes.
	ISA ISA `json:"ISA"`
	// Cores is the number of physical cores per package.
	Cores int `json:"Cores"`
	// ClockGHz is the nominal base clock, reported for documentation.
	ClockGHz float64 `json:"ClockGHz"`
	// EffectiveCoreRate is the sustained per-core throughput on the
	// Alya-like workload (sparse FE assembly + Krylov solves).
	EffectiveCoreRate units.FlopRate `json:"EffectiveCoreRate"`
	// MemBandwidth is the sustained per-socket memory bandwidth
	// (STREAM-like) shared by all cores of the package.
	MemBandwidth units.Rate `json:"MemBandwidth"`
	// PerCoreMemBW caps what a single core can draw from the memory
	// subsystem; a one-thread rank cannot saturate its socket.
	PerCoreMemBW units.Rate `json:"PerCoreMemBW"`
}

// NodeSpec is a compute node: a number of identical sockets plus the
// NUMA behaviour that the hybrid MPI×OpenMP model needs.
type NodeSpec struct {
	// CPU is the socket processor model.
	CPU CPUModel `json:"CPU"`
	// Sockets is the number of CPU packages per node.
	Sockets int `json:"Sockets"`
	// MemoryGiB is the installed RAM, for documentation and image
	// staging models (tmpfs-backed extraction).
	MemoryGiB float64 `json:"MemoryGiB"`
	// NUMARemotePenalty multiplies effective memory bandwidth for
	// threads whose team spans sockets (remote accesses + coherence).
	// 1.0 means no penalty; typical values are 0.75–0.9.
	NUMARemotePenalty float64 `json:"NUMARemotePenalty"`
	// SharedMemRate is the intra-node MPI shared-memory copy bandwidth.
	SharedMemRate units.Rate `json:"SharedMemRate"`
	// SharedMemLatency is the intra-node MPI shared-memory latency.
	SharedMemLatency units.Seconds `json:"SharedMemLatency"`
}

// CoresPerNode returns the total physical cores on the node.
func (n NodeSpec) CoresPerNode() int { return n.CPU.Cores * n.Sockets }

// TotalMemBandwidth returns the node's aggregate memory bandwidth.
func (n NodeSpec) TotalMemBandwidth() units.Rate {
	return n.CPU.MemBandwidth * units.Rate(n.Sockets)
}

// NodeRate returns the node's aggregate effective compute rate.
func (n NodeSpec) NodeRate() units.FlopRate {
	return n.CPU.EffectiveCoreRate * units.FlopRate(n.CoresPerNode())
}

// Validate reports configuration errors (zero cores, missing rates).
func (n NodeSpec) Validate() error {
	if n.CPU.Cores <= 0 {
		return fmt.Errorf("topology: node %q has %d cores per socket", n.CPU.Name, n.CPU.Cores)
	}
	if n.Sockets <= 0 {
		return fmt.Errorf("topology: node %q has %d sockets", n.CPU.Name, n.Sockets)
	}
	if n.CPU.EffectiveCoreRate <= 0 {
		return fmt.Errorf("topology: node %q has no effective core rate", n.CPU.Name)
	}
	if n.CPU.MemBandwidth <= 0 {
		return fmt.Errorf("topology: node %q has no memory bandwidth", n.CPU.Name)
	}
	if n.CPU.PerCoreMemBW <= 0 {
		return fmt.Errorf("topology: node %q has no per-core memory bandwidth", n.CPU.Name)
	}
	if n.NUMARemotePenalty <= 0 || n.NUMARemotePenalty > 1 {
		return fmt.Errorf("topology: node %q NUMA penalty %v out of (0,1]", n.CPU.Name, n.NUMARemotePenalty)
	}
	return nil
}

// SocketsSpanned returns how many sockets a team of the given width
// occupies under compact (cores-first) binding.
func (n NodeSpec) SocketsSpanned(threads int) int {
	if threads <= 0 {
		return 1
	}
	span := (threads + n.CPU.Cores - 1) / n.CPU.Cores
	if span < 1 {
		span = 1
	}
	if span > n.Sockets {
		span = n.Sockets
	}
	return span
}

// The four processor models used in the paper's clusters. Effective
// rates are calibrated for the Alya-like workload; see package comment.
var (
	// HaswellE52697v3 powers the Lenox cluster (14 cores/socket).
	HaswellE52697v3 = CPUModel{
		Name:              "Intel Xeon E5-2697 v3",
		ISA:               AMD64,
		Cores:             14,
		ClockGHz:          2.6,
		EffectiveCoreRate: units.GFlopsRate(2.0),
		MemBandwidth:      55 * units.GBps,
		PerCoreMemBW:      11 * units.GBps,
	}
	// SkylakePlatinum8160 powers MareNostrum4 (24 cores/socket).
	SkylakePlatinum8160 = CPUModel{
		Name:              "Intel Xeon Platinum 8160",
		ISA:               AMD64,
		Cores:             24,
		ClockGHz:          2.1,
		EffectiveCoreRate: units.GFlopsRate(2.6),
		MemBandwidth:      105 * units.GBps,
		PerCoreMemBW:      13 * units.GBps,
	}
	// Power9_8335GTG powers CTE-POWER (20 cores/socket).
	Power9_8335GTG = CPUModel{
		Name:              "IBM Power9 8335-GTG",
		ISA:               PPC64LE,
		Cores:             20,
		ClockGHz:          3.0,
		EffectiveCoreRate: units.GFlopsRate(2.3),
		MemBandwidth:      120 * units.GBps,
		PerCoreMemBW:      18 * units.GBps,
	}
	// ThunderXCN8890 powers the Mont-Blanc ThunderX mini-cluster
	// (48 cores/socket).
	ThunderXCN8890 = CPUModel{
		Name:              "Cavium ThunderX CN8890",
		ISA:               ARM64,
		Cores:             48,
		ClockGHz:          1.8,
		EffectiveCoreRate: units.GFlopsRate(0.7),
		MemBandwidth:      40 * units.GBps,
		PerCoreMemBW:      2.5 * units.GBps,
	}
)

// Node presets matching the paper's cluster descriptions.
var (
	// LenoxNode: 2× E5-2697v3, 28 cores.
	LenoxNode = NodeSpec{
		CPU:               HaswellE52697v3,
		Sockets:           2,
		MemoryGiB:         128,
		NUMARemotePenalty: 0.85,
		SharedMemRate:     8 * units.GBps,
		SharedMemLatency:  0.5 * units.Microsecond,
	}
	// MareNostrum4Node: 2× Platinum 8160, 48 cores.
	MareNostrum4Node = NodeSpec{
		CPU:               SkylakePlatinum8160,
		Sockets:           2,
		MemoryGiB:         96,
		NUMARemotePenalty: 0.88,
		SharedMemRate:     10 * units.GBps,
		SharedMemLatency:  0.4 * units.Microsecond,
	}
	// CTEPowerNode: 2× Power9 8335-GTG, 40 cores.
	CTEPowerNode = NodeSpec{
		CPU:               Power9_8335GTG,
		Sockets:           2,
		MemoryGiB:         512,
		NUMARemotePenalty: 0.85,
		SharedMemRate:     12 * units.GBps,
		SharedMemLatency:  0.45 * units.Microsecond,
	}
	// ThunderXNode: 2× CN8890, 96 cores.
	ThunderXNode = NodeSpec{
		CPU:               ThunderXCN8890,
		Sockets:           2,
		MemoryGiB:         128,
		NUMARemotePenalty: 0.80,
		SharedMemRate:     5 * units.GBps,
		SharedMemLatency:  0.8 * units.Microsecond,
	}
)
