package topology

import (
	"testing"

	"repro/internal/units"
)

func TestPresetNodesValid(t *testing.T) {
	for _, n := range []NodeSpec{LenoxNode, MareNostrum4Node, CTEPowerNode, ThunderXNode} {
		if err := n.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", n.CPU.Name, err)
		}
	}
}

func TestCoresPerNodeMatchPaper(t *testing.T) {
	cases := []struct {
		node NodeSpec
		want int
	}{
		{LenoxNode, 28},
		{MareNostrum4Node, 48},
		{CTEPowerNode, 40},
		{ThunderXNode, 96},
	}
	for _, c := range cases {
		if got := c.node.CoresPerNode(); got != c.want {
			t.Errorf("%s: %d cores/node, paper says %d", c.node.CPU.Name, got, c.want)
		}
	}
}

func TestISAs(t *testing.T) {
	if LenoxNode.CPU.ISA != AMD64 || MareNostrum4Node.CPU.ISA != AMD64 {
		t.Error("Intel nodes must be amd64")
	}
	if CTEPowerNode.CPU.ISA != PPC64LE {
		t.Error("Power9 must be ppc64le")
	}
	if ThunderXNode.CPU.ISA != ARM64 {
		t.Error("ThunderX must be arm64")
	}
}

func TestSocketsSpanned(t *testing.T) {
	n := LenoxNode // 2 × 14 cores
	cases := []struct{ threads, want int }{
		{0, 1}, {1, 1}, {14, 1}, {15, 2}, {28, 2}, {99, 2},
	}
	for _, c := range cases {
		if got := n.SocketsSpanned(c.threads); got != c.want {
			t.Errorf("SocketsSpanned(%d) = %d, want %d", c.threads, got, c.want)
		}
	}
}

func TestAggregateRates(t *testing.T) {
	n := MareNostrum4Node
	if got := n.TotalMemBandwidth(); got != 2*105*units.GBps {
		t.Errorf("total mem bw = %v", got)
	}
	wantRate := units.FlopRate(48) * units.GFlopsRate(2.6)
	if got := n.NodeRate(); got != wantRate {
		t.Errorf("node rate = %v, want %v", got, wantRate)
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	good := LenoxNode
	bad := []func(*NodeSpec){
		func(n *NodeSpec) { n.CPU.Cores = 0 },
		func(n *NodeSpec) { n.Sockets = 0 },
		func(n *NodeSpec) { n.CPU.EffectiveCoreRate = 0 },
		func(n *NodeSpec) { n.CPU.MemBandwidth = 0 },
		func(n *NodeSpec) { n.CPU.PerCoreMemBW = 0 },
		func(n *NodeSpec) { n.NUMARemotePenalty = 0 },
		func(n *NodeSpec) { n.NUMARemotePenalty = 1.5 },
	}
	for i, mutate := range bad {
		n := good
		mutate(&n)
		if err := n.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestPerCoreBelowSocketBandwidth(t *testing.T) {
	// Sanity of the calibration: one core must not be able to saturate
	// its socket.
	for _, cpu := range []CPUModel{HaswellE52697v3, SkylakePlatinum8160, Power9_8335GTG, ThunderXCN8890} {
		if cpu.PerCoreMemBW >= cpu.MemBandwidth {
			t.Errorf("%s: per-core bw %v >= socket bw %v", cpu.Name, cpu.PerCoreMemBW, cpu.MemBandwidth)
		}
	}
}
