// Package containerhpc reproduces "Containers in HPC: A Scalability and
// Portability Study in Production Biological Simulations" (Rudyy et
// al., IPDPS 2019) as a deterministic simulation study.
//
// The package is a facade over the internal engine. It exposes:
//
//   - the four study clusters (Lenox, MareNostrum4, CTE-POWER,
//     ThunderX) with their processors, interconnects, and filesystems;
//   - the container runtimes (Docker, Singularity, Shifter) plus the
//     bare-metal reference, with image building in the paper's two
//     techniques (system-specific and self-contained);
//   - the Alya-like workloads (artery CFD and coupled FSI) that run
//     over a virtual-time MPI with real numerics or a calibrated
//     workload model;
//   - the experiments that regenerate every figure and table of the
//     paper's evaluation.
//
// Quick start:
//
//	cl := containerhpc.Lenox()
//	rt := containerhpc.NewSingularity()
//	img, _ := containerhpc.BuildImage(rt, cl, containerhpc.SystemSpecific)
//	res, _ := containerhpc.RunCell(containerhpc.Cell{
//		Cluster: cl, Runtime: rt, Image: img,
//		Case:  containerhpc.QuickCFD(5),
//		Nodes: 2, Ranks: 8, Threads: 1,
//		Mode: containerhpc.ModeReal,
//	})
//	fmt.Println(res.Exec.TimePerStep)
//
// All results are exact functions of their inputs: the simulator is a
// sequential discrete-event machine with a deterministic schedule.
package containerhpc

import (
	"io"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleettrace"
	"repro/internal/mesh"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/registry"
	"repro/internal/resultdb"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/vtime"
)

// Re-exported model types. The aliases give external users the full
// internal types without reaching into internal packages.
type (
	// Cluster is one HPC machine (topology + fabric + storage).
	Cluster = cluster.Cluster
	// Runtime is a container technology under study.
	Runtime = container.Runtime
	// Image is a built container image.
	Image = container.Image
	// BuildSpec describes an image build.
	BuildSpec = container.BuildSpec
	// BuildKind is the image-building technique.
	BuildKind = container.BuildKind
	// DeployReport breaks down deployment overhead.
	DeployReport = container.DeployReport
	// ExecProfile is a runtime's execution profile.
	ExecProfile = container.ExecProfile
	// Case is an Alya benchmark configuration.
	Case = alya.Case
	// Mode selects real numerics vs the workload model.
	Mode = alya.Mode
	// Cell is one measurement of the study.
	Cell = core.Cell
	// Result is a cell's outcome.
	Result = core.Result
	// Placement is the rank-distribution policy.
	Placement = sched.Placement
	// AllreduceAlgo selects the collective algorithm.
	AllreduceAlgo = mpi.AllreduceAlgo
	// Seconds is a virtual duration.
	Seconds = units.Seconds
	// ByteSize is a byte count.
	ByteSize = units.ByteSize
	// Options tunes an experiment sweep.
	Options = experiments.Options
	// Mesh is a structured artery mesh.
	Mesh = mesh.Mesh
	// Store is the pluggable result-store contract: a
	// content-addressed cache of cell results that a directory, a
	// network registry client, or a tiered combination can back.
	Store = resultdb.Store
	// DirStore is the directory-backed Store implementation.
	DirStore = resultdb.DirStore
	// StoreStats snapshots one store's traffic counters.
	StoreStats = resultdb.StoreStats
	// GCPolicy bounds a store directory by size and age; GCReport
	// summarises one collection pass.
	GCPolicy = resultdb.GCPolicy
	GCReport = resultdb.GCReport
	// RegistryServer serves a DirStore over the result-registry wire
	// protocol; RegistryServerOptions tunes GC and shutdown.
	RegistryServer        = registry.Server
	RegistryServerOptions = registry.ServerOptions
	// RegistryClient is the Store implementation speaking to a
	// registry URL; RegistryClientOptions tunes retries and transport.
	RegistryClient        = registry.Client
	RegistryClientOptions = registry.ClientOptions
	// SchemaMismatchError reports a registry built from different
	// model constants than this binary.
	SchemaMismatchError = registry.SchemaMismatchError
	// Shard is a deterministic 1-of-N partition of a sweep's cells.
	Shard = resultdb.Shard
	// SweepStats counts how a sweep's cells were produced (replayed
	// from the store vs simulated) and aggregates the kernel counters
	// over the simulated ones.
	SweepStats = experiments.SweepStats
	// MissingCellsError lists cells a sharded or merge sweep could not
	// produce from the store.
	MissingCellsError = experiments.MissingCellsError
	// KernelCounters reports the vtime scheduler's hot-path counters
	// (switches, fast-path hits, heap operations, wakes).
	KernelCounters = vtime.Counters
	// RecordedError is a failure replayed from the result store's
	// negative cache instead of re-simulating a known-bad cell.
	RecordedError = resultdb.RecordedError
	// Scenario is a compiled declarative study: a JSON spec resolved
	// against the model and expanded into runnable cells. Run it with
	// the same Options every built-in figure takes.
	Scenario = scenario.Study
	// ScenarioSpec is the JSON form of a user-authored study.
	ScenarioSpec = scenario.Spec
	// ScenarioResult is a scenario run's outcome; Render/CSV write it
	// through the shared report machinery.
	ScenarioResult = scenario.Result
	// ScenarioFieldError locates a spec mistake by JSON field path.
	ScenarioFieldError = scenario.FieldError
	// CellSpec is one unit of sweep work (a Scenario enumerates them).
	CellSpec = experiments.CellSpec
	// Sweep is the cell-execution engine behind every study: bounded
	// parallelism, memoized image builds, store consultation/commit.
	Sweep = experiments.Sweep
	// WorkCell is one unit of leased work in a coordinated sweep: a
	// cell's store key, label, and deployment-affinity group.
	WorkCell = registry.WorkCell
	// WorkQueue is the coordinator's lease manager (claim, heartbeat,
	// expiry-requeue); attach it via RegistryServerOptions.Work to turn
	// `hpcstudy serve` into a sweep coordinator.
	WorkQueue = registry.WorkQueue
	// WorkQueueOptions tunes batching, lease TTL, and heartbeat
	// cadence.
	WorkQueueOptions = registry.QueueOptions
	// WorkStatus is the coordinator's progress snapshot (GET /v1/work).
	WorkStatus = registry.WorkStatus
	// WorkerProgress is a worker's cumulative progress/attribution
	// summary, reported on lease heartbeats and aggregated by the
	// coordinator onto GET /v1/status.
	WorkerProgress = registry.WorkerProgress
	// WorkerStatus is the coordinator's last knowledge of one worker.
	WorkerStatus = registry.WorkerStatus
	// FleetStatus is the whole-deployment snapshot served on
	// GET /v1/status (and rendered as the HTML status page on /).
	FleetStatus = registry.FleetStatus
	// WorkerOptions configures one coordinated-sweep worker;
	// WorkerReport summarises its run (batches, cells, leases lost).
	WorkerOptions = registry.WorkerOptions
	WorkerReport  = registry.WorkerReport
	// FleetJournal appends wall-clock fleet-trace events as JSONL
	// (-fleetlog); FleetEvent is one journal record. Wire them via
	// RegistryClientOptions.Journal, RegistryServerOptions.Journal,
	// WorkQueueOptions.Journal, and WorkerOptions.Journal.
	FleetJournal = telemetry.FleetJournal
	FleetEvent   = telemetry.FleetEvent
	// FleetRun is a merged, clock-aligned set of fleet journals;
	// FleetAttribution one process's exact wall-clock partition
	// (simulate / wire / backoff / idle); FleetAttribDiff one process's
	// A-vs-B attribution delta.
	FleetRun         = fleettrace.Run
	FleetAttribution = fleettrace.WorkerAttribution
	FleetAttribDiff  = fleettrace.AttribDiff
	// MetricsRegistry is the zero-dependency metrics model (counters,
	// gauges, histograms) behind -v output and the registry service's
	// GET /v1/metrics endpoint.
	MetricsRegistry = telemetry.Registry
	// MetricLabel is one name=value metric dimension.
	MetricLabel = telemetry.Label
	// CellsSample is one study's observability delta, folded into a
	// MetricsRegistry via RecordStudy and printed via RenderStudy.
	CellsSample = telemetry.CellsSample
	// CellTrace records one cell's execution events in virtual time and
	// exports them as Chrome Trace Event JSON (Options.TraceDir wires
	// it automatically; the alias serves direct RunCell users).
	CellTrace = telemetry.CellTrace
	// Progress prints sweep progress (rate, ETA) from ProgressEvent
	// callbacks; wire it to Options.Progress.
	Progress = telemetry.Progress
	// ProgressEvent reports one produced cell during a sweep.
	ProgressEvent = experiments.ProgressEvent
	// CellProfile is one traced cell's time-attribution artifact
	// (per-rank breakdowns, collective phases, folded stacks, critical
	// path), written beside its trace by Options.TraceDir and read back
	// by `hpcstudy analyze`.
	CellProfile = profile.CellProfile
	// ProfileBreakdown splits virtual time into compute and the three
	// wait categories; the categories sum exactly to Total.
	ProfileBreakdown = profile.Breakdown
	// ProfilePath is a cell's critical path through the happens-before
	// graph; its segments tile [0, makespan] exactly.
	ProfilePath = profile.PathReport
	// ProfileDiff attributes the makespan delta between two cells to
	// attribution categories and named collective phases.
	ProfileDiff = profile.DiffReport
)

// RankBudget bounds the total simulated ranks concurrently in flight;
// SweepStats.Admission reports when it clamps a sweep's worker pool.
const RankBudget = experiments.RankBudget

// ModelChecksum fingerprints the simulator's model constants (cluster,
// fabric, container, and workload tables). The result store folds it
// into every record's schema stamp, so cached results self-invalidate
// whenever a model number changes.
func ModelChecksum() string { return core.ModelChecksum() }

// OpenStore opens (creating if needed) a persistent directory result
// store. Attach it via Options.Store: sweeps then replay cached cells
// and commit fresh ones, so a warm rerun of any figure is
// byte-identical to the cold run while simulating nothing.
func OpenStore(dir string) (*DirStore, error) { return resultdb.Open(dir) }

// DialStore connects to a result registry (`hpcstudy serve`) and
// performs the schema handshake; a registry built from different
// model constants fails with *SchemaMismatchError before any record
// is exchanged. The client implements Store, so sweeps and merges
// against a URL behave exactly as against a local directory.
func DialStore(url string) (*RegistryClient, error) {
	return registry.Dial(url, registry.ClientOptions{})
}

// DialStoreWith is DialStore with explicit client options (retry
// budget, backoff, transport, retry logging).
func DialStoreWith(url string, opt RegistryClientOptions) (*RegistryClient, error) {
	return registry.Dial(url, opt)
}

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewCellTrace creates a per-cell execution trace with a bounded event
// ring (maxEvents < 1 means the default). Set it as Cell.Observer and
// Cell.KernelTracer, run the cell, then Export or WriteFile.
func NewCellTrace(label string, maxEvents int) *CellTrace {
	return telemetry.NewCellTrace(label, maxEvents)
}

// NewProgress creates a sweep progress reporter writing to w.
func NewProgress(w io.Writer) *Progress { return telemetry.NewProgress(w) }

// ReadProfiles loads every <key>.profile.json a traced run wrote into
// dir, sorted by cell label for deterministic reports.
func ReadProfiles(dir string) ([]*CellProfile, error) { return profile.ReadDir(dir) }

// ReadProfile loads one attribution profile by path.
func ReadProfile(path string) (*CellProfile, error) { return profile.ReadFile(path) }

// DiffProfiles attributes the makespan delta between two cells (B − A)
// to attribution categories and collective phases.
func DiffProfiles(a, b *CellProfile) *ProfileDiff { return profile.Diff(a, b) }

// Profile renderers behind `hpcstudy analyze`: attribution tables,
// CSV, critical-path text, and folded ("flamegraph") stacks. All are
// pure functions of the profiles, so outputs are byte-deterministic.
func RenderProfileSummary(w io.Writer, ps []*CellProfile)    { profile.Summary(w, ps) }
func RenderProfileRanks(w io.Writer, p *CellProfile)         { profile.RankTable(w, p) }
func RenderProfilePhases(w io.Writer, p *CellProfile)        { profile.PhaseTable(w, p) }
func RenderProfilePath(w io.Writer, p *CellProfile, top int) { profile.PathText(w, p, top) }
func RenderProfileDiff(w io.Writer, d *ProfileDiff)          { profile.DiffText(w, d) }
func ProfileAttributionCSV(w io.Writer, ps []*CellProfile)   { profile.AttributionCSV(w, ps) }
func ProfilePhasesCSV(w io.Writer, ps []*CellProfile)        { profile.PhasesCSV(w, ps) }
func ProfileFoldedText(w io.Writer, p *CellProfile)          { profile.FoldedText(w, p) }

// RecordStudy folds one study's observability delta into a metrics
// registry; RenderStudy prints the classic -v lines back from it.
func RecordStudy(reg *MetricsRegistry, study string, s CellsSample) {
	telemetry.RecordStudy(reg, study, s)
}

// RenderStudy prints the -v summary of a recorded study to w.
func RenderStudy(w io.Writer, reg *MetricsRegistry, study string, rankBudget int) {
	telemetry.RenderStudy(w, reg, study, rankBudget)
}

// NewTieredStore layers a local Store (usually a directory) in front
// of a remote one (usually a registry client): lookups hit the local
// tier first and read remote hits through into it; commits write
// remote first, then local. Close closes both tiers.
func NewTieredStore(local, remote Store) Store { return registry.NewTiered(local, remote) }

// NewRegistryServer wraps a directory store in the result-registry
// wire protocol. Run it with ListenAndServe (or Serve on an existing
// listener); cancel the context for a graceful shutdown that commits
// in-flight PUTs.
func NewRegistryServer(store *DirStore, opt RegistryServerOptions) *RegistryServer {
	return registry.NewServer(store, opt)
}

// SchemaVersion is the record schema stamp this binary reads and
// writes: record-format generation + model-constant checksum. A
// registry serves it on GET /v1/schema.
func SchemaVersion() string { return resultdb.SchemaVersion() }

// ParseShard parses the "k/N" shard notation (1 ≤ k ≤ N). Set the
// result on Options.Shard so N cooperating invocations each compute a
// disjoint slice of a sweep into one shared Store.
func ParseShard(s string) (Shard, error) { return resultdb.ParseShard(s) }

// LoadScenario reads, validates, and compiles a JSON scenario spec
// file into a runnable study. Validation failures are
// *ScenarioFieldError values naming the offending field path.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// ParseScenario compiles a spec read from r; name labels errors
// (usually a file path or "<stdin>").
func ParseScenario(r io.Reader, name string) (*Scenario, error) { return scenario.Parse(r, name) }

// NewMesh builds a uniform mesh with cubic cells of size h — the
// building block for custom cases.
func NewMesh(nx, ny, nz int, h float64) (Mesh, error) {
	return mesh.NewMesh(nx, ny, nz, h, h, h)
}

// Image-building techniques (paper §B.2).
const (
	// SystemSpecific images bind the host MPI/fabric stack: fast
	// network, zero portability across hosts.
	SystemSpecific = container.SystemSpecific
	// SelfContained images bundle a generic MPI: portable across
	// same-ISA hosts, TCP only.
	SelfContained = container.SelfContained
)

// Execution modes.
const (
	// ModeModel charges compute analytically and exchanges size-only
	// messages costed like correctly sized payloads; scales to 12,288
	// simulated cores.
	ModeModel = alya.ModeModel
	// ModeReal runs the actual Navier–Stokes/elasticity numerics.
	ModeReal = alya.ModeReal
)

// Rank placements.
const (
	// PlaceBlock fills nodes in rank order.
	PlaceBlock = sched.PlaceBlock
	// PlaceCyclic deals ranks round-robin.
	PlaceCyclic = sched.PlaceCyclic
)

// Allreduce algorithms (see the ablation benches).
const (
	AllreduceRecursiveDoubling = mpi.AllreduceRecursiveDoubling
	AllreduceRing              = mpi.AllreduceRing
	AllreduceReduceBcast       = mpi.AllreduceReduceBcast
	AllreduceHierarchical      = mpi.AllreduceHierarchical
)

// The four clusters of the study (paper §A).

// Lenox returns the 4-node Lenovo cluster (Haswell, 1 GbE) — the only
// machine with administrative rights, hence Docker and Shifter.
func Lenox() *Cluster { return cluster.Lenox() }

// MareNostrum4 returns BSC's Tier-0 Skylake machine (Omni-Path).
func MareNostrum4() *Cluster { return cluster.MareNostrum4() }

// CTEPower returns BSC's Power9 cluster (InfiniBand EDR).
func CTEPower() *Cluster { return cluster.CTEPower() }

// ThunderX returns the Mont-Blanc Armv8 mini-cluster (40 GbE).
func ThunderX() *Cluster { return cluster.ThunderX() }

// Clusters returns all four machines.
func Clusters() []*Cluster { return cluster.All() }

// ClusterByName finds a preset machine.
func ClusterByName(name string) (*Cluster, error) { return cluster.ByName(name) }

// The runtimes of the study (paper §B.1).

// NewBareMetal returns the reference execution environment.
func NewBareMetal() Runtime { return container.BareMetal{} }

// NewDocker returns the Docker runtime model (1.11.1, as on Lenox).
func NewDocker() Runtime { return container.Docker{Version: "1.11.1"} }

// NewSingularity returns the Singularity runtime model (2.4–2.5).
func NewSingularity() Runtime { return container.Singularity{Version: "2.4.5"} }

// NewShifter returns the Shifter runtime model (16.08.3).
func NewShifter() Runtime { return container.Shifter{Version: "16.08.3"} }

// Runtimes returns the four runtimes in study order.
func Runtimes() []Runtime { return container.Runtimes() }

// RuntimeByName finds a runtime by display name.
func RuntimeByName(name string) (Runtime, error) { return container.ByName(name) }

// BuildImage builds the Alya OCI image for a cluster with the given
// technique and converts it to the runtime's format (nil for
// bare metal).
func BuildImage(rt Runtime, cl *Cluster, kind BuildKind) (*Image, error) {
	return core.BuildImageFor(rt, cl, kind)
}

// The workloads.

// ArteryCFDLenox returns the Fig. 1 CFD case.
func ArteryCFDLenox() Case { return alya.ArteryCFDLenox() }

// ArteryCFDCTEPower returns the Fig. 2 CFD case.
func ArteryCFDCTEPower() Case { return alya.ArteryCFDCTEPower() }

// ArteryFSIMareNostrum4 returns the Fig. 3 FSI case.
func ArteryFSIMareNostrum4() Case { return alya.ArteryFSIMareNostrum4() }

// QuickCFD returns a laptop-scale CFD case (real numerics).
func QuickCFD(steps int) Case { return alya.QuickCFD(steps) }

// QuickFSI returns a laptop-scale coupled FSI case (real numerics).
func QuickFSI(steps int) Case { return alya.QuickFSI(steps) }

// RunCell executes one measurement: deploy the image, launch the job,
// run the case, and collect deployment plus execution metrics.
func RunCell(c Cell) (Result, error) { return core.RunCell(c) }

// The experiments (paper §B/§C). The zero Options reproduces the
// paper-scale sweep; see the experiments package for the knobs.

// NewSweep creates a cell-execution engine honouring opt (parallelism,
// store, shard, telemetry) — the building block for coordinated
// workers that run individual cells via RunOne.
func NewSweep(opt Options) *Sweep { return experiments.NewSweep(opt) }

// Fig1Specs enumerates Figure 1's cells without running them (the
// coordinator's view of the study).
func Fig1Specs(opt Options) []CellSpec { return experiments.Fig1Specs(opt) }

// Fig2Specs enumerates Figure 2's cells without running them.
func Fig2Specs(opt Options) []CellSpec { return experiments.Fig2Specs(opt) }

// NewWorkQueue builds the coordinator state for one sweep: cells
// already committed (per opt.Committed) are never issued, the rest are
// batched by deployment affinity and handed out as expiring leases.
func NewWorkQueue(cells []WorkCell, opt WorkQueueOptions) *WorkQueue {
	return registry.NewWorkQueue(cells, opt)
}

// WorkStamp fingerprints a study enumeration (name + cell keys in
// sweep order); coordinator and workers must agree on it before
// exchanging leases.
func WorkStamp(study string, keys []string) string { return registry.WorkStamp(study, keys) }

// RunWorker drains a coordinator's work queue: claim, heartbeat in the
// background, run cells, settle, repeat until the sweep is done. See
// registry.RunWorker for the failure semantics.
func RunWorker(c *RegistryClient, opt WorkerOptions) (WorkerReport, error) {
	return registry.RunWorker(c, opt)
}

// OpenFleetJournal opens (appending) the fleet-trace journal
// <proc>.fleetlog.jsonl inside dir, creating dir if needed.
func OpenFleetJournal(dir, proc string) (*FleetJournal, error) {
	return telemetry.OpenFleetJournal(dir, proc)
}

// ReadFleetDir merges and clock-aligns every *.fleetlog.jsonl journal
// under dir; ReadFleetFiles does the same for explicit paths. The
// result is independent of discovery order.
func ReadFleetDir(dir string) (*FleetRun, error)       { return fleettrace.ReadDir(dir) }
func ReadFleetFiles(paths []string) (*FleetRun, error) { return fleettrace.ReadFiles(paths) }

// FleetDiff pairs two runs' per-process attributions by name.
func FleetDiff(a, b *FleetRun) ([]FleetAttribDiff, error) { return fleettrace.DiffRuns(a, b) }

// RenderFleetAttribution and FleetAttributionCSV print a run's
// per-process wall-clock table; RenderFleetDiff prints the A/B delta.
func RenderFleetAttribution(w io.Writer, attrs []FleetAttribution) {
	fleettrace.RenderAttribution(w, attrs)
}
func FleetAttributionCSV(w io.Writer, attrs []FleetAttribution) {
	fleettrace.AttributionCSV(w, attrs)
}
func RenderFleetDiff(w io.Writer, diffs []FleetAttribDiff) { fleettrace.RenderDiff(w, diffs) }

// Fig1 regenerates Figure 1 (container solutions on Lenox).
func Fig1(opt Options) (*experiments.Fig1Result, error) { return experiments.Fig1(opt) }

// Fig2 regenerates Figure 2 (portability on CTE-POWER).
func Fig2(opt Options) (*experiments.Fig2Result, error) { return experiments.Fig2(opt) }

// Fig3 regenerates Figure 3 (FSI scalability on MareNostrum4).
func Fig3(opt Options) (*experiments.Fig3Result, error) { return experiments.Fig3(opt) }

// Solutions regenerates the deployment-overhead/image-size comparison.
func Solutions(opt Options) (*experiments.SolutionsResult, error) { return experiments.Solutions(opt) }

// Portability regenerates the build-technique × architecture matrix.
func Portability(opt Options) (*experiments.PortabilityResult, error) {
	return experiments.Portability(opt)
}

// IOStudy runs the paper's named future work: checkpoint I/O through
// each container storage path.
func IOStudy(opt Options) (*experiments.IOStudyResult, error) {
	return experiments.IOStudy(opt)
}
