package containerhpc

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (E1–E5 in DESIGN.md) plus the ablation benches for the
// design choices DESIGN.md calls out. The benchmarked quantity is the
// wall cost of regenerating the artifact; every benchmark additionally
// reports the headline *simulated* metric via b.ReportMetric, so
// `go test -bench` output doubles as a summary of the reproduction:
//
//	sim_s/step     simulated seconds per time step
//	speedup        simulated speedup (scalability benches)
//	overhead_pct   container overhead vs bare metal
//	deploy_s       simulated deployment seconds
//
// Full paper-scale sweeps (256 nodes = 12,288 ranks) are executed by
// `cmd/hpcstudy`; the benches use trimmed sweeps with identical shapes
// so a full -bench pass stays in the minutes.

import (
	"testing"

	"repro/internal/appio"
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/units"
)

// reduced variants of the paper cases, as in the experiments tests.

func benchLenoxCase() Case {
	c := ArteryCFDLenox()
	c.SimSteps = 1
	c.ModelCGIters = 30
	return c
}

func benchCTECase() Case {
	c := ArteryCFDCTEPower()
	c.SimSteps = 1
	c.ModelCGIters = 30
	return c
}

func benchFSICase() Case {
	c := ArteryFSIMareNostrum4()
	c.ModelCGIters = 40
	return c
}

// BenchmarkFig1Lenox regenerates E1: the container-solutions execution
// comparison on Lenox (4 runtimes × 5 hybrid configurations).
func BenchmarkFig1Lenox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Fig1(Options{Case: benchLenoxCase()})
		if err != nil {
			b.Fatal(err)
		}
		bare, _ := res.SeriesByLabel("Bare-metal")
		docker, _ := res.SeriesByLabel("Docker")
		last := len(bare.Points) - 1
		b.ReportMetric(float64(docker.Points[last].T-bare.Points[last].T)/
			float64(bare.Points[last].T)*100, "docker_overhead_pct")
	}
}

// BenchmarkFig2CTEPower regenerates E2: portability timings on
// CTE-POWER (trimmed to 2–8 nodes).
func BenchmarkFig2CTEPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Fig2(Options{Case: benchCTECase(), NodePoints: []int{2, 8}})
		if err != nil {
			b.Fatal(err)
		}
		self, _ := res.SeriesByLabel("Singularity self-contained")
		bare, _ := res.SeriesByLabel("Bare-metal")
		b.ReportMetric(float64(self.Points[1].T)/float64(bare.Points[1].T), "self_vs_bare_x")
	}
}

// BenchmarkFig3MareNostrum4 regenerates E3: FSI strong scaling on
// MareNostrum4 (trimmed to 4–16 nodes; the full 256-node sweep is
// `hpcstudy fig3`).
func BenchmarkFig3MareNostrum4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Fig3(Options{Case: benchFSICase(), NodePoints: []int{4, 16}})
		if err != nil {
			b.Fatal(err)
		}
		bare, _ := res.SeriesByLabel("Bare-metal")
		self, _ := res.SeriesByLabel("Singularity self-contained")
		b.ReportMetric(bare.Speedup()[1], "bare_speedup16")
		b.ReportMetric(self.Speedup()[1], "self_speedup16")
	}
}

// BenchmarkSolutionsDeployment regenerates E4: deployment overhead and
// image sizes of the three container solutions on Lenox.
func BenchmarkSolutionsDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Solutions(Options{})
		if err != nil {
			b.Fatal(err)
		}
		docker, _ := res.RowByRuntime("Docker")
		b.ReportMetric(float64(docker.DeployByNodes[4]), "docker_deploy4n_s")
	}
}

// BenchmarkPortabilityMatrix regenerates E5: the build-technique ×
// architecture matrix.
func BenchmarkPortabilityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Portability(Options{})
		if err != nil {
			b.Fatal(err)
		}
		runs := 0
		for _, c := range res.Cells {
			if c.Runs {
				runs++
			}
		}
		b.ReportMetric(float64(runs), "runnable_cells")
	}
}

// runBenchCell executes one simulation cell for the ablations.
func runBenchCell(b *testing.B, cl *Cluster, cs Case, nodes, ranks, threads int,
	place Placement, algo AllreduceAlgo, mode Mode) Result {
	b.Helper()
	res, err := RunCell(Cell{
		Cluster: cl, Runtime: NewBareMetal(), Case: cs,
		Nodes: nodes, Ranks: ranks, Threads: threads,
		Placement: place, Allreduce: algo, Mode: mode,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func ablationCase() Case {
	c := ArteryCFDCTEPower()
	m, err := NewMesh(128, 128, 96, 1e-4)
	if err != nil {
		panic(err)
	}
	c.FluidMesh = m
	c.Steps, c.SimSteps = 2, 1
	c.ModelCGIters = 40
	return c
}

// BenchmarkAblationAllreduceAlgorithms compares the four allreduce
// algorithms on the same 8-node configuration — the collective-choice
// ablation from DESIGN.md §5.
func BenchmarkAblationAllreduceAlgorithms(b *testing.B) {
	algos := []AllreduceAlgo{
		AllreduceRecursiveDoubling, AllreduceRing,
		AllreduceReduceBcast, AllreduceHierarchical,
	}
	cs := ablationCase()
	for _, algo := range algos {
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runBenchCell(b, MareNostrum4(), cs, 8, 8*48, 1, PlaceBlock, algo, ModeModel)
				b.ReportMetric(float64(res.Exec.TimePerStep), "sim_s/step")
			}
		})
	}
}

// BenchmarkAblationPlacement compares block vs cyclic rank placement on
// the 1 GbE cluster, where communication locality decides the outcome —
// cyclic placement turns most halo neighbours inter-node.
func BenchmarkAblationPlacement(b *testing.B) {
	cs := benchLenoxCase()
	for _, place := range []Placement{PlaceBlock, PlaceCyclic} {
		b.Run(place.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runBenchCell(b, Lenox(), cs, 4, 112, 1, place, AllreduceRecursiveDoubling, ModeModel)
				b.ReportMetric(float64(res.Exec.TimePerStep), "sim_s/step")
			}
		})
	}
}

// BenchmarkAblationExecModes compares the workload model against the
// real numerics on a configuration small enough to run both.
func BenchmarkAblationExecModes(b *testing.B) {
	for _, mode := range []Mode{ModeModel, ModeReal} {
		b.Run(mode.String(), func(b *testing.B) {
			cs := QuickCFD(2)
			for i := 0; i < b.N; i++ {
				res := runBenchCell(b, MareNostrum4(), cs, 2, 16, 1, PlaceBlock, AllreduceRecursiveDoubling, mode)
				b.ReportMetric(float64(res.Exec.TimePerStep), "sim_s/step")
			}
		})
	}
}

// BenchmarkAblationEagerThreshold sweeps the rendezvous cutoff of the
// 1 GbE transport through an MPI-level exchange pattern.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for _, thresh := range []ByteSize{1 * 1024, 32 * 1024, 1024 * 1024} {
		b.Run(thresh.String(), func(b *testing.B) {
			tr := fabric.GigabitEthernet.Native
			tr.EagerThreshold = units.ByteSize(thresh)
			shm := fabric.SharedMemory(8*units.GBps, 0.5*units.Microsecond)
			cfg := mpi.Config{
				Ranks: 16, Nodes: 4,
				NodeOf: func(r int) int { return r / 4 },
				Path: func(src, dst int) *fabric.Transport {
					if src/4 == dst/4 {
						return &shm
					}
					return &tr
				},
				ComputeDilation: 1,
			}
			for i := 0; i < b.N; i++ {
				st, err := mpi.Run(cfg, func(r *mpi.Rank) {
					buf := make([]float64, 8192) // 64 KiB: above and below thresholds
					for iter := 0; iter < 10; iter++ {
						next := (r.ID() + 4) % r.Size()
						prev := (r.ID() - 4 + r.Size()) % r.Size()
						r.SendRecv(next, iter, buf, prev, iter, buf)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.End), "sim_s")
			}
		})
	}
}

// BenchmarkAblationContention toggles the NIC-sharing model: without
// injection-port serialization the 1 GbE cluster looks far faster than
// it is.
func BenchmarkAblationContention(b *testing.B) {
	for _, shared := range []bool{true, false} {
		name := "nic-shared"
		if !shared {
			name = "nic-unshared"
		}
		b.Run(name, func(b *testing.B) {
			tr := fabric.GigabitEthernet.Native
			tr.SharesNIC = shared
			shm := fabric.SharedMemory(8*units.GBps, 0.5*units.Microsecond)
			cfg := mpi.Config{
				Ranks: 32, Nodes: 2,
				NodeOf: func(r int) int { return r / 16 },
				Path: func(src, dst int) *fabric.Transport {
					if src/16 == dst/16 {
						return &shm
					}
					return &tr
				},
				ComputeDilation: 1,
			}
			for i := 0; i < b.N; i++ {
				st, err := mpi.Run(cfg, func(r *mpi.Rank) {
					buf := make([]float64, 4096)
					peer := (r.ID() + 16) % 32
					for iter := 0; iter < 5; iter++ {
						r.SendRecv(peer, iter, buf, peer, iter, buf)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.End), "sim_s")
			}
		})
	}
}

// BenchmarkMPIAllreduceScaling measures the simulator itself: virtual
// allreduce cost and wall cost vs world size.
func BenchmarkMPIAllreduceScaling(b *testing.B) {
	for _, ranks := range []int{48, 192, 768} {
		b.Run(string(rune('0'+ranks/100))+"xx-ranks", func(b *testing.B) {
			shm := fabric.SharedMemory(10*units.GBps, 0.4*units.Microsecond)
			opa := fabric.OmniPath100.Native
			cfg := mpi.Config{
				Ranks: ranks, Nodes: ranks / 48,
				NodeOf: func(r int) int { return r / 48 },
				Path: func(src, dst int) *fabric.Transport {
					if src/48 == dst/48 {
						return &shm
					}
					return &opa
				},
				ComputeDilation: 1,
				Allreduce:       mpi.AllreduceHierarchical,
			}
			for i := 0; i < b.N; i++ {
				st, err := mpi.Run(cfg, func(r *mpi.Rank) {
					for iter := 0; iter < 10; iter++ {
						r.AllreduceScalar(float64(r.ID()), mpi.OpSum)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.End/10)*1e6, "sim_µs/allreduce")
				// Wall cost of the simulation itself is dominated by
				// kernel context switches; reporting them makes the
				// scheduling hot path diffable across commits.
				b.ReportMetric(float64(st.Kernel.Switches)/10, "switches/allreduce")
			}
		})
	}
}

// BenchmarkSweepCached measures the warm-cache hit path: a figure
// regenerated entirely from a populated result store, executing zero
// simulations. The reported wall time is the cost of key hashing,
// record reads, and restore — the floor a resumed or merged sweep
// pays per cell.
func BenchmarkSweepCached(b *testing.B) {
	store, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	opt := Options{Case: benchFSICase(), NodePoints: []int{4, 16}, Store: store}
	if _, err := Fig3(opt); err != nil { // populate once, untimed
		b.Fatal(err)
	}
	cells := int64(len(opt.NodePoints) * 3) // 3 variants per node point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := &SweepStats{}
		o := opt
		o.Stats = stats
		if _, err := Fig3(o); err != nil {
			b.Fatal(err)
		}
		if got := stats.Computed.Load(); got != 0 {
			b.Fatalf("warm run simulated %d cells", got)
		}
		if got := stats.Hits.Load(); got != cells {
			b.Fatalf("warm run replayed %d cells, want %d", got, cells)
		}
	}
	b.ReportMetric(float64(cells), "cells/op")
}

// BenchmarkIOStudy regenerates E6: the checkpoint-I/O extension (the
// paper's named future work).
func BenchmarkIOStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := IOStudy(Options{})
		if err != nil {
			b.Fatal(err)
		}
		overlay, err := res.Find(appio.PathOverlay, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(overlay.Report.Total()), "docker_ckpt_s")
	}
}
