// Portability: build the same application image with the paper's two
// techniques and attempt to run it on all three architectures
// (Skylake/amd64, Power9/ppc64le, ThunderX/arm64), reproducing the
// §B.2 portability trade-off:
//
//   - a self-contained image runs on any matching-ISA host but is stuck
//     on the TCP network path;
//   - a system-specific image gets the fast fabric but only runs where
//     its host ABI matches.
//
// Run with: go run ./examples/portability
package main

import (
	"log"
	"os"

	containerhpc "repro"
)

func main() {
	res, err := containerhpc.Portability(containerhpc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res.Render(os.Stdout)
}
