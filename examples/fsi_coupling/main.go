// FSI coupling: run the two-code fluid–structure simulation with real
// numerics — one group of MPI ranks solves blood flow (Navier–Stokes),
// a second group solves the artery wall (dynamic elasticity), and the
// groups exchange wall traction and wall motion every coupling
// iteration, exactly like Alya's multi-code FSI runs in the paper.
//
// Run with: go run ./examples/fsi_coupling
package main

import (
	"fmt"
	"log"

	containerhpc "repro"
)

func main() {
	cl := containerhpc.CTEPower()
	rt := containerhpc.NewSingularity()
	img, err := containerhpc.BuildImage(rt, cl, containerhpc.SystemSpecific)
	if err != nil {
		log.Fatal(err)
	}

	cs := containerhpc.QuickFSI(6)
	res, err := containerhpc.RunCell(containerhpc.Cell{
		Cluster: cl, Runtime: rt, Image: img, Case: cs,
		Nodes: 2, Ranks: 8, Threads: 1,
		Mode: containerhpc.ModeReal,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coupled FSI on %s under %s (%s)\n", cl.Name, rt.Name(), res.Exec.FabricPath)
	fmt.Printf("  fluid mesh %d cells + wall mesh %d cells, %d steps\n",
		cs.FluidMesh.Cells(), cs.SolidMesh.Cells(), cs.Steps)
	fmt.Printf("  ranks: %d total (fluid fraction %.0f%%), 2 coupled code instances\n",
		res.Exec.Ranks, cs.FluidFraction*100)
	fmt.Printf("  time/step %v, avg pressure-CG iters/step %.1f\n",
		res.Exec.TimePerStep, res.Exec.AvgCGIters)
	fmt.Printf("  MPI: %d messages, %v moved\n",
		res.Exec.MPI.TotalMessages, res.Exec.MPI.TotalBytes)
}
