// Scalability: a reduced version of the paper's Figure 3 — strong
// scaling of the coupled FSI case on MareNostrum4 for bare metal vs
// Singularity with system-specific and self-contained images. The
// system-specific container tracks bare metal; the self-contained one
// falls off the Omni-Path onto IP-over-OPA TCP and stops scaling.
//
// Run with: go run ./examples/scalability
// (simulates up to 1,536 MPI ranks; takes a minute or two)
package main

import (
	"fmt"
	"log"
	"os"

	containerhpc "repro"
)

func main() {
	res, err := containerhpc.Fig3(containerhpc.Options{
		NodePoints: []int{4, 8, 16, 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	res.Render(os.Stdout)

	fmt.Println("\nParallel efficiency per variant:")
	for _, s := range res.Series {
		fmt.Printf("  %-32s", s.Label)
		for i, e := range s.Efficiency() {
			fmt.Printf("  %d:%.0f%%", s.Points[i].X, e*100)
		}
		fmt.Println()
	}
}
