// Quickstart: build a containerized Alya image, run the artery CFD case
// with real numerics on two Lenox nodes under Singularity, and compare
// against bare metal.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	containerhpc "repro"
)

func main() {
	cl := containerhpc.Lenox()
	cs := containerhpc.QuickCFD(6)

	fmt.Printf("cluster %s: %d nodes × %d cores (%s), %s\n\n",
		cl.Name, cl.TotalNodes, cl.CoresPerNode(), cl.Node.CPU.Name, cl.Interconnect.Name)

	for _, rt := range []containerhpc.Runtime{
		containerhpc.NewBareMetal(),
		containerhpc.NewSingularity(),
	} {
		img, err := containerhpc.BuildImage(rt, cl, containerhpc.SystemSpecific)
		if err != nil {
			log.Fatal(err)
		}
		res, err := containerhpc.RunCell(containerhpc.Cell{
			Cluster: cl, Runtime: rt, Image: img, Case: cs,
			Nodes: 2, Ranks: 8, Threads: 1,
			Mode: containerhpc.ModeReal,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s time/step %-12v deploy %-10v CG iters/step %.1f  max|div u| %.2e\n",
			rt.Name(), res.Exec.TimePerStep, res.Deploy.Total(),
			res.Exec.AvgCGIters, res.Exec.MaxDivergence)
		if img != nil {
			fmt.Printf("%-12s image %s: %v in format %s\n",
				"", img.Ref(), img.Size(), img.Format)
		}
	}
	fmt.Println("\nThe two runs execute the identical distributed Navier–Stokes")
	fmt.Println("solver; Singularity's shared host namespaces keep MPI on the")
	fmt.Println("same shared-memory and TCP paths as bare metal.")
}
